# Empty dependencies file for test_simt_device.
# This may be replaced when dependencies are built.
