file(REMOVE_RECURSE
  "CMakeFiles/test_simt_device.dir/test_simt_device.cpp.o"
  "CMakeFiles/test_simt_device.dir/test_simt_device.cpp.o.d"
  "test_simt_device"
  "test_simt_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
