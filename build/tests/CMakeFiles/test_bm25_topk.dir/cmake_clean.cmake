file(REMOVE_RECURSE
  "CMakeFiles/test_bm25_topk.dir/test_bm25_topk.cpp.o"
  "CMakeFiles/test_bm25_topk.dir/test_bm25_topk.cpp.o.d"
  "test_bm25_topk"
  "test_bm25_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bm25_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
