# Empty dependencies file for test_bm25_topk.
# This may be replaced when dependencies are built.
