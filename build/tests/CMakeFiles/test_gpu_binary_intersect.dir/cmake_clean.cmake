file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_binary_intersect.dir/test_gpu_binary_intersect.cpp.o"
  "CMakeFiles/test_gpu_binary_intersect.dir/test_gpu_binary_intersect.cpp.o.d"
  "test_gpu_binary_intersect"
  "test_gpu_binary_intersect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_binary_intersect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
