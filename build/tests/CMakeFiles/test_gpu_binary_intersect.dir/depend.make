# Empty dependencies file for test_gpu_binary_intersect.
# This may be replaced when dependencies are built.
