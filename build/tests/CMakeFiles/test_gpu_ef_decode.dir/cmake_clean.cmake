file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_ef_decode.dir/test_gpu_ef_decode.cpp.o"
  "CMakeFiles/test_gpu_ef_decode.dir/test_gpu_ef_decode.cpp.o.d"
  "test_gpu_ef_decode"
  "test_gpu_ef_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_ef_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
