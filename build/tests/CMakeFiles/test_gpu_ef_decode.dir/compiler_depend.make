# Empty compiler generated dependencies file for test_gpu_ef_decode.
# This may be replaced when dependencies are built.
