file(REMOVE_RECURSE
  "CMakeFiles/test_simple16.dir/test_simple16.cpp.o"
  "CMakeFiles/test_simple16.dir/test_simple16.cpp.o.d"
  "test_simple16"
  "test_simple16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simple16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
