# Empty dependencies file for test_simple16.
# This may be replaced when dependencies are built.
