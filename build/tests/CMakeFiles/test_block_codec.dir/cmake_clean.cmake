file(REMOVE_RECURSE
  "CMakeFiles/test_block_codec.dir/test_block_codec.cpp.o"
  "CMakeFiles/test_block_codec.dir/test_block_codec.cpp.o.d"
  "test_block_codec"
  "test_block_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
