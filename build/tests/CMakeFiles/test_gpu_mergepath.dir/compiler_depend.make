# Empty compiler generated dependencies file for test_gpu_mergepath.
# This may be replaced when dependencies are built.
