file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_mergepath.dir/test_gpu_mergepath.cpp.o"
  "CMakeFiles/test_gpu_mergepath.dir/test_gpu_mergepath.cpp.o.d"
  "test_gpu_mergepath"
  "test_gpu_mergepath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_mergepath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
