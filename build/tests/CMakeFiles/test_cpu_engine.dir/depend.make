# Empty dependencies file for test_cpu_engine.
# This may be replaced when dependencies are built.
