file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_engine.dir/test_cpu_engine.cpp.o"
  "CMakeFiles/test_cpu_engine.dir/test_cpu_engine.cpp.o.d"
  "test_cpu_engine"
  "test_cpu_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
