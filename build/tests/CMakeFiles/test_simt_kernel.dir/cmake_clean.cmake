file(REMOVE_RECURSE
  "CMakeFiles/test_simt_kernel.dir/test_simt_kernel.cpp.o"
  "CMakeFiles/test_simt_kernel.dir/test_simt_kernel.cpp.o.d"
  "test_simt_kernel"
  "test_simt_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
