# Empty dependencies file for test_simt_kernel.
# This may be replaced when dependencies are built.
