# Empty dependencies file for test_hybrid_engine.
# This may be replaced when dependencies are built.
