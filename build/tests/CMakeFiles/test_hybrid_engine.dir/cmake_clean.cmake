file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid_engine.dir/test_hybrid_engine.cpp.o"
  "CMakeFiles/test_hybrid_engine.dir/test_hybrid_engine.cpp.o.d"
  "test_hybrid_engine"
  "test_hybrid_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
