# Empty compiler generated dependencies file for test_pfordelta.
# This may be replaced when dependencies are built.
