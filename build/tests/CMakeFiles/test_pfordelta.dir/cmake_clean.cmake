file(REMOVE_RECURSE
  "CMakeFiles/test_pfordelta.dir/test_pfordelta.cpp.o"
  "CMakeFiles/test_pfordelta.dir/test_pfordelta.cpp.o.d"
  "test_pfordelta"
  "test_pfordelta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfordelta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
