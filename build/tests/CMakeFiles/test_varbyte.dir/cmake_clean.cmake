file(REMOVE_RECURSE
  "CMakeFiles/test_varbyte.dir/test_varbyte.cpp.o"
  "CMakeFiles/test_varbyte.dir/test_varbyte.cpp.o.d"
  "test_varbyte"
  "test_varbyte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_varbyte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
