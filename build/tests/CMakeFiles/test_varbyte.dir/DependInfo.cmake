
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_varbyte.cpp" "tests/CMakeFiles/test_varbyte.dir/test_varbyte.cpp.o" "gcc" "tests/CMakeFiles/test_varbyte.dir/test_varbyte.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/griffin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/griffin_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/griffin_service.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/griffin_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/griffin_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/griffin_index.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/griffin_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/griffin_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/griffin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
