# Empty compiler generated dependencies file for test_varbyte.
# This may be replaced when dependencies are built.
