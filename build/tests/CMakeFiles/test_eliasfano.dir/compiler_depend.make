# Empty compiler generated dependencies file for test_eliasfano.
# This may be replaced when dependencies are built.
