file(REMOVE_RECURSE
  "CMakeFiles/test_eliasfano.dir/test_eliasfano.cpp.o"
  "CMakeFiles/test_eliasfano.dir/test_eliasfano.cpp.o.d"
  "test_eliasfano"
  "test_eliasfano.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eliasfano.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
