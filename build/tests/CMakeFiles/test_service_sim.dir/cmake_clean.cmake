file(REMOVE_RECURSE
  "CMakeFiles/test_service_sim.dir/test_service_sim.cpp.o"
  "CMakeFiles/test_service_sim.dir/test_service_sim.cpp.o.d"
  "test_service_sim"
  "test_service_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
