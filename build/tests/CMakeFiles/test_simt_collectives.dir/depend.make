# Empty dependencies file for test_simt_collectives.
# This may be replaced when dependencies are built.
