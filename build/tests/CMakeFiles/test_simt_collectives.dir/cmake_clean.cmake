file(REMOVE_RECURSE
  "CMakeFiles/test_simt_collectives.dir/test_simt_collectives.cpp.o"
  "CMakeFiles/test_simt_collectives.dir/test_simt_collectives.cpp.o.d"
  "test_simt_collectives"
  "test_simt_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
