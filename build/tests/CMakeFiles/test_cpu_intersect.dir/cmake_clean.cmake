file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_intersect.dir/test_cpu_intersect.cpp.o"
  "CMakeFiles/test_cpu_intersect.dir/test_cpu_intersect.cpp.o.d"
  "test_cpu_intersect"
  "test_cpu_intersect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_intersect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
