# Empty dependencies file for test_cpu_intersect.
# This may be replaced when dependencies are built.
