# Empty dependencies file for test_rng_zipf.
# This may be replaced when dependencies are built.
