file(REMOVE_RECURSE
  "CMakeFiles/test_rng_zipf.dir/test_rng_zipf.cpp.o"
  "CMakeFiles/test_rng_zipf.dir/test_rng_zipf.cpp.o.d"
  "test_rng_zipf"
  "test_rng_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rng_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
