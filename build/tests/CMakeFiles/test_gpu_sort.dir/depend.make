# Empty dependencies file for test_gpu_sort.
# This may be replaced when dependencies are built.
