file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_sort.dir/test_gpu_sort.cpp.o"
  "CMakeFiles/test_gpu_sort.dir/test_gpu_sort.cpp.o.d"
  "test_gpu_sort"
  "test_gpu_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
