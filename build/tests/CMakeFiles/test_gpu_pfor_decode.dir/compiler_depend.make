# Empty compiler generated dependencies file for test_gpu_pfor_decode.
# This may be replaced when dependencies are built.
