file(REMOVE_RECURSE
  "CMakeFiles/test_cost_models.dir/test_cost_models.cpp.o"
  "CMakeFiles/test_cost_models.dir/test_cost_models.cpp.o.d"
  "test_cost_models"
  "test_cost_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cost_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
