# Empty compiler generated dependencies file for test_cost_models.
# This may be replaced when dependencies are built.
