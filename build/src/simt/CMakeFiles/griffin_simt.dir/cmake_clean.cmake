file(REMOVE_RECURSE
  "CMakeFiles/griffin_simt.dir/collectives.cpp.o"
  "CMakeFiles/griffin_simt.dir/collectives.cpp.o.d"
  "CMakeFiles/griffin_simt.dir/kernel.cpp.o"
  "CMakeFiles/griffin_simt.dir/kernel.cpp.o.d"
  "libgriffin_simt.a"
  "libgriffin_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griffin_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
