# Empty dependencies file for griffin_simt.
# This may be replaced when dependencies are built.
