file(REMOVE_RECURSE
  "libgriffin_simt.a"
)
