file(REMOVE_RECURSE
  "libgriffin_util.a"
)
