# Empty dependencies file for griffin_util.
# This may be replaced when dependencies are built.
