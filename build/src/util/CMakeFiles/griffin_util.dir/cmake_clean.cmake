file(REMOVE_RECURSE
  "CMakeFiles/griffin_util.dir/stats.cpp.o"
  "CMakeFiles/griffin_util.dir/stats.cpp.o.d"
  "CMakeFiles/griffin_util.dir/zipf.cpp.o"
  "CMakeFiles/griffin_util.dir/zipf.cpp.o.d"
  "libgriffin_util.a"
  "libgriffin_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griffin_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
