# Empty compiler generated dependencies file for griffin_gpu.
# This may be replaced when dependencies are built.
