
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/binary_intersect.cpp" "src/gpu/CMakeFiles/griffin_gpu.dir/binary_intersect.cpp.o" "gcc" "src/gpu/CMakeFiles/griffin_gpu.dir/binary_intersect.cpp.o.d"
  "/root/repo/src/gpu/compact.cpp" "src/gpu/CMakeFiles/griffin_gpu.dir/compact.cpp.o" "gcc" "src/gpu/CMakeFiles/griffin_gpu.dir/compact.cpp.o.d"
  "/root/repo/src/gpu/device_list.cpp" "src/gpu/CMakeFiles/griffin_gpu.dir/device_list.cpp.o" "gcc" "src/gpu/CMakeFiles/griffin_gpu.dir/device_list.cpp.o.d"
  "/root/repo/src/gpu/ef_decode.cpp" "src/gpu/CMakeFiles/griffin_gpu.dir/ef_decode.cpp.o" "gcc" "src/gpu/CMakeFiles/griffin_gpu.dir/ef_decode.cpp.o.d"
  "/root/repo/src/gpu/engine.cpp" "src/gpu/CMakeFiles/griffin_gpu.dir/engine.cpp.o" "gcc" "src/gpu/CMakeFiles/griffin_gpu.dir/engine.cpp.o.d"
  "/root/repo/src/gpu/mergepath.cpp" "src/gpu/CMakeFiles/griffin_gpu.dir/mergepath.cpp.o" "gcc" "src/gpu/CMakeFiles/griffin_gpu.dir/mergepath.cpp.o.d"
  "/root/repo/src/gpu/pfor_decode.cpp" "src/gpu/CMakeFiles/griffin_gpu.dir/pfor_decode.cpp.o" "gcc" "src/gpu/CMakeFiles/griffin_gpu.dir/pfor_decode.cpp.o.d"
  "/root/repo/src/gpu/sort.cpp" "src/gpu/CMakeFiles/griffin_gpu.dir/sort.cpp.o" "gcc" "src/gpu/CMakeFiles/griffin_gpu.dir/sort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simt/CMakeFiles/griffin_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/griffin_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/griffin_index.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/griffin_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/griffin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
