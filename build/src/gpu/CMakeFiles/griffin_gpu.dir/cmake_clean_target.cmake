file(REMOVE_RECURSE
  "libgriffin_gpu.a"
)
