file(REMOVE_RECURSE
  "CMakeFiles/griffin_gpu.dir/binary_intersect.cpp.o"
  "CMakeFiles/griffin_gpu.dir/binary_intersect.cpp.o.d"
  "CMakeFiles/griffin_gpu.dir/compact.cpp.o"
  "CMakeFiles/griffin_gpu.dir/compact.cpp.o.d"
  "CMakeFiles/griffin_gpu.dir/device_list.cpp.o"
  "CMakeFiles/griffin_gpu.dir/device_list.cpp.o.d"
  "CMakeFiles/griffin_gpu.dir/ef_decode.cpp.o"
  "CMakeFiles/griffin_gpu.dir/ef_decode.cpp.o.d"
  "CMakeFiles/griffin_gpu.dir/engine.cpp.o"
  "CMakeFiles/griffin_gpu.dir/engine.cpp.o.d"
  "CMakeFiles/griffin_gpu.dir/mergepath.cpp.o"
  "CMakeFiles/griffin_gpu.dir/mergepath.cpp.o.d"
  "CMakeFiles/griffin_gpu.dir/pfor_decode.cpp.o"
  "CMakeFiles/griffin_gpu.dir/pfor_decode.cpp.o.d"
  "CMakeFiles/griffin_gpu.dir/sort.cpp.o"
  "CMakeFiles/griffin_gpu.dir/sort.cpp.o.d"
  "libgriffin_gpu.a"
  "libgriffin_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griffin_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
