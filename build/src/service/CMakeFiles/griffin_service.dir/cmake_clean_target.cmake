file(REMOVE_RECURSE
  "libgriffin_service.a"
)
