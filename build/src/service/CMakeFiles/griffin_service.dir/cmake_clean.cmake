file(REMOVE_RECURSE
  "CMakeFiles/griffin_service.dir/service_sim.cpp.o"
  "CMakeFiles/griffin_service.dir/service_sim.cpp.o.d"
  "libgriffin_service.a"
  "libgriffin_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griffin_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
