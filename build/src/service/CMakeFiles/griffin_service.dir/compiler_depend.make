# Empty compiler generated dependencies file for griffin_service.
# This may be replaced when dependencies are built.
