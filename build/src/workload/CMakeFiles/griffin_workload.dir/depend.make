# Empty dependencies file for griffin_workload.
# This may be replaced when dependencies are built.
