file(REMOVE_RECURSE
  "libgriffin_workload.a"
)
