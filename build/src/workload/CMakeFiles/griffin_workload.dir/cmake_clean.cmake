file(REMOVE_RECURSE
  "CMakeFiles/griffin_workload.dir/corpus.cpp.o"
  "CMakeFiles/griffin_workload.dir/corpus.cpp.o.d"
  "CMakeFiles/griffin_workload.dir/querylog.cpp.o"
  "CMakeFiles/griffin_workload.dir/querylog.cpp.o.d"
  "libgriffin_workload.a"
  "libgriffin_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griffin_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
