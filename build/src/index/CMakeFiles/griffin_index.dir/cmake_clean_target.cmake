file(REMOVE_RECURSE
  "libgriffin_index.a"
)
