file(REMOVE_RECURSE
  "CMakeFiles/griffin_index.dir/dictionary.cpp.o"
  "CMakeFiles/griffin_index.dir/dictionary.cpp.o.d"
  "CMakeFiles/griffin_index.dir/inverted_index.cpp.o"
  "CMakeFiles/griffin_index.dir/inverted_index.cpp.o.d"
  "CMakeFiles/griffin_index.dir/io.cpp.o"
  "CMakeFiles/griffin_index.dir/io.cpp.o.d"
  "libgriffin_index.a"
  "libgriffin_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griffin_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
