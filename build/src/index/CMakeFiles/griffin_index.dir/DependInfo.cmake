
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/dictionary.cpp" "src/index/CMakeFiles/griffin_index.dir/dictionary.cpp.o" "gcc" "src/index/CMakeFiles/griffin_index.dir/dictionary.cpp.o.d"
  "/root/repo/src/index/inverted_index.cpp" "src/index/CMakeFiles/griffin_index.dir/inverted_index.cpp.o" "gcc" "src/index/CMakeFiles/griffin_index.dir/inverted_index.cpp.o.d"
  "/root/repo/src/index/io.cpp" "src/index/CMakeFiles/griffin_index.dir/io.cpp.o" "gcc" "src/index/CMakeFiles/griffin_index.dir/io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codec/CMakeFiles/griffin_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/griffin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
