# Empty dependencies file for griffin_index.
# This may be replaced when dependencies are built.
