file(REMOVE_RECURSE
  "libgriffin_core.a"
)
