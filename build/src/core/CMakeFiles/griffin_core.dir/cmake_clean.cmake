file(REMOVE_RECURSE
  "CMakeFiles/griffin_core.dir/hybrid_engine.cpp.o"
  "CMakeFiles/griffin_core.dir/hybrid_engine.cpp.o.d"
  "CMakeFiles/griffin_core.dir/scheduler.cpp.o"
  "CMakeFiles/griffin_core.dir/scheduler.cpp.o.d"
  "libgriffin_core.a"
  "libgriffin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griffin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
