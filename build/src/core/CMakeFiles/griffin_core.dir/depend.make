# Empty dependencies file for griffin_core.
# This may be replaced when dependencies are built.
