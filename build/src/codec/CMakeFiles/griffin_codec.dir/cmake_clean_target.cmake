file(REMOVE_RECURSE
  "libgriffin_codec.a"
)
