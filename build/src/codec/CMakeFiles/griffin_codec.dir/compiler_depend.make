# Empty compiler generated dependencies file for griffin_codec.
# This may be replaced when dependencies are built.
