
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/block_codec.cpp" "src/codec/CMakeFiles/griffin_codec.dir/block_codec.cpp.o" "gcc" "src/codec/CMakeFiles/griffin_codec.dir/block_codec.cpp.o.d"
  "/root/repo/src/codec/eliasfano.cpp" "src/codec/CMakeFiles/griffin_codec.dir/eliasfano.cpp.o" "gcc" "src/codec/CMakeFiles/griffin_codec.dir/eliasfano.cpp.o.d"
  "/root/repo/src/codec/pfordelta.cpp" "src/codec/CMakeFiles/griffin_codec.dir/pfordelta.cpp.o" "gcc" "src/codec/CMakeFiles/griffin_codec.dir/pfordelta.cpp.o.d"
  "/root/repo/src/codec/simple16.cpp" "src/codec/CMakeFiles/griffin_codec.dir/simple16.cpp.o" "gcc" "src/codec/CMakeFiles/griffin_codec.dir/simple16.cpp.o.d"
  "/root/repo/src/codec/varbyte.cpp" "src/codec/CMakeFiles/griffin_codec.dir/varbyte.cpp.o" "gcc" "src/codec/CMakeFiles/griffin_codec.dir/varbyte.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/griffin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
