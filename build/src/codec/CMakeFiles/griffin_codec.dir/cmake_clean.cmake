file(REMOVE_RECURSE
  "CMakeFiles/griffin_codec.dir/block_codec.cpp.o"
  "CMakeFiles/griffin_codec.dir/block_codec.cpp.o.d"
  "CMakeFiles/griffin_codec.dir/eliasfano.cpp.o"
  "CMakeFiles/griffin_codec.dir/eliasfano.cpp.o.d"
  "CMakeFiles/griffin_codec.dir/pfordelta.cpp.o"
  "CMakeFiles/griffin_codec.dir/pfordelta.cpp.o.d"
  "CMakeFiles/griffin_codec.dir/simple16.cpp.o"
  "CMakeFiles/griffin_codec.dir/simple16.cpp.o.d"
  "CMakeFiles/griffin_codec.dir/varbyte.cpp.o"
  "CMakeFiles/griffin_codec.dir/varbyte.cpp.o.d"
  "libgriffin_codec.a"
  "libgriffin_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griffin_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
