file(REMOVE_RECURSE
  "CMakeFiles/griffin_cpu.dir/bm25.cpp.o"
  "CMakeFiles/griffin_cpu.dir/bm25.cpp.o.d"
  "CMakeFiles/griffin_cpu.dir/decode.cpp.o"
  "CMakeFiles/griffin_cpu.dir/decode.cpp.o.d"
  "CMakeFiles/griffin_cpu.dir/engine.cpp.o"
  "CMakeFiles/griffin_cpu.dir/engine.cpp.o.d"
  "CMakeFiles/griffin_cpu.dir/intersect.cpp.o"
  "CMakeFiles/griffin_cpu.dir/intersect.cpp.o.d"
  "libgriffin_cpu.a"
  "libgriffin_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griffin_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
