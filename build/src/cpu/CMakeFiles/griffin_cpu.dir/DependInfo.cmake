
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/bm25.cpp" "src/cpu/CMakeFiles/griffin_cpu.dir/bm25.cpp.o" "gcc" "src/cpu/CMakeFiles/griffin_cpu.dir/bm25.cpp.o.d"
  "/root/repo/src/cpu/decode.cpp" "src/cpu/CMakeFiles/griffin_cpu.dir/decode.cpp.o" "gcc" "src/cpu/CMakeFiles/griffin_cpu.dir/decode.cpp.o.d"
  "/root/repo/src/cpu/engine.cpp" "src/cpu/CMakeFiles/griffin_cpu.dir/engine.cpp.o" "gcc" "src/cpu/CMakeFiles/griffin_cpu.dir/engine.cpp.o.d"
  "/root/repo/src/cpu/intersect.cpp" "src/cpu/CMakeFiles/griffin_cpu.dir/intersect.cpp.o" "gcc" "src/cpu/CMakeFiles/griffin_cpu.dir/intersect.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/griffin_index.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/griffin_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/griffin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
