file(REMOVE_RECURSE
  "libgriffin_cpu.a"
)
