# Empty compiler generated dependencies file for griffin_cpu.
# This may be replaced when dependencies are built.
