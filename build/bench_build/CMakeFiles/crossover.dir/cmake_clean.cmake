file(REMOVE_RECURSE
  "../bench/crossover"
  "../bench/crossover.pdb"
  "CMakeFiles/crossover.dir/crossover.cpp.o"
  "CMakeFiles/crossover.dir/crossover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
