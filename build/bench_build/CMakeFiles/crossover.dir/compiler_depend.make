# Empty compiler generated dependencies file for crossover.
# This may be replaced when dependencies are built.
