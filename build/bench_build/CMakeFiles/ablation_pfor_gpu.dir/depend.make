# Empty dependencies file for ablation_pfor_gpu.
# This may be replaced when dependencies are built.
