file(REMOVE_RECURSE
  "../bench/ablation_pfor_gpu"
  "../bench/ablation_pfor_gpu.pdb"
  "CMakeFiles/ablation_pfor_gpu.dir/ablation_pfor_gpu.cpp.o"
  "CMakeFiles/ablation_pfor_gpu.dir/ablation_pfor_gpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pfor_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
