file(REMOVE_RECURSE
  "../bench/workload_stats"
  "../bench/workload_stats.pdb"
  "CMakeFiles/workload_stats.dir/workload_stats.cpp.o"
  "CMakeFiles/workload_stats.dir/workload_stats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
