# Empty dependencies file for compression_ratio.
# This may be replaced when dependencies are built.
