file(REMOVE_RECURSE
  "../bench/compression_ratio"
  "../bench/compression_ratio.pdb"
  "CMakeFiles/compression_ratio.dir/compression_ratio.cpp.o"
  "CMakeFiles/compression_ratio.dir/compression_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
