file(REMOVE_RECURSE
  "../bench/ablation_scheduling"
  "../bench/ablation_scheduling.pdb"
  "CMakeFiles/ablation_scheduling.dir/ablation_scheduling.cpp.o"
  "CMakeFiles/ablation_scheduling.dir/ablation_scheduling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
