# Empty compiler generated dependencies file for ranking_selection.
# This may be replaced when dependencies are built.
