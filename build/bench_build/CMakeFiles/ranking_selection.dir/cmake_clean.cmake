file(REMOVE_RECURSE
  "../bench/ranking_selection"
  "../bench/ranking_selection.pdb"
  "CMakeFiles/ranking_selection.dir/ranking_selection.cpp.o"
  "CMakeFiles/ranking_selection.dir/ranking_selection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranking_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
