file(REMOVE_RECURSE
  "../bench/decompression"
  "../bench/decompression.pdb"
  "CMakeFiles/decompression.dir/decompression.cpp.o"
  "CMakeFiles/decompression.dir/decompression.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decompression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
