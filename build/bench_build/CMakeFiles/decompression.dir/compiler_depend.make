# Empty compiler generated dependencies file for decompression.
# This may be replaced when dependencies are built.
