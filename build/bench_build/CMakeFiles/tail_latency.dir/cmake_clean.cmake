file(REMOVE_RECURSE
  "../bench/tail_latency"
  "../bench/tail_latency.pdb"
  "CMakeFiles/tail_latency.dir/tail_latency.cpp.o"
  "CMakeFiles/tail_latency.dir/tail_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tail_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
