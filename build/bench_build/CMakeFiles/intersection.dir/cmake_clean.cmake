file(REMOVE_RECURSE
  "../bench/intersection"
  "../bench/intersection.pdb"
  "CMakeFiles/intersection.dir/intersection.cpp.o"
  "CMakeFiles/intersection.dir/intersection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
