# Empty dependencies file for intersection.
# This may be replaced when dependencies are built.
