file(REMOVE_RECURSE
  "../bench/ablation_partition"
  "../bench/ablation_partition.pdb"
  "CMakeFiles/ablation_partition.dir/ablation_partition.cpp.o"
  "CMakeFiles/ablation_partition.dir/ablation_partition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
