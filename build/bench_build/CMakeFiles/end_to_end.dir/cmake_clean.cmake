file(REMOVE_RECURSE
  "../bench/end_to_end"
  "../bench/end_to_end.pdb"
  "CMakeFiles/end_to_end.dir/end_to_end.cpp.o"
  "CMakeFiles/end_to_end.dir/end_to_end.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
