# Empty compiler generated dependencies file for service_load.
# This may be replaced when dependencies are built.
