file(REMOVE_RECURSE
  "../bench/service_load"
  "../bench/service_load.pdb"
  "CMakeFiles/service_load.dir/service_load.cpp.o"
  "CMakeFiles/service_load.dir/service_load.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
