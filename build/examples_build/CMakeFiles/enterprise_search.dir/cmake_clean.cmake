file(REMOVE_RECURSE
  "../examples/enterprise_search"
  "../examples/enterprise_search.pdb"
  "CMakeFiles/enterprise_search.dir/enterprise_search.cpp.o"
  "CMakeFiles/enterprise_search.dir/enterprise_search.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
