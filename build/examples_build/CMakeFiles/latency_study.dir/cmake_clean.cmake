file(REMOVE_RECURSE
  "../examples/latency_study"
  "../examples/latency_study.pdb"
  "CMakeFiles/latency_study.dir/latency_study.cpp.o"
  "CMakeFiles/latency_study.dir/latency_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
