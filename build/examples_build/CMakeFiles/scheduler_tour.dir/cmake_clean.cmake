file(REMOVE_RECURSE
  "../examples/scheduler_tour"
  "../examples/scheduler_tour.pdb"
  "CMakeFiles/scheduler_tour.dir/scheduler_tour.cpp.o"
  "CMakeFiles/scheduler_tour.dir/scheduler_tour.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
