# Empty dependencies file for scheduler_tour.
# This may be replaced when dependencies are built.
