#include "service/service_sim.h"

#include "service/queueing.h"

namespace griffin::service {

std::vector<sim::Duration> measure_service_times(
    core::Engine& engine, const std::vector<core::Query>& queries,
    core::CacheCounters* cache, core::TraceSummary* trace,
    core::OverlapCounters* overlap) {
  std::vector<sim::Duration> times;
  times.reserve(queries.size());
  for (const auto& q : queries) {
    const auto res = engine.execute(q);
    if (cache != nullptr) *cache += res.metrics.cache;
    if (trace != nullptr) trace->add(res.trace);
    if (overlap != nullptr) *overlap += res.metrics.overlap;
    times.push_back(res.metrics.total);
  }
  return times;
}

ServiceResult run_service(std::span<const sim::Duration> service_times,
                          const ServiceConfig& cfg) {
  ServiceResult res;
  PoissonArrivals arrivals(cfg.arrival_qps, cfg.seed);
  FcfsServer server;
  QueueDepthTracker depth;

  for (const sim::Duration service : service_times) {
    const sim::Duration arrival = arrivals.next();
    const Completion c = server.submit(arrival, service);
    res.service_ms.add(service.ms());
    res.response_ms.add((c.done - arrival).ms());
    depth.observe(arrival, c.done);
  }

  res.utilization = server.utilization(server.free_at());
  res.max_queue_depth = depth.max_depth();
  return res;
}

ServiceResult run_service(core::Engine& engine,
                          const std::vector<core::Query>& queries,
                          const ServiceConfig& cfg) {
  core::CacheCounters cache;
  core::TraceSummary trace;
  core::OverlapCounters overlap;
  const auto times =
      measure_service_times(engine, queries, &cache, &trace, &overlap);
  ServiceResult res = run_service(std::span<const sim::Duration>(times), cfg);
  res.engine_cache = cache;
  res.trace = trace;
  res.engine_overlap = overlap;
  return res;
}

}  // namespace griffin::service
