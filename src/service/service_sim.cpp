#include "service/service_sim.h"

#include <algorithm>
#include <cmath>

namespace griffin::service {

std::vector<sim::Duration> measure_service_times(
    core::Engine& engine, const std::vector<core::Query>& queries) {
  std::vector<sim::Duration> times;
  times.reserve(queries.size());
  for (const auto& q : queries) {
    times.push_back(engine.execute(q).metrics.total);
  }
  return times;
}

ServiceResult run_service(std::span<const sim::Duration> service_times,
                          const ServiceConfig& cfg) {
  ServiceResult res;
  util::Xoshiro256 rng(cfg.seed);

  // Poisson arrivals: exponential inter-arrival gaps with mean 1/qps.
  const double mean_gap_s = 1.0 / cfg.arrival_qps;

  sim::Duration arrival;      // current query's arrival time
  sim::Duration server_free;  // when the server becomes idle
  sim::Duration busy_total;
  std::vector<sim::Duration> completions;  // recent completion times

  for (const sim::Duration service : service_times) {
    const double u = std::max(rng.uniform01(), 1e-12);
    arrival += sim::Duration::from_seconds(-mean_gap_s * std::log(u));

    res.service_ms.add(service.ms());
    const sim::Duration start = sim::max(arrival, server_free);
    const sim::Duration done = start + service;
    server_free = done;
    busy_total += service;
    res.response_ms.add((done - arrival).ms());

    // Backlog depth at this arrival: completions still pending.
    completions.push_back(done);
    std::uint64_t in_queue = 0;
    for (const auto& c : completions) {
      if (c > arrival) ++in_queue;
    }
    res.max_queue_depth = std::max(res.max_queue_depth, in_queue);
    if (completions.size() > 4096) {
      completions.erase(completions.begin(), completions.begin() + 2048);
    }
  }

  if (server_free.ps() > 0) {
    res.utilization = busy_total / server_free;
  }
  return res;
}

ServiceResult run_service(core::Engine& engine,
                          const std::vector<core::Query>& queries,
                          const ServiceConfig& cfg) {
  const auto times = measure_service_times(engine, queries);
  return run_service(std::span<const sim::Duration>(times), cfg);
}

}  // namespace griffin::service
