#include "service/service_sim.h"

#include "service/queueing.h"

namespace griffin::service {

std::vector<sim::Duration> measure_service_times(
    core::Engine& engine, const std::vector<core::Query>& queries,
    core::CacheCounters* cache, core::TraceSummary* trace,
    core::OverlapCounters* overlap, fault::FaultCounters* faults) {
  std::vector<sim::Duration> times;
  times.reserve(queries.size());
  for (const auto& q : queries) {
    const auto res = engine.execute(q);
    if (cache != nullptr) *cache += res.metrics.cache;
    if (trace != nullptr) trace->add(res.trace);
    if (overlap != nullptr) *overlap += res.metrics.overlap;
    if (faults != nullptr) *faults += res.metrics.faults;
    times.push_back(res.metrics.total);
  }
  return times;
}

ServiceResult run_service(std::span<const sim::Duration> service_times,
                          const ServiceConfig& cfg) {
  ServiceResult res;
  PoissonArrivals arrivals(cfg.arrival_qps, cfg.seed);
  FcfsServer server;
  QueueDepthTracker depth;

  // Admission control: completion times of admitted queries, in submit
  // order. FCFS completions are nondecreasing, so a head pointer gives the
  // in-system count at any arrival in O(1) amortized.
  std::vector<sim::Duration> done_times;
  if (cfg.max_queue_depth > 0) done_times.reserve(service_times.size());
  std::size_t head = 0;

  for (const sim::Duration service : service_times) {
    const sim::Duration arrival = arrivals.next();
    if (cfg.max_queue_depth > 0) {
      while (head < done_times.size() && done_times[head] <= arrival) ++head;
      if (done_times.size() - head >= cfg.max_queue_depth) {
        // The queue is full: shed instead of letting the backlog (and every
        // later response time) grow without bound.
        ++res.faults.shed_queries;
        continue;
      }
    }
    const Completion c = server.submit(arrival, service);
    if (cfg.max_queue_depth > 0) done_times.push_back(c.done);
    res.service_ms.add(service.ms());
    res.response_ms.add((c.done - arrival).ms());
    depth.observe(arrival, c.done);
  }

  res.utilization = server.utilization(server.free_at());
  res.horizon = server.free_at();
  res.max_queue_depth = depth.max_depth();
  return res;
}

ServiceResult run_service(core::Engine& engine,
                          const std::vector<core::Query>& queries,
                          const ServiceConfig& cfg) {
  core::CacheCounters cache;
  core::TraceSummary trace;
  core::OverlapCounters overlap;
  fault::FaultCounters faults;
  const auto times = measure_service_times(engine, queries, &cache, &trace,
                                           &overlap, &faults);
  ServiceResult res = run_service(std::span<const sim::Duration>(times), cfg);
  res.engine_cache = cache;
  res.trace = trace;
  res.engine_overlap = overlap;
  res.faults += faults;
  // Per-resource busy fractions over the FCFS makespan: the summed
  // per-query timeline busy divided by when the server finally freed.
  // Sequential service never overlaps queries, so these are honest busy
  // fractions of the whole run — the single-tenant baseline the
  // multi-tenant overload is compared against.
  if (res.horizon.ps() > 0) {
    for (std::size_t r = 0; r < sim::kNumResources; ++r) {
      res.resource_utilization[r] =
          overlap.busy(static_cast<sim::Resource>(r)) / res.horizon;
    }
  }
  return res;
}

ServiceResult run_service(tenancy::DeviceManager& device,
                          const std::vector<core::Query>& queries,
                          const ServiceConfig& cfg) {
  ServiceResult res;
  PoissonArrivals arrivals(cfg.arrival_qps, cfg.seed);
  std::vector<tenancy::TenantQuery> load;
  load.reserve(queries.size());
  for (const auto& q : queries) {
    load.push_back({q, arrivals.next()});
  }

  const auto outcomes = device.run(load, cfg.max_queue_depth);
  QueueDepthTracker depth;
  for (const auto& out : outcomes) {
    if (out.shed) {
      ++res.faults.shed_queries;
      continue;
    }
    res.service_ms.add(out.result.metrics.total.ms());
    res.response_ms.add((out.finish - out.arrival).ms());
    depth.observe(out.arrival, out.finish);
    res.engine_cache += out.result.metrics.cache;
    res.trace.add(out.result.trace);
    res.engine_overlap += out.result.metrics.overlap;
    res.faults += out.result.metrics.faults;
  }
  res.resource_utilization = device.busy_fractions();
  res.horizon = device.timeline().critical_path();
  for (const double f : res.resource_utilization) {
    res.utilization = std::max(res.utilization, f);
  }
  res.max_queue_depth = depth.max_depth();
  return res;
}

}  // namespace griffin::service
