// Queueing primitives shared by the single-node service simulation
// (service_sim.h) and the multi-node cluster broker (cluster/broker.h):
// a Poisson arrival process and an FCFS single-server queue, both in the
// repository-wide simulated clock. Factoring these out is what lets the
// cluster layer model per-shard and per-replica queues with exactly the
// same discipline the single-node simulation uses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "util/rng.h"

namespace griffin::service {

/// Poisson arrival process: exponential inter-arrival gaps with mean 1/qps.
/// Degenerate loads are guarded rather than undefined: qps <= 0 (or small
/// enough that a gap would overflow the int64 picosecond clock) caps each
/// gap at one simulated hour — far beyond any service time in the repo, so
/// such a stream behaves as "no queueing" instead of crashing.
class PoissonArrivals {
 public:
  PoissonArrivals(double qps, std::uint64_t seed) : rng_(seed) {
    mean_gap_s_ = qps > 0.0 ? 1.0 / qps : kMaxGapSeconds;
  }

  /// Advances and returns the next arrival time (nondecreasing).
  sim::Duration next() {
    const double u = std::max(rng_.uniform01(), 1e-12);
    const double gap_s =
        std::min(-mean_gap_s_ * std::log(u), kMaxGapSeconds);
    clock_ += sim::Duration::from_seconds(gap_s);
    return clock_;
  }

  sim::Duration now() const { return clock_; }

 private:
  static constexpr double kMaxGapSeconds = 3600.0;
  util::Xoshiro256 rng_;
  double mean_gap_s_;
  sim::Duration clock_;
};

/// A job's schedule on one server.
struct Completion {
  sim::Duration start;  ///< service begins (>= arrival)
  sim::Duration done;   ///< service ends
  sim::Duration wait() const { return start; }
};

/// Single FCFS server: one job at a time, work-conserving. submit() is the
/// whole discipline — a job arriving at `arrival` starts when the server
/// frees and holds it for `service`. Out-of-order submissions (the hedging
/// path re-issues work at later timestamps) are still scheduled correctly:
/// start = max(arrival, free_at) is valid for any submission order, it just
/// is no longer strictly first-come-first-served across interleaved streams.
class FcfsServer {
 public:
  Completion submit(sim::Duration arrival, sim::Duration service) {
    const sim::Duration start = sim::max(arrival, free_at_);
    const sim::Duration done = start + service;
    free_at_ = done;
    busy_ += service;
    ++jobs_;
    return {start, done};
  }

  sim::Duration free_at() const { return free_at_; }
  sim::Duration busy_total() const { return busy_; }
  std::uint64_t jobs() const { return jobs_; }

  /// Busy fraction over [0, horizon]; 0 for an empty horizon.
  double utilization(sim::Duration horizon) const {
    if (horizon.ps() <= 0) return 0.0;
    return busy_ / horizon;
  }

 private:
  sim::Duration free_at_;
  sim::Duration busy_;
  std::uint64_t jobs_ = 0;
};

/// Tracks the maximum number of jobs simultaneously in the system (queued +
/// in service), observed at arrival instants — the backlog a newly arriving
/// query sees, itself included.
class QueueDepthTracker {
 public:
  /// Records a job's (arrival, completion); returns the depth at arrival.
  std::uint64_t observe(sim::Duration arrival, sim::Duration done) {
    completions_.push_back(done);
    std::uint64_t depth = 0;
    for (const auto& c : completions_) {
      if (c > arrival) ++depth;
    }
    max_depth_ = std::max(max_depth_, depth);
    // Old completions can never exceed a later arrival again; cap the scan.
    if (completions_.size() > 4096) {
      completions_.erase(completions_.begin(), completions_.begin() + 2048);
    }
    return depth;
  }

  std::uint64_t max_depth() const { return max_depth_; }

 private:
  std::vector<sim::Duration> completions_;
  std::uint64_t max_depth_ = 0;
};

}  // namespace griffin::service
