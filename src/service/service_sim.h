// Interactive-service simulation: the paper closes by noting Griffin should
// be evaluated "in more complex scenarios under heavy system loads with
// multiple users" — this module provides that as a discrete-event queueing
// simulation in the same simulated clock the engines use.
//
// Queries arrive as a Poisson process and queue FCFS for a single query-
// processing node (the paper's per-node intra-query setting). A query's
// service time is its engine latency (simulated); its *response* time adds
// the queueing delay. Because Griffin shortens exactly the long queries
// that block the queue, its tail-latency advantage compounds under load —
// the classic head-of-line effect this bench quantifies.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/query.h"
#include "tenancy/device_manager.h"
#include "util/rng.h"
#include "util/stats.h"

namespace griffin::service {

struct ServiceConfig {
  /// Mean offered load in queries per second (Poisson arrivals). Non-positive
  /// or vanishingly small rates degrade gracefully to a no-queueing stream
  /// (gaps capped at one simulated hour; see service/queueing.h).
  double arrival_qps = 100.0;
  std::uint64_t seed = 99;
  /// Admission control (DESIGN.md §11): a query arriving while this many
  /// queries are already in the system (queued + in service) is shed — no
  /// service, no response sample, counted in ServiceResult::faults. Zero
  /// disables shedding (the unbounded legacy queue).
  std::uint32_t max_queue_depth = 0;
};

struct ServiceResult {
  util::PercentileTracker response_ms;  ///< queueing + service
  util::PercentileTracker service_ms;   ///< engine latency alone
  /// Busy fraction of the server as a whole: the FCFS server's busy/span
  /// in the single-server overloads, the bottleneck resource's fraction in
  /// the multi-tenant overload.
  double utilization = 0.0;
  /// Per-resource busy fractions (indexed by sim::Resource) of the run's
  /// span: from summed per-query timeline busy in the engine overload,
  /// from the shared timeline in the multi-tenant overload. Zero in the
  /// precomputed-service-times overload, which has no resource data.
  std::array<double, sim::kNumResources> resource_utilization{};
  /// The run's makespan: when the server (or shared device) finally went
  /// idle. The denominator of the utilization fractions.
  sim::Duration horizon;
  std::uint64_t max_queue_depth = 0;
  /// Engine cache-tier counters summed over the run (only filled by the
  /// engine-executing overload of run_service; zero otherwise).
  core::CacheCounters engine_cache;
  /// Plan-step aggregate (QueryResult::trace) over the run (same caveat).
  core::TraceSummary trace;
  /// Copy/compute-overlap counters over the run (same caveat).
  core::OverlapCounters engine_overlap;
  /// Fault counters: engine-level faults from the execution pass (engine-
  /// executing overload only) plus queries shed by admission control.
  fault::FaultCounters faults;

  double mean_response_ms() const { return response_ms.mean(); }
  std::uint64_t shed_queries() const { return faults.shed_queries; }
};

/// Queueing simulation over precomputed per-query service times (engine
/// latencies are deterministic, so load sweeps reuse one execution pass).
ServiceResult run_service(std::span<const sim::Duration> service_times,
                          const ServiceConfig& cfg);

/// Convenience: executes each query once through `engine`, then simulates.
ServiceResult run_service(core::Engine& engine,
                          const std::vector<core::Query>& queries,
                          const ServiceConfig& cfg);

/// Multi-tenant service simulation (DESIGN.md §12): queries arrive Poisson
/// and run concurrently through the DeviceManager's shared timeline — a
/// query completes when its critical path through the *shared* device
/// finishes, so queueing, contention, and cross-query batching all shape
/// the response distribution. `cfg.max_queue_depth` sheds at arrival as in
/// the FCFS overloads. resource_utilization comes from the shared
/// timeline's busy clocks; `utilization` is the bottleneck resource's.
ServiceResult run_service(tenancy::DeviceManager& device,
                          const std::vector<core::Query>& queries,
                          const ServiceConfig& cfg);

/// One execution pass: the service-time vector for a query set. When
/// `cache` / `trace` / `overlap` / `faults` are non-null, the engines'
/// per-query cache-tier counters, plan-step traces, overlap counters, and
/// fault counters are summed into them.
std::vector<sim::Duration> measure_service_times(
    core::Engine& engine, const std::vector<core::Query>& queries,
    core::CacheCounters* cache = nullptr, core::TraceSummary* trace = nullptr,
    core::OverlapCounters* overlap = nullptr,
    fault::FaultCounters* faults = nullptr);

}  // namespace griffin::service
