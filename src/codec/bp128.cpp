#include "codec/bp128.h"

#include <algorithm>

#include "util/bits.h"

namespace griffin::codec {

std::uint8_t bp128_bit_width(std::span<const std::uint32_t> values) {
  std::uint32_t max = 0;
  for (std::uint32_t v : values) max = std::max(max, v);
  return max == 0 ? 0 : static_cast<std::uint8_t>(util::floor_log2(max) + 1);
}

std::uint8_t bp128_encode(std::span<const std::uint32_t> values,
                          std::vector<std::uint64_t>& blob,
                          std::uint64_t& bit_pos) {
  const std::uint8_t b = bp128_bit_width(values);
  if (b == 0) return 0;
  const std::uint64_t end_bits = bit_pos + values.size() * b;
  blob.resize(
      std::max<std::size_t>(blob.size(), util::words_for_bits(end_bits)), 0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    util::write_bits(blob.data(), bit_pos + i * b, b, values[i]);
  }
  bit_pos = end_bits;
  return b;
}

void bp128_decode(std::span<const std::uint64_t> blob, std::uint64_t bit_pos,
                  std::uint32_t count, std::uint8_t b, std::uint32_t* out) {
  if (b == 0) {
    std::fill_n(out, count, 0u);
    return;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t at = bit_pos + static_cast<std::uint64_t>(i) * b;
    out[i] = static_cast<std::uint32_t>(util::read_bits(blob.data(), at, b));
  }
}

std::uint64_t bp128_encoded_bits(std::span<const std::uint32_t> values) {
  return values.size() * static_cast<std::uint64_t>(bp128_bit_width(values));
}

}  // namespace griffin::codec
