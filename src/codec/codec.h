// The codec zoo: a uniform PostingCodec interface over every block codec,
// a registry mapping Scheme tags to singleton codec instances, and the
// adaptive per-list selection policy. BlockCompressedList dispatches its
// build/decode through the registry, so adding a codec means implementing
// the interface and extending the Scheme enum — every downstream consumer
// (cpu/gpu decode paths, scheduler cost model, cache byte budgets, index
// serialization) picks it up through the tagged BlockHeader.
#pragma once

#include <span>

#include "codec/block_codec.h"

namespace griffin::codec {

/// Per-build knobs a codec may consume (only PForDelta does today).
struct EncodeOptions {
  /// Pins the PForDelta slot width; 0 = automatic 90%-coverage rule.
  std::uint8_t pfor_forced_b = 0;
};

/// One block codec. Implementations are stateless singletons (registry
/// below); blocks are strictly increasing docID runs of at most 2^12 values.
class PostingCodec {
 public:
  virtual ~PostingCodec() = default;

  virtual Scheme scheme() const = 0;
  virtual const char* name() const = 0;

  /// Encodes one block starting at bit `bit_pos` of `blob` (append style:
  /// bits at and beyond bit_pos must be zero; blob grows as needed);
  /// advances bit_pos. Returns the tagged header the skip table stores.
  virtual BlockHeader encode_block(std::span<const DocId> block,
                                   std::vector<std::uint64_t>& blob,
                                   std::uint64_t& bit_pos,
                                   const EncodeOptions& opt) const = 0;

  /// Decodes the block described by (meta, blob) into out (room for
  /// meta.count values).
  virtual void decode_block(std::span<const std::uint64_t> blob,
                            const BlockMeta& meta, DocId* out) const = 0;

  /// Exact payload bits encode_block would emit — the selection policy's
  /// objective function.
  virtual std::uint64_t encoded_bits(std::span<const DocId> block,
                                     const EncodeOptions& opt) const = 0;

  /// False when the scheme cannot represent the block (Simple16 with a
  /// d-gap over 28 bits); build() rejects, the selector routes elsewhere.
  virtual bool can_encode(std::span<const DocId> block) const {
    (void)block;
    return true;
  }
};

/// The singleton codec for a scheme tag.
const PostingCodec& codec_for(Scheme s);

/// Every registered scheme, in enum order.
std::span<const Scheme> all_schemes();

/// Shape features of a docID list, the selection policy's inputs (exposed
/// for tests and the workload-stats bench).
struct ListShape {
  std::uint64_t length = 0;
  double density = 0.0;  ///< length / (last - first + 1)
  /// Fraction of d-gaps equal to their predecessor — the repetitiveness
  /// signal Re-Pair exploits.
  double gap_repeat_fraction = 0.0;
  std::uint32_t max_gap_bits = 0;  ///< bit width of the largest d-gap
};

ListShape analyze_list(std::span<const DocId> docids);

/// Adaptive per-list codec choice: among the schemes that can represent the
/// list (Simple16 drops out when max_gap_bits > 28), pick the one with the
/// smallest exact encoded size; ties break toward the earlier scheme in
/// kSelectionOrder (decode-friendlier codecs first). Exhaustive sizing makes
/// the CI invariant — adaptive total <= every fixed scheme's total — hold
/// by construction.
Scheme select_scheme(std::span<const DocId> docids,
                     std::uint32_t block_size = kDefaultBlockSize);

/// Tie-break preference order for select_scheme: GPU-parallel and
/// vector-friendly decoders before byte/selector/grammar codecs.
inline constexpr Scheme kSelectionOrder[kNumSchemes] = {
    Scheme::kEliasFano, Scheme::kPForDelta, Scheme::kBitPack128,
    Scheme::kSimple16,  Scheme::kVarByte,   Scheme::kRePair,
};

}  // namespace griffin::codec
