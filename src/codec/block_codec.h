// Block-partitioned compressed posting lists with skip pointers (paper
// Figure 2). DocIDs are split into fixed-size blocks (128 by default — the
// constant behind the paper's ratio-128 crossover analysis, §3.2); each block
// is compressed independently, and a skip table stores every block's first
// and last docID plus its offset, so intersections can locate and decompress
// only the blocks that can possibly contain matches.
//
// Since the codec-zoo refactor every list carries its own scheme and every
// skip entry a *tagged* per-scheme header (BlockHeader) instead of the old
// inline PFor+EF header pair — the registry in codec/codec.h maps a scheme
// tag to its PostingCodec, and adaptive indexes mix schemes per list.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "codec/eliasfano.h"
#include "codec/pfordelta.h"

namespace griffin::codec {

using DocId = std::uint32_t;

enum class Scheme : std::uint8_t {
  kPForDelta,
  kEliasFano,
  kVarByte,
  kSimple16,    ///< d-gaps must fit in 28 bits (enforced at build time)
  kBitPack128,  ///< SIMD-BP128-style fixed-width packing (codec/bp128.h)
  kRePair,      ///< grammar compression for repetitive lists (codec/repair.h)
};

inline constexpr int kNumSchemes = 6;

std::string scheme_name(Scheme s);

inline constexpr std::uint32_t kDefaultBlockSize = 128;

/// Tagged per-scheme block header. One fixed shape covers every codec so the
/// skip table (and the GPU's BlockDesc mirror) stays a POD array; the
/// generic fields are aliased per scheme via the named views below.
struct BlockHeader {
  Scheme scheme = Scheme::kPForDelta;
  std::uint8_t b = 0;      ///< pfor/bp128 slot, ef low-bit, repair symbol width
  std::uint16_t h16a = 0;  ///< pfor: n_exceptions; repair: n_rules
  std::uint16_t h16b = 0;  ///< pfor: first_exception; repair: n_seq
  std::uint32_t h32 = 0;   ///< ef: hb_words; repair: n_dict

  PForHeader pfor() const { return PForHeader{b, h16a, h16b}; }
  EFHeader ef() const { return EFHeader{b, h32}; }

  static BlockHeader from_pfor(const PForHeader& h) {
    return {Scheme::kPForDelta, h.b, h.n_exceptions, h.first_exception, 0};
  }
  static BlockHeader from_ef(const EFHeader& h) {
    return {Scheme::kEliasFano, h.b, 0, 0, h.hb_words};
  }
};

/// Skip-table entry: one per block. Carries the tagged per-scheme header
/// inline so a block is decodable from (meta, blob) alone — which is exactly
/// what the GPU kernels receive.
struct BlockMeta {
  DocId first = 0;               ///< first docID in the block
  DocId last = 0;                ///< last docID in the block
  std::uint64_t bit_offset = 0;  ///< payload position in the blob
  std::uint16_t count = 0;       ///< postings in the block
  BlockHeader hdr;               ///< per-scheme header (tagged)
};

class BlockCompressedList {
 public:
  BlockCompressedList() = default;

  /// Compresses a strictly increasing docID sequence. Throws
  /// std::invalid_argument when the scheme cannot represent the input
  /// (Simple16 with a d-gap over 28 bits). pfor_forced_b pins the PForDelta
  /// slot width (0 = automatic 90%-coverage rule); it exposes the
  /// compression-ratio-vs-decode-speed trade-off of §2.3 for the ablations.
  static BlockCompressedList build(std::span<const DocId> docids, Scheme scheme,
                                   std::uint32_t block_size = kDefaultBlockSize,
                                   std::uint8_t pfor_forced_b = 0);

  /// Reassembles a list from previously serialized parts (index/io.h).
  static BlockCompressedList from_parts(Scheme scheme, std::uint32_t block_size,
                                        std::uint64_t size,
                                        std::vector<std::uint64_t> blob,
                                        std::vector<BlockMeta> metas);

  std::uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint32_t block_size() const { return block_size_; }
  std::size_t num_blocks() const { return metas_.size(); }
  Scheme scheme() const { return scheme_; }

  std::span<const std::uint64_t> blob() const { return blob_; }
  std::span<const BlockMeta> metas() const { return metas_; }
  const BlockMeta& meta(std::size_t b) const { return metas_[b]; }

  DocId first_docid() const { return metas_.front().first; }
  DocId last_docid() const { return metas_.back().last; }

  /// Decodes block b into out (room for block_size() values); returns count.
  std::uint32_t decode_block(std::size_t b, DocId* out) const;

  /// Decodes the whole list.
  void decode_all(std::vector<DocId>& out) const;

  /// Smallest block index whose last docID is >= target (binary search over
  /// the skip table); num_blocks() if no such block.
  std::size_t find_block(DocId target) const;

  /// Compressed footprint including the skip table (what the compression-
  /// ratio experiment, Table 1, measures — and what the cache tiers budget).
  std::uint64_t compressed_bytes() const;
  double bits_per_posting() const {
    return size_ == 0 ? 0.0
                      : 8.0 * static_cast<double>(compressed_bytes()) /
                            static_cast<double>(size_);
  }

 private:
  Scheme scheme_ = Scheme::kPForDelta;
  std::uint32_t block_size_ = kDefaultBlockSize;
  std::uint64_t size_ = 0;
  std::vector<std::uint64_t> blob_;
  std::vector<BlockMeta> metas_;
};

}  // namespace griffin::codec
