#include "codec/simple16.h"

#include <array>
#include <stdexcept>

namespace griffin::codec {

namespace {

struct Slot {
  std::uint8_t count;
  std::uint8_t bits;
};

/// The 16 layouts: runs of (count x bits) summing to <= 28 bits. This is a
/// standard Simple16 table variant; layouts are tried in decreasing slot
/// count so the densest applicable packing wins.
struct Mode {
  std::array<Slot, 3> runs;
  std::uint8_t total;  // slots
};

constexpr std::array<Mode, kSimple16Modes> kModes{{
    {{{{28, 1}, {0, 0}, {0, 0}}}, 28},
    {{{{7, 2}, {14, 1}, {0, 0}}}, 21},
    {{{{14, 1}, {7, 2}, {0, 0}}}, 21},
    {{{{14, 2}, {0, 0}, {0, 0}}}, 14},
    {{{{9, 3}, {0, 0}, {0, 0}}}, 9},
    {{{{2, 5}, {6, 3}, {0, 0}}}, 8},
    {{{{6, 3}, {2, 5}, {0, 0}}}, 8},
    {{{{7, 4}, {0, 0}, {0, 0}}}, 7},
    {{{{1, 10}, {6, 3}, {0, 0}}}, 7},
    {{{{5, 5}, {0, 0}, {0, 0}}}, 5},
    {{{{4, 7}, {0, 0}, {0, 0}}}, 4},
    {{{{1, 14}, {2, 7}, {0, 0}}}, 3},
    {{{{2, 7}, {1, 14}, {0, 0}}}, 3},
    {{{{3, 9}, {0, 0}, {0, 0}}}, 3},
    {{{{2, 14}, {0, 0}, {0, 0}}}, 2},
    {{{{1, 28}, {0, 0}, {0, 0}}}, 1},
}};

std::uint8_t slot_bits(const Mode& m, int slot) {
  int s = slot;
  for (const Slot& run : m.runs) {
    if (run.count == 0) break;
    if (s < run.count) return run.bits;
    s -= run.count;
  }
  return 0;
}

/// Can the next `avail` values starting at p be packed with mode m?
bool mode_fits(const Mode& m, std::span<const std::uint32_t> values,
               std::size_t p) {
  const std::size_t avail = values.size() - p;
  const std::size_t n = std::min<std::size_t>(m.total, avail);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t bits = slot_bits(m, static_cast<int>(i));
    if (bits < 32 && values[p + i] >= (1u << bits)) return false;
  }
  return true;
}

std::uint32_t pack_word(int mode_idx, const Mode& m,
                        std::span<const std::uint32_t> values, std::size_t p,
                        std::size_t n) {
  std::uint32_t word = static_cast<std::uint32_t>(mode_idx) << 28;
  int shift = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t bits = slot_bits(m, static_cast<int>(i));
    word |= values[p + i] << shift;
    shift += bits;
  }
  return word;
}

}  // namespace

std::size_t simple16_encode(std::span<const std::uint32_t> values,
                            std::vector<std::uint32_t>& out) {
  const std::size_t start = out.size();
  std::size_t p = 0;
  while (p < values.size()) {
    bool packed = false;
    for (int mi = 0; mi < kSimple16Modes; ++mi) {
      const Mode& m = kModes[mi];
      if (!mode_fits(m, values, p)) continue;
      const std::size_t n =
          std::min<std::size_t>(m.total, values.size() - p);
      out.push_back(pack_word(mi, m, values, p, n));
      p += n;
      packed = true;
      break;
    }
    if (!packed) {
      throw std::invalid_argument("simple16: value exceeds 28 bits");
    }
  }
  return out.size() - start;
}

std::size_t simple16_decode(std::span<const std::uint32_t> words,
                            std::uint32_t count, std::uint32_t* out) {
  std::size_t w = 0;
  std::uint32_t produced = 0;
  while (produced < count) {
    const std::uint32_t word = words[w++];
    const Mode& m = kModes[word >> 28];
    int shift = 0;
    for (int i = 0; i < m.total && produced < count; ++i) {
      const std::uint8_t bits = slot_bits(m, i);
      out[produced++] = (word >> shift) & ((1u << bits) - 1u);
      shift += bits;
    }
  }
  return w;
}

std::size_t simple16_encoded_words(std::span<const std::uint32_t> values) {
  std::vector<std::uint32_t> scratch;
  return simple16_encode(values, scratch);
}

}  // namespace griffin::codec
