// Variable-byte (VByte) coding: 7 data bits per byte, MSB is the
// continuation flag. The simplest widely deployed posting-list codec; kept
// as a baseline codec for the compression-ratio comparison and as the
// term-frequency side channel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace griffin::codec {

/// Appends the encoding of v to out; returns bytes written (1..5).
inline std::uint32_t vbyte_encode_one(std::uint32_t v,
                                      std::vector<std::uint8_t>& out) {
  std::uint32_t n = 0;
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
    ++n;
  }
  out.push_back(static_cast<std::uint8_t>(v));
  return n + 1;
}

/// Decodes one value at `in + pos`; advances pos.
inline std::uint32_t vbyte_decode_one(std::span<const std::uint8_t> in,
                                      std::size_t& pos) {
  std::uint32_t v = 0;
  int shift = 0;
  for (;;) {
    const std::uint8_t byte = in[pos++];
    v |= static_cast<std::uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

/// Encodes all values; returns the byte stream.
std::vector<std::uint8_t> vbyte_encode(std::span<const std::uint32_t> values);

/// Decodes exactly `count` values from the stream into out.
void vbyte_decode(std::span<const std::uint8_t> in, std::uint32_t count,
                  std::uint32_t* out);

/// Exact encoded size in bytes.
std::uint64_t vbyte_encoded_bytes(std::span<const std::uint32_t> values);

}  // namespace griffin::codec
