// Simple16 coding (Zhang, Long & Suel [38]; Yan, Ding & Suel [37]): each
// 32-bit word packs a 4-bit selector plus 28 data bits holding between 1
// and 28 small integers in one of 16 fixed layouts. A classic CPU posting
// codec of the paper's era, included as an extra baseline for the
// compression-ratio table and the codec microbenches.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace griffin::codec {

/// Number of Simple16 layouts.
inline constexpr int kSimple16Modes = 16;

/// Encodes `values` (each < 2^28) into 32-bit words appended to `out`.
/// Returns the number of words written. Throws std::invalid_argument if a
/// value does not fit in 28 bits.
std::size_t simple16_encode(std::span<const std::uint32_t> values,
                            std::vector<std::uint32_t>& out);

/// Decodes exactly `count` values from `words`; returns words consumed.
std::size_t simple16_decode(std::span<const std::uint32_t> words,
                            std::uint32_t count, std::uint32_t* out);

/// Exact encoded size in words.
std::size_t simple16_encoded_words(std::span<const std::uint32_t> values);

}  // namespace griffin::codec
