// Elias-Fano encoding of monotone (non-decreasing) integer sequences, after
// Elias [13] / Vigna's quasi-succinct indices [30] and the paper's Figure 4.
//
// For n values bounded by universe U, each value v splits into
//   low  = v & ((1<<b)-1)  with b = floor(log2(U/n))   (fixed width), and
//   high = v >> b.
// The low bits are packed contiguously; the highs are stored as a unary-coded
// bit vector where the i-th set bit sits at position high_i + i — so the
// vector has exactly n ones and at most (U>>b)+n+1 bits total (~2 bits/elem
// on top of the b low bits).
//
// The high-bits vector is stored as 32-bit words because the GPU Para-EF
// kernel (paper Algorithm 1) popcounts and prefix-sums those words.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace griffin::codec {

struct EFHeader {
  std::uint8_t b = 0;          ///< low bits per element
  std::uint32_t hb_words = 0;  ///< 32-bit words in the high-bits vector
};

/// Low-bit width for n values with universe U (Figure 4: b = floor(log2 U/n)).
std::uint8_t ef_low_bits(std::uint64_t universe, std::uint64_t n);

/// Encodes the non-decreasing `values` (each <= universe) starting at bit
/// `bit_pos` of `blob`; bit_pos is advanced. Layout: high-bits vector (padded
/// to whole 32-bit words), then the packed low bits.
EFHeader ef_encode(std::span<const std::uint32_t> values,
                   std::uint32_t universe, std::vector<std::uint64_t>& blob,
                   std::uint64_t& bit_pos);

/// Sequential decode of `count` values encoded at bit_pos with `hdr`.
void ef_decode(std::span<const std::uint64_t> blob, std::uint64_t bit_pos,
               std::uint32_t count, const EFHeader& hdr, std::uint32_t* out);

/// Exact bit count ef_encode will consume.
std::uint64_t ef_encoded_bits(std::uint32_t universe, std::uint64_t n);

}  // namespace griffin::codec
