#include "codec/repair.h"

#include <map>

#include "util/bits.h"

namespace griffin::codec {

std::uint8_t RePairGrammar::symbol_bits() const {
  const std::uint32_t n = num_symbols();
  return n <= 1 ? 0 : static_cast<std::uint8_t>(util::ceil_log2(n));
}

RePairGrammar repair_build(std::span<const std::uint32_t> values) {
  RePairGrammar g;
  // Terminals in first-seen order — position-independent of the value range,
  // so the grammar (and the encoding) is a pure function of the input.
  std::map<std::uint32_t, std::uint32_t> term_id;
  g.seq.reserve(values.size());
  for (std::uint32_t v : values) {
    auto [it, inserted] = term_id.try_emplace(
        v, static_cast<std::uint32_t>(g.dict.size()));
    if (inserted) g.dict.push_back(v);
    g.seq.push_back(it->second);
  }

  using Pair = std::pair<std::uint32_t, std::uint32_t>;
  // A rule id must fit the packed symbol space alongside the terminals and
  // the header's 16-bit rule count.
  const std::size_t max_rules = 0xFFFF;
  while (g.rules.size() < max_rules && g.seq.size() >= 2) {
    // Count non-overlapping adjacent pairs (left to right, as replacement
    // will walk them); an ordered map keeps the tie-break deterministic.
    std::map<Pair, std::uint32_t> counts;
    std::map<Pair, std::size_t> last_use;
    for (std::size_t i = 0; i + 1 < g.seq.size(); ++i) {
      const Pair p{g.seq[i], g.seq[i + 1]};
      auto lu = last_use.find(p);
      if (lu != last_use.end() && lu->second + 1 == i) continue;  // overlap
      ++counts[p];
      last_use[p] = i;
    }
    const Pair* best = nullptr;
    std::uint32_t best_count = 1;
    for (const auto& [p, c] : counts) {
      if (c > best_count) {
        best = &p;
        best_count = c;
      }
    }
    if (best == nullptr) break;  // nothing repeats: grammar is final

    const std::uint32_t fresh = g.num_symbols();
    const Pair p = *best;
    g.rules.push_back(p);
    std::vector<std::uint32_t> next;
    next.reserve(g.seq.size());
    for (std::size_t i = 0; i < g.seq.size();) {
      if (i + 1 < g.seq.size() && g.seq[i] == p.first &&
          g.seq[i + 1] == p.second) {
        next.push_back(fresh);
        i += 2;
      } else {
        next.push_back(g.seq[i]);
        ++i;
      }
    }
    g.seq = std::move(next);
  }
  return g;
}

RePairGrammar repair_encode(std::span<const std::uint32_t> values,
                            std::vector<std::uint64_t>& blob,
                            std::uint64_t& bit_pos) {
  RePairGrammar g = repair_build(values);
  const std::uint8_t b = g.symbol_bits();
  const std::uint64_t end_bits =
      bit_pos + 32ull * g.dict.size() +
      static_cast<std::uint64_t>(b) * (2 * g.rules.size() + g.seq.size());
  blob.resize(
      std::max<std::size_t>(blob.size(), util::words_for_bits(end_bits)), 0);
  std::uint64_t pos = bit_pos;
  for (std::uint32_t v : g.dict) {
    util::write_bits(blob.data(), pos, 32, v);
    pos += 32;
  }
  if (b > 0) {
    for (const auto& [l, r] : g.rules) {
      util::write_bits(blob.data(), pos, b, l);
      pos += b;
      util::write_bits(blob.data(), pos, b, r);
      pos += b;
    }
    for (std::uint32_t s : g.seq) {
      util::write_bits(blob.data(), pos, b, s);
      pos += b;
    }
  }
  bit_pos = end_bits;
  return g;
}

void repair_decode(std::span<const std::uint64_t> blob, std::uint64_t bit_pos,
                   std::uint32_t count, std::uint32_t n_dict,
                   std::uint16_t n_rules, std::uint16_t n_seq,
                   std::uint32_t* out) {
  if (count == 0) return;
  std::uint32_t dict[1 << 12];
  std::pair<std::uint32_t, std::uint32_t> rules[1 << 12];
  std::uint64_t pos = bit_pos;
  for (std::uint32_t i = 0; i < n_dict; ++i) {
    dict[i] = static_cast<std::uint32_t>(util::read_bits(blob.data(), pos, 32));
    pos += 32;
  }
  const std::uint32_t n_sym = n_dict + n_rules;
  const std::uint8_t b =
      n_sym <= 1 ? 0 : static_cast<std::uint8_t>(util::ceil_log2(n_sym));
  for (std::uint32_t r = 0; r < n_rules; ++r) {
    rules[r].first =
        static_cast<std::uint32_t>(util::read_bits(blob.data(), pos, b));
    pos += b;
    rules[r].second =
        static_cast<std::uint32_t>(util::read_bits(blob.data(), pos, b));
    pos += b;
  }
  std::uint32_t n = 0;
  // Expansion depth is at most n_rules + 1, and a block of up to 2^12 gaps
  // admits fewer than 2^11 rules (each needs two occurrences).
  std::uint32_t stack[1 << 12];
  for (std::uint16_t i = 0; i < n_seq; ++i) {
    std::uint32_t sym = b == 0 ? 0
                               : static_cast<std::uint32_t>(util::read_bits(
                                     blob.data(), pos, b));
    pos += b;
    int top = 0;
    stack[top++] = sym;
    while (top > 0) {
      sym = stack[--top];
      if (sym < n_dict) {
        out[n++] = dict[sym];
      } else {
        const auto& [l, r] = rules[sym - n_dict];
        stack[top++] = r;  // right expands after left
        stack[top++] = l;
      }
    }
  }
}

std::uint64_t repair_encoded_bits(std::span<const std::uint32_t> values) {
  const RePairGrammar g = repair_build(values);
  return 32ull * g.dict.size() +
         static_cast<std::uint64_t>(g.symbol_bits()) *
             (2 * g.rules.size() + g.seq.size());
}

}  // namespace griffin::codec
