#include "codec/eliasfano.h"

#include <cassert>

#include "util/bits.h"

namespace griffin::codec {

std::uint8_t ef_low_bits(std::uint64_t universe, std::uint64_t n) {
  assert(n > 0);
  if (universe <= n) return 0;
  return static_cast<std::uint8_t>(util::floor_log2(universe / n));
}

std::uint64_t ef_encoded_bits(std::uint32_t universe, std::uint64_t n) {
  if (n == 0) return 0;
  const std::uint8_t b = ef_low_bits(universe, n);
  const std::uint64_t high_bits = (static_cast<std::uint64_t>(universe) >> b) + n + 1;
  const std::uint64_t hb_words = util::div_ceil(high_bits, 32);
  return hb_words * 32 + n * b;
}

EFHeader ef_encode(std::span<const std::uint32_t> values,
                   std::uint32_t universe, std::vector<std::uint64_t>& blob,
                   std::uint64_t& bit_pos) {
  const std::uint64_t n = values.size();
  EFHeader hdr;
  if (n == 0) return hdr;
  hdr.b = ef_low_bits(universe, n);

  const std::uint64_t high_bits =
      (static_cast<std::uint64_t>(universe) >> hdr.b) + n + 1;
  hdr.hb_words = static_cast<std::uint32_t>(util::div_ceil(high_bits, 32));

  const std::uint64_t hb_start = bit_pos;
  const std::uint64_t low_start = hb_start + 32ull * hdr.hb_words;
  const std::uint64_t end_bits = low_start + n * hdr.b;
  blob.resize(std::max<std::size_t>(blob.size(), util::words_for_bits(end_bits)),
              0);

  [[maybe_unused]] std::uint32_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint32_t v = values[i];
    assert(v <= universe);
    assert(i == 0 || v >= prev);
    prev = v;
    const std::uint64_t high = v >> hdr.b;
    // i-th set bit at position high + i.
    util::write_bits(blob.data(), hb_start + high + i, 1, 1);
    if (hdr.b > 0) {
      util::write_bits(blob.data(), low_start + i * hdr.b, hdr.b,
                       v & ((1u << hdr.b) - 1));
    }
  }

  bit_pos = end_bits;
  return hdr;
}

void ef_decode(std::span<const std::uint64_t> blob, std::uint64_t bit_pos,
               std::uint32_t count, const EFHeader& hdr, std::uint32_t* out) {
  if (count == 0) return;
  const std::uint64_t hb_start = bit_pos;
  const std::uint64_t low_start = hb_start + 32ull * hdr.hb_words;

  // Scan the unary high-bits vector: the i-th set bit at position p encodes
  // high_i = p - i.
  std::uint32_t i = 0;
  for (std::uint32_t w = 0; w < hdr.hb_words && i < count; ++w) {
    std::uint32_t word = static_cast<std::uint32_t>(
        util::read_bits(blob.data(), hb_start + 32ull * w, 32));
    while (word != 0 && i < count) {
      const int bit = std::countr_zero(word);
      word &= word - 1;
      const std::uint64_t pos = 32ull * w + static_cast<std::uint32_t>(bit);
      const std::uint64_t high = pos - i;
      std::uint64_t low = 0;
      if (hdr.b > 0) {
        low = util::read_bits(blob.data(), low_start + static_cast<std::uint64_t>(i) * hdr.b,
                              hdr.b);
      }
      out[i] = static_cast<std::uint32_t>((high << hdr.b) | low);
      ++i;
    }
  }
  assert(i == count);
}

}  // namespace griffin::codec
