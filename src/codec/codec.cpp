#include "codec/codec.h"

#include <algorithm>
#include <cassert>

#include "codec/bp128.h"
#include "codec/repair.h"
#include "codec/simple16.h"
#include "codec/varbyte.h"
#include "util/bits.h"

namespace griffin::codec {

namespace {

/// d-gaps minus one (docids are strictly increasing) for positions [1, n).
void gaps_of(std::span<const DocId> docids, std::vector<std::uint32_t>& gaps) {
  gaps.clear();
  for (std::size_t i = 1; i < docids.size(); ++i) {
    assert(docids[i] > docids[i - 1]);
    gaps.push_back(docids[i] - docids[i - 1] - 1);
  }
}

/// Rebuilds absolute docIDs from `first` and count-1 d-gaps.
void undelta(DocId first, const std::uint32_t* gaps, std::uint32_t count,
             DocId* out) {
  out[0] = first;
  for (std::uint32_t i = 1; i < count; ++i) {
    out[i] = out[i - 1] + gaps[i - 1] + 1;
  }
}

class PForCodec final : public PostingCodec {
 public:
  Scheme scheme() const override { return Scheme::kPForDelta; }
  const char* name() const override { return "PForDelta"; }

  BlockHeader encode_block(std::span<const DocId> block,
                           std::vector<std::uint64_t>& blob,
                           std::uint64_t& bit_pos,
                           const EncodeOptions& opt) const override {
    std::vector<std::uint32_t> gaps;
    gaps_of(block, gaps);
    return BlockHeader::from_pfor(
        pfor_encode(gaps, blob, bit_pos, opt.pfor_forced_b));
  }

  void decode_block(std::span<const std::uint64_t> blob, const BlockMeta& m,
                    DocId* out) const override {
    std::uint32_t gaps[1 << 12];
    assert(m.count <= (1u << 12));
    pfor_decode(blob, m.bit_offset, m.count - 1u, m.hdr.pfor(), gaps);
    undelta(m.first, gaps, m.count, out);
  }

  std::uint64_t encoded_bits(std::span<const DocId> block,
                             const EncodeOptions& opt) const override {
    std::vector<std::uint32_t> gaps;
    gaps_of(block, gaps);
    return pfor_encoded_bits(gaps, opt.pfor_forced_b);
  }
};

class EFCodec final : public PostingCodec {
 public:
  Scheme scheme() const override { return Scheme::kEliasFano; }
  const char* name() const override { return "EF"; }

  BlockHeader encode_block(std::span<const DocId> block,
                           std::vector<std::uint64_t>& blob,
                           std::uint64_t& bit_pos,
                           const EncodeOptions&) const override {
    // Absolute values relative to the block's first docID (v0 == 0);
    // universe is the in-block range.
    std::vector<std::uint32_t> rel;
    rel.reserve(block.size());
    for (DocId d : block) rel.push_back(d - block.front());
    return BlockHeader::from_ef(
        ef_encode(rel, block.back() - block.front(), blob, bit_pos));
  }

  void decode_block(std::span<const std::uint64_t> blob, const BlockMeta& m,
                    DocId* out) const override {
    ef_decode(blob, m.bit_offset, m.count, m.hdr.ef(), out);
    for (std::uint32_t i = 0; i < m.count; ++i) out[i] += m.first;
  }

  std::uint64_t encoded_bits(std::span<const DocId> block,
                             const EncodeOptions&) const override {
    return ef_encoded_bits(block.back() - block.front(), block.size());
  }
};

class Simple16Codec final : public PostingCodec {
 public:
  Scheme scheme() const override { return Scheme::kSimple16; }
  const char* name() const override { return "Simple16"; }

  bool can_encode(std::span<const DocId> block) const override {
    for (std::size_t i = 1; i < block.size(); ++i) {
      if (block[i] - block[i - 1] - 1 >= (1u << 28)) return false;
    }
    return true;
  }

  BlockHeader encode_block(std::span<const DocId> block,
                           std::vector<std::uint64_t>& blob,
                           std::uint64_t& bit_pos,
                           const EncodeOptions&) const override {
    std::vector<std::uint32_t> gaps;
    gaps_of(block, gaps);
    std::vector<std::uint32_t> words;
    simple16_encode(gaps, words);
    const std::uint64_t end_bits = bit_pos + 32ull * words.size();
    blob.resize(
        std::max<std::size_t>(blob.size(), util::words_for_bits(end_bits)), 0);
    for (std::size_t i = 0; i < words.size(); ++i) {
      util::write_bits(blob.data(), bit_pos + 32ull * i, 32, words[i]);
    }
    bit_pos = end_bits;
    return BlockHeader{Scheme::kSimple16, 0, 0, 0, 0};
  }

  void decode_block(std::span<const std::uint64_t> blob, const BlockMeta& m,
                    DocId* out) const override {
    // Gather the block's Simple16 words, then unpack the gaps.
    std::uint32_t gaps[1 << 12];
    std::uint32_t words[1 << 12];
    assert(m.count <= (1u << 12));
    // Upper bound on words: one per gap, clamped to the blob's end (the
    // last block's payload may be shorter).
    const std::uint64_t avail = (blob.size() * 64 - m.bit_offset) / 32;
    const std::uint32_t max_words = static_cast<std::uint32_t>(
        std::min<std::uint64_t>({m.count, 1u << 12, avail}));
    for (std::uint32_t i = 0; i < max_words; ++i) {
      words[i] = static_cast<std::uint32_t>(
          util::read_bits(blob.data(), m.bit_offset + 32ull * i, 32));
    }
    simple16_decode(std::span<const std::uint32_t>(words, max_words),
                    m.count - 1u, gaps);
    undelta(m.first, gaps, m.count, out);
  }

  std::uint64_t encoded_bits(std::span<const DocId> block,
                             const EncodeOptions&) const override {
    std::vector<std::uint32_t> gaps;
    gaps_of(block, gaps);
    return 32ull * simple16_encoded_words(gaps);
  }
};

class VByteCodec final : public PostingCodec {
 public:
  Scheme scheme() const override { return Scheme::kVarByte; }
  const char* name() const override { return "VByte"; }

  BlockHeader encode_block(std::span<const DocId> block,
                           std::vector<std::uint64_t>& blob,
                           std::uint64_t& bit_pos,
                           const EncodeOptions&) const override {
    std::vector<std::uint32_t> gaps;
    gaps_of(block, gaps);
    const std::vector<std::uint8_t> bytes = vbyte_encode(gaps);
    const std::uint64_t end_bits = bit_pos + 8ull * bytes.size();
    blob.resize(
        std::max<std::size_t>(blob.size(), util::words_for_bits(end_bits)), 0);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      util::write_bits(blob.data(), bit_pos + 8ull * i, 8, bytes[i]);
    }
    bit_pos = end_bits;
    return BlockHeader{Scheme::kVarByte, 0, 0, 0, 0};
  }

  void decode_block(std::span<const std::uint64_t> blob, const BlockMeta& m,
                    DocId* out) const override {
    out[0] = m.first;
    std::uint64_t pos = m.bit_offset;
    for (std::uint32_t i = 1; i < m.count; ++i) {
      std::uint32_t v = 0;
      int shift = 0;
      for (;;) {
        const std::uint8_t byte =
            static_cast<std::uint8_t>(util::read_bits(blob.data(), pos, 8));
        pos += 8;
        v |= static_cast<std::uint32_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) break;
        shift += 7;
      }
      out[i] = out[i - 1] + v + 1;
    }
  }

  std::uint64_t encoded_bits(std::span<const DocId> block,
                             const EncodeOptions&) const override {
    std::vector<std::uint32_t> gaps;
    gaps_of(block, gaps);
    return 8ull * vbyte_encoded_bytes(gaps);
  }
};

class BP128Codec final : public PostingCodec {
 public:
  Scheme scheme() const override { return Scheme::kBitPack128; }
  const char* name() const override { return "BP128"; }

  BlockHeader encode_block(std::span<const DocId> block,
                           std::vector<std::uint64_t>& blob,
                           std::uint64_t& bit_pos,
                           const EncodeOptions&) const override {
    std::vector<std::uint32_t> gaps;
    gaps_of(block, gaps);
    const std::uint8_t b = bp128_encode(gaps, blob, bit_pos);
    return BlockHeader{Scheme::kBitPack128, b, 0, 0, 0};
  }

  void decode_block(std::span<const std::uint64_t> blob, const BlockMeta& m,
                    DocId* out) const override {
    std::uint32_t gaps[1 << 12];
    assert(m.count <= (1u << 12));
    bp128_decode(blob, m.bit_offset, m.count - 1u, m.hdr.b, gaps);
    undelta(m.first, gaps, m.count, out);
  }

  std::uint64_t encoded_bits(std::span<const DocId> block,
                             const EncodeOptions&) const override {
    std::vector<std::uint32_t> gaps;
    gaps_of(block, gaps);
    return bp128_encoded_bits(gaps);
  }
};

class RePairCodec final : public PostingCodec {
 public:
  Scheme scheme() const override { return Scheme::kRePair; }
  const char* name() const override { return "RePair"; }

  BlockHeader encode_block(std::span<const DocId> block,
                           std::vector<std::uint64_t>& blob,
                           std::uint64_t& bit_pos,
                           const EncodeOptions&) const override {
    std::vector<std::uint32_t> gaps;
    gaps_of(block, gaps);
    const RePairGrammar g = repair_encode(gaps, blob, bit_pos);
    return BlockHeader{Scheme::kRePair, g.symbol_bits(),
                       static_cast<std::uint16_t>(g.rules.size()),
                       static_cast<std::uint16_t>(g.seq.size()),
                       static_cast<std::uint32_t>(g.dict.size())};
  }

  void decode_block(std::span<const std::uint64_t> blob, const BlockMeta& m,
                    DocId* out) const override {
    std::uint32_t gaps[1 << 12];
    assert(m.count <= (1u << 12));
    repair_decode(blob, m.bit_offset, m.count - 1u, m.hdr.h32, m.hdr.h16a,
                  m.hdr.h16b, gaps);
    undelta(m.first, gaps, m.count, out);
  }

  std::uint64_t encoded_bits(std::span<const DocId> block,
                             const EncodeOptions&) const override {
    std::vector<std::uint32_t> gaps;
    gaps_of(block, gaps);
    return repair_encoded_bits(gaps);
  }
};

constexpr Scheme kAllSchemes[kNumSchemes] = {
    Scheme::kPForDelta, Scheme::kEliasFano,  Scheme::kVarByte,
    Scheme::kSimple16,  Scheme::kBitPack128, Scheme::kRePair,
};

}  // namespace

const PostingCodec& codec_for(Scheme s) {
  static const PForCodec pfor;
  static const EFCodec ef;
  static const VByteCodec vbyte;
  static const Simple16Codec simple16;
  static const BP128Codec bp128;
  static const RePairCodec repair;
  switch (s) {
    case Scheme::kPForDelta: return pfor;
    case Scheme::kEliasFano: return ef;
    case Scheme::kVarByte: return vbyte;
    case Scheme::kSimple16: return simple16;
    case Scheme::kBitPack128: return bp128;
    case Scheme::kRePair: return repair;
  }
  return ef;  // unreachable for valid tags
}

std::span<const Scheme> all_schemes() { return kAllSchemes; }

ListShape analyze_list(std::span<const DocId> docids) {
  ListShape shape;
  shape.length = docids.size();
  if (docids.empty()) return shape;
  const std::uint64_t span =
      static_cast<std::uint64_t>(docids.back()) - docids.front() + 1;
  shape.density =
      static_cast<double>(docids.size()) / static_cast<double>(span);
  std::uint32_t max_gap = 0;
  std::uint64_t repeats = 0, pairs = 0;
  std::uint32_t prev_gap = 0;
  for (std::size_t i = 1; i < docids.size(); ++i) {
    const std::uint32_t gap = docids[i] - docids[i - 1] - 1;
    max_gap = std::max(max_gap, gap);
    if (i > 1) {
      ++pairs;
      if (gap == prev_gap) ++repeats;
    }
    prev_gap = gap;
  }
  shape.max_gap_bits = max_gap == 0 ? 0 : util::floor_log2(max_gap) + 1;
  shape.gap_repeat_fraction =
      pairs == 0 ? 0.0
                 : static_cast<double>(repeats) / static_cast<double>(pairs);
  return shape;
}

Scheme select_scheme(std::span<const DocId> docids, std::uint32_t block_size) {
  const ListShape shape = analyze_list(docids);
  const EncodeOptions opt;
  Scheme best = kSelectionOrder[0];
  std::uint64_t best_bits = ~std::uint64_t{0};
  for (Scheme s : kSelectionOrder) {
    // Whole-list shape gates eligibility (conservative: a >28-bit gap that
    // happens to straddle a block boundary still disqualifies Simple16).
    if (s == Scheme::kSimple16 && shape.max_gap_bits > 28) continue;
    const PostingCodec& c = codec_for(s);
    std::uint64_t bits = 0;
    for (std::size_t lo = 0; lo < docids.size(); lo += block_size) {
      const std::size_t hi = std::min(docids.size(), lo + block_size);
      bits += c.encoded_bits(docids.subspan(lo, hi - lo), opt);
    }
    if (bits < best_bits) {
      best_bits = bits;
      best = s;
    }
  }
  return best;
}

}  // namespace griffin::codec
