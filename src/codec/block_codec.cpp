#include "codec/block_codec.h"

#include <algorithm>
#include <stdexcept>

#include "codec/codec.h"
#include "util/bits.h"

namespace griffin::codec {

std::string scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kPForDelta: return "PForDelta";
    case Scheme::kEliasFano: return "EF";
    case Scheme::kVarByte: return "VByte";
    case Scheme::kSimple16: return "Simple16";
    case Scheme::kBitPack128: return "BP128";
    case Scheme::kRePair: return "RePair";
  }
  return "?";
}

BlockCompressedList BlockCompressedList::build(std::span<const DocId> docids,
                                               Scheme scheme,
                                               std::uint32_t block_size,
                                               std::uint8_t pfor_forced_b) {
  if (docids.empty()) throw std::invalid_argument("empty posting list");
  if (block_size == 0) throw std::invalid_argument("block size must be > 0");

  const PostingCodec& codec = codec_for(scheme);
  EncodeOptions opt;
  opt.pfor_forced_b = pfor_forced_b;

  BlockCompressedList list;
  list.scheme_ = scheme;
  list.block_size_ = block_size;
  list.size_ = docids.size();
  list.metas_.reserve(util::div_ceil(docids.size(), block_size));

  std::uint64_t bit_pos = 0;
  for (std::size_t lo = 0; lo < docids.size(); lo += block_size) {
    const std::size_t hi = std::min(docids.size(), lo + block_size);
    const std::span<const DocId> block = docids.subspan(lo, hi - lo);
    if (!codec.can_encode(block)) {
      throw std::invalid_argument(
          std::string(codec.name()) +
          " cannot encode this list: a d-gap in the block starting at docID " +
          std::to_string(block.front()) +
          " exceeds the scheme's limit (Simple16 requires gaps < 2^28); use "
          "another scheme or the adaptive selector");
    }

    BlockMeta meta;
    meta.first = block.front();
    meta.last = block.back();
    meta.count = static_cast<std::uint16_t>(block.size());
    meta.bit_offset = bit_pos;
    meta.hdr = codec.encode_block(block, list.blob_, bit_pos, opt);
    list.metas_.push_back(meta);
  }
  return list;
}

BlockCompressedList BlockCompressedList::from_parts(
    Scheme scheme, std::uint32_t block_size, std::uint64_t size,
    std::vector<std::uint64_t> blob, std::vector<BlockMeta> metas) {
  if (size == 0 || metas.empty()) {
    throw std::invalid_argument("from_parts: empty list");
  }
  BlockCompressedList list;
  list.scheme_ = scheme;
  list.block_size_ = block_size;
  list.size_ = size;
  list.blob_ = std::move(blob);
  list.metas_ = std::move(metas);
  return list;
}

std::uint32_t BlockCompressedList::decode_block(std::size_t b,
                                                DocId* out) const {
  const BlockMeta& m = metas_[b];
  codec_for(scheme_).decode_block(blob_, m, out);
  return m.count;
}

void BlockCompressedList::decode_all(std::vector<DocId>& out) const {
  out.resize(size_);
  DocId* p = out.data();
  for (std::size_t b = 0; b < metas_.size(); ++b) {
    p += decode_block(b, p);
  }
}

std::size_t BlockCompressedList::find_block(DocId target) const {
  const auto it = std::lower_bound(
      metas_.begin(), metas_.end(), target,
      [](const BlockMeta& m, DocId t) { return m.last < t; });
  return static_cast<std::size_t>(it - metas_.begin());
}

std::uint64_t BlockCompressedList::compressed_bytes() const {
  // Payload + the parts of the skip table a deployment must keep: first/last
  // docID, offset, count, and the small per-scheme header. One constant for
  // every scheme keeps Table 1's columns (and the adaptive-vs-fixed gate)
  // comparing payload economics, not header packing tricks.
  const std::uint64_t skip_entry_bytes = 4 + 4 + 4 + 2 + 3;
  return blob_.size() * 8 + metas_.size() * skip_entry_bytes;
}

}  // namespace griffin::codec
