#include "codec/block_codec.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "codec/simple16.h"
#include "codec/varbyte.h"
#include "util/bits.h"

namespace griffin::codec {

std::string scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kPForDelta: return "PForDelta";
    case Scheme::kEliasFano: return "EF";
    case Scheme::kVarByte: return "VByte";
    case Scheme::kSimple16: return "Simple16";
  }
  return "?";
}

namespace {

/// d-gaps minus one (docids are strictly increasing) for positions [1, n).
void gaps_of(std::span<const DocId> docids, std::vector<std::uint32_t>& gaps) {
  gaps.clear();
  for (std::size_t i = 1; i < docids.size(); ++i) {
    assert(docids[i] > docids[i - 1]);
    gaps.push_back(docids[i] - docids[i - 1] - 1);
  }
}

}  // namespace

BlockCompressedList BlockCompressedList::build(std::span<const DocId> docids,
                                               Scheme scheme,
                                               std::uint32_t block_size,
                                               std::uint8_t pfor_forced_b) {
  if (docids.empty()) throw std::invalid_argument("empty posting list");
  if (block_size == 0) throw std::invalid_argument("block size must be > 0");

  BlockCompressedList list;
  list.scheme_ = scheme;
  list.block_size_ = block_size;
  list.size_ = docids.size();
  list.metas_.reserve(util::div_ceil(docids.size(), block_size));

  std::uint64_t bit_pos = 0;
  std::vector<std::uint32_t> scratch;

  for (std::size_t lo = 0; lo < docids.size(); lo += block_size) {
    const std::size_t hi = std::min(docids.size(), lo + block_size);
    const std::span<const DocId> block = docids.subspan(lo, hi - lo);

    BlockMeta meta;
    meta.first = block.front();
    meta.last = block.back();
    meta.count = static_cast<std::uint16_t>(block.size());
    meta.bit_offset = bit_pos;

    switch (scheme) {
      case Scheme::kPForDelta: {
        gaps_of(block, scratch);
        meta.pfor = pfor_encode(scratch, list.blob_, bit_pos, pfor_forced_b);
        break;
      }
      case Scheme::kEliasFano: {
        // Absolute values relative to the block's first docID (v0 == 0);
        // universe is the in-block range.
        scratch.clear();
        for (DocId d : block) scratch.push_back(d - meta.first);
        meta.ef = ef_encode(scratch, meta.last - meta.first, list.blob_, bit_pos);
        break;
      }
      case Scheme::kSimple16: {
        gaps_of(block, scratch);
        std::vector<std::uint32_t> words;
        simple16_encode(scratch, words);
        const std::uint64_t end_bits = bit_pos + 32ull * words.size();
        list.blob_.resize(
            std::max<std::size_t>(list.blob_.size(), util::words_for_bits(end_bits)),
            0);
        for (std::size_t i = 0; i < words.size(); ++i) {
          util::write_bits(list.blob_.data(), bit_pos + 32ull * i, 32, words[i]);
        }
        bit_pos = end_bits;
        break;
      }
      case Scheme::kVarByte: {
        gaps_of(block, scratch);
        const std::vector<std::uint8_t> bytes = vbyte_encode(scratch);
        const std::uint64_t end_bits = bit_pos + 8ull * bytes.size();
        list.blob_.resize(
            std::max<std::size_t>(list.blob_.size(), util::words_for_bits(end_bits)),
            0);
        for (std::size_t i = 0; i < bytes.size(); ++i) {
          util::write_bits(list.blob_.data(), bit_pos + 8ull * i, 8, bytes[i]);
        }
        bit_pos = end_bits;
        break;
      }
    }
    list.metas_.push_back(meta);
  }
  return list;
}

BlockCompressedList BlockCompressedList::from_parts(
    Scheme scheme, std::uint32_t block_size, std::uint64_t size,
    std::vector<std::uint64_t> blob, std::vector<BlockMeta> metas) {
  if (size == 0 || metas.empty()) {
    throw std::invalid_argument("from_parts: empty list");
  }
  BlockCompressedList list;
  list.scheme_ = scheme;
  list.block_size_ = block_size;
  list.size_ = size;
  list.blob_ = std::move(blob);
  list.metas_ = std::move(metas);
  return list;
}

std::uint32_t BlockCompressedList::decode_block(std::size_t b,
                                                DocId* out) const {
  const BlockMeta& m = metas_[b];
  switch (scheme_) {
    case Scheme::kPForDelta: {
      // count-1 gaps; rebuild the absolute docIDs from the skip entry.
      std::uint32_t gaps[1 << 12];
      assert(m.count <= (1u << 12));
      pfor_decode(blob_, m.bit_offset, m.count - 1u, m.pfor, gaps);
      out[0] = m.first;
      for (std::uint32_t i = 1; i < m.count; ++i) {
        out[i] = out[i - 1] + gaps[i - 1] + 1;
      }
      break;
    }
    case Scheme::kEliasFano: {
      ef_decode(blob_, m.bit_offset, m.count, m.ef, out);
      for (std::uint32_t i = 0; i < m.count; ++i) out[i] += m.first;
      break;
    }
    case Scheme::kSimple16: {
      // Gather the block's Simple16 words, then unpack the gaps.
      std::uint32_t gaps[1 << 12];
      std::uint32_t words[1 << 12];
      assert(m.count <= (1u << 12));
      // Upper bound on words: one per gap, clamped to the blob's end (the
      // last block's payload may be shorter).
      const std::uint64_t avail =
          (blob_.size() * 64 - m.bit_offset) / 32;
      const std::uint32_t max_words = static_cast<std::uint32_t>(
          std::min<std::uint64_t>({m.count, 1u << 12, avail}));
      for (std::uint32_t i = 0; i < max_words; ++i) {
        words[i] = static_cast<std::uint32_t>(
            util::read_bits(blob_.data(), m.bit_offset + 32ull * i, 32));
      }
      simple16_decode(std::span<const std::uint32_t>(words, max_words),
                      m.count - 1u, gaps);
      out[0] = m.first;
      for (std::uint32_t i = 1; i < m.count; ++i) {
        out[i] = out[i - 1] + gaps[i - 1] + 1;
      }
      break;
    }
    case Scheme::kVarByte: {
      out[0] = m.first;
      std::uint64_t pos = m.bit_offset;
      for (std::uint32_t i = 1; i < m.count; ++i) {
        std::uint32_t v = 0;
        int shift = 0;
        for (;;) {
          const std::uint8_t byte =
              static_cast<std::uint8_t>(util::read_bits(blob_.data(), pos, 8));
          pos += 8;
          v |= static_cast<std::uint32_t>(byte & 0x7F) << shift;
          if ((byte & 0x80) == 0) break;
          shift += 7;
        }
        out[i] = out[i - 1] + v + 1;
      }
      break;
    }
  }
  return m.count;
}

void BlockCompressedList::decode_all(std::vector<DocId>& out) const {
  out.resize(size_);
  DocId* p = out.data();
  for (std::size_t b = 0; b < metas_.size(); ++b) {
    p += decode_block(b, p);
  }
}

std::size_t BlockCompressedList::find_block(DocId target) const {
  const auto it = std::lower_bound(
      metas_.begin(), metas_.end(), target,
      [](const BlockMeta& m, DocId t) { return m.last < t; });
  return static_cast<std::size_t>(it - metas_.begin());
}

std::uint64_t BlockCompressedList::compressed_bytes() const {
  // Payload + the parts of the skip table a deployment must keep: first/last
  // docID, offset, count, and the small per-scheme header.
  const std::uint64_t skip_entry_bytes = 4 + 4 + 4 + 2 + 3;
  return blob_.size() * 8 + metas_.size() * skip_entry_bytes;
}

}  // namespace griffin::codec
