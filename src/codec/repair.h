// Re-Pair grammar compression of a block's d-gaps (Larsson & Moffat's
// recursive pairing, applied to posting lists by Claude, Fariña & Navarro,
// PAPERS.md): repeatedly replace the most frequent adjacent symbol pair with
// a fresh nonterminal until no pair repeats. Highly repetitive gap patterns
// (crawl batches, mirrored sites, synthetic strides) collapse into a few
// grammar rules, so the encoded sequence shrinks far below the entropy of
// the raw gaps; random lists gain nothing and pay the dictionary overhead.
// Decoding expands the grammar — data-dependent and pointer-chasing, so it
// stays scalar on the CPU and mostly-divergent on the GPU (the cost models
// charge it that way).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace griffin::codec {

/// A Re-Pair grammar for one value sequence. Symbol ids: terminals are
/// [0, dict.size()) and index `dict`; nonterminal n is dict.size() + r and
/// expands to rules[r].first then rules[r].second.
struct RePairGrammar {
  std::vector<std::uint32_t> dict;  ///< distinct values, first-seen order
  std::vector<std::pair<std::uint32_t, std::uint32_t>> rules;
  std::vector<std::uint32_t> seq;  ///< compressed top-level sequence

  std::uint32_t num_symbols() const {
    return static_cast<std::uint32_t>(dict.size() + rules.size());
  }
  /// Bits per packed symbol (0 when the grammar has at most one symbol).
  std::uint8_t symbol_bits() const;
};

/// Builds the grammar deterministically: greedy most-frequent pair, ties
/// broken toward the lexicographically smallest (left, right) symbol pair,
/// occurrences replaced left to right without overlap.
RePairGrammar repair_build(std::span<const std::uint32_t> values);

/// Encodes `values` starting at bit `bit_pos` of `blob` (append style: bits
/// at and beyond bit_pos must be zero); advances bit_pos. Layout:
/// [dict: n_dict x 32b][rules: n_rules x 2 x b bits][seq: n_seq x b bits].
/// Returns the grammar (its sizes go into the block header).
RePairGrammar repair_encode(std::span<const std::uint32_t> values,
                            std::vector<std::uint64_t>& blob,
                            std::uint64_t& bit_pos);

/// Decodes `count` values from a grammar encoded at bit_pos with the given
/// sizes. `out` must have room for count values.
void repair_decode(std::span<const std::uint64_t> blob, std::uint64_t bit_pos,
                   std::uint32_t count, std::uint32_t n_dict,
                   std::uint16_t n_rules, std::uint16_t n_seq,
                   std::uint32_t* out);

/// Exact bit count repair_encode will consume (builds the grammar).
std::uint64_t repair_encoded_bits(std::span<const std::uint32_t> values);

}  // namespace griffin::codec
