#include "codec/pfordelta.h"

#include <algorithm>
#include <cassert>

#include "util/bits.h"

namespace griffin::codec {

namespace {

struct Plan {
  std::uint8_t b;
  std::vector<std::uint32_t> exceptions;  // slot indices, ascending
};

/// Max distance a b-bit slot can encode to the next exception.
std::uint32_t max_link(std::uint8_t b) {
  return b >= 32 ? 0xFFFFFFFFu : (1u << b) - 1u;
}

bool fits(std::uint32_t v, std::uint8_t b) {
  return b >= 32 || v < (1u << b);
}

Plan make_plan(std::span<const std::uint32_t> values, std::uint8_t forced_b) {
  Plan plan;
  plan.b = forced_b != 0 ? forced_b : pfor_choose_b(values);
  const std::uint32_t link = max_link(plan.b);
  for (std::uint32_t i = 0; i < values.size(); ++i) {
    if (fits(values[i], plan.b)) continue;
    // Force intermediate exceptions when the chain link cannot reach i.
    while (!plan.exceptions.empty() && i - plan.exceptions.back() > link) {
      plan.exceptions.push_back(plan.exceptions.back() + link);
    }
    plan.exceptions.push_back(i);
  }
  assert(plan.exceptions.size() <= values.size());
  return plan;
}

}  // namespace

std::uint8_t pfor_choose_b(std::span<const std::uint32_t> values) {
  if (values.empty()) return 1;
  // Count how many values need exactly w bits, w in [1, 32].
  std::uint32_t width_count[33] = {};
  for (std::uint32_t v : values) ++width_count[util::bit_width_or1(v)];
  const std::size_t need = static_cast<std::size_t>(
      kPForRegularFraction * static_cast<double>(values.size()) + 0.5);
  std::size_t covered = 0;
  for (std::uint8_t b = 1; b <= 32; ++b) {
    covered += width_count[b];
    if (covered >= need) return b;
  }
  return 32;
}

PForHeader pfor_encode(std::span<const std::uint32_t> values,
                       std::vector<std::uint64_t>& blob,
                       std::uint64_t& bit_pos, std::uint8_t forced_b) {
  const Plan plan = make_plan(values, forced_b);
  PForHeader hdr;
  hdr.b = plan.b;
  hdr.n_exceptions = static_cast<std::uint16_t>(plan.exceptions.size());
  hdr.first_exception = plan.exceptions.empty()
                            ? PForHeader::kNoException
                            : static_cast<std::uint16_t>(plan.exceptions[0]);

  const std::uint64_t slots_bits =
      static_cast<std::uint64_t>(values.size()) * plan.b;
  const std::uint64_t exc_bits_start = util::round_up(bit_pos + slots_bits, 32);
  const std::uint64_t end_bits =
      exc_bits_start + 32ull * plan.exceptions.size();
  blob.resize(std::max<std::size_t>(blob.size(), util::words_for_bits(end_bits)),
              0);

  // Pack the slots: regular values verbatim, exception slots hold the
  // distance to the next exception (0 for the last one).
  std::size_t next_exc = 0;
  for (std::uint32_t i = 0; i < values.size(); ++i) {
    std::uint32_t slot;
    if (next_exc < plan.exceptions.size() && plan.exceptions[next_exc] == i) {
      const bool last = next_exc + 1 == plan.exceptions.size();
      slot = last ? 0 : plan.exceptions[next_exc + 1] - i;
      ++next_exc;
    } else {
      slot = values[i];
    }
    util::write_bits(blob.data(), bit_pos + static_cast<std::uint64_t>(i) * plan.b,
                     plan.b, slot);
  }

  // Append the true exception values, uncompressed, in chain order.
  for (std::size_t k = 0; k < plan.exceptions.size(); ++k) {
    util::write_bits(blob.data(), exc_bits_start + 32ull * k, 32,
                     values[plan.exceptions[k]]);
  }

  bit_pos = end_bits;
  return hdr;
}

void pfor_decode(std::span<const std::uint64_t> blob, std::uint64_t bit_pos,
                 std::uint32_t count, const PForHeader& hdr,
                 std::uint32_t* out) {
  for (std::uint32_t i = 0; i < count; ++i) {
    out[i] = static_cast<std::uint32_t>(util::read_bits(
        blob.data(), bit_pos + static_cast<std::uint64_t>(i) * hdr.b, hdr.b));
  }
  if (hdr.n_exceptions == 0) return;
  const std::uint64_t exc_bits_start =
      util::round_up(bit_pos + static_cast<std::uint64_t>(count) * hdr.b, 32);
  // Walk the chain: each exception slot currently holds the distance to the
  // next exception; patch it with the stored value, then follow the link.
  std::uint32_t pos = hdr.first_exception;
  for (std::uint32_t k = 0; k < hdr.n_exceptions; ++k) {
    assert(pos < count);
    const std::uint32_t dist = out[pos];
    out[pos] = static_cast<std::uint32_t>(
        util::read_bits(blob.data(), exc_bits_start + 32ull * k, 32));
    pos += dist;
  }
}

std::uint64_t pfor_encoded_bits(std::span<const std::uint32_t> values,
                                std::uint8_t forced_b) {
  const Plan plan = make_plan(values, forced_b);
  const std::uint64_t slots_bits =
      static_cast<std::uint64_t>(values.size()) * plan.b;
  return util::round_up(slots_bits, 32) + 32ull * plan.exceptions.size();
}

}  // namespace griffin::codec
