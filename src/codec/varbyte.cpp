#include "codec/varbyte.h"

namespace griffin::codec {

std::vector<std::uint8_t> vbyte_encode(std::span<const std::uint32_t> values) {
  std::vector<std::uint8_t> out;
  out.reserve(values.size());
  for (std::uint32_t v : values) vbyte_encode_one(v, out);
  return out;
}

void vbyte_decode(std::span<const std::uint8_t> in, std::uint32_t count,
                  std::uint32_t* out) {
  std::size_t pos = 0;
  for (std::uint32_t i = 0; i < count; ++i) out[i] = vbyte_decode_one(in, pos);
}

std::uint64_t vbyte_encoded_bytes(std::span<const std::uint32_t> values) {
  std::uint64_t bytes = 0;
  for (std::uint32_t v : values) {
    bytes += 1;
    while (v >= 0x80) {
      v >>= 7;
      ++bytes;
    }
  }
  return bytes;
}

}  // namespace griffin::codec
