// PForDelta ("patched frame of reference") compression of small integers,
// following the paper's Figure 3 / Zukowski et al. [40]:
//   - pick b so that ~90% of the values ("regulars") fit in b bits;
//   - pack every value into a b-bit slot; a slot whose value does not fit
//     becomes an *exception*: the slot instead stores the distance to the
//     next exception (a linked list threaded through the slots), and the
//     true value is appended uncompressed after the packed array;
//   - the header remembers where the first exception sits.
// Decompression must walk the exception chain sequentially — precisely the
// data dependence that makes PForDelta a poor fit for the GPU (paper §2.3),
// which bench/ablation_pfor_gpu demonstrates.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace griffin::codec {

struct PForHeader {
  std::uint8_t b = 1;                   ///< bits per packed slot
  std::uint16_t n_exceptions = 0;
  std::uint16_t first_exception = kNoException;  ///< slot index of chain head

  static constexpr std::uint16_t kNoException = 0xFFFF;
};

/// Fraction of values that must fit in b bits when choosing b.
inline constexpr double kPForRegularFraction = 0.90;

/// Encodes `values` starting at bit `bit_pos` of `blob` (blob grows as
/// needed; bits at and beyond bit_pos must be zero). Advances bit_pos past
/// the packed slots and the 32-bit-aligned exception values.
/// forced_b = 0 picks b automatically (the 90%-coverage rule); a nonzero
/// forced_b pins the slot width — smaller b compresses harder but produces
/// more exceptions, the speed/ratio trade-off of §2.3.
PForHeader pfor_encode(std::span<const std::uint32_t> values,
                       std::vector<std::uint64_t>& blob, std::uint64_t& bit_pos,
                       std::uint8_t forced_b = 0);

/// Decodes `count` values previously encoded at bit_pos with `hdr`.
/// `out` must have room for count values.
void pfor_decode(std::span<const std::uint64_t> blob, std::uint64_t bit_pos,
                 std::uint32_t count, const PForHeader& hdr,
                 std::uint32_t* out);

/// Number of bits pfor_encode will consume for this input (exact).
std::uint64_t pfor_encoded_bits(std::span<const std::uint32_t> values,
                                std::uint8_t forced_b = 0);

/// Chooses the slot width for a value set: the smallest b such that at least
/// kPForRegularFraction of values fit, clamped to [1, 32]. Exposed for tests
/// and for the decode-cost models.
std::uint8_t pfor_choose_b(std::span<const std::uint32_t> values);

}  // namespace griffin::codec
