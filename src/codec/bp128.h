// SIMD-BP128-style fixed-width bit packing (Lemire, Boytsov & Kurz, "SIMD
// Compression and the Intersection of Sorted Integers", PAPERS.md): every
// value of a block packs into b bits where b is the block's maximum bit
// width. No exceptions, no patching — the decoder is a branch-free shift/
// mask loop, which is exactly the shape the vectorized unpack in
// cpu/simd_cost.h (kUnpackOps) and a warp-wide GPU kernel want. The price is
// ratio: one outlier gap widens every slot in its block.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace griffin::codec {

/// Slot width for a value set: the bit width of the largest value (0 when
/// all values are zero or the set is empty — nothing is stored).
std::uint8_t bp128_bit_width(std::span<const std::uint32_t> values);

/// Packs `values` at the block-max width starting at bit `bit_pos` of `blob`
/// (blob grows as needed; bits at and beyond bit_pos must be zero). Advances
/// bit_pos. Returns the slot width b.
std::uint8_t bp128_encode(std::span<const std::uint32_t> values,
                          std::vector<std::uint64_t>& blob,
                          std::uint64_t& bit_pos);

/// Decodes `count` values packed at bit_pos with slot width b.
void bp128_decode(std::span<const std::uint64_t> blob, std::uint64_t bit_pos,
                  std::uint32_t count, std::uint8_t b, std::uint32_t* out);

/// Exact bit count bp128_encode will consume.
std::uint64_t bp128_encoded_bits(std::span<const std::uint32_t> values);

}  // namespace griffin::codec
