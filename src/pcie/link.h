// PCIe transfer model. The paper's testbed attaches the K20 over PCIe 2.0
// x16 (8 GB/s); transfer time = DMA setup latency + bytes / bandwidth, and
// each device allocation pays a cudaMalloc-like fixed cost. These overheads
// are exactly what the scheduler must amortize (paper §2.3), so they are
// tracked per query.
#pragma once

#include <cstdint>

#include "sim/hardware_spec.h"
#include "sim/time.h"

namespace griffin::pcie {

class Link {
 public:
  explicit Link(sim::PcieSpec spec = {}) : spec_(spec) {}

  const sim::PcieSpec& spec() const { return spec_; }

  /// Time for one host->device or device->host DMA of `bytes`.
  sim::Duration transfer_time(std::uint64_t bytes) const {
    return sim::Duration::from_us(spec_.latency_us) +
           sim::Duration::from_ns(static_cast<double>(bytes) /
                                  spec_.bandwidth_gbps);
  }

  /// Time for one device allocation call.
  sim::Duration alloc_time() const {
    return sim::Duration::from_us(spec_.alloc_us);
  }

 private:
  sim::PcieSpec spec_;
};

/// Running totals of modeled transfer activity, kept per engine/query so the
/// latency breakdown can attribute time to data movement.
struct TransferLedger {
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t transfers = 0;
  std::uint64_t allocs = 0;
  sim::Duration total;

  void add_transfer(const Link& link, std::uint64_t bytes, bool h2d) {
    (h2d ? h2d_bytes : d2h_bytes) += bytes;
    ++transfers;
    total += link.transfer_time(bytes);
  }
  void add_alloc(const Link& link) {
    ++allocs;
    total += link.alloc_time();
  }
  void reset() { *this = TransferLedger{}; }
};

}  // namespace griffin::pcie
