// PCIe transfer model. The paper's testbed attaches the K20 over PCIe 2.0
// x16 (8 GB/s); transfer time = DMA setup latency + bytes / bandwidth, and
// each device allocation pays a cudaMalloc-like fixed cost. These overheads
// are exactly what the scheduler must amortize (paper §2.3), so they are
// tracked per query.
#pragma once

#include <cstdint>

#include "fault/fault.h"
#include "sim/hardware_spec.h"
#include "sim/time.h"
#include "sim/timeline.h"

namespace griffin::pcie {

class Link {
 public:
  explicit Link(sim::PcieSpec spec = {}) : spec_(spec) {}

  const sim::PcieSpec& spec() const { return spec_; }

  /// Time for one host->device or device->host DMA of `bytes`.
  sim::Duration transfer_time(std::uint64_t bytes) const {
    return sim::Duration::from_us(spec_.latency_us) +
           sim::Duration::from_ns(static_cast<double>(bytes) /
                                  spec_.bandwidth_gbps);
  }

  /// Time for one chunk of a larger DMA split for double buffering: the
  /// setup latency is paid once, on the first chunk; later chunks stream at
  /// line rate.
  sim::Duration chunk_time(std::uint64_t bytes, bool first_chunk) const {
    sim::Duration t = sim::Duration::from_ns(static_cast<double>(bytes) /
                                             spec_.bandwidth_gbps);
    if (first_chunk) t += sim::Duration::from_us(spec_.latency_us);
    return t;
  }

  /// Time for one device allocation call.
  sim::Duration alloc_time() const {
    return sim::Duration::from_us(spec_.alloc_us);
  }

 private:
  sim::PcieSpec spec_;
};

/// Running totals of modeled transfer activity, kept per engine/query so the
/// latency breakdown can attribute time to data movement.
///
/// When bound to a sim::Timeline (DESIGN.md §10), each charge additionally
/// reserves the matching copy engine: transfers become ops on the bound
/// stream (H2D and D2H on their respective engines, allocations on the
/// host, since cudaMalloc is host-synchronous), chained so the ledger's ops
/// execute in order after the `dep` event it was bound with. `last_event()`
/// is the completion of the most recent op — the event kernels consuming
/// the transferred data wait on. Unbound, the ledger behaves exactly as
/// before: a scalar sum.
struct TransferLedger {
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t transfers = 0;
  std::uint64_t allocs = 0;
  sim::Duration total;

  void bind(sim::Timeline* tl, sim::Timeline::StreamId stream,
            sim::Timeline::Event dep) {
    tl_ = tl;
    stream_ = stream;
    last_ = dep;
  }
  sim::Timeline::Event last_event() const { return last_; }

  /// Arms PCIe fault injection (DESIGN.md §11): every subsequent DMA draws
  /// its transfer id from `*transfer_seq` (a per-query counter shared by all
  /// the query's ledgers) and asks the injector per attempt; each failed
  /// attempt re-pays the full transfer time on the same copy engine, capped
  /// at the injector's pcie_max_retries, after which the link-level retry is
  /// assumed to have succeeded. Timing-only: data is never corrupted.
  void arm_faults(const fault::FaultInjector* injector, std::uint32_t scope,
                  std::uint64_t query, std::uint64_t* transfer_seq,
                  fault::FaultCounters* counters) {
    injector_ = injector;
    fault_scope_ = scope;
    fault_query_ = query;
    transfer_seq_ = transfer_seq;
    fault_counters_ = counters;
  }

  void add_transfer(const Link& link, std::uint64_t bytes, bool h2d) {
    (h2d ? h2d_bytes : d2h_bytes) += bytes;
    ++transfers;
    const sim::Duration t = link.transfer_time(bytes);
    charge_retries(t, h2d);
    total += t;
    record(h2d ? sim::Resource::kCopyH2D : sim::Resource::kCopyD2H, t);
  }
  /// One chunk of a split DMA (Link::chunk_time): the chunk sequence costs
  /// the setup latency once, so its serial sum stays within per-chunk
  /// rounding of the equivalent single transfer.
  void add_transfer_chunk(const Link& link, std::uint64_t bytes, bool h2d,
                          bool first_chunk) {
    (h2d ? h2d_bytes : d2h_bytes) += bytes;
    ++transfers;
    const sim::Duration t = link.chunk_time(bytes, first_chunk);
    charge_retries(t, h2d);
    total += t;
    record(h2d ? sim::Resource::kCopyH2D : sim::Resource::kCopyD2H, t);
  }
  void add_alloc(const Link& link) {
    ++allocs;
    total += link.alloc_time();
    record(sim::Resource::kCpu, link.alloc_time());
  }
  void reset() { *this = TransferLedger{}; }

 private:
  void record(sim::Resource r, sim::Duration d) {
    if (tl_ == nullptr) return;
    last_ = tl_->record(stream_, r, d, last_);
  }

  /// Failed DMA attempts before the successful one: each re-pays the full
  /// transfer duration (the DMA ran to the error before aborting), serially
  /// and on the timeline's copy engine, so retried time shows up in the
  /// overlap accounting like any other copy.
  void charge_retries(sim::Duration t, bool h2d) {
    if (injector_ == nullptr) return;
    const std::uint64_t id = (*transfer_seq_)++;
    const std::uint32_t max_retries = injector_->config().pcie_max_retries;
    for (std::uint32_t attempt = 0; attempt < max_retries; ++attempt) {
      if (!injector_->pcie_error(fault_scope_, fault_query_, id, attempt)) {
        break;
      }
      ++fault_counters_->pcie_errors;
      fault_counters_->pcie_retry_time += t;
      total += t;
      record(h2d ? sim::Resource::kCopyH2D : sim::Resource::kCopyD2H, t);
    }
  }

  sim::Timeline* tl_ = nullptr;
  sim::Timeline::StreamId stream_ = 0;
  sim::Timeline::Event last_;
  const fault::FaultInjector* injector_ = nullptr;
  std::uint32_t fault_scope_ = 0;
  std::uint64_t fault_query_ = 0;
  std::uint64_t* transfer_seq_ = nullptr;
  fault::FaultCounters* fault_counters_ = nullptr;
};

}  // namespace griffin::pcie
