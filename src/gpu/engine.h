// Griffin-GPU: the GPU-only query engine (paper §3.1). Decompression is
// Para-EF, intersection picks between the MergePath kernel (comparable
// lengths) and parallel binary search over skip pointers (high ratio) at the
// same crossover the scheduler uses, and ranking runs on the CPU per the
// Figure 7 finding. GpuExecutor exposes the per-step operations so the
// hybrid Griffin engine can drive individual steps and migrate between
// processors mid-query.
#pragma once

#include <map>
#include <optional>

#include "core/query.h"
#include "cpu/bm25.h"
#include "gpu/binary_intersect.h"
#include "gpu/decode.h"
#include "gpu/device_list.h"
#include "gpu/list_cache.h"
#include "gpu/mergepath.h"
#include "pcie/link.h"
#include "sim/gpu_cost_model.h"
#include "sim/hardware_spec.h"

namespace griffin::gpu {

struct GpuOptions {
  /// Intersection-path crossover: MergePath below, binary search at/above.
  /// 128 = the block size, per the paper's §3.2 analysis.
  double path_ratio = 128.0;
  /// Reuse device buffers across queries from a warm memory pool: the
  /// per-step cudaMalloc overhead (tens of microseconds per allocation,
  /// several allocations per step) is a one-time warmup cost in a serving
  /// system, not a per-query cost. Disable to charge every allocation.
  bool pooled_memory = true;
  /// Keep fully uploaded compressed lists device-resident across queries in
  /// an LRU (gpu/list_cache.h): hot terms skip the H2D payload transfer and
  /// allocations the paper's §2.3 identifies as the GPU's handicap.
  bool list_cache = true;
  /// Device memory reserved for per-query working set (decoded outputs,
  /// intermediates); the cache budget is device_mem_bytes minus this. A
  /// headroom >= device memory disables the cache.
  std::size_t list_cache_headroom_bytes = std::size_t{1} << 30;
  /// Double-buffer full-list uploads (DESIGN.md §10): split the payload H2D
  /// into block-granular chunks so the copy of chunk i+1 overlaps the
  /// Para-EF decode of chunk i on the timeline. Each chunk's decode is its
  /// own kernel launch, so chunking honestly raises the *serial* cost; the
  /// win is the critical path. Only effective when a timeline is bound.
  bool double_buffer = true;
  /// Minimum payload bytes per chunk (blocks are grouped until they reach
  /// it). Too small drowns in kernel-launch overhead — bench/overlap sweeps
  /// the tradeoff. 0 disables chunking.
  std::size_t copy_chunk_bytes = std::size_t{256} << 10;
};

/// Step-level GPU execution over one index. Holds the device, the cost
/// model, and the current (device-resident, decoded) intermediate result.
class GpuExecutor {
 public:
  GpuExecutor(const index::InvertedIndex& idx, sim::HardwareSpec hw = {},
              GpuOptions opt = {});

  /// Drops per-query device state. With a timeline (core/executor.h passes
  /// its own), the executor opens one copy stream and one compute stream on
  /// it and records every charge as a timeline op (DESIGN.md §10); without
  /// one, charging is purely serial as before. `query_id` keys fault
  /// coordinates when an injector is set (ignored otherwise). On a shared
  /// multi-tenant timeline, `release` is the query's admission time: the
  /// streams open there and the initial chain waits it out.
  void begin_query(sim::Timeline* tl = nullptr, std::uint64_t query_id = 0,
                   sim::Duration release = {});

  /// Cross-query kernel batching (DESIGN.md §12): subsequent kernel charges
  /// model a launch fused with `size - 1` co-admitted queries' kernels —
  /// shared launch overhead split K ways, body time scaled by warp fill
  /// (floored at 1/K). size <= 1 restores exact unbatched accounting.
  void set_batch(std::uint32_t size) { batch_size_ = size == 0 ? 1 : size; }

  /// Arms fault injection (DESIGN.md §11): PCIe transfer errors are drawn
  /// per DMA inside every ledger this executor binds, and fault_reset()
  /// becomes the executor's recovery hook for abandoned GPU steps. `scope`
  /// is the shard id in a cluster (0 standalone). Pass nullptr to disarm.
  void set_fault_injector(const fault::FaultInjector* injector,
                          std::uint32_t scope) {
    injector_ = injector;
    fault_scope_ = scope;
  }

  /// Recovery from an injected device fault on a compute step: in-flight
  /// prefetches are discarded *without* entering the cache (unlike
  /// drop_prefetches — the fault voids any guarantee the uploads landed
  /// intact) and the aborted step's terms are invalidated in the device
  /// cache (the simulated ECC error retires their pages). The current
  /// intermediate is untouched: the fault fired before the step's kernels
  /// consumed it, so the migration path can still drain it to the host.
  void fault_reset(std::span<const index::TermId> terms,
                   core::QueryMetrics& m);

  /// Charges the wasted device time of an abandoned GPU step: serially into
  /// `*stage` and as a compute op on the timeline, advancing the chain so
  /// the recovery steps wait out the fault like real work.
  void charge_fault(sim::Duration d, sim::Duration* stage,
                    core::QueryMetrics& m);

  /// Rung 1 of the OOM degradation ladder (DESIGN.md §16): frees at least
  /// `FaultConfig::oom_evict_bytes` from the device list cache's LRU tail,
  /// charging one host-synchronous free per entry (serially into m.transfer
  /// — it's PCIe/allocator machinery — and as a CPU op on the copy stream,
  /// advancing the chain so the retried allocation waits the frees out).
  /// Requires an armed injector; counts into m.faults and m.cache.
  void oom_evict(core::QueryMetrics& m);

  /// Drops unconsumed prefetches (counting them into m) and releases
  /// per-query device state.
  void finish_query(core::QueryMetrics& m);

  /// The event every dependent op of this query waits on (the executor
  /// threads it across steps as the plan frontier). Meaningless without a
  /// bound timeline.
  sim::Timeline::Event chain() const { return chain_; }
  void set_chain(sim::Timeline::Event e) { chain_ = e; }

  /// Starts the asynchronous H2D of term t's full list on the copy engine
  /// (kPrefetch step): charges the transfer serially but chains it only on
  /// the copy stream, so on the timeline it rides under the surrounding
  /// kernels. A later intersect/decode consuming t waits on its completion
  /// event. No-op if t is already resident or in flight.
  void prefetch(index::TermId t, core::QueryMetrics& m);

  /// Discards in-flight prefetches (CPU migration / end of query); fully
  /// landed lists still enter the device cache — the transfer was paid.
  void drop_prefetches(core::QueryMetrics& m);

  /// Term has an in-flight prefetched list this query (stat-free; feeds
  /// core::StepShape::longer_prefetched).
  bool prefetched(index::TermId t) const {
    return prefetch_.find(t) != prefetch_.end();
  }

  /// Intersects the first two lists entirely on the GPU.
  void intersect_first(index::TermId a, index::TermId b, core::QueryMetrics& m);

  /// Intersects the current intermediate result with another list.
  void intersect_next(index::TermId t, core::QueryMetrics& m);

  /// Decodes a single list to the device (single-term queries).
  void load_single(index::TermId t, core::QueryMetrics& m);

  /// Uploads a host intermediate result (CPU -> GPU migration).
  void upload_intermediate(std::span<const DocId> docs, core::QueryMetrics& m);

  /// Downloads the intermediate result (GPU -> CPU migration / final).
  std::vector<DocId> download_intermediate(core::QueryMetrics& m);

  // ---- Co-execution support (DESIGN.md §15) ----------------------------

  /// GPU leg of a split intersect over host-resident probes: uploads the
  /// probe range, binary-searches list t over it (selected blocks only —
  /// the split's GPU leg always runs the §3.1.2 path), and downloads the
  /// partial result. The D2H is charged on its own ledger bound *after* the
  /// kernels, so on the timeline it waits them out. Leaves any device
  /// intermediate untouched.
  std::vector<DocId> split_intersect_host(index::TermId t,
                                          std::span<const DocId> probes,
                                          core::QueryMetrics& m);

  /// GPU leg of a split intersect when the probes are the device-resident
  /// intermediate: runs over its [probe_offset, count) suffix in place (no
  /// re-upload), downloads the partial, and consumes the intermediate — a
  /// split step always leaves the merged result host-side.
  std::vector<DocId> split_intersect_device(index::TermId t,
                                            std::uint64_t probe_offset,
                                            core::QueryMetrics& m);

  /// Downloads the first n elements of the device intermediate (the CPU
  /// leg's probe prefix in a split) without consuming it and without
  /// dropping in-flight prefetches — unlike download_intermediate, the
  /// query is not leaving the device.
  std::vector<DocId> download_intermediate_prefix(std::uint64_t n,
                                                  core::QueryMetrics& m);

  /// Releases the device intermediate without charges: a degenerate alpha=0
  /// split already drained all of it to the host via the prefix download.
  void drop_intermediate() {
    current_ = simt::DeviceBuffer<DocId>();
    current_count_ = kNoIntermediate;
  }

  bool has_intermediate() const { return current_count_ != kNoIntermediate; }
  std::uint64_t intermediate_count() const { return current_count_; }

  /// True when term t's compressed list is resident in the device cache
  /// (stat-free; feeds core::StepShape::longer_device_resident).
  bool device_resident(index::TermId t) const { return cache_.resident(t); }

  simt::Device& device() { return device_; }
  const DeviceListCache& list_cache() const { return cache_; }
  const sim::HardwareSpec& hw() const { return hw_; }
  const pcie::Link& link() const { return link_; }

 private:
  static constexpr std::uint64_t kNoIntermediate = ~std::uint64_t{0};

  /// A fully uploaded list for one step: either a pointer into the cache
  /// (hit) or an owned fresh upload (miss / cache disabled). The owned case
  /// is handed to the cache by commit() *after* the step's kernels ran, so
  /// an insert can never evict a list another pointer still references.
  struct AcquiredList {
    /// Cache hit only (points into the cache). The owned case reads through
    /// view() instead of a raw pointer: a pointer into our own `owned` would
    /// dangle whenever the AcquiredList itself is moved (e.g. out of
    /// take_prefetched's optional).
    const DeviceList* cached = nullptr;
    std::optional<DeviceList> owned;
    index::TermId term = 0;
    bool cache_on_commit = false;
    /// Fresh miss upload whose payload transfer was *not* charged yet
    /// (chunked acquire): the caller pays it per chunk, interleaved with
    /// the per-chunk decode kernels (double buffering).
    bool payload_deferred = false;

    const DeviceList& view() const { return owned.has_value() ? *owned : *cached; }
  };
  /// With chunked=true, a miss uploads the skip table only and leaves the
  /// payload charge to the caller (payload_deferred).
  AcquiredList acquire_full(index::TermId t, core::QueryMetrics& m,
                            bool chunked = false);
  void commit(AcquiredList&& a, core::QueryMetrics& m);
  /// Takes term t's prefetched list if one is in flight: the consumer
  /// inherits the full upload (and its completion event, joined into the
  /// chain) without new transfer charges.
  std::optional<AcquiredList> take_prefetched(index::TermId t,
                                              core::QueryMetrics& m);

  /// Uploads + Para-EF-decodes a full list; returns the decoded buffer.
  /// With a timeline + double buffering, a miss pipelines chunked H2D
  /// against per-chunk decode kernels.
  simt::DeviceBuffer<DocId> decode_full_list(index::TermId t,
                                             core::QueryMetrics& m);
  /// The binary-search target acquisition shared by the split legs:
  /// prefetched > cache hit > deferred (skip table + candidate blocks only)
  /// upload, with the same stats and caching rules as intersect_next's
  /// high-ratio arm. `pf` receives the consumed prefetch, if any, so the
  /// caller can commit() it after the kernels ran.
  GpuIntersectResult binary_search_over(index::TermId t,
                                        const simt::DeviceBuffer<DocId>& probes,
                                        std::uint64_t np,
                                        std::uint64_t probe_offset,
                                        pcie::TransferLedger& ledger,
                                        core::QueryMetrics& m,
                                        std::optional<AcquiredList>& pf);
  /// D2H of a split leg's partial matches on a fresh ledger bound after the
  /// leg's kernels (so the copy waits them out on the timeline).
  std::vector<DocId> download_partial(const simt::DeviceBuffer<DocId>& buf,
                                      std::uint64_t count,
                                      core::QueryMetrics& m);
  void charge_kernel(const sim::KernelStats& s, sim::Duration* stage,
                     core::QueryMetrics& m, std::uint32_t kernels = 1);
  void charge_ledger(const pcie::TransferLedger& ledger, core::QueryMetrics& m);
  /// Arms PCIe fault injection on a ledger when an injector is set (every
  /// ledger charging transfers for this query must pass through here or
  /// bind_ledger so DMAs draw consecutive fault coordinates).
  void arm_ledger(pcie::TransferLedger& ledger, core::QueryMetrics& m);
  /// Arms the ledger for fault injection and binds it to the timeline's
  /// copy stream, chained on the current plan frontier (chain_) — or on
  /// nothing, for prefetches, which order only behind earlier copies.
  void bind_ledger(pcie::TransferLedger& ledger, core::QueryMetrics& m,
                   bool chained = true);

  const index::InvertedIndex* idx_;
  sim::HardwareSpec hw_;
  GpuOptions opt_;
  simt::Device device_;
  DeviceListCache cache_;  // after device_: entries release device memory
  sim::GpuCostModel cost_;
  pcie::Link link_;
  simt::DeviceBuffer<DocId> current_;
  std::uint64_t current_count_ = kNoIntermediate;

  /// A kPrefetch upload awaiting its consumer. Ordered map: drop order (and
  /// therefore cache-insert order) must be deterministic.
  struct Prefetched {
    DeviceList list;
    sim::Timeline::Event ready;
    bool cache_on_commit = false;
  };
  std::map<index::TermId, Prefetched> prefetch_;

  sim::Timeline* tl_ = nullptr;  ///< bound per query by begin_query
  std::uint32_t batch_size_ = 1;  ///< current cross-query batch width
  sim::Timeline::StreamId copy_stream_ = 0;
  sim::Timeline::StreamId compute_stream_ = 0;
  sim::Timeline::Event chain_;  ///< current plan-frontier event

  const fault::FaultInjector* injector_ = nullptr;  ///< nullptr = no faults
  std::uint32_t fault_scope_ = 0;   ///< shard id (0 standalone)
  std::uint64_t fault_query_ = 0;   ///< current query's fault coordinate
  std::uint64_t transfer_seq_ = 0;  ///< per-query DMA counter (fault coords)
};

/// The GPU-only engine the paper evaluates as "GPU only" in Figures 14/15.
/// execute() (core/engine_drivers.cpp) is the shared planner/executor
/// driver under the degenerate kAlwaysGpu policy (DESIGN.md §8).
class GpuEngine : public core::Engine {
 public:
  GpuEngine(const index::InvertedIndex& idx, sim::HardwareSpec hw = {},
            GpuOptions opt = {}, cpu::Bm25Params bm25 = {})
      : idx_(&idx), exec_(idx, hw, opt), scorer_(idx, bm25), hw_(hw) {}

  core::QueryResult execute(const core::Query& q) override;
  std::string name() const override { return "gpu"; }

  GpuExecutor& executor() { return exec_; }

 private:
  const index::InvertedIndex* idx_;
  GpuExecutor exec_;
  cpu::Bm25Scorer scorer_;
  sim::HardwareSpec hw_;
};

}  // namespace griffin::gpu
