#include "gpu/device_list.h"

#include <cassert>

namespace griffin::gpu {

DeviceList upload_list(simt::Device& dev, const codec::BlockCompressedList& list,
                       const pcie::Link& link, pcie::TransferLedger& ledger,
                       bool defer_payload) {
  DeviceList d;
  d.scheme = list.scheme();
  d.block_size = list.block_size();
  d.size = list.size();

  d.host_descs.reserve(list.num_blocks());
  std::uint64_t offset = 0;
  for (const codec::BlockMeta& m : list.metas()) {
    BlockDesc b;
    b.first = m.first;
    b.last = m.last;
    b.bit_offset = m.bit_offset;
    b.count = m.count;
    b.hdr = m.hdr;
    b.out_offset = offset;
    offset += m.count;
    d.host_descs.push_back(b);
  }
  assert(offset == d.size);

  d.blob = dev.alloc<std::uint64_t>(list.blob().size());
  ledger.add_alloc(link);
  dev.upload(d.blob, list.blob());
  if (!defer_payload) {
    ledger.add_transfer(link, list.blob().size() * 8, /*h2d=*/true);
  }

  d.descs = dev.alloc<BlockDesc>(d.host_descs.size());
  ledger.add_alloc(link);
  dev.upload(d.descs, std::span<const BlockDesc>(d.host_descs));
  ledger.add_transfer(link, d.host_descs.size() * sizeof(BlockDesc), true);
  return d;
}

void charge_block_payload_upload(const DeviceList& list,
                                 std::span<const std::uint32_t> ids,
                                 const pcie::Link& link,
                                 pcie::TransferLedger& ledger) {
  std::uint64_t bytes = 0;
  for (std::uint32_t b : ids) bytes += list.block_payload_bytes(b);
  if (bytes > 0) ledger.add_transfer(link, bytes, /*h2d=*/true);
}

std::uint64_t load_bits(simt::Thread& t,
                        const simt::DeviceBuffer<std::uint64_t>& blob,
                        std::uint64_t pos, std::uint32_t len) {
  if (len == 0) return 0;
  assert(len <= 64);
  const std::uint64_t word_idx = pos >> 6;
  const std::uint32_t bit_idx = static_cast<std::uint32_t>(pos & 63);
  std::uint64_t value = t.load(blob, word_idx) >> bit_idx;
  if (bit_idx + len > 64) {
    value |= t.load(blob, word_idx + 1) << (64 - bit_idx);
  }
  if (len == 64) return value;
  return value & ((std::uint64_t{1} << len) - 1);
}

}  // namespace griffin::gpu
