#include "gpu/engine.h"

#include <algorithm>
#include <cassert>

namespace griffin::gpu {

namespace {
/// Cache budget: device memory minus the per-query working-set headroom.
std::uint64_t list_cache_budget(const sim::HardwareSpec& hw,
                                const GpuOptions& opt) {
  if (!opt.list_cache) return 0;
  if (hw.pcie.device_mem_bytes <= opt.list_cache_headroom_bytes) return 0;
  return hw.pcie.device_mem_bytes - opt.list_cache_headroom_bytes;
}
}  // namespace

GpuExecutor::GpuExecutor(const index::InvertedIndex& idx, sim::HardwareSpec hw,
                         GpuOptions opt)
    : idx_(&idx),
      hw_(hw),
      opt_(opt),
      device_(hw.gpu, hw.pcie.device_mem_bytes),
      cache_(list_cache_budget(hw, opt)),
      cost_(hw.gpu),
      link_([&] {
        sim::PcieSpec spec = hw.pcie;
        if (opt.pooled_memory) spec.alloc_us = 0.0;
        return pcie::Link(spec);
      }()) {
  assert(idx.scheme() == codec::Scheme::kEliasFano &&
         "Griffin-GPU decodes with Para-EF; build the index with EF");
}

void GpuExecutor::begin_query() {
  current_ = simt::DeviceBuffer<DocId>();
  current_count_ = kNoIntermediate;
}

void GpuExecutor::charge_kernel(const sim::KernelStats& s, sim::Duration* stage,
                                core::QueryMetrics& m, std::uint32_t kernels) {
  m.add_stage(cost_.kernel_time(s), stage);
  m.gpu_kernels += kernels;
}

void GpuExecutor::charge_ledger(const pcie::TransferLedger& ledger,
                                core::QueryMetrics& m) {
  m.add_stage(ledger.total, &m.transfer);
}

GpuExecutor::AcquiredList GpuExecutor::acquire_full(index::TermId t,
                                                    core::QueryMetrics& m) {
  AcquiredList a;
  a.term = t;
  if (cache_.enabled()) {
    if (const DeviceList* hit = cache_.lookup(t)) {
      ++m.cache.device_hits;  // transfer + allocation charges skipped
      a.list = hit;
      return a;
    }
    ++m.cache.device_misses;
  }
  pcie::TransferLedger ledger;
  a.owned.emplace(upload_list(device_, idx_->list(t).docids, link_, ledger));
  charge_ledger(ledger, m);
  a.list = &*a.owned;
  a.cache_on_commit =
      cache_.enabled() && cache_.fits(DeviceListCache::entry_bytes(*a.owned));
  return a;
}

void GpuExecutor::commit(AcquiredList&& a, core::QueryMetrics& m) {
  if (!a.cache_on_commit || !a.owned.has_value()) return;
  std::uint64_t evicted = 0;
  cache_.insert(a.term, std::move(*a.owned), &evicted);
  m.cache.device_evictions += evicted;
}

simt::DeviceBuffer<DocId> GpuExecutor::decode_full_list(index::TermId t,
                                                        core::QueryMetrics& m) {
  const auto& list = idx_->list(t).docids;
  AcquiredList a = acquire_full(t, m);
  pcie::TransferLedger ledger;
  auto out = device_.alloc<DocId>(list.size());
  ledger.add_alloc(link_);
  charge_ledger(ledger, m);

  const sim::KernelStats s =
      ef_decode_range(device_, *a.list, 0, a.list->num_blocks(), out);
  charge_kernel(s, &m.decode, m);
  commit(std::move(a), m);
  return out;
}

void GpuExecutor::intersect_first(index::TermId a, index::TermId b,
                                  core::QueryMetrics& m) {
  const auto& la = idx_->list(a).docids;
  const auto& lb = idx_->list(b).docids;
  assert(la.size() <= lb.size());
  const double ratio = static_cast<double>(lb.size()) /
                       static_cast<double>(la.size());

  auto da = decode_full_list(a, m);

  pcie::TransferLedger ledger;
  GpuIntersectResult r;
  if (ratio < opt_.path_ratio) {
    auto db = decode_full_list(b, m);
    r = mergepath_intersect(device_, da, la.size(), db, lb.size(), link_,
                            ledger);
  } else if (const DeviceList* resident =
                 cache_.enabled() ? cache_.lookup(b) : nullptr) {
    // The long list is already fully device-resident: no transfers at all,
    // and the payload needs no deferred block charging.
    ++m.cache.device_hits;
    r = binary_search_intersect(device_, da, la.size(), *resident, link_,
                                ledger, /*deferred_payload=*/false);
  } else {
    // Miss: the deferred upload moves only the skip table plus candidate
    // blocks (§3.1.2), so the payload is never fully paid for — such a
    // partially transferred list must not enter the cache.
    if (cache_.enabled()) ++m.cache.device_misses;
    DeviceList dlist = upload_list(device_, lb, link_, ledger,
                                   /*defer_payload=*/true);
    r = binary_search_intersect(device_, da, la.size(), dlist, link_, ledger,
                                /*deferred_payload=*/true);
  }
  charge_ledger(ledger, m);
  charge_kernel(r.stats, &m.intersect, m, r.kernels);
  current_ = std::move(r.result);
  current_count_ = r.count;
  m.placements.push_back(core::Placement::kGpu);
}

void GpuExecutor::intersect_next(index::TermId t, core::QueryMetrics& m) {
  assert(has_intermediate());
  const auto& lt = idx_->list(t).docids;
  const double ratio =
      current_count_ == 0
          ? opt_.path_ratio  // empty intermediate: nothing to merge anyway
          : static_cast<double>(lt.size()) /
                static_cast<double>(current_count_);

  pcie::TransferLedger ledger;
  GpuIntersectResult r;
  if (ratio < opt_.path_ratio) {
    auto dt = decode_full_list(t, m);
    r = mergepath_intersect(device_, current_, current_count_, dt, lt.size(),
                            link_, ledger);
  } else if (const DeviceList* resident =
                 cache_.enabled() ? cache_.lookup(t) : nullptr) {
    ++m.cache.device_hits;
    r = binary_search_intersect(device_, current_, current_count_, *resident,
                                link_, ledger, /*deferred_payload=*/false);
  } else {
    if (cache_.enabled()) ++m.cache.device_misses;
    DeviceList dlist = upload_list(device_, lt, link_, ledger, true);
    r = binary_search_intersect(device_, current_, current_count_, dlist,
                                link_, ledger, true);
  }
  charge_ledger(ledger, m);
  charge_kernel(r.stats, &m.intersect, m, r.kernels);
  current_ = std::move(r.result);
  current_count_ = r.count;
  m.placements.push_back(core::Placement::kGpu);
}

void GpuExecutor::load_single(index::TermId t, core::QueryMetrics& m) {
  current_ = decode_full_list(t, m);
  current_count_ = idx_->list(t).size();
}

void GpuExecutor::upload_intermediate(std::span<const DocId> docs,
                                      core::QueryMetrics& m) {
  pcie::TransferLedger ledger;
  current_ = device_.alloc<DocId>(std::max<std::size_t>(docs.size(), 1));
  ledger.add_alloc(link_);
  device_.upload(current_, docs);
  ledger.add_transfer(link_, docs.size_bytes(), /*h2d=*/true);
  charge_ledger(ledger, m);
  current_count_ = docs.size();
}

std::vector<DocId> GpuExecutor::download_intermediate(core::QueryMetrics& m) {
  assert(has_intermediate());
  std::vector<DocId> out(current_count_);
  pcie::TransferLedger ledger;
  device_.download(std::span<DocId>(out), current_);
  ledger.add_transfer(link_, out.size() * sizeof(DocId), /*h2d=*/false);
  charge_ledger(ledger, m);
  return out;
}

// GpuEngine::execute lives in core/engine_drivers.cpp: it is the shared
// planner/executor driver under the kAlwaysGpu policy.

}  // namespace griffin::gpu
