#include "gpu/engine.h"

#include <algorithm>
#include <cassert>

namespace griffin::gpu {

namespace {
/// Cache budget: device memory minus the per-query working-set headroom.
std::uint64_t list_cache_budget(const sim::HardwareSpec& hw,
                                const GpuOptions& opt) {
  if (!opt.list_cache) return 0;
  if (hw.pcie.device_mem_bytes <= opt.list_cache_headroom_bytes) return 0;
  return hw.pcie.device_mem_bytes - opt.list_cache_headroom_bytes;
}
}  // namespace

GpuExecutor::GpuExecutor(const index::InvertedIndex& idx, sim::HardwareSpec hw,
                         GpuOptions opt)
    : idx_(&idx),
      hw_(hw),
      opt_(opt),
      device_(hw.gpu, hw.pcie.device_mem_bytes),
      cache_(list_cache_budget(hw, opt)),
      cost_(hw.gpu),
      link_([&] {
        sim::PcieSpec spec = hw.pcie;
        if (opt.pooled_memory) spec.alloc_us = 0.0;
        return pcie::Link(spec);
      }()) {}

void GpuExecutor::begin_query(sim::Timeline* tl, std::uint64_t query_id,
                              sim::Duration release) {
  current_ = simt::DeviceBuffer<DocId>();
  current_count_ = kNoIntermediate;
  prefetch_.clear();
  tl_ = tl;
  chain_ = sim::Timeline::Event{release};
  fault_query_ = query_id;
  transfer_seq_ = 0;
  batch_size_ = 1;
  if (tl_ != nullptr) {
    copy_stream_ = tl_->stream(release);
    compute_stream_ = tl_->stream(release);
  }
}

void GpuExecutor::finish_query(core::QueryMetrics& m) {
  drop_prefetches(m);
  current_ = simt::DeviceBuffer<DocId>();
  current_count_ = kNoIntermediate;
  tl_ = nullptr;
  chain_ = sim::Timeline::Event{};
}

void GpuExecutor::charge_kernel(const sim::KernelStats& s, sim::Duration* stage,
                                core::QueryMetrics& m, std::uint32_t kernels) {
  sim::Duration d = cost_.kernel_time(s);
  if (batch_size_ > 1) {
    // Cross-query kernel batching (DESIGN.md §12): this launch was fused
    // with batch_size_ - 1 compatible launches from co-admitted queries.
    // Each member pays 1/K of the shared launch overhead, and a kernel
    // that underfills the device's resident-warp capacity recovers idle
    // warp slots from its batch peers — its body time shrinks by its warp
    // fill, floored at 1/K (K members can at best K-plex the device). A
    // device-filling kernel gets no body bonus; the launch amortization
    // stands. Guarded by batch_size_ > 1 so unbatched accounting is
    // bit-identical to the single-tenant engines.
    const sim::Duration overhead =
        sim::Duration::from_us(hw_.gpu.kernel_launch_us);
    const sim::Duration body = sim::max(d - overhead, sim::Duration());
    const double resident = static_cast<double>(hw_.gpu.sm_count) *
                            static_cast<double>(hw_.gpu.max_resident_warps_per_sm);
    const double fill =
        std::min(1.0, static_cast<double>(s.warps) / resident);
    const double share = 1.0 / static_cast<double>(batch_size_);
    d = overhead * share + body * std::max(fill, share);
  }
  m.add_stage(d, stage);
  m.gpu_kernels += kernels;
  if (tl_ != nullptr) {
    chain_ = tl_->record(compute_stream_, sim::Resource::kGpuCompute, d,
                         chain_);
  }
}

void GpuExecutor::charge_ledger(const pcie::TransferLedger& ledger,
                                core::QueryMetrics& m) {
  m.add_stage(ledger.total, &m.transfer);
  if (tl_ != nullptr) chain_ = sim::Timeline::join(chain_, ledger.last_event());
}

void GpuExecutor::arm_ledger(pcie::TransferLedger& ledger,
                             core::QueryMetrics& m) {
  if (injector_ != nullptr && injector_->config().pcie.armed()) {
    ledger.arm_faults(injector_, fault_scope_, fault_query_, &transfer_seq_,
                      &m.faults);
  }
}

void GpuExecutor::bind_ledger(pcie::TransferLedger& ledger,
                              core::QueryMetrics& m, bool chained) {
  arm_ledger(ledger, m);
  if (tl_ == nullptr) return;
  ledger.bind(tl_, copy_stream_,
              chained ? chain_ : sim::Timeline::Event{});
}

void GpuExecutor::fault_reset(std::span<const index::TermId> terms,
                              core::QueryMetrics& m) {
  // Unlike drop_prefetches, landed uploads are NOT salvaged into the cache:
  // the device fault voids the guarantee they arrived intact.
  for ([[maybe_unused]] const auto& p : prefetch_) {
    ++m.overlap.prefetch_dropped;
  }
  prefetch_.clear();
  for (const index::TermId t : terms) cache_.erase(t);
}

void GpuExecutor::charge_fault(sim::Duration d, sim::Duration* stage,
                               core::QueryMetrics& m) {
  m.add_stage(d, stage);
  if (tl_ != nullptr) {
    chain_ = tl_->record(compute_stream_, sim::Resource::kGpuCompute, d,
                         chain_);
  }
}

void GpuExecutor::oom_evict(core::QueryMetrics& m) {
  assert(injector_ != nullptr);
  std::uint64_t entries = 0;
  const std::uint64_t freed =
      cache_.evict_bytes(injector_->config().oom_evict_bytes, &entries);
  m.faults.oom_evictions += entries;
  m.faults.oom_evicted_bytes += freed;
  m.cache.device_evictions += entries;
  const sim::Duration d = sim::Duration::from_us(
      injector_->config().oom_evict_cost_us * static_cast<double>(entries));
  m.add_stage(d, &m.transfer);
  m.faults.oom_recovery += d;
  if (tl_ != nullptr) {
    chain_ = tl_->record(copy_stream_, sim::Resource::kCpu, d, chain_);
  }
}

void GpuExecutor::prefetch(index::TermId t, core::QueryMetrics& m) {
  // Planned against slightly stale state: re-check residency and in-flight
  // status at issue time, and quietly skip when the copy is pointless.
  if (prefetched(t) || cache_.resident(t)) return;
  pcie::TransferLedger ledger;
  bind_ledger(ledger, m, /*chained=*/false);  // copy-stream order only
  Prefetched p;
  p.list = upload_list(device_, idx_->list(t).docids, link_, ledger);
  p.ready = ledger.last_event();
  p.cache_on_commit =
      cache_.enabled() && cache_.fits(DeviceListCache::entry_bytes(p.list));
  if (cache_.enabled()) ++m.cache.device_misses;
  // Serial charge as usual, but the chain is NOT advanced: on the timeline
  // the upload rides the copy engine under whatever kernels follow, and
  // only a consumer of this term waits on p.ready.
  m.add_stage(ledger.total, &m.transfer);
  ++m.overlap.prefetch_issued;
  prefetch_.emplace(t, std::move(p));
}

void GpuExecutor::drop_prefetches(core::QueryMetrics& m) {
  for (auto& [term, p] : prefetch_) {
    ++m.overlap.prefetch_dropped;
    // The full payload landed and was paid for; keeping it costs nothing.
    if (p.cache_on_commit) {
      std::uint64_t evicted = 0;
      cache_.insert(term, std::move(p.list), &evicted);
      m.cache.device_evictions += evicted;
    }
  }
  prefetch_.clear();
}

std::optional<GpuExecutor::AcquiredList> GpuExecutor::take_prefetched(
    index::TermId t, core::QueryMetrics& m) {
  auto it = prefetch_.find(t);
  if (it == prefetch_.end()) return std::nullopt;
  AcquiredList a;
  a.term = t;
  a.owned.emplace(std::move(it->second.list));
  a.cache_on_commit = it->second.cache_on_commit;
  if (tl_ != nullptr) chain_ = sim::Timeline::join(chain_, it->second.ready);
  prefetch_.erase(it);
  ++m.overlap.prefetch_used;
  return a;
}

GpuExecutor::AcquiredList GpuExecutor::acquire_full(index::TermId t,
                                                    core::QueryMetrics& m,
                                                    bool chunked) {
  if (auto pf = take_prefetched(t, m)) return std::move(*pf);
  AcquiredList a;
  a.term = t;
  if (cache_.enabled()) {
    if (const DeviceList* hit = cache_.lookup(t)) {
      ++m.cache.device_hits;  // transfer + allocation charges skipped
      a.cached = hit;
      return a;
    }
    ++m.cache.device_misses;
  }
  pcie::TransferLedger ledger;
  bind_ledger(ledger, m);
  a.owned.emplace(upload_list(device_, idx_->list(t).docids, link_, ledger,
                              /*defer_payload=*/chunked));
  charge_ledger(ledger, m);
  a.payload_deferred = chunked;
  a.cache_on_commit =
      cache_.enabled() && cache_.fits(DeviceListCache::entry_bytes(*a.owned));
  return a;
}

void GpuExecutor::commit(AcquiredList&& a, core::QueryMetrics& m) {
  if (!a.cache_on_commit || !a.owned.has_value()) return;
  std::uint64_t evicted = 0;
  cache_.insert(a.term, std::move(*a.owned), &evicted);
  m.cache.device_evictions += evicted;
}

simt::DeviceBuffer<DocId> GpuExecutor::decode_full_list(index::TermId t,
                                                        core::QueryMetrics& m) {
  const auto& list = idx_->list(t).docids;
  const bool pipelined =
      tl_ != nullptr && opt_.double_buffer && opt_.copy_chunk_bytes > 0;
  AcquiredList a = acquire_full(t, m, /*chunked=*/pipelined);
  pcie::TransferLedger ledger;
  bind_ledger(ledger, m);
  auto out = device_.alloc<DocId>(list.size());
  ledger.add_alloc(link_);
  charge_ledger(ledger, m);

  const DeviceList& dl = a.view();
  if (!a.payload_deferred) {
    // Hit / prefetched / serial mode: the payload is on the device already,
    // one kernel decodes it all.
    const sim::KernelStats s =
        decode_range(device_, dl, 0, dl.num_blocks(), out);
    charge_kernel(s, &m.decode, m);
  } else {
    // Double buffering (DESIGN.md §10): group blocks into >= chunk-size
    // payload chunks; each chunk's H2D is an op on the copy stream chained
    // off the step's entry frontier (copies serialize with each other, not
    // with this step's kernels), and its decode kernel waits on exactly its
    // own chunk's copy — so the copy of chunk i+1 runs under the decode of
    // chunk i. Per-chunk launches honestly inflate the serial cost; the
    // pipeline pays off on the critical path.
    const sim::Timeline::Event entry = chain_;
    const std::size_t nb = dl.num_blocks();
    std::size_t lo = 0;
    bool first = true;
    while (lo < nb) {
      std::uint64_t bytes = 0;
      std::size_t hi = lo;
      while (hi < nb && (hi == lo || bytes < opt_.copy_chunk_bytes)) {
        bytes += dl.block_payload_bytes(hi);
        ++hi;
      }
      pcie::TransferLedger chunk;
      arm_ledger(chunk, m);
      if (tl_ != nullptr) chunk.bind(tl_, copy_stream_, entry);
      chunk.add_transfer_chunk(link_, bytes, /*h2d=*/true, first);
      first = false;
      m.add_stage(chunk.total, &m.transfer);
      if (tl_ != nullptr) {
        chain_ = sim::Timeline::join(chain_, chunk.last_event());
      }
      const sim::KernelStats s = decode_range(
          device_, dl, lo, hi, out, dl.host_descs[lo].out_offset);
      charge_kernel(s, &m.decode, m);
      lo = hi;
    }
  }
  commit(std::move(a), m);
  return out;
}

void GpuExecutor::intersect_first(index::TermId a, index::TermId b,
                                  core::QueryMetrics& m) {
  const auto& la = idx_->list(a).docids;
  const auto& lb = idx_->list(b).docids;
  assert(la.size() <= lb.size());
  const double ratio = static_cast<double>(lb.size()) /
                       static_cast<double>(la.size());

  auto da = decode_full_list(a, m);

  pcie::TransferLedger ledger;
  bind_ledger(ledger, m);
  GpuIntersectResult r;
  std::optional<AcquiredList> pf;
  if (ratio < opt_.path_ratio) {
    auto db = decode_full_list(b, m);
    r = mergepath_intersect(device_, da, la.size(), db, lb.size(), link_,
                            ledger);
  } else if ((pf = take_prefetched(b, m))) {
    // The prefetch already paid the full payload upload on the copy
    // engine; search it like a resident list (and cache it afterwards).
    r = binary_search_intersect(device_, da, la.size(), pf->view(), link_,
                                ledger, /*deferred_payload=*/false);
  } else if (const DeviceList* resident =
                 cache_.enabled() ? cache_.lookup(b) : nullptr) {
    // The long list is already fully device-resident: no transfers at all,
    // and the payload needs no deferred block charging.
    ++m.cache.device_hits;
    r = binary_search_intersect(device_, da, la.size(), *resident, link_,
                                ledger, /*deferred_payload=*/false);
  } else {
    // Miss: the deferred upload moves only the skip table plus candidate
    // blocks (§3.1.2), so the payload is never fully paid for — such a
    // partially transferred list must not enter the cache.
    if (cache_.enabled()) ++m.cache.device_misses;
    DeviceList dlist = upload_list(device_, lb, link_, ledger,
                                   /*defer_payload=*/true);
    r = binary_search_intersect(device_, da, la.size(), dlist, link_, ledger,
                                /*deferred_payload=*/true);
  }
  charge_ledger(ledger, m);
  charge_kernel(r.stats, &m.intersect, m, r.kernels);
  if (pf.has_value()) commit(std::move(*pf), m);
  current_ = std::move(r.result);
  current_count_ = r.count;
  m.placements.push_back(core::Placement::kGpu);
}

void GpuExecutor::intersect_next(index::TermId t, core::QueryMetrics& m) {
  assert(has_intermediate());
  const auto& lt = idx_->list(t).docids;
  const double ratio =
      current_count_ == 0
          ? opt_.path_ratio  // empty intermediate: nothing to merge anyway
          : static_cast<double>(lt.size()) /
                static_cast<double>(current_count_);

  pcie::TransferLedger ledger;
  bind_ledger(ledger, m);
  GpuIntersectResult r;
  std::optional<AcquiredList> pf;
  if (ratio < opt_.path_ratio) {
    auto dt = decode_full_list(t, m);
    r = mergepath_intersect(device_, current_, current_count_, dt, lt.size(),
                            link_, ledger);
  } else if ((pf = take_prefetched(t, m))) {
    r = binary_search_intersect(device_, current_, current_count_, pf->view(),
                                link_, ledger, /*deferred_payload=*/false);
  } else if (const DeviceList* resident =
                 cache_.enabled() ? cache_.lookup(t) : nullptr) {
    ++m.cache.device_hits;
    r = binary_search_intersect(device_, current_, current_count_, *resident,
                                link_, ledger, /*deferred_payload=*/false);
  } else {
    if (cache_.enabled()) ++m.cache.device_misses;
    DeviceList dlist = upload_list(device_, lt, link_, ledger, true);
    r = binary_search_intersect(device_, current_, current_count_, dlist,
                                link_, ledger, true);
  }
  charge_ledger(ledger, m);
  charge_kernel(r.stats, &m.intersect, m, r.kernels);
  if (pf.has_value()) commit(std::move(*pf), m);
  current_ = std::move(r.result);
  current_count_ = r.count;
  m.placements.push_back(core::Placement::kGpu);
}

void GpuExecutor::load_single(index::TermId t, core::QueryMetrics& m) {
  current_ = decode_full_list(t, m);
  current_count_ = idx_->list(t).size();
}

void GpuExecutor::upload_intermediate(std::span<const DocId> docs,
                                      core::QueryMetrics& m) {
  pcie::TransferLedger ledger;
  bind_ledger(ledger, m);
  current_ = device_.alloc<DocId>(std::max<std::size_t>(docs.size(), 1));
  ledger.add_alloc(link_);
  device_.upload(current_, docs);
  ledger.add_transfer(link_, docs.size_bytes(), /*h2d=*/true);
  charge_ledger(ledger, m);
  current_count_ = docs.size();
}

std::vector<DocId> GpuExecutor::download_intermediate(core::QueryMetrics& m) {
  assert(has_intermediate());
  // Leaving the device: any in-flight prefetch has lost its consumer
  // (migration or final drain), so it is dropped here.
  drop_prefetches(m);
  std::vector<DocId> out(current_count_);
  pcie::TransferLedger ledger;
  bind_ledger(ledger, m);
  device_.download(std::span<DocId>(out), current_);
  ledger.add_transfer(link_, out.size() * sizeof(DocId), /*h2d=*/false);
  charge_ledger(ledger, m);
  return out;
}

GpuIntersectResult GpuExecutor::binary_search_over(
    index::TermId t, const simt::DeviceBuffer<DocId>& probes, std::uint64_t np,
    std::uint64_t probe_offset, pcie::TransferLedger& ledger,
    core::QueryMetrics& m, std::optional<AcquiredList>& pf) {
  if ((pf = take_prefetched(t, m))) {
    return binary_search_intersect(device_, probes, np, pf->view(), link_,
                                   ledger, /*deferred_payload=*/false,
                                   probe_offset);
  }
  if (const DeviceList* resident =
          cache_.enabled() ? cache_.lookup(t) : nullptr) {
    ++m.cache.device_hits;
    return binary_search_intersect(device_, probes, np, *resident, link_,
                                   ledger, /*deferred_payload=*/false,
                                   probe_offset);
  }
  if (cache_.enabled()) ++m.cache.device_misses;
  DeviceList dlist = upload_list(device_, idx_->list(t).docids, link_, ledger,
                                 /*defer_payload=*/true);
  return binary_search_intersect(device_, probes, np, dlist, link_, ledger,
                                 /*deferred_payload=*/true, probe_offset);
}

std::vector<DocId> GpuExecutor::download_partial(
    const simt::DeviceBuffer<DocId>& buf, std::uint64_t count,
    core::QueryMetrics& m) {
  std::vector<DocId> out(count);
  pcie::TransferLedger ledger;
  bind_ledger(ledger, m);  // bound after the kernels: the D2H waits them out
  device_.download(std::span<DocId>(out), buf);
  ledger.add_transfer(link_, count * sizeof(DocId), /*h2d=*/false);
  charge_ledger(ledger, m);
  return out;
}

std::vector<DocId> GpuExecutor::split_intersect_host(
    index::TermId t, std::span<const DocId> probes, core::QueryMetrics& m) {
  pcie::TransferLedger ledger;
  bind_ledger(ledger, m);
  auto dprobes = device_.alloc<DocId>(std::max<std::size_t>(probes.size(), 1));
  ledger.add_alloc(link_);
  device_.upload(dprobes, probes);
  ledger.add_transfer(link_, probes.size_bytes(), /*h2d=*/true);
  std::optional<AcquiredList> pf;
  GpuIntersectResult r =
      binary_search_over(t, dprobes, probes.size(), 0, ledger, m, pf);
  charge_ledger(ledger, m);
  charge_kernel(r.stats, &m.intersect, m, r.kernels);
  if (pf.has_value()) commit(std::move(*pf), m);
  return download_partial(r.result, r.count, m);
}

std::vector<DocId> GpuExecutor::split_intersect_device(
    index::TermId t, std::uint64_t probe_offset, core::QueryMetrics& m) {
  assert(has_intermediate());
  assert(probe_offset <= current_count_);
  const std::uint64_t np = current_count_ - probe_offset;
  pcie::TransferLedger ledger;
  bind_ledger(ledger, m);
  std::optional<AcquiredList> pf;
  GpuIntersectResult r =
      binary_search_over(t, current_, np, probe_offset, ledger, m, pf);
  charge_ledger(ledger, m);
  charge_kernel(r.stats, &m.intersect, m, r.kernels);
  if (pf.has_value()) commit(std::move(*pf), m);
  // The split leaves the merged result host-side: the device copy of the
  // probes is spent.
  current_ = simt::DeviceBuffer<DocId>();
  current_count_ = kNoIntermediate;
  return download_partial(r.result, r.count, m);
}

std::vector<DocId> GpuExecutor::download_intermediate_prefix(
    std::uint64_t n, core::QueryMetrics& m) {
  assert(has_intermediate());
  assert(n <= current_count_);
  std::vector<DocId> out(n);
  pcie::TransferLedger ledger;
  bind_ledger(ledger, m);
  device_.download(std::span<DocId>(out), current_);
  ledger.add_transfer(link_, n * sizeof(DocId), /*h2d=*/false);
  charge_ledger(ledger, m);
  return out;
}

// GpuEngine::execute lives in core/engine_drivers.cpp: it is the shared
// planner/executor driver under the kAlwaysGpu policy.

}  // namespace griffin::gpu
