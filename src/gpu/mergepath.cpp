#include "gpu/mergepath.h"

#include <cassert>

#include "simt/collectives.h"

namespace griffin::gpu {

namespace {

/// Merge-path crossing on the global arrays: smallest a such that the path
/// at diagonal `diag` passes between A[a-1] and B[diag-a]. After the search,
/// equal pairs straddling the boundary are pulled into the right-hand
/// partition so no match can be split (docIDs are unique per list, so one
/// nudge suffices).
struct Boundary {
  std::uint64_t a, b;
};

template <typename LoadA, typename LoadB>
Boundary merge_path_search(std::uint64_t diag, std::uint64_t na,
                           std::uint64_t nb, LoadA&& load_a, LoadB&& load_b,
                           simt::Thread& t) {
  std::uint64_t lo = diag > nb ? diag - nb : 0;
  std::uint64_t hi = diag < na ? diag : na;
  while (lo < hi) {
    const std::uint64_t mid = (lo + hi) / 2;
    t.charge(2 * simt::kAluCycle);
    if (load_a(mid) < load_b(diag - 1 - mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  Boundary r{lo, diag - lo};
  if (r.a > 0 && r.b < nb && load_a(r.a - 1) == load_b(r.b)) {
    --r.a;  // keep the equal pair together, in the right partition
  } else if (r.b > 0 && r.a < na && load_a(r.a) == load_b(r.b - 1)) {
    --r.b;
  }
  return r;
}

}  // namespace

GpuIntersectResult mergepath_intersect(simt::Device& dev,
                                       const simt::DeviceBuffer<DocId>& a,
                                       std::uint64_t na,
                                       const simt::DeviceBuffer<DocId>& b,
                                       std::uint64_t nb,
                                       const pcie::Link& link,
                                       pcie::TransferLedger& ledger,
                                       MergeTuning tuning) {
  const std::uint32_t span = tuning.items_per_thread * tuning.threads;
  assert(span >= 2);
  // Two staging tiles of span+2 DocIds must fit the 48 KB shared budget.
  assert((span + 2) * 2 * sizeof(DocId) + 4096 <=
         dev.spec().shared_mem_per_block);
  GpuIntersectResult res;
  if (na == 0 || nb == 0) {
    res.result = dev.alloc<DocId>(1);
    ledger.add_alloc(link);
    return res;
  }
  assert(na <= a.size() && nb <= b.size());

  const std::uint64_t total = na + nb;
  const std::uint32_t nblocks =
      static_cast<std::uint32_t>(util::div_ceil(total, span));

  auto aparts = dev.alloc<std::uint64_t>(nblocks + 1);
  auto bparts = dev.alloc<std::uint64_t>(nblocks + 1);
  auto temp = dev.alloc<DocId>(static_cast<std::uint64_t>(nblocks) * span);
  auto block_counts = dev.alloc<std::uint32_t>(nblocks);
  for (int i = 0; i < 4; ++i) ledger.add_alloc(link);

  // --- Launch 1: block-level partition (one thread per cross diagonal). ---
  res.stats = simt::launch(
      dev, {simt::blocks_for(nblocks + 1, 128), 128}, [&](simt::Block& blk) {
        blk.for_each_thread([&](simt::Thread& t) {
          const std::uint32_t i = t.gid();
          if (i > nblocks) return;
          const std::uint64_t diag =
              std::min<std::uint64_t>(static_cast<std::uint64_t>(i) * span,
                                      total);
          const Boundary bd = merge_path_search(
              diag, na, nb, [&](std::uint64_t k) { return t.load(a, k); },
              [&](std::uint64_t k) { return t.load(b, k); }, t);
          t.store(aparts, i, bd.a);
          t.store(bparts, i, bd.b);
        });
      });
  ++res.kernels;

  // --- Launch 2: staged merge-intersect, one block per partition. ---
  // Per-thread match registers, hoisted across blocks (simulator-speed).
  std::vector<std::vector<DocId>> matches(tuning.threads);
  sim::KernelStats merge_stats = simt::launch(
      dev, {nblocks, tuning.threads}, [&](simt::Block& blk) {
        const std::uint32_t bid = blk.block_id();

        // Shared staging (+2 covers the boundary nudges).
        auto sa = blk.shared<DocId>(span + 2);
        auto sb = blk.shared<DocId>(span + 2);
        auto counts = blk.shared<std::uint32_t>(blk.dim());

        std::uint64_t a0 = 0, a1 = 0, b0 = 0, b1 = 0;
        blk.for_each_thread([&](simt::Thread& t) {
          if (t.tid() != 0) return;
          a0 = t.load(aparts, bid);
          a1 = t.load(aparts, bid + 1);
          b0 = t.load(bparts, bid);
          b1 = t.load(bparts, bid + 1);
        });
        const std::uint64_t la = a1 - a0;
        const std::uint64_t lb = b1 - b0;
        assert(la <= span + 2 && lb <= span + 2);

        // Coalesced staging of both segments into shared memory.
        blk.for_each_thread([&](simt::Thread& t) {
          for (std::uint64_t i = t.tid(); i < la; i += blk.dim()) {
            t.sstore(sa, i, t.load(a, a0 + i));
          }
          for (std::uint64_t i = t.tid(); i < lb; i += blk.dim()) {
            t.sstore(sb, i, t.load(b, b0 + i));
          }
        });

        // Thread-level sub-partition + serial intersection in shared memory.
        for (auto& m : matches) m.clear();
        blk.for_each_thread([&](simt::Thread& t) {
          const std::uint64_t lt = la + lb;
          const std::uint64_t d0 =
              std::min<std::uint64_t>(t.tid() * tuning.items_per_thread, lt);
          // The last thread absorbs the remainder: boundary nudges can make
          // la+lb exceed dim*kItemsPerThread by one.
          const std::uint64_t d1 =
              t.tid() + 1 == blk.dim()
                  ? lt
                  : std::min<std::uint64_t>(
                        (t.tid() + 1) * static_cast<std::uint64_t>(
                                            tuning.items_per_thread),
                        lt);
          auto la_at = [&](std::uint64_t k) {
            return t.sload(std::span<const DocId>(sa), k);
          };
          auto lb_at = [&](std::uint64_t k) {
            return t.sload(std::span<const DocId>(sb), k);
          };
          const Boundary s = merge_path_search(d0, la, lb, la_at, lb_at, t);
          const Boundary e = merge_path_search(d1, la, lb, la_at, lb_at, t);
          std::uint64_t i = s.a, j = s.b;
          auto& out = matches[t.tid()];
          while (i < e.a && j < e.b) {
            const DocId va = la_at(i);
            const DocId vb = lb_at(j);
            t.charge(simt::kAluCycle);
            if (va < vb) {
              ++i;
            } else if (vb < va) {
              ++j;
            } else {
              out.push_back(va);
              ++i;
              ++j;
            }
          }
          t.sstore(std::span<std::uint32_t>(counts), t.tid(),
                   static_cast<std::uint32_t>(out.size()));
        });

        const std::uint32_t block_total =
            simt::block_exclusive_scan(blk, counts);

        // Scatter matches to the block's temp segment; store the count.
        blk.for_each_thread([&](simt::Thread& t) {
          const std::uint32_t off =
              t.sload(std::span<const std::uint32_t>(counts), t.tid());
          const auto& out = matches[t.tid()];
          for (std::size_t k = 0; k < out.size(); ++k) {
            t.store(temp,
                    static_cast<std::uint64_t>(bid) * span + off + k,
                    out[k]);
          }
          if (t.tid() == 0) t.store(block_counts, bid, block_total);
        });
      });
  res.stats.merge(merge_stats);
  ++res.kernels;

  // --- Offsets round trip + Launch 3: compaction. ---
  std::vector<std::uint32_t> counts_host(nblocks);
  dev.download(std::span<std::uint32_t>(counts_host), block_counts);
  ledger.add_transfer(link, nblocks * 4, /*h2d=*/false);

  CompactResult c =
      compact_segments(dev, temp, counts_host, span, link, ledger);
  res.stats.merge(c.stats);
  ++res.kernels;
  res.result = std::move(c.data);
  res.count = c.count;
  return res;
}

}  // namespace griffin::gpu
