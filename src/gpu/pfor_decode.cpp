#include "gpu/pfor_decode.h"

#include <cassert>

#include "gpu/decode.h"
#include "simt/collectives.h"

namespace griffin::gpu {

namespace detail {

void pfor_decode_one_block(simt::Block& blk, const DeviceList& list,
                           const BlockDesc& d, std::uint64_t desc_index,
                           simt::DeviceBuffer<DocId>& out,
                           std::uint64_t out_pos) {
  const codec::PForHeader ph = d.hdr.pfor();
  const std::uint32_t n_gaps = d.count > 0 ? d.count - 1u : 0u;

  auto gaps = blk.shared<std::uint32_t>(std::max<std::uint32_t>(n_gaps, 1));

  blk.for_each_thread([&](simt::Thread& t) {
    if (t.tid() == 0) (void)t.load(list.descs, desc_index);
  });

  // Parallel part: unpack the b-bit slots.
  blk.for_each_thread([&](simt::Thread& t) {
    if (t.tid() >= n_gaps) return;
    const auto slot = static_cast<std::uint32_t>(load_bits(
        t, list.blob,
        d.bit_offset + static_cast<std::uint64_t>(t.tid()) * ph.b, ph.b));
    t.sstore(std::span<std::uint32_t>(gaps), t.tid(), slot);
  });

  // Serial part: lane 0 walks the exception chain alone — every other
  // lane of the warp idles (pure divergence), and each exception value
  // is an isolated, uncoalesced global read. This is the data
  // dependence that sinks PForDelta on the GPU.
  if (ph.n_exceptions > 0) {
    const std::uint64_t exc_start = util::round_up(
        d.bit_offset + static_cast<std::uint64_t>(n_gaps) * ph.b, 32);
    blk.for_each_thread([&](simt::Thread& t) {
      if (t.tid() != 0) return;
      std::uint32_t pos = ph.first_exception;
      for (std::uint32_t k = 0; k < ph.n_exceptions; ++k) {
        const std::uint32_t dist =
            t.sload(std::span<const std::uint32_t>(gaps), pos);
        const auto value = static_cast<std::uint32_t>(
            load_bits(t, list.blob, exc_start + 32ull * k, 32));
        t.sstore(std::span<std::uint32_t>(gaps), pos, value);
        t.charge(2 * simt::kAluCycle);
        pos += dist;
      }
    });
  }

  // d-gaps -> docIDs needs a prefix sum (gap_i stores docid delta - 1).
  if (n_gaps > 0) {
    simt::block_inclusive_scan(blk, gaps.subspan(0, n_gaps));
  }
  blk.for_each_thread([&](simt::Thread& t) {
    if (t.tid() >= d.count) return;
    DocId v = d.first;
    if (t.tid() > 0) {
      v += t.sload(std::span<const std::uint32_t>(gaps), t.tid() - 1) +
           t.tid();
    }
    t.store(out, out_pos + t.tid(), v);
  });
}

}  // namespace detail

sim::KernelStats pfor_decode_range(simt::Device& dev, const DeviceList& list,
                                   std::size_t lo, std::size_t hi,
                                   simt::DeviceBuffer<DocId>& out,
                                   std::uint64_t out_base) {
  assert(list.scheme == codec::Scheme::kPForDelta);
  assert(lo < hi && hi <= list.num_blocks());
  const std::uint64_t first_off = list.host_descs[lo].out_offset;

  return simt::launch(
      dev, {static_cast<std::uint32_t>(hi - lo), list.block_size},
      [&](simt::Block& blk) {
        const std::size_t pb = lo + blk.block_id();
        const BlockDesc& d = list.host_descs[pb];
        detail::pfor_decode_one_block(blk, list, d, pb, out,
                                      out_base + d.out_offset - first_off);
      });
}

}  // namespace griffin::gpu
