#include "gpu/sort.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "simt/collectives.h"
#include "simt/kernel.h"

namespace griffin::gpu {

std::uint32_t float_to_key(float f) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
  // Flip so that the unsigned order of keys equals the numeric order of
  // floats (negative floats reverse, positives get the sign bit set).
  return (bits & 0x80000000u) ? ~bits : bits | 0x80000000u;
}

float key_to_float(std::uint32_t k) {
  const std::uint32_t bits = (k & 0x80000000u) ? k & 0x7FFFFFFFu : ~k;
  return std::bit_cast<float>(bits);
}

namespace {

constexpr std::uint32_t kThreads = 256;
constexpr std::uint32_t kBuckets = 256;

/// One histogram pass: count digit occurrences of keys matching
/// (key >> prefix_shift) == prefix (prefix_shift == 32 means "all").
sim::KernelStats histogram_pass(simt::Device& dev,
                                const simt::DeviceBuffer<DevScored>& items,
                                std::uint64_t n, int digit_shift,
                                std::uint32_t prefix, int prefix_shift,
                                simt::DeviceBuffer<std::uint32_t>& hist) {
  const std::uint32_t grid =
      std::min<std::uint32_t>(simt::blocks_for(n, kThreads), 64);
  const std::uint64_t stride = static_cast<std::uint64_t>(grid) * kThreads;
  return simt::launch(dev, {grid, kThreads}, [&](simt::Block& blk) {
    blk.for_each_thread([&](simt::Thread& t) {
      for (std::uint64_t i = t.gid(); i < n; i += stride) {
        const DevScored v = t.load(items, i);
        t.charge(2 * simt::kAluCycle);
        if (prefix_shift < 32 &&
            (v.key >> prefix_shift) != prefix) {
          continue;
        }
        const std::uint32_t digit = (v.key >> digit_shift) & 0xFFu;
        t.atomic_add(hist, digit, 1u);
      }
    });
  });
}

}  // namespace

SelectResult radix_sort_topk(simt::Device& dev,
                             simt::DeviceBuffer<DevScored>& items,
                             std::uint64_t n, std::uint32_t k,
                             const pcie::Link& link,
                             pcie::TransferLedger& ledger) {
  SelectResult res;
  if (n == 0) return res;

  auto temp = dev.alloc<DevScored>(n);
  auto hist = dev.alloc<std::uint32_t>(kBuckets);
  auto offsets = dev.alloc<std::uint32_t>(kBuckets);
  for (int i = 0; i < 3; ++i) ledger.add_alloc(link);

  const std::vector<std::uint32_t> zeros(kBuckets, 0);
  simt::DeviceBuffer<DevScored>* src = &items;
  simt::DeviceBuffer<DevScored>* dst = &temp;

  for (int pass = 0; pass < 4; ++pass) {
    const int shift = 8 * pass;
    dev.upload(hist, std::span<const std::uint32_t>(zeros));
    ledger.add_transfer(link, kBuckets * 4, true);

    res.stats.merge(histogram_pass(dev, *src, n, shift, 0, 32, hist));
    ++res.kernels;

    // Small round trip: exclusive scan of the 256 bucket counts.
    std::vector<std::uint32_t> h(kBuckets);
    dev.download(std::span<std::uint32_t>(h), hist);
    ledger.add_transfer(link, kBuckets * 4, false);
    std::uint32_t acc = 0;
    for (auto& c : h) {
      const std::uint32_t v = c;
      c = acc;
      acc += v;
    }
    dev.upload(offsets, std::span<const std::uint32_t>(h));
    ledger.add_transfer(link, kBuckets * 4, true);

    // Scatter. Stability note: the simulator executes lanes and blocks in
    // index order, so the atomic ticket order equals element order and each
    // pass is stable — cost-wise this matches the per-block-rank scatter of
    // real GPU radix sorts (same loads, same uncoalesced stores, same
    // atomic traffic).
    sim::KernelStats scatter = simt::launch(
        dev, {simt::blocks_for(n, kThreads), kThreads},
        [&](simt::Block& blk) {
          blk.for_each_thread([&](simt::Thread& t) {
            if (t.gid() >= n) return;
            const DevScored v = t.load(*src, t.gid());
            const std::uint32_t digit = (v.key >> shift) & 0xFFu;
            const std::uint32_t pos = t.atomic_add(offsets, digit, 1u);
            t.store(*dst, pos, v);
            t.charge(simt::kAluCycle);
          });
        });
    res.stats.merge(scatter);
    ++res.kernels;
    std::swap(src, dst);
  }

  // After 4 passes `src` is ascending by key; take the top k from the end.
  const std::uint32_t kk = static_cast<std::uint32_t>(std::min<std::uint64_t>(k, n));
  std::vector<DevScored> tail(kk);
  dev.download(std::span<DevScored>(tail), *src, n - kk);
  ledger.add_transfer(link, kk * sizeof(DevScored), false);
  res.topk.assign(tail.rbegin(), tail.rend());
  return res;
}

SelectResult bucket_select_topk(simt::Device& dev,
                                simt::DeviceBuffer<DevScored>& items,
                                std::uint64_t n, std::uint32_t k,
                                const pcie::Link& link,
                                pcie::TransferLedger& ledger) {
  SelectResult res;
  if (n == 0) return res;
  const std::uint32_t kk = static_cast<std::uint32_t>(std::min<std::uint64_t>(k, n));

  auto hist = dev.alloc<std::uint32_t>(kBuckets);
  ledger.add_alloc(link);
  const std::vector<std::uint32_t> zeros(kBuckets, 0);

  // Locate the K-th max key by refining one byte per pass: after pass p the
  // top (32 - 8(p+1)) bits of the K-th key are known.
  std::uint32_t prefix = 0;
  std::uint64_t need = kk;  // elements still needed within the prefix bucket
  for (int pass = 0; pass < 4; ++pass) {
    const int shift = 24 - 8 * pass;
    dev.upload(hist, std::span<const std::uint32_t>(zeros));
    ledger.add_transfer(link, kBuckets * 4, true);
    res.stats.merge(histogram_pass(dev, items, n, shift, prefix,
                                   pass == 0 ? 32 : shift + 8, hist));
    ++res.kernels;

    std::vector<std::uint32_t> h(kBuckets);
    dev.download(std::span<std::uint32_t>(h), hist);
    ledger.add_transfer(link, kBuckets * 4, false);

    // Walk buckets from the top until `need` elements are covered.
    std::uint32_t b = kBuckets - 1;
    for (;; --b) {
      if (h[b] >= need) break;
      need -= h[b];
      if (b == 0) break;
    }
    prefix = (prefix << 8) | b;
  }
  const std::uint32_t kth_key = prefix;

  // Compact everything >= kth_key (>= kk elements; == kk unless keys tie).
  const std::uint32_t pblocks = simt::blocks_for(n, kThreads);
  auto temp = dev.alloc<DevScored>(static_cast<std::uint64_t>(pblocks) * kThreads);
  auto block_counts = dev.alloc<std::uint32_t>(pblocks);
  ledger.add_alloc(link);
  ledger.add_alloc(link);

  sim::KernelStats sel = simt::launch(
      dev, {pblocks, kThreads}, [&](simt::Block& blk) {
        auto counts = blk.shared<std::uint32_t>(blk.dim());
        std::vector<DevScored> keep(blk.dim());
        std::vector<bool> has(blk.dim(), false);
        blk.for_each_thread([&](simt::Thread& t) {
          std::uint32_t c = 0;
          if (t.gid() < n) {
            const DevScored v = t.load(items, t.gid());
            t.charge(simt::kAluCycle);
            if (v.key >= kth_key) {
              keep[t.tid()] = v;
              has[t.tid()] = true;
              c = 1;
            }
          }
          t.sstore(std::span<std::uint32_t>(counts), t.tid(), c);
        });
        const std::uint32_t total = simt::block_exclusive_scan(blk, counts);
        blk.for_each_thread([&](simt::Thread& t) {
          if (has[t.tid()]) {
            const std::uint32_t off =
                t.sload(std::span<const std::uint32_t>(counts), t.tid());
            const std::uint64_t base =
                static_cast<std::uint64_t>(blk.block_id()) * kThreads;
            // Store key and doc as one 8-byte element.
            t.store(temp, base + off, keep[t.tid()]);
          }
          if (t.tid() == 0) t.store(block_counts, blk.block_id(), total);
        });
      });
  res.stats.merge(sel);
  ++res.kernels;

  std::vector<std::uint32_t> counts_host(pblocks);
  dev.download(std::span<std::uint32_t>(counts_host), block_counts);
  ledger.add_transfer(link, pblocks * 4, false);
  std::uint64_t total = 0;
  for (auto c : counts_host) total += c;

  // Download the candidates (a hair above k when keys tie) and finish with
  // a tiny host-side ordering — the same tail step real bucketSelect
  // deployments use once the candidate set fits in a cache line or two.
  std::vector<DevScored> cand;
  cand.reserve(total);
  std::vector<DevScored> seg(kThreads);
  for (std::uint32_t bidx = 0; bidx < pblocks; ++bidx) {
    const std::uint32_t c = counts_host[bidx];
    if (c == 0) continue;
    dev.download(std::span<DevScored>(seg.data(), c), temp,
                 static_cast<std::uint64_t>(bidx) * kThreads);
    cand.insert(cand.end(), seg.begin(), seg.begin() + c);
  }
  ledger.add_transfer(link, total * sizeof(DevScored), false);

  std::partial_sort(cand.begin(), cand.begin() + kk, cand.end(),
                    [](const DevScored& a, const DevScored& b) {
                      return a.key > b.key;
                    });
  cand.resize(kk);
  res.topk = std::move(cand);
  return res;
}

}  // namespace griffin::gpu
