// Load-balanced merge-based list intersection on the virtual GPU — the
// second key Griffin-GPU algorithm, built on GPU MergePath (Green, McColl &
// Bader [15]; Odeh et al. [24]) as described in the paper's §3.1.2 and
// Figures 5-6.
//
// Merging two sorted lists A and B is a monotone path through the |A|x|B|
// grid; cutting the path with evenly spaced cross diagonals yields perfectly
// balanced partitions that threads can intersect independently, with no
// synchronization during the merge. Three launches:
//   1. partition: one thread per block-level diagonal binary-searches the
//      path crossing (global loads, but only O(p log n) of them);
//   2. merge: each block stages its A/B segments into shared memory
//      (coalesced), threads sub-partition in shared and serially intersect
//      ~kItemsPerThread elements each, then a block scan compacts matches;
//   3. compact: gather per-block match segments into one contiguous array.
#pragma once

#include "gpu/compact.h"
#include "gpu/device_list.h"

namespace griffin::gpu {

/// Elements of A+B each thread intersects serially in the merge stage.
inline constexpr std::uint32_t kItemsPerThread = 8;
/// Threads per merge block (so one block covers 1024 items and its staging
/// fits comfortably in the 48 KB shared budget).
inline constexpr std::uint32_t kMergeBlockThreads = 128;

/// Partitioning knobs, exposed for the partition-size ablation
/// (bench/ablation_partition): one block covers items_per_thread * threads
/// elements of A+B, which bounds the shared-memory staging tiles.
struct MergeTuning {
  std::uint32_t items_per_thread = kItemsPerThread;
  std::uint32_t threads = kMergeBlockThreads;
};

struct GpuIntersectResult {
  simt::DeviceBuffer<DocId> result;
  std::uint64_t count = 0;
  sim::KernelStats stats;  ///< merged across all launches
  std::uint32_t kernels = 0;
};

/// Intersects two decoded, ascending device arrays (first `na` elements of
/// a, `nb` of b). Transfers for the tiny offset round trip are charged to
/// `ledger`; kernel work is returned in the result.
GpuIntersectResult mergepath_intersect(simt::Device& dev,
                                       const simt::DeviceBuffer<DocId>& a,
                                       std::uint64_t na,
                                       const simt::DeviceBuffer<DocId>& b,
                                       std::uint64_t nb,
                                       const pcie::Link& link,
                                       pcie::TransferLedger& ledger,
                                       MergeTuning tuning = {});

}  // namespace griffin::gpu
