// Codec-generic device decode: dispatches a device list's blocks to the
// kernel its scheme wants. Para-EF (gpu/ef_decode.h) and the PForDelta
// kernel (gpu/pfor_decode.h) keep their dedicated entry points for the
// ablations; this layer adds a BP128 kernel (slot unpack + block scan, no
// exception walk — the codec built for warps), a Re-Pair kernel (per-symbol
// grammar expansion with honest divergence charges), and a serial lane-0
// fallback for the byte/selector codecs (VByte, Simple16) that have no
// lane-parallel structure — decoding those on the device is priced, not
// hidden, which is exactly what the scheduler's per-codec penalty models.
#pragma once

#include "gpu/device_list.h"

namespace griffin::gpu {

/// True when the scheme has a lane-parallel device kernel; false for the
/// serial-fallback codecs (the scheduler charges those a per-posting
/// penalty, and the adaptive selector's tie-break prefers parallel ones).
bool gpu_parallel_decode(codec::Scheme s);

/// Decodes posting blocks [lo, hi) of any device list into out, at
/// positions out_base + (desc.out_offset - descs[lo].out_offset) onward.
sim::KernelStats decode_range(simt::Device& dev, const DeviceList& list,
                              std::size_t lo, std::size_t hi,
                              simt::DeviceBuffer<DocId>& out,
                              std::uint64_t out_base = 0);

/// Decodes an arbitrary subset of posting blocks (ids ascending, device copy
/// in `ids_dev`, host copy in `ids`). Block ids[i] lands at out slot
/// i * list.block_size, like ef_decode_selected.
sim::KernelStats decode_selected(
    simt::Device& dev, const DeviceList& list,
    const simt::DeviceBuffer<std::uint32_t>& ids_dev,
                                 std::span<const std::uint32_t> ids,
                                 simt::DeviceBuffer<DocId>& out);

namespace detail {
// One-posting-block decode bodies, one SIMT block each. Shared between the
// dedicated range kernels and the generic dispatch above.
void ef_decode_one_block(simt::Block& blk, const DeviceList& list,
                         const BlockDesc& d, std::uint64_t desc_index,
                         simt::DeviceBuffer<DocId>& out, std::uint64_t out_pos);
void pfor_decode_one_block(simt::Block& blk, const DeviceList& list,
                           const BlockDesc& d, std::uint64_t desc_index,
                           simt::DeviceBuffer<DocId>& out,
                           std::uint64_t out_pos);
void bp128_decode_one_block(simt::Block& blk, const DeviceList& list,
                            const BlockDesc& d, std::uint64_t desc_index,
                            simt::DeviceBuffer<DocId>& out,
                            std::uint64_t out_pos);
void repair_decode_one_block(simt::Block& blk, const DeviceList& list,
                             const BlockDesc& d, std::uint64_t desc_index,
                             simt::DeviceBuffer<DocId>& out,
                             std::uint64_t out_pos);
void serial_decode_one_block(simt::Block& blk, const DeviceList& list,
                             const BlockDesc& d, std::uint64_t desc_index,
                             simt::DeviceBuffer<DocId>& out,
                             std::uint64_t out_pos);
}  // namespace detail

}  // namespace griffin::gpu
