// Device-resident posting-list cache: an LRU of uploaded DeviceLists keyed
// by TermId, bounded by a byte budget carved out of the modeled device
// memory (PcieSpec::device_mem_bytes minus a working-set headroom). The
// paper identifies the PCIe transfer as the overhead the scheduler must
// amortize (§2.3); GPU-resident inverted indexes are how follow-up systems
// (GENIE, GPUSparse) remove it for hot terms — a term whose compressed list
// is already on the device skips the payload transfer and allocation
// charges entirely on later queries.
//
// Entries hold the *compressed* list (payload blob + skip table), exactly
// what upload_list places on the device: decoded outputs stay per-query
// scratch, so the cache stores each posting once at its compressed size.
// Eviction destroys the DeviceBuffers, which un-reserves the device memory.
#pragma once

#include <cstdint>

#include "codec/block_codec.h"
#include "gpu/device_list.h"
#include "index/inverted_index.h"
#include "util/lru_cache.h"

namespace griffin::gpu {

class DeviceListCache {
 public:
  /// byte_budget = 0 disables the cache.
  explicit DeviceListCache(std::uint64_t byte_budget)
      : cache_(0, byte_budget) {}

  /// Device-memory footprint of a list once uploaded: payload blob words
  /// plus the packed per-block descriptors.
  static std::uint64_t entry_bytes(const DeviceList& l) {
    return l.blob.size() * sizeof(std::uint64_t) +
           l.descs.size() * sizeof(BlockDesc);
  }

  bool enabled() const { return cache_.enabled(); }
  bool fits(std::uint64_t bytes) const { return cache_.fits(bytes); }

  /// Counts a hit/miss and refreshes recency.
  const DeviceList* lookup(index::TermId t) { return cache_.lookup(t); }

  /// Stat-free residency probe for the scheduler (core::StepShape).
  bool resident(index::TermId t) const { return cache_.peek(t) != nullptr; }

  /// Takes ownership of a fully uploaded list. Returns the resident entry
  /// (or nullptr when it cannot fit); `evicted` receives the eviction count.
  const DeviceList* insert(index::TermId t, DeviceList list,
                           std::uint64_t* evicted = nullptr) {
    const std::uint64_t bytes = entry_bytes(list);
    return cache_.insert(t, std::move(list), bytes, evicted);
  }

  /// Invalidates one term's entry (an injected device fault may have
  /// corrupted it; DESIGN.md §11). Returns true when it was resident.
  bool erase(index::TermId t) { return cache_.erase(t); }

  /// Frees at least `min_bytes` of device memory from the LRU tail (or
  /// everything, if the cache is smaller) — rung 1 of the OOM degradation
  /// ladder (DESIGN.md §16). Destroying the entries un-reserves the device
  /// memory immediately. Returns bytes freed; `entries` gets the count.
  std::uint64_t evict_bytes(std::uint64_t min_bytes,
                            std::uint64_t* entries = nullptr) {
    return cache_.evict_bytes(min_bytes, entries);
  }

  std::uint64_t bytes() const { return cache_.bytes(); }
  std::uint64_t byte_budget() const { return cache_.byte_budget(); }
  std::size_t size() const { return cache_.size(); }
  const util::LruStats& stats() const { return cache_.stats(); }
  void clear() { cache_.clear(); }

 private:
  util::ByteLruCache<index::TermId, DeviceList> cache_;
};

}  // namespace griffin::gpu
