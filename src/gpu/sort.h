// GPU ranking-selection candidates the paper evaluates in §3.1.3 / Figure 7:
// a brute-force radix sort (sort everything, take the first K) and
// bucketSelect (Alabi et al. [7]: histogram refinement to locate the K-th
// value, then select everything above it). The paper measures both losing to
// CPU std::partial_sort at realistic result-set sizes — queries rarely match
// more than a few thousand documents, too little work to amortize launch,
// allocation and transfer overheads. These implementations exist to
// regenerate that comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "gpu/device_list.h"

namespace griffin::gpu {

/// A scored candidate as laid out on the device (plain pair of words).
struct DevScored {
  std::uint32_t key = 0;  ///< order-preserving transform of the float score
  std::uint32_t doc = 0;
};

/// Order-preserving float->u32 key (descending score == descending key).
std::uint32_t float_to_key(float f);
float key_to_float(std::uint32_t k);

struct SelectResult {
  std::vector<DevScored> topk;  ///< k best (key descending)
  sim::KernelStats stats;
  std::uint32_t kernels = 0;
};

/// Full LSD radix sort (4 x 8-bit passes) of the device array, then take the
/// top k. Host round trips for the 256-bucket offsets are charged to ledger.
SelectResult radix_sort_topk(simt::Device& dev,
                             simt::DeviceBuffer<DevScored>& items,
                             std::uint64_t n, std::uint32_t k,
                             const pcie::Link& link,
                             pcie::TransferLedger& ledger);

/// bucketSelect: iterative 256-bucket histogram refinement to bracket the
/// K-th max key, then compaction of every element above the threshold and a
/// final small sort.
SelectResult bucket_select_topk(simt::Device& dev,
                                simt::DeviceBuffer<DevScored>& items,
                                std::uint64_t n, std::uint32_t k,
                                const pcie::Link& link,
                                pcie::TransferLedger& ledger);

}  // namespace griffin::gpu
