// Parallel binary-search intersection over skip pointers (paper §3.1.2,
// first class): when the longer list is >~128x the shorter one, searching
// beats merging because most blocks of the long list need not even be
// decompressed. One thread per probe element binary-searches the skip table,
// only the marked candidate blocks are decoded (Para-EF), then each probe
// binary-searches inside its decoded block.
//
// This is also the kernel whose scattered loads and data-dependent branches
// exhibit the divergence/coalescing penalties of §2.3 — visible directly in
// its KernelStats.
#pragma once

#include "gpu/compact.h"
#include "gpu/device_list.h"
#include "gpu/mergepath.h"

namespace griffin::gpu {

/// Intersects decoded ascending probes (`np` elements of `probes` starting
/// at `probe_offset`) with a compressed EF device list. Returns matches on
/// device. If the list was uploaded with defer_payload, pass
/// deferred_payload=true and only the candidate blocks' payload transfer is
/// charged (paper §3.1.2). A nonzero probe_offset runs the kernel over a
/// suffix of a device-resident probe buffer — the GPU leg of a split
/// intersect (DESIGN.md §15) — without slicing or re-uploading it.
GpuIntersectResult binary_search_intersect(simt::Device& dev,
                                           const simt::DeviceBuffer<DocId>& probes,
                                           std::uint64_t np,
                                           const DeviceList& target,
                                           const pcie::Link& link,
                                           pcie::TransferLedger& ledger,
                                           bool deferred_payload = false,
                                           std::uint64_t probe_offset = 0);

}  // namespace griffin::gpu
