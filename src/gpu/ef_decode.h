// Para-EF: parallel Elias-Fano decompression on the virtual GPU — the
// paper's Algorithm 1 and first key contribution of Griffin-GPU. One SIMT
// block decodes one 128-posting block:
//   1. each thread popcounts one 32-bit word of the high-bits vector;
//   2. a block-wide prefix sum turns the popcounts into element offsets
//      (the "scheduling" phase — it assigns each output element to the word
//      that encodes it);
//   3. each thread recovers its element: select its set bit inside the
//      word, rebuild the high part, fetch the low bits, concatenate.
// The popcount/prefix-sum/scatter structure removes the serial dependence
// that makes CPU-style EF scanning sequential.
#pragma once

#include "gpu/device_list.h"

namespace griffin::gpu {

/// Decodes posting blocks [lo, hi) of an EF-coded device list into out, at
/// positions out_base + (desc.out_offset - descs[lo].out_offset) onward.
/// Returns the counted kernel work.
sim::KernelStats ef_decode_range(simt::Device& dev, const DeviceList& list,
                                 std::size_t lo, std::size_t hi,
                                 simt::DeviceBuffer<DocId>& out,
                                 std::uint64_t out_base = 0);

/// Decodes an arbitrary subset of posting blocks (ids ascending, device copy
/// in `ids_dev`, host copy in `ids`). Block ids[i] lands at out slot
/// i * list.block_size (slots are fixed-stride so callers can index them).
sim::KernelStats ef_decode_selected(simt::Device& dev, const DeviceList& list,
                                    const simt::DeviceBuffer<std::uint32_t>& ids_dev,
                                    std::span<const std::uint32_t> ids,
                                    simt::DeviceBuffer<DocId>& out);

}  // namespace griffin::gpu
