// Device-resident compressed posting lists and the bit-stream access helper
// kernels use. Uploading a list moves its payload blob and a packed copy of
// its skip table across the modeled PCIe link; the host keeps the skip table
// too because the scheduler (and block-selection logic) reads it for free,
// exactly as a real host-side driver would.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/block_codec.h"
#include "pcie/link.h"
#include "simt/device.h"
#include "simt/kernel.h"

namespace griffin::gpu {

using codec::DocId;

/// POD per-block descriptor as laid out in device memory: the skip entry
/// plus the tagged per-scheme header, so any codec's kernel decodes a block
/// from (desc, blob) alone.
struct BlockDesc {
  std::uint32_t first = 0;
  std::uint32_t last = 0;
  std::uint64_t bit_offset = 0;
  std::uint16_t count = 0;
  codec::BlockHeader hdr;
  /// Exclusive prefix of counts: position of the block's first posting.
  std::uint64_t out_offset = 0;
};

/// A compressed list resident in device memory.
struct DeviceList {
  codec::Scheme scheme = codec::Scheme::kEliasFano;
  std::uint32_t block_size = codec::kDefaultBlockSize;
  std::uint64_t size = 0;
  simt::DeviceBuffer<std::uint64_t> blob;
  simt::DeviceBuffer<BlockDesc> descs;
  std::vector<BlockDesc> host_descs;  ///< host mirror (skip table)

  std::size_t num_blocks() const { return host_descs.size(); }
  std::uint64_t payload_bytes() const { return blob.size() * 8; }

  /// Compressed payload bytes of one block.
  std::uint64_t block_payload_bytes(std::size_t b) const {
    const std::uint64_t begin = host_descs[b].bit_offset;
    const std::uint64_t end = b + 1 < host_descs.size()
                                  ? host_descs[b + 1].bit_offset
                                  : blob.size() * 64;
    return (end - begin + 7) / 8;
  }
};

/// Uploads `list` to the device, charging allocations and transfers. With
/// defer_payload, only the skip table's transfer is charged up front — the
/// paper's high-ratio path binary-searches the skip pointers first and
/// "only transfers, decompresses, and processes those blocks" (§3.1.2); pay
/// for the selected blocks later via charge_block_payload_upload.
DeviceList upload_list(simt::Device& dev, const codec::BlockCompressedList& list,
                       const pcie::Link& link, pcie::TransferLedger& ledger,
                       bool defer_payload = false);

/// Charges the transfer of the selected blocks' payloads (deferred upload).
void charge_block_payload_upload(const DeviceList& list,
                                 std::span<const std::uint32_t> ids,
                                 const pcie::Link& link,
                                 pcie::TransferLedger& ledger);

/// In-kernel bit-stream read: `len` bits at absolute bit offset `pos` from a
/// device u64 blob. Issues one or two coalescible global loads.
std::uint64_t load_bits(simt::Thread& t,
                        const simt::DeviceBuffer<std::uint64_t>& blob,
                        std::uint64_t pos, std::uint32_t len);

}  // namespace griffin::gpu
