// PForDelta decompression ported to the GPU — deliberately included as the
// *negative* result the paper describes (§2.3, §3.1.1): unpacking the b-bit
// slots parallelizes fine, but the exception patch chain is a linked list
// that one lane must walk serially while the rest of the warp idles, and the
// d-gap -> docID conversion needs an extra block scan. The ablation bench
// (bench/ablation_pfor_gpu) contrasts this kernel with Para-EF.
#pragma once

#include "gpu/device_list.h"

namespace griffin::gpu {

/// Decodes posting blocks [lo, hi) of a PForDelta device list into out at
/// out_base onward (contiguous, like ef_decode_range).
sim::KernelStats pfor_decode_range(simt::Device& dev, const DeviceList& list,
                                   std::size_t lo, std::size_t hi,
                                   simt::DeviceBuffer<DocId>& out,
                                   std::uint64_t out_base = 0);

}  // namespace griffin::gpu
