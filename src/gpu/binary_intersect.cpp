#include "gpu/binary_intersect.h"

#include <cassert>

#include "gpu/decode.h"
#include "simt/collectives.h"
#include "util/bits.h"

namespace griffin::gpu {

namespace {
constexpr std::uint32_t kNoBlock = 0xFFFFFFFFu;
constexpr std::uint32_t kThreads = 128;
}  // namespace

GpuIntersectResult binary_search_intersect(simt::Device& dev,
                                           const simt::DeviceBuffer<DocId>& probes,
                                           std::uint64_t np,
                                           const DeviceList& target,
                                           const pcie::Link& link,
                                           pcie::TransferLedger& ledger,
                                           bool deferred_payload,
                                           std::uint64_t probe_offset) {
  GpuIntersectResult res;
  if (np == 0 || target.size == 0) {
    res.result = dev.alloc<DocId>(1);
    ledger.add_alloc(link);
    return res;
  }
  const std::uint32_t nb = static_cast<std::uint32_t>(target.num_blocks());

  auto probe_block = dev.alloc<std::uint32_t>(np);
  auto block_needed = dev.alloc<std::uint32_t>(nb);
  ledger.add_alloc(link);
  ledger.add_alloc(link);
  std::vector<std::uint32_t> zeros(nb, 0);
  dev.upload(block_needed, std::span<const std::uint32_t>(zeros));
  ledger.add_transfer(link, nb * 4, /*h2d=*/true);

  // --- Launch 1: per-probe binary search over the skip table. Each lane
  // probes a different region of the descriptor array: poor coalescing and
  // heavy divergence, by construction. ---
  res.stats = simt::launch(
      dev, {simt::blocks_for(np, kThreads), kThreads}, [&](simt::Block& blk) {
        blk.for_each_thread([&](simt::Thread& t) {
          if (t.gid() >= np) return;
          const DocId p = t.load(probes, probe_offset + t.gid());
          std::uint32_t lo = 0, hi = nb;
          while (lo < hi) {
            const std::uint32_t mid = (lo + hi) / 2;
            const BlockDesc d = t.load(target.descs, mid);
            t.charge(3 * simt::kAluCycle);
            if (d.last < p) {
              lo = mid + 1;
            } else {
              hi = mid;
            }
          }
          std::uint32_t found = kNoBlock;
          if (lo < nb) {
            const BlockDesc d = t.load(target.descs, lo);
            if (d.first <= p) {
              found = lo;
              t.store(block_needed, lo, 1u);
            }
          }
          t.store(probe_block, t.gid(), found);
        });
      });
  ++res.kernels;

  // --- Host: gather the candidate block ids (small flag download), then
  // decode only those blocks with Para-EF. ---
  std::vector<std::uint32_t> needed(nb);
  dev.download(std::span<std::uint32_t>(needed), block_needed);
  ledger.add_transfer(link, nb * 4, /*h2d=*/false);

  std::vector<std::uint32_t> ids;
  std::vector<std::uint32_t> slot_of_block(nb, kNoBlock);
  for (std::uint32_t i = 0; i < nb; ++i) {
    if (needed[i] != 0) {
      slot_of_block[i] = static_cast<std::uint32_t>(ids.size());
      ids.push_back(i);
    }
  }
  if (ids.empty()) {
    res.result = dev.alloc<DocId>(1);
    ledger.add_alloc(link);
    return res;
  }

  if (deferred_payload) {
    charge_block_payload_upload(target, ids, link, ledger);
  }

  auto ids_dev = dev.alloc<std::uint32_t>(ids.size());
  auto slots_dev = dev.alloc<std::uint32_t>(nb);
  auto decoded = dev.alloc<DocId>(static_cast<std::uint64_t>(ids.size()) *
                                  target.block_size);
  for (int i = 0; i < 3; ++i) ledger.add_alloc(link);
  dev.upload(ids_dev, std::span<const std::uint32_t>(ids));
  ledger.add_transfer(link, ids.size() * 4, true);
  dev.upload(slots_dev, std::span<const std::uint32_t>(slot_of_block));
  ledger.add_transfer(link, nb * 4, true);

  sim::KernelStats dec = decode_selected(dev, target, ids_dev, ids, decoded);
  res.stats.merge(dec);
  ++res.kernels;

  // --- Launch 3: per-probe binary search inside its decoded block, with
  // block-level compaction of the matches. ---
  const std::uint32_t pblocks = simt::blocks_for(np, kThreads);
  auto temp = dev.alloc<DocId>(static_cast<std::uint64_t>(pblocks) * kThreads);
  auto block_counts = dev.alloc<std::uint32_t>(pblocks);
  ledger.add_alloc(link);
  ledger.add_alloc(link);

  sim::KernelStats search = simt::launch(
      dev, {pblocks, kThreads}, [&](simt::Block& blk) {
        auto counts = blk.shared<std::uint32_t>(blk.dim());
        std::vector<DocId> match(blk.dim(), 0);
        std::vector<bool> has(blk.dim(), false);

        blk.for_each_thread([&](simt::Thread& t) {
          std::uint32_t found = 0;
          if (t.gid() < np) {
            const DocId p = t.load(probes, probe_offset + t.gid());
            const std::uint32_t bidx = t.load(probe_block, t.gid());
            if (bidx != kNoBlock) {
              const std::uint32_t slot = t.load(slots_dev, bidx);
              const std::uint32_t n = target.host_descs[bidx].count;
              const std::uint64_t base =
                  static_cast<std::uint64_t>(slot) * target.block_size;
              std::uint32_t lo = 0, hi = n;
              while (lo < hi) {
                const std::uint32_t mid = (lo + hi) / 2;
                t.charge(2 * simt::kAluCycle);
                if (t.load(decoded, base + mid) < p) {
                  lo = mid + 1;
                } else {
                  hi = mid;
                }
              }
              if (lo < n && t.load(decoded, base + lo) == p) {
                match[t.tid()] = p;
                has[t.tid()] = true;
                found = 1;
              }
            }
          }
          t.sstore(std::span<std::uint32_t>(counts), t.tid(), found);
        });

        const std::uint32_t block_total =
            simt::block_exclusive_scan(blk, counts);

        blk.for_each_thread([&](simt::Thread& t) {
          if (has[t.tid()]) {
            const std::uint32_t off =
                t.sload(std::span<const std::uint32_t>(counts), t.tid());
            t.store(temp,
                    static_cast<std::uint64_t>(blk.block_id()) * kThreads + off,
                    match[t.tid()]);
          }
          if (t.tid() == 0) t.store(block_counts, blk.block_id(), block_total);
        });
      });
  res.stats.merge(search);
  ++res.kernels;

  std::vector<std::uint32_t> counts_host(pblocks);
  dev.download(std::span<std::uint32_t>(counts_host), block_counts);
  ledger.add_transfer(link, pblocks * 4, false);

  CompactResult c =
      compact_segments(dev, temp, counts_host, kThreads, link, ledger);
  res.stats.merge(c.stats);
  ++res.kernels;
  res.result = std::move(c.data);
  res.count = c.count;
  return res;
}

}  // namespace griffin::gpu
