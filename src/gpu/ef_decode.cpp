#include "gpu/ef_decode.h"

#include <cassert>

#include "gpu/decode.h"
#include "simt/collectives.h"
#include "util/bits.h"

namespace griffin::gpu {

namespace detail {

/// Decodes one posting block inside one SIMT block (Algorithm 1).
/// `out_pos` is the absolute output position of the block's first element.
void ef_decode_one_block(simt::Block& blk, const DeviceList& list,
                         const BlockDesc& d, std::uint64_t desc_index,
                         simt::DeviceBuffer<DocId>& out,
                         std::uint64_t out_pos) {
  const codec::EFHeader eh = d.hdr.ef();
  const std::uint64_t hb_start = d.bit_offset;
  const std::uint64_t low_start = hb_start + 32ull * eh.hb_words;
  assert(eh.hb_words <= blk.dim());

  auto ps = blk.shared<std::uint32_t>(eh.hb_words);
  auto index_arr = blk.shared<std::uint32_t>(d.count);

  // Lane 0 fetches the block descriptor from global memory (the control
  // values used below mirror it exactly).
  blk.for_each_thread([&](simt::Thread& t) {
    if (t.tid() == 0) (void)t.load(list.descs, desc_index);
  });

  // Phase 1: per-word popcount (Algorithm 1 line 2).
  blk.for_each_thread([&](simt::Thread& t) {
    if (t.tid() >= eh.hb_words) return;
    const auto word = static_cast<std::uint32_t>(
        load_bits(t, list.blob, hb_start + 32ull * t.tid(), 32));
    t.sstore(std::span<std::uint32_t>(ps), t.tid(),
             static_cast<std::uint32_t>(t.popc(word)));
  });

  // Phase 2: prefix sum (line 3) — the synchronization point.
  simt::block_inclusive_scan(blk, ps);

  // Phase 3: scheduling — each word's thread scatters its element slots
  // (lines 4-8).
  blk.for_each_thread([&](simt::Thread& t) {
    if (t.tid() >= eh.hb_words) return;
    const std::uint32_t begin =
        t.tid() == 0
            ? 0
            : t.sload(std::span<const std::uint32_t>(ps), t.tid() - 1);
    const std::uint32_t end =
        t.sload(std::span<const std::uint32_t>(ps), t.tid());
    for (std::uint32_t o = begin; o < end; ++o) {
      t.sstore(std::span<std::uint32_t>(index_arr), o,
               static_cast<std::uint32_t>(t.tid()));
      t.charge(simt::kAluCycle);
    }
  });

  // Phase 4: per-element recovery (lines 9-10).
  blk.for_each_thread([&](simt::Thread& t) {
    if (t.tid() >= d.count) return;
    const std::uint32_t w =
        t.sload(std::span<const std::uint32_t>(index_arr), t.tid());
    const std::uint32_t base =
        w == 0 ? 0 : t.sload(std::span<const std::uint32_t>(ps), w - 1);
    const std::uint32_t rank = t.tid() - base;
    const auto word = static_cast<std::uint32_t>(
        load_bits(t, list.blob, hb_start + 32ull * w, 32));
    const int bit = util::select_in_word(word, static_cast<int>(rank));
    t.charge(4 * simt::kAluCycle);  // select + index arithmetic
    const std::uint64_t pos = 32ull * w + static_cast<std::uint32_t>(bit);
    const std::uint64_t high = pos - t.tid();
    std::uint64_t low = 0;
    if (eh.b > 0) {
      low = load_bits(t, list.blob,
                      low_start + static_cast<std::uint64_t>(t.tid()) * eh.b,
                      eh.b);
    }
    const DocId v = static_cast<DocId>(((high << eh.b) | low) + d.first);
    t.store(out, out_pos + t.tid(), v);
  });
}

}  // namespace detail

sim::KernelStats ef_decode_range(simt::Device& dev, const DeviceList& list,
                                 std::size_t lo, std::size_t hi,
                                 simt::DeviceBuffer<DocId>& out,
                                 std::uint64_t out_base) {
  assert(list.scheme == codec::Scheme::kEliasFano);
  assert(lo < hi && hi <= list.num_blocks());
  const std::uint64_t first_off = list.host_descs[lo].out_offset;
  return simt::launch(
      dev, {static_cast<std::uint32_t>(hi - lo), list.block_size},
      [&](simt::Block& blk) {
        const std::size_t pb = lo + blk.block_id();
        const BlockDesc& d = list.host_descs[pb];
        detail::ef_decode_one_block(blk, list, d, pb, out,
                                    out_base + d.out_offset - first_off);
      });
}

sim::KernelStats ef_decode_selected(simt::Device& dev, const DeviceList& list,
                                    const simt::DeviceBuffer<std::uint32_t>& ids_dev,
                                    std::span<const std::uint32_t> ids,
                                    simt::DeviceBuffer<DocId>& out) {
  assert(list.scheme == codec::Scheme::kEliasFano);
  assert(!ids.empty());
  return simt::launch(
      dev, {static_cast<std::uint32_t>(ids.size()), list.block_size},
      [&](simt::Block& blk) {
        // Lane 0 reads the block id to decode (mirrored on the host).
        blk.for_each_thread([&](simt::Thread& t) {
          if (t.tid() == 0) (void)t.load(ids_dev, blk.block_id());
        });
        const std::uint32_t pb = ids[blk.block_id()];
        const BlockDesc& d = list.host_descs[pb];
        detail::ef_decode_one_block(blk, list, d, pb, out,
                                    static_cast<std::uint64_t>(blk.block_id()) *
                                        list.block_size);
      });
}

}  // namespace griffin::gpu
