#include "gpu/compact.h"

#include <numeric>

namespace griffin::gpu {

CompactResult compact_segments(simt::Device& dev,
                               const simt::DeviceBuffer<DocId>& temp,
                               std::span<const std::uint32_t> counts_host,
                               std::uint32_t stride, const pcie::Link& link,
                               pcie::TransferLedger& ledger) {
  CompactResult res;
  const std::size_t nblocks = counts_host.size();
  std::vector<std::uint64_t> offsets(nblocks, 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < nblocks; ++i) {
    offsets[i] = total;
    total += counts_host[i];
  }
  res.count = total;
  res.data = dev.alloc<DocId>(std::max<std::uint64_t>(total, 1));
  ledger.add_alloc(link);
  if (total == 0) return res;

  auto offsets_dev = dev.alloc<std::uint64_t>(nblocks);
  ledger.add_alloc(link);
  dev.upload(offsets_dev, std::span<const std::uint64_t>(offsets));
  ledger.add_transfer(link, nblocks * 8, /*h2d=*/true);

  res.stats = simt::launch(
      dev, {static_cast<std::uint32_t>(nblocks), 128}, [&](simt::Block& blk) {
        const std::uint32_t bid = blk.block_id();
        const std::uint32_t n = counts_host[bid];
        blk.for_each_thread([&](simt::Thread& t) {
          std::uint64_t base = 0;
          if (t.tid() == 0) base = t.load(offsets_dev, bid);
          (void)base;
        });
        blk.for_each_thread([&](simt::Thread& t) {
          for (std::uint32_t i = t.tid(); i < n; i += blk.dim()) {
            const DocId v =
                t.load(temp, static_cast<std::uint64_t>(bid) * stride + i);
            t.store(res.data, offsets[bid] + i, v);
            t.charge(simt::kAluCycle);
          }
        });
      });
  return res;
}

}  // namespace griffin::gpu
