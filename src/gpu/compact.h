// Stream compaction shared by the GPU intersection kernels: each launch
// block produced up to `stride` matches at temp[block * stride]; gather them
// into one contiguous device array. The per-block counts are tiny, so the
// offsets are computed on the host (one small D2H + H2D round trip), as real
// implementations commonly do.
#pragma once

#include <span>

#include "gpu/device_list.h"

namespace griffin::gpu {

struct CompactResult {
  simt::DeviceBuffer<DocId> data;
  std::uint64_t count = 0;
  sim::KernelStats stats;
};

CompactResult compact_segments(simt::Device& dev,
                               const simt::DeviceBuffer<DocId>& temp,
                               std::span<const std::uint32_t> counts_host,
                               std::uint32_t stride, const pcie::Link& link,
                               pcie::TransferLedger& ledger);

}  // namespace griffin::gpu
