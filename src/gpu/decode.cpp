#include "gpu/decode.h"

#include <cassert>

#include "codec/simple16.h"
#include "gpu/ef_decode.h"
#include "gpu/pfor_decode.h"
#include "simt/collectives.h"
#include "util/bits.h"

namespace griffin::gpu {

namespace detail {

namespace {

/// Shared tail of the gap-based kernels: inclusive-scan the shared d-gaps
/// and write the absolute docIDs (gap_i stores docid delta - 1).
void scan_and_store(simt::Block& blk, const BlockDesc& d,
                    std::span<std::uint32_t> gaps, std::uint32_t n_gaps,
                    simt::DeviceBuffer<DocId>& out, std::uint64_t out_pos) {
  if (n_gaps > 0) {
    simt::block_inclusive_scan(blk, gaps.subspan(0, n_gaps));
  }
  blk.for_each_thread([&](simt::Thread& t) {
    if (t.tid() >= d.count) return;
    DocId v = d.first;
    if (t.tid() > 0) {
      v += t.sload(std::span<const std::uint32_t>(gaps), t.tid() - 1) +
           t.tid();
    }
    t.store(out, out_pos + t.tid(), v);
  });
}

}  // namespace

void bp128_decode_one_block(simt::Block& blk, const DeviceList& list,
                            const BlockDesc& d, std::uint64_t desc_index,
                            simt::DeviceBuffer<DocId>& out,
                            std::uint64_t out_pos) {
  const std::uint8_t b = d.hdr.b;
  const std::uint32_t n_gaps = d.count > 0 ? d.count - 1u : 0u;
  auto gaps = blk.shared<std::uint32_t>(std::max<std::uint32_t>(n_gaps, 1));

  blk.for_each_thread([&](simt::Thread& t) {
    if (t.tid() == 0) (void)t.load(list.descs, desc_index);
  });

  // The whole payload is one fixed-width slot array: every lane unpacks its
  // slot with no patching phase at all — PForDelta's kernel minus the
  // serial exception walk it exists to avoid.
  blk.for_each_thread([&](simt::Thread& t) {
    if (t.tid() >= n_gaps) return;
    const std::uint32_t slot =
        b == 0 ? 0
               : static_cast<std::uint32_t>(load_bits(
                     t, list.blob,
                     d.bit_offset + static_cast<std::uint64_t>(t.tid()) * b,
                     b));
    t.sstore(std::span<std::uint32_t>(gaps), t.tid(), slot);
  });

  scan_and_store(blk, d, gaps, n_gaps, out, out_pos);
}

void repair_decode_one_block(simt::Block& blk, const DeviceList& list,
                             const BlockDesc& d, std::uint64_t desc_index,
                             simt::DeviceBuffer<DocId>& out,
                             std::uint64_t out_pos) {
  const std::uint8_t b = d.hdr.b;
  const std::uint16_t n_rules = d.hdr.h16a;
  const std::uint16_t n_seq = d.hdr.h16b;
  const std::uint32_t n_dict = d.hdr.h32;
  const std::uint32_t n_gaps = d.count > 0 ? d.count - 1u : 0u;
  const std::uint64_t rules_start = d.bit_offset + 32ull * n_dict;
  const std::uint64_t seq_start =
      rules_start + static_cast<std::uint64_t>(b) * 2 * n_rules;

  auto gaps = blk.shared<std::uint32_t>(std::max<std::uint32_t>(n_gaps, 1));
  auto lens = blk.shared<std::uint32_t>(std::max<std::uint16_t>(n_seq, 1));

  blk.for_each_thread([&](simt::Thread& t) {
    if (t.tid() == 0) (void)t.load(list.descs, desc_index);
  });

  // Grammar traversal from a thread: expansion is data-dependent pointer
  // chasing (divergent, uncoalesced rule fetches) — the honest cost of a
  // grammar codec on a warp machine. emit == nullptr counts only.
  auto expand = [&](simt::Thread& t, std::uint32_t sym, std::uint32_t* emit) {
    std::uint32_t stack[1 << 12];  // depth <= n_rules + 1
    int top = 0;
    stack[top++] = sym;
    std::uint32_t produced = 0;
    while (top > 0) {
      const std::uint32_t s = stack[--top];
      t.charge(simt::kAluCycle);  // terminal test + stack bookkeeping
      if (s < n_dict) {
        if (emit != nullptr) {
          emit[produced] = static_cast<std::uint32_t>(
              load_bits(t, list.blob, d.bit_offset + 32ull * s, 32));
        }
        ++produced;
      } else {
        const std::uint64_t rp =
            rules_start + static_cast<std::uint64_t>(s - n_dict) * 2 * b;
        const auto l =
            static_cast<std::uint32_t>(load_bits(t, list.blob, rp, b));
        const auto r =
            static_cast<std::uint32_t>(load_bits(t, list.blob, rp + b, b));
        stack[top++] = r;  // right expands after left
        stack[top++] = l;
      }
    }
    return produced;
  };

  auto seq_symbol = [&](simt::Thread& t, std::uint32_t i) {
    return b == 0 ? 0u
                  : static_cast<std::uint32_t>(load_bits(
                        t, list.blob,
                        seq_start + static_cast<std::uint64_t>(i) * b, b));
  };

  // Phase 1: one lane per top-level symbol measures its expansion length.
  blk.for_each_thread([&](simt::Thread& t) {
    if (t.tid() >= n_seq) return;
    const std::uint32_t len = expand(t, seq_symbol(t, t.tid()), nullptr);
    t.sstore(std::span<std::uint32_t>(lens), t.tid(), len);
  });

  // Phase 2: prefix sum assigns each symbol its output offset.
  if (n_seq > 0) {
    simt::block_inclusive_scan(blk, lens.subspan(0, n_seq));
  }

  // Phase 3: re-expand, scattering gap values at the assigned offsets.
  blk.for_each_thread([&](simt::Thread& t) {
    if (t.tid() >= n_seq) return;
    const std::uint32_t begin =
        t.tid() == 0
            ? 0
            : t.sload(std::span<const std::uint32_t>(lens), t.tid() - 1);
    std::uint32_t buf[1 << 12];
    const std::uint32_t len = expand(t, seq_symbol(t, t.tid()), buf);
    for (std::uint32_t i = 0; i < len; ++i) {
      t.sstore(std::span<std::uint32_t>(gaps), begin + i, buf[i]);
    }
  });

  scan_and_store(blk, d, gaps, n_gaps, out, out_pos);
}

void serial_decode_one_block(simt::Block& blk, const DeviceList& list,
                             const BlockDesc& d, std::uint64_t desc_index,
                             simt::DeviceBuffer<DocId>& out,
                             std::uint64_t out_pos) {
  const std::uint32_t n_gaps = d.count > 0 ? d.count - 1u : 0u;
  auto gaps = blk.shared<std::uint32_t>(std::max<std::uint32_t>(n_gaps, 1));

  blk.for_each_thread([&](simt::Thread& t) {
    if (t.tid() == 0) (void)t.load(list.descs, desc_index);
  });

  // Byte-granular and selector-switch codecs have no lane-parallel
  // structure: lane 0 decodes the whole block while the rest of the warp
  // idles. The scheduler's per-codec penalty prices exactly this.
  blk.for_each_thread([&](simt::Thread& t) {
    if (t.tid() != 0) return;
    if (list.scheme == codec::Scheme::kVarByte) {
      std::uint64_t pos = d.bit_offset;
      for (std::uint32_t i = 0; i < n_gaps; ++i) {
        std::uint32_t v = 0;
        int shift = 0;
        for (;;) {
          const auto byte = static_cast<std::uint8_t>(
              load_bits(t, list.blob, pos, 8));
          pos += 8;
          t.charge(simt::kAluCycle);
          v |= static_cast<std::uint32_t>(byte & 0x7F) << shift;
          if ((byte & 0x80) == 0) break;
          shift += 7;
        }
        t.sstore(std::span<std::uint32_t>(gaps), i, v);
      }
    } else {  // Simple16
      std::uint32_t words[1 << 12];
      std::uint32_t decoded[1 << 12];
      assert(d.count <= (1u << 12));
      const std::uint64_t avail =
          (list.blob.size() * 64 - d.bit_offset) / 32;
      const std::uint32_t max_words = static_cast<std::uint32_t>(
          std::min<std::uint64_t>({d.count, 1u << 12, avail}));
      for (std::uint32_t i = 0; i < max_words; ++i) {
        words[i] = static_cast<std::uint32_t>(
            load_bits(t, list.blob, d.bit_offset + 32ull * i, 32));
      }
      codec::simple16_decode(std::span<const std::uint32_t>(words, max_words),
                             n_gaps, decoded);
      for (std::uint32_t i = 0; i < n_gaps; ++i) {
        t.charge(simt::kAluCycle);  // selector dispatch + shift/mask
        t.sstore(std::span<std::uint32_t>(gaps), i, decoded[i]);
      }
    }
  });

  scan_and_store(blk, d, gaps, n_gaps, out, out_pos);
}

namespace {

/// Per-scheme one-block dispatch for the generic entry points.
void decode_one_block(simt::Block& blk, const DeviceList& list,
                      const BlockDesc& d, std::uint64_t desc_index,
                      simt::DeviceBuffer<DocId>& out, std::uint64_t out_pos) {
  switch (list.scheme) {
    case codec::Scheme::kEliasFano:
      ef_decode_one_block(blk, list, d, desc_index, out, out_pos);
      break;
    case codec::Scheme::kPForDelta:
      pfor_decode_one_block(blk, list, d, desc_index, out, out_pos);
      break;
    case codec::Scheme::kBitPack128:
      bp128_decode_one_block(blk, list, d, desc_index, out, out_pos);
      break;
    case codec::Scheme::kRePair:
      repair_decode_one_block(blk, list, d, desc_index, out, out_pos);
      break;
    case codec::Scheme::kVarByte:
    case codec::Scheme::kSimple16:
      serial_decode_one_block(blk, list, d, desc_index, out, out_pos);
      break;
  }
}

}  // namespace

}  // namespace detail

bool gpu_parallel_decode(codec::Scheme s) {
  switch (s) {
    case codec::Scheme::kEliasFano:
    case codec::Scheme::kPForDelta:
    case codec::Scheme::kBitPack128:
    case codec::Scheme::kRePair:
      return true;
    case codec::Scheme::kVarByte:
    case codec::Scheme::kSimple16:
      return false;
  }
  return false;
}

sim::KernelStats decode_range(simt::Device& dev, const DeviceList& list,
                              std::size_t lo, std::size_t hi,
                              simt::DeviceBuffer<DocId>& out,
                              std::uint64_t out_base) {
  // The dedicated kernels keep their own entry points for the ablations.
  if (list.scheme == codec::Scheme::kEliasFano) {
    return ef_decode_range(dev, list, lo, hi, out, out_base);
  }
  if (list.scheme == codec::Scheme::kPForDelta) {
    return pfor_decode_range(dev, list, lo, hi, out, out_base);
  }
  assert(lo < hi && hi <= list.num_blocks());
  const std::uint64_t first_off = list.host_descs[lo].out_offset;
  return simt::launch(
      dev, {static_cast<std::uint32_t>(hi - lo), list.block_size},
      [&](simt::Block& blk) {
        const std::size_t pb = lo + blk.block_id();
        const BlockDesc& d = list.host_descs[pb];
        detail::decode_one_block(blk, list, d, pb, out,
                                 out_base + d.out_offset - first_off);
      });
}

sim::KernelStats decode_selected(
    simt::Device& dev, const DeviceList& list,
    const simt::DeviceBuffer<std::uint32_t>& ids_dev,
                                 std::span<const std::uint32_t> ids,
                                 simt::DeviceBuffer<DocId>& out) {
  if (list.scheme == codec::Scheme::kEliasFano) {
    return ef_decode_selected(dev, list, ids_dev, ids, out);
  }
  assert(!ids.empty());
  return simt::launch(
      dev, {static_cast<std::uint32_t>(ids.size()), list.block_size},
      [&](simt::Block& blk) {
        // Lane 0 reads the block id to decode (mirrored on the host).
        blk.for_each_thread([&](simt::Thread& t) {
          if (t.tid() == 0) (void)t.load(ids_dev, blk.block_id());
        });
        const std::uint32_t pb = ids[blk.block_id()];
        const BlockDesc& d = list.host_descs[pb];
        detail::decode_one_block(blk, list, d, pb, out,
                                 static_cast<std::uint64_t>(blk.block_id()) *
                                     list.block_size);
      });
}

}  // namespace griffin::gpu
