// Hardware parameters for the simulated testbed. The defaults reproduce the
// paper's evaluation platform (§4.1): a 4-core Intel Xeon E5-2609v2 at
// 2.5 GHz with DDR3-1600, and an NVIDIA Tesla K20 (13 SMX, 2496 CUDA cores at
// 706 MHz, 5 GB GDDR5 at 208 GB/s) attached over PCIe 2.0 x16 (8 GB/s).
//
// Every cost the engines charge is derived from these numbers — nothing about
// the paper's *results* (speedups, the ratio-128 crossover, tail behaviour)
// is encoded here, only the machine.
#pragma once

#include <cstddef>
#include <cstdint>

namespace griffin::sim {

/// Vector-unit parameters for the SIMD execution mode (DESIGN.md §13).
/// When `enabled`, the CPU cost layer charges vectorized loops by
/// ceil(n/lanes) vector iterations (cpu/simd_cost.h — the CPU mirror of
/// simt/'s warp accounting) instead of per-element scalar costs. Results
/// are bit-identical either way; only the charged cycles move.
struct CpuVectorSpec {
  bool enabled = false;
  /// Vector width in 32-bit elements (SSE = 4, AVX2 = 8).
  int lanes = 4;
  /// Cycles per vector ALU issue (shift/and/add/compare), throughput-
  /// normalized: 1.0 = one vector op per cycle, 0.5 = two issue ports.
  double vector_op_cycles = 1.0;
  /// Cycles per byte-shuffle / permute issue (pshufb and friends). Kept
  /// separate from plain ALU ops because shuffle-based merge and the
  /// bit-unpack networks are shuffle-port-bound on real cores.
  double shuffle_cycles = 1.0;
  /// Cycles per *element* gathered from non-contiguous addresses. Cores
  /// without a hardware gather (SSE4) emulate with insert/extract.
  double gather_cycles = 2.0;
  /// Fixed cycles to enter one vectorized loop (masks, alignment, loads of
  /// the shift/shuffle constants) — charged once per loop.
  double block_setup_cycles = 8.0;
  /// Extra cycles per element of a loop's scalar tail (n % lanes leftovers
  /// handled by a masked final iteration).
  double scalar_tail_cycles = 2.0;
  /// Preset label for benches/JSON ("scalar" when !enabled).
  const char* name = "scalar";
};

struct CpuSpec {
  double clock_ghz = 2.5;
  /// Roofline bandwidth term for the CPU cost model: the sustainable
  /// *per-core stream* rate, set to the DDR3-1600 single-channel peak.
  /// This is a calibration choice, not a claim about channel wiring — the
  /// engines model one core, and one Ivy Bridge core's sustained load
  /// stream saturates near one channel's rate, which is what pins the
  /// bandwidth legs of Figures 12/13 (see EXPERIMENTS.md "Calibration").
  double mem_bandwidth_gbps = 12.8;
  /// Vector unit (disabled by default: the scalar paper baseline).
  CpuVectorSpec vector;

  // Per-operation costs in core cycles, calibrated so that the CPU
  // baseline's absolute times land near the paper's measured Figures 12/13
  // (see EXPERIMENTS.md "Calibration"). Block decodes that stay in cache
  // (the intersection path) are cheap; fully materializing a decompressed
  // list (the decompression microbenchmark path) pays a per-element
  // surcharge plus the output-write bandwidth.
  /// Compare + advance in a 2-way merge over freshly decoded blocks,
  /// including the branch mix and output writes. Calibrated to Figure 13's
  /// measured CPU merge (hundreds of ms at 10M elements).
  double merge_step_cycles = 25.0;
  double branch_miss_cycles = 16.0;     ///< mispredicted data-dependent branch
  double cache_miss_cycles = 180.0;     ///< DRAM-latency pointer chase
  double pfor_decode_cycles = 2.5;      ///< per element, cache-hot block
  double pfor_exception_cycles = 7.0;   ///< per exception (patch chain step)
  double ef_decode_cycles = 3.0;        ///< per element, cache-hot block
  double decode_materialize_cycles = 24.0;  ///< extra per element, decode_all
  double score_cycles = 15.0;           ///< BM25 of one (doc, term) pair
  double heap_step_cycles = 3.5;        ///< one partial_sort compare+sift step

  /// The paper's Xeon E5-2609v2 with its integer SIMD unit switched on:
  /// Ivy Bridge executes integer vector ops at 128 bits (SSE4.2), one
  /// ALU-port issue per cycle, no hardware gather. Same core model as the
  /// scalar default — only the vector parameters differ, so any crossover
  /// shift is attributable to the lanes alone.
  static CpuSpec sse4_testbed() {
    CpuSpec s;
    s.vector = CpuVectorSpec{/*enabled=*/true, /*lanes=*/4,
                             /*vector_op_cycles=*/1.0, /*shuffle_cycles=*/1.0,
                             /*gather_cycles=*/2.0, /*block_setup_cycles=*/8.0,
                             /*scalar_tail_cycles=*/2.0, "sse4"};
    return s;
  }

  /// A modern AVX2 profile (Haswell-and-later integer SIMD): 256-bit
  /// integer vectors, two vector-ALU issue ports, one shuffle port (so
  /// cross-lane permutes don't get the 2x issue win), hardware gather.
  /// Clock and memory bandwidth are deliberately pinned to the testbed's —
  /// the preset isolates the vector-width effect on the §3.2 crossover
  /// (EXPERIMENTS.md "Calibration" records the parameter choices).
  static CpuSpec modern_avx2() {
    CpuSpec s;
    s.vector = CpuVectorSpec{/*enabled=*/true, /*lanes=*/8,
                             /*vector_op_cycles=*/0.5, /*shuffle_cycles=*/1.0,
                             /*gather_cycles=*/1.0, /*block_setup_cycles=*/6.0,
                             /*scalar_tail_cycles=*/2.0, "avx2"};
    return s;
  }
};

struct GpuSpec {
  int sm_count = 13;                   ///< K20 SMX units
  int lanes_per_warp = 32;
  /// Warp-instruction execution slots chip-wide per cycle: each SMX has 192
  /// cores = 6 warp-widths.
  int warp_slots_per_cycle = 13 * 6;
  int max_resident_warps_per_sm = 64;
  int max_threads_per_block = 1024;
  std::size_t shared_mem_per_block = 48 * 1024;
  double core_clock_ghz = 0.706;
  double mem_bandwidth_gbps = 208.0;
  double mem_latency_ns = 400.0;       ///< uncontended global-memory latency
  double kernel_launch_us = 10.0;      ///< driver + dispatch overhead (CUDA 7)
  double barrier_cycles = 40.0;        ///< block-wide __syncthreads cost
  std::size_t mem_transaction_bytes = 128;
};

struct PcieSpec {
  double bandwidth_gbps = 8.0;         ///< PCIe 2.0 x16 effective
  double latency_us = 8.0;             ///< DMA setup + completion per transfer
  double alloc_us = 50.0;              ///< cudaMalloc-equivalent, per call
  std::size_t device_mem_bytes = 5ull * 1024 * 1024 * 1024;
};

struct HardwareSpec {
  CpuSpec cpu;
  GpuSpec gpu;
  PcieSpec pcie;

  /// Cost of discovering a query term is absent from a shard's dictionary
  /// (one hash probe + the short-circuit reply; cluster/shard_node.h's
  /// fast path). A cluster-serving cost assumption, so it lives with the
  /// rest of the machine model rather than as a constant in the shard code.
  double absent_term_probe_us = 2.0;

  /// The paper's testbed (§4.1). Also the default-constructed value.
  static HardwareSpec paper_testbed() { return HardwareSpec{}; }
};

}  // namespace griffin::sim
