// Simulated time. All engines in this repository account latency in the same
// simulated clock so that CPU-vs-GPU comparisons are deterministic and
// host-independent (see DESIGN.md §2: the paper's K20 testbed is modeled, not
// measured). Durations are integer picoseconds: fine-grained enough for
// single ALU ops, wide enough for hours of simulated service time.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>

namespace griffin::sim {

class Duration {
 public:
  constexpr Duration() : ps_(0) {}

  static constexpr Duration from_ps(std::int64_t ps) { return Duration(ps); }
  static constexpr Duration from_ns(double ns) {
    return Duration(static_cast<std::int64_t>(ns * 1e3 + 0.5));
  }
  static constexpr Duration from_us(double us) {
    return Duration(static_cast<std::int64_t>(us * 1e6 + 0.5));
  }
  static constexpr Duration from_ms(double ms) {
    return Duration(static_cast<std::int64_t>(ms * 1e9 + 0.5));
  }
  static constexpr Duration from_seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e12 + 0.5));
  }
  /// Cycles at a given clock frequency.
  static Duration from_cycles(double cycles, double clock_ghz) {
    return from_ns(cycles / clock_ghz);
  }

  constexpr std::int64_t ps() const { return ps_; }
  constexpr double ns() const { return static_cast<double>(ps_) * 1e-3; }
  constexpr double us() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double ms() const { return static_cast<double>(ps_) * 1e-9; }
  constexpr double seconds() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr Duration operator+(Duration o) const { return Duration(ps_ + o.ps_); }
  constexpr Duration operator-(Duration o) const { return Duration(ps_ - o.ps_); }
  constexpr Duration& operator+=(Duration o) { ps_ += o.ps_; return *this; }
  constexpr Duration& operator-=(Duration o) { ps_ -= o.ps_; return *this; }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<std::int64_t>(static_cast<double>(ps_) * k));
  }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ps_) / static_cast<double>(o.ps_);
  }
  constexpr auto operator<=>(const Duration&) const = default;

 private:
  constexpr explicit Duration(std::int64_t ps) : ps_(ps) {}
  std::int64_t ps_;
};

constexpr Duration max(Duration a, Duration b) { return a < b ? b : a; }
constexpr Duration min(Duration a, Duration b) { return a < b ? a : b; }

}  // namespace griffin::sim
