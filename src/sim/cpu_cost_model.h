// Cost accounting for the CPU query engine. Engines charge cycles for the
// scalar work they do (compares, decodes, branch misses) and bytes for the
// data they stream; the resulting time is roofline-style: whichever of the
// compute or bandwidth terms is larger. One accumulator covers one pipeline
// stage (decode / intersect / rank) of one query.
#pragma once

#include <cstdint>

#include "sim/hardware_spec.h"
#include "sim/time.h"

namespace griffin::sim {

class CpuCostAccumulator {
 public:
  explicit CpuCostAccumulator(const CpuSpec& spec) : spec_(&spec) {}

  void add_cycles(double c) { cycles_ += c; }
  void add_bytes(std::uint64_t b) { bytes_ += b; }

  // Convenience charges matching the CpuSpec knobs.
  void merge_steps(std::uint64_t n) { cycles_ += n * spec_->merge_step_cycles; }
  void branch_misses(std::uint64_t n) { cycles_ += n * spec_->branch_miss_cycles; }
  void cache_misses(std::uint64_t n) { cycles_ += n * spec_->cache_miss_cycles; }
  void pfor_regulars(std::uint64_t n) { cycles_ += n * spec_->pfor_decode_cycles; }
  void pfor_exceptions(std::uint64_t n) { cycles_ += n * spec_->pfor_exception_cycles; }
  void ef_elements(std::uint64_t n) { cycles_ += n * spec_->ef_decode_cycles; }
  void decode_materialize(std::uint64_t n) {
    cycles_ += n * spec_->decode_materialize_cycles;
  }
  void scores(std::uint64_t n) { cycles_ += n * spec_->score_cycles; }
  void heap_steps(std::uint64_t n) { cycles_ += n * spec_->heap_step_cycles; }

  double cycles() const { return cycles_; }
  std::uint64_t bytes() const { return bytes_; }

  /// Roofline time for this stage.
  Duration time() const {
    const Duration compute = Duration::from_cycles(cycles_, spec_->clock_ghz);
    const Duration bw = Duration::from_ns(static_cast<double>(bytes_) /
                                          spec_->mem_bandwidth_gbps);
    return max(compute, bw);
  }

 private:
  const CpuSpec* spec_;
  double cycles_ = 0.0;
  std::uint64_t bytes_ = 0;
};

}  // namespace griffin::sim
