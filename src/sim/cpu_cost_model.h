// Cost accounting for the CPU query engine. Engines charge cycles for the
// scalar work they do (compares, decodes, branch misses) and bytes for the
// data they stream; the resulting time is roofline-style: whichever of the
// compute or bandwidth terms is larger. One accumulator covers one pipeline
// stage (decode / intersect / rank) of one query.
#pragma once

#include <cstdint>

#include "sim/hardware_spec.h"
#include "sim/time.h"

namespace griffin::sim {

/// Lane-accounting counters for the SIMD execution mode (DESIGN.md §13) —
/// the CPU mirror of simt/'s per-warp work counts. One vectorized loop over
/// n elements charges exactly ceil(n/lanes) vector iterations; the lanes
/// those iterations *could* have filled versus the elements they actually
/// processed is the vector efficiency traces report.
struct SimdCounters {
  std::uint64_t loops = 0;         ///< vectorized loops entered
  std::uint64_t vector_ops = 0;    ///< Σ ceil(n/lanes) over loops
  std::uint64_t useful_lanes = 0;  ///< Σ n (elements actually processed)
  std::uint64_t charged_lanes = 0; ///< Σ ceil(n/lanes)*lanes (slots paid for)
  std::uint64_t tail_elems = 0;    ///< Σ n mod lanes (masked-tail elements)

  /// Fraction of paid-for lane slots that did useful work (0 when no
  /// vectorized loop ran — scalar mode, GPU-placed steps, transfers).
  double utilization() const {
    return charged_lanes == 0 ? 0.0
                              : static_cast<double>(useful_lanes) /
                                    static_cast<double>(charged_lanes);
  }

  SimdCounters& operator+=(const SimdCounters& o) {
    loops += o.loops;
    vector_ops += o.vector_ops;
    useful_lanes += o.useful_lanes;
    charged_lanes += o.charged_lanes;
    tail_elems += o.tail_elems;
    return *this;
  }
  friend SimdCounters operator-(SimdCounters a, const SimdCounters& b) {
    a.loops -= b.loops;
    a.vector_ops -= b.vector_ops;
    a.useful_lanes -= b.useful_lanes;
    a.charged_lanes -= b.charged_lanes;
    a.tail_elems -= b.tail_elems;
    return a;
  }
};

class CpuCostAccumulator {
 public:
  explicit CpuCostAccumulator(const CpuSpec& spec) : spec_(&spec) {}

  const CpuSpec& spec() const { return *spec_; }

  void add_cycles(double c) { cycles_ += c; }
  void add_bytes(std::uint64_t b) { bytes_ += b; }

  /// One vectorized loop: `n` elements in `vops` vector iterations costing
  /// `cycles` total (cpu/simd_cost.h computes both from the vector spec).
  void add_vector_loop(std::uint64_t n, std::uint64_t vops, double cycles) {
    cycles_ += cycles;
    const auto lanes = static_cast<std::uint64_t>(spec_->vector.lanes);
    ++simd_.loops;
    simd_.vector_ops += vops;
    simd_.useful_lanes += n;
    simd_.charged_lanes += vops * lanes;
    simd_.tail_elems += n % lanes;
  }
  const SimdCounters& simd() const { return simd_; }

  // Convenience charges matching the CpuSpec knobs.
  void merge_steps(std::uint64_t n) { cycles_ += n * spec_->merge_step_cycles; }
  void branch_misses(std::uint64_t n) { cycles_ += n * spec_->branch_miss_cycles; }
  void cache_misses(std::uint64_t n) { cycles_ += n * spec_->cache_miss_cycles; }
  void pfor_regulars(std::uint64_t n) { cycles_ += n * spec_->pfor_decode_cycles; }
  void pfor_exceptions(std::uint64_t n) { cycles_ += n * spec_->pfor_exception_cycles; }
  void ef_elements(std::uint64_t n) { cycles_ += n * spec_->ef_decode_cycles; }
  void decode_materialize(std::uint64_t n) {
    cycles_ += n * spec_->decode_materialize_cycles;
  }
  void scores(std::uint64_t n) { cycles_ += n * spec_->score_cycles; }
  void heap_steps(std::uint64_t n) { cycles_ += n * spec_->heap_step_cycles; }

  double cycles() const { return cycles_; }
  std::uint64_t bytes() const { return bytes_; }

  /// Roofline time for this stage.
  Duration time() const {
    const Duration compute = Duration::from_cycles(cycles_, spec_->clock_ghz);
    const Duration bw = Duration::from_ns(static_cast<double>(bytes_) /
                                          spec_->mem_bandwidth_gbps);
    return max(compute, bw);
  }

 private:
  const CpuSpec* spec_;
  double cycles_ = 0.0;
  std::uint64_t bytes_ = 0;
  SimdCounters simd_;
};

}  // namespace griffin::sim
