// Converts counted kernel work (from the SIMT simulator) into simulated time
// with a roofline model: a kernel is bound by whichever is largest of
//   - warp-instruction issue throughput (compute),
//   - global-memory bandwidth over coalesced 128B transactions (memory),
//   - exposed memory latency when too few warps are resident to hide it
//     (occupancy / latency bound),
// plus a fixed kernel-launch overhead. This is the standard first-order GPU
// performance model; everything the paper argues about (divergence, poor
// coalescing of binary search, launch-cost amortization on long lists)
// manifests through these three terms.
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/hardware_spec.h"
#include "sim/time.h"

namespace griffin::sim {

/// Work counted during one kernel launch by the SIMT simulator.
struct KernelStats {
  std::uint64_t blocks = 0;
  std::uint64_t warps = 0;
  /// Sum over (warp, region) of the max-lane ALU+shared cycles: SIMT lockstep
  /// means a warp takes as long as its slowest lane, so divergence inflates
  /// this term.
  double warp_cycles = 0.0;
  std::uint64_t global_transactions = 0;   ///< coalesced 128B transactions
  std::uint64_t global_bytes_requested = 0;///< bytes the lanes actually asked for
  std::uint64_t shared_accesses = 0;
  double shared_conflict_cycles = 0.0;     ///< extra cycles from bank conflicts
  std::uint64_t barriers = 0;              ///< block barriers, summed over blocks

  void merge(const KernelStats& o) {
    blocks += o.blocks;
    warps += o.warps;
    warp_cycles += o.warp_cycles;
    global_transactions += o.global_transactions;
    global_bytes_requested += o.global_bytes_requested;
    shared_accesses += o.shared_accesses;
    shared_conflict_cycles += o.shared_conflict_cycles;
    barriers += o.barriers;
  }

  /// Fraction of each memory transaction that was useful data (1.0 = fully
  /// coalesced). Diagnostic only; not used by the time model.
  double coalescing_efficiency(const GpuSpec& g) const {
    if (global_transactions == 0) return 1.0;
    return static_cast<double>(global_bytes_requested) /
           static_cast<double>(global_transactions * g.mem_transaction_bytes);
  }
};

class GpuCostModel {
 public:
  explicit GpuCostModel(GpuSpec spec) : spec_(spec) {}
  const GpuSpec& spec() const { return spec_; }

  /// Time for one kernel launch that performed `s` work.
  Duration kernel_time(const KernelStats& s) const {
    if (s.warps == 0) return Duration::from_us(spec_.kernel_launch_us);

    const double barrier_cycles =
        static_cast<double>(s.barriers) * spec_.barrier_cycles;
    const double compute_cycles =
        s.warp_cycles + s.shared_conflict_cycles + barrier_cycles;

    // Compute bound: chip-wide warp-instruction slots per cycle.
    const Duration compute = Duration::from_cycles(
        compute_cycles / static_cast<double>(spec_.warp_slots_per_cycle),
        spec_.core_clock_ghz);

    // Memory-bandwidth bound.
    const double mem_bytes = static_cast<double>(s.global_transactions) *
                             static_cast<double>(spec_.mem_transaction_bytes);
    const Duration mem = Duration::from_ns(mem_bytes / spec_.mem_bandwidth_gbps);

    // Latency bound: each warp's transactions are dependent (serial within
    // the warp); warps overlap up to the resident-warp limit, beyond which
    // they run in additional "rounds".
    const double resident = static_cast<double>(spec_.sm_count) *
                            static_cast<double>(spec_.max_resident_warps_per_sm);
    const double rounds =
        std::ceil(static_cast<double>(s.warps) / resident);
    const double per_warp_txns = static_cast<double>(s.global_transactions) /
                                 static_cast<double>(s.warps);
    const double per_warp_cycles = compute_cycles / static_cast<double>(s.warps);
    const Duration serial_warp =
        Duration::from_ns(per_warp_txns * spec_.mem_latency_ns) +
        Duration::from_cycles(per_warp_cycles, spec_.core_clock_ghz);
    const Duration latency = serial_warp * rounds;

    return Duration::from_us(spec_.kernel_launch_us) +
           max(compute, max(mem, latency));
  }

 private:
  GpuSpec spec_;
};

}  // namespace griffin::sim
