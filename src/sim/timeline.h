// Discrete-event timeline for asynchronous execution (DESIGN.md §10). The
// engines keep charging every operation's duration serially — that is the
// honest amount of work — but each charge additionally records an op here,
// placed on a stream and a hardware resource. The timeline then answers
// "when would this query finish on hardware with dual copy engines and
// asynchronous kernel launches?":
//
//   * ops on the same stream serialize in issue order (CUDA stream rule);
//   * ops on the same resource serialize in issue order (one DMA at a time
//     per copy engine, one kernel at a time on our modeled device);
//   * an op may additionally wait on an Event recorded by another stream's
//     op (cudaStreamWaitEvent), which is how cross-stream data dependencies
//     — "this kernel reads what that copy delivered" — are expressed.
//
// Query latency is the critical path (the horizon: max end time over all
// ops); the serial stage sum is preserved as serial_total(), and the
// difference is QueryMetrics::overlap.saved. Both are integer picoseconds,
// so serial_total == critical_path + saved holds exactly, never
// approximately — the trace-invariant tests assert it per query.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace griffin::sim {

/// The four hardware units ops contend for. The K20 testbed has dual copy
/// engines (one per direction), one kernel pipeline we model as serial, and
/// the host core driving the query.
enum class Resource : std::uint8_t {
  kCpu = 0,
  kGpuCompute = 1,
  kCopyH2D = 2,
  kCopyD2H = 3,
};
inline constexpr std::size_t kNumResources = 4;

inline const char* resource_name(Resource r) {
  switch (r) {
    case Resource::kCpu: return "cpu";
    case Resource::kGpuCompute: return "gpu";
    case Resource::kCopyH2D: return "h2d";
    case Resource::kCopyD2H: return "d2h";
  }
  return "?";
}

class Timeline {
 public:
  using StreamId = std::uint32_t;
  using ScopeId = std::uint32_t;

  /// A completion timestamp another op can wait on (cudaEvent analogue).
  /// The default event is "the beginning of time": waiting on it is free.
  struct Event {
    Duration at;
  };
  static Event join(Event a, Event b) { return Event{max(a.at, b.at)}; }

  /// One recorded operation. issue <= start <= end always: issue is when
  /// the op's stream and event dependencies were satisfied, start is when
  /// its resource freed up, end = start + duration.
  struct Op {
    Resource resource = Resource::kCpu;
    ScopeId scope = 0;
    Duration issue;
    Duration start;
    Duration end;
  };

  /// Per-scope (per-query) accounting under multi-tenancy. A scope's serial
  /// sum and per-resource busy time partition the global totals exactly:
  /// sum over scopes == global, in integer picoseconds.
  struct ScopeStats {
    Duration serial;               ///< sum of op durations in this scope
    Duration finish;               ///< max op end time in this scope
    Duration busy[kNumResources];  ///< per-resource busy time in this scope
    std::uint64_t ops = 0;
  };

  Timeline() { scopes_.emplace_back(); }

  /// Opens a new stream whose tail starts at `open_at` (time zero by
  /// default; a later release time for queries admitted mid-run).
  StreamId stream(Duration open_at = {}) {
    tails_.push_back(open_at);
    return static_cast<StreamId>(tails_.size() - 1);
  }

  /// Allocates a new accounting scope (one per co-admitted query). Scope 0
  /// always exists and is active by default, so single-tenant callers never
  /// see scopes at all.
  ScopeId scope() {
    scopes_.emplace_back();
    return static_cast<ScopeId>(scopes_.size() - 1);
  }

  /// Selects the scope that subsequent record() calls charge against.
  void set_scope(ScopeId s) {
    assert(s < scopes_.size());
    active_scope_ = s;
  }
  ScopeId active_scope() const { return active_scope_; }

  /// Records an op of `dur` on stream `s` and resource `r`, optionally
  /// waiting on `wait` (an Event from any stream). Returns the op's
  /// completion event.
  Event record(StreamId s, Resource r, Duration dur, Event wait = {}) {
    assert(s < tails_.size());
    auto& busy = busy_until_[static_cast<std::size_t>(r)];
    Op op;
    op.resource = r;
    op.scope = active_scope_;
    op.issue = max(tails_[s], wait.at);
    op.start = max(op.issue, busy);
    op.end = op.start + dur;
    tails_[s] = op.end;
    busy = op.end;
    busy_[static_cast<std::size_t>(r)] += dur;
    serial_ += dur;
    horizon_ = max(horizon_, op.end);
    auto& sc = scopes_[active_scope_];
    sc.serial += dur;
    sc.finish = max(sc.finish, op.end);
    sc.busy[static_cast<std::size_t>(r)] += dur;
    ++sc.ops;
    ops_.push_back(op);
    return Event{op.end};
  }

  /// When the last op finishes: the query's latency under overlap (or, on a
  /// shared timeline, the device-occupancy horizon across all tenants).
  Duration critical_path() const { return horizon_; }
  /// Sum of all op durations: the latency had nothing overlapped. Equals
  /// the engines' serial stage charges by construction.
  Duration serial_total() const { return serial_; }
  /// Total busy time of one resource (copy-engine utilization etc.).
  Duration busy(Resource r) const {
    return busy_[static_cast<std::size_t>(r)];
  }
  /// Fraction of the horizon one resource spent busy, in [0, 1]. Zero on an
  /// empty timeline.
  double busy_fraction(Resource r) const {
    if (horizon_.ps() == 0) return 0.0;
    return double(busy_[static_cast<std::size_t>(r)].ps()) /
           double(horizon_.ps());
  }

  const ScopeStats& scope_stats(ScopeId s) const {
    assert(s < scopes_.size());
    return scopes_[s];
  }
  std::size_t num_scopes() const { return scopes_.size(); }

  const std::vector<Op>& ops() const { return ops_; }
  std::size_t num_ops() const { return ops_.size(); }

  /// Drops all streams, scopes, and ops (start of a new query). Outstanding
  /// StreamIds, ScopeIds, and Events become invalid; scope 0 is re-created
  /// and active.
  void reset() {
    tails_.clear();
    ops_.clear();
    for (auto& b : busy_until_) b = Duration();
    for (auto& b : busy_) b = Duration();
    serial_ = Duration();
    horizon_ = Duration();
    scopes_.clear();
    scopes_.emplace_back();
    active_scope_ = 0;
  }

 private:
  std::vector<Duration> tails_;  ///< per-stream last-op end time
  Duration busy_until_[kNumResources];
  Duration busy_[kNumResources];
  Duration serial_;
  Duration horizon_;
  std::vector<Op> ops_;
  std::vector<ScopeStats> scopes_;
  ScopeId active_scope_ = 0;
};

}  // namespace griffin::sim
