// Discrete-event timeline for asynchronous execution (DESIGN.md §10). The
// engines keep charging every operation's duration serially — that is the
// honest amount of work — but each charge additionally records an op here,
// placed on a stream and a hardware resource. The timeline then answers
// "when would this query finish on hardware with dual copy engines and
// asynchronous kernel launches?":
//
//   * ops on the same stream serialize in issue order (CUDA stream rule);
//   * ops on the same resource serialize in issue order (one DMA at a time
//     per copy engine, one kernel at a time on our modeled device);
//   * an op may additionally wait on an Event recorded by another stream's
//     op (cudaStreamWaitEvent), which is how cross-stream data dependencies
//     — "this kernel reads what that copy delivered" — are expressed.
//
// Query latency is the critical path (the horizon: max end time over all
// ops); the serial stage sum is preserved as serial_total(), and the
// difference is QueryMetrics::overlap.saved. Both are integer picoseconds,
// so serial_total == critical_path + saved holds exactly, never
// approximately — the trace-invariant tests assert it per query.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace griffin::sim {

/// The four hardware units ops contend for. The K20 testbed has dual copy
/// engines (one per direction), one kernel pipeline we model as serial, and
/// the host core driving the query.
enum class Resource : std::uint8_t {
  kCpu = 0,
  kGpuCompute = 1,
  kCopyH2D = 2,
  kCopyD2H = 3,
};
inline constexpr std::size_t kNumResources = 4;

inline const char* resource_name(Resource r) {
  switch (r) {
    case Resource::kCpu: return "cpu";
    case Resource::kGpuCompute: return "gpu";
    case Resource::kCopyH2D: return "h2d";
    case Resource::kCopyD2H: return "d2h";
  }
  return "?";
}

class Timeline {
 public:
  using StreamId = std::uint32_t;

  /// A completion timestamp another op can wait on (cudaEvent analogue).
  /// The default event is "the beginning of time": waiting on it is free.
  struct Event {
    Duration at;
  };
  static Event join(Event a, Event b) { return Event{max(a.at, b.at)}; }

  /// One recorded operation. issue <= start <= end always: issue is when
  /// the op's stream and event dependencies were satisfied, start is when
  /// its resource freed up, end = start + duration.
  struct Op {
    Resource resource = Resource::kCpu;
    Duration issue;
    Duration start;
    Duration end;
  };

  /// Opens a new stream (tail at time zero).
  StreamId stream() {
    tails_.push_back(Duration());
    return static_cast<StreamId>(tails_.size() - 1);
  }

  /// Records an op of `dur` on stream `s` and resource `r`, optionally
  /// waiting on `wait` (an Event from any stream). Returns the op's
  /// completion event.
  Event record(StreamId s, Resource r, Duration dur, Event wait = {}) {
    assert(s < tails_.size());
    auto& busy = busy_until_[static_cast<std::size_t>(r)];
    Op op;
    op.resource = r;
    op.issue = max(tails_[s], wait.at);
    op.start = max(op.issue, busy);
    op.end = op.start + dur;
    tails_[s] = op.end;
    busy = op.end;
    busy_[static_cast<std::size_t>(r)] += dur;
    serial_ += dur;
    horizon_ = max(horizon_, op.end);
    ops_.push_back(op);
    return Event{op.end};
  }

  /// When the last op finishes: the query's latency under overlap.
  Duration critical_path() const { return horizon_; }
  /// Sum of all op durations: the latency had nothing overlapped. Equals
  /// the engines' serial stage charges by construction.
  Duration serial_total() const { return serial_; }
  /// Total busy time of one resource (copy-engine utilization etc.).
  Duration busy(Resource r) const {
    return busy_[static_cast<std::size_t>(r)];
  }

  const std::vector<Op>& ops() const { return ops_; }
  std::size_t num_ops() const { return ops_.size(); }

  /// Drops all streams and ops (start of a new query). Outstanding
  /// StreamIds and Events become invalid.
  void reset() {
    tails_.clear();
    ops_.clear();
    for (auto& b : busy_until_) b = Duration();
    for (auto& b : busy_) b = Duration();
    serial_ = Duration();
    horizon_ = Duration();
  }

 private:
  std::vector<Duration> tails_;  ///< per-stream last-op end time
  Duration busy_until_[kNumResources];
  Duration busy_[kNumResources];
  Duration serial_;
  Duration horizon_;
  std::vector<Op> ops_;
};

}  // namespace griffin::sim
