// Generic byte-budgeted LRU cache shared by the repository's caching tiers
// (gpu/list_cache.h, cpu/decoded_cache.h, cluster/result_cache.h): classic
// doubly-linked-list + hash-map LRU with O(1) lookup/insert/evict, bounded
// by an entry count, a byte budget, or both. The *caller* supplies the byte
// size of each entry — values here are opaque (device buffers, decoded
// vectors, merged top-k lists), only the accounting is shared.
//
// Lifetime contract: `lookup`/`peek`/`insert` return pointers into the
// cache. A later `insert` may evict the pointed-to entry, so callers must
// finish using a returned pointer before the next insert (the engines'
// acquire -> use -> commit step ordering guarantees this).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace griffin::util {

/// Lifetime counters of one cache instance (per-query deltas are tracked
/// separately in core::CacheCounters).
struct LruStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    const std::uint64_t n = hits + misses;
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ByteLruCache {
 public:
  /// max_entries = 0 means no count bound; byte_budget = 0 means no byte
  /// bound. Both zero disables the cache (inserts dropped, lookups miss).
  ByteLruCache(std::size_t max_entries, std::uint64_t byte_budget)
      : max_entries_(max_entries), byte_budget_(byte_budget) {}

  bool enabled() const { return max_entries_ != 0 || byte_budget_ != 0; }

  /// True iff an entry of `bytes` could ever be resident: an oversized
  /// entry would evict the whole cache and still bust the budget, so
  /// callers skip the insert for those.
  bool fits(std::uint64_t bytes) const {
    return enabled() && (byte_budget_ == 0 || bytes <= byte_budget_);
  }

  /// Returns the resident value and refreshes recency, or nullptr.
  /// Counts a hit or a miss.
  Value* lookup(const Key& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->value;
  }

  /// Residency probe: no stats, no recency refresh (the scheduler asks
  /// "would this step hit?" without committing to the step).
  const Value* peek(const Key& key) const {
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second->value;
  }

  /// Inserts (or replaces) an entry of `bytes` bytes, evicting from the LRU
  /// tail until back under both bounds. Returns a pointer to the resident
  /// value, or nullptr when the entry cannot be resident (`!fits`) — the
  /// value is dropped in that case. `evicted`, when non-null, receives the
  /// number of entries evicted by this insert.
  Value* insert(const Key& key, Value value, std::uint64_t bytes,
                std::uint64_t* evicted = nullptr) {
    if (evicted != nullptr) *evicted = 0;
    if (!fits(bytes)) return nullptr;
    const auto it = map_.find(key);
    if (it != map_.end()) {
      bytes_ -= it->second->bytes;
      it->second->value = std::move(value);
      it->second->bytes = bytes;
      bytes_ += bytes;
      lru_.splice(lru_.begin(), lru_, it->second);
    } else {
      lru_.push_front(Entry{key, std::move(value), bytes});
      map_.emplace(lru_.front().key, lru_.begin());
      bytes_ += bytes;
      ++stats_.insertions;
    }
    evict_to_bounds(evicted);
    return &lru_.front().value;
  }

  /// Evicts LRU-tail entries until at least `min_bytes` have been freed (or
  /// the cache is empty) — the memory-pressure valve the GPU engine's OOM
  /// degradation ladder pulls (DESIGN.md §16). Counts real evictions;
  /// `entries`, when non-null, receives how many were dropped. Returns the
  /// bytes actually freed.
  std::uint64_t evict_bytes(std::uint64_t min_bytes,
                            std::uint64_t* entries = nullptr) {
    std::uint64_t freed = 0;
    std::uint64_t n = 0;
    while (freed < min_bytes && !lru_.empty()) {
      freed += lru_.back().bytes;
      bytes_ -= lru_.back().bytes;
      map_.erase(lru_.back().key);
      lru_.pop_back();
      ++stats_.evictions;
      ++n;
    }
    if (entries != nullptr) *entries = n;
    return freed;
  }

  /// Drops one entry (fault invalidation — e.g. an ECC error retiring a
  /// cached device list). Not an eviction: the entry did not age out, so the
  /// eviction counter is untouched. Returns true when something was removed.
  bool erase(const Key& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return false;
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    map_.erase(it);
    return true;
  }

  std::size_t size() const { return lru_.size(); }
  std::uint64_t bytes() const { return bytes_; }
  std::size_t max_entries() const { return max_entries_; }
  std::uint64_t byte_budget() const { return byte_budget_; }
  const LruStats& stats() const { return stats_; }

  void clear() {
    lru_.clear();
    map_.clear();
    bytes_ = 0;
  }

 private:
  struct Entry {
    Key key;
    Value value;
    std::uint64_t bytes = 0;
  };
  using Lru = std::list<Entry>;

  void evict_to_bounds(std::uint64_t* evicted) {
    // The `size() > 1` guard keeps the just-inserted front entry resident:
    // `fits` already proved it can live within the budget alone.
    while (over_bounds() && lru_.size() > 1) {
      bytes_ -= lru_.back().bytes;
      map_.erase(lru_.back().key);
      lru_.pop_back();
      ++stats_.evictions;
      if (evicted != nullptr) ++*evicted;
    }
  }

  bool over_bounds() const {
    return (max_entries_ != 0 && lru_.size() > max_entries_) ||
           (byte_budget_ != 0 && bytes_ > byte_budget_);
  }

  std::size_t max_entries_;
  std::uint64_t byte_budget_;
  std::uint64_t bytes_ = 0;
  Lru lru_;  // front = most recent
  std::unordered_map<Key, typename Lru::iterator, Hash> map_;
  LruStats stats_;
};

}  // namespace griffin::util
