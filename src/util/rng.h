// Deterministic, fast pseudo-random number generation. Every stochastic
// component of the repository (workload synthesis, test sweeps, bench input
// generation) derives from these generators with explicit seeds so that all
// experiments are exactly reproducible run-to-run and machine-to-machine.
#pragma once

#include <cstdint>
#include <limits>

namespace griffin::util {

/// SplitMix64: used to seed Xoshiro and for cheap hashing of seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — the project-wide PRNG. Satisfies
/// std::uniform_random_bit_generator so it plugs into <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift rejection.
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    // 128-bit multiply keeps the bias negligible for our purposes; use the
    // unbiased rejection loop to stay exact.
    std::uint64_t threshold = (-bound) % bound;
    for (;;) {
      std::uint64_t r = (*this)();
      __uint128_t m = static_cast<__uint128_t>(r) * bound;
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace griffin::util
