// Host-side scans. The GPU kernels model their own parallel Blelchoch-style
// scans through the SIMT collectives (src/simt/collectives.h); these plain
// sequential versions serve the CPU engine and reference checks in tests.
#pragma once

#include <cstddef>
#include <span>

namespace griffin::util {

/// In-place inclusive prefix sum: out[i] = sum(in[0..i]).
template <typename T>
void inclusive_scan_inplace(std::span<T> data) {
  T acc{};
  for (std::size_t i = 0; i < data.size(); ++i) {
    acc += data[i];
    data[i] = acc;
  }
}

/// In-place exclusive prefix sum: out[i] = sum(in[0..i-1]); returns the total.
template <typename T>
T exclusive_scan_inplace(std::span<T> data) {
  T acc{};
  for (std::size_t i = 0; i < data.size(); ++i) {
    T v = data[i];
    data[i] = acc;
    acc += v;
  }
  return acc;
}

}  // namespace griffin::util
