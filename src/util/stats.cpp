#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace griffin::util {

void SummaryStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double SummaryStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

double PercentileTracker::percentile(double p) const {
  assert(!samples_.empty());
  assert(p >= 0.0 && p <= 100.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0.0) return samples_.front();
  // Nearest-rank: smallest value with at least ceil(p/100 * N) samples <= it.
  const std::size_t n = samples_.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return samples_[rank - 1];
}

double PercentileTracker::mean() const {
  if (samples_.empty()) return 0.0;
  double acc = 0.0;
  for (double s : samples_) acc += s;
  return acc / static_cast<double>(samples_.size());
}

double PercentileTracker::max() const {
  assert(!samples_.empty());
  if (sorted_) return samples_.back();
  return *std::max_element(samples_.begin(), samples_.end());
}

LogHistogram::LogHistogram(double lo, double hi, double base)
    : lo_(lo), base_(base) {
  assert(lo > 0 && hi > lo && base > 1.0);
  std::size_t buckets = 1;
  for (double edge = lo * base; edge < hi; edge *= base) ++buckets;
  counts_.assign(buckets + 1, 0);  // final bucket catches [top_edge, inf)
}

void LogHistogram::add(double x) {
  std::size_t i = 0;
  if (x >= lo_) {
    i = static_cast<std::size_t>(std::log(x / lo_) / std::log(base_)) + 1;
    if (i >= counts_.size()) i = counts_.size() - 1;
  }
  ++counts_[i];
  ++total_;
}

double LogHistogram::bucket_lo(std::size_t i) const {
  if (i == 0) return 0.0;
  return lo_ * std::pow(base_, static_cast<double>(i - 1));
}

double LogHistogram::cdf(std::size_t i) const {
  if (total_ == 0) return 0.0;
  std::uint64_t acc = 0;
  for (std::size_t j = 0; j <= i && j < counts_.size(); ++j) acc += counts_[j];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

}  // namespace griffin::util
