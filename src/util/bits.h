// Bit-manipulation primitives shared by the codecs, the SIMT simulator and
// the query engines. All functions are constexpr-friendly and branch-free
// where the underlying builtins allow it.
#pragma once

#include <bit>
#include <cstdint>
#include <cassert>

namespace griffin::util {

/// Number of set bits in a 32-bit word (the CUDA `__popc` equivalent).
inline int popcount32(std::uint32_t x) { return std::popcount(x); }

/// Number of set bits in a 64-bit word (the CUDA `__popcll` equivalent).
inline int popcount64(std::uint64_t x) { return std::popcount(x); }

/// Floor of log2(x). Precondition: x > 0.
inline std::uint32_t floor_log2(std::uint64_t x) {
  assert(x > 0);
  return 63u - static_cast<std::uint32_t>(std::countl_zero(x));
}

/// Ceiling of log2(x). Precondition: x > 0. ceil_log2(1) == 0.
inline std::uint32_t ceil_log2(std::uint64_t x) {
  assert(x > 0);
  return x == 1 ? 0 : floor_log2(x - 1) + 1;
}

/// Number of bits needed to represent x (0 needs 1 bit by convention,
/// matching what a fixed-width bit packer must allocate).
inline std::uint32_t bit_width_or1(std::uint64_t x) {
  return x == 0 ? 1u : static_cast<std::uint32_t>(std::bit_width(x));
}

/// Position (0-based, from LSB) of the k-th (0-based) set bit in `word`.
/// Precondition: word has more than k set bits. This is the `select` half of
/// the Elias-Fano high-bits decode; a branchy loop is fine on the host side
/// because the SIMT simulator charges its own modeled cost.
inline int select_in_word(std::uint64_t word, int k) {
  assert(std::popcount(word) > k);
  for (;;) {
    int tz = std::countr_zero(word);
    if (k == 0) return tz;
    word &= word - 1;  // clear lowest set bit
    --k;
  }
}

/// Extract `len` bits starting at absolute bit offset `pos` from a packed
/// little-endian bit stream stored in 64-bit words. len must be <= 57 so the
/// value never spans more than two words... actually two-word handling below
/// supports any len <= 64.
inline std::uint64_t read_bits(const std::uint64_t* words, std::uint64_t pos,
                               std::uint32_t len) {
  if (len == 0) return 0;
  assert(len <= 64);
  const std::uint64_t word_idx = pos >> 6;
  const std::uint32_t bit_idx = static_cast<std::uint32_t>(pos & 63);
  std::uint64_t value = words[word_idx] >> bit_idx;
  if (bit_idx + len > 64) {
    value |= words[word_idx + 1] << (64 - bit_idx);
  }
  if (len == 64) return value;
  return value & ((std::uint64_t{1} << len) - 1);
}

/// Write `len` low bits of `value` at absolute bit offset `pos` into a packed
/// little-endian bit stream. The destination bits must be zero (append-style
/// writing), which every packer in this codebase guarantees.
inline void write_bits(std::uint64_t* words, std::uint64_t pos,
                       std::uint32_t len, std::uint64_t value) {
  if (len == 0) return;
  assert(len <= 64);
  if (len < 64) value &= ((std::uint64_t{1} << len) - 1);
  const std::uint64_t word_idx = pos >> 6;
  const std::uint32_t bit_idx = static_cast<std::uint32_t>(pos & 63);
  words[word_idx] |= value << bit_idx;
  if (bit_idx + len > 64) {
    words[word_idx + 1] |= value >> (64 - bit_idx);
  }
}

/// Words needed to hold `bits` bits.
inline std::uint64_t words_for_bits(std::uint64_t bits) {
  return (bits + 63) / 64;
}

/// Round x up to the next multiple of m (m > 0).
inline std::uint64_t round_up(std::uint64_t x, std::uint64_t m) {
  return (x + m - 1) / m * m;
}

/// Integer ceiling division.
inline std::uint64_t div_ceil(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace griffin::util
