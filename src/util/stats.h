// Latency statistics: percentile estimation over stored samples plus
// streaming summary moments. The tail-latency study (paper Figure 15) reports
// p80/p90/p95/p99/p99.9, so percentiles here are exact (nearest-rank over the
// full sample set), not sketched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace griffin::util {

/// Streaming mean / variance / min / max (Welford).
class SummaryStats {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  // population variance; 0 for fewer than 2 samples
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores every sample; answers exact percentile queries.
class PercentileTracker {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const { return samples_.size(); }

  /// Nearest-rank percentile, p in [0, 100]. Precondition: count() > 0.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double mean() const;
  double max() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-bucket histogram over log-spaced bucket edges; used by the workload
/// characterization bench (Figures 10 and 11) to print CDF rows.
class LogHistogram {
 public:
  /// Buckets: [lo, lo*base), [lo*base, lo*base^2), ... until >= hi.
  LogHistogram(double lo, double hi, double base);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  double bucket_lo(std::size_t i) const;
  std::uint64_t count(std::size_t i) const { return counts_[i]; }
  std::uint64_t total() const { return total_; }
  /// Cumulative fraction of samples with value < upper edge of bucket i.
  double cdf(std::size_t i) const;

 private:
  double lo_, base_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace griffin::util
