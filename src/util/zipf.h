// Zipf-distributed sampling over ranks 1..n. Term frequencies in web corpora
// follow a Zipf law, which is what gives real inverted indexes their heavily
// skewed list-size distribution (paper Figure 10). The sampler uses Hörmann's
// rejection-inversion method so it is O(1) per sample with no O(n) CDF table,
// which matters because the corpus generator draws hundreds of millions of
// samples over vocabularies of ~1M terms.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace griffin::util {

/// Samples ranks from a Zipf(s) distribution over {1, ..., n}:
/// P(k) proportional to 1 / k^s, with s > 0, s != 1 handled too.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s);

  /// Draw one rank in [1, n].
  std::uint64_t operator()(Xoshiro256& rng) const;

  std::uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double h(double x) const;
  double h_integral(double x) const;
  double h_integral_inverse(double x) const;

  std::uint64_t n_;
  double s_;
  double h_integral_x1_;
  double h_integral_num_elements_;
  double threshold_;  // s_ applied to x = 1: shortcut acceptance bound
};

}  // namespace griffin::util
