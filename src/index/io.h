// Binary index persistence. Real IR deployments build indexes offline and
// serve them from disk images; the bench harness also uses this to cache the
// synthetic corpora between runs. Format: little-endian, versioned, no
// attempt at cross-endian portability.
#pragma once

#include <string>

#include "index/inverted_index.h"

namespace griffin::index {

/// Writes the index to `path` (overwrites). Throws std::runtime_error on IO
/// failure.
void save_index(const InvertedIndex& idx, const std::string& path);

/// Reads an index previously written by save_index. Throws
/// std::runtime_error on IO failure or a format/version mismatch.
InvertedIndex load_index(const std::string& path);

}  // namespace griffin::index
