// Document-partitioned shard extraction. A cluster serves one logical index
// as N document-partitioned shards: every document lives on exactly one
// shard, and each shard holds, for every term, the sub-list of postings
// whose documents it owns. Conjunctive queries then decompose perfectly —
// a doc matches all terms iff it matches them within its own shard — so a
// broker can scatter a query to all shards and merge per-shard top-k heaps
// into the exact global top-k (src/cluster/broker.h).
//
// Two properties make shard-local scoring *bit-identical* to single-node:
//   1. every shard carries the full collection DocTable (global N, global
//      avg length, global per-doc lengths), and
//   2. every shard's per-term df is overridden with the collection-wide
//      posting count (InvertedIndex::set_df_override), not the shard-local
//      sub-list length.
// Without these, BM25's idf and length normalization would drift per shard
// and the merged top-k would disagree with the unpartitioned engine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "index/inverted_index.h"

namespace griffin::index {

/// Sentinel for "this shard holds no postings for that global term".
inline constexpr TermId kTermAbsent = static_cast<TermId>(-1);

/// One document-partitioned shard: a self-contained InvertedIndex (dense
/// *local* TermIds, docIDs kept in the *global* docID space) plus the
/// two-way term-id mapping the broker uses to translate queries.
struct IndexShard {
  std::uint32_t id = 0;
  InvertedIndex index{codec::Scheme::kEliasFano};
  std::vector<TermId> local_term;   ///< global TermId -> local (kTermAbsent)
  std::vector<TermId> global_term;  ///< local TermId -> global

  bool has_term(TermId global) const {
    return global < local_term.size() && local_term[global] != kTermAbsent;
  }

  /// Rewrites a global term set into this shard's local TermIds. Returns
  /// false when any term has no postings here — the conjunctive result on
  /// this shard is then provably empty and the engine call can be skipped.
  bool translate_terms(std::span<const TermId> global,
                       std::vector<TermId>& local) const;
};

/// Splits `full` into shards following `doc_shard` (docID -> shard id; one
/// entry per document, values < num_shards). Preserves scheme/block size,
/// copies the full DocTable into every shard, and installs global-df
/// overrides so per-shard BM25 equals global BM25 exactly.
std::vector<IndexShard> extract_shards(const InvertedIndex& full,
                                       std::span<const std::uint32_t> doc_shard,
                                       std::uint32_t num_shards);

}  // namespace griffin::index
