#include "index/io.h"

#include <cstdio>
#include <memory>
#include <stdexcept>

namespace griffin::index {

namespace {

constexpr std::uint64_t kMagic = 0x4752494646494E31ull;  // "GRIFFIN1"
constexpr std::uint32_t kVersion = 2;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void write_raw(std::FILE* f, const void* p, std::size_t bytes) {
  if (std::fwrite(p, 1, bytes, f) != bytes) {
    throw std::runtime_error("index save: short write");
  }
}
void read_raw(std::FILE* f, void* p, std::size_t bytes) {
  if (std::fread(p, 1, bytes, f) != bytes) {
    throw std::runtime_error("index load: short read");
  }
}

template <typename T>
void write_pod(std::FILE* f, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_raw(f, &v, sizeof(T));
}
template <typename T>
T read_pod(std::FILE* f) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  read_raw(f, &v, sizeof(T));
  return v;
}

template <typename T>
void write_vec(std::FILE* f, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod<std::uint64_t>(f, v.size());
  if (!v.empty()) write_raw(f, v.data(), v.size() * sizeof(T));
}
template <typename T>
std::vector<T> read_vec(std::FILE* f) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = read_pod<std::uint64_t>(f);
  std::vector<T> v(n);
  if (n > 0) read_raw(f, v.data(), n * sizeof(T));
  return v;
}

}  // namespace

void save_index(const InvertedIndex& idx, const std::string& path) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("index save: cannot open " + path);

  write_pod(f.get(), kMagic);
  write_pod(f.get(), kVersion);
  write_pod<std::uint8_t>(f.get(), static_cast<std::uint8_t>(idx.scheme()));
  write_pod<std::uint32_t>(f.get(), idx.block_size());

  // Document table.
  const auto& docs = idx.docs();
  write_pod<std::uint64_t>(f.get(), docs.num_docs());
  for (DocId d = 0; d < docs.num_docs(); ++d) {
    write_pod<std::uint32_t>(f.get(), docs.length(d));
  }

  // Posting lists.
  write_pod<std::uint64_t>(f.get(), idx.num_terms());
  for (TermId t = 0; t < idx.num_terms(); ++t) {
    const PostingList& pl = idx.list(t);
    write_pod<std::uint64_t>(f.get(), pl.docids.size());
    std::vector<std::uint64_t> blob(pl.docids.blob().begin(),
                                    pl.docids.blob().end());
    write_vec(f.get(), blob);
    std::vector<codec::BlockMeta> metas(pl.docids.metas().begin(),
                                        pl.docids.metas().end());
    write_vec(f.get(), metas);
    write_vec(f.get(), pl.freqs);
  }
}

InvertedIndex load_index(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("index load: cannot open " + path);

  if (read_pod<std::uint64_t>(f.get()) != kMagic) {
    throw std::runtime_error("index load: bad magic");
  }
  if (read_pod<std::uint32_t>(f.get()) != kVersion) {
    throw std::runtime_error("index load: version mismatch");
  }
  const auto scheme = static_cast<codec::Scheme>(read_pod<std::uint8_t>(f.get()));
  const auto block_size = read_pod<std::uint32_t>(f.get());

  InvertedIndex idx(scheme, block_size);
  const auto ndocs = read_pod<std::uint64_t>(f.get());
  idx.docs().resize(ndocs);
  for (std::uint64_t d = 0; d < ndocs; ++d) {
    idx.docs().set_length(static_cast<DocId>(d), read_pod<std::uint32_t>(f.get()));
  }

  const auto nterms = read_pod<std::uint64_t>(f.get());
  for (std::uint64_t t = 0; t < nterms; ++t) {
    const auto size = read_pod<std::uint64_t>(f.get());
    auto blob = read_vec<std::uint64_t>(f.get());
    auto metas = read_vec<codec::BlockMeta>(f.get());
    PostingList pl;
    pl.docids = codec::BlockCompressedList::from_parts(
        scheme, block_size, size, std::move(blob), std::move(metas));
    pl.freqs = read_vec<std::uint8_t>(f.get());
    if (pl.freqs.size() != pl.docids.size()) {
      throw std::runtime_error("index load: freqs/docids size mismatch");
    }
    idx.add_list_raw(std::move(pl));
  }
  return idx;
}

}  // namespace griffin::index
