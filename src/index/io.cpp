#include "index/io.h"

#include <cstdio>
#include <memory>
#include <stdexcept>

namespace griffin::index {

namespace {

constexpr std::uint64_t kMagic = 0x4752494646494E31ull;  // "GRIFFIN1"
// v2: single index-wide scheme, raw (pre-tagged-header) BlockMeta structs.
// v3: codec policy (fixed scheme + adaptive flag), a scheme byte per list,
//     and field-by-field BlockMeta records (no struct padding on disk).
constexpr std::uint32_t kVersionLegacy = 2;
constexpr std::uint32_t kVersion = 3;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void write_raw(std::FILE* f, const void* p, std::size_t bytes) {
  if (std::fwrite(p, 1, bytes, f) != bytes) {
    throw std::runtime_error("index save: short write");
  }
}
void read_raw(std::FILE* f, void* p, std::size_t bytes) {
  if (std::fread(p, 1, bytes, f) != bytes) {
    throw std::runtime_error("index load: short read");
  }
}

template <typename T>
void write_pod(std::FILE* f, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_raw(f, &v, sizeof(T));
}
template <typename T>
T read_pod(std::FILE* f) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  read_raw(f, &v, sizeof(T));
  return v;
}

template <typename T>
void write_vec(std::FILE* f, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod<std::uint64_t>(f, v.size());
  if (!v.empty()) write_raw(f, v.data(), v.size() * sizeof(T));
}
template <typename T>
std::vector<T> read_vec(std::FILE* f) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = read_pod<std::uint64_t>(f);
  std::vector<T> v(n);
  if (n > 0) read_raw(f, v.data(), n * sizeof(T));
  return v;
}

void write_meta(std::FILE* f, const codec::BlockMeta& m) {
  write_pod<std::uint32_t>(f, m.first);
  write_pod<std::uint32_t>(f, m.last);
  write_pod<std::uint64_t>(f, m.bit_offset);
  write_pod<std::uint16_t>(f, m.count);
  write_pod<std::uint8_t>(f, static_cast<std::uint8_t>(m.hdr.scheme));
  write_pod<std::uint8_t>(f, m.hdr.b);
  write_pod<std::uint16_t>(f, m.hdr.h16a);
  write_pod<std::uint16_t>(f, m.hdr.h16b);
  write_pod<std::uint32_t>(f, m.hdr.h32);
}

codec::BlockMeta read_meta(std::FILE* f) {
  codec::BlockMeta m;
  m.first = read_pod<std::uint32_t>(f);
  m.last = read_pod<std::uint32_t>(f);
  m.bit_offset = read_pod<std::uint64_t>(f);
  m.count = read_pod<std::uint16_t>(f);
  m.hdr.scheme = static_cast<codec::Scheme>(read_pod<std::uint8_t>(f));
  m.hdr.b = read_pod<std::uint8_t>(f);
  m.hdr.h16a = read_pod<std::uint16_t>(f);
  m.hdr.h16b = read_pod<std::uint16_t>(f);
  m.hdr.h32 = read_pod<std::uint32_t>(f);
  return m;
}

/// The exact in-memory block metadata layout v2 files were written with
/// (raw fwrite of the struct, padding included): both per-scheme headers
/// inline, only one of them meaningful.
struct LegacyBlockMetaV2 {
  DocId first = 0;
  DocId last = 0;
  std::uint64_t bit_offset = 0;
  std::uint16_t count = 0;
  codec::PForHeader pfor;
  codec::EFHeader ef;
};
static_assert(sizeof(LegacyBlockMetaV2) == 32,
              "v2 on-disk meta layout drifted; the legacy reader is wrong");

codec::BlockMeta upgrade_meta(const LegacyBlockMetaV2& l,
                              codec::Scheme scheme) {
  codec::BlockMeta m;
  m.first = l.first;
  m.last = l.last;
  m.bit_offset = l.bit_offset;
  m.count = l.count;
  switch (scheme) {
    case codec::Scheme::kPForDelta:
      m.hdr = codec::BlockHeader::from_pfor(l.pfor);
      break;
    case codec::Scheme::kEliasFano:
      m.hdr = codec::BlockHeader::from_ef(l.ef);
      break;
    default:  // VByte / Simple16: header-free blocks
      m.hdr = codec::BlockHeader{};
      m.hdr.scheme = scheme;
      break;
  }
  return m;
}

}  // namespace

void save_index(const InvertedIndex& idx, const std::string& path) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("index save: cannot open " + path);

  write_pod(f.get(), kMagic);
  write_pod(f.get(), kVersion);
  write_pod<std::uint8_t>(f.get(), static_cast<std::uint8_t>(idx.scheme()));
  write_pod<std::uint8_t>(f.get(), idx.adaptive() ? 1 : 0);
  write_pod<std::uint32_t>(f.get(), idx.block_size());

  // Document table.
  const auto& docs = idx.docs();
  write_pod<std::uint64_t>(f.get(), docs.num_docs());
  for (DocId d = 0; d < docs.num_docs(); ++d) {
    write_pod<std::uint32_t>(f.get(), docs.length(d));
  }

  // Posting lists, each tagged with its own scheme.
  write_pod<std::uint64_t>(f.get(), idx.num_terms());
  for (TermId t = 0; t < idx.num_terms(); ++t) {
    const PostingList& pl = idx.list(t);
    write_pod<std::uint64_t>(f.get(), pl.docids.size());
    write_pod<std::uint8_t>(f.get(),
                            static_cast<std::uint8_t>(pl.docids.scheme()));
    std::vector<std::uint64_t> blob(pl.docids.blob().begin(),
                                    pl.docids.blob().end());
    write_vec(f.get(), blob);
    write_pod<std::uint64_t>(f.get(), pl.docids.metas().size());
    for (const codec::BlockMeta& m : pl.docids.metas()) {
      write_meta(f.get(), m);
    }
    write_vec(f.get(), pl.freqs);
  }
}

InvertedIndex load_index(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("index load: cannot open " + path);

  if (read_pod<std::uint64_t>(f.get()) != kMagic) {
    throw std::runtime_error("index load: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(f.get());
  if (version != kVersion && version != kVersionLegacy) {
    throw std::runtime_error("index load: version mismatch");
  }
  CodecPolicy policy;
  policy.fixed = static_cast<codec::Scheme>(read_pod<std::uint8_t>(f.get()));
  if (version >= kVersion) {
    policy.adaptive = read_pod<std::uint8_t>(f.get()) != 0;
  }
  const auto block_size = read_pod<std::uint32_t>(f.get());

  InvertedIndex idx(policy, block_size);
  const auto ndocs = read_pod<std::uint64_t>(f.get());
  idx.docs().resize(ndocs);
  for (std::uint64_t d = 0; d < ndocs; ++d) {
    idx.docs().set_length(static_cast<DocId>(d), read_pod<std::uint32_t>(f.get()));
  }

  const auto nterms = read_pod<std::uint64_t>(f.get());
  for (std::uint64_t t = 0; t < nterms; ++t) {
    const auto size = read_pod<std::uint64_t>(f.get());
    codec::Scheme scheme = policy.fixed;
    if (version >= kVersion) {
      scheme = static_cast<codec::Scheme>(read_pod<std::uint8_t>(f.get()));
    }
    auto blob = read_vec<std::uint64_t>(f.get());
    std::vector<codec::BlockMeta> metas;
    if (version >= kVersion) {
      const auto nmetas = read_pod<std::uint64_t>(f.get());
      metas.reserve(nmetas);
      for (std::uint64_t i = 0; i < nmetas; ++i) {
        metas.push_back(read_meta(f.get()));
      }
    } else {
      for (const auto& l : read_vec<LegacyBlockMetaV2>(f.get())) {
        metas.push_back(upgrade_meta(l, scheme));
      }
    }
    PostingList pl;
    pl.docids = codec::BlockCompressedList::from_parts(
        scheme, block_size, size, std::move(blob), std::move(metas));
    pl.freqs = read_vec<std::uint8_t>(f.get());
    if (pl.freqs.size() != pl.docids.size()) {
      throw std::runtime_error("index load: freqs/docids size mismatch");
    }
    idx.add_list_raw(std::move(pl));
  }
  return idx;
}

}  // namespace griffin::index
