// Term dictionary: interned term strings <-> dense TermIds. The front door
// of a real engine (queries arrive as words, not ids); kept separate from
// InvertedIndex so id-only pipelines (the synthetic workloads) skip it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "index/inverted_index.h"

namespace griffin::index {

class Dictionary {
 public:
  /// Returns the term's id, interning it if new.
  TermId add(std::string_view term);

  /// Lookup without interning.
  std::optional<TermId> find(std::string_view term) const;

  /// The term string for an id. Precondition: id < size().
  const std::string& term(TermId id) const { return terms_[id]; }

  std::size_t size() const { return terms_.size(); }

  /// Tokenizes whitespace-separated text into (existing or new) TermIds.
  std::vector<TermId> tokenize_interning(std::string_view text);

  /// Tokenizes, dropping unknown terms (query-time behaviour).
  std::vector<TermId> tokenize(std::string_view text) const;

 private:
  /// Keeps ids_'s string_view keys valid across vector growth.
  void arena_rekey();

  std::vector<std::string> terms_;
  std::unordered_map<std::string_view, TermId> ids_;
  std::size_t keyed_capacity_ = 0;
};

}  // namespace griffin::index
