#include "index/inverted_index.h"

#include <algorithm>
#include <cassert>

namespace griffin::index {

TermId InvertedIndex::add_list(std::span<const DocId> docids,
                               std::span<const std::uint32_t> freqs) {
  const Scheme s = policy_.adaptive
                       ? codec::select_scheme(docids, block_size_)
                       : policy_.fixed;
  return add_list_as(s, docids, freqs);
}

TermId InvertedIndex::add_list_as(Scheme scheme, std::span<const DocId> docids,
                                  std::span<const std::uint32_t> freqs) {
  if (docids.empty()) throw std::invalid_argument("empty posting list");
  if (!freqs.empty() && freqs.size() != docids.size()) {
    throw std::invalid_argument("freqs size mismatch");
  }
  PostingList pl;
  pl.docids = codec::BlockCompressedList::build(docids, scheme, block_size_);
  pl.freqs.resize(docids.size(), 1);
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    pl.freqs[i] = static_cast<std::uint8_t>(std::min<std::uint32_t>(freqs[i], 255));
  }
  lists_.push_back(std::move(pl));
  return static_cast<TermId>(lists_.size() - 1);
}

std::uint64_t InvertedIndex::total_postings() const {
  std::uint64_t n = 0;
  for (const auto& l : lists_) n += l.size();
  return n;
}

std::uint64_t InvertedIndex::compressed_docid_bytes() const {
  std::uint64_t n = 0;
  for (const auto& l : lists_) n += l.docids.compressed_bytes();
  return n;
}

void IndexBuilder::add_document(
    DocId doc, std::span<const std::pair<TermId, std::uint32_t>> terms) {
  if (any_doc_ && doc <= max_doc_) {
    throw std::invalid_argument("documents must arrive in increasing order");
  }
  any_doc_ = true;
  max_doc_ = doc;
  if (doc_lengths_.size() <= doc) doc_lengths_.resize(doc + 1, 0);

  std::uint32_t len = 0;
  for (const auto& [term, tf] : terms) {
    assert(tf > 0);
    len += tf;
    if (postings_.size() <= term) postings_.resize(term + 1);
    postings_[term].docs.push_back(doc);
    postings_[term].tfs.push_back(tf);
  }
  doc_lengths_[doc] = len;
}

InvertedIndex IndexBuilder::build() {
  InvertedIndex idx(policy_, block_size_);
  idx.docs().resize(doc_lengths_.size());
  for (DocId d = 0; d < doc_lengths_.size(); ++d) {
    idx.docs().set_length(d, doc_lengths_[d]);
  }
  for (auto& acc : postings_) {
    if (acc.docs.empty()) {
      // Preserve TermId alignment for callers that assigned ids densely:
      // an index cannot hold empty lists, so synthesize a one-posting list
      // for doc 0 with tf 0 is not meaningful either — instead reject.
      throw std::logic_error("term with no postings (non-dense TermIds?)");
    }
    idx.add_list(acc.docs, acc.tfs);
  }
  return idx;
}

}  // namespace griffin::index
