// The inverted index substrate: per-term compressed posting lists (docIDs in
// a BlockCompressedList, term frequencies alongside), a document table with
// the statistics BM25 needs, and index-wide stats for the compression
// experiments. Built either from documents (IndexBuilder) or directly from
// synthesized posting lists (the workload generator's path).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "codec/block_codec.h"
#include "codec/codec.h"

namespace griffin::index {

using codec::DocId;
using codec::Scheme;
using TermId = std::uint32_t;

/// How the index picks each list's compression scheme. The default is a
/// single fixed scheme for every list (the pre-zoo behavior); with
/// `adaptive` set, each list is routed through codec::select_scheme and
/// `fixed` only names the index's headline scheme (reported by scheme(),
/// used for lists the selector is never consulted about — there are none
/// today, but deserialization keeps it meaningful).
struct CodecPolicy {
  Scheme fixed = Scheme::kEliasFano;
  bool adaptive = false;
};

/// Per-document metadata. Lengths feed BM25's length normalization.
class DocTable {
 public:
  void resize(std::size_t n) { lengths_.resize(n, 0); }
  void set_length(DocId d, std::uint32_t len) { lengths_[d] = len; }
  std::uint32_t length(DocId d) const { return lengths_[d]; }
  std::size_t num_docs() const { return lengths_.size(); }

  double avg_length() const {
    if (lengths_.empty()) return 0.0;
    std::uint64_t total = 0;
    for (std::uint32_t l : lengths_) total += l;
    return static_cast<double>(total) / static_cast<double>(lengths_.size());
  }

 private:
  std::vector<std::uint32_t> lengths_;
};

/// One term's postings: compressed docIDs plus a parallel term-frequency
/// array (tf clamped to 255; web-scale BM25 saturates far below that).
struct PostingList {
  codec::BlockCompressedList docids;
  std::vector<std::uint8_t> freqs;

  std::uint64_t size() const { return docids.size(); }

  /// Term frequency of the posting at position `pos` in the list.
  std::uint32_t tf_at(std::uint64_t pos) const { return freqs[pos]; }
};

class InvertedIndex {
 public:
  InvertedIndex(Scheme scheme, std::uint32_t block_size = codec::kDefaultBlockSize)
      : policy_{scheme, false}, block_size_(block_size) {}
  InvertedIndex(CodecPolicy policy,
                std::uint32_t block_size = codec::kDefaultBlockSize)
      : policy_(policy), block_size_(block_size) {}

  /// The index's headline scheme (the fixed scheme; under an adaptive
  /// policy individual lists may differ — ask list(t).docids.scheme()).
  Scheme scheme() const { return policy_.fixed; }
  const CodecPolicy& policy() const { return policy_; }
  bool adaptive() const { return policy_.adaptive; }
  std::uint32_t block_size() const { return block_size_; }

  /// Adds a posting list for the next TermId; returns that id. `docids` must
  /// be strictly increasing; freqs parallel (empty = all-1). Under an
  /// adaptive policy the list's scheme comes from codec::select_scheme.
  TermId add_list(std::span<const DocId> docids,
                  std::span<const std::uint32_t> freqs = {});

  /// Adds a posting list compressed with an explicit scheme, bypassing the
  /// policy (shard extraction preserving source schemes; forced-scheme
  /// parity tests).
  TermId add_list_as(Scheme scheme, std::span<const DocId> docids,
                     std::span<const std::uint32_t> freqs = {});

  /// Adds an already-compressed list (deserialization path; index/io.h).
  TermId add_list_raw(PostingList&& pl) {
    lists_.push_back(std::move(pl));
    return static_cast<TermId>(lists_.size() - 1);
  }

  std::size_t num_terms() const { return lists_.size(); }
  const PostingList& list(TermId t) const {
    if (t >= lists_.size()) throw std::out_of_range("unknown term");
    return lists_[t];
  }

  /// Document frequency used for scoring. By default a term's df is its
  /// posting-list length; a document-partitioned shard overrides it with the
  /// *collection-wide* df so shard-local BM25 reproduces the global scores
  /// exactly (index/shard.h sets this during extraction).
  std::uint64_t df(TermId t) const {
    if (t < df_override_.size()) return df_override_[t];
    return list(t).size();
  }
  /// Installs per-term collection-wide dfs (parallel to TermIds). Empty
  /// clears the override.
  void set_df_override(std::vector<std::uint64_t> df) {
    df_override_ = std::move(df);
  }
  bool has_df_override() const { return !df_override_.empty(); }

  DocTable& docs() { return docs_; }
  const DocTable& docs() const { return docs_; }

  /// Uncompressed postings count across all lists.
  std::uint64_t total_postings() const;
  /// Compressed docID bytes across all lists (Table 1's numerator... the
  /// denominator: raw is 4 bytes per posting).
  std::uint64_t compressed_docid_bytes() const;
  double compression_ratio() const {
    const std::uint64_t c = compressed_docid_bytes();
    return c == 0 ? 0.0
                  : static_cast<double>(total_postings() * 4) /
                        static_cast<double>(c);
  }

 private:
  CodecPolicy policy_;
  std::uint32_t block_size_;
  std::vector<PostingList> lists_;
  std::vector<std::uint64_t> df_override_;
  DocTable docs_;
};

/// Accumulates (term, doc, tf) postings document-by-document, then freezes
/// them into an InvertedIndex. Documents must be added in increasing DocId
/// order (the natural order of a crawl pass).
class IndexBuilder {
 public:
  explicit IndexBuilder(Scheme scheme,
                        std::uint32_t block_size = codec::kDefaultBlockSize)
      : policy_{scheme, false}, block_size_(block_size) {}
  explicit IndexBuilder(CodecPolicy policy,
                        std::uint32_t block_size = codec::kDefaultBlockSize)
      : policy_(policy), block_size_(block_size) {}

  /// Registers a document given its bag of words as (term, tf) pairs.
  /// Length (token count) is the sum of tfs.
  void add_document(DocId doc,
                    std::span<const std::pair<TermId, std::uint32_t>> terms);

  /// Number of distinct terms seen so far.
  std::size_t num_terms() const { return postings_.size(); }

  InvertedIndex build();

 private:
  struct Accum {
    std::vector<DocId> docs;
    std::vector<std::uint32_t> tfs;
  };
  CodecPolicy policy_;
  std::uint32_t block_size_;
  std::vector<Accum> postings_;  // by TermId
  std::vector<std::uint32_t> doc_lengths_;
  DocId max_doc_ = 0;
  bool any_doc_ = false;
};

}  // namespace griffin::index
