#include "index/dictionary.h"

#include <cctype>

namespace griffin::index {

namespace {
/// Splits on whitespace; lowercases ASCII.
template <typename Fn>
void for_each_token(std::string_view text, Fn&& fn) {
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    std::size_t j = i;
    while (j < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[j]))) {
      ++j;
    }
    if (j > i) {
      std::string tok(text.substr(i, j - i));
      for (char& c : tok) c = static_cast<char>(std::tolower(
          static_cast<unsigned char>(c)));
      fn(tok);
    }
    i = j;
  }
}
}  // namespace

TermId Dictionary::add(std::string_view term) {
  if (const auto it = ids_.find(term); it != ids_.end()) return it->second;
  // Intern: stable string storage; string_view keys point into terms_.
  // Reserve avoids string moves invalidating views for small-string cases:
  // std::string contents move with the vector, so store via unique strings
  // whose heap buffers are stable... small strings live inline, so rebuild
  // the key from the stored string after push_back.
  terms_.emplace_back(term);
  const auto id = static_cast<TermId>(terms_.size() - 1);
  // NOTE: vector growth relocates the inline buffers of small strings; keep
  // the map keyed by views into a stable arena instead.
  arena_rekey();
  return id;
}

void Dictionary::arena_rekey() {
  // Rebuild the view map only when the vector reallocated (amortized O(1)).
  if (terms_.capacity() != keyed_capacity_) {
    ids_.clear();
    for (std::size_t i = 0; i < terms_.size(); ++i) {
      ids_.emplace(std::string_view(terms_[i]), static_cast<TermId>(i));
    }
    keyed_capacity_ = terms_.capacity();
  } else {
    const auto id = static_cast<TermId>(terms_.size() - 1);
    ids_.emplace(std::string_view(terms_.back()), id);
  }
}

std::optional<TermId> Dictionary::find(std::string_view term) const {
  if (const auto it = ids_.find(term); it != ids_.end()) return it->second;
  return std::nullopt;
}

std::vector<TermId> Dictionary::tokenize_interning(std::string_view text) {
  std::vector<TermId> out;
  for_each_token(text, [&](const std::string& tok) { out.push_back(add(tok)); });
  return out;
}

std::vector<TermId> Dictionary::tokenize(std::string_view text) const {
  std::vector<TermId> out;
  for_each_token(text, [&](const std::string& tok) {
    if (const auto id = find(tok)) out.push_back(*id);
  });
  return out;
}

}  // namespace griffin::index
