#include "index/shard.h"

#include <stdexcept>

namespace griffin::index {

bool IndexShard::translate_terms(std::span<const TermId> global,
                                 std::vector<TermId>& local) const {
  local.clear();
  local.reserve(global.size());
  for (const TermId t : global) {
    if (!has_term(t)) return false;
    local.push_back(local_term[t]);
  }
  return true;
}

std::vector<IndexShard> extract_shards(const InvertedIndex& full,
                                       std::span<const std::uint32_t> doc_shard,
                                       std::uint32_t num_shards) {
  if (num_shards == 0) throw std::invalid_argument("num_shards must be > 0");
  if (doc_shard.size() < full.docs().num_docs()) {
    throw std::invalid_argument("doc_shard must cover every document");
  }

  std::vector<IndexShard> shards(num_shards);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    shards[s].id = s;
    shards[s].index = InvertedIndex(full.policy(), full.block_size());
    // Full DocTable copy: global N / avg length / per-doc lengths, and the
    // global docID space stays addressable from every shard.
    shards[s].index.docs() = full.docs();
    shards[s].local_term.assign(full.num_terms(), kTermAbsent);
  }

  // Per-shard global-df overrides, grown as local lists are added.
  std::vector<std::vector<std::uint64_t>> df(num_shards);

  std::vector<DocId> docids;
  std::vector<std::vector<DocId>> part_docs(num_shards);
  std::vector<std::vector<std::uint32_t>> part_tfs(num_shards);
  for (TermId t = 0; t < full.num_terms(); ++t) {
    const PostingList& pl = full.list(t);
    pl.docids.decode_all(docids);
    for (auto& v : part_docs) v.clear();
    for (auto& v : part_tfs) v.clear();
    for (std::uint64_t i = 0; i < docids.size(); ++i) {
      const DocId d = docids[i];
      const std::uint32_t s = doc_shard[d];
      if (s >= num_shards) throw std::out_of_range("doc_shard entry too big");
      part_docs[s].push_back(d);
      part_tfs[s].push_back(pl.tf_at(i));
    }
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      if (part_docs[s].empty()) continue;  // term absent on this shard
      const TermId local = shards[s].index.add_list(part_docs[s], part_tfs[s]);
      shards[s].local_term[t] = local;
      shards[s].global_term.push_back(t);
      df[s].push_back(pl.size());
    }
  }

  for (std::uint32_t s = 0; s < num_shards; ++s) {
    shards[s].index.set_df_override(std::move(df[s]));
  }
  return shards;
}

}  // namespace griffin::index
