// Multi-tenant device ownership (DESIGN.md §12). Every engine so far charged
// a query as if it owned the GPU: a private sim::Timeline per query, reset
// at begin_query. The DeviceManager inverts that: it owns ONE shared
// timeline spanning all co-admitted queries, so the per-resource busy
// clocks (kernel pipeline, dual copy engines, host core) serialize ops
// *across* queries — one tenant's H2D rides under another tenant's
// intersect kernels, and contention shows up as queueing on the clocks
// instead of being wished away.
//
// Three mechanisms:
//   * an admission window of `max_concurrency` lanes — each lane holds one
//     in-flight query with its own planner/executor and per-lane caches;
//     queued queries admit FIFO into the lane that freed earliest;
//   * min-frontier interleaved stepping — the lane whose next step issues
//     earliest on the shared timeline runs next, so ops are recorded in
//     (approximately) nondecreasing simulated time and the busy clocks'
//     FCFS semantics stay honest;
//   * cross-query kernel batching (tenancy/batch.h) — compatible GPU
//     decode/intersect steps ready within a small window fuse into one
//     launch with shared overhead and a warp-fill bonus.
//
// Results are bit-identical to sequential execution (the golden parity
// test asserts it): tenancy and batching reshape *timing* only.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/executor.h"
#include "core/hybrid_engine.h"
#include "core/planner.h"
#include "core/scheduler.h"
#include "cpu/bm25.h"
#include "cpu/decoded_cache.h"
#include "cpu/svs_step.h"
#include "fault/fault.h"
#include "gpu/engine.h"
#include "index/inverted_index.h"
#include "sim/hardware_spec.h"
#include "sim/timeline.h"
#include "tenancy/batch.h"

namespace griffin::tenancy {

struct TenancyOptions {
  /// Admission window: queries allowed on the device concurrently. 1
  /// degenerates to a sequential device (still on the shared timeline).
  std::uint32_t max_concurrency = 4;
  /// Cross-query kernel batching (tenancy/batch.h).
  BatchOptions batch;
  /// Per-lane engine configuration (scheduler policy, GPU options, CPU
  /// options). Arming engine.faults arms the shared device's injector
  /// (DESIGN.md §16): every lane draws from the same seeded coordinate
  /// space keyed by (engine.fault_scope, query id, step index), so an armed
  /// tenant run injects exactly the faults the same queries would draw
  /// sequentially — a fault inside a fused batch degrades only the hit
  /// query, and survivors' accounting on the shared timeline stays exact.
  core::HybridOptions engine;
};

/// One query offered to the device, with its arrival time. Arrivals must be
/// nondecreasing across a load vector.
struct TenantQuery {
  core::Query query;
  sim::Duration arrival;
};

/// One query's outcome: the usual QueryResult (metrics.total is the query's
/// span on the shared timeline, admission to last op) plus the queueing
/// timestamps. response time = finish - arrival.
struct TenantResult {
  core::QueryResult result;
  sim::Duration arrival;
  sim::Duration release;  ///< admission time (streams opened here)
  sim::Duration finish;   ///< release + result.metrics.total
  bool shed = false;      ///< rejected by admission control; result empty
};

class DeviceManager {
 public:
  DeviceManager(const index::InvertedIndex& idx, sim::HardwareSpec hw = {},
                TenancyOptions opt = {});
  ~DeviceManager();

  /// Runs the whole load through the shared device. `max_in_system` > 0
  /// sheds a query at arrival when that many queries are already in the
  /// system (admitted-but-unfinished + queued), mirroring the FCFS
  /// service sim's admission control. Resets the shared timeline; per-lane
  /// caches persist across run() calls (a warm serving system).
  std::vector<TenantResult> run(std::span<const TenantQuery> load,
                                std::uint32_t max_in_system = 0);

  /// The shared timeline of the last run(): horizon, per-resource busy.
  const sim::Timeline& timeline() const { return tl_; }

  /// Per-resource busy fractions of the last run()'s horizon, indexed by
  /// sim::Resource.
  std::array<double, sim::kNumResources> busy_fractions() const;

  /// Cross-query batches composed by the last run().
  std::uint64_t batch_groups() const { return composer_.groups(); }

  /// Engine-level fault counters aggregated across every query of the last
  /// run(), shed rejections included — the per-query counters live in each
  /// TenantResult's metrics; this is the device-wide rollup the service sim
  /// and the chaos harness read.
  const fault::FaultCounters& run_faults() const { return run_faults_; }

  const TenancyOptions& options() const { return opt_; }

 private:
  struct Lane;

  void admit(Lane& lane, const TenantQuery& tq, std::size_t slot);
  /// Runs lane's ready step (plus any batch members), pumps each member's
  /// planner, and finishes members whose plans drained.
  void step(std::vector<TenantResult>& results);
  void finish(Lane& lane, std::vector<TenantResult>& results);

  const index::InvertedIndex* idx_;
  sim::HardwareSpec hw_;
  TenancyOptions opt_;
  core::Scheduler sched_;
  cpu::Bm25Scorer scorer_;
  /// Shared injector for all lanes (before lanes_: executors point at it).
  /// Lanes receive it only when opt_.engine.faults arms an engine site.
  fault::FaultInjector injector_;
  sim::Timeline tl_;
  BatchComposer composer_;
  fault::FaultCounters run_faults_;  ///< rollup of the last run()
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::uint32_t active_ = 0;  ///< lanes with an in-flight query
  /// Completion times of finished queries in the current run() — the
  /// in-system count at an arrival needs "finished later than t".
  std::vector<sim::Duration> finishes_;
};

}  // namespace griffin::tenancy
