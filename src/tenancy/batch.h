// Cross-query kernel batching (DESIGN.md §12). When several co-admitted
// queries have a GPU decode or intersect step ready at nearly the same
// simulated time, a real server would fuse them into one grid (GPUSparse's
// batched parallel traversal; GRAB-ANNS's throughput-first batching —
// PAPERS.md): one launch, the lanes of underfilled kernels co-resident on
// the SMs. The BatchComposer finds those coalescing opportunities among the
// DeviceManager's active lanes; the timing discount itself lives in
// gpu::GpuExecutor::charge_kernel (shared launch overhead split K ways,
// body time scaled by warp fill). Batching never touches result bits —
// each member still runs its own kernels over its own data.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/plan.h"
#include "core/query.h"
#include "sim/time.h"
#include "sim/timeline.h"

namespace griffin::tenancy {

struct BatchOptions {
  bool enabled = true;
  /// How far ahead of the leader's frontier a co-tenant step may be and
  /// still join its batch — the launch-coalescing window a batching driver
  /// would hold a kernel for. Modeled after the kernel launch overhead
  /// (~10us): waiting longer than a couple of launches defeats the purpose.
  sim::Duration window = sim::Duration::from_us(20.0);
  /// Cap on queries fused into one launch.
  std::uint32_t max_batch = 8;
};

/// A step another query's identical-kind GPU step can fuse with: GPU-placed
/// decode or intersect. Transfers, prefetches, ranking, and CPU steps never
/// batch. Returns the kind to match on, or nullopt.
inline std::optional<core::StepKind> batchable_kind(
    const core::PlanStep& step) {
  if (const auto* d = std::get_if<core::DecodeStep>(&step)) {
    if (d->where == core::Placement::kGpu) return core::StepKind::kDecode;
    return std::nullopt;
  }
  if (const auto* i = std::get_if<core::IntersectStep>(&step)) {
    if (i->where == core::Placement::kGpu) return core::StepKind::kIntersect;
    return std::nullopt;
  }
  return std::nullopt;
}

/// Groups compatible ready steps from co-admitted queries into batched
/// launches. Stateless except for the monotonically increasing group id
/// that tags the members' StepRecords.
class BatchComposer {
 public:
  explicit BatchComposer(BatchOptions opt = {}) : opt_(opt) {}

  /// One candidate lane: its index, the frontier time its next step issues
  /// at, and that step (nullptr when the lane has none ready).
  struct Candidate {
    std::size_t lane = 0;
    sim::Duration frontier;
    const core::PlanStep* step = nullptr;
  };

  /// Composes the batch led by `leader` (the min-frontier lane): every
  /// other candidate whose step has the same batchable kind and whose
  /// frontier lies within `window` of the leader's joins, up to max_batch
  /// members. Returns the member lane indices in ascending order (the
  /// deterministic execution order); a batch of one means "unbatched".
  std::vector<std::size_t> compose(
      const Candidate& leader, const std::vector<Candidate>& others) const {
    std::vector<std::size_t> members{leader.lane};
    if (!opt_.enabled || leader.step == nullptr) return members;
    const auto kind = batchable_kind(*leader.step);
    if (!kind.has_value()) return members;
    for (const auto& c : others) {
      if (members.size() >= opt_.max_batch) break;
      if (c.lane == leader.lane || c.step == nullptr) continue;
      if (batchable_kind(*c.step) != kind) continue;
      // The leader has the earliest frontier; a member may only be ahead
      // by the coalescing window.
      if (c.frontier - leader.frontier > opt_.window) continue;
      members.push_back(c.lane);
    }
    std::sort(members.begin(), members.end());
    return members;
  }

  /// Allocates the next batch-group id (1-based; 0 = unbatched).
  std::uint64_t next_group() { return next_group_++; }
  /// Batches composed so far.
  std::uint64_t groups() const { return next_group_ - 1; }

  const BatchOptions& options() const { return opt_; }

 private:
  BatchOptions opt_;
  std::uint64_t next_group_ = 1;
};

}  // namespace griffin::tenancy
