#include "tenancy/device_manager.h"

#include <cassert>
#include <deque>
#include <limits>

namespace griffin::tenancy {

namespace {
constexpr sim::Duration kFar = sim::Duration::from_ps(
    std::numeric_limits<std::int64_t>::max());
}  // namespace

/// One admission slot: a full per-query execution stack (planner + executor
/// over per-lane backends) plus the in-flight query's pumped state. The
/// backends and their caches persist across the queries the lane serves —
/// a lane is a worker in a warm serving process, not a per-query object.
struct DeviceManager::Lane {
  Lane(const index::InvertedIndex& idx, const sim::HardwareSpec& hw,
       const TenancyOptions& opt, const core::Scheduler& sched,
       const cpu::Bm25Scorer& scorer, const fault::FaultInjector* injector)
      : gpu(idx, hw, opt.engine.gpu),
        host_cache(opt.engine.cpu.decoded_cache_bytes),
        svs(idx, hw.cpu,
            cpu::SvsOptions{opt.engine.cpu.skip_ratio,
                            opt.engine.cpu.ef_random_access},
            &host_cache),
        exec(hw.cpu, &svs, &gpu, scorer, injector, opt.engine.fault_scope),
        planner(idx, sched, exec) {}

  gpu::GpuExecutor gpu;
  cpu::DecodedCache host_cache;
  cpu::SvsStepper svs;
  core::StepExecutor exec;
  core::Planner planner;

  bool active = false;
  core::Query query;
  core::QueryResult res;
  std::optional<core::PlanStep> next_step;  ///< pumped, not yet run
  sim::Duration arrival;
  sim::Duration release;
  std::size_t slot = 0;         ///< index into the results vector
  sim::Duration free_at;        ///< previous query's finish time
};

DeviceManager::DeviceManager(const index::InvertedIndex& idx,
                             sim::HardwareSpec hw, TenancyOptions opt)
    : idx_(&idx),
      hw_(hw),
      opt_(opt),
      sched_(opt.engine.scheduler, hw),
      scorer_(idx, opt.engine.cpu.bm25),
      injector_(opt.engine.faults),
      composer_(opt.batch) {
  if (opt_.max_concurrency == 0) opt_.max_concurrency = 1;
  // Arm the shared injector only when a site is configured: lanes without
  // one skip every fault branch, keeping the disarmed run bit-identical to
  // a build without the injector.
  const fault::FaultInjector* inj =
      opt_.engine.faults.engine_faults_armed() ? &injector_ : nullptr;
  lanes_.reserve(opt_.max_concurrency);
  for (std::uint32_t i = 0; i < opt_.max_concurrency; ++i) {
    lanes_.push_back(
        std::make_unique<Lane>(idx, hw_, opt_, sched_, scorer_, inj));
  }
}

DeviceManager::~DeviceManager() = default;

std::array<double, sim::kNumResources> DeviceManager::busy_fractions() const {
  std::array<double, sim::kNumResources> f{};
  for (std::size_t r = 0; r < sim::kNumResources; ++r) {
    f[r] = tl_.busy_fraction(static_cast<sim::Resource>(r));
  }
  return f;
}

void DeviceManager::admit(Lane& lane, const TenantQuery& tq,
                          std::size_t slot) {
  lane.active = true;
  lane.query = tq.query;
  lane.res = core::QueryResult{};
  lane.arrival = tq.arrival;
  // The query cannot start before it arrived, nor before its lane's
  // previous tenant finished (the admission window is the lane count).
  lane.release = sim::max(tq.arrival, lane.free_at);
  lane.slot = slot;
  lane.exec.bind_shared(&tl_, lane.release);
  lane.exec.begin_query(lane.query);
  lane.planner.begin(lane.query);
  lane.next_step = lane.planner.next(lane.exec.intermediate_count(),
                                     lane.exec.location());
  ++active_;
}

void DeviceManager::finish(Lane& lane, std::vector<TenantResult>& results) {
  lane.exec.finish_query(lane.res.metrics);
  run_faults_ += lane.res.metrics.faults;
  const sim::Duration done = lane.release + lane.res.metrics.total;
  TenantResult& out = results[lane.slot];
  out.result = std::move(lane.res);
  out.arrival = lane.arrival;
  out.release = lane.release;
  out.finish = done;
  lane.res = core::QueryResult{};
  lane.free_at = done;
  lane.active = false;
  lane.next_step.reset();
  finishes_.push_back(done);
  assert(active_ > 0);
  --active_;
}

void DeviceManager::step(std::vector<TenantResult>& results) {
  // The leader: the active lane whose next step issues earliest on the
  // shared timeline (tie: lowest index). Stepping min-frontier-first keeps
  // op recording in (approximately) nondecreasing simulated time, which is
  // what makes the busy clocks' record-order FCFS honest.
  std::size_t leader = lanes_.size();
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (!lanes_[i]->active) continue;
    if (leader == lanes_.size() ||
        lanes_[i]->exec.frontier().at < lanes_[leader]->exec.frontier().at) {
      leader = i;
    }
  }
  assert(leader < lanes_.size());

  BatchComposer::Candidate lead{leader, lanes_[leader]->exec.frontier().at,
                                lanes_[leader]->next_step.has_value()
                                    ? &*lanes_[leader]->next_step
                                    : nullptr};
  std::vector<BatchComposer::Candidate> others;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (i == leader || !lanes_[i]->active || !lanes_[i]->next_step) continue;
    others.push_back({i, lanes_[i]->exec.frontier().at,
                      &*lanes_[i]->next_step});
  }
  const auto members = composer_.compose(lead, others);
  const std::uint32_t width = static_cast<std::uint32_t>(members.size());
  const std::uint64_t group = width > 1 ? composer_.next_group() : 0;

  // Members run in ascending lane order: a batch commits together, so the
  // intra-batch order is a determinism convention, not a timing statement.
  for (const std::size_t i : members) {
    Lane& lane = *lanes_[i];
    lane.exec.set_batch(width, group);
    const core::StepStatus st =
        lane.exec.run(*lane.next_step, lane.query, lane.res);
    lane.exec.set_batch(1, 0);
    // Injected-fault recovery (DESIGN.md §16), scoped to the hit lane: a
    // fault inside a fused launch degrades only this query — co-batched
    // members already ran (or will run) their own step unperturbed, and
    // their ops on the shared timeline are untouched. An OOM that unfused
    // inside run() only shrank *this* lane's launch accounting.
    switch (st) {
      case core::StepStatus::kOk:
        break;
      case core::StepStatus::kOkForceCpu:
        lane.planner.force_cpu();
        break;
      case core::StepStatus::kFaultQuery:
        lane.planner.degrade_to_cpu(*lane.next_step);
        break;
      case core::StepStatus::kFaultStep:
        lane.planner.degrade_step_to_cpu(*lane.next_step);
        break;
    }
    lane.next_step = lane.planner.next(lane.exec.intermediate_count(),
                                       lane.exec.location());
    if (!lane.next_step.has_value()) finish(lane, results);
  }
}

std::vector<TenantResult> DeviceManager::run(
    std::span<const TenantQuery> load, std::uint32_t max_in_system) {
  tl_.reset();
  finishes_.clear();
  run_faults_ = fault::FaultCounters{};
  composer_ = BatchComposer(opt_.batch);
  for (auto& lane : lanes_) {
    lane->active = false;
    lane->free_at = sim::Duration();
    lane->next_step.reset();
  }
  active_ = 0;

  std::vector<TenantResult> results(load.size());
  std::deque<std::size_t> pending;  // arrived, not yet admitted (FIFO)
  std::size_t next_arrival = 0;

  const auto in_system_at = [&](sim::Duration t) {
    std::uint64_t n = active_ + pending.size();
    for (const sim::Duration f : finishes_) {
      if (f > t) ++n;
    }
    return n;
  };
  const auto ingest = [&](std::size_t i) {
    results[i].arrival = load[i].arrival;
    if (max_in_system > 0 && in_system_at(load[i].arrival) >= max_in_system) {
      results[i].shed = true;
      ++results[i].result.metrics.faults.shed_queries;
      ++run_faults_.shed_queries;
      return;
    }
    pending.push_back(i);
  };

  while (next_arrival < load.size() || !pending.empty() || active_ > 0) {
    // Ingest every arrival up to the next step event, so the shed check
    // sees the system state at its arrival time.
    sim::Duration t_step = kFar;
    for (const auto& lane : lanes_) {
      if (lane->active) t_step = sim::min(t_step, lane->exec.frontier().at);
    }
    while (next_arrival < load.size() &&
           load[next_arrival].arrival <= t_step) {
      ingest(next_arrival++);
    }
    if (active_ == 0 && pending.empty()) {
      if (next_arrival >= load.size()) break;
      ingest(next_arrival++);
      continue;
    }

    // Admit FIFO into free lanes; the lane that freed earliest serves next
    // (deterministic tie-break: lowest index). Queries with no terms finish
    // at admission with an empty result, like run_plan's early return.
    while (!pending.empty() && active_ < opt_.max_concurrency) {
      std::size_t best = lanes_.size();
      for (std::size_t i = 0; i < lanes_.size(); ++i) {
        if (lanes_[i]->active) continue;
        if (best == lanes_.size() ||
            lanes_[i]->free_at < lanes_[best]->free_at) {
          best = i;
        }
      }
      const std::size_t qi = pending.front();
      pending.pop_front();
      if (load[qi].query.terms.empty()) {
        TenantResult& out = results[qi];
        out.arrival = load[qi].arrival;
        out.release = sim::max(load[qi].arrival, lanes_[best]->free_at);
        out.finish = out.release;
        continue;
      }
      admit(*lanes_[best], load[qi], qi);
      // A non-empty query always plans at least one step; the guard keeps
      // the loop live if that invariant ever changes.
      if (!lanes_[best]->next_step.has_value()) {
        finish(*lanes_[best], results);
      }
    }

    if (active_ > 0) step(results);
  }
  return results;
}

}  // namespace griffin::tenancy
