#include "workload/corpus.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace griffin::workload {

std::vector<index::DocId> make_uniform_list(std::uint64_t n,
                                            index::DocId universe,
                                            util::Xoshiro256& rng) {
  assert(n > 0 && n <= universe);
  std::vector<index::DocId> docs;

  if (n * 4 >= universe) {
    // Dense list: Bernoulli scan, then trim/top-up to the exact size.
    docs.reserve(n + n / 8);
    const double p = static_cast<double>(n) / static_cast<double>(universe);
    for (index::DocId d = 0; d < universe; ++d) {
      if (rng.uniform01() < p) docs.push_back(d);
    }
    while (docs.size() > n) {
      docs.erase(docs.begin() +
                 static_cast<std::ptrdiff_t>(rng.bounded(docs.size())));
    }
  } else {
    // Sparse list: sample-sort-dedupe, then top up the shortfall.
    docs.reserve(n + n / 8);
    for (std::uint64_t i = 0; i < n; ++i) {
      docs.push_back(static_cast<index::DocId>(rng.bounded(universe)));
    }
    std::sort(docs.begin(), docs.end());
    docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
  }
  while (docs.size() < n) {
    const std::size_t missing = n - docs.size();
    for (std::size_t i = 0; i < missing; ++i) {
      docs.push_back(static_cast<index::DocId>(rng.bounded(universe)));
    }
    std::sort(docs.begin(), docs.end());
    docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
  }
  return docs;
}

std::vector<index::DocId> make_topical_list(std::uint64_t n,
                                            index::DocId universe,
                                            index::DocId topic_lo,
                                            index::DocId topic_hi,
                                            double affinity,
                                            util::Xoshiro256& rng) {
  assert(topic_lo < topic_hi && topic_hi <= universe);
  const std::uint64_t width = topic_hi - topic_lo;
  // The topic range can only hold `width` postings; cap the topical share.
  std::uint64_t n_topic = static_cast<std::uint64_t>(
      affinity * static_cast<double>(n));
  n_topic = std::min(n_topic, width * 3 / 4);
  const std::uint64_t n_rest = n - n_topic;

  std::vector<index::DocId> docs;
  if (n_topic > 0) {
    docs = make_uniform_list(n_topic, static_cast<index::DocId>(width), rng);
    for (auto& d : docs) d += topic_lo;
  }
  if (n_rest > 0) {
    const auto rest = make_uniform_list(n_rest, universe, rng);
    docs.insert(docs.end(), rest.begin(), rest.end());
    std::sort(docs.begin(), docs.end());
    docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
  }
  // Top up collisions between the two strata.
  while (docs.size() < n) {
    const std::size_t missing = n - docs.size();
    for (std::size_t i = 0; i < missing; ++i) {
      docs.push_back(static_cast<index::DocId>(rng.bounded(universe)));
    }
    std::sort(docs.begin(), docs.end());
    docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
  }
  return docs;
}

std::vector<index::DocId> make_correlated_list(
    std::uint64_t n, index::DocId universe,
    std::span<const index::DocId> topic_order, double affinity,
    util::Xoshiro256& rng) {
  const std::uint64_t width = topic_order.size();
  std::uint64_t n_topic =
      static_cast<std::uint64_t>(affinity * static_cast<double>(n));
  n_topic = std::min(n_topic, width * 3 / 4);
  const std::uint64_t n_rest = n - n_topic;

  std::vector<index::DocId> docs;
  docs.reserve(n + n / 8);
  if (n_topic > 0) {
    // Sample the prefix window at ~50% density: nested-but-not-identical
    // topical sets across the topic's terms.
    const std::uint64_t window = std::min(width, n_topic * 2);
    const auto picks = make_uniform_list(
        n_topic, static_cast<index::DocId>(window), rng);
    for (const auto i : picks) docs.push_back(topic_order[i]);
    std::sort(docs.begin(), docs.end());
  }
  if (n_rest > 0) {
    const auto rest = make_uniform_list(n_rest, universe, rng);
    docs.insert(docs.end(), rest.begin(), rest.end());
    std::sort(docs.begin(), docs.end());
    docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
  }
  while (docs.size() < n) {
    const std::size_t missing = n - docs.size();
    for (std::size_t i = 0; i < missing; ++i) {
      docs.push_back(static_cast<index::DocId>(rng.bounded(universe)));
    }
    std::sort(docs.begin(), docs.end());
    docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
  }
  return docs;
}

ListPair make_pair_with_ratio(std::uint64_t longer_size, double ratio,
                              index::DocId universe, double containment,
                              util::Xoshiro256& rng) {
  assert(ratio >= 1.0);
  ListPair pair;
  pair.longer = make_uniform_list(longer_size, universe, rng);
  const std::uint64_t shorter_size = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(longer_size) / ratio));

  // Seed the shorter list with `containment * shorter_size` elements drawn
  // from the longer list (the future matches), fill the rest uniformly.
  std::vector<index::DocId> shorter;
  shorter.reserve(shorter_size + shorter_size / 4);
  const auto n_contained = static_cast<std::uint64_t>(
      containment * static_cast<double>(shorter_size));
  for (std::uint64_t i = 0; i < n_contained; ++i) {
    shorter.push_back(pair.longer[rng.bounded(pair.longer.size())]);
  }
  for (std::uint64_t i = n_contained; i < shorter_size; ++i) {
    shorter.push_back(static_cast<index::DocId>(rng.bounded(universe)));
  }
  std::sort(shorter.begin(), shorter.end());
  shorter.erase(std::unique(shorter.begin(), shorter.end()), shorter.end());
  pair.shorter = std::move(shorter);
  return pair;
}

std::uint64_t list_size_for_rank(const CorpusConfig& cfg, std::uint32_t rank) {
  assert(rank >= 1);
  const double max_size =
      static_cast<double>(cfg.num_docs) / cfg.max_list_divisor;
  const double sz = max_size / std::pow(static_cast<double>(rank), cfg.zipf_s);
  return std::max<std::uint64_t>(
      cfg.min_list_size,
      std::min<std::uint64_t>(static_cast<std::uint64_t>(sz), cfg.num_docs / 2));
}

index::InvertedIndex generate_corpus(const CorpusConfig& cfg) {
  util::Xoshiro256 rng(cfg.seed);
  index::InvertedIndex idx(index::CodecPolicy{cfg.scheme, cfg.adaptive},
                           cfg.block_size);

  // Document lengths: lognormal-ish around the configured mean. (Generated
  // independently of the posting draws — BM25 only needs the marginal.)
  idx.docs().resize(cfg.num_docs);
  for (index::DocId d = 0; d < cfg.num_docs; ++d) {
    const double u = rng.uniform01();
    const double len = cfg.mean_doc_len * (0.35 + 1.3 * u * u);
    idx.docs().set_length(d, static_cast<std::uint32_t>(len) + 1);
  }

  // Per-topic shuffled doc rankings: the shared "core document" structure
  // that correlates same-topic terms (see make_correlated_list).
  std::vector<std::vector<index::DocId>> topic_orders;
  if (cfg.num_topics > 1 && cfg.topic_affinity > 0.0) {
    topic_orders.resize(cfg.num_topics);
    for (std::uint32_t t = 0; t < cfg.num_topics; ++t) {
      const auto [lo, hi] = cfg.topic_range(t);
      auto& order = topic_orders[t];
      order.resize(hi - lo);
      for (index::DocId d = lo; d < hi; ++d) order[d - lo] = d;
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.bounded(i)]);
      }
    }
  }

  std::vector<std::uint32_t> tfs;
  for (std::uint32_t r = 1; r <= cfg.num_terms; ++r) {
    const std::uint64_t n = list_size_for_rank(cfg, r);
    std::vector<index::DocId> docs;
    if (!topic_orders.empty()) {
      const auto& order = topic_orders[cfg.topic_of_rank(r)];
      docs = make_correlated_list(n, cfg.num_docs, order, cfg.topic_affinity,
                                  rng);
    } else {
      docs = make_uniform_list(n, cfg.num_docs, rng);
    }
    // Term frequency: 1 + capped geometric (most postings are tf 1-3).
    tfs.clear();
    tfs.reserve(docs.size());
    for (std::size_t i = 0; i < docs.size(); ++i) {
      std::uint32_t tf = 1;
      while (tf < 50 && rng.uniform01() < 0.38) ++tf;
      tfs.push_back(tf);
    }
    idx.add_list(docs, tfs);
  }
  return idx;
}

}  // namespace griffin::workload
