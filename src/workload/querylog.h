// Synthetic query log. The paper replays 10,000 queries from the TREC 2005/
// 2006 efficiency-track logs; those distributions are reproduced here:
// the term-count histogram of Figure 11 (27% two-term, 33% three-term, 24%
// four-term, tail out past six) and the real-log property that query terms
// skew toward frequent terms (which is what makes list-length ratios vary
// across the rounds of a query and the characteristics change mid-query).
#pragma once

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "util/rng.h"

namespace griffin::workload {

struct QueryLogConfig {
  std::uint32_t num_queries = 1000;
  std::uint32_t k = 10;
  /// Bias of query terms toward frequent terms (rank ~ Zipf(s) over the
  /// vocabulary; smaller s = flatter).
  double term_zipf_s = 0.75;
  std::uint64_t seed = 7;

  /// Topical queries draw all their terms from one topic (set num_topics to
  /// the corpus's CorpusConfig::num_topics). Real queries are topical —
  /// their terms co-occur — which keeps conjunctive intermediates large.
  std::uint32_t num_topics = 1;          ///< 1 = no topic structure
  double topical_fraction = 1.0;         ///< share of queries that are topical
};

/// Figure 11's term-count distribution: P(#terms = 2..9), summing to 1.
std::vector<double> term_count_distribution();

/// Draws `cfg.num_queries` queries over a vocabulary of `num_terms` ranked
/// lists (TermId == rank - 1, matching generate_corpus's ordering).
std::vector<core::Query> generate_query_log(const QueryLogConfig& cfg,
                                            std::uint32_t num_terms);

/// Repetition structure for cache studies. Real query streams are heavily
/// skewed: a small head of popular queries recurs constantly (the property
/// result caches exploit), while the tail is near-unique. The stream is
/// drawn from a pool of distinct queries with Zipf(popularity_zipf_s)
/// popularity; popularity rank is decorrelated from the pool's generation
/// order by a seeded shuffle, so "popular" does not just mean "frequent
/// terms".
struct RepeatedLogConfig {
  std::uint32_t num_queries = 2000;    ///< stream length (with repeats)
  std::uint32_t unique_queries = 200;  ///< distinct query pool size
  double popularity_zipf_s = 1.0;      ///< head skew; larger = hotter head
  std::uint64_t seed = 11;
};

/// Generates the distinct pool with `base` (its num_queries is overridden by
/// rep.unique_queries) and replays it Zipf-skewed. Query ids are re-assigned
/// to stream positions 0..num_queries-1.
std::vector<core::Query> generate_repeated_query_log(
    const QueryLogConfig& base, const RepeatedLogConfig& rep,
    std::uint32_t num_terms);

}  // namespace griffin::workload
