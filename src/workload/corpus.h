// Synthetic corpus generation. The paper evaluates on ClueWeb12 (41 M web
// documents) with inverted lists of 1 K to 26 M postings (Figure 10) — not
// redistributable here, so this module synthesizes an index with the same
// relevant structure (DESIGN.md §2): Zipf-ranked list sizes spanning the
// same orders of magnitude, uniformly scattered docIDs (geometric d-gaps,
// the regime in which EF's ~2 + log2(N/n) bits/posting and PForDelta's
// 90th-percentile b are both exercised exactly as on web data), and term
// frequencies for BM25.
#pragma once

#include <cstdint>
#include <vector>

#include "index/inverted_index.h"
#include "util/rng.h"

namespace griffin::workload {

struct CorpusConfig {
  std::uint32_t num_docs = 1u << 21;  ///< 2M docs (scaled-down ClueWeb12)
  std::uint32_t num_terms = 20000;    ///< vocabulary = posting-list count
  /// Largest list = num_docs / max_list_divisor.
  double max_list_divisor = 3.0;
  /// List-size decay across term ranks: size(r) ~ max_size / r^zipf_s.
  double zipf_s = 0.85;
  std::uint32_t min_list_size = 48;
  codec::Scheme scheme = codec::Scheme::kEliasFano;
  /// Route each list through codec::select_scheme instead of compressing
  /// everything with `scheme` (which stays the index's headline scheme).
  bool adaptive = false;
  std::uint32_t block_size = codec::kDefaultBlockSize;
  std::uint64_t seed = 42;
  /// Mean document length for the (independent) BM25 length model.
  double mean_doc_len = 320.0;

  // Topical co-occurrence. Real query terms correlate (documents about a
  // topic contain that topic's vocabulary), which keeps conjunctive
  // intermediate results large across rounds — the regime the paper's
  // end-to-end latencies live in. Each term belongs to one of num_topics
  // contiguous docID ranges and draws `topic_affinity` of its postings from
  // that range (0 = independent lists).
  std::uint32_t num_topics = 64;
  double topic_affinity = 0.5;

  /// Topic of a term rank (1-based), and the topic's docID range.
  std::uint32_t topic_of_rank(std::uint32_t rank) const {
    return (rank - 1) % num_topics;
  }
  std::pair<index::DocId, index::DocId> topic_range(std::uint32_t topic) const {
    const std::uint64_t width = num_docs / num_topics;
    const auto lo = static_cast<index::DocId>(topic * width);
    const auto hi = static_cast<index::DocId>(
        topic + 1 == num_topics ? num_docs : (topic + 1) * width);
    return {lo, hi};
  }
};

/// Strictly increasing random docID list: n uniform draws over [0, universe).
std::vector<index::DocId> make_uniform_list(std::uint64_t n,
                                            index::DocId universe,
                                            util::Xoshiro256& rng);

/// Like make_uniform_list, but `affinity` of the postings concentrate in
/// [topic_lo, topic_hi) — two lists sharing a topic overlap far more than
/// independent ones.
std::vector<index::DocId> make_topical_list(std::uint64_t n,
                                            index::DocId universe,
                                            index::DocId topic_lo,
                                            index::DocId topic_hi,
                                            double affinity,
                                            util::Xoshiro256& rng);

/// Strongly correlated topical list: the topical share samples (at ~50%
/// density) a prefix window of `topic_order` — a per-topic shuffled doc
/// ranking shared by every term of the topic. Documents early in the order
/// are "core" topic documents that contain most of the topic's vocabulary,
/// so two same-topic lists overlap by roughly 0.5 * affinity * min(n1, n2):
/// the co-occurrence structure that keeps conjunctive intermediates large
/// (paper §4.2's workload behaves this way).
std::vector<index::DocId> make_correlated_list(
    std::uint64_t n, index::DocId universe,
    std::span<const index::DocId> topic_order, double affinity,
    util::Xoshiro256& rng);

/// A (shorter, longer) pair with |longer| ~= ratio * |shorter| where a
/// `containment` fraction of the shorter list also appears in the longer one
/// (those are the matches an intersection finds).
struct ListPair {
  std::vector<index::DocId> shorter;
  std::vector<index::DocId> longer;
};
ListPair make_pair_with_ratio(std::uint64_t longer_size, double ratio,
                              index::DocId universe, double containment,
                              util::Xoshiro256& rng);

/// Generates the full synthetic index (Zipf list sizes, tf, doc lengths).
index::InvertedIndex generate_corpus(const CorpusConfig& cfg);

/// The per-rank list size the config implies (exposed for tests/benches).
std::uint64_t list_size_for_rank(const CorpusConfig& cfg, std::uint32_t rank);

}  // namespace griffin::workload
