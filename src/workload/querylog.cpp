#include "workload/querylog.h"

#include <algorithm>
#include <cassert>

#include "util/zipf.h"

namespace griffin::workload {

std::vector<double> term_count_distribution() {
  // Figure 11: ~27% 2-term, ~33% 3-term, ~24% 4-term, then a short tail.
  return {0.27, 0.33, 0.24, 0.08, 0.04, 0.02, 0.01, 0.01};
}

std::vector<core::Query> generate_query_log(const QueryLogConfig& cfg,
                                            std::uint32_t num_terms) {
  assert(num_terms >= 16);
  util::Xoshiro256 rng(cfg.seed);
  const util::ZipfSampler term_pick(num_terms, cfg.term_zipf_s);

  const std::vector<double> dist = term_count_distribution();
  std::vector<double> cdf(dist.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < dist.size(); ++i) {
    acc += dist[i];
    cdf[i] = acc;
  }

  std::vector<core::Query> log;
  log.reserve(cfg.num_queries);
  for (std::uint32_t qi = 0; qi < cfg.num_queries; ++qi) {
    core::Query q;
    q.id = qi;
    q.k = cfg.k;
    const double u = rng.uniform01() * acc;
    std::uint32_t n_terms = 2;
    for (std::size_t i = 0; i < cdf.size(); ++i) {
      if (u <= cdf[i]) {
        n_terms = static_cast<std::uint32_t>(i) + 2;
        break;
      }
    }
    const bool topical = cfg.num_topics > 1 &&
                         rng.uniform01() < cfg.topical_fraction;
    if (topical) {
      // All terms from one topic: ranks T+1, T+1+K, T+1+2K, ... where K is
      // the topic count; the within-topic index is Zipf-biased like the
      // global pick.
      const auto topic =
          static_cast<std::uint32_t>(rng.bounded(cfg.num_topics));
      const std::uint32_t per_topic =
          std::max(2u, num_terms / cfg.num_topics);
      const util::ZipfSampler in_topic(per_topic, cfg.term_zipf_s);
      std::uint32_t guard = 0;
      while (q.terms.size() < n_terms && ++guard < 10'000) {
        // On a duplicate draw, take the next unused in-topic slot instead of
        // rerolling: real multi-word queries use several head terms, they
        // don't dive into the tail.
        auto j = static_cast<std::uint32_t>(in_topic(rng) - 1);
        for (std::uint32_t tries = 0; tries < per_topic; ++tries) {
          const std::uint64_t rank64 =
              static_cast<std::uint64_t>(topic) +
              static_cast<std::uint64_t>(j) * cfg.num_topics;
          if (rank64 >= num_terms) break;
          const auto rank = static_cast<index::TermId>(rank64);
          if (std::find(q.terms.begin(), q.terms.end(), rank) ==
              q.terms.end()) {
            q.terms.push_back(rank);
            break;
          }
          j = (j + 1) % per_topic;
        }
      }
    }
    while (q.terms.size() < n_terms) {
      const auto rank = static_cast<index::TermId>(term_pick(rng) - 1);
      if (std::find(q.terms.begin(), q.terms.end(), rank) == q.terms.end()) {
        q.terms.push_back(rank);
      }
    }
    log.push_back(std::move(q));
  }
  return log;
}

}  // namespace griffin::workload
