#include "workload/querylog.h"

#include <algorithm>
#include <cassert>

#include "util/zipf.h"

namespace griffin::workload {

std::vector<double> term_count_distribution() {
  // Figure 11: ~27% 2-term, ~33% 3-term, ~24% 4-term, then a short tail.
  return {0.27, 0.33, 0.24, 0.08, 0.04, 0.02, 0.01, 0.01};
}

std::vector<core::Query> generate_query_log(const QueryLogConfig& cfg,
                                            std::uint32_t num_terms) {
  assert(num_terms >= 16);
  util::Xoshiro256 rng(cfg.seed);
  const util::ZipfSampler term_pick(num_terms, cfg.term_zipf_s);

  const std::vector<double> dist = term_count_distribution();
  std::vector<double> cdf(dist.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < dist.size(); ++i) {
    acc += dist[i];
    cdf[i] = acc;
  }

  std::vector<core::Query> log;
  log.reserve(cfg.num_queries);
  for (std::uint32_t qi = 0; qi < cfg.num_queries; ++qi) {
    core::Query q;
    q.id = qi;
    q.k = cfg.k;
    const double u = rng.uniform01() * acc;
    std::uint32_t n_terms = 2;
    for (std::size_t i = 0; i < cdf.size(); ++i) {
      if (u <= cdf[i]) {
        n_terms = static_cast<std::uint32_t>(i) + 2;
        break;
      }
    }
    const bool topical = cfg.num_topics > 1 &&
                         rng.uniform01() < cfg.topical_fraction;
    if (topical) {
      // All terms from one topic: ranks T+1, T+1+K, T+1+2K, ... where K is
      // the topic count; the within-topic index is Zipf-biased like the
      // global pick.
      const auto topic =
          static_cast<std::uint32_t>(rng.bounded(cfg.num_topics));
      const std::uint32_t per_topic =
          std::max(2u, num_terms / cfg.num_topics);
      const util::ZipfSampler in_topic(per_topic, cfg.term_zipf_s);
      std::uint32_t guard = 0;
      while (q.terms.size() < n_terms && ++guard < 10'000) {
        // On a duplicate draw, take the next unused in-topic slot instead of
        // rerolling: real multi-word queries use several head terms, they
        // don't dive into the tail.
        auto j = static_cast<std::uint32_t>(in_topic(rng) - 1);
        for (std::uint32_t tries = 0; tries < per_topic; ++tries) {
          const std::uint64_t rank64 =
              static_cast<std::uint64_t>(topic) +
              static_cast<std::uint64_t>(j) * cfg.num_topics;
          if (rank64 >= num_terms) break;
          const auto rank = static_cast<index::TermId>(rank64);
          if (std::find(q.terms.begin(), q.terms.end(), rank) ==
              q.terms.end()) {
            q.terms.push_back(rank);
            break;
          }
          j = (j + 1) % per_topic;
        }
      }
    }
    while (q.terms.size() < n_terms) {
      const auto rank = static_cast<index::TermId>(term_pick(rng) - 1);
      if (std::find(q.terms.begin(), q.terms.end(), rank) == q.terms.end()) {
        q.terms.push_back(rank);
      }
    }
    log.push_back(std::move(q));
  }
  return log;
}

std::vector<core::Query> generate_repeated_query_log(
    const QueryLogConfig& base, const RepeatedLogConfig& rep,
    std::uint32_t num_terms) {
  assert(rep.unique_queries > 0);
  QueryLogConfig pool_cfg = base;
  pool_cfg.num_queries = rep.unique_queries;
  const auto pool = generate_query_log(pool_cfg, num_terms);

  util::Xoshiro256 rng(rep.seed);
  // Decorrelate popularity rank from pool order (Fisher-Yates).
  std::vector<std::uint32_t> by_popularity(pool.size());
  for (std::uint32_t i = 0; i < by_popularity.size(); ++i) {
    by_popularity[i] = i;
  }
  for (std::size_t i = by_popularity.size(); i > 1; --i) {
    std::swap(by_popularity[i - 1], by_popularity[rng.bounded(i)]);
  }

  const util::ZipfSampler popularity(pool.size(), rep.popularity_zipf_s);
  std::vector<core::Query> stream;
  stream.reserve(rep.num_queries);
  for (std::uint32_t i = 0; i < rep.num_queries; ++i) {
    const auto rank = static_cast<std::uint32_t>(popularity(rng) - 1);
    core::Query q = pool[by_popularity[rank]];
    q.id = i;
    stream.push_back(std::move(q));
  }
  return stream;
}

}  // namespace griffin::workload
