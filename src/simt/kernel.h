// Block-synchronous kernel execution for the virtual GPU.
//
// A kernel is a callable `void(Block&)` invoked once per thread block. Inside
// it, `Block::for_each_thread` runs a region for every thread of the block;
// consecutive regions are separated by an implicit block barrier (the
// __syncthreads of this programming model). Per-lane "registers" that must
// survive across regions are ordinary host arrays indexed by Thread::tid().
//
// While a region executes, the simulator counts the work each lane performs:
//   - ALU cycles (explicit Thread::charge plus fixed per-access costs);
//   - global memory accesses, grouped per warp and per instruction ordinal,
//     then coalesced into 128-byte transactions exactly as the hardware
//     would (lane k's o-th access coalesces with lane j's o-th access);
//   - shared-memory accesses with bank-conflict serialization (32 banks of
//     4 bytes).
// A warp's time for a region is the maximum over its lanes (SIMT lockstep),
// so divergent code pays the cost the paper describes in §2.3. The counts
// feed sim::GpuCostModel, which turns them into simulated time.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/gpu_cost_model.h"
#include "simt/device.h"
#include "util/bits.h"

namespace griffin::simt {

struct LaunchConfig {
  std::uint32_t grid_blocks = 1;
  std::uint32_t block_threads = 256;
};

// Modeled issue costs, in core cycles per lane.
inline constexpr double kAluCycle = 1.0;
inline constexpr double kGlobalAccessCycles = 4.0;
inline constexpr double kSharedAccessCycles = 2.0;

class Block;

/// Per-lane execution context, valid only inside a for_each_thread region.
class Thread {
 public:
  std::uint32_t tid() const { return tid_; }
  std::uint32_t block_id() const { return block_id_; }
  std::uint32_t block_dim() const { return block_dim_; }
  std::uint32_t gid() const { return block_id_ * block_dim_ + tid_; }
  std::uint32_t lane() const { return tid_ % 32; }
  std::uint32_t warp() const { return tid_ / 32; }

  /// Explicit ALU charge (loop bookkeeping, compares, bit ops, ...).
  void charge(double cycles) { alu_ += cycles; }

  /// Global-memory read of one element.
  template <typename T>
  T load(const DeviceBuffer<T>& buf, std::uint64_t idx) {
    assert(idx < buf.size());
    record_global(buf.device_addr(idx), sizeof(T));
    return buf.raw()[idx];
  }

  /// Global-memory write of one element.
  template <typename T>
  void store(DeviceBuffer<T>& buf, std::uint64_t idx, T value) {
    assert(idx < buf.size());
    record_global(buf.device_addr(idx), sizeof(T));
    buf.raw()[idx] = value;
  }

  /// Shared-memory read (charged, bank-tracked).
  template <typename T>
  T sload(std::span<const T> shared, std::size_t idx) {
    assert(idx < shared.size());
    record_shared(reinterpret_cast<std::uintptr_t>(&shared[idx]));
    return shared[idx];
  }

  /// Shared-memory write (charged, bank-tracked).
  template <typename T>
  void sstore(std::span<T> shared, std::size_t idx, T value) {
    assert(idx < shared.size());
    record_shared(reinterpret_cast<std::uintptr_t>(&shared[idx]));
    shared[idx] = value;
  }

  /// CUDA __popc equivalent.
  int popc(std::uint32_t x) {
    charge(kAluCycle);
    return util::popcount32(x);
  }

  /// Global atomic add; returns the previous value. Atomics from lanes of the
  /// same warp hitting the same address serialize — the region analyzer adds
  /// a replay penalty per extra hit.
  template <typename T>
  T atomic_add(DeviceBuffer<T>& buf, std::uint64_t idx, T value) {
    assert(idx < buf.size());
    record_global(buf.device_addr(idx), sizeof(T));
    atomic_addrs_.push_back(buf.device_addr(idx));
    charge(2 * kAluCycle);
    const T old = buf.raw()[idx];
    buf.raw()[idx] = old + value;
    return old;
  }

  /// Global atomic max; returns the previous value.
  template <typename T>
  T atomic_max(DeviceBuffer<T>& buf, std::uint64_t idx, T value) {
    assert(idx < buf.size());
    record_global(buf.device_addr(idx), sizeof(T));
    atomic_addrs_.push_back(buf.device_addr(idx));
    charge(2 * kAluCycle);
    const T old = buf.raw()[idx];
    buf.raw()[idx] = std::max(old, value);
    return old;
  }

 private:
  friend class Block;

  struct GlobalAccess {
    std::uint64_t addr;
    std::uint32_t bytes;
  };

  void record_global(std::uint64_t addr, std::uint32_t bytes) {
    alu_ += kGlobalAccessCycles;
    global_.push_back({addr, bytes});
  }
  void record_shared(std::uintptr_t host_addr) {
    alu_ += kSharedAccessCycles;
    // Bank = (word address) mod 32, 4-byte banks.
    shared_banks_.push_back(static_cast<std::uint32_t>((host_addr / 4) % 32));
  }

  void reset(std::uint32_t tid, std::uint32_t block_id, std::uint32_t dim) {
    tid_ = tid;
    block_id_ = block_id;
    block_dim_ = dim;
    alu_ = 0.0;
    global_.clear();
    shared_banks_.clear();
    atomic_addrs_.clear();
  }

  std::uint32_t tid_ = 0;
  std::uint32_t block_id_ = 0;
  std::uint32_t block_dim_ = 0;
  double alu_ = 0.0;
  std::vector<GlobalAccess> global_;
  std::vector<std::uint32_t> shared_banks_;
  std::vector<std::uint64_t> atomic_addrs_;
};

/// Per-block execution context handed to the kernel body. One Block object
/// is reused across a launch's blocks (reset per block) so lane scratch
/// buffers keep their capacity — a pure simulator-speed concern.
class Block {
 public:
  Block(const sim::GpuSpec& spec, sim::KernelStats& stats,
        std::uint32_t block_id, std::uint32_t block_dim,
        std::uint32_t grid_dim)
      : spec_(spec),
        stats_(stats),
        block_id_(block_id),
        block_dim_(block_dim),
        grid_dim_(grid_dim),
        shared_arena_(spec.shared_mem_per_block),
        lanes_(block_dim) {
    assert(block_dim_ > 0);
    assert(block_dim_ <= static_cast<std::uint32_t>(spec.max_threads_per_block));
  }

  /// Rewinds per-block state for the next block of the same launch.
  void reset_for_block(std::uint32_t block_id) {
    block_id_ = block_id;
    shared_used_ = 0;
  }

  std::uint32_t block_id() const { return block_id_; }
  std::uint32_t dim() const { return block_dim_; }
  std::uint32_t grid_dim() const { return grid_dim_; }
  std::uint32_t warps() const { return (block_dim_ + 31) / 32; }

  /// Allocate a shared-memory array for this block. Counts against the
  /// modeled 48 KB shared-memory budget; contents persist across regions
  /// within the block (like __shared__ arrays) and are zero-initialized.
  template <typename T>
  std::span<T> shared(std::size_t n) {
    const std::size_t bytes = util::round_up(n * sizeof(T), 16);
    if (shared_used_ + bytes > spec_.shared_mem_per_block) {
      throw std::runtime_error("shared memory budget exceeded");
    }
    T* p = reinterpret_cast<T*>(shared_arena_.data() + shared_used_);
    shared_used_ += bytes;
    std::fill_n(p, n, T{});
    return std::span<T>(p, n);
  }

  /// Execute one region: `f(Thread&)` for every thread of the block, then an
  /// implicit barrier. Work counters are folded into the launch stats with
  /// the per-warp max rule.
  template <typename F>
  void for_each_thread(F&& f) {
    for (std::uint32_t t = 0; t < block_dim_; ++t) {
      lanes_[t].reset(t, block_id_, block_dim_);
      f(lanes_[t]);
    }
    finish_region();
    barrier();
  }

  /// Explicit extra barrier (per-block __syncthreads).
  void barrier() { ++stats_.barriers; }

 private:
  void finish_region();

  const sim::GpuSpec& spec_;
  sim::KernelStats& stats_;
  std::uint32_t block_id_;
  std::uint32_t block_dim_;
  std::uint32_t grid_dim_;
  std::size_t shared_used_ = 0;
  std::vector<std::byte> shared_arena_;
  std::vector<Thread> lanes_;
};

/// Launch a kernel: `body(Block&)` once per block. Returns the counted work;
/// convert to time with sim::GpuCostModel::kernel_time.
template <typename KernelBody>
sim::KernelStats launch(Device& dev, LaunchConfig cfg, KernelBody&& body) {
  assert(cfg.grid_blocks > 0);
  sim::KernelStats stats;
  stats.blocks = cfg.grid_blocks;
  stats.warps = static_cast<std::uint64_t>(cfg.grid_blocks) *
                ((cfg.block_threads + 31) / 32);
  Block blk(dev.spec(), stats, 0, cfg.block_threads, cfg.grid_blocks);
  for (std::uint32_t b = 0; b < cfg.grid_blocks; ++b) {
    blk.reset_for_block(b);
    body(blk);
  }
  return stats;
}

/// Grid size helper: blocks needed so grid*block >= n threads.
inline std::uint32_t blocks_for(std::uint64_t n, std::uint32_t block_threads) {
  return static_cast<std::uint32_t>(util::div_ceil(n, block_threads));
}

}  // namespace griffin::simt
