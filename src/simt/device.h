// The virtual GPU device: a distinct address space with capacity accounting.
// Host code cannot touch device data except through explicit upload/download
// (mirroring cudaMemcpy) or from inside a kernel via Thread::load/store. Every
// DeviceBuffer receives a unique, stable device address range so the
// coalescing analyzer can reason about physical 128-byte segments.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/hardware_spec.h"

namespace griffin::simt {

class Device;

namespace detail {
class UntypedBuffer {
 public:
  UntypedBuffer(Device* dev, std::uint64_t base, std::size_t bytes);
  ~UntypedBuffer();
  UntypedBuffer(const UntypedBuffer&) = delete;
  UntypedBuffer& operator=(const UntypedBuffer&) = delete;
  UntypedBuffer(UntypedBuffer&& o) noexcept;
  UntypedBuffer& operator=(UntypedBuffer&& o) noexcept;

  std::uint64_t base() const { return base_; }
  std::size_t bytes() const { return storage_.size(); }
  std::byte* data() { return storage_.data(); }
  const std::byte* data() const { return storage_.data(); }

 private:
  void release();
  Device* dev_ = nullptr;
  std::uint64_t base_ = 0;
  std::vector<std::byte> storage_;
};
}  // namespace detail

/// Typed device allocation. The element storage lives on the host (we are a
/// simulator) but is considered device-resident: reading it from host code
/// without Device::download would be a bug, like dereferencing a device
/// pointer on the CPU.
template <typename T>
class DeviceBuffer {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  DeviceBuffer() = default;
  DeviceBuffer(Device* dev, std::uint64_t base, std::size_t n)
      : raw_(dev, base, n * sizeof(T)), size_(n) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint64_t device_addr(std::size_t idx) const {
    return raw_.base() + idx * sizeof(T);
  }

  // Internal accessors for the simulator and the copy engine. Kernel and
  // engine code must go through Thread::load/store or Device::upload/download.
  T* raw() { return reinterpret_cast<T*>(raw_.data()); }
  const T* raw() const { return reinterpret_cast<const T*>(raw_.data()); }

 private:
  detail::UntypedBuffer raw_{nullptr, 0, 0};
  std::size_t size_ = 0;
};

/// Thrown when allocations exceed the modeled device memory (5 GB on the
/// paper's K20) — the condition the paper cites against cache-everything
/// designs like Ao et al. [8].
class DeviceOutOfMemory : public std::runtime_error {
 public:
  explicit DeviceOutOfMemory(std::size_t requested, std::size_t free_bytes)
      : std::runtime_error("device out of memory: requested " +
                           std::to_string(requested) + " bytes, " +
                           std::to_string(free_bytes) + " free") {}
};

class Device {
 public:
  explicit Device(sim::GpuSpec gpu = {}, std::size_t mem_capacity =
                                             sim::PcieSpec{}.device_mem_bytes)
      : gpu_(gpu), capacity_(mem_capacity) {}

  const sim::GpuSpec& spec() const { return gpu_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  std::size_t free_bytes() const { return capacity_ - used_; }
  std::uint64_t alloc_count() const { return alloc_count_; }

  template <typename T>
  DeviceBuffer<T> alloc(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    reserve(bytes);
    ++alloc_count_;
    const std::uint64_t base = next_addr_;
    // Keep allocations 256-byte aligned like a real allocator; addresses are
    // never reused so analyzers can't confuse two buffers.
    next_addr_ += (bytes + 255) / 256 * 256;
    return DeviceBuffer<T>(this, base, n);
  }

  /// Host -> device copy (the data movement itself; time is charged by the
  /// PCIe link model at the call site).
  template <typename T>
  void upload(DeviceBuffer<T>& dst, std::span<const T> src,
              std::size_t dst_offset = 0) {
    assert(dst_offset + src.size() <= dst.size());
    // An empty span's data() may be null, which memcpy forbids even for n=0.
    if (!src.empty()) {
      std::memcpy(dst.raw() + dst_offset, src.data(), src.size_bytes());
    }
    h2d_bytes_ += src.size_bytes();
  }

  /// Device -> host copy.
  template <typename T>
  void download(std::span<T> dst, const DeviceBuffer<T>& src,
                std::size_t src_offset = 0) const {
    assert(src_offset + dst.size() <= src.size());
    if (!dst.empty()) {
      std::memcpy(dst.data(), src.raw() + src_offset, dst.size_bytes());
    }
    d2h_bytes_ += dst.size_bytes();
  }

  std::uint64_t h2d_bytes() const { return h2d_bytes_; }
  std::uint64_t d2h_bytes() const { return d2h_bytes_; }

 private:
  friend class detail::UntypedBuffer;

  void reserve(std::size_t bytes) {
    if (bytes > capacity_ - used_) {
      throw DeviceOutOfMemory(bytes, capacity_ - used_);
    }
    used_ += bytes;
  }
  void unreserve(std::size_t bytes) {
    assert(bytes <= used_);
    used_ -= bytes;
  }

  sim::GpuSpec gpu_;
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::uint64_t next_addr_ = 0x1000;  // nonzero so addr 0 means "null"
  std::uint64_t alloc_count_ = 0;
  mutable std::uint64_t h2d_bytes_ = 0;
  mutable std::uint64_t d2h_bytes_ = 0;
};

namespace detail {
inline UntypedBuffer::UntypedBuffer(Device* dev, std::uint64_t base,
                                    std::size_t bytes)
    : dev_(dev), base_(base), storage_(bytes) {}

inline UntypedBuffer::~UntypedBuffer() { release(); }

inline UntypedBuffer::UntypedBuffer(UntypedBuffer&& o) noexcept
    : dev_(o.dev_), base_(o.base_), storage_(std::move(o.storage_)) {
  o.dev_ = nullptr;
  o.storage_.clear();
}

inline UntypedBuffer& UntypedBuffer::operator=(UntypedBuffer&& o) noexcept {
  if (this != &o) {
    release();
    dev_ = o.dev_;
    base_ = o.base_;
    storage_ = std::move(o.storage_);
    o.dev_ = nullptr;
    o.storage_.clear();
  }
  return *this;
}

inline void UntypedBuffer::release() {
  if (dev_ != nullptr && !storage_.empty()) {
    dev_->unreserve(storage_.size());
  }
  dev_ = nullptr;
}
}  // namespace detail

}  // namespace griffin::simt
