#include "simt/kernel.h"

namespace griffin::simt {

void Block::finish_region() {
  const std::uint32_t nwarps = warps();
  const std::uint64_t seg_bytes = spec_.mem_transaction_bytes;

  // Regions end at a block barrier: every warp of the block occupies its SM
  // slot until the slowest warp arrives, so the block's region time is the
  // max over warps and every warp is charged it. (For balanced regions this
  // equals the per-warp sum; for imbalanced ones — e.g. one lane serially
  // walking a PForDelta exception chain while three warps idle — it models
  // the idling the paper's §2.3 describes.)
  double block_max_alu = 0.0;
  for (std::uint32_t t = 0; t < block_dim_; ++t) {
    block_max_alu = std::max(block_max_alu, lanes_[t].alu_);
  }
  stats_.warp_cycles += block_max_alu * nwarps;

  for (std::uint32_t w = 0; w < nwarps; ++w) {
    const std::uint32_t lo = w * 32;
    const std::uint32_t hi = std::min(block_dim_, lo + 32);

    std::size_t max_global = 0;
    std::size_t max_shared = 0;
    for (std::uint32_t t = lo; t < hi; ++t) {
      max_global = std::max(max_global, lanes_[t].global_.size());
      max_shared = std::max(max_shared, lanes_[t].shared_banks_.size());
    }

    // Coalesce global accesses: the o-th access of every lane in the warp
    // issues together; distinct 128-byte segments become transactions. The
    // per-ordinal segment set is tiny (1..64), so a linear-probe dedupe into
    // a fixed array beats sorting.
    for (std::size_t o = 0; o < max_global; ++o) {
      std::uint64_t segs[64];
      std::uint32_t nsegs = 0;
      for (std::uint32_t t = lo; t < hi; ++t) {
        const auto& g = lanes_[t].global_;
        if (o >= g.size()) continue;
        stats_.global_bytes_requested += g[o].bytes;
        const std::uint64_t s0 = g[o].addr / seg_bytes;
        const std::uint64_t s1 = (g[o].addr + g[o].bytes - 1) / seg_bytes;
        for (std::uint64_t s = s0; s <= s1; ++s) {
          bool seen = false;
          for (std::uint32_t k = 0; k < nsegs; ++k) {
            if (segs[k] == s) {
              seen = true;
              break;
            }
          }
          if (!seen && nsegs < 64) segs[nsegs++] = s;
        }
      }
      stats_.global_transactions += nsegs;
    }

    // Atomic serialization: the o-th atomic of the warp's lanes replays once
    // per extra lane hitting the same address.
    {
      std::size_t max_atomics = 0;
      for (std::uint32_t t = lo; t < hi; ++t) {
        max_atomics = std::max(max_atomics, lanes_[t].atomic_addrs_.size());
      }
      constexpr double kAtomicReplayCycles = 8.0;
      for (std::size_t o = 0; o < max_atomics; ++o) {
        std::uint64_t addrs[32];
        std::uint32_t counts[32];
        std::uint32_t n = 0;
        std::uint32_t max_mult = 1;
        for (std::uint32_t t = lo; t < hi; ++t) {
          const auto& aa = lanes_[t].atomic_addrs_;
          if (o >= aa.size()) continue;
          bool seen = false;
          for (std::uint32_t k = 0; k < n; ++k) {
            if (addrs[k] == aa[o]) {
              max_mult = std::max(max_mult, ++counts[k]);
              seen = true;
              break;
            }
          }
          if (!seen) {
            addrs[n] = aa[o];
            counts[n] = 1;
            ++n;
          }
        }
        if (max_mult > 1) {
          stats_.warp_cycles +=
              static_cast<double>(max_mult - 1) * kAtomicReplayCycles;
        }
      }
    }

    // Shared-memory bank conflicts: the o-th shared access of the warp's
    // lanes serializes by the most-contended bank.
    for (std::size_t o = 0; o < max_shared; ++o) {
      std::uint32_t bank_count[32] = {};
      std::uint32_t max_mult = 0;
      for (std::uint32_t t = lo; t < hi; ++t) {
        const auto& s = lanes_[t].shared_banks_;
        if (o >= s.size()) continue;
        ++stats_.shared_accesses;
        const std::uint32_t m = ++bank_count[s[o]];
        max_mult = std::max(max_mult, m);
      }
      if (max_mult > 1) {
        stats_.shared_conflict_cycles += static_cast<double>(max_mult - 1);
      }
    }
  }
}

}  // namespace griffin::simt
