#include "simt/collectives.h"

#include "util/bits.h"

namespace griffin::simt {

void block_inclusive_scan(Block& blk, std::span<std::uint32_t> data) {
  const std::size_t n = data.size();
  if (n == 0) return;
  const std::uint32_t dim = blk.dim();
  const std::size_t chunk = util::div_ceil(n, dim);

  auto sums = blk.shared<std::uint32_t>(dim);
  auto sums_alt = blk.shared<std::uint32_t>(dim);

  // Phase 1: each thread scans its own chunk in place and records the total.
  blk.for_each_thread([&](Thread& t) {
    const std::size_t lo = static_cast<std::size_t>(t.tid()) * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    std::uint32_t acc = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      acc += t.sload(std::span<const std::uint32_t>(data), i);
      t.sstore(data, i, acc);
      t.charge(kAluCycle);
    }
    t.sstore(std::span<std::uint32_t>(sums), t.tid(), acc);
  });

  // Phase 2: Hillis-Steele inclusive scan of the per-thread sums. Only the
  // first m = ceil(n/chunk) slots hold data, so the doubling loop runs
  // ceil(log2 m) rounds.
  const std::uint32_t m = static_cast<std::uint32_t>(util::div_ceil(n, chunk));
  std::span<std::uint32_t> src = sums;
  std::span<std::uint32_t> dst = sums_alt;
  for (std::uint32_t d = 1; d < m; d <<= 1) {
    blk.for_each_thread([&](Thread& t) {
      const std::uint32_t i = t.tid();
      if (i >= m) return;
      std::uint32_t v = t.sload(std::span<const std::uint32_t>(src), i);
      if (i >= d) {
        v += t.sload(std::span<const std::uint32_t>(src), i - d);
        t.charge(kAluCycle);
      }
      t.sstore(dst, i, v);
    });
    std::swap(src, dst);
  }

  // Phase 3: add the preceding chunks' total to each chunk.
  blk.for_each_thread([&](Thread& t) {
    if (t.tid() == 0) return;
    const std::size_t lo = static_cast<std::size_t>(t.tid()) * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) return;
    const std::uint32_t offset =
        t.sload(std::span<const std::uint32_t>(src), t.tid() - 1);
    for (std::size_t i = lo; i < hi; ++i) {
      t.sstore(data, i,
               t.sload(std::span<const std::uint32_t>(data), i) + offset);
      t.charge(kAluCycle);
    }
  });
}

std::uint32_t block_exclusive_scan(Block& blk, std::span<std::uint32_t> data) {
  if (data.empty()) return 0;
  block_inclusive_scan(blk, data);
  // Shift right by one (in parallel, reading before writing via double read
  // region split: read into registers, barrier, write).
  const std::size_t n = data.size();
  const std::uint32_t dim = blk.dim();
  const std::size_t chunk = util::div_ceil(n, dim);
  std::vector<std::uint32_t> regs(n);  // per-lane registers across the barrier
  blk.for_each_thread([&](Thread& t) {
    const std::size_t lo = static_cast<std::size_t>(t.tid()) * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) {
      regs[i] = i == 0 ? 0
                       : t.sload(std::span<const std::uint32_t>(data), i - 1);
    }
  });
  std::uint32_t total = data[n - 1];
  blk.for_each_thread([&](Thread& t) {
    const std::size_t lo = static_cast<std::size_t>(t.tid()) * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) t.sstore(data, i, regs[i]);
  });
  return total;
}

std::uint64_t block_reduce_sum(Block& blk,
                               std::span<const std::uint32_t> data) {
  const std::size_t n = data.size();
  if (n == 0) return 0;
  const std::uint32_t dim = blk.dim();
  const std::size_t chunk = util::div_ceil(n, dim);
  auto partial = blk.shared<std::uint32_t>(dim);

  blk.for_each_thread([&](Thread& t) {
    const std::size_t lo = static_cast<std::size_t>(t.tid()) * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    std::uint32_t acc = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      acc += t.sload(data, i);
      t.charge(kAluCycle);
    }
    t.sstore(std::span<std::uint32_t>(partial), t.tid(), acc);
  });

  // Tree reduction over the per-thread partials (models the cost; the exact
  // value is re-derived from the untouched input below so non-power-of-two
  // block dims cannot introduce a folding error).
  for (std::uint32_t stride = dim / 2; stride >= 1; stride /= 2) {
    blk.for_each_thread([&](Thread& t) {
      if (t.tid() < stride && t.tid() + stride < dim) {
        const std::uint32_t a =
            t.sload(std::span<const std::uint32_t>(partial), t.tid());
        const std::uint32_t b =
            t.sload(std::span<const std::uint32_t>(partial), t.tid() + stride);
        t.sstore(std::span<std::uint32_t>(partial), t.tid(), a + b);
        t.charge(kAluCycle);
      }
    });
    if (stride == 1) break;
  }
  std::uint64_t grand = 0;
  for (std::uint32_t v : data) grand += v;
  return grand;
}

}  // namespace griffin::simt
