// Block-level collectives, written as block-synchronous kernel fragments so
// their simulated cost (shared-memory traffic, barriers, log-depth rounds)
// emerges from the same accounting as user kernels. Call them from a kernel
// body at block scope (between for_each_thread regions).
#pragma once

#include <cstdint>
#include <span>

#include "simt/kernel.h"

namespace griffin::simt {

/// In-place block-wide inclusive prefix sum over a shared array of any size.
/// Three phases: per-thread chunk scan, Hillis-Steele scan of chunk sums,
/// offset add. Charges O(n) shared traffic + O(log block_dim) rounds.
void block_inclusive_scan(Block& blk, std::span<std::uint32_t> data);

/// In-place exclusive prefix sum; returns the total of the input.
std::uint32_t block_exclusive_scan(Block& blk, std::span<std::uint32_t> data);

/// Block-wide sum reduction of a shared array.
std::uint64_t block_reduce_sum(Block& blk, std::span<const std::uint32_t> data);

}  // namespace griffin::simt
