// Per-replica circuit breaker (DESIGN.md §11) on the simulated clock. The
// classic three-state machine: Closed passes requests through and counts
// consecutive failures; at the threshold the breaker Opens and short-
// circuits every attempt (the broker skips the replica without paying the
// crash-detection timeout); after `open_duration` it becomes Half-Open and
// admits a single probe — a success closes it, a failure re-opens it for
// another window. Everything is synchronous in the broker's discrete-event
// loop, so no in-flight probe bookkeeping is needed: allow() is always
// followed by record_success() or record_failure() at the same instant.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace griffin::cluster {

struct BreakerConfig {
  bool enabled = false;
  /// Consecutive failures that open the breaker.
  std::uint32_t failure_threshold = 3;
  /// Open time before the half-open probe window.
  sim::Duration open_duration = sim::Duration::from_ms(50);
};

class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerConfig cfg = {}) : cfg_(cfg) {}

  State state(sim::Duration now) const {
    if (!open_) return State::kClosed;
    return now >= opened_at_ + cfg_.open_duration ? State::kHalfOpen
                                                  : State::kOpen;
  }

  /// May a request be sent to the replica at `now`? True when closed or
  /// half-open (the probe); false while open (short-circuit).
  bool allow(sim::Duration now) const {
    return !cfg_.enabled || state(now) != State::kOpen;
  }

  /// Records a failed attempt. Returns true when this failure opened (or
  /// re-opened, from half-open) the breaker.
  bool record_failure(sim::Duration now) {
    if (!cfg_.enabled) return false;
    if (state(now) == State::kHalfOpen) {
      opened_at_ = now;  // failed probe: re-open for another window
      return true;
    }
    ++consecutive_failures_;
    if (!open_ && consecutive_failures_ >= cfg_.failure_threshold) {
      open_ = true;
      opened_at_ = now;
      return true;
    }
    return false;
  }

  void record_success() {
    consecutive_failures_ = 0;
    open_ = false;
  }

  const BreakerConfig& config() const { return cfg_; }

 private:
  BreakerConfig cfg_;
  std::uint32_t consecutive_failures_ = 0;
  bool open_ = false;
  sim::Duration opened_at_;
};

}  // namespace griffin::cluster
