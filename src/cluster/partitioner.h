// Document-to-shard assignment strategies for the cluster layer. The
// partitioner produces the docID -> shard map that index::extract_shards
// consumes; the choice shapes per-shard load:
//
//  - kRoundRobin (docID mod N) stripes every posting list evenly across
//    shards — per-shard sub-lists shrink by ~N and per-query shard work is
//    balanced. This is the production default (cf. GPUSparse / web search
//    document partitioning).
//  - kRange gives each shard one contiguous docID range. With the synthetic
//    corpus's topical structure (topics are contiguous docID ranges,
//    workload/corpus.h) a topical query lands almost entirely on the few
//    shards owning its topic — a built-in skew/straggler scenario the
//    hedging bench exploits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace griffin::cluster {

enum class PartitionStrategy : std::uint8_t {
  kRoundRobin,
  kRange,
};

std::string strategy_name(PartitionStrategy s);

/// Builds the docID -> shard assignment (one entry per document).
std::vector<std::uint32_t> assign_docs(PartitionStrategy strategy,
                                       std::uint64_t num_docs,
                                       std::uint32_t num_shards);

}  // namespace griffin::cluster
