// One shard of the cluster: a document-partitioned slice of the index
// (index/shard.h) served by its own HybridEngine. Replicas of a shard model
// identical machines holding the same data: they share the engine
// (execution is deterministic, so service time is a pure function of the
// query and the shard data) but queue independently — the per-replica FCFS
// queues live in the broker's timed run (cluster/broker.cpp), which keeps
// ShardNode stateless across runs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/hybrid_engine.h"
#include "index/shard.h"

namespace griffin::cluster {

class ShardNode {
 public:
  ShardNode(index::IndexShard shard, sim::HardwareSpec hw = {},
            core::HybridOptions opt = {});

  // The engine stores a pointer to shard_.index; keep both addresses fixed.
  ShardNode(const ShardNode&) = delete;
  ShardNode& operator=(const ShardNode&) = delete;

  /// Executes a query given in *global* TermIds against this shard. A term
  /// with no postings here proves the shard's conjunctive result empty, so
  /// the engine is skipped and only a dictionary-lookup cost is charged.
  core::QueryResult execute(const core::Query& q);

  std::uint32_t id() const { return shard_.id; }
  const index::IndexShard& shard() const { return shard_; }

  /// Simulated cost of discovering a query term is absent from this shard's
  /// dictionary (the short-circuit path of execute()); comes from
  /// HardwareSpec::absent_term_probe_us.
  sim::Duration absent_term_cost() const { return absent_cost_; }

  /// Engine cache-tier counters summed over every execute() on this node
  /// (the node's engine — and therefore its caches — is shared by all
  /// replicas, so this is the node's lifetime view).
  const core::CacheCounters& cache_counters() const { return cache_; }

  /// Plan-step aggregate over every execute() on this node (same lifetime
  /// view as the cache counters).
  const core::TraceSummary& trace_summary() const { return trace_; }

  /// Copy/compute-overlap counters (prefetches, saved time, copy-engine
  /// busy time) summed over every execute() on this node.
  const core::OverlapCounters& overlap_counters() const { return overlap_; }

  /// Engine-level fault counters (GPU step aborts, PCIe retries) summed
  /// over every execute() on this node.
  const fault::FaultCounters& fault_counters() const { return faults_; }

 private:
  index::IndexShard shard_;
  core::HybridEngine engine_;
  sim::Duration absent_cost_;
  core::CacheCounters cache_;
  core::TraceSummary trace_;
  core::OverlapCounters overlap_;
  fault::FaultCounters faults_;
  std::vector<index::TermId> scratch_terms_;
};

}  // namespace griffin::cluster
