#include "cluster/broker.h"

#include <algorithm>

#include "service/queueing.h"

namespace griffin::cluster {

ClusterBroker::ClusterBroker(const index::InvertedIndex& full,
                             ClusterConfig cfg, sim::HardwareSpec hw,
                             core::HybridOptions opt)
    : cfg_(cfg) {
  const auto doc_shard =
      assign_docs(cfg.partition, full.docs().num_docs(), cfg.num_shards);
  auto shards = index::extract_shards(full, doc_shard, cfg.num_shards);
  nodes_.reserve(shards.size());
  for (auto& s : shards) {
    nodes_.push_back(std::make_unique<ShardNode>(std::move(s), hw, opt));
  }
}

std::vector<core::ScoredDoc> merge_topk(
    std::span<const std::vector<core::ScoredDoc>> parts, std::uint32_t k) {
  std::vector<core::ScoredDoc> all;
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  all.reserve(total);
  for (const auto& p : parts) all.insert(all.end(), p.begin(), p.end());

  const std::size_t kk = std::min<std::size_t>(k, all.size());
  std::partial_sort(all.begin(), all.begin() + kk, all.end(),
                    [](const core::ScoredDoc& a, const core::ScoredDoc& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.doc < b.doc;
                    });
  all.resize(kk);
  return all;
}

core::QueryResult ClusterBroker::execute(const core::Query& q) {
  std::vector<std::vector<core::ScoredDoc>> parts;
  parts.reserve(nodes_.size());
  core::QueryResult out;
  sim::Duration slowest;
  for (auto& node : nodes_) {
    core::QueryResult part = node->execute(q);
    slowest = sim::max(slowest, part.metrics.total);
    out.metrics.result_count += part.metrics.result_count;
    out.metrics.gpu_kernels += part.metrics.gpu_kernels;
    out.metrics.migrations += part.metrics.migrations;
    out.metrics.cache += part.metrics.cache;
    out.metrics.overlap += part.metrics.overlap;
    // The merged result's trace is the concatenation of the shard plans in
    // shard order: every step the cluster executed for this query.
    out.trace.insert(out.trace.end(), part.trace.begin(), part.trace.end());
    parts.push_back(std::move(part.topk));
  }
  out.topk = merge_topk(parts, q.k);
  out.metrics.total =
      slowest + cfg_.net_rtt + cfg_.merge_per_shard * double(nodes_.size());
  return out;
}

ClusterResult ClusterBroker::run(const std::vector<core::Query>& queries) {
  ClusterResult res;
  service::PoissonArrivals arrivals(cfg_.arrival_qps, cfg_.seed);
  util::Xoshiro256 straggler_rng(cfg_.seed ^ 0x5741474c45525353ULL);
  ResultCache cache(cfg_.cache_capacity, cfg_.cache_budget_bytes);
  HedgeController hedge(cfg_.hedge);
  std::vector<service::QueueDepthTracker> depth(nodes_.size());
  // Per-run replica queues (replica 0 = primary): runs are independent and
  // a broker can replay any number of streams back to back.
  const std::uint32_t replicas = std::max(cfg_.replicas_per_shard, 1u);
  std::vector<std::vector<service::FcfsServer>> servers(
      nodes_.size(), std::vector<service::FcfsServer>(replicas));

  const sim::Duration half_rtt = cfg_.net_rtt * 0.5;
  const bool can_hedge = replicas >= 2;

  std::vector<std::vector<core::ScoredDoc>> parts(nodes_.size());

  for (const auto& q : queries) {
    const sim::Duration t_arrival = arrivals.next();

    const CacheKey key = make_cache_key(q);
    if (cache.enabled()) {
      if (cache.lookup(key) != nullptr) {
        const sim::Duration done = t_arrival + cfg_.cache_hit_latency;
        res.response_ms.add((done - t_arrival).ms());
        res.horizon = sim::max(res.horizon, done);
        ++res.cache_hits_served;
        continue;
      }
    }

    // Scatter: the query reaches every shard half an RTT after arrival and
    // queues behind that shard's primary backlog.
    sim::Duration critical;  // slowest shard response, broker-side clock
    for (std::uint32_t s = 0; s < nodes_.size(); ++s) {
      ShardNode& node = *nodes_[s];
      const sim::Duration t_shard = t_arrival + half_rtt;

      core::QueryResult part = node.execute(q);
      parts[s] = std::move(part.topk);
      res.engine_cache += part.metrics.cache;
      res.trace.add(part.trace);
      res.engine_overlap += part.metrics.overlap;
      sim::Duration svc = part.metrics.total;
      sim::Duration svc_primary = svc;
      if (cfg_.straggler.probability > 0.0 &&
          straggler_rng.uniform01() < cfg_.straggler.probability) {
        svc_primary = svc * cfg_.straggler.slowdown;
      }

      const service::Completion primary =
          servers[s][0].submit(t_shard, svc_primary);
      depth[s].observe(t_shard, primary.done);
      sim::Duration responded = primary.done;

      // Hedge: the broker's timer fires delay after the scatter reached the
      // shard; if the primary still owes a reply, the replica gets a copy.
      if (can_hedge) {
        if (const auto delay = hedge.delay();
            delay && primary.done > t_shard + *delay) {
          const sim::Duration t_hedge = t_shard + *delay;
          const service::Completion hedged =
              servers[s][1].submit(t_hedge, svc);
          ++res.hedge.issued;
          if (hedged.done < primary.done) ++res.hedge.won;
          responded = sim::min(responded, hedged.done);
        }
      }

      hedge.record(responded - t_shard);
      critical = sim::max(critical, responded - t_shard);
    }

    // Gather: all shard replies are back half an RTT after the slowest
    // responded; merging costs a per-shard charge at the broker.
    const sim::Duration done =
        t_arrival + half_rtt + critical + half_rtt +
        cfg_.merge_per_shard * double(nodes_.size());
    res.response_ms.add((done - t_arrival).ms());
    res.shard_critical_ms.add(critical.ms());
    res.horizon = sim::max(res.horizon, done);

    if (cache.enabled()) {
      cache.insert(key, merge_topk(parts, q.k));
    }
  }

  for (std::uint32_t s = 0; s < nodes_.size(); ++s) {
    res.shard_utilization.push_back(servers[s][0].utilization(res.horizon));
    res.max_queue_depth =
        std::max(res.max_queue_depth, depth[s].max_depth());
  }
  res.cache = cache.stats();
  res.result_cache_bytes = cache.bytes();
  return res;
}

}  // namespace griffin::cluster
