#include "cluster/broker.h"

#include <algorithm>
#include <cmath>

#include "service/queueing.h"

namespace griffin::cluster {

namespace {

/// Normalizes the config the broker actually runs with: the legacy
/// StragglerConfig knobs become the fault injector's "slow" site (unless
/// that site was set directly, which wins), and the fault seed absorbs the
/// cluster seed so two runs differing only in `seed` see different fault
/// placements. With every site disarmed none of this is ever read.
ClusterConfig normalize(ClusterConfig cfg) {
  if (cfg.straggler.probability > 0.0 && !cfg.faults.slow.armed()) {
    cfg.faults.slow.probability = cfg.straggler.probability;
    cfg.faults.slow_factor = cfg.straggler.slowdown;
  }
  cfg.faults.seed ^= cfg.seed * 0x9e3779b97f4a7c15ULL;
  return cfg;
}

}  // namespace

ClusterBroker::ClusterBroker(const index::InvertedIndex& full,
                             ClusterConfig cfg, sim::HardwareSpec hw,
                             core::HybridOptions opt)
    : cfg_(normalize(std::move(cfg))), injector_(cfg_.faults) {
  const auto doc_shard =
      assign_docs(cfg_.partition, full.docs().num_docs(), cfg_.num_shards);
  auto shards = index::extract_shards(full, doc_shard, cfg_.num_shards);
  nodes_.reserve(shards.size());
  for (auto& s : shards) {
    // Engine-level fault sites (gpu, pcie) run inside the shard's engine,
    // scoped by shard id so a scripted trigger can point at one shard.
    core::HybridOptions shard_opt = opt;
    shard_opt.faults = cfg_.faults;
    shard_opt.fault_scope = s.id;
    nodes_.push_back(
        std::make_unique<ShardNode>(std::move(s), hw, shard_opt));
  }
}

std::vector<core::ScoredDoc> merge_topk(
    std::span<const std::vector<core::ScoredDoc>> parts, std::uint32_t k) {
  std::vector<core::ScoredDoc> all;
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  all.reserve(total);
  for (const auto& p : parts) all.insert(all.end(), p.begin(), p.end());

  const std::size_t kk = std::min<std::size_t>(k, all.size());
  std::partial_sort(all.begin(), all.begin() + kk, all.end(),
                    [](const core::ScoredDoc& a, const core::ScoredDoc& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.doc < b.doc;
                    });
  all.resize(kk);
  return all;
}

core::QueryResult ClusterBroker::execute(const core::Query& q) {
  std::vector<std::vector<core::ScoredDoc>> parts;
  parts.reserve(nodes_.size());
  core::QueryResult out;
  sim::Duration slowest;
  for (auto& node : nodes_) {
    core::QueryResult part = node->execute(q);
    slowest = sim::max(slowest, part.metrics.total);
    out.metrics.result_count += part.metrics.result_count;
    out.metrics.gpu_kernels += part.metrics.gpu_kernels;
    out.metrics.migrations += part.metrics.migrations;
    out.metrics.cache += part.metrics.cache;
    out.metrics.overlap += part.metrics.overlap;
    out.metrics.faults += part.metrics.faults;
    // The merged result's trace is the concatenation of the shard plans in
    // shard order: every step the cluster executed for this query.
    out.trace.insert(out.trace.end(), part.trace.begin(), part.trace.end());
    parts.push_back(std::move(part.topk));
  }
  out.topk = merge_topk(parts, q.k);
  out.metrics.total =
      slowest + cfg_.net_rtt + cfg_.merge_per_shard * double(nodes_.size());
  return out;
}

ClusterResult ClusterBroker::run(const std::vector<core::Query>& queries) {
  ClusterResult res;
  service::PoissonArrivals arrivals(cfg_.arrival_qps, cfg_.seed);
  ResultCache cache(cfg_.cache_capacity, cfg_.cache_budget_bytes);
  HedgeController hedge(cfg_.hedge);
  // Per-primary-replica occupancy trackers for the bottleneck-occupancy
  // trigger (DESIGN.md §12): fed from every shard execution's per-resource
  // busy durations, consulted before the percentile delay would even start.
  std::vector<ReplicaOccupancy> occupancy(
      nodes_.size(),
      ReplicaOccupancy(cfg_.hedge.window, cfg_.hedge.min_samples));
  std::vector<service::QueueDepthTracker> depth(nodes_.size());
  // Per-run replica queues (replica 0 = primary): runs are independent and
  // a broker can replay any number of streams back to back. Breakers are
  // likewise per run — a fresh stream starts with every breaker closed.
  const std::uint32_t replicas = std::max(cfg_.replicas_per_shard, 1u);
  std::vector<std::vector<service::FcfsServer>> servers(
      nodes_.size(), std::vector<service::FcfsServer>(replicas));
  std::vector<std::vector<CircuitBreaker>> breakers(
      nodes_.size(),
      std::vector<CircuitBreaker>(replicas, CircuitBreaker(cfg_.breaker)));

  const sim::Duration half_rtt = cfg_.net_rtt * 0.5;
  const bool can_hedge = replicas >= 2;
  const bool deadline_on = cfg_.shard_deadline.ps() > 0;

  std::vector<std::vector<core::ScoredDoc>> parts(nodes_.size());

  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto& q = queries[qi];
    const sim::Duration t_arrival = arrivals.next();

    const CacheKey key = make_cache_key(q);
    if (cache.enabled()) {
      if (const auto* hit = cache.lookup(key); hit != nullptr) {
        const sim::Duration done = t_arrival + cfg_.cache_hit_latency;
        res.response_ms.add((done - t_arrival).ms());
        res.horizon = sim::max(res.horizon, done);
        ++res.cache_hits_served;
        if (cfg_.record_outcomes) {
          res.outcomes.push_back({qi, true, false, 1.0, *hit});
        }
        continue;
      }
    }

    // Scatter: the query reaches every shard half an RTT after arrival and
    // queues behind a replica's backlog. Under faults each shard runs an
    // attempt loop — crash detection, exponential backoff, failover to the
    // next replica, per-replica circuit breakers — bounded by max_attempts
    // and (when set) the per-shard deadline. Shards that never answer are
    // dropped from the gather: a partial result with coverage < 1.
    sim::Duration critical;  // slowest shard response, broker-side clock
    std::uint32_t answered_count = 0;
    for (std::uint32_t s = 0; s < nodes_.size(); ++s) {
      ShardNode& node = *nodes_[s];
      const sim::Duration t_shard = t_arrival + half_rtt;
      const sim::Duration deadline_at = t_shard + cfg_.shard_deadline;

      // Execution is deterministic, so every replica computes the same
      // answer in the same service time: one engine run serves all
      // attempts, and retries never change the bits a shard returns.
      core::QueryResult part = node.execute(q);
      parts[s] = std::move(part.topk);
      res.engine_cache += part.metrics.cache;
      res.trace.add(part.trace);
      res.engine_overlap += part.metrics.overlap;
      res.faults += part.metrics.faults;
      const sim::Duration svc = part.metrics.total;
      if (can_hedge &&
          cfg_.hedge.trigger == HedgeTrigger::kBottleneckOccupancy) {
        ReplicaOccupancy::Sample sample;
        for (std::size_t rr = 0; rr < sim::kNumResources; ++rr) {
          sample.busy[rr] =
              part.metrics.overlap.busy(static_cast<sim::Resource>(rr));
        }
        sample.span = svc;
        occupancy[s].record(sample);
      }

      sim::Duration t_now = t_shard;
      bool answered = false;
      sim::Duration responded;
      for (std::uint32_t attempt = 0; attempt < cfg_.max_attempts;
           ++attempt) {
        if (deadline_on && t_now >= deadline_at) break;
        const std::uint32_t r = attempt % replicas;
        CircuitBreaker& breaker = breakers[s][r];
        if (!breaker.allow(t_now)) {
          // Open breaker: skip the replica instantly (no crash_detect).
          ++res.faults.breaker_short_circuits;
          continue;
        }
        if (injector_.replica_down(s, r, t_now)) {
          ++res.faults.replica_failures;
          if (breaker.record_failure(t_now)) ++res.faults.breaker_opens;
          t_now += cfg_.crash_detect;  // timeout discovering the crash
          const sim::Duration backoff =
              cfg_.retry_backoff * std::ldexp(1.0, static_cast<int>(attempt));
          t_now += backoff;
          res.faults.backoff_time += backoff;
          continue;
        }

        // Live replica: submit behind its FCFS backlog. The slow site (the
        // straggler model) afflicts only the primary — the hedge/failover
        // replica is a different machine running at normal speed.
        sim::Duration svc_r = svc;
        if (r == 0 && injector_.slow(qi, s)) {
          svc_r = svc * cfg_.faults.slow_factor;
          ++res.faults.slow_replicas;
        }
        const service::Completion c = servers[s][r].submit(t_now, svc_r);
        if (r == 0) depth[s].observe(t_now, c.done);
        responded = c.done;

        // Hedge. Latency-percentile trigger: the broker's timer fires
        // delay after the primary submit; if the primary still owes a
        // reply, a live replica gets a copy. Bottleneck-occupancy trigger:
        // the primary's windowed bottleneck-resource busy fraction is at
        // threshold, so the copy is issued at submit time — the cause
        // (saturation) is visible before the symptom (lag) develops.
        if (can_hedge && r == 0 && cfg_.hedge.enabled) {
          bool fire = false;
          sim::Duration t_hedge = t_now;
          if (cfg_.hedge.trigger == HedgeTrigger::kBottleneckOccupancy) {
            const auto b = occupancy[s].bottleneck();
            fire = b.has_value() &&
                   *b >= cfg_.hedge.occupancy_threshold &&
                   c.done > t_now;
          } else if (const auto delay = hedge.delay();
                     delay && c.done > t_now + *delay) {
            fire = true;
            t_hedge = t_now + *delay;
          }
          if (fire && breakers[s][1].allow(t_hedge) &&
              !injector_.replica_down(s, 1, t_hedge)) {
            const service::Completion hedged =
                servers[s][1].submit(t_hedge, svc);
            ++res.hedge.issued;
            if (hedged.done < c.done) ++res.hedge.won;
            responded = sim::min(responded, hedged.done);
          }
        }

        breaker.record_success();
        if (attempt > 0) ++res.faults.failovers;
        answered = true;
        break;
      }

      bool deadline_missed = false;
      if (answered && deadline_on && responded > deadline_at) {
        // The reply exists but lands after the broker stopped waiting (the
        // work still occupied the replica). Dropped like a silent shard.
        answered = false;
        deadline_missed = true;
      }

      if (answered) {
        hedge.record(responded - t_shard);
        critical = sim::max(critical, responded - t_shard);
        ++answered_count;
      } else {
        parts[s].clear();
        ++res.faults.shards_dropped;
        // The give-up instant bounds this shard's contribution to the
        // critical path: the deadline when that is what expired, else the
        // clock when the attempt budget ran out.
        sim::Duration gave_up = t_now;
        if (deadline_on) {
          if (deadline_missed || t_now >= deadline_at) {
            ++res.faults.deadline_misses;
            gave_up = deadline_at;
          }
        }
        critical = sim::max(critical, gave_up - t_shard);
      }
    }

    // Gather: the broker merges whatever answered by the time the slowest
    // kept shard (or the give-up instant) reported back.
    const double coverage =
        nodes_.empty() ? 1.0
                       : double(answered_count) / double(nodes_.size());
    const bool degraded = answered_count < nodes_.size();
    if (degraded) ++res.faults.degraded_queries;
    res.coverage_sum += coverage;
    res.min_coverage = std::min(res.min_coverage, coverage);
    ++res.gathered_queries;

    const sim::Duration done =
        t_arrival + half_rtt + critical + half_rtt +
        cfg_.merge_per_shard * double(answered_count);
    res.response_ms.add((done - t_arrival).ms());
    res.shard_critical_ms.add(critical.ms());
    res.horizon = sim::max(res.horizon, done);

    // Degraded results are never cached: a later identical query deserves
    // the full answer once the shards recover.
    const bool cacheable = cache.enabled() && !degraded;
    if (cacheable || cfg_.record_outcomes) {
      auto merged = merge_topk(parts, q.k);
      if (cacheable) {
        cache.insert(key, cfg_.record_outcomes
                              ? merged
                              : std::move(merged));
      }
      if (cfg_.record_outcomes) {
        res.outcomes.push_back(
            {qi, false, degraded, coverage, std::move(merged)});
      }
    }
  }

  for (std::uint32_t s = 0; s < nodes_.size(); ++s) {
    res.shard_utilization.push_back(servers[s][0].utilization(res.horizon));
    res.max_queue_depth =
        std::max(res.max_queue_depth, depth[s].max_depth());
  }
  res.cache = cache.stats();
  res.result_cache_bytes = cache.bytes();
  return res;
}

}  // namespace griffin::cluster
