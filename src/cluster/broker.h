// The scatter-gather broker: the serving layer that turns N single-node
// Griffin engines into one cluster. A query arrives at the broker, which
//
//   1. consults the LRU result cache (result_cache.h) — a hit answers in
//      cache_hit_latency without touching any shard;
//   2. on a miss, scatters the query to every shard (one network half-RTT
//      out), where it queues FCFS behind that shard's backlog;
//   3. optionally *hedges*: when a shard has not answered within the
//      adaptive percentile delay (hedging.h), the same query is re-issued
//      to that shard's replica and the first response wins;
//   4. gathers the per-shard top-k heaps (half-RTT back) and merges them
//      into the global top-k — exactly the result the unpartitioned engine
//      would return, because document partitioning decomposes conjunctive
//      queries losslessly and shards score with global statistics
//      (index/shard.h).
//
// Everything runs in the repository's simulated clock: service times come
// from the deterministic engines, queueing from service/queueing.h, and all
// randomness (arrivals, straggler injection) is seeded — a run is exactly
// reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cluster/hedging.h"
#include "cluster/partitioner.h"
#include "cluster/result_cache.h"
#include "cluster/shard_node.h"
#include "core/hybrid_engine.h"
#include "service/service_sim.h"

namespace griffin::cluster {

/// Deterministic slow-node injection: with `probability` per (query, shard),
/// the *primary* replica's service time is multiplied by `slowdown` (a GC
/// pause, a flaky disk, a noisy neighbor). The hedge replica is a different
/// machine and runs at normal speed — the scenario hedging exists for.
struct StragglerConfig {
  double probability = 0.0;
  double slowdown = 10.0;
};

struct ClusterConfig {
  std::uint32_t num_shards = 4;
  PartitionStrategy partition = PartitionStrategy::kRoundRobin;
  /// Replicas per shard; hedging needs >= 2 (the second queue).
  std::uint32_t replicas_per_shard = 2;
  HedgeConfig hedge;
  /// Result-cache entry bound at the broker (0 = no count bound).
  std::size_t cache_capacity = 0;
  /// Result-cache byte budget (0 = no byte bound). Caching is enabled when
  /// either bound is set; both zero disables it.
  std::uint64_t cache_budget_bytes = 0;
  sim::Duration cache_hit_latency = sim::Duration::from_us(5);
  /// Broker <-> shard round trip (intra-datacenter).
  sim::Duration net_rtt = sim::Duration::from_us(200);
  /// Gather-merge cost charged per participating shard.
  sim::Duration merge_per_shard = sim::Duration::from_us(3);
  double arrival_qps = 200.0;
  StragglerConfig straggler;
  std::uint64_t seed = 1;
};

struct ClusterResult {
  util::PercentileTracker response_ms;  ///< arrival -> merged answer
  /// Critical-path shard time per cache-missing query: max over shards of
  /// (queueing + service) as the broker observes it.
  util::PercentileTracker shard_critical_ms;
  CacheStats cache;
  HedgeStats hedge;
  /// Shard-engine cache-tier counters (device list cache + host decoded
  /// cache), summed over every shard execution in the run.
  core::CacheCounters engine_cache;
  /// Plan-step aggregate (QueryResult::trace) over every shard execution in
  /// the run: how the cluster's work split across processors and stages.
  core::TraceSummary trace;
  /// Copy/compute-overlap counters (DESIGN.md §10) summed over every shard
  /// execution in the run.
  core::OverlapCounters engine_overlap;
  /// Resident bytes in the broker's result cache at the end of the run.
  std::uint64_t result_cache_bytes = 0;
  std::vector<double> shard_utilization;  ///< primary replica, per shard
  std::uint64_t max_queue_depth = 0;      ///< across primary replicas
  std::uint64_t cache_hits_served = 0;
  sim::Duration horizon;  ///< last event in the run

  double mean_response_ms() const { return response_ms.mean(); }
};

class ClusterBroker {
 public:
  /// Partitions `full` into cfg.num_shards document shards and stands up
  /// one ShardNode per shard. `full` is only read during construction.
  ClusterBroker(const index::InvertedIndex& full, ClusterConfig cfg,
                sim::HardwareSpec hw = {}, core::HybridOptions opt = {});

  /// Untimed scatter-gather: executes on every shard and merges. Returns
  /// the exact global top-k (the equivalence the cluster tests sweep).
  /// Metrics model the parallel fan-out: total = slowest shard + merge.
  core::QueryResult execute(const core::Query& q);

  /// Timed replay of a query stream: Poisson arrivals, per-replica FCFS
  /// queues, hedging, and the result cache, all in simulated time. Queue,
  /// cache, and hedge state live inside the call — runs are independent,
  /// so the same broker can replay any number of streams deterministically.
  ClusterResult run(const std::vector<core::Query>& queries);

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  ShardNode& node(std::uint32_t s) { return *nodes_[s]; }
  const ShardNode& node(std::uint32_t s) const { return *nodes_[s]; }
  const ClusterConfig& config() const { return cfg_; }

 private:
  ClusterConfig cfg_;
  std::vector<std::unique_ptr<ShardNode>> nodes_;
};

/// Merges per-shard top-k lists into the global top-k with the same
/// ordering the single-node engines use (score desc, docID asc). Document
/// partitioning guarantees no docID appears in more than one part.
std::vector<core::ScoredDoc> merge_topk(
    std::span<const std::vector<core::ScoredDoc>> parts, std::uint32_t k);

}  // namespace griffin::cluster
