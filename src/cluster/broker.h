// The scatter-gather broker: the serving layer that turns N single-node
// Griffin engines into one cluster. A query arrives at the broker, which
//
//   1. consults the LRU result cache (result_cache.h) — a hit answers in
//      cache_hit_latency without touching any shard;
//   2. on a miss, scatters the query to every shard (one network half-RTT
//      out), where it queues FCFS behind that shard's backlog;
//   3. optionally *hedges*: when a shard has not answered within the
//      adaptive percentile delay (hedging.h), the same query is re-issued
//      to that shard's replica and the first response wins;
//   4. gathers the per-shard top-k heaps (half-RTT back) and merges them
//      into the global top-k — exactly the result the unpartitioned engine
//      would return, because document partitioning decomposes conjunctive
//      queries losslessly and shards score with global statistics
//      (index/shard.h).
//
// Everything runs in the repository's simulated clock: service times come
// from the deterministic engines, queueing from service/queueing.h, and all
// randomness (arrivals, straggler injection) is seeded — a run is exactly
// reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cluster/breaker.h"
#include "cluster/hedging.h"
#include "cluster/partitioner.h"
#include "cluster/result_cache.h"
#include "cluster/shard_node.h"
#include "core/hybrid_engine.h"
#include "fault/fault.h"
#include "service/service_sim.h"

namespace griffin::cluster {

/// Deterministic slow-node injection: with `probability` per (query, shard),
/// the *primary* replica's service time is multiplied by `slowdown` (a GC
/// pause, a flaky disk, a noisy neighbor). The hedge replica is a different
/// machine and runs at normal speed — the scenario hedging exists for.
///
/// Alias kept for existing callers/benches: the broker folds this into the
/// fault injector's "slow" site (ClusterConfig::faults) at construction —
/// one injection mechanism, two spellings. Setting faults.slow directly
/// takes precedence.
struct StragglerConfig {
  double probability = 0.0;
  double slowdown = 10.0;
};

struct ClusterConfig {
  std::uint32_t num_shards = 4;
  PartitionStrategy partition = PartitionStrategy::kRoundRobin;
  /// Replicas per shard; hedging needs >= 2 (the second queue).
  std::uint32_t replicas_per_shard = 2;
  HedgeConfig hedge;
  /// Result-cache entry bound at the broker (0 = no count bound).
  std::size_t cache_capacity = 0;
  /// Result-cache byte budget (0 = no byte bound). Caching is enabled when
  /// either bound is set; both zero disables it.
  std::uint64_t cache_budget_bytes = 0;
  sim::Duration cache_hit_latency = sim::Duration::from_us(5);
  /// Broker <-> shard round trip (intra-datacenter).
  sim::Duration net_rtt = sim::Duration::from_us(200);
  /// Gather-merge cost charged per participating shard.
  sim::Duration merge_per_shard = sim::Duration::from_us(3);
  double arrival_qps = 200.0;
  StragglerConfig straggler;
  std::uint64_t seed = 1;

  /// Fault-injection schedule (DESIGN.md §11). Engine sites (gpu, pcie) are
  /// copied into every shard's HybridOptions with fault_scope = shard id;
  /// cluster sites (crash, slow, outages) drive the broker's attempt loop.
  /// The fault seed is mixed with `seed` at construction so two runs that
  /// differ only in the cluster seed see different fault placements.
  fault::FaultConfig faults;
  /// Per-shard response deadline, measured from the instant the scatter
  /// reaches the shard. A shard that has not answered by then is dropped
  /// from the gather (partial result, coverage < 1). Zero disables it.
  sim::Duration shard_deadline;
  /// Submission attempts per shard before giving up; attempt i goes to
  /// replica (i mod replicas_per_shard).
  std::uint32_t max_attempts = 3;
  /// Base retry backoff after a detected replica crash; attempt i waits
  /// retry_backoff * 2^i (exponential).
  sim::Duration retry_backoff = sim::Duration::from_us(100);
  /// Timeout paid to discover a dead replica before failing over.
  sim::Duration crash_detect = sim::Duration::from_us(500);
  /// Per-replica circuit breaker; open breakers short-circuit attempts
  /// without paying crash_detect.
  BreakerConfig breaker;
  /// Record a per-query outcome row (coverage, degraded flag, merged top-k)
  /// in ClusterResult::outcomes. Off by default: it holds the merged top-k
  /// per query, so memory grows with the stream.
  bool record_outcomes = false;
};

/// Per-query gather outcome, recorded when ClusterConfig::record_outcomes
/// is set. Non-degraded outcomes are bit-identical to a fault-free run —
/// the equivalence test_fault_cluster sweeps.
struct QueryOutcome {
  std::uint64_t query = 0;  ///< index in the replayed stream
  bool cache_hit = false;
  bool degraded = false;  ///< gathered with coverage < 1
  double coverage = 1.0;  ///< shards answered / shards total
  std::vector<core::ScoredDoc> topk;
};

struct ClusterResult {
  util::PercentileTracker response_ms;  ///< arrival -> merged answer
  /// Critical-path shard time per cache-missing query: max over shards of
  /// (queueing + service) as the broker observes it.
  util::PercentileTracker shard_critical_ms;
  CacheStats cache;
  HedgeStats hedge;
  /// Shard-engine cache-tier counters (device list cache + host decoded
  /// cache), summed over every shard execution in the run.
  core::CacheCounters engine_cache;
  /// Plan-step aggregate (QueryResult::trace) over every shard execution in
  /// the run: how the cluster's work split across processors and stages.
  core::TraceSummary trace;
  /// Copy/compute-overlap counters (DESIGN.md §10) summed over every shard
  /// execution in the run.
  core::OverlapCounters engine_overlap;
  /// Resident bytes in the broker's result cache at the end of the run.
  std::uint64_t result_cache_bytes = 0;
  std::vector<double> shard_utilization;  ///< primary replica, per shard
  std::uint64_t max_queue_depth = 0;      ///< across primary replicas
  std::uint64_t cache_hits_served = 0;
  sim::Duration horizon;  ///< last event in the run

  /// Fault and degradation counters: engine-level faults summed over every
  /// shard execution plus the broker's own failure handling.
  fault::FaultCounters faults;
  /// Coverage (shards answered / total) accumulated over gathered (cache-
  /// missing) queries; mean_coverage() is 1.0 exactly when nothing degraded.
  double coverage_sum = 0.0;
  double min_coverage = 1.0;
  std::uint64_t gathered_queries = 0;
  /// Per-query outcomes; filled only when ClusterConfig::record_outcomes.
  std::vector<QueryOutcome> outcomes;

  double mean_response_ms() const { return response_ms.mean(); }
  double mean_coverage() const {
    return gathered_queries == 0 ? 1.0
                                 : coverage_sum / double(gathered_queries);
  }
};

class ClusterBroker {
 public:
  /// Partitions `full` into cfg.num_shards document shards and stands up
  /// one ShardNode per shard. `full` is only read during construction.
  ClusterBroker(const index::InvertedIndex& full, ClusterConfig cfg,
                sim::HardwareSpec hw = {}, core::HybridOptions opt = {});

  /// Untimed scatter-gather: executes on every shard and merges. Returns
  /// the exact global top-k (the equivalence the cluster tests sweep).
  /// Metrics model the parallel fan-out: total = slowest shard + merge.
  core::QueryResult execute(const core::Query& q);

  /// Timed replay of a query stream: Poisson arrivals, per-replica FCFS
  /// queues, hedging, and the result cache, all in simulated time. Queue,
  /// cache, and hedge state live inside the call — runs are independent,
  /// so the same broker can replay any number of streams deterministically.
  ClusterResult run(const std::vector<core::Query>& queries);

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  ShardNode& node(std::uint32_t s) { return *nodes_[s]; }
  const ShardNode& node(std::uint32_t s) const { return *nodes_[s]; }
  const ClusterConfig& config() const { return cfg_; }
  const fault::FaultInjector& injector() const { return injector_; }

 private:
  ClusterConfig cfg_;  ///< normalized: straggler folded into faults.slow
  fault::FaultInjector injector_;
  std::vector<std::unique_ptr<ShardNode>> nodes_;
};

/// Merges per-shard top-k lists into the global top-k with the same
/// ordering the single-node engines use (score desc, docID asc). Document
/// partitioning guarantees no docID appears in more than one part.
std::vector<core::ScoredDoc> merge_topk(
    std::span<const std::vector<core::ScoredDoc>> parts, std::uint32_t k);

}  // namespace griffin::cluster
