#include "cluster/shard_node.h"

namespace griffin::cluster {

ShardNode::ShardNode(index::IndexShard shard, sim::HardwareSpec hw,
                     core::HybridOptions opt)
    : shard_(std::move(shard)),
      engine_(shard_.index, hw, opt),
      absent_cost_(sim::Duration::from_us(hw.absent_term_probe_us)) {}

core::QueryResult ShardNode::execute(const core::Query& q) {
  if (!shard_.translate_terms(q.terms, scratch_terms_)) {
    core::QueryResult empty;
    empty.metrics.total = absent_cost_;
    return empty;
  }
  core::Query local = q;
  local.terms = scratch_terms_;
  core::QueryResult res = engine_.execute(local);
  cache_ += res.metrics.cache;
  trace_.add(res.trace);
  overlap_ += res.metrics.overlap;
  faults_ += res.metrics.faults;
  return res;
}

}  // namespace griffin::cluster
