// Hedged requests — the classic tail-at-scale mitigation (Dean & Barroso,
// CACM 2013): if a shard has not answered within a delay derived from the
// observed latency distribution (e.g. its p95), re-issue the request to a
// replica and take whichever response lands first. The delay is adaptive:
// the controller keeps every observed shard response time and answers the
// configured percentile, so hedges fire only on genuine stragglers (~5% of
// requests at p95) instead of doubling all load.
//
// In the discrete-event timeline "the timer fires before the reply" is the
// condition primary_done > issue_time + delay(), which the broker can test
// exactly (cluster/broker.cpp). Hedged work is not cancelled on either side
// — the conservative no-cancellation variant — so replica queues absorb the
// duplicate service time.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/time.h"
#include "util/stats.h"

namespace griffin::cluster {

struct HedgeConfig {
  bool enabled = false;
  /// Hedge when a shard's response lags this percentile of observed
  /// per-shard response times.
  double percentile = 95.0;
  /// Observations required before the percentile estimate is trusted; no
  /// hedges fire during warm-up.
  std::uint32_t min_samples = 32;
};

class HedgeController {
 public:
  explicit HedgeController(HedgeConfig cfg) : cfg_(cfg) {}

  const HedgeConfig& config() const { return cfg_; }

  /// Current hedge delay, or nullopt while disabled / warming up.
  std::optional<sim::Duration> delay() const {
    if (!cfg_.enabled || observed_ms_.count() < cfg_.min_samples) {
      return std::nullopt;
    }
    return sim::Duration::from_ms(observed_ms_.percentile(cfg_.percentile));
  }

  /// Feeds one observed shard response time (queueing + service, as seen by
  /// the broker).
  void record(sim::Duration shard_response) {
    observed_ms_.add(shard_response.ms());
  }

  std::size_t observations() const { return observed_ms_.count(); }

 private:
  HedgeConfig cfg_;
  util::PercentileTracker observed_ms_;
};

struct HedgeStats {
  std::uint64_t issued = 0;  ///< hedges sent to a replica
  std::uint64_t won = 0;     ///< hedges that beat the primary
};

}  // namespace griffin::cluster
