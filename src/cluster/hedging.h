// Hedged requests — the classic tail-at-scale mitigation (Dean & Barroso,
// CACM 2013): if a shard has not answered within a delay derived from the
// observed latency distribution (e.g. its p95), re-issue the request to a
// replica and take whichever response lands first. The delay is adaptive:
// the controller keeps every observed shard response time and answers the
// configured percentile, so hedges fire only on genuine stragglers (~5% of
// requests at p95) instead of doubling all load.
//
// In the discrete-event timeline "the timer fires before the reply" is the
// condition primary_done > issue_time + delay(), which the broker can test
// exactly (cluster/broker.cpp). Hedged work is not cancelled on either side
// — the conservative no-cancellation variant — so replica queues absorb the
// duplicate service time.
//
// The delay estimate runs over a bounded sliding window of the most recent
// observations (HedgeConfig::window), not the full history: a long service
// run would otherwise grow memory without bound, and — worse — the estimate
// would never adapt to a regime shift (a warming cache, a recovered
// replica), because millions of stale samples outvote every new one.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/time.h"
#include "sim/timeline.h"

namespace griffin::cluster {

/// What arms a hedge (DESIGN.md §12). The latency-percentile trigger reacts
/// to the *symptom* — this request is already slow; the occupancy trigger
/// reacts to the *cause* — the replica's bottleneck resource is saturated,
/// so queueing delay is coming even for requests that have not lagged yet.
enum class HedgeTrigger : std::uint8_t {
  /// Classic Dean & Barroso: hedge when the primary's reply lags the
  /// observed response-time percentile.
  kLatencyPercentile = 0,
  /// Resource-accurate: hedge immediately when the primary replica's
  /// bottleneck-resource busy fraction (windowed, from the shards' timeline
  /// accounting) is at or above occupancy_threshold.
  kBottleneckOccupancy = 1,
};

struct HedgeConfig {
  bool enabled = false;
  HedgeTrigger trigger = HedgeTrigger::kLatencyPercentile;
  /// Hedge when a shard's response lags this percentile of observed
  /// per-shard response times (kLatencyPercentile).
  double percentile = 95.0;
  /// Windowed bottleneck busy fraction at/above which the occupancy trigger
  /// fires (kBottleneckOccupancy).
  double occupancy_threshold = 0.65;
  /// Observations required before the estimate (either trigger) is trusted;
  /// no hedges fire during warm-up.
  std::uint32_t min_samples = 32;
  /// Sliding-window size for the estimate: only the most recent `window`
  /// observations vote. 0 keeps every observation (the unbounded
  /// pre-window behavior — memory grows with the run).
  std::uint32_t window = 512;
};

/// Windowed per-resource occupancy of one replica, fed from the per-query
/// timeline busy durations the shards report (core::OverlapCounters). The
/// bottleneck is the resource with the highest windowed busy fraction:
/// sum(busy_r) / sum(span) over the resident samples — a span-weighted
/// average, so long queries count for what they occupied.
class ReplicaOccupancy {
 public:
  ReplicaOccupancy(std::uint32_t window, std::uint32_t min_samples)
      : window_(window), min_samples_(min_samples) {}

  struct Sample {
    std::array<sim::Duration, sim::kNumResources> busy{};
    sim::Duration span;
  };

  void record(const Sample& s) {
    for (std::size_t r = 0; r < sim::kNumResources; ++r) {
      busy_[r] += s.busy[r];
    }
    span_ += s.span;
    if (window_ == 0 || samples_.size() < window_) {
      samples_.push_back(s);
    } else {
      const Sample& old = samples_[next_];
      for (std::size_t r = 0; r < sim::kNumResources; ++r) {
        busy_[r] -= old.busy[r];
      }
      span_ -= old.span;
      samples_[next_] = s;
      next_ = (next_ + 1) % window_;
    }
    ++total_;
  }

  /// The bottleneck resource's windowed busy fraction, or nullopt while
  /// warming up / with an empty span. Can exceed 1 under multi-tenant
  /// contention (a resource busier than one query-span's worth of time).
  std::optional<double> bottleneck() const {
    if (total_ < min_samples_ || span_.ps() <= 0) return std::nullopt;
    sim::Duration top;
    for (const auto& b : busy_) top = sim::max(top, b);
    return top / span_;
  }

  /// The resource the bottleneck fraction belongs to (kCpu on an empty
  /// window).
  sim::Resource bottleneck_resource() const {
    std::size_t arg = 0;
    for (std::size_t r = 1; r < sim::kNumResources; ++r) {
      if (busy_[r] > busy_[arg]) arg = r;
    }
    return static_cast<sim::Resource>(arg);
  }

  std::size_t observations() const { return total_; }

 private:
  std::uint32_t window_;
  std::uint32_t min_samples_;
  std::vector<Sample> samples_;  ///< ring buffer once full
  std::size_t next_ = 0;
  std::size_t total_ = 0;
  std::array<sim::Duration, sim::kNumResources> busy_{};  ///< windowed sums
  sim::Duration span_;                                    ///< windowed sum
};

class HedgeController {
 public:
  explicit HedgeController(HedgeConfig cfg) : cfg_(cfg) {}

  const HedgeConfig& config() const { return cfg_; }

  /// Current hedge delay, or nullopt while disabled / warming up. Warm-up
  /// counts *total* observations, so a controller stays trusted once warmed
  /// even though the window holds only the newest samples.
  std::optional<sim::Duration> delay() const {
    if (!cfg_.enabled || total_ < cfg_.min_samples || samples_.empty()) {
      return std::nullopt;
    }
    return sim::Duration::from_ms(percentile(cfg_.percentile));
  }

  /// Feeds one observed shard response time (queueing + service, as seen by
  /// the broker). Past the window bound, the oldest observation is
  /// overwritten (ring buffer).
  void record(sim::Duration shard_response) {
    const double ms = shard_response.ms();
    if (cfg_.window == 0 || samples_.size() < cfg_.window) {
      samples_.push_back(ms);
    } else {
      samples_[next_] = ms;
      next_ = (next_ + 1) % cfg_.window;
    }
    ++total_;
  }

  /// Observations ever recorded (not the window occupancy).
  std::size_t observations() const { return total_; }
  std::size_t window_size() const { return samples_.size(); }

 private:
  /// Nearest-rank percentile over the current window — the same rule
  /// util::PercentileTracker uses, restricted to the resident samples.
  double percentile(double p) const {
    scratch_ = samples_;
    std::sort(scratch_.begin(), scratch_.end());
    const auto n = static_cast<double>(scratch_.size());
    auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    rank = std::clamp<std::size_t>(rank, 1, scratch_.size());
    return scratch_[rank - 1];
  }

  HedgeConfig cfg_;
  std::vector<double> samples_;  ///< ring buffer once full
  std::size_t next_ = 0;         ///< overwrite cursor
  std::size_t total_ = 0;        ///< lifetime observation count
  mutable std::vector<double> scratch_;
};

struct HedgeStats {
  std::uint64_t issued = 0;  ///< hedges sent to a replica
  std::uint64_t won = 0;     ///< hedges that beat the primary
};

}  // namespace griffin::cluster
