#include "cluster/result_cache.h"

#include <algorithm>

#include "util/rng.h"

namespace griffin::cluster {

CacheKey make_cache_key(const core::Query& q) {
  CacheKey key;
  key.terms = q.terms;
  std::sort(key.terms.begin(), key.terms.end());
  key.k = q.k;
  return key;
}

std::size_t CacheKeyHash::operator()(const CacheKey& key) const {
  std::uint64_t h = 0x6a09e667f3bcc908ULL ^ key.k;
  for (const auto t : key.terms) {
    std::uint64_t s = h ^ t;
    h = util::splitmix64(s);
  }
  return static_cast<std::size_t>(h);
}

const std::vector<core::ScoredDoc>* ResultCache::lookup(const CacheKey& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return &it->second->topk;
}

void ResultCache::insert(const CacheKey& key,
                         std::vector<core::ScoredDoc> topk) {
  if (!enabled()) return;
  const std::uint64_t entry_size = entry_bytes(key, topk);
  // An entry the whole budget cannot hold would evict everything and still
  // overflow; drop it instead.
  if (byte_budget_ != 0 && entry_size > byte_budget_) return;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_ -= it->second->bytes;
    it->second->topk = std::move(topk);
    it->second->bytes = entry_size;
    bytes_ += entry_size;
    lru_.splice(lru_.begin(), lru_, it->second);
    evict_to_bounds();
    return;
  }
  lru_.push_front(Entry{key, std::move(topk), entry_size});
  entries_.emplace(lru_.front().key, lru_.begin());
  bytes_ += entry_size;
  ++stats_.insertions;
  evict_to_bounds();
}

void ResultCache::evict_to_bounds() {
  // size() > 1 keeps the just-inserted front entry: it fits alone.
  while (((capacity_ != 0 && entries_.size() > capacity_) ||
          (byte_budget_ != 0 && bytes_ > byte_budget_)) &&
         lru_.size() > 1) {
    bytes_ -= lru_.back().bytes;
    entries_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace griffin::cluster
