#include "cluster/result_cache.h"

#include <algorithm>

#include "util/rng.h"

namespace griffin::cluster {

CacheKey make_cache_key(const core::Query& q) {
  CacheKey key;
  key.terms = q.terms;
  std::sort(key.terms.begin(), key.terms.end());
  key.k = q.k;
  return key;
}

std::size_t CacheKeyHash::operator()(const CacheKey& key) const {
  std::uint64_t h = 0x6a09e667f3bcc908ULL ^ key.k;
  for (const auto t : key.terms) {
    std::uint64_t s = h ^ t;
    h = util::splitmix64(s);
  }
  return static_cast<std::size_t>(h);
}

const std::vector<core::ScoredDoc>* ResultCache::lookup(const CacheKey& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return &it->second->topk;
}

void ResultCache::insert(const CacheKey& key,
                         std::vector<core::ScoredDoc> topk) {
  if (capacity_ == 0) return;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->topk = std::move(topk);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (entries_.size() >= capacity_) {
    entries_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{key, std::move(topk)});
  entries_.emplace(lru_.front().key, lru_.begin());
  ++stats_.insertions;
}

}  // namespace griffin::cluster
