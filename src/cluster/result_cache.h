// Broker-side query-result cache. Web query streams are Zipf-skewed — a
// small head of popular queries recurs constantly — so caching merged top-k
// results at the broker absorbs the head before it ever touches a shard
// (saving the whole scatter/gather fan-out, not just one node's work).
//
// Keys are (sorted term-set, k): conjunctive AND is order-insensitive, so
// "a b" and "b a" share an entry; k participates because a k=10 entry
// cannot serve a k=100 request. Classic LRU over a doubly linked list +
// hash map, O(1) lookup/insert/evict.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "core/query.h"

namespace griffin::cluster {

struct CacheKey {
  std::vector<index::TermId> terms;  ///< sorted ascending
  std::uint32_t k = 0;

  bool operator==(const CacheKey& o) const = default;
};

/// Builds the canonical (sorted terms, k) key for a query.
CacheKey make_cache_key(const core::Query& q);

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    const std::uint64_t n = hits + misses;
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

class ResultCache {
 public:
  /// capacity = max resident entries; 0 disables the cache entirely
  /// (lookups always miss, inserts are dropped).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached top-k and refreshes recency, or nullptr on miss.
  const std::vector<core::ScoredDoc>* lookup(const CacheKey& key);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entry when full.
  void insert(const CacheKey& key, std::vector<core::ScoredDoc> topk);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    CacheKey key;
    std::vector<core::ScoredDoc> topk;
  };
  using Lru = std::list<Entry>;

  std::size_t capacity_;
  Lru lru_;  // front = most recent
  std::unordered_map<CacheKey, Lru::iterator, CacheKeyHash> entries_;
  CacheStats stats_;
};

}  // namespace griffin::cluster
