// Broker-side query-result cache. Web query streams are Zipf-skewed — a
// small head of popular queries recurs constantly — so caching merged top-k
// results at the broker absorbs the head before it ever touches a shard
// (saving the whole scatter/gather fan-out, not just one node's work).
//
// Keys are (sorted term-set, k): conjunctive AND is order-insensitive, so
// "a b" and "b a" share an entry; k participates because a k=10 entry
// cannot serve a k=100 request. Classic LRU over a doubly linked list +
// hash map, O(1) lookup/insert/evict.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "core/query.h"

namespace griffin::cluster {

struct CacheKey {
  std::vector<index::TermId> terms;  ///< sorted ascending
  std::uint32_t k = 0;

  bool operator==(const CacheKey& o) const = default;
};

/// Builds the canonical (sorted terms, k) key for a query.
CacheKey make_cache_key(const core::Query& q);

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    const std::uint64_t n = hits + misses;
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

class ResultCache {
 public:
  /// capacity = max resident entries (0 = no count bound); byte_budget
  /// bounds resident memory in bytes (0 = no byte bound) — entry sizes vary
  /// with k and term count, so a count bound alone does not actually bound
  /// broker memory. Both zero disables the cache entirely (lookups always
  /// miss, inserts are dropped).
  explicit ResultCache(std::size_t capacity, std::uint64_t byte_budget = 0)
      : capacity_(capacity), byte_budget_(byte_budget) {}

  bool enabled() const { return capacity_ != 0 || byte_budget_ != 0; }

  /// Resident bytes of one entry: key terms + scored docs + bookkeeping.
  static std::uint64_t entry_bytes(const CacheKey& key,
                                   const std::vector<core::ScoredDoc>& topk) {
    return 64 + key.terms.size() * sizeof(index::TermId) +
           topk.size() * sizeof(core::ScoredDoc);
  }

  /// Returns the cached top-k and refreshes recency, or nullptr on miss.
  const std::vector<core::ScoredDoc>* lookup(const CacheKey& key);

  /// Inserts (or refreshes) an entry, evicting least recently used entries
  /// until both the count and byte bounds hold. An entry larger than the
  /// whole byte budget is dropped.
  void insert(const CacheKey& key, std::vector<core::ScoredDoc> topk);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Resident bytes across all entries.
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t byte_budget() const { return byte_budget_; }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    CacheKey key;
    std::vector<core::ScoredDoc> topk;
    std::uint64_t bytes = 0;
  };
  using Lru = std::list<Entry>;

  void evict_to_bounds();

  std::size_t capacity_;
  std::uint64_t byte_budget_;
  std::uint64_t bytes_ = 0;
  Lru lru_;  // front = most recent
  std::unordered_map<CacheKey, Lru::iterator, CacheKeyHash> entries_;
  CacheStats stats_;
};

}  // namespace griffin::cluster
