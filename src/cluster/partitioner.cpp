#include "cluster/partitioner.h"

#include <stdexcept>

namespace griffin::cluster {

std::string strategy_name(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kRoundRobin:
      return "round-robin";
    case PartitionStrategy::kRange:
      return "range";
  }
  return "?";
}

std::vector<std::uint32_t> assign_docs(PartitionStrategy strategy,
                                       std::uint64_t num_docs,
                                       std::uint32_t num_shards) {
  if (num_shards == 0) throw std::invalid_argument("num_shards must be > 0");
  std::vector<std::uint32_t> map(num_docs);
  switch (strategy) {
    case PartitionStrategy::kRoundRobin:
      for (std::uint64_t d = 0; d < num_docs; ++d) {
        map[d] = static_cast<std::uint32_t>(d % num_shards);
      }
      break;
    case PartitionStrategy::kRange: {
      // Ceil-divided contiguous ranges; the last shard may run short.
      const std::uint64_t width =
          (num_docs + num_shards - 1) / std::uint64_t{num_shards};
      for (std::uint64_t d = 0; d < num_docs; ++d) {
        map[d] = static_cast<std::uint32_t>(d / std::max<std::uint64_t>(width, 1));
      }
      break;
    }
  }
  return map;
}

}  // namespace griffin::cluster
