#include "cpu/decode.h"

namespace griffin::cpu {

namespace {
/// Modeled per-element VByte decode cost (branchy byte loop).
constexpr double kVByteCycles = 3.5;
/// Simple16 unpacks ~a word of values per switch dispatch: very fast.
constexpr double kSimple16Cycles = 1.8;
}  // namespace

std::uint64_t block_payload_bytes(const BlockCompressedList& list,
                                  std::size_t b) {
  const auto& metas = list.metas();
  const std::uint64_t begin = metas[b].bit_offset;
  const std::uint64_t end = b + 1 < metas.size()
                                ? metas[b + 1].bit_offset
                                : list.blob().size() * 64;
  return (end - begin + 7) / 8;
}

std::uint32_t decode_block(const BlockCompressedList& list, std::size_t b,
                           DocId* out, sim::CpuCostAccumulator& acc) {
  const codec::BlockMeta& m = list.meta(b);
  switch (list.scheme()) {
    case codec::Scheme::kPForDelta:
      acc.pfor_regulars(m.count > 0 ? m.count - 1u : 0u);
      acc.pfor_exceptions(m.pfor.n_exceptions);
      break;
    case codec::Scheme::kEliasFano:
      acc.ef_elements(m.count);
      break;
    case codec::Scheme::kVarByte:
      acc.add_cycles(kVByteCycles * m.count);
      break;
    case codec::Scheme::kSimple16:
      acc.add_cycles(kSimple16Cycles * m.count);
      break;
  }
  acc.add_bytes(block_payload_bytes(list, b));
  return list.decode_block(b, out);
}

void decode_all(const BlockCompressedList& list, std::vector<DocId>& out,
                sim::CpuCostAccumulator& acc) {
  out.resize(list.size());
  DocId* p = out.data();
  for (std::size_t b = 0; b < list.num_blocks(); ++b) {
    p += decode_block(list, b, p, acc);
  }
  // Full materialization: the decoded array leaves cache, and the output
  // writes count against memory bandwidth (unlike the cache-hot per-block
  // decodes the intersection loops use).
  acc.decode_materialize(list.size());
  acc.add_bytes(list.size() * sizeof(DocId));
}

}  // namespace griffin::cpu
