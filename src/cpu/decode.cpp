#include "cpu/decode.h"

#include "cpu/simd_cost.h"

namespace griffin::cpu {

namespace {
/// Vector-mode charges for one cache-hot block decode of `m` under the
/// lane-accounting model (cpu/simd_cost.h). Bit-identical output — the
/// functional decode below is shared with the scalar path.
void charge_block_simd(const codec::BlockMeta& m, codec::Scheme scheme,
                       sim::CpuCostAccumulator& acc) {
  const std::uint64_t n = m.count;
  switch (scheme) {
    case codec::Scheme::kPForDelta:
      // SIMD-BP128-style slot unpack + vectorized delta prefix-sum; the
      // exception patch chain stays scalar (data-dependent branches).
      simd::charge_loop(acc, n, simd::kUnpackOps + simd::kDeltaOps,
                        simd::kDeltaShuffles);
      acc.pfor_exceptions(m.hdr.pfor().n_exceptions);
      break;
    case codec::Scheme::kEliasFano:
      // The unary high-bits scan stays word-serial; the packed lower bits
      // unpack like a bit-packed slot, then merge via the same prefix adds.
      acc.add_cycles(simd::kEfHighScalarCycles * static_cast<double>(n));
      simd::charge_loop(acc, n, simd::kEfLowerOps + simd::kDeltaOps,
                        simd::kDeltaShuffles);
      break;
    case codec::Scheme::kVarByte:
      simd::charge_loop(acc, n, simd::kVByteSimdOps, simd::kVByteSimdShuffles);
      acc.add_cycles(simd::kVByteSimdResidueCycles * static_cast<double>(n));
      break;
    case codec::Scheme::kSimple16:
      // Selector-switch dispatch is not lane-parallel: scalar either way.
      acc.add_cycles(simd::kSimple16ScalarCycles * static_cast<double>(n));
      break;
    case codec::Scheme::kBitPack128:
      // PForDelta's fast path with the exception patching deleted — the
      // codec the vector unit likes best.
      simd::charge_loop(acc, n, simd::kUnpackOps + simd::kDeltaOps,
                        simd::kDeltaShuffles);
      break;
    case codec::Scheme::kRePair:
      // Grammar expansion is pointer chasing: scalar in both modes.
      acc.add_cycles(simd::kRePairExpandCycles * static_cast<double>(n));
      break;
  }
}
}  // namespace

std::uint64_t block_payload_bytes(const BlockCompressedList& list,
                                  std::size_t b) {
  const auto& metas = list.metas();
  const std::uint64_t begin = metas[b].bit_offset;
  const std::uint64_t end = b + 1 < metas.size()
                                ? metas[b + 1].bit_offset
                                : list.blob().size() * 64;
  return (end - begin + 7) / 8;
}

std::uint32_t decode_block(const BlockCompressedList& list, std::size_t b,
                           DocId* out, sim::CpuCostAccumulator& acc) {
  const codec::BlockMeta& m = list.meta(b);
  if (simd::enabled(acc.spec())) {
    charge_block_simd(m, list.scheme(), acc);
  } else {
    switch (list.scheme()) {
      case codec::Scheme::kPForDelta:
        acc.pfor_regulars(m.count > 0 ? m.count - 1u : 0u);
        acc.pfor_exceptions(m.hdr.pfor().n_exceptions);
        break;
      case codec::Scheme::kEliasFano:
        acc.ef_elements(m.count);
        break;
      case codec::Scheme::kVarByte:
        acc.add_cycles(simd::kVByteScalarCycles * m.count);
        break;
      case codec::Scheme::kSimple16:
        acc.add_cycles(simd::kSimple16ScalarCycles * m.count);
        break;
      case codec::Scheme::kBitPack128:
        // Same slot-unpack + delta work as PForDelta's regulars, and by
        // construction no exceptions.
        acc.pfor_regulars(m.count > 0 ? m.count - 1u : 0u);
        break;
      case codec::Scheme::kRePair:
        acc.add_cycles(simd::kRePairExpandCycles * m.count);
        break;
    }
  }
  acc.add_bytes(block_payload_bytes(list, b));
  return list.decode_block(b, out);
}

void decode_all(const BlockCompressedList& list, std::vector<DocId>& out,
                sim::CpuCostAccumulator& acc) {
  out.resize(list.size());
  DocId* p = out.data();
  for (std::size_t b = 0; b < list.num_blocks(); ++b) {
    p += decode_block(list, b, p, acc);
  }
  // Full materialization: the decoded array leaves cache, and the output
  // writes count against memory bandwidth (unlike the cache-hot per-block
  // decodes the intersection loops use). In vector mode the stores stream
  // out ceil(n/lanes) at a time; a scalar residue covers the block-loop
  // control and skip-table touches that don't vectorize.
  if (simd::enabled(acc.spec())) {
    acc.add_cycles(simd::kMaterializeResidueCycles *
                   static_cast<double>(list.size()));
    simd::charge_loop(acc, list.size(), simd::kStoreOps);
  } else {
    acc.decode_materialize(list.size());
  }
  acc.add_bytes(list.size() * sizeof(DocId));
}

}  // namespace griffin::cpu
