// The pairwise SvS intersection step shared by the CPU-only engine
// (cpu/engine.cpp) and the hybrid engine's CPU steps (core/hybrid_engine.cpp),
// which previously re-implemented it. One stepper owns the per-pair choice
// between the sequential merge and the skip-pointer binary search (chosen by
// the length ratio, paper §2.1.2/§2.2), the stage/placement accounting, and
// the optional host decoded-postings cache (cpu/decoded_cache.h).
//
// Cache interplay, chosen so a cold query costs exactly what it does with
// the cache off:
//   - skip path: the probe side is decoded via the cache (decode_all already
//     ran there, so a fill is free); the *target* is only consulted — a hit
//     switches to the decoded-array search, a miss keeps the compressed
//     skip search (decoding a long target would defeat skipping);
//   - merge path: both sides are consulted but never filled (the block-wise
//     merge never materializes a decoded list, so a fill would add cost);
//   - single-term queries decode via the cache.
// At most one cache insert happens per step, and always before any other
// returned span is taken, so spans never dangle (see util/lru_cache.h).
#pragma once

#include <span>
#include <vector>

#include "core/query.h"
#include "cpu/decoded_cache.h"
#include "sim/cpu_cost_model.h"
#include "sim/hardware_spec.h"

namespace griffin::cpu {

struct SvsOptions {
  /// Use skip_intersect when |longer| / |shorter| >= this; merge otherwise.
  double skip_ratio = 32.0;
  /// Charge EF in-block random access in the compressed skip path.
  bool ef_random_access = false;
};

class SvsStepper {
 public:
  /// `cache` may be nullptr (or disabled): behavior and charges then match
  /// the pre-cache engines exactly.
  SvsStepper(const index::InvertedIndex& idx, sim::CpuSpec spec,
             SvsOptions opt, DecodedCache* cache)
      : idx_(&idx), spec_(spec), opt_(opt), cache_(cache) {}

  /// First pair of a query: both sides are full lists, |a| <= |b|.
  /// Charges m.intersect and records a kCpu placement.
  void first_pair(index::TermId a, index::TermId b,
                  std::vector<codec::DocId>& out, core::QueryMetrics& m);

  /// Intersects the current (decoded) intermediate with list t in place.
  void next_step(std::vector<codec::DocId>& current, index::TermId t,
                 core::QueryMetrics& m);

  /// Single-term query: decodes the whole list. Charges m.decode.
  void decode_single(index::TermId t, std::vector<codec::DocId>& out,
                     core::QueryMetrics& m);

  /// Stat-free residency probe (core::StepShape::longer_host_decoded).
  bool host_decoded(index::TermId t) const {
    return cache_ != nullptr && cache_->resident(t);
  }

  const SvsOptions& options() const { return opt_; }

 private:
  bool cache_on() const { return cache_ != nullptr && cache_->enabled(); }

  /// Decodes list t, serving and filling the cache when enabled. The
  /// returned span points either into the cache or into `scratch`.
  std::span<const codec::DocId> decode_via_cache(
      index::TermId t, std::vector<codec::DocId>& scratch,
      sim::CpuCostAccumulator& acc, core::QueryMetrics& m);

  /// Lookup-only (never fills): the cached decoded list or nullptr.
  const std::vector<codec::DocId>* cached_only(index::TermId t,
                                               core::QueryMetrics& m);

  const index::InvertedIndex* idx_;
  sim::CpuSpec spec_;
  SvsOptions opt_;
  DecodedCache* cache_;
  std::vector<codec::DocId> probe_scratch_;
  std::vector<codec::DocId> out_scratch_;
};

}  // namespace griffin::cpu
