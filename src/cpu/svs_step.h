// The pairwise SvS intersection step shared by the CPU-only engine
// (cpu/engine.cpp) and the hybrid engine's CPU steps (core/hybrid_engine.cpp),
// which previously re-implemented it. One stepper owns the per-pair choice
// between the sequential merge and the skip-pointer binary search (chosen by
// the length ratio, paper §2.1.2/§2.2), the stage/placement accounting, and
// the optional host decoded-postings cache (cpu/decoded_cache.h).
//
// Cache interplay, chosen so a cold query costs exactly what it does with
// the cache off:
//   - skip path: the probe side is decoded via the cache (decode_all already
//     ran there, so a fill is free); the *target* is only consulted — a hit
//     switches to the decoded-array search, a miss keeps the compressed
//     skip search (decoding a long target would defeat skipping);
//   - merge path: both sides are consulted but never filled (the block-wise
//     merge never materializes a decoded list, so a fill would add cost);
//   - single-term queries decode via the cache.
// At most one cache insert happens per step, and always before any other
// returned span is taken, so spans never dangle (see util/lru_cache.h).
#pragma once

#include <span>
#include <vector>

#include "core/query.h"
#include "cpu/decoded_cache.h"
#include "sim/cpu_cost_model.h"
#include "sim/hardware_spec.h"

namespace griffin::cpu {

/// The CPU-side merge/skip crossover (paper §2.2): skip_intersect when
/// |longer| / |shorter| >= this, merge below. The single definition shared
/// by SvsOptions, CpuEngineOptions and the scheduler's CPU cost estimate —
/// previously three literal 32.0s that could drift apart.
inline constexpr double kDefaultSkipRatio = 32.0;

struct SvsOptions {
  /// Use skip_intersect when |longer| / |shorter| >= this; merge otherwise.
  double skip_ratio = kDefaultSkipRatio;
  /// Charge EF in-block random access in the compressed skip path.
  bool ef_random_access = false;
};

class SvsStepper {
 public:
  /// `cache` may be nullptr (or disabled): behavior and charges then match
  /// the pre-cache engines exactly.
  SvsStepper(const index::InvertedIndex& idx, sim::CpuSpec spec,
             SvsOptions opt, DecodedCache* cache)
      : idx_(&idx), spec_(spec), opt_(opt), cache_(cache) {}

  /// First pair of a query: both sides are full lists, |a| <= |b|.
  /// Charges m.intersect and records a kCpu placement.
  void first_pair(index::TermId a, index::TermId b,
                  std::vector<codec::DocId>& out, core::QueryMetrics& m);

  /// Intersects the current (decoded) intermediate with list t in place.
  void next_step(std::vector<codec::DocId>& current, index::TermId t,
                 core::QueryMetrics& m);

  /// Single-term query: decodes the whole list. Charges m.decode.
  void decode_single(index::TermId t, std::vector<codec::DocId>& out,
                     core::QueryMetrics& m);

  // ---- Co-execution support (DESIGN.md §15) ----------------------------

  /// Materializes the probe side of a split first-pair intersect: decodes
  /// list t fully (via the cache, like the skip path's probe decode) into
  /// `out`. Charges m.intersect — the decode is part of the intersect step,
  /// exactly as in the unsplit skip path. No placement is recorded; the
  /// executor records one kSplit placement for the whole step.
  void materialize_probes(index::TermId t, std::vector<codec::DocId>& out,
                          core::QueryMetrics& m);

  /// The CPU leg of a split intersect: intersects the (sorted, decoded)
  /// probe range with list t, appending matches to `out`. Chooses skip vs
  /// merge by the leg's own length ratio — the same rule next_step applies,
  /// with the same cache interplay — so a degenerate alpha=0 split computes
  /// exactly what the unsplit CPU step would. Charges m.intersect; records
  /// no placement.
  void partial_step(std::span<const codec::DocId> probes, index::TermId t,
                    std::vector<codec::DocId>& out, core::QueryMetrics& m);

  /// Inter-step pipelining (kHostDecode): decodes list t into the decoded
  /// cache while the device runs the current step. Charges m.decode with
  /// exactly the cost a later consumer would have paid; with the cache
  /// disabled (or the list too big to fit) the decode is charged and the
  /// result discarded — the planner bet on hiding it either way. No-op
  /// (zero charge) when t is already cached.
  void decode_ahead(index::TermId t, core::QueryMetrics& m);

  /// Stat-free residency probe (core::StepShape::longer_host_decoded).
  bool host_decoded(index::TermId t) const {
    return cache_ != nullptr && cache_->resident(t);
  }

  const SvsOptions& options() const { return opt_; }

 private:
  bool cache_on() const { return cache_ != nullptr && cache_->enabled(); }

  /// Decodes list t, serving and filling the cache when enabled. The
  /// returned span points either into the cache or into `scratch`.
  std::span<const codec::DocId> decode_via_cache(
      index::TermId t, std::vector<codec::DocId>& scratch,
      sim::CpuCostAccumulator& acc, core::QueryMetrics& m);

  /// Lookup-only (never fills): the cached decoded list or nullptr.
  const std::vector<codec::DocId>* cached_only(index::TermId t,
                                               core::QueryMetrics& m);

  const index::InvertedIndex* idx_;
  sim::CpuSpec spec_;
  SvsOptions opt_;
  DecodedCache* cache_;
  std::vector<codec::DocId> probe_scratch_;
  std::vector<codec::DocId> out_scratch_;
};

}  // namespace griffin::cpu
