#include "cpu/svs_step.h"

#include "cpu/decode.h"
#include "cpu/intersect.h"

namespace griffin::cpu {

std::span<const codec::DocId> SvsStepper::decode_via_cache(
    index::TermId t, std::vector<codec::DocId>& scratch,
    sim::CpuCostAccumulator& acc, core::QueryMetrics& m) {
  const auto& list = idx_->list(t).docids;
  if (!cache_on()) {
    scratch.clear();
    decode_all(list, scratch, acc);
    return scratch;
  }
  if (const auto* hit = cache_->lookup(t)) {
    ++m.cache.host_hits;  // decode + materialization charges skipped
    return *hit;
  }
  ++m.cache.host_misses;
  scratch.clear();
  decode_all(list, scratch, acc);  // the fill pays exactly the uncached cost
  const std::uint64_t bytes = DecodedCache::entry_bytes(scratch.size());
  if (cache_->fits(bytes)) {
    std::uint64_t evicted = 0;
    const auto* stored = cache_->insert(t, std::move(scratch), &evicted);
    m.cache.host_evictions += evicted;
    return *stored;
  }
  return scratch;
}

const std::vector<codec::DocId>* SvsStepper::cached_only(
    index::TermId t, core::QueryMetrics& m) {
  if (!cache_on()) return nullptr;
  const auto* hit = cache_->lookup(t);
  if (hit != nullptr) {
    ++m.cache.host_hits;
  } else {
    ++m.cache.host_misses;
  }
  return hit;
}

void SvsStepper::first_pair(index::TermId a, index::TermId b,
                            std::vector<codec::DocId>& out,
                            core::QueryMetrics& m) {
  const auto& l0 = idx_->list(a).docids;
  const auto& l1 = idx_->list(b).docids;
  sim::CpuCostAccumulator acc(spec_);
  const double ratio =
      static_cast<double>(l1.size()) / static_cast<double>(l0.size());
  if (ratio >= opt_.skip_ratio) {
    // Probe side decodes fully either way — route it through the cache
    // (possible insert) before the target lookup takes any span.
    const auto probes = decode_via_cache(a, probe_scratch_, acc, m);
    if (const auto* target = cached_only(b, m)) {
      skip_intersect(probes, std::span<const codec::DocId>(*target), out, acc);
    } else {
      skip_intersect(probes, l1, out, acc, opt_.ef_random_access);
    }
  } else {
    const auto* d0 = cached_only(a, m);
    const auto* d1 = cached_only(b, m);
    if (d0 != nullptr && d1 != nullptr) {
      merge_intersect(std::span<const codec::DocId>(*d0),
                      std::span<const codec::DocId>(*d1), out, acc);
    } else if (d0 != nullptr) {
      merge_intersect(std::span<const codec::DocId>(*d0), l1, out, acc);
    } else if (d1 != nullptr) {
      merge_intersect(std::span<const codec::DocId>(*d1), l0, out, acc);
    } else {
      merge_intersect(l0, l1, out, acc);
    }
  }
  m.add_stage(acc.time(), &m.intersect);
  m.simd += acc.simd();
  m.placements.push_back(core::Placement::kCpu);
}

void SvsStepper::next_step(std::vector<codec::DocId>& current, index::TermId t,
                           core::QueryMetrics& m) {
  const auto& lt = idx_->list(t).docids;
  sim::CpuCostAccumulator acc(spec_);
  const double ratio = static_cast<double>(lt.size()) /
                       static_cast<double>(current.size());
  if (ratio >= opt_.skip_ratio) {
    if (const auto* target = cached_only(t, m)) {
      skip_intersect(current, std::span<const codec::DocId>(*target),
                     out_scratch_, acc);
    } else {
      skip_intersect(current, lt, out_scratch_, acc, opt_.ef_random_access);
    }
  } else {
    if (const auto* target = cached_only(t, m)) {
      merge_intersect(std::span<const codec::DocId>(current),
                      std::span<const codec::DocId>(*target), out_scratch_,
                      acc);
    } else {
      merge_intersect(current, lt, out_scratch_, acc);
    }
  }
  current.swap(out_scratch_);
  m.add_stage(acc.time(), &m.intersect);
  m.simd += acc.simd();
  m.placements.push_back(core::Placement::kCpu);
}

void SvsStepper::materialize_probes(index::TermId t,
                                    std::vector<codec::DocId>& out,
                                    core::QueryMetrics& m) {
  sim::CpuCostAccumulator acc(spec_);
  const auto probes = decode_via_cache(t, probe_scratch_, acc, m);
  out.assign(probes.begin(), probes.end());
  m.add_stage(acc.time(), &m.intersect);
  m.simd += acc.simd();
}

void SvsStepper::partial_step(std::span<const codec::DocId> probes,
                              index::TermId t, std::vector<codec::DocId>& out,
                              core::QueryMetrics& m) {
  out.clear();
  if (probes.empty()) return;
  const auto& lt = idx_->list(t).docids;
  sim::CpuCostAccumulator acc(spec_);
  const double ratio = static_cast<double>(lt.size()) /
                       static_cast<double>(probes.size());
  if (ratio >= opt_.skip_ratio) {
    if (const auto* target = cached_only(t, m)) {
      skip_intersect(probes, std::span<const codec::DocId>(*target), out, acc);
    } else {
      skip_intersect(probes, lt, out, acc, opt_.ef_random_access);
    }
  } else {
    if (const auto* target = cached_only(t, m)) {
      merge_intersect(probes, std::span<const codec::DocId>(*target), out,
                      acc);
    } else {
      merge_intersect(probes, lt, out, acc);
    }
  }
  m.add_stage(acc.time(), &m.intersect);
  m.simd += acc.simd();
}

void SvsStepper::decode_ahead(index::TermId t, core::QueryMetrics& m) {
  if (host_decoded(t)) return;  // already paid — nothing to work ahead on
  sim::CpuCostAccumulator acc(spec_);
  decode_via_cache(t, probe_scratch_, acc, m);
  m.add_stage(acc.time(), &m.decode);
  m.simd += acc.simd();
}

void SvsStepper::decode_single(index::TermId t, std::vector<codec::DocId>& out,
                               core::QueryMetrics& m) {
  sim::CpuCostAccumulator acc(spec_);
  const auto docs = decode_via_cache(t, out, acc, m);
  if (docs.data() != out.data()) {
    // Cache-served: a real engine would score straight from the cached
    // buffer, so this host copy is an artifact of the by-value API and
    // charges nothing.
    out.assign(docs.begin(), docs.end());
  }
  m.add_stage(acc.time(), &m.decode);
  m.simd += acc.simd();
}

}  // namespace griffin::cpu
