// Sequential (CPU-side) block decoding with cost accounting. Functionally
// these call straight into the codecs; on top they charge the CPU cost model
// for the per-element decode work and the compressed bytes streamed from
// memory, so decode time shows up in the query latency breakdown.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/block_codec.h"
#include "sim/cpu_cost_model.h"

namespace griffin::cpu {

using codec::BlockCompressedList;
using codec::DocId;

/// Compressed payload size of one block, in bytes (for bandwidth charging).
std::uint64_t block_payload_bytes(const BlockCompressedList& list,
                                  std::size_t b);

/// Decodes block b of `list` into out (room for list.block_size() values);
/// returns the element count and charges `acc`.
std::uint32_t decode_block(const BlockCompressedList& list, std::size_t b,
                           DocId* out, sim::CpuCostAccumulator& acc);

/// Decodes the full list, charging `acc`.
void decode_all(const BlockCompressedList& list, std::vector<DocId>& out,
                sim::CpuCostAccumulator& acc);

}  // namespace griffin::cpu
