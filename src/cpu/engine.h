// The CPU-only query engine: the "highly optimized CPU implementation" the
// paper benchmarks Griffin against. SvS intersection order (shortest lists
// first, per Culpepper & Moffat [11]), with a per-pair choice between the
// sequential merge and the skip-pointer binary search based on the length
// ratio, then BM25 + partial_sort ranking.
//
// execute() (core/engine_drivers.cpp) is the shared planner/executor driver
// under the degenerate kAlwaysCpu policy — this engine has no step loop of
// its own (DESIGN.md §8).
#pragma once

#include "core/query.h"
#include "cpu/bm25.h"
#include "cpu/decoded_cache.h"
#include "cpu/svs_step.h"
#include "sim/hardware_spec.h"

namespace griffin::cpu {

struct CpuEngineOptions {
  /// Use skip_intersect when |longer| / |shorter| >= this; merge otherwise.
  double skip_ratio = kDefaultSkipRatio;
  /// Charge EF in-block random access in the skip path (an improvement over
  /// the paper's PForDelta-era CPU baseline; see cpu/intersect.h).
  bool ef_random_access = false;
  /// Host-memory budget for the decoded-postings cache
  /// (cpu/decoded_cache.h); 0 disables it.
  std::size_t decoded_cache_bytes = std::size_t{1} << 30;
  Bm25Params bm25;
};

class CpuEngine : public core::Engine {
 public:
  CpuEngine(const index::InvertedIndex& idx, sim::CpuSpec spec = {},
            CpuEngineOptions opt = {})
      : idx_(&idx),
        spec_(spec),
        opt_(opt),
        cache_(opt.decoded_cache_bytes),
        stepper_(idx, spec, SvsOptions{opt.skip_ratio, opt.ef_random_access},
                 &cache_),
        scorer_(idx, opt.bm25) {}

  core::QueryResult execute(const core::Query& q) override;
  std::string name() const override { return "cpu"; }

  const sim::CpuSpec& spec() const { return spec_; }
  const DecodedCache& decoded_cache() const { return cache_; }

 private:
  const index::InvertedIndex* idx_;
  sim::CpuSpec spec_;
  CpuEngineOptions opt_;
  DecodedCache cache_;
  SvsStepper stepper_;
  Bm25Scorer scorer_;
};

}  // namespace griffin::cpu
