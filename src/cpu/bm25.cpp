#include "cpu/bm25.h"

#include <algorithm>
#include <cmath>

#include "cpu/decode.h"
#include "cpu/intersect.h"
#include "util/bits.h"

namespace griffin::cpu {

double Bm25Scorer::idf(std::uint64_t df) const {
  const double n = static_cast<double>(idx_->docs().num_docs());
  const double d = static_cast<double>(df);
  return std::log(1.0 + (n - d + 0.5) / (d + 0.5));
}

double Bm25Scorer::term_score(std::uint32_t tf, std::uint64_t df,
                              std::uint32_t doc_len) const {
  const double norm =
      params_.k1 * (1.0 - params_.b +
                    params_.b * static_cast<double>(doc_len) /
                        std::max(avg_len_, 1.0));
  const double t = static_cast<double>(tf);
  return idf(df) * t / (t + norm);
}

void Bm25Scorer::score(std::span<const index::TermId> terms,
                       std::span<const index::DocId> docs,
                       std::vector<core::ScoredDoc>& out,
                       sim::CpuCostAccumulator& acc) const {
  out.assign(docs.size(), core::ScoredDoc{});
  for (std::size_t i = 0; i < docs.size(); ++i) out[i].doc = docs[i];
  if (docs.empty()) return;

  // Result docs ascend, so each term's postings are walked once with a
  // block + in-block cursor (the tf sits right next to the docID it was
  // intersected from; no per-result binary search is needed).
  std::vector<codec::DocId> buf;
  for (index::TermId t : terms) {
    const index::PostingList& pl = idx_->list(t);
    const auto& list = pl.docids;
    buf.resize(list.block_size());
    std::size_t cur = 0;
    std::size_t decoded_block = SIZE_MAX;
    std::uint32_t decoded_n = 0;
    std::uint32_t in_block = 0;

    for (std::size_t i = 0; i < docs.size(); ++i) {
      const codec::DocId d = docs[i];
      // Every result doc is guaranteed to appear in every term's list.
      while (cur < list.num_blocks() && list.meta(cur).last < d) ++cur;
      charge_binary_steps(acc, 1);
      if (cur >= list.num_blocks()) break;
      if (decoded_block != cur) {
        decoded_n = decode_block(list, cur, buf.data(), acc);
        decoded_block = cur;
        in_block = 0;
      }
      while (in_block < decoded_n && buf[in_block] < d) ++in_block;
      acc.merge_steps(1);
      const std::uint64_t pos = cur * list.block_size() + in_block;
      const std::uint32_t tf = pl.tf_at(pos);
      out[i].score += static_cast<float>(
          term_score(tf, idx_->df(t), idx_->docs().length(d)));
      acc.scores(1);
    }
  }
}

void top_k(std::vector<core::ScoredDoc>& results, std::uint32_t k,
           sim::CpuCostAccumulator& acc) {
  const std::size_t n = results.size();
  const std::size_t kk = std::min<std::size_t>(k, n);
  std::partial_sort(results.begin(), results.begin() + kk, results.end(),
                    [](const core::ScoredDoc& a, const core::ScoredDoc& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.doc < b.doc;
                    });
  results.resize(kk);
  // partial_sort is O(n log k): one heap pass over all candidates.
  const double logk =
      static_cast<double>(util::ceil_log2(std::max<std::uint64_t>(kk, 2)));
  acc.heap_steps(static_cast<std::uint64_t>(static_cast<double>(n) * logk));
  acc.add_bytes(n * sizeof(core::ScoredDoc));
}

}  // namespace griffin::cpu
