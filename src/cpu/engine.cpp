#include "cpu/engine.h"

#include <algorithm>

#include "cpu/decode.h"
#include "cpu/intersect.h"

namespace griffin::cpu {

core::QueryResult CpuEngine::execute(const core::Query& q) {
  core::QueryResult res;
  core::QueryMetrics& m = res.metrics;
  if (q.terms.empty()) return res;

  // SvS: process lists shortest-first.
  std::vector<index::TermId> terms(q.terms);
  std::sort(terms.begin(), terms.end(),
            [&](index::TermId a, index::TermId b) {
              return idx_->list(a).size() < idx_->list(b).size();
            });

  std::vector<codec::DocId> current, next;

  if (terms.size() == 1) {
    sim::CpuCostAccumulator acc(spec_);
    decode_all(idx_->list(terms[0]).docids, current, acc);
    m.add_stage(acc.time(), &m.decode);
  } else {
    // First pair: both sides compressed.
    const auto& l0 = idx_->list(terms[0]).docids;
    const auto& l1 = idx_->list(terms[1]).docids;
    sim::CpuCostAccumulator acc(spec_);
    const double ratio = static_cast<double>(l1.size()) /
                         static_cast<double>(l0.size());
    if (ratio >= opt_.skip_ratio) {
      std::vector<codec::DocId> probes;
      decode_all(l0, probes, acc);
      skip_intersect(probes, l1, current, acc, opt_.ef_random_access);
    } else {
      merge_intersect(l0, l1, current, acc);
    }
    m.placements.push_back(core::Placement::kCpu);
    m.add_stage(acc.time(), &m.intersect);

    // Remaining lists against the shrinking intermediate result.
    for (std::size_t i = 2; i < terms.size() && !current.empty(); ++i) {
      const auto& li = idx_->list(terms[i]).docids;
      sim::CpuCostAccumulator step(spec_);
      const double r = static_cast<double>(li.size()) /
                       static_cast<double>(current.size());
      if (r >= opt_.skip_ratio) {
        skip_intersect(current, li, next, step, opt_.ef_random_access);
      } else {
        merge_intersect(current, li, next, step);
      }
      current.swap(next);
      m.placements.push_back(core::Placement::kCpu);
      m.add_stage(step.time(), &m.intersect);
    }
  }

  m.result_count = current.size();

  // Ranking: BM25 + partial_sort (always CPU; paper Figure 7). Scoring uses
  // the query's original term order, not the SvS length order: float
  // accumulation order is then a property of the query alone, so a
  // document-partitioned shard (whose local list lengths differ) produces
  // bit-identical scores to the unpartitioned index (cluster/broker.h).
  sim::CpuCostAccumulator rank(spec_);
  scorer_.score(q.terms, current, res.topk, rank);
  top_k(res.topk, q.k, rank);
  m.add_stage(rank.time(), &m.rank);
  return res;
}

}  // namespace griffin::cpu
