#include "cpu/engine.h"

#include <algorithm>

namespace griffin::cpu {

core::QueryResult CpuEngine::execute(const core::Query& q) {
  core::QueryResult res;
  core::QueryMetrics& m = res.metrics;
  if (q.terms.empty()) return res;

  // SvS: process lists shortest-first.
  std::vector<index::TermId> terms(q.terms);
  std::sort(terms.begin(), terms.end(),
            [&](index::TermId a, index::TermId b) {
              return idx_->list(a).size() < idx_->list(b).size();
            });

  std::vector<codec::DocId> current;

  if (terms.size() == 1) {
    stepper_.decode_single(terms[0], current, m);
  } else {
    stepper_.first_pair(terms[0], terms[1], current, m);
    // Remaining lists against the shrinking intermediate result.
    for (std::size_t i = 2; i < terms.size() && !current.empty(); ++i) {
      stepper_.next_step(current, terms[i], m);
    }
  }

  m.result_count = current.size();

  // Ranking: BM25 + partial_sort (always CPU; paper Figure 7). Scoring uses
  // the query's original term order, not the SvS length order: float
  // accumulation order is then a property of the query alone, so a
  // document-partitioned shard (whose local list lengths differ) produces
  // bit-identical scores to the unpartitioned index (cluster/broker.h).
  sim::CpuCostAccumulator rank(spec_);
  scorer_.score(q.terms, current, res.topk, rank);
  top_k(res.topk, q.k, rank);
  m.add_stage(rank.time(), &m.rank);
  return res;
}

}  // namespace griffin::cpu
