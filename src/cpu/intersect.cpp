#include "cpu/intersect.h"

#include <algorithm>
#include <cassert>

#include "cpu/simd_cost.h"
#include "util/bits.h"

namespace griffin::cpu {

namespace {
/// Cycles per binary-search step beyond the mispredict charge.
constexpr double kProbeCycles = 3.0;
/// A data-dependent binary-search branch mispredicts about half the time.
constexpr double kMissFraction = 0.5;

/// Merge-advance charge: scalar pays the branchy per-step cost; vector mode
/// charges the shuffle-based block merge (Lemire et al.) as one vectorized
/// loop — ceil(steps/lanes) iterations of the compare/minmax network plus
/// the compaction shuffle (cpu/simd_cost.h has the issue counts).
void charge_merge_steps(sim::CpuCostAccumulator& acc, std::uint64_t steps) {
  if (!simd::enabled(acc.spec())) {
    acc.merge_steps(steps);
    return;
  }
  const sim::CpuVectorSpec& v = acc.spec().vector;
  simd::charge_loop(acc, steps,
                    simd::kMergeOpsPerLane * v.lanes + simd::kMergeFixedOps,
                    simd::kMergeShufflesPerLane * v.lanes);
}

/// Aggregated search charge for `probes` skip/gallop searches totalling
/// `steps` binary levels. Vector mode absorbs the last
/// search_levels_absorbed() levels of each probe into one branchless
/// lanes-wide window compare; the remaining levels stay branchy.
void charge_search_steps(sim::CpuCostAccumulator& acc, std::uint64_t steps,
                         std::uint64_t probes) {
  if (!simd::enabled(acc.spec()) || probes == 0) {
    charge_binary_steps(acc, steps);
    return;
  }
  const std::uint64_t absorbed = std::min(
      steps, probes * static_cast<std::uint64_t>(
                          simd::search_levels_absorbed(acc.spec().vector)));
  charge_binary_steps(acc, steps - absorbed);
  simd::charge_probe_windows(acc, probes);
}
}  // namespace

void charge_binary_steps(sim::CpuCostAccumulator& acc, std::uint64_t steps) {
  acc.add_cycles(static_cast<double>(steps) * kProbeCycles);
  acc.branch_misses(
      static_cast<std::uint64_t>(static_cast<double>(steps) * kMissFraction));
}

void merge_intersect(std::span<const DocId> a, std::span<const DocId> b,
                     std::vector<DocId>& out, sim::CpuCostAccumulator& acc) {
  out.clear();
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  charge_merge_steps(acc, i + j);
  acc.add_bytes((i + j) * sizeof(DocId));
}

void merge_intersect(std::span<const DocId> a, const BlockCompressedList& b,
                     std::vector<DocId>& out, sim::CpuCostAccumulator& acc) {
  out.clear();
  if (a.empty()) return;
  std::vector<DocId> buf(b.block_size());
  std::size_t i = 0;
  std::uint64_t steps = 0;
  for (std::size_t blk = 0; blk < b.num_blocks() && i < a.size(); ++blk) {
    // A merge still skips a block whose whole range lies below the current
    // probe front? No — a merge must scan; but if the *remaining* probe side
    // starts above the block's last docid, the block contributes nothing and
    // a real implementation would still decode it to advance. We decode it
    // and charge for the scan, staying faithful to a pure merge.
    const std::uint32_t n = decode_block(b, blk, buf.data(), acc);
    std::size_t j = 0;
    while (i < a.size() && j < n) {
      if (a[i] < buf[j]) {
        ++i;
      } else if (buf[j] < a[i]) {
        ++j;
      } else {
        out.push_back(a[i]);
        ++i;
        ++j;
      }
      ++steps;
    }
  }
  charge_merge_steps(acc, steps);
  acc.add_bytes(steps * sizeof(DocId));
}

void merge_intersect(const BlockCompressedList& a, const BlockCompressedList& b,
                     std::vector<DocId>& out, sim::CpuCostAccumulator& acc) {
  out.clear();
  std::vector<DocId> abuf(a.block_size()), bbuf(b.block_size());
  std::size_t ablk = 0, bblk = 0;
  std::uint32_t an = 0, bn = 0;
  std::size_t i = 0, j = 0;
  std::uint64_t steps = 0;

  while (ablk < a.num_blocks() && bblk < b.num_blocks()) {
    if (i == an) {
      an = decode_block(a, ablk, abuf.data(), acc);
      i = 0;
    }
    if (j == bn) {
      bn = decode_block(b, bblk, bbuf.data(), acc);
      j = 0;
    }
    while (i < an && j < bn) {
      if (abuf[i] < bbuf[j]) {
        ++i;
      } else if (bbuf[j] < abuf[i]) {
        ++j;
      } else {
        out.push_back(abuf[i]);
        ++i;
        ++j;
      }
      ++steps;
    }
    if (i == an) ++ablk;
    if (j == bn) ++bblk;
  }
  charge_merge_steps(acc, steps);
  acc.add_bytes(steps * sizeof(DocId));
}

void skip_intersect(std::span<const DocId> probes,
                    const BlockCompressedList& target, std::vector<DocId>& out,
                    sim::CpuCostAccumulator& acc, bool ef_random_access) {
  out.clear();
  if (probes.empty()) return;
  const auto metas = target.metas();
  std::vector<DocId> buf(target.block_size());
  std::size_t cur = 0;              // current block cursor (monotone)
  std::size_t decoded_block = SIZE_MAX;
  std::uint32_t decoded_n = 0;
  // Vector mode batches the search charges: the scalar path charges each
  // search where it happens (bit-identical to the pre-SIMD code), the SIMD
  // path aggregates (searches, levels) and charges once at the end.
  const bool vec = simd::enabled(acc.spec());
  std::uint64_t vec_steps = 0, vec_searches = 0;

  for (DocId p : probes) {
    // Gallop over the skip table from the cursor, then binary search the
    // bracketed range — the skip-pointer search of Figure 2.
    if (cur >= metas.size()) break;
    if (metas[cur].last < p) {
      // Gallop forward from the cursor (probes ascend, so consecutive
      // targets are usually nearby), then binary-search the bracket.
      std::size_t step = 1;
      std::size_t lo = cur + 1;
      std::uint64_t steps = 0;
      while (lo + step < metas.size() && metas[lo + step].last < p) {
        lo += step;
        step <<= 1;
        ++steps;
      }
      std::size_t l = lo, r = std::min(lo + step + 1, metas.size());
      while (l < r) {
        const std::size_t mid = (l + r) / 2;
        if (metas[mid].last < p) {
          l = mid + 1;
        } else {
          r = mid;
        }
        ++steps;
      }
      cur = l;
      if (vec) {
        vec_steps += steps;
        ++vec_searches;
      } else {
        charge_binary_steps(acc, steps);
      }
      if (cur >= metas.size()) break;
    }
    if (metas[cur].first > p) continue;  // p falls in a gap between blocks

    const bool random_access =
        ef_random_access && target.scheme() == codec::Scheme::kEliasFano;
    if (decoded_block != cur) {
      if (random_access) {
        // EF supports in-block random access (select on the unary high
        // bits, Vigna [30]): a probe pays a handful of element recoveries,
        // not a full 128-element block decode. The simulator decodes the
        // block once functionally; the cost charged is the EF select path.
        decoded_n = target.decode_block(cur, buf.data());
        acc.add_bytes(block_payload_bytes(target, cur));
      } else {
        // Block codecs without random access decode the whole block.
        decoded_n = decode_block(target, cur, buf.data(), acc);
      }
      decoded_block = cur;
    }
    if (random_access) {
      acc.ef_elements(8);  // popcount-guided select + low-bits fetch
    }
    // Binary search within the block.
    const DocId* lo_it = buf.data();
    const DocId* hi_it = buf.data() + decoded_n;
    const DocId* it = std::lower_bound(lo_it, hi_it, p);
    const std::uint64_t levels =
        util::ceil_log2(std::max<std::uint32_t>(decoded_n, 2));
    if (vec) {
      vec_steps += levels;
      ++vec_searches;
    } else {
      charge_binary_steps(acc, levels);
    }
    if (it != hi_it && *it == p) out.push_back(p);
  }
  if (vec) charge_search_steps(acc, vec_steps, vec_searches);
}

void skip_intersect(std::span<const DocId> probes,
                    std::span<const DocId> target, std::vector<DocId>& out,
                    sim::CpuCostAccumulator& acc) {
  out.clear();
  if (probes.empty() || target.empty()) return;
  std::size_t cur = 0;  // search front (probes ascend, so it only advances)
  std::uint64_t steps = 0;
  std::uint64_t searches = 0;
  for (const DocId p : probes) {
    if (cur >= target.size()) break;
    // Gallop from the front, then binary-search the bracketed range.
    std::size_t step = 1;
    std::size_t lo = cur;
    while (lo + step < target.size() && target[lo + step] < p) {
      lo += step;
      step <<= 1;
      ++steps;
    }
    std::size_t l = lo, r = std::min(lo + step + 1, target.size());
    while (l < r) {
      const std::size_t mid = (l + r) / 2;
      if (target[mid] < p) {
        l = mid + 1;
      } else {
        r = mid;
      }
      ++steps;
    }
    cur = l;
    ++searches;
    if (cur < target.size() && target[cur] == p) {
      out.push_back(p);
      ++cur;
    }
  }
  charge_search_steps(acc, steps, searches);
  acc.add_bytes(steps * sizeof(DocId));
}

}  // namespace griffin::cpu
