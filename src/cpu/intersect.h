// CPU posting-list intersection (paper §2.1.2, §2.2):
//   - merge_intersect: the sequential two-pointer merge, best when the two
//     lists have comparable lengths (good locality, predictable scans);
//   - skip_intersect: probe each element of the short side into the long
//     side using the skip table (galloping + binary search), decompressing
//     only the blocks that can contain matches — best at high length ratios.
// All variants compute exact intersections and charge the CPU cost model.
#pragma once

#include <span>
#include <vector>

#include "codec/block_codec.h"
#include "cpu/decode.h"
#include "sim/cpu_cost_model.h"

namespace griffin::cpu {

/// Decoded × decoded streaming merge.
void merge_intersect(std::span<const DocId> a, std::span<const DocId> b,
                     std::vector<DocId>& out, sim::CpuCostAccumulator& acc);

/// Decoded × compressed: merge against lazily decoded blocks (every block up
/// to the exhaustion point is decoded — merges scan everything).
void merge_intersect(std::span<const DocId> a, const BlockCompressedList& b,
                     std::vector<DocId>& out, sim::CpuCostAccumulator& acc);

/// Compressed × compressed block-wise merge.
void merge_intersect(const BlockCompressedList& a, const BlockCompressedList& b,
                     std::vector<DocId>& out, sim::CpuCostAccumulator& acc);

/// Decoded probes × compressed target via skip pointers. `probes` must be
/// ascending. Only candidate blocks of `target` are decoded.
///
/// ef_random_access=false (default) charges a full block decode per touched
/// block — the paper's CPU baseline is PForDelta-based [40], which has no
/// in-block random access, and the ratio-128 crossover analysis (§3.2)
/// assumes exactly this cost. Setting it true (EF lists only) charges
/// Vigna-style per-probe select instead — a strictly better CPU baseline
/// than the paper's, measured by bench/ablation_threshold.
void skip_intersect(std::span<const DocId> probes,
                    const BlockCompressedList& target, std::vector<DocId>& out,
                    sim::CpuCostAccumulator& acc, bool ef_random_access = false);

/// Decoded probes × *decoded* target (the host decoded-postings cache holds
/// the target): the same galloping + binary search over a plain sorted
/// array. No block decode is ever charged — that is exactly what the cache
/// saves — only the search steps and the touched bytes.
void skip_intersect(std::span<const DocId> probes, std::span<const DocId> target,
                    std::vector<DocId>& out, sim::CpuCostAccumulator& acc);

/// Binary search cost helper shared by the skip variants: `steps` probe steps
/// of a branchy binary search.
void charge_binary_steps(sim::CpuCostAccumulator& acc, std::uint64_t steps);

}  // namespace griffin::cpu
