// Host decoded-postings cache: the CPU-side mirror of gpu/list_cache.h. An
// LRU of fully decoded posting lists keyed by TermId under a host-memory
// byte budget, so hot terms skip cpu::decode_all's per-element decode and
// materialization charges on later queries. Filled only where decode_all
// already runs today (skip-path probe lists, single-term queries), so a
// cold query costs exactly what it did without the cache; warm queries
// reuse the decoded vector at zero modeled cost.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/block_codec.h"
#include "index/inverted_index.h"
#include "util/lru_cache.h"

namespace griffin::cpu {

class DecodedCache {
 public:
  /// byte_budget = 0 disables the cache.
  explicit DecodedCache(std::uint64_t byte_budget) : cache_(0, byte_budget) {}

  /// Host footprint of a decoded list: the DocId array plus bookkeeping.
  static std::uint64_t entry_bytes(std::size_t n) {
    return 64 + n * sizeof(codec::DocId);
  }

  bool enabled() const { return cache_.enabled(); }
  bool fits(std::uint64_t bytes) const { return cache_.fits(bytes); }

  /// Counts a hit/miss and refreshes recency.
  const std::vector<codec::DocId>* lookup(index::TermId t) {
    return cache_.lookup(t);
  }

  /// Stat-free residency probe for the scheduler (core::StepShape).
  bool resident(index::TermId t) const { return cache_.peek(t) != nullptr; }

  const std::vector<codec::DocId>* insert(index::TermId t,
                                          std::vector<codec::DocId> docs,
                                          std::uint64_t* evicted = nullptr) {
    const std::uint64_t bytes = entry_bytes(docs.size());
    return cache_.insert(t, std::move(docs), bytes, evicted);
  }

  std::uint64_t bytes() const { return cache_.bytes(); }
  std::uint64_t byte_budget() const { return cache_.byte_budget(); }
  std::size_t size() const { return cache_.size(); }
  const util::LruStats& stats() const { return cache_.stats(); }
  void clear() { cache_.clear(); }

 private:
  util::ByteLruCache<index::TermId, std::vector<codec::DocId>> cache_;
};

}  // namespace griffin::cpu
