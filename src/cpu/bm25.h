// BM25 ranking (Robertson & Walker [26]; paper §2.1.3). Scoring always runs
// on the CPU — the paper's Figure 7 shows GPU selection/sorting loses at the
// small result counts real queries produce, and Griffin follows that finding.
#pragma once

#include <span>
#include <vector>

#include "core/query.h"
#include "index/inverted_index.h"
#include "sim/cpu_cost_model.h"

namespace griffin::cpu {

struct Bm25Params {
  double k1 = 0.9;
  double b = 0.4;
};

class Bm25Scorer {
 public:
  explicit Bm25Scorer(const index::InvertedIndex& idx, Bm25Params p = {})
      : idx_(&idx), params_(p), avg_len_(idx.docs().avg_length()) {}

  /// Robertson-Sparck-Jones idf with the +1 floor (never negative).
  double idf(std::uint64_t df) const;

  /// BM25 contribution of one (term, doc) pair.
  double term_score(std::uint32_t tf, std::uint64_t df,
                    std::uint32_t doc_len) const;

  /// Scores every doc in `docs` (ascending) against all `terms`; appends
  /// ScoredDocs to out and charges the rank-stage accumulator. Looks up each
  /// term's tf by walking that term's block structure monotonically.
  void score(std::span<const index::TermId> terms,
             std::span<const index::DocId> docs,
             std::vector<core::ScoredDoc>& out,
             sim::CpuCostAccumulator& acc) const;

 private:
  const index::InvertedIndex* idx_;
  Bm25Params params_;
  double avg_len_;
};

/// Top-k selection by score (descending; ties by ascending doc) using
/// std::partial_sort — the CPU ranking the paper selects in Figure 7.
/// Truncates `results` to k and charges `acc`.
void top_k(std::vector<core::ScoredDoc>& results, std::uint32_t k,
           sim::CpuCostAccumulator& acc);

}  // namespace griffin::cpu
