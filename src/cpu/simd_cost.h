// Lane-accurate SIMD cost accounting for the CPU engine (DESIGN.md §13) —
// the CPU mirror of simt/'s warp accounting. Where the virtual GPU counts a
// warp's work as the max over its 32 lanes, this layer charges a vectorized
// CPU loop over n elements as exactly ceil(n/lanes) vector iterations plus a
// per-loop setup, with a masked final iteration absorbing the scalar tail.
// The functional decode/intersect code is untouched: SIMD mode moves only
// the charged cycles, never the produced docIDs (tests/test_simd_parity.cpp
// pins this).
//
// Per-algorithm issue counts below are *calibrated*, exactly like the scalar
// knobs in sim::CpuSpec (EXPERIMENTS.md "Calibration"): they are chosen so
// the modeled speedups land inside the ranges Lemire, Boytsov & Kurz
// measured ("SIMD Compression and the Intersection of Sorted Integers",
// PAPERS.md) — 4-8x full-list decode (SIMD-BP128-style bit-unpacking with
// vectorized delta + streaming stores), 2-5x merge intersection (shuffle-
// based block merge), and a modest 1.3-1.8x on the branch-bound skip/gallop
// search (vector compare only replaces the last levels of each binary
// search). The scheduler's estimates (core/scheduler.cpp) consume the same
// effective_* helpers the engines charge through, so the decision model and
// the charges can never disagree.
#pragma once

#include <algorithm>
#include <cstdint>

#include "codec/block_codec.h"
#include "sim/cpu_cost_model.h"
#include "sim/hardware_spec.h"
#include "util/bits.h"

namespace griffin::cpu::simd {

// ---- Per-vector-iteration issue counts (algorithm constants) ----
// A "vector op" is an ALU-port issue (shift/and/or/add/min/max/compare), a
// "shuffle" a shuffle-port issue (pshufb/permute). Costs per issue come
// from sim::CpuVectorSpec.

/// SIMD-BP128-style bit-unpack of one vector of packed slots: shift, mask,
/// or-merge, plus the rolling carry between slot boundaries.
inline constexpr double kUnpackOps = 4.0;
/// Delta decoding: prefix-sum inside the vector (log-depth shifted adds)
/// plus the broadcast of the running base.
inline constexpr double kDeltaOps = 2.0;
inline constexpr double kDeltaShuffles = 2.0;
/// Full materialization (decode_all): vectorized streaming store of the
/// reconstructed docIDs plus the loop's address bookkeeping.
inline constexpr double kStoreOps = 2.0;
/// Per-element scalar residue a vectorized full decode cannot hide: block
/// loop control, skip-table reads, exception-patch branches.
inline constexpr double kMaterializeResidueCycles = 2.0;
/// Elias-Fano: the unary high-bits scan stays word-serial (popcount-guided,
/// not lane-parallel), charged per element even in SIMD mode...
inline constexpr double kEfHighScalarCycles = 1.0;
/// ...while the packed lower bits unpack exactly like a bit-packed slot.
inline constexpr double kEfLowerOps = 4.0;
/// Shuffle-based two-list block merge (Lemire et al. §5): per vector
/// iteration, both frontier vectors load, run a compare/minmax network, and
/// the matches compact through one lookup shuffle. The network's depth
/// scales with the vector width, so the shuffle count is per-lane.
inline constexpr double kMergeOpsPerLane = 1.5;
inline constexpr double kMergeShufflesPerLane = 1.25;
inline constexpr double kMergeFixedOps = 4.0;  ///< loads + movemask + store
/// SIMD gallop/binary search: the last levels of each probe's binary search
/// are replaced by a branchless compare of one lanes-wide vector window...
inline constexpr double kSearchWindowOps = 2.0;      ///< cmp + movemask
inline constexpr double kSearchWindowShuffles = 1.0; ///< broadcast the key
// ---- Per-codec scalar/SIMD decode constants (codec zoo) ----
// The block-decode cost of each scheme, shared by cpu/decode.cpp's charges
// and the scheduler's per-codec estimates (effective_decode_cycles below).

/// Modeled per-element scalar VByte decode cost (branchy byte loop).
inline constexpr double kVByteScalarCycles = 3.5;
/// Simple16 unpacks ~a word of values per switch dispatch: very fast.
inline constexpr double kSimple16ScalarCycles = 1.8;
/// SIMD VByte (masked-shuffle varint decode): per vector iteration, the
/// length mask gathers into one lookup shuffle; a per-element scalar residue
/// covers the control-byte bookkeeping.
inline constexpr double kVByteSimdOps = 2.0;
inline constexpr double kVByteSimdShuffles = 3.0;
inline constexpr double kVByteSimdResidueCycles = 1.0;
/// Re-Pair grammar expansion: per output element, a stack pop, a
/// terminal/nonterminal branch, and a data-dependent rule fetch. Pointer
/// chasing — it does not vectorize, so the cost is mode-independent.
inline constexpr double kRePairExpandCycles = 2.5;

/// ...which absorbs ceil(log2(lanes)) branchy levels per probe.
inline int search_levels_absorbed(const sim::CpuVectorSpec& v) {
  return static_cast<int>(
      util::ceil_log2(static_cast<std::uint32_t>(std::max(v.lanes, 2))));
}

inline bool enabled(const sim::CpuSpec& s) {
  return s.vector.enabled && s.vector.lanes > 1;
}

/// ceil(n / lanes): the vector iterations one loop over n elements charges.
inline std::uint64_t vector_iters(std::uint64_t n, const sim::CpuVectorSpec& v) {
  const auto lanes = static_cast<std::uint64_t>(v.lanes);
  return (n + lanes - 1) / lanes;
}

/// Cycles of one vector iteration issuing `ops` ALU ops and `shuffles`
/// shuffle ops.
inline double iter_cycles(const sim::CpuVectorSpec& v, double ops,
                          double shuffles) {
  return ops * v.vector_op_cycles + shuffles * v.shuffle_cycles;
}

/// Charges one vectorized loop over n elements at (`ops`, `shuffles`) issues
/// per vector iteration: block_setup + ceil(n/lanes) iterations + the masked
/// tail's per-element penalty. Updates the accumulator's lane counters; the
/// invariant tests assert vector_ops grows by exactly ceil(n/lanes).
inline void charge_loop(sim::CpuCostAccumulator& acc, std::uint64_t n,
                        double ops, double shuffles = 0.0) {
  if (n == 0) return;
  const sim::CpuVectorSpec& v = acc.spec().vector;
  const std::uint64_t iters = vector_iters(n, v);
  const std::uint64_t tail = n % static_cast<std::uint64_t>(v.lanes);
  const double cycles = v.block_setup_cycles +
                        static_cast<double>(iters) * iter_cycles(v, ops, shuffles) +
                        static_cast<double>(tail) * v.scalar_tail_cycles;
  acc.add_vector_loop(n, iters, cycles);
}

/// Charges the vector-window compares of `probes` SIMD-terminated searches
/// as one vectorized loop: one lanes-wide window (= one vector iteration)
/// per probe, all lanes examined, setup paid once for the batch.
inline void charge_probe_windows(sim::CpuCostAccumulator& acc,
                                 std::uint64_t probes) {
  if (probes == 0) return;
  const sim::CpuVectorSpec& v = acc.spec().vector;
  const double cycles =
      v.block_setup_cycles +
      static_cast<double>(probes) *
          iter_cycles(v, kSearchWindowOps, kSearchWindowShuffles);
  acc.add_vector_loop(probes * static_cast<std::uint64_t>(v.lanes), probes,
                      cycles);
}

// ---- Effective per-element / per-step costs ----
//
// Closed forms of the charges above (setup and tail amortized away), shared
// by the scheduler's estimates so decisions track what the engines charge.
// Each returns the *scalar* spec cost when the vector unit is disabled.

/// Cache-hot PForDelta block decode, per element (the intersection path).
inline double effective_pfor_decode_cycles(const sim::CpuSpec& s) {
  if (!enabled(s)) return s.pfor_decode_cycles;
  return iter_cycles(s.vector, kUnpackOps + kDeltaOps, kDeltaShuffles) /
         s.vector.lanes;
}

/// Cache-hot Elias-Fano block decode, per element.
inline double effective_ef_decode_cycles(const sim::CpuSpec& s) {
  if (!enabled(s)) return s.ef_decode_cycles;
  return kEfHighScalarCycles +
         iter_cycles(s.vector, kEfLowerOps + kDeltaOps, kDeltaShuffles) /
             s.vector.lanes;
}

/// Full-list materialization surcharge, per element (decode_all).
inline double effective_materialize_cycles(const sim::CpuSpec& s) {
  if (!enabled(s)) return s.decode_materialize_cycles;
  return kMaterializeResidueCycles +
         iter_cycles(s.vector, kStoreOps, 0.0) / s.vector.lanes;
}

/// Cache-hot BP128 block decode, per element: the same slot-unpack +
/// vectorized delta as PForDelta's regular path, with no exception patching
/// at all — the codec exists to hit exactly this fast path.
inline double effective_bp128_decode_cycles(const sim::CpuSpec& s) {
  if (!enabled(s)) return s.pfor_decode_cycles;
  return iter_cycles(s.vector, kUnpackOps + kDeltaOps, kDeltaShuffles) /
         s.vector.lanes;
}

/// Cache-hot VByte block decode, per element.
inline double effective_vbyte_decode_cycles(const sim::CpuSpec& s) {
  if (!enabled(s)) return kVByteScalarCycles;
  return kVByteSimdResidueCycles +
         iter_cycles(s.vector, kVByteSimdOps, kVByteSimdShuffles) /
             s.vector.lanes;
}

/// Cache-hot per-element block decode cost of `scheme` — the codec-aware
/// closed form the scheduler prices decode terms through. Matches the charge
/// switches in cpu/decode.cpp scheme for scheme.
inline double effective_decode_cycles(const sim::CpuSpec& s,
                                      codec::Scheme scheme) {
  switch (scheme) {
    case codec::Scheme::kPForDelta: return effective_pfor_decode_cycles(s);
    case codec::Scheme::kEliasFano: return effective_ef_decode_cycles(s);
    case codec::Scheme::kVarByte: return effective_vbyte_decode_cycles(s);
    case codec::Scheme::kSimple16: return kSimple16ScalarCycles;
    case codec::Scheme::kBitPack128: return effective_bp128_decode_cycles(s);
    case codec::Scheme::kRePair: return kRePairExpandCycles;
  }
  return effective_ef_decode_cycles(s);
}

/// One two-pointer merge advance (compare + advance + conditional emit).
inline double effective_merge_step_cycles(const sim::CpuSpec& s) {
  if (!enabled(s)) return s.merge_step_cycles;
  const sim::CpuVectorSpec& v = s.vector;
  const double per_iter =
      iter_cycles(v, kMergeOpsPerLane * v.lanes + kMergeFixedOps,
                  kMergeShufflesPerLane * v.lanes);
  return per_iter / v.lanes;
}

/// One branchy binary-search level (probe + data-dependent branch), scalar.
inline double scalar_search_step_cycles(const sim::CpuSpec& s) {
  // Matches cpu/intersect.cpp's charge_binary_steps: kProbeCycles plus the
  // expected half-rate mispredict.
  return 3.0 + 0.5 * s.branch_miss_cycles;
}

/// Skip/gallop search cost for one probe that walks `levels` binary-search
/// levels: SIMD replaces the last search_levels_absorbed() levels with one
/// branchless vector-window compare.
inline double effective_probe_search_cycles(const sim::CpuSpec& s,
                                            double levels) {
  const double scalar = levels * scalar_search_step_cycles(s);
  if (!enabled(s)) return scalar;
  const double absorbed =
      std::min(levels, static_cast<double>(search_levels_absorbed(s.vector)));
  return (levels - absorbed) * scalar_search_step_cycles(s) +
         iter_cycles(s.vector, kSearchWindowOps, kSearchWindowShuffles);
}

/// How far the §3.2 ratio crossover shifts when this CPU's vector unit is
/// on: the SIMD-to-scalar cost ratio of the skip path at the crossover
/// shape (λ = block size, where each probe touches a distinct block — one
/// block decode + one skip search per probe). The GPU side is unchanged and
/// its selective path also scales with the probe count there, so the
/// balance ratio λ* scales by this same factor (DESIGN.md §13 derives it).
/// Returns 1.0 for a scalar CPU; < 1 otherwise (a faster CPU claims more of
/// the ratio spectrum, so the GPU-favored band shrinks).
inline double crossover_scale(const sim::CpuSpec& s,
                              std::uint32_t block_size = 128) {
  if (!enabled(s)) return 1.0;
  const double levels =
      static_cast<double>(util::ceil_log2(std::max(block_size, 2u))) + 7.0;
  const double block = static_cast<double>(block_size);
  const double scalar =
      block * s.ef_decode_cycles + levels * scalar_search_step_cycles(s);
  const double simd = block * effective_ef_decode_cycles(s) +
                      effective_probe_search_cycles(s, levels);
  return simd / scalar;
}

}  // namespace griffin::cpu::simd
