// The intra-query scheduler — Griffin's first contribution (paper §3.2).
// Before each pairwise intersection it decides which processor runs the
// step. The default policy is the paper's: compare the length ratio
// λ = |longer| / |shorter| against the crossover threshold; λ below the
// threshold favors the GPU (everything must be decompressed anyway, so the
// parallel decode + MergePath win), λ at or above favors the CPU (skip
// pointers let it avoid most decompression, and there is no transfer cost).
// The default threshold equals the compression block size (128): when
// λ > block size, the short list has fewer elements than the long list has
// blocks, so skippable blocks *must* exist (the paper's Figure 9 argument).
//
// A cost-aware policy (closed-form estimates fed by the same HardwareSpec
// the engines charge against) is included as the extension the paper
// sketches ("it could be extended to support other features"), and is
// compared against the ratio rule in bench/ablation_scheduling.
#pragma once

#include <cstdint>
#include <optional>

#include "core/query.h"
#include "sim/hardware_spec.h"

namespace griffin::core {

enum class SchedulerPolicy : std::uint8_t {
  kRatioThreshold,  ///< the paper's rule: GPU iff ratio < threshold
  kCostModel,       ///< pick the processor with the lower estimated step time
  kAlwaysCpu,       ///< degenerate policies for the static baselines
  kAlwaysGpu,
  /// Degenerate co-execution policy: every intersect splits across both
  /// processors (alpha from the cost model, or forced_split_alpha). Used by
  /// the split-parity tests and the co-exec ablation.
  kAlwaysSplit,
};

struct SchedulerOptions {
  SchedulerPolicy policy = SchedulerPolicy::kRatioThreshold;
  /// Crossover for kRatioThreshold; the paper derives block_size (=128).
  double ratio_threshold = 128.0;
  /// kCostModel: assume the engines run with a warm device-memory pool
  /// (GpuOptions::pooled_memory), i.e. no per-step allocation charges.
  bool assume_pooled_memory = true;
  /// Fold list residency (StepShape's *_resident bits, filled from the
  /// device list cache and the host decoded cache) into the decision:
  /// kCostModel zeroes the transfer/decode terms a resident list skips, and
  /// kRatioThreshold shifts its crossover — §3.2's λ=128 balances the GPU's
  /// transfer cost against the CPU's skip advantage, so removing the
  /// transfer (device-resident long list) raises the crossover while a
  /// pre-decoded host list cheapens the CPU side and lowers it.
  bool residency_aware = true;
  /// kRatioThreshold multiplier when the long list is device-resident.
  double resident_ratio_boost = 4.0;
  /// kRatioThreshold multiplier when the long list is host-decoded.
  double host_decoded_ratio_scale = 0.5;
  /// Emit kPrefetch steps: while a GPU intersect runs, start the H2D of the
  /// next term's list on the copy engine (DESIGN.md §10). Read by the
  /// Planner; kAlwaysCpu plans never place GPU steps so never prefetch.
  bool prefetch = true;
  /// Don't prefetch a list longer than this ratio times the current
  /// intermediate: above it the binary-search path's deferred transfer
  /// (skip table + candidate blocks only) moves less data than the full
  /// payload a prefetch would, hidden or not. Default 2x the path
  /// crossover.
  double prefetch_ratio_limit = 256.0;
  /// kRatioThreshold multiplier when the long list is already prefetched:
  /// like device residency, the GPU owes no (visible) transfer for it, so
  /// the crossover rises.
  double prefetch_ratio_boost = 4.0;
  /// kCostModel: credit copy/compute overlap in the GPU estimate — the
  /// MergePath path double-buffers the payload H2D against Para-EF decode,
  /// so transfer and memory time combine as max(), not sum.
  bool overlap_aware = true;
  /// Consume the CPU's vector-mode costs (cpu/simd_cost.h) in both
  /// policies: kCostModel estimates CPU steps with the effective_* SIMD
  /// costs (the same closed forms the engine charges through), and
  /// kRatioThreshold scales its crossover by the SIMD-to-scalar cost ratio
  /// of the skip path — a vectorized CPU claims more of the ratio spectrum,
  /// so the GPU-favored band shrinks (DESIGN.md §13 derives the scale).
  /// No-op for a scalar CpuSpec; off = decide as if the CPU were scalar.
  bool simd_aware = true;
  /// Three-way co-execution (DESIGN.md §15): decide() may return kSplit,
  /// dividing the probe side between both processors. kRatioThreshold
  /// generalizes its crossover into the band
  /// [threshold / split_band, threshold * split_band): inside it the
  /// decision falls through to the three-way cost comparison (outside it
  /// the binary ratio rule is untouched). kCostModel compares
  /// min_alpha t_split against t_cpu and t_gpu directly.
  bool split = true;
  /// Half-width (multiplicative) of the ratio-policy split band.
  double split_band = 4.0;
  /// Never split a probe side smaller than this: the GPU leg's fixed costs
  /// (kernel launches, probe H2D, partial D2H) need work to amortize over.
  std::uint64_t split_min_probe = 4096;
  /// Split only when min_alpha t_split undercuts the best single-processor
  /// estimate by at least this fraction — hysteresis against splitting for
  /// wins inside the cost model's noise floor.
  double split_min_gain = 0.05;
  /// kAlwaysSplit (tests/ablation): pin alpha instead of deriving it from
  /// the cost model. Negative = derive. 0 and 1 are the degenerate splits
  /// (all-CPU / all-GPU through the split machinery).
  double forced_split_alpha = -1.0;
  /// Inter-step pipelining (DESIGN.md §15): the planner marks steps with no
  /// data dependence so the executor issues them on whichever processor the
  /// current step leaves idle — kPrefetch uploads during CPU-placed
  /// intersects (the copy engine is free) and kHostDecode work-ahead during
  /// GPU-placed ones (the host core is free).
  bool pipeline_idle = true;
  /// A prefetch staged during a CPU-placed intersect is only worth paying
  /// for when the predicted device consumer survives the intersect cutting
  /// the intermediate: the prediction must also hold at probe size
  /// shorter / this factor, else the upload is pure loss the moment the
  /// shrunken ratio re-favors the host. Applies to the pipeline_idle path
  /// only (device-placed steps keep the unconditional prefetch).
  double prefetch_shrink_robustness = 8.0;
};

// StepShape (the scheduler's per-step input) lives in core/query.h so trace
// records can embed it without a dependency cycle.

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions opt = {}, sim::HardwareSpec hw = {})
      : opt_(opt), hw_(hw) {}

  const SchedulerOptions& options() const { return opt_; }

  /// Three-way placement (DESIGN.md §15): kCpu, kGpu, or kSplit. Pure
  /// function of the shape and the options, so trace records replay
  /// (decide(rec.shape) == rec.placement) for split steps too.
  Placement decide(const StepShape& s) const;

  /// The GPU's probe share for a kSplit decision on this shape: the
  /// throughput-proportional fraction minimizing estimate_split over a
  /// fixed alpha grid (or forced_split_alpha when pinned). Deterministic,
  /// so IntersectStep::alpha replays from the recorded shape.
  double split_alpha(const StepShape& s) const;

  /// Closed-form step-time estimates used by kCostModel (public for tests
  /// and the scheduling ablation).
  sim::Duration estimate_cpu(const StepShape& s) const;
  sim::Duration estimate_gpu(const StepShape& s) const;
  /// Estimated time of a split step at GPU share `alpha`:
  ///   max(alpha-share on the GPU + its transfers,
  ///       (1-alpha)-share on the CPU + its migration D2H).
  /// The GPU leg always prices the selective binary-search path (the only
  /// kernel the split executes) plus the probe H2D and the partial's D2H;
  /// the CPU leg reuses estimate_cpu on its share.
  sim::Duration estimate_split(const StepShape& s, double alpha) const;
  /// Estimated host-side decode time of a `n`-posting list in scheme `s`
  /// (the kHostDecode work-ahead gate: hide it under the device step only
  /// if it fits).
  sim::Duration estimate_host_decode(std::uint64_t n, codec::Scheme sc) const;

 private:
  /// {best alpha, its estimate_split} over the deterministic alpha grid.
  std::pair<double, sim::Duration> best_split(const StepShape& s) const;
  /// The selective (binary-search over skip table, candidate blocks only)
  /// GPU path priced for `ns` probes — shared by estimate_gpu's high-ratio
  /// branch and the split GPU leg.
  sim::Duration selective_gpu_time(double ns, const StepShape& s) const;
  /// The three-way comparison both policies share once a split is
  /// admissible: kSplit iff min_alpha t_split beats the better single
  /// processor by split_min_gain.
  Placement cost_decide(const StepShape& s, bool allow_split) const;

  SchedulerOptions opt_;
  sim::HardwareSpec hw_;
};

}  // namespace griffin::core
