#include "core/planner.h"

#include <algorithm>
#include <cassert>

namespace griffin::core {

StepShape Planner::shape_for(std::uint64_t shorter, index::TermId longer_term,
                             std::optional<Placement> location) const {
  StepShape s;
  s.shorter = shorter;
  s.longer = idx_->list(longer_term).size();
  s.longer_bytes = idx_->list(longer_term).docids.compressed_bytes();
  // Every codec stores at least a header for a nonempty list; the
  // scheduler's transfer terms divide by this, so a zero here means a list
  // was built outside index construction.
  assert(s.longer == 0 || s.longer_bytes > 0);
  s.longer_scheme = idx_->list(longer_term).docids.scheme();
  // Residency bits from the two cache tiers: cold caches leave both false,
  // so the first queries decide exactly as the paper's rule does.
  s.longer_device_resident = probe_->device_resident(longer_term);
  s.longer_host_decoded = probe_->host_decoded(longer_term);
  s.longer_prefetched = probe_->prefetched(longer_term);
  s.current_location = location;
  return s;
}

void Planner::degrade_to_cpu(const PlanStep& step) {
  forced_cpu_ = true;
  // A prefetch staged alongside the faulted step has no consumer anymore
  // (the executor discards the in-flight uploads as part of its recovery),
  // and a staged host work-ahead was bet on device work that won't run.
  staged_prefetch_.reset();
  staged_host_decode_.reset();
  if (std::holds_alternative<DecodeStep>(step)) {
    // Single-term GPU decode: restart the plan; the re-emitted decode runs
    // on the host.
    stage_ = Stage::kStart;
    return;
  }
  const auto& i = std::get<IntersectStep>(step);
  if (i.first_pair) {
    // No intermediate existed yet: replay from the start (next() will
    // re-emit the first pair, now placed on the CPU).
    stage_ = Stage::kStart;
    next_term_ = 0;
  } else {
    // Un-consume the faulted step's term; next() re-decides it at the
    // current (device-resident) intermediate, forcing CPU — which triggers
    // the normal migration Transfer + pending-Intersect sequence.
    --next_term_;
    stage_ = Stage::kIntersect;
  }
}

void Planner::force_cpu() {
  forced_cpu_ = true;
  // Staged bets assumed a healthy device: the executor's recovery discarded
  // the in-flight uploads, and the host core is about to be busy anyway.
  staged_prefetch_.reset();
  staged_host_decode_.reset();
}

void Planner::degrade_step_to_cpu(const PlanStep& step) {
  staged_prefetch_.reset();
  staged_host_decode_.reset();
  if ([[maybe_unused]] const auto* t = std::get_if<TransferStep>(&step)) {
    // The H2D migration's device allocation failed before the upload, so
    // the intermediate never left the host. The already-decided pending
    // intersect simply runs there: flip it in place, no transfer needed.
    assert(stage_ == Stage::kPendingIntersect &&
           t->direction == TransferDirection::kHostToDevice);
    pending_.where = Placement::kCpu;
    pending_.alpha = 0.0;
    return;
  }
  force_next_cpu_ = true;
  if (std::holds_alternative<DecodeStep>(step)) {
    stage_ = Stage::kStart;
    return;
  }
  const auto& i = std::get<IntersectStep>(step);
  if (i.first_pair) {
    stage_ = Stage::kStart;
    next_term_ = 0;
  } else {
    --next_term_;
    stage_ = Stage::kIntersect;
  }
}

void Planner::maybe_stage_prefetch(const IntersectStep& step) {
  const SchedulerOptions& o = sched_->options();
  if (!o.prefetch) return;
  // A degraded query never bets an upload on the device it just stopped
  // trusting: every later consumer is CPU-pinned, so the copy would be pure
  // loss (and, armed, a pointless extra fault site).
  if (forced_cpu_) return;
  if (next_term_ >= terms_.size()) return;  // no later list to move
  const index::TermId nxt = terms_[next_term_];
  if (probe_->device_resident(nxt) || probe_->prefetched(nxt)) return;
  if (step.shape.shorter == 0) return;
  if (step.where == Placement::kCpu) {
    // Inter-step pipelining (DESIGN.md §15): during a CPU-placed intersect
    // the copy engine sits idle, but an upload is only worth issuing when
    // the next step is actually predicted to consume the list on the
    // device (optimistic shape — the intermediate only shrinks).
    if (!o.pipeline_idle) return;
    const Placement nxt_where =
        sched_->decide(shape_for(step.shape.shorter, nxt, Placement::kCpu));
    if (nxt_where == Placement::kCpu) return;
    // The CPU intersect running under this upload usually cuts the probe
    // hard, and a smaller probe re-favors the host (the ratio grows). The
    // device prediction must survive a pessimistic shrink too, or the copy
    // is pure loss the moment it flips.
    const std::uint64_t shrunk = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(static_cast<double>(step.shape.shorter) /
                                   o.prefetch_shrink_robustness),
        1);
    if (sched_->decide(shape_for(shrunk, nxt, Placement::kCpu)) ==
        Placement::kCpu) {
      return;
    }
  }
  // Gate on the ratio as known *now* (the intermediate only shrinks, so
  // this is the optimistic bound): past the limit, the binary-search path's
  // deferred transfer beats even a hidden full-payload upload.
  const double ratio = static_cast<double>(idx_->list(nxt).size()) /
                       static_cast<double>(step.shape.shorter);
  if (ratio >= o.prefetch_ratio_limit) return;
  staged_prefetch_ = nxt;
}

void Planner::maybe_stage_host_decode(const IntersectStep& step) {
  const SchedulerOptions& o = sched_->options();
  if (!o.pipeline_idle || step.where != Placement::kGpu) return;
  if (next_term_ >= terms_.size()) return;  // no later list to decode
  const index::TermId nxt = terms_[next_term_];
  if (probe_->host_decoded(nxt)) return;  // nothing to work ahead on
  if (step.shape.shorter == 0) return;
  // A prefetch of the same term bets on a device consumer; don't also bet
  // the host core on the opposite outcome.
  if (staged_prefetch_.has_value() && *staged_prefetch_ == nxt) return;
  // Work ahead only when the next step is predicted to run host-side (the
  // decode helps nobody otherwise) and the decode fits under the device
  // step's estimated time — a longer decode would stall the plan frontier
  // it was meant to hide under.
  const Placement nxt_where =
      sched_->decide(shape_for(step.shape.shorter, nxt, Placement::kGpu));
  if (nxt_where != Placement::kCpu) return;
  const auto& list = idx_->list(nxt).docids;
  if (sched_->estimate_host_decode(list.size(), list.scheme()) >
      sched_->estimate_gpu(step.shape)) {
    return;
  }
  staged_host_decode_ = nxt;
}

void Planner::begin(const Query& q) {
  terms_.assign(q.terms.begin(), q.terms.end());
  std::sort(terms_.begin(), terms_.end(),
            [&](index::TermId a, index::TermId b) {
              return idx_->list(a).size() < idx_->list(b).size();
            });
  next_term_ = 0;
  stage_ = terms_.empty() ? Stage::kDone : Stage::kStart;
  staged_prefetch_.reset();
  staged_host_decode_.reset();
  forced_cpu_ = false;
  force_next_cpu_ = false;
}

std::optional<PlanStep> Planner::next(std::uint64_t intermediate_count,
                                      std::optional<Placement> location) {
  // A prefetch staged alongside the previous intersect goes out first,
  // whatever the plan does next: the host issued the async copy when it
  // issued that intersect, and an async copy cannot be recalled.
  if (staged_prefetch_.has_value()) {
    const index::TermId t = *staged_prefetch_;
    staged_prefetch_.reset();
    return PrefetchStep{t};
  }
  // Likewise for a staged host work-ahead: the host core started decoding
  // when the device step was issued.
  if (staged_host_decode_.has_value()) {
    const index::TermId t = *staged_host_decode_;
    staged_host_decode_.reset();
    return HostDecodeStep{t};
  }

  if (stage_ == Stage::kStart) {
    if (terms_.size() == 1) {
      // Ranking is host-side (paper Figure 7), so a single-term query
      // decodes on the host — a GPU decode would round-trip the whole list
      // over PCIe for nothing. Only the static GPU baseline (kAlwaysGpu,
      // i.e. the GPU-only engine) is forced to the device.
      const bool pin_cpu = forced_cpu_ || force_next_cpu_;
      force_next_cpu_ = false;
      const Placement where =
          !pin_cpu && sched_->options().policy == SchedulerPolicy::kAlwaysGpu
              ? Placement::kGpu
              : Placement::kCpu;
      stage_ = Stage::kDrain;
      return DecodeStep{terms_[0], where};
    }
    // First pair: no intermediate yet, decide on the raw list lengths.
    IntersectStep step;
    step.term = terms_[1];
    step.probe_term = terms_[0];
    step.first_pair = true;
    step.shape = shape_for(idx_->list(terms_[0]).size(), terms_[1],
                           std::nullopt);
    const bool pin_cpu = forced_cpu_ || force_next_cpu_;
    force_next_cpu_ = false;
    step.where = pin_cpu ? Placement::kCpu : sched_->decide(step.shape);
    if (step.where == Placement::kSplit) {
      step.alpha = sched_->split_alpha(step.shape);
    }
    next_term_ = 2;
    stage_ = Stage::kIntersect;
    maybe_stage_prefetch(step);
    maybe_stage_host_decode(step);
    return step;
  }

  if (stage_ == Stage::kPendingIntersect) {
    stage_ = Stage::kIntersect;
    return pending_;
  }

  if (stage_ == Stage::kIntersect) {
    if (next_term_ >= terms_.size() || intermediate_count == 0) {
      stage_ = Stage::kDrain;
    } else {
      IntersectStep step;
      step.term = terms_[next_term_];
      step.shape = shape_for(intermediate_count, terms_[next_term_], location);
      const bool pin_cpu = forced_cpu_ || force_next_cpu_;
      force_next_cpu_ = false;
      step.where = pin_cpu ? Placement::kCpu : sched_->decide(step.shape);
      if (step.where == Placement::kSplit) {
        step.alpha = sched_->split_alpha(step.shape);
      }
      ++next_term_;
      maybe_stage_prefetch(step);
      maybe_stage_host_decode(step);
      // A split step consumes the intermediate wherever it lives (the
      // executor partitions in place, downloading only the CPU leg's prefix
      // when it is device-resident), so no migration transfer precedes it.
      if (location.has_value() && step.where != Placement::kSplit &&
          step.where != *location) {
        // Migrate first; the already-decided intersect stays pending (the
        // decision is never re-evaluated at the new location).
        pending_ = step;
        stage_ = Stage::kPendingIntersect;
        return TransferStep{step.where == Placement::kGpu
                                ? TransferDirection::kHostToDevice
                                : TransferDirection::kDeviceToHost,
                            /*migration=*/true};
      }
      return step;
    }
  }

  if (stage_ == Stage::kDrain) {
    stage_ = Stage::kRank;
    if (location == Placement::kGpu) {
      // Final drain before host-side ranking; not a migration.
      return TransferStep{TransferDirection::kDeviceToHost,
                          /*migration=*/false};
    }
  }

  if (stage_ == Stage::kRank) {
    stage_ = Stage::kDone;
    return RankStep{};
  }

  return std::nullopt;
}

}  // namespace griffin::core
