#include "core/hybrid_engine.h"

#include <algorithm>

#include "cpu/decode.h"
#include "cpu/intersect.h"

namespace griffin::core {

StepShape HybridEngine::shape_for(std::uint64_t shorter,
                                  index::TermId longer_term,
                                  std::optional<Placement> loc) const {
  StepShape s;
  s.shorter = shorter;
  s.longer = idx_->list(longer_term).size();
  s.longer_bytes = idx_->list(longer_term).docids.compressed_bytes();
  s.current_location = loc;
  return s;
}

QueryResult HybridEngine::execute(const Query& q) {
  QueryResult res;
  QueryMetrics& m = res.metrics;
  if (q.terms.empty()) return res;

  std::vector<index::TermId> terms(q.terms);
  std::sort(terms.begin(), terms.end(),
            [&](index::TermId a, index::TermId b) {
              return idx_->list(a).size() < idx_->list(b).size();
            });

  std::vector<codec::DocId> host_current;  // valid when on_cpu
  bool on_gpu = false;
  exec_.begin_query();

  auto cpu_step_first = [&](index::TermId a, index::TermId b) {
    const auto& l0 = idx_->list(a).docids;
    const auto& l1 = idx_->list(b).docids;
    sim::CpuCostAccumulator acc(hw_.cpu);
    const double ratio =
        static_cast<double>(l1.size()) / static_cast<double>(l0.size());
    if (ratio >= opt_.cpu.skip_ratio) {
      std::vector<codec::DocId> probes;
      cpu::decode_all(l0, probes, acc);
      cpu::skip_intersect(probes, l1, host_current, acc,
                          opt_.cpu.ef_random_access);
    } else {
      cpu::merge_intersect(l0, l1, host_current, acc);
    }
    m.add_stage(acc.time(), &m.intersect);
    m.placements.push_back(Placement::kCpu);
  };

  auto cpu_step_next = [&](index::TermId t) {
    const auto& lt = idx_->list(t).docids;
    sim::CpuCostAccumulator acc(hw_.cpu);
    std::vector<codec::DocId> next;
    const double ratio = static_cast<double>(lt.size()) /
                         static_cast<double>(host_current.size());
    if (ratio >= opt_.cpu.skip_ratio) {
      cpu::skip_intersect(host_current, lt, next, acc,
                          opt_.cpu.ef_random_access);
    } else {
      cpu::merge_intersect(host_current, lt, next, acc);
    }
    host_current.swap(next);
    m.add_stage(acc.time(), &m.intersect);
    m.placements.push_back(Placement::kCpu);
  };

  if (terms.size() == 1) {
    sim::CpuCostAccumulator acc(hw_.cpu);
    cpu::decode_all(idx_->list(terms[0]).docids, host_current, acc);
    m.add_stage(acc.time(), &m.decode);
  } else {
    // First pair: no intermediate yet, decide on the raw list lengths.
    const StepShape first =
        shape_for(idx_->list(terms[0]).size(), terms[1], std::nullopt);
    if (sched_.decide(first) == Placement::kGpu) {
      exec_.intersect_first(terms[0], terms[1], m);
      on_gpu = true;
    } else {
      cpu_step_first(terms[0], terms[1]);
    }

    for (std::size_t i = 2; i < terms.size(); ++i) {
      const std::uint64_t count =
          on_gpu ? exec_.intermediate_count() : host_current.size();
      if (count == 0) break;
      const StepShape s = shape_for(
          count, terms[i], on_gpu ? Placement::kGpu : Placement::kCpu);
      const Placement p = sched_.decide(s);
      if (p == Placement::kGpu) {
        if (!on_gpu) {
          exec_.upload_intermediate(host_current, m);
          ++m.migrations;
          on_gpu = true;
        }
        exec_.intersect_next(terms[i], m);
      } else {
        if (on_gpu) {
          host_current = exec_.download_intermediate(m);
          ++m.migrations;
          on_gpu = false;
        }
        cpu_step_next(terms[i]);
      }
    }
  }

  if (on_gpu) {
    host_current = exec_.download_intermediate(m);
    on_gpu = false;
  }
  exec_.begin_query();  // release device buffers
  m.result_count = host_current.size();

  // Original term order for scoring (not length order): keeps float
  // accumulation bit-identical across engines and index shards.
  sim::CpuCostAccumulator rank(hw_.cpu);
  scorer_.score(q.terms, host_current, res.topk, rank);
  cpu::top_k(res.topk, q.k, rank);
  m.add_stage(rank.time(), &m.rank);
  return res;
}

}  // namespace griffin::core
