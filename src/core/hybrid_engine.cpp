#include "core/hybrid_engine.h"

#include <algorithm>

namespace griffin::core {

StepShape HybridEngine::shape_for(std::uint64_t shorter,
                                  index::TermId longer_term,
                                  std::optional<Placement> loc) const {
  StepShape s;
  s.shorter = shorter;
  s.longer = idx_->list(longer_term).size();
  s.longer_bytes = idx_->list(longer_term).docids.compressed_bytes();
  // Residency bits from the two cache tiers: cold caches leave both false,
  // so the first queries decide exactly as the paper's rule does.
  s.longer_device_resident = exec_.device_resident(longer_term);
  s.longer_host_decoded = svs_.host_decoded(longer_term);
  s.current_location = loc;
  return s;
}

QueryResult HybridEngine::execute(const Query& q) {
  QueryResult res;
  QueryMetrics& m = res.metrics;
  if (q.terms.empty()) return res;

  std::vector<index::TermId> terms(q.terms);
  std::sort(terms.begin(), terms.end(),
            [&](index::TermId a, index::TermId b) {
              return idx_->list(a).size() < idx_->list(b).size();
            });

  std::vector<codec::DocId> host_current;  // valid when on_cpu
  bool on_gpu = false;
  exec_.begin_query();

  if (terms.size() == 1) {
    svs_.decode_single(terms[0], host_current, m);
  } else {
    // First pair: no intermediate yet, decide on the raw list lengths.
    const StepShape first =
        shape_for(idx_->list(terms[0]).size(), terms[1], std::nullopt);
    if (sched_.decide(first) == Placement::kGpu) {
      exec_.intersect_first(terms[0], terms[1], m);
      on_gpu = true;
    } else {
      svs_.first_pair(terms[0], terms[1], host_current, m);
    }

    for (std::size_t i = 2; i < terms.size(); ++i) {
      const std::uint64_t count =
          on_gpu ? exec_.intermediate_count() : host_current.size();
      if (count == 0) break;
      const StepShape s = shape_for(
          count, terms[i], on_gpu ? Placement::kGpu : Placement::kCpu);
      const Placement p = sched_.decide(s);
      if (p == Placement::kGpu) {
        if (!on_gpu) {
          exec_.upload_intermediate(host_current, m);
          ++m.migrations;
          on_gpu = true;
        }
        exec_.intersect_next(terms[i], m);
      } else {
        if (on_gpu) {
          host_current = exec_.download_intermediate(m);
          ++m.migrations;
          on_gpu = false;
        }
        svs_.next_step(host_current, terms[i], m);
      }
    }
  }

  if (on_gpu) {
    host_current = exec_.download_intermediate(m);
    on_gpu = false;
  }
  exec_.begin_query();  // release device buffers
  m.result_count = host_current.size();

  // Original term order for scoring (not length order): keeps float
  // accumulation bit-identical across engines and index shards.
  sim::CpuCostAccumulator rank(hw_.cpu);
  scorer_.score(q.terms, host_current, res.topk, rank);
  cpu::top_k(res.topk, q.k, rank);
  m.add_stage(rank.time(), &m.rank);
  return res;
}

}  // namespace griffin::core
