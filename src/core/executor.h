// The shared step executor (DESIGN.md §8): runs one physical plan step at a
// time, dispatching CPU steps to cpu::SvsStepper, GPU steps to
// gpu::GpuExecutor, and transfer steps to the PCIe link the GpuExecutor
// owns. Either backend may be absent (the CPU-only engine has no
// GpuExecutor, the GPU-only engine no SvsStepper) — the degenerate
// scheduler policies guarantee the corresponding steps are never planned.
//
// Every run() appends a StepRecord to QueryResult::trace by snapshotting
// the QueryMetrics stage totals around the dispatch, so per-step durations
// sum to the stage totals *by construction* — the backends' charging code
// is untouched, which is what keeps execution bit-identical to the
// pre-plan-layer engines.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/plan.h"
#include "core/planner.h"
#include "core/query.h"
#include "cpu/bm25.h"
#include "cpu/svs_step.h"
#include "gpu/engine.h"

namespace griffin::core {

/// What StepExecutor::run did with the step, and what the planner must do
/// next (DESIGN.md §11/§16). run_plan and the tenancy DeviceManager switch
/// on this; the two abandon statuses both re-emit the step, differing only
/// in how much of the remaining plan is pinned host-side.
enum class StepStatus : std::uint8_t {
  kOk,          ///< step ran (or an optional prefetch was dropped)
  /// The step completed but the device is no longer trusted for this query
  /// (a split step's GPU leg was lost and redone host-side): the caller
  /// pins the remainder via Planner::force_cpu().
  kOkForceCpu,
  /// An injected device fault abandoned the step: wasted time charged,
  /// device caches invalidated; re-plan the whole remainder via
  /// Planner::degrade_to_cpu().
  kFaultQuery,
  /// The OOM ladder bottomed out (rung 3): the step was abandoned but the
  /// pressure is transient — re-plan just this step via
  /// Planner::degrade_step_to_cpu(); later steps decide freely.
  kFaultStep,
};

class StepExecutor : public ResidencyProbe {
 public:
  /// `svs` and/or `gpu` may be nullptr when the scheduler policy can never
  /// place a step on that backend. `scorer` and the rank spec are always
  /// required (ranking is unconditionally CPU-side). A non-null `injector`
  /// arms fault injection (DESIGN.md §11): GPU compute steps may be
  /// abandoned (degrading the plan to the CPU — requires a non-null `svs`)
  /// and the GpuExecutor's DMAs draw PCIe error coordinates. `fault_scope`
  /// is the shard id in a cluster, 0 standalone.
  StepExecutor(sim::CpuSpec rank_spec, cpu::SvsStepper* svs,
               gpu::GpuExecutor* gpu, const cpu::Bm25Scorer& scorer,
               const fault::FaultInjector* injector = nullptr,
               std::uint32_t fault_scope = 0)
      : rank_spec_(rank_spec),
        svs_(svs),
        gpu_(gpu),
        scorer_(&scorer),
        injector_(injector),
        fault_scope_(fault_scope) {
    if (gpu_ != nullptr) gpu_->set_fault_injector(injector, fault_scope);
  }

  /// Binds this executor to a shared multi-tenant timeline (DESIGN.md §12).
  /// The next begin_query() opens its streams at `release` (the admission
  /// time) inside a fresh accounting scope instead of resetting a private
  /// timeline, so ops from co-admitted queries contend for the same
  /// per-resource busy clocks. Call before every begin_query() while
  /// shared; pass nullptr to return to private single-tenant mode.
  void bind_shared(sim::Timeline* tl, sim::Duration release = {}) {
    tl_ = tl != nullptr ? tl : &own_tl_;
    release_ = tl != nullptr ? release : sim::Duration();
  }

  /// Resets per-query state (host intermediate, device buffers) and the
  /// timeline (DESIGN.md §10): one CPU stream here, one copy + one compute
  /// stream inside the GpuExecutor. On a shared timeline the streams open
  /// at the bound release time and the timeline itself is left intact.
  /// The query keys fault coordinates.
  void begin_query(const Query& q);

  /// Executes one step: charges res.metrics through the backend, mirrors
  /// the charges onto the timeline, and appends the StepRecord (with its
  /// issue/start/end placement) to res.trace. The returned StepStatus tells
  /// the caller which planner recovery hook to invoke, if any — run_plan
  /// and the tenancy DeviceManager dispatch on it.
  StepStatus run(const PlanStep& step, const Query& q, QueryResult& res);

  /// Releases device buffers (dropping unconsumed prefetches into m), then
  /// settles the asynchronous accounting: m.total becomes the timeline's
  /// critical path and m.overlap.saved the exact serial difference, so
  /// decode + intersect + transfer + rank == total + overlap.saved in
  /// integer picoseconds.
  void finish_query(QueryMetrics& m);

  /// Current intermediate-result size, wherever it lives.
  std::uint64_t intermediate_count() const;
  /// Where the intermediate lives; nullopt before the first step.
  std::optional<Placement> location() const { return loc_; }

  // ResidencyProbe: stat-free cache probes for the planner's StepShapes.
  bool device_resident(index::TermId t) const override {
    return gpu_ != nullptr && gpu_->device_resident(t);
  }
  bool host_decoded(index::TermId t) const override {
    return svs_ != nullptr && svs_->host_decoded(t);
  }
  bool prefetched(index::TermId t) const override {
    return gpu_ != nullptr && gpu_->prefetched(t);
  }

  const sim::Timeline& timeline() const { return *tl_; }

  /// The plan frontier's completion time: when this query's latest step
  /// finishes on the shared timeline. The tenancy DeviceManager steps the
  /// lane whose frontier is earliest (min-frontier interleave).
  sim::Timeline::Event frontier() const { return frontier_; }

  /// Marks the next decode/intersect step as a member of a cross-query
  /// kernel batch of `size` queries (tenancy BatchComposer). Forwarded to
  /// the GpuExecutor's launch-overhead/warp-fill model; `group` tags the
  /// StepRecord. size <= 1 restores unbatched accounting.
  void set_batch(std::uint32_t size, std::uint64_t group);

 private:
  void dispatch(const PlanStep& step, const Query& q, QueryResult& res);
  /// The fault-abort path of run(): charges `waste` as lost device time,
  /// resets the GpuExecutor's per-step state, and appends the faulted
  /// StepRecord. `oom` selects which FaultCounters the abandon lands in
  /// (gpu_faults/gpu_wasted vs oom_degraded_steps/oom_recovery).
  void abandon_gpu_step(const PlanStep& step, QueryResult& res,
                        sim::Duration waste, bool oom);
  /// A device fault (or a bottomed-out OOM ladder) killed a kPrefetch
  /// upload: append a zero-duration faulted record and count it. The cache
  /// is never touched — the dropped upload cannot poison it — and the plan
  /// continues unchanged (a prefetch is optional work).
  void drop_faulted_prefetch(const PrefetchStep& p, QueryResult& res);
  /// Executes a kSplit intersect (DESIGN.md §15): partitions the sorted
  /// probe side at index round((1-alpha)*n) — low docID range to the CPU's
  /// SvS stepper, high range to the GPU's binary-search kernels — runs both
  /// legs concurrently on their timeline streams, and concatenates the
  /// docID-disjoint partials into a host-side intermediate (bit-identical
  /// to the unsplit result). Sets split_done_ to join(cpu leg, gpu leg);
  /// run() adopts it as the new plan frontier.
  void run_split(const IntersectStep& i, QueryResult& res);
  /// The CPU leg of run_split: partial_step over the probe prefix, mirrored
  /// as one CPU-stream op waiting on `ready`. Returns its completion (or
  /// `ready` unchanged for an empty leg).
  sim::Timeline::Event run_cpu_leg(std::span<const codec::DocId> probes,
                                   index::TermId t,
                                   std::vector<codec::DocId>& out,
                                   sim::Timeline::Event ready,
                                   QueryMetrics& m);

  sim::CpuSpec rank_spec_;
  cpu::SvsStepper* svs_;
  gpu::GpuExecutor* gpu_;
  const cpu::Bm25Scorer* scorer_;
  const fault::FaultInjector* injector_;
  std::uint32_t fault_scope_;
  std::uint64_t query_id_ = 0;
  std::uint64_t step_index_ = 0;  ///< fault coordinate of the next step
  std::vector<codec::DocId> host_current_;  ///< valid when loc_ == kCpu
  std::optional<Placement> loc_;
  /// Private single-tenant timeline; tl_ points here unless bind_shared()
  /// redirected it to a DeviceManager-owned shared timeline.
  sim::Timeline own_tl_;
  sim::Timeline* tl_ = &own_tl_;
  sim::Duration release_;              ///< stream open time (shared mode)
  sim::Timeline::ScopeId scope_ = 0;   ///< this query's accounting scope
  std::uint64_t batch_group_ = 0;      ///< current batch tag for records
  sim::Timeline::StreamId cpu_stream_ = 0;
  /// The plan frontier: completion of the latest step every later dependent
  /// op must wait on. GPU steps advance it through the GpuExecutor's chain;
  /// prefetch and host-decode steps deliberately leave it alone.
  sim::Timeline::Event frontier_;
  /// Completion of the last kSplit step (join of both legs); consumed by
  /// run() as the frontier since neither gpu_->chain() nor a single CPU op
  /// covers both legs.
  sim::Timeline::Event split_done_;
  /// Set by run_split when an injected device fault killed the GPU leg
  /// (the step still completed, host-side); consumed by run(), which marks
  /// the StepRecord and returns kOkForceCpu.
  bool leg_faulted_ = false;
};

/// The shared driver loop: plans and executes one query start to finish.
/// All three engines' execute() methods are exactly this call.
QueryResult run_plan(Planner& planner, StepExecutor& exec, const Query& q);

}  // namespace griffin::core
