// Query types and the engine interface shared by the CPU engine, Griffin-GPU
// and the hybrid Griffin engine. Kept dependency-light so the concrete
// engines can implement it without cycles.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "index/inverted_index.h"
#include "sim/cpu_cost_model.h"
#include "sim/time.h"
#include "sim/timeline.h"

namespace griffin::core {

/// A conjunctive (AND) query: documents must contain every term.
struct Query {
  std::vector<index::TermId> terms;
  std::uint32_t k = 10;  ///< results to return
  std::uint64_t id = 0;  ///< caller-assigned id (trace position)
};

struct ScoredDoc {
  index::DocId doc = 0;
  float score = 0.0f;
};

/// Where one intersection step ran — the scheduler's decision trail.
/// kSplit is the co-execution placement (DESIGN.md §15): the probe side is
/// partitioned into two docID-disjoint ranges and both processors run their
/// range at once; the concatenated partials are bit-identical to either
/// single-processor result.
enum class Placement : std::uint8_t { kCpu, kGpu, kSplit };

/// The step taxonomy of the physical-plan layer (core/plan.h holds the typed
/// step structs; the kind tag lives here so trace records stay
/// dependency-light).
enum class StepKind : std::uint8_t {
  kDecode,
  kIntersect,
  kTransfer,
  kRank,
  /// Asynchronous H2D of a later step's posting list on the copy engine,
  /// overlapping the current step's kernels (DESIGN.md §10). Never changes
  /// results; dropped (its entry discarded) when the plan migrates to CPU.
  kPrefetch,
  /// Host-side decode of a later step's posting list into the decoded
  /// cache while the GPU runs the current intersect (DESIGN.md §15): the
  /// idle processor works ahead on a step with no data dependence. Like
  /// kPrefetch it never advances the plan frontier — only a later consumer
  /// (via the host cache) benefits.
  kHostDecode,
};

/// One intersection step as the scheduler sees it (core/scheduler.h decides
/// on exactly this; core/planner.h builds it from the intermediate-result
/// state plus the cache-residency probes).
struct StepShape {
  std::uint64_t shorter = 0;       ///< current intermediate (or short list)
  std::uint64_t longer = 0;        ///< next posting list length
  std::uint64_t longer_bytes = 0;  ///< its compressed payload bytes
  /// The long list's compression scheme: the cost model prices the CPU
  /// decode through the per-codec lane model and charges the GPU a decode
  /// penalty for codecs with no lane-parallel kernel (gpu/decode.h).
  codec::Scheme longer_scheme = codec::Scheme::kEliasFano;
  /// Long list already resident in the GPU's list cache (no H2D transfer).
  bool longer_device_resident = false;
  /// Long list already decoded in the host cache (no CPU decode work).
  bool longer_host_decoded = false;
  /// Long list already in flight to (or landed on) the device via a
  /// kPrefetch step: the H2D is paid and hidden, so the GPU side owes no
  /// transfer for it (scheduler crossover shifts accordingly).
  bool longer_prefetched = false;
  std::optional<Placement> current_location;  ///< where the intermediate lives
};

/// One executed plan step, as appended to QueryResult::trace. The four stage
/// fields are the *deltas* the step added to the QueryMetrics stage totals,
/// so summing any stage over a trace reproduces that QueryMetrics field
/// exactly — every charge in the system happens inside some step.
struct StepRecord {
  StepKind kind = StepKind::kDecode;
  /// The query this step belongs to (Query::id). Under multi-tenancy the
  /// trace JSONL interleaves co-admitted queries; this keeps rows
  /// attributable.
  std::uint64_t query = 0;
  /// Cross-query kernel batch this step was coalesced into (tenancy
  /// BatchComposer). 0 = unbatched; equal non-zero ids mark steps whose
  /// kernels launched together and shared the launch overhead.
  std::uint64_t batch_group = 0;
  /// Decode/intersect: the processor that ran the step (kSplit when both
  /// ran a range of it). Transfer: the destination. Rank: kCpu.
  Placement placement = Placement::kCpu;
  /// kSplit intersects only: the GPU's share of the probe side — the
  /// scheduler's throughput-proportional fraction α (Scheduler::split_alpha
  /// replays it from `shape`).
  double alpha = 0.0;
  index::TermId term = 0;  ///< posting list consumed (decode/intersect)
  /// Intersect steps: the scheduler's input, residency bits included
  /// (Scheduler::decide(shape) replays to `placement`).
  StepShape shape;
  std::uint64_t output_count = 0;  ///< intermediate size after the step
  std::uint64_t gpu_kernels = 0;   ///< kernel launches charged by the step
  /// kTransfer only: a mid-query placement flip (QueryMetrics::migrations),
  /// as opposed to the final device->host drain before ranking.
  bool migration = false;
  /// The step was abandoned by an injected GPU device fault (DESIGN.md §11)
  /// or by the OOM ladder's re-plan rung (DESIGN.md §16): its duration is
  /// the wasted device time, its work was redone on the CPU by the
  /// re-planned steps that follow it in the trace.
  bool faulted = false;
  /// kSplit only: the GPU leg was lost to an injected device fault but the
  /// step still completed — the CPU leg's partial survived and the high
  /// range was redone host-side (DESIGN.md §16). Unlike `faulted`, the step
  /// did its full stage work and counts normally.
  bool leg_faulted = false;
  sim::Duration duration;          ///< decode + intersect + transfer + rank
  sim::Duration decode;
  sim::Duration intersect;
  sim::Duration transfer;
  sim::Duration rank;
  /// Lane-accounting delta this step added to QueryMetrics::simd (all zero
  /// for scalar-mode CPUs, GPU-placed steps and transfers). simd.utilization()
  /// is the step's vector-lane occupancy.
  sim::SimdCounters simd;
  /// Timeline placement (DESIGN.md §10): when the step's first op could
  /// issue (stream + event dependencies met), when its resource actually
  /// started it, and when its last op finished. duration still sums the
  /// serial charges, so end - start < duration exactly when the step's own
  /// ops overlapped each other (double-buffered decode).
  sim::Duration issue;
  sim::Duration start;
  sim::Duration end;
  /// The step's primary resource: compute unit for decode/intersect, the
  /// copy engine for transfer/prefetch, the host for rank.
  sim::Resource resource = sim::Resource::kCpu;
};

/// Order-free aggregate of step records: the cluster/service layers fold
/// every executed query's trace into one of these (per shard node, per
/// broker run, per service run) the same way CacheCounters flow.
struct TraceSummary {
  std::uint64_t steps = 0;
  std::uint64_t decode_steps = 0;
  std::uint64_t intersect_steps = 0;
  std::uint64_t transfer_steps = 0;
  std::uint64_t rank_steps = 0;
  std::uint64_t prefetch_steps = 0;
  std::uint64_t cpu_intersects = 0;  ///< intersect steps placed on the CPU
  std::uint64_t gpu_intersects = 0;  ///< intersect steps placed on the GPU
  /// Intersect steps co-executed on both processors (Placement::kSplit).
  std::uint64_t split_intersects = 0;
  std::uint64_t host_decode_steps = 0;  ///< kHostDecode work-ahead steps
  std::uint64_t migrations = 0;      ///< transfer steps that were migrations
  std::uint64_t faulted_steps = 0;   ///< steps abandoned by injected faults
  /// Split steps that completed with their GPU leg redone on the CPU after
  /// an injected device fault (StepRecord::leg_faulted).
  std::uint64_t leg_faulted_steps = 0;
  std::uint64_t batched_steps = 0;   ///< steps coalesced into a cross-query batch
  /// Summed StepRecord::duration — the *serial* stage time, i.e. per query
  /// QueryMetrics::total (critical path) + overlap.saved.
  sim::Duration step_time;
  /// Summed lane-accounting counters over every CPU step (DESIGN.md §13).
  sim::SimdCounters simd;

  /// Vector-lane occupancy across the whole trace (0 when no vectorized
  /// loop ran anywhere — scalar CPUs or pure-GPU plans).
  double lane_utilization() const { return simd.utilization(); }

  void add(const StepRecord& r) {
    ++steps;
    if (r.batch_group != 0) ++batched_steps;
    if (r.leg_faulted) ++leg_faulted_steps;
    simd += r.simd;
    if (r.faulted) {
      // An abandoned step's wasted time is real, but it did no stage work —
      // counting it as a gpu_intersect would misstate the processor split.
      ++faulted_steps;
      step_time += r.duration;
      return;
    }
    switch (r.kind) {
      case StepKind::kDecode: ++decode_steps; break;
      case StepKind::kIntersect:
        ++intersect_steps;
        switch (r.placement) {
          case Placement::kCpu: ++cpu_intersects; break;
          case Placement::kGpu: ++gpu_intersects; break;
          case Placement::kSplit: ++split_intersects; break;
        }
        break;
      case StepKind::kTransfer:
        ++transfer_steps;
        if (r.migration) ++migrations;
        break;
      case StepKind::kRank: ++rank_steps; break;
      case StepKind::kPrefetch: ++prefetch_steps; break;
      case StepKind::kHostDecode: ++host_decode_steps; break;
    }
    step_time += r.duration;
  }
  void add(std::span<const StepRecord> trace) {
    for (const auto& r : trace) add(r);
  }
  TraceSummary& operator+=(const TraceSummary& o) {
    steps += o.steps;
    decode_steps += o.decode_steps;
    intersect_steps += o.intersect_steps;
    transfer_steps += o.transfer_steps;
    rank_steps += o.rank_steps;
    prefetch_steps += o.prefetch_steps;
    cpu_intersects += o.cpu_intersects;
    gpu_intersects += o.gpu_intersects;
    split_intersects += o.split_intersects;
    host_decode_steps += o.host_decode_steps;
    migrations += o.migrations;
    faulted_steps += o.faulted_steps;
    leg_faulted_steps += o.leg_faulted_steps;
    batched_steps += o.batched_steps;
    step_time += o.step_time;
    simd += o.simd;
    return *this;
  }

  /// Fraction of single-processor intersects that ran on the GPU. Split
  /// steps engage both processors at once, so they are excluded here and
  /// reported through split_intersects instead.
  double gpu_intersect_fraction() const {
    const std::uint64_t n = cpu_intersects + gpu_intersects;
    return n == 0 ? 0.0
                  : static_cast<double>(gpu_intersects) /
                        static_cast<double>(n);
  }
};

/// Hit/miss/eviction counts for the two engine-side caching tiers: the
/// device-resident compressed-list cache (gpu/list_cache.h) and the host
/// decoded-postings cache (cpu/decoded_cache.h). Pure counters — the time
/// saved by a hit shows up as *absent* charges in the stage durations, so
/// decode + intersect + transfer + rank still sums to total.
struct CacheCounters {
  std::uint64_t device_hits = 0;
  std::uint64_t device_misses = 0;
  std::uint64_t device_evictions = 0;
  std::uint64_t host_hits = 0;
  std::uint64_t host_misses = 0;
  std::uint64_t host_evictions = 0;

  CacheCounters& operator+=(const CacheCounters& o) {
    device_hits += o.device_hits;
    device_misses += o.device_misses;
    device_evictions += o.device_evictions;
    host_hits += o.host_hits;
    host_misses += o.host_misses;
    host_evictions += o.host_evictions;
    return *this;
  }

  static double rate(std::uint64_t hits, std::uint64_t misses) {
    const std::uint64_t n = hits + misses;
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
  double device_hit_rate() const { return rate(device_hits, device_misses); }
  double host_hit_rate() const { return rate(host_hits, host_misses); }
};

/// Asynchronous-execution counters (DESIGN.md §10). `saved` is the exact
/// picosecond difference between the serial stage sum and the critical
/// path, so QueryMetrics::total + overlap.saved reproduces the stage sums
/// bit-exactly; the busy durations measure copy-engine occupancy for
/// utilization reporting.
struct OverlapCounters {
  std::uint64_t prefetch_issued = 0;   ///< kPrefetch uploads started
  std::uint64_t prefetch_used = 0;     ///< consumed by a later GPU step
  std::uint64_t prefetch_dropped = 0;  ///< discarded (migration / query end)
  sim::Duration saved;                 ///< serial stage sum - critical path
  sim::Duration cpu_busy;              ///< host-core busy time
  sim::Duration gpu_busy;              ///< kernel-pipeline busy time
  sim::Duration h2d_busy;              ///< H2D copy-engine busy time
  sim::Duration d2h_busy;              ///< D2H copy-engine busy time

  /// Busy time of one resource, mapped from the timeline's resource enum.
  sim::Duration busy(sim::Resource r) const {
    switch (r) {
      case sim::Resource::kCpu: return cpu_busy;
      case sim::Resource::kGpuCompute: return gpu_busy;
      case sim::Resource::kCopyH2D: return h2d_busy;
      case sim::Resource::kCopyD2H: return d2h_busy;
    }
    return {};
  }

  OverlapCounters& operator+=(const OverlapCounters& o) {
    prefetch_issued += o.prefetch_issued;
    prefetch_used += o.prefetch_used;
    prefetch_dropped += o.prefetch_dropped;
    saved += o.saved;
    cpu_busy += o.cpu_busy;
    gpu_busy += o.gpu_busy;
    h2d_busy += o.h2d_busy;
    d2h_busy += o.d2h_busy;
    return *this;
  }
};

/// Per-query latency breakdown in simulated time. Since the asynchronous
/// timeline (DESIGN.md §10), `total` is the *critical path* — what a wall
/// clock would measure with copies overlapping kernels — while the four
/// stage durations keep their serial meaning, so the stage identity is
///   decode + intersect + transfer + rank == total + overlap.saved.
struct QueryMetrics {
  sim::Duration total;
  sim::Duration decode;
  sim::Duration intersect;
  sim::Duration transfer;   ///< PCIe traffic + device allocations
  sim::Duration rank;
  std::uint64_t gpu_kernels = 0;
  std::uint64_t migrations = 0;   ///< GPU<->CPU hand-offs mid-query
  std::uint64_t result_count = 0; ///< docs matching all terms
  CacheCounters cache;            ///< per-query cache-tier counters
  OverlapCounters overlap;        ///< copy/compute-overlap accounting
  fault::FaultCounters faults;    ///< injected-fault / degradation counters
  sim::SimdCounters simd;         ///< lane accounting over the CPU's vector loops
  std::vector<Placement> placements;  ///< one per intersection step

  void add_stage(sim::Duration d, sim::Duration* stage) {
    total += d;
    *stage += d;
  }
};

struct QueryResult {
  std::vector<ScoredDoc> topk;
  QueryMetrics metrics;
  /// One record per executed plan step (core/executor.h appends them); the
  /// introspection/replay surface for scheduling experiments.
  std::vector<StepRecord> trace;
};

/// Common interface: execute one query over a fixed index.
class Engine {
 public:
  virtual ~Engine() = default;
  virtual QueryResult execute(const Query& q) = 0;
  virtual std::string name() const = 0;
};

}  // namespace griffin::core
