// Query types and the engine interface shared by the CPU engine, Griffin-GPU
// and the hybrid Griffin engine. Kept dependency-light so the concrete
// engines can implement it without cycles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "index/inverted_index.h"
#include "sim/time.h"

namespace griffin::core {

/// A conjunctive (AND) query: documents must contain every term.
struct Query {
  std::vector<index::TermId> terms;
  std::uint32_t k = 10;  ///< results to return
  std::uint64_t id = 0;  ///< caller-assigned id (trace position)
};

struct ScoredDoc {
  index::DocId doc = 0;
  float score = 0.0f;
};

/// Where one intersection step ran — the scheduler's decision trail.
enum class Placement : std::uint8_t { kCpu, kGpu };

/// Hit/miss/eviction counts for the two engine-side caching tiers: the
/// device-resident compressed-list cache (gpu/list_cache.h) and the host
/// decoded-postings cache (cpu/decoded_cache.h). Pure counters — the time
/// saved by a hit shows up as *absent* charges in the stage durations, so
/// decode + intersect + transfer + rank still sums to total.
struct CacheCounters {
  std::uint64_t device_hits = 0;
  std::uint64_t device_misses = 0;
  std::uint64_t device_evictions = 0;
  std::uint64_t host_hits = 0;
  std::uint64_t host_misses = 0;
  std::uint64_t host_evictions = 0;

  CacheCounters& operator+=(const CacheCounters& o) {
    device_hits += o.device_hits;
    device_misses += o.device_misses;
    device_evictions += o.device_evictions;
    host_hits += o.host_hits;
    host_misses += o.host_misses;
    host_evictions += o.host_evictions;
    return *this;
  }

  static double rate(std::uint64_t hits, std::uint64_t misses) {
    const std::uint64_t n = hits + misses;
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
  double device_hit_rate() const { return rate(device_hits, device_misses); }
  double host_hit_rate() const { return rate(host_hits, host_misses); }
};

/// Per-query latency breakdown in simulated time.
struct QueryMetrics {
  sim::Duration total;
  sim::Duration decode;
  sim::Duration intersect;
  sim::Duration transfer;   ///< PCIe traffic + device allocations
  sim::Duration rank;
  std::uint64_t gpu_kernels = 0;
  std::uint64_t migrations = 0;   ///< GPU<->CPU hand-offs mid-query
  std::uint64_t result_count = 0; ///< docs matching all terms
  CacheCounters cache;            ///< per-query cache-tier counters
  std::vector<Placement> placements;  ///< one per intersection step

  void add_stage(sim::Duration d, sim::Duration* stage) {
    total += d;
    *stage += d;
  }
};

struct QueryResult {
  std::vector<ScoredDoc> topk;
  QueryMetrics metrics;
};

/// Common interface: execute one query over a fixed index.
class Engine {
 public:
  virtual ~Engine() = default;
  virtual QueryResult execute(const Query& q) = 0;
  virtual std::string name() const = 0;
};

}  // namespace griffin::core
