// Query types and the engine interface shared by the CPU engine, Griffin-GPU
// and the hybrid Griffin engine. Kept dependency-light so the concrete
// engines can implement it without cycles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "index/inverted_index.h"
#include "sim/time.h"

namespace griffin::core {

/// A conjunctive (AND) query: documents must contain every term.
struct Query {
  std::vector<index::TermId> terms;
  std::uint32_t k = 10;  ///< results to return
  std::uint64_t id = 0;  ///< caller-assigned id (trace position)
};

struct ScoredDoc {
  index::DocId doc = 0;
  float score = 0.0f;
};

/// Where one intersection step ran — the scheduler's decision trail.
enum class Placement : std::uint8_t { kCpu, kGpu };

/// Per-query latency breakdown in simulated time.
struct QueryMetrics {
  sim::Duration total;
  sim::Duration decode;
  sim::Duration intersect;
  sim::Duration transfer;   ///< PCIe traffic + device allocations
  sim::Duration rank;
  std::uint64_t gpu_kernels = 0;
  std::uint64_t migrations = 0;   ///< GPU<->CPU hand-offs mid-query
  std::uint64_t result_count = 0; ///< docs matching all terms
  std::vector<Placement> placements;  ///< one per intersection step

  void add_stage(sim::Duration d, sim::Duration* stage) {
    total += d;
    *stage += d;
  }
};

struct QueryResult {
  std::vector<ScoredDoc> topk;
  QueryMetrics metrics;
};

/// Common interface: execute one query over a fixed index.
class Engine {
 public:
  virtual ~Engine() = default;
  virtual QueryResult execute(const Query& q) = 0;
  virtual std::string name() const = 0;
};

}  // namespace griffin::core
