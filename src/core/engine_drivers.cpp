// The three engines' execute() methods, together in one TU to make the
// refactor's point visible: each is the same planner/executor pair under a
// different scheduler policy. kAlwaysCpu *is* the CPU-only engine,
// kAlwaysGpu *is* Griffin-GPU, and the hybrid engine is whatever policy its
// options carry (the paper's ratio rule by default). No engine owns a step
// loop anymore — core/planner.cpp decides, core/executor.cpp runs.
#include "core/executor.h"
#include "core/hybrid_engine.h"
#include "core/planner.h"

namespace griffin::cpu {

core::QueryResult CpuEngine::execute(const core::Query& q) {
  core::SchedulerOptions sopt;
  sopt.policy = core::SchedulerPolicy::kAlwaysCpu;
  const core::Scheduler sched(sopt);  // hw is never read by kAlwaysCpu
  core::StepExecutor exec(spec_, &stepper_, /*gpu=*/nullptr, scorer_);
  core::Planner planner(*idx_, sched, exec);
  return core::run_plan(planner, exec, q);
}

}  // namespace griffin::cpu

namespace griffin::gpu {

core::QueryResult GpuEngine::execute(const core::Query& q) {
  core::SchedulerOptions sopt;
  sopt.policy = core::SchedulerPolicy::kAlwaysGpu;
  const core::Scheduler sched(sopt);
  core::StepExecutor exec(hw_.cpu, /*svs=*/nullptr, &exec_, scorer_);
  core::Planner planner(*idx_, sched, exec);
  return core::run_plan(planner, exec, q);
}

}  // namespace griffin::gpu

namespace griffin::core {

QueryResult HybridEngine::execute(const Query& q) {
  // Only the hybrid engine wires the injector: it alone has a CPU backend
  // to degrade onto. Disarmed fault config passes nullptr, so the zero-
  // fault path is the exact pre-fault code path (golden parity).
  const fault::FaultInjector* inj =
      opt_.faults.engine_faults_armed() ? &injector_ : nullptr;
  StepExecutor exec(hw_.cpu, &svs_, &exec_, scorer_, inj, opt_.fault_scope);
  Planner planner(*idx_, sched_, exec);
  return run_plan(planner, exec, q);
}

}  // namespace griffin::core
