// Griffin: the hybrid engine (paper Figure 1(d), §3.2). A query starts on
// the processor the scheduler picks for its two shortest lists; after every
// pairwise intersection the scheduler re-evaluates with the shrunken
// intermediate result, and execution migrates (GPU -> CPU, paying the PCIe
// transfer) when the characteristics flip. Ranking always runs on the CPU.
//
// Since the plan/execute decomposition (DESIGN.md §8) this class is a thin
// driver: execute() hands the query to the shared Planner + StepExecutor
// (core/planner.h, core/executor.h) with this engine's scheduler; the CPU-
// and GPU-only engines are the same driver under the degenerate policies.
#pragma once

#include <vector>

#include "core/query.h"
#include "core/scheduler.h"
#include "cpu/engine.h"
#include "gpu/engine.h"

namespace griffin::core {

struct HybridOptions {
  SchedulerOptions scheduler;
  gpu::GpuOptions gpu;
  cpu::CpuEngineOptions cpu;
  /// Fault injection (DESIGN.md §11/§16). The engine reads the gpu, pcie,
  /// and oom sites; everything disarmed (the default) executes
  /// bit-identically to a build without the injector.
  fault::FaultConfig faults;
  /// Fault-coordinate scope: the shard id when this engine serves a cluster
  /// shard (cluster/broker.cpp sets it), 0 standalone.
  std::uint32_t fault_scope = 0;
};

class HybridEngine : public Engine {
 public:
  HybridEngine(const index::InvertedIndex& idx, sim::HardwareSpec hw = {},
               HybridOptions opt = {})
      : idx_(&idx),
        hw_(hw),
        opt_(opt),
        sched_(opt.scheduler, hw),
        injector_(opt.faults),
        exec_(idx, hw, opt.gpu),
        host_cache_(opt.cpu.decoded_cache_bytes),
        svs_(idx, hw.cpu,
             cpu::SvsOptions{opt.cpu.skip_ratio, opt.cpu.ef_random_access},
             &host_cache_),
        scorer_(idx, opt.cpu.bm25) {}

  QueryResult execute(const Query& q) override;
  std::string name() const override { return "griffin"; }

  const Scheduler& scheduler() const { return sched_; }
  const gpu::GpuExecutor& executor() const { return exec_; }
  const cpu::DecodedCache& decoded_cache() const { return host_cache_; }
  const fault::FaultInjector& injector() const { return injector_; }

 private:
  const index::InvertedIndex* idx_;
  sim::HardwareSpec hw_;
  HybridOptions opt_;
  Scheduler sched_;
  fault::FaultInjector injector_;  ///< before exec_: executors point at it
  gpu::GpuExecutor exec_;
  cpu::DecodedCache host_cache_;
  cpu::SvsStepper svs_;
  cpu::Bm25Scorer scorer_;
};

}  // namespace griffin::core
