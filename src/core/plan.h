// The physical-plan layer (DESIGN.md §8). A query is executed as a sequence
// of typed steps — decode, intersect, transfer, rank — emitted one at a time
// by the Planner (core/planner.h) and run by the StepExecutor
// (core/executor.h). The CPU-only, GPU-only and hybrid engines are the same
// planner/executor pair under different scheduler policies (kAlwaysCpu /
// kAlwaysGpu / the paper's intra-query rule), so scheduling experiments,
// cache tiers and metrics are wired up exactly once.
//
// Every executed step appends a StepRecord (core/query.h) to
// QueryResult::trace: the placement, the StepShape the scheduler saw, and
// the per-stage duration deltas the step charged. Traces are the
// introspection surface — the scheduling ablation and the crossover bench
// read them instead of poking at engine internals, and TraceSummary
// aggregates them through the shard node, the cluster broker and the
// service simulation.
#pragma once

#include <cstdint>
#include <variant>

#include "core/query.h"

namespace griffin::core {

/// Which way a TransferStep moves the intermediate result over PCIe.
enum class TransferDirection : std::uint8_t { kHostToDevice, kDeviceToHost };

/// Decode one full posting list as the query's intermediate result
/// (single-term queries only; multi-term queries decode inside intersects).
struct DecodeStep {
  index::TermId term = 0;
  Placement where = Placement::kCpu;
};

/// Intersect the intermediate result (or, for the first pair, the shortest
/// list) with posting list `term` on processor `where`. `shape` is exactly
/// the StepShape the scheduler decided on — recorded so a trace reader can
/// replay the decision (Scheduler::decide(shape) == where).
struct IntersectStep {
  index::TermId term = 0;        ///< the longer list
  index::TermId probe_term = 0;  ///< the shorter list (first_pair only)
  bool first_pair = false;
  Placement where = Placement::kCpu;
  /// where == kSplit only (DESIGN.md §15): the GPU's share of the probe
  /// side. The executor partitions the sorted probes at index
  /// round((1-alpha)*n) — the low docID range runs the CPU's SvS stepper,
  /// the high range the GPU's binary-search kernels, concurrently; the
  /// concatenated partials are bit-identical to the unsplit result.
  double alpha = 0.0;
  StepShape shape;
};

/// Move the intermediate result across the PCIe link. `migration` marks
/// mid-query processor hand-offs (counted in QueryMetrics::migrations); the
/// final device->host drain before ranking is not a migration.
struct TransferStep {
  TransferDirection direction = TransferDirection::kDeviceToHost;
  bool migration = false;
};

/// BM25-score the intermediate result and select the top k (always CPU,
/// paper Figure 7).
struct RankStep {};

/// Start the H2D upload of a later intersect's longer list on the copy
/// engine, without waiting for it: on the asynchronous timeline
/// (DESIGN.md §10) the transfer overlaps the preceding step's kernels. The
/// planner stages one whenever it places an intersect on the GPU and the
/// following term's list is neither device-resident nor oversized; the
/// executor drops unconsumed prefetches when the plan migrates to the CPU.
struct PrefetchStep {
  index::TermId term = 0;
};

/// Decode a later intersect's longer list on the host, into the decoded
/// cache, while the GPU runs the current step (inter-step pipelining,
/// DESIGN.md §15): the planner stages one when the current intersect keeps
/// the device busy, the *next* term is predicted to be intersected on the
/// CPU, and the decode is short enough to hide under the device work. Like
/// kPrefetch it never advances the plan frontier; the host core serializes
/// it before later CPU ops (one core), which is exactly the idle window it
/// fills. Never changes results.
struct HostDecodeStep {
  index::TermId term = 0;
};

using PlanStep = std::variant<DecodeStep, IntersectStep, TransferStep,
                              RankStep, PrefetchStep, HostDecodeStep>;

}  // namespace griffin::core
