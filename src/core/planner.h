// The incremental query planner (DESIGN.md §8). Wraps the Scheduler plus
// the two cache-residency probes and emits the next physical step
// (core/plan.h) from the current intermediate-result state — the planner is
// where "which processor runs the next intersection" (paper §3.2) lives,
// and nowhere else. The executor (core/executor.h) feeds the observed
// intermediate size and location back in after every step, so plans react
// to the actual selectivity of the query, exactly as the monolithic engine
// loops used to.
//
// State machine (DESIGN.md §8 has the diagram):
//
//   Start ── 1 term ──> Decode ─────────────────────────┐
//     │                                                 v
//     └─ first pair ─> Intersect ─┬─> [Transfer] ─> Intersect ... ─┐
//                                 │   (placement flip)             │
//                                 └────── result empty ────────────┤
//                                                                  v
//                               [Transfer D2H if on GPU] ──> Rank ─> done
//
// A mid-query placement flip emits the Transfer first and holds the decided
// Intersect pending — the decision is made once per step, before the
// migration, never re-evaluated after it (re-deciding with the new location
// could flip back and oscillate).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/plan.h"
#include "core/query.h"
#include "core/scheduler.h"

namespace griffin::core {

/// Stat-free cache-residency probes feeding StepShape's residency bits: the
/// device-resident compressed-list cache (gpu/list_cache.h) and the host
/// decoded-postings cache (cpu/decoded_cache.h). StepExecutor implements
/// this over whichever backends it holds; absent backends report false,
/// which reproduces the cold-cache (and cache-less) decisions exactly.
class ResidencyProbe {
 public:
  virtual ~ResidencyProbe() = default;
  virtual bool device_resident(index::TermId t) const = 0;
  virtual bool host_decoded(index::TermId t) const = 0;
  /// Term has an in-flight (or landed) kPrefetch upload this query
  /// (DESIGN.md §10); fills StepShape::longer_prefetched.
  virtual bool prefetched(index::TermId /*t*/) const { return false; }
};

class Planner {
 public:
  Planner(const index::InvertedIndex& idx, const Scheduler& sched,
          const ResidencyProbe& probe)
      : idx_(&idx), sched_(&sched), probe_(&probe) {}

  /// Starts planning a query: orders its terms shortest-list-first (SvS,
  /// Culpepper & Moffat [11]) and resets the state machine.
  void begin(const Query& q);

  /// Emits the next step given the executed plan's current state: the
  /// intermediate result's size and location (nullopt before any step ran).
  /// Returns nullopt when the plan is complete (after RankStep).
  std::optional<PlanStep> next(std::uint64_t intermediate_count,
                               std::optional<Placement> location);

  /// Degraded execution after an injected GPU device fault (DESIGN.md §11):
  /// `step` is the GPU compute step the executor abandoned. The state
  /// machine rewinds so the same logical step is re-emitted — and every
  /// placement decision from here on is forced to the CPU, which reuses the
  /// existing migration path to drain the (intact) device intermediate and
  /// finish the query host-side. Results stay bit-identical to the
  /// fault-free run; only the timing carries the wasted device charge.
  void degrade_to_cpu(const PlanStep& step);

  /// Rung 3 of the OOM degradation ladder (DESIGN.md §16): the executor
  /// abandoned `step` because its device allocation failed with nothing
  /// left to evict or unfuse. Rewinds like degrade_to_cpu but pins only the
  /// re-emitted decision to the CPU — memory pressure is transient, so
  /// later steps decide freely and may return to the device. A faulted H2D
  /// migration flips its pending intersect host-side in place (the
  /// intermediate never left the host, so no step is re-emitted at all).
  void degrade_step_to_cpu(const PlanStep& step);

  /// Pins every remaining decision to the CPU without rewinding — the
  /// split-leg fault path (DESIGN.md §16): the step completed (CPU leg +
  /// host-side redo of the GPU range), but the device is no longer trusted
  /// for this query. Also drops staged prefetch/work-ahead bets.
  void force_cpu();

  /// All placement decisions are pinned to the CPU for the rest of this
  /// query (set by degrade_to_cpu/force_cpu, cleared by begin).
  bool forced_cpu() const { return forced_cpu_; }

  /// The StepShape the scheduler would decide on for intersecting an
  /// intermediate of `shorter` docs at `location` with `longer_term` — the
  /// probes fill the residency bits. Public so trace consumers (tests, the
  /// scheduling ablation) can rebuild shapes the way the planner does.
  StepShape shape_for(std::uint64_t shorter, index::TermId longer_term,
                      std::optional<Placement> location) const;

  const Scheduler& scheduler() const { return *sched_; }

 private:
  enum class Stage : std::uint8_t {
    kStart,
    kIntersect,         ///< choose + emit the next intersect (or finish)
    kPendingIntersect,  ///< a transfer was emitted; its intersect is queued
    kDrain,             ///< emit the final D2H transfer if still on GPU
    kRank,
    kDone,
  };

  /// Called right after an intersect step is decided: if the *following*
  /// term's list is worth moving early, stage a PrefetchStep to emit on the
  /// next call. Device-placed (kGpu/kSplit) steps prefetch as before — the
  /// copy engine rides under their kernels; CPU-placed steps prefetch only
  /// under pipeline_idle and only when the next step is predicted to
  /// consume the list on the device (DESIGN.md §15). The decision uses only
  /// state known when the intersect is issued — a real host would enqueue
  /// the async copy then, before the kernels' outcome exists — so a staged
  /// prefetch is emitted even if the intersect empties the intermediate.
  void maybe_stage_prefetch(const IntersectStep& step);

  /// Inter-step pipelining, host side (DESIGN.md §15): after a kGpu
  /// intersect is decided the host core is idle, so if the *following*
  /// step is predicted to run on the CPU and the next term's host decode
  /// fits under the device step's estimated time, stage a HostDecodeStep.
  /// Split steps keep the host busy with their own CPU leg and never
  /// work-ahead.
  void maybe_stage_host_decode(const IntersectStep& step);

  const index::InvertedIndex* idx_;
  const Scheduler* sched_;
  const ResidencyProbe* probe_;
  std::vector<index::TermId> terms_;  ///< shortest-first
  std::size_t next_term_ = 0;
  Stage stage_ = Stage::kDone;
  IntersectStep pending_;  ///< valid in kPendingIntersect
  std::optional<index::TermId> staged_prefetch_;
  std::optional<index::TermId> staged_host_decode_;
  bool forced_cpu_ = false;  ///< degraded: every decision pinned to the CPU
  /// One-shot CPU pin (degrade_step_to_cpu): consumed by the next
  /// decode/intersect decision, then placements are free again.
  bool force_next_cpu_ = false;
};

}  // namespace griffin::core
