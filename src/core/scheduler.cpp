#include "core/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "cpu/simd_cost.h"
#include "cpu/svs_step.h"
#include "util/bits.h"

namespace griffin::core {

namespace {

/// GPU decode penalty per posting (ns) on top of the memory-traffic term:
/// zero for the codecs with fully lane-parallel kernels, small for
/// PForDelta's serial exception walk, and large for the codecs gpu/decode.h
/// can only run on lane 0 (the rest of the warp idles) or that chase
/// grammar pointers divergently (Re-Pair).
double gpu_decode_penalty_ns(codec::Scheme s) {
  switch (s) {
    case codec::Scheme::kEliasFano:
    case codec::Scheme::kBitPack128:
      return 0.0;
    case codec::Scheme::kPForDelta:
      return 0.05;
    case codec::Scheme::kRePair:
      return 1.2;
    case codec::Scheme::kSimple16:
      return 0.8;
    case codec::Scheme::kVarByte:
      return 1.5;
  }
  return 0.0;
}

/// The split alpha grid: 1/32 granularity, endpoints excluded (degenerate
/// splits are the single-processor decisions). Coarse enough to stay cheap,
/// fine enough that max(two near-linear legs) sits within a few percent of
/// its continuous optimum.
constexpr int kAlphaGridSteps = 32;

}  // namespace

Placement Scheduler::cost_decide(const StepShape& s, bool allow_split) const {
  const sim::Duration t_cpu = estimate_cpu(s);
  const sim::Duration t_gpu = estimate_gpu(s);
  const sim::Duration best = sim::min(t_cpu, t_gpu);
  if (allow_split && opt_.split && s.shorter >= opt_.split_min_probe) {
    const auto [alpha, t_split] = best_split(s);
    (void)alpha;
    const double gate =
        (1.0 - opt_.split_min_gain) * static_cast<double>(best.ps());
    if (static_cast<double>(t_split.ps()) < gate) return Placement::kSplit;
  }
  return t_gpu < t_cpu ? Placement::kGpu : Placement::kCpu;
}

Placement Scheduler::decide(const StepShape& s) const {
  switch (opt_.policy) {
    case SchedulerPolicy::kAlwaysCpu:
      return Placement::kCpu;
    case SchedulerPolicy::kAlwaysGpu:
      return Placement::kGpu;
    case SchedulerPolicy::kAlwaysSplit:
      return s.shorter == 0 ? Placement::kCpu : Placement::kSplit;
    case SchedulerPolicy::kRatioThreshold: {
      if (s.shorter == 0) return Placement::kCpu;  // nothing left to do
      const double ratio = static_cast<double>(s.longer) /
                           static_cast<double>(s.shorter);
      // Residency-adjusted crossover: a device-resident long list removes
      // the GPU's transfer cost (raises λ), a host-decoded one removes the
      // CPU's decode cost (lowers λ). Cold caches leave λ at the paper's.
      double threshold = opt_.ratio_threshold;
      // A vectorized CPU cheapens the skip path the same way at every λ, so
      // the λ=128 balance point slides down by the SIMD-to-scalar cost
      // ratio (1.0 for a scalar CpuSpec).
      if (opt_.simd_aware) threshold *= cpu::simd::crossover_scale(hw_.cpu);
      if (opt_.residency_aware) {
        if (s.longer_device_resident) {
          threshold *= opt_.resident_ratio_boost;
        } else if (s.longer_prefetched) {
          // The H2D is already paid (and hidden on the copy engine), so the
          // GPU side looks like the resident case.
          threshold *= opt_.prefetch_ratio_boost;
        }
        if (s.longer_host_decoded) threshold *= opt_.host_decoded_ratio_scale;
      }
      // Co-execution (DESIGN.md §15): near the crossover both processors
      // finish in comparable time, which is exactly where splitting one
      // step across both beats either alone. The binary rule generalizes
      // into the band [threshold/split_band, threshold*split_band): inside
      // it the decision falls through to the three-way cost comparison;
      // outside it one processor dominates and the ratio rule stands.
      if (opt_.split && s.shorter >= opt_.split_min_probe &&
          ratio >= threshold / opt_.split_band &&
          ratio < threshold * opt_.split_band) {
        return cost_decide(s, /*allow_split=*/true);
      }
      return ratio < threshold ? Placement::kGpu : Placement::kCpu;
    }
    case SchedulerPolicy::kCostModel:
      if (s.shorter == 0) return Placement::kCpu;
      return cost_decide(s, /*allow_split=*/true);
  }
  return Placement::kCpu;
}

double Scheduler::split_alpha(const StepShape& s) const {
  if (opt_.forced_split_alpha >= 0.0) {
    return std::min(opt_.forced_split_alpha, 1.0);
  }
  return best_split(s).first;
}

std::pair<double, sim::Duration> Scheduler::best_split(
    const StepShape& s) const {
  if (opt_.forced_split_alpha >= 0.0) {
    const double a = std::min(opt_.forced_split_alpha, 1.0);
    return {a, estimate_split(s, a)};
  }
  double best_a = 1.0 / kAlphaGridSteps;
  sim::Duration best_t = estimate_split(s, best_a);
  for (int i = 2; i < kAlphaGridSteps; ++i) {
    const double a = static_cast<double>(i) / kAlphaGridSteps;
    const sim::Duration t = estimate_split(s, a);
    if (t < best_t) {
      best_t = t;
      best_a = a;
    }
  }
  return {best_a, best_t};
}

sim::Duration Scheduler::estimate_cpu(const StepShape& s) const {
  // The estimate prices each term through cpu/simd_cost.h's effective_*
  // helpers — the same closed forms the engine charges through — so the
  // decision model and the charges can never disagree. With the vector
  // unit off (or simd_aware disabled) every helper returns the scalar
  // CpuSpec knob and this reduces to the pre-SIMD estimate exactly.
  sim::CpuSpec c = hw_.cpu;
  if (!opt_.simd_aware) c.vector.enabled = false;
  const double ns = static_cast<double>(s.shorter);
  const double nl = static_cast<double>(s.longer);
  double cycles;
  if (s.shorter == 0) return sim::Duration();
  const double ratio = nl / ns;
  const bool host_decoded = opt_.residency_aware && s.longer_host_decoded;
  if (ratio >= cpu::kDefaultSkipRatio) {
    // Skip-pointer probing: log-time skip search per probe plus a full
    // block decode per distinct touched block (the default, paper-faithful
    // CPU baseline — see cpu/intersect.h on ef_random_access). A
    // host-decoded target skips the block decodes: probes binary-search the
    // cached decoded array directly.
    const double probes = ns;
    const double steps = std::log2(std::max(nl / 128.0, 2.0)) + 7.0;
    const double nblocks = nl / 128.0;
    const double touched =
        nblocks * (1.0 - std::exp(-probes / std::max(nblocks, 1.0)));
    cycles = probes * cpu::simd::effective_probe_search_cycles(c, steps);
    if (!host_decoded) {
      cycles += touched * 128.0 *
                cpu::simd::effective_decode_cycles(c, s.longer_scheme);
    }
  } else {
    // Full decode + merge; a host-decoded long list merges without decode.
    cycles = (ns + nl) * cpu::simd::effective_merge_step_cycles(c);
    if (!host_decoded) {
      cycles += nl * cpu::simd::effective_decode_cycles(c, s.longer_scheme);
    }
  }
  sim::Duration t = sim::Duration::from_cycles(cycles, c.clock_ghz);
  // Migration: intermediate currently on the GPU must come back first.
  if (s.current_location == Placement::kGpu) {
    t += sim::Duration::from_us(hw_.pcie.latency_us) +
         sim::Duration::from_ns(ns * 4.0 / hw_.pcie.bandwidth_gbps);
  }
  return t;
}

sim::Duration Scheduler::selective_gpu_time(double ns,
                                            const StepShape& s) const {
  const auto& g = hw_.gpu;
  const double nl = static_cast<double>(s.longer);
  // Roughly five launches per step (search + decode + search + compact).
  sim::Duration t = sim::Duration::from_us(5.0 * g.kernel_launch_us);
  if (!opt_.assume_pooled_memory) {
    t += sim::Duration::from_us(4.0 * hw_.pcie.alloc_us);
  }
  const bool resident = opt_.residency_aware &&
                        (s.longer_device_resident || s.longer_prefetched);
  // Only candidate blocks move and decode; the transfer term uses the
  // list's actual compressed density. The planner always fills
  // longer_bytes from the list's real compressed size — a guessed density
  // here would silently skew every crossover downstream.
  const double blocks = std::min(ns, nl / 128.0);
  assert(s.longer == 0 || s.longer_bytes > 0);
  const double bpe = static_cast<double>(s.longer_bytes) / std::max(nl, 1.0);
  if (!resident) {
    t += sim::Duration::from_us(hw_.pcie.latency_us) +
         sim::Duration::from_ns(blocks * 128.0 * bpe /
                                hw_.pcie.bandwidth_gbps);
  }
  t += sim::Duration::from_ns(ns * std::log2(std::max(nl / 128.0, 2.0)) *
                              128.0 / g.mem_bandwidth_gbps);
  t += sim::Duration::from_ns(blocks * 128.0 *
                              gpu_decode_penalty_ns(s.longer_scheme));
  return t;
}

sim::Duration Scheduler::estimate_gpu(const StepShape& s) const {
  const auto& g = hw_.gpu;
  const double ns = static_cast<double>(s.shorter);
  const double nl = static_cast<double>(s.longer);
  if (s.shorter == 0) return sim::Duration();
  const double ratio = nl / ns;

  sim::Duration t;
  if (ratio < 128.0) {
    // Roughly five launches per step (decode + partition + merge + compact).
    t = sim::Duration::from_us(5.0 * g.kernel_launch_us);
    if (!opt_.assume_pooled_memory) {
      t += sim::Duration::from_us(4.0 * hw_.pcie.alloc_us);
    }
    // A device-resident long list (gpu/list_cache.h) skips the PCIe
    // transfer terms entirely — §2.3's overhead is exactly what the cache
    // removes. A prefetched one (DESIGN.md §10) already paid them on the
    // copy engine.
    const bool resident = opt_.residency_aware &&
                          (s.longer_device_resident || s.longer_prefetched);
    // Transfer the compressed long list, decode everything, merge. With
    // double buffering the H2D streams under the decode, so the two terms
    // cost their max, not their sum.
    sim::Duration xfer;
    if (!resident) {
      xfer = sim::Duration::from_us(hw_.pcie.latency_us) +
             sim::Duration::from_ns(static_cast<double>(s.longer_bytes) /
                                    hw_.pcie.bandwidth_gbps);
    }
    const double touched_bytes = (ns + nl) * 12.0;  // decode + merge traffic
    const sim::Duration mem =
        sim::Duration::from_ns(touched_bytes / g.mem_bandwidth_gbps);
    t += opt_.overlap_aware ? sim::max(xfer, mem) : xfer + mem;
    t += sim::Duration::from_ns(nl * gpu_decode_penalty_ns(s.longer_scheme));
  } else {
    t = selective_gpu_time(ns, s);
  }
  // Migration: intermediate currently on the CPU must be shipped over.
  if (s.current_location == Placement::kCpu) {
    t += sim::Duration::from_us(hw_.pcie.latency_us) +
         sim::Duration::from_ns(ns * 4.0 / hw_.pcie.bandwidth_gbps);
  }
  return t;
}

sim::Duration Scheduler::estimate_split(const StepShape& s,
                                        double alpha) const {
  if (s.shorter == 0) return sim::Duration();
  alpha = std::clamp(alpha, 0.0, 1.0);
  const auto n_gpu = static_cast<std::uint64_t>(
      std::llround(alpha * static_cast<double>(s.shorter)));
  const std::uint64_t n_cpu = s.shorter - std::min(n_gpu, s.shorter);
  const auto probe_xfer = [&](std::uint64_t n) {
    return sim::Duration::from_us(hw_.pcie.latency_us) +
           sim::Duration::from_ns(static_cast<double>(n) * 4.0 /
                                  hw_.pcie.bandwidth_gbps);
  };

  // CPU leg: the (1-alpha) low range through the same closed form as a
  // whole CPU step of that size — the leg's own ratio picks its skip/merge
  // regime, matching SvsStepper::partial_step. Only the leg's own share of
  // the intermediate migrates back when it lives on the device.
  sim::Duration cpu_leg;
  if (n_cpu > 0) {
    StepShape cs = s;
    cs.shorter = n_cpu;
    cs.current_location = Placement::kCpu;  // migration priced here, not there
    cpu_leg = estimate_cpu(cs);
    if (s.current_location == Placement::kGpu) cpu_leg += probe_xfer(n_cpu);
  }

  // GPU leg: the alpha high range always runs the selective binary-search
  // path (the only kernel the split executes), pays the probe H2D when the
  // probes start host-side, and always pays the D2H of its partial (bounded
  // by the probe count — every match is a probe).
  sim::Duration gpu_leg;
  if (n_gpu > 0) {
    StepShape gs = s;
    gs.shorter = n_gpu;
    gs.current_location = Placement::kGpu;
    gpu_leg = selective_gpu_time(static_cast<double>(n_gpu), gs);
    if (s.current_location != Placement::kGpu) gpu_leg += probe_xfer(n_gpu);
    gpu_leg += probe_xfer(n_gpu);
  }

  // The legs run concurrently on the timeline: the step costs their max.
  return sim::max(cpu_leg, gpu_leg);
}

sim::Duration Scheduler::estimate_host_decode(std::uint64_t n,
                                              codec::Scheme sc) const {
  // Mirrors decode_all's full charge, not just the per-element decode: the
  // materialization surcharge dominates a full-list decode (24 scalar
  // cycles/element vs ~2 for the decode itself), and the output writes hit
  // the memory-bandwidth roofline. Underpricing here would stage decodes
  // that blow past the device step they were meant to hide under.
  sim::CpuSpec c = hw_.cpu;
  if (!opt_.simd_aware) c.vector.enabled = false;
  const double cycles =
      static_cast<double>(n) * (cpu::simd::effective_decode_cycles(c, sc) +
                                cpu::simd::effective_materialize_cycles(c));
  const sim::Duration compute = sim::Duration::from_cycles(cycles, c.clock_ghz);
  const sim::Duration bw = sim::Duration::from_ns(
      static_cast<double>(n) * 4.0 / c.mem_bandwidth_gbps);
  return sim::max(compute, bw);
}

}  // namespace griffin::core
