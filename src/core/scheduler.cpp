#include "core/scheduler.h"

#include <cmath>

#include "cpu/simd_cost.h"
#include "util/bits.h"

namespace griffin::core {

namespace {

/// GPU decode penalty per posting (ns) on top of the memory-traffic term:
/// zero for the codecs with fully lane-parallel kernels, small for
/// PForDelta's serial exception walk, and large for the codecs gpu/decode.h
/// can only run on lane 0 (the rest of the warp idles) or that chase
/// grammar pointers divergently (Re-Pair).
double gpu_decode_penalty_ns(codec::Scheme s) {
  switch (s) {
    case codec::Scheme::kEliasFano:
    case codec::Scheme::kBitPack128:
      return 0.0;
    case codec::Scheme::kPForDelta:
      return 0.05;
    case codec::Scheme::kRePair:
      return 1.2;
    case codec::Scheme::kSimple16:
      return 0.8;
    case codec::Scheme::kVarByte:
      return 1.5;
  }
  return 0.0;
}

}  // namespace

Placement Scheduler::decide(const StepShape& s) const {
  switch (opt_.policy) {
    case SchedulerPolicy::kAlwaysCpu:
      return Placement::kCpu;
    case SchedulerPolicy::kAlwaysGpu:
      return Placement::kGpu;
    case SchedulerPolicy::kRatioThreshold: {
      if (s.shorter == 0) return Placement::kCpu;  // nothing left to do
      const double ratio = static_cast<double>(s.longer) /
                           static_cast<double>(s.shorter);
      // Residency-adjusted crossover: a device-resident long list removes
      // the GPU's transfer cost (raises λ), a host-decoded one removes the
      // CPU's decode cost (lowers λ). Cold caches leave λ at the paper's.
      double threshold = opt_.ratio_threshold;
      // A vectorized CPU cheapens the skip path the same way at every λ, so
      // the λ=128 balance point slides down by the SIMD-to-scalar cost
      // ratio (1.0 for a scalar CpuSpec).
      if (opt_.simd_aware) threshold *= cpu::simd::crossover_scale(hw_.cpu);
      if (opt_.residency_aware) {
        if (s.longer_device_resident) {
          threshold *= opt_.resident_ratio_boost;
        } else if (s.longer_prefetched) {
          // The H2D is already paid (and hidden on the copy engine), so the
          // GPU side looks like the resident case.
          threshold *= opt_.prefetch_ratio_boost;
        }
        if (s.longer_host_decoded) threshold *= opt_.host_decoded_ratio_scale;
      }
      return ratio < threshold ? Placement::kGpu : Placement::kCpu;
    }
    case SchedulerPolicy::kCostModel:
      return estimate_gpu(s) < estimate_cpu(s) ? Placement::kGpu
                                               : Placement::kCpu;
  }
  return Placement::kCpu;
}

sim::Duration Scheduler::estimate_cpu(const StepShape& s) const {
  // The estimate prices each term through cpu/simd_cost.h's effective_*
  // helpers — the same closed forms the engine charges through — so the
  // decision model and the charges can never disagree. With the vector
  // unit off (or simd_aware disabled) every helper returns the scalar
  // CpuSpec knob and this reduces to the pre-SIMD estimate exactly.
  sim::CpuSpec c = hw_.cpu;
  if (!opt_.simd_aware) c.vector.enabled = false;
  const double ns = static_cast<double>(s.shorter);
  const double nl = static_cast<double>(s.longer);
  double cycles;
  if (s.shorter == 0) return sim::Duration();
  const double ratio = nl / ns;
  const bool host_decoded = opt_.residency_aware && s.longer_host_decoded;
  if (ratio >= 32.0) {
    // Skip-pointer probing: log-time skip search per probe plus a full
    // block decode per distinct touched block (the default, paper-faithful
    // CPU baseline — see cpu/intersect.h on ef_random_access). A
    // host-decoded target skips the block decodes: probes binary-search the
    // cached decoded array directly.
    const double probes = ns;
    const double steps = std::log2(std::max(nl / 128.0, 2.0)) + 7.0;
    const double nblocks = nl / 128.0;
    const double touched =
        nblocks * (1.0 - std::exp(-probes / std::max(nblocks, 1.0)));
    cycles = probes * cpu::simd::effective_probe_search_cycles(c, steps);
    if (!host_decoded) {
      cycles += touched * 128.0 *
                cpu::simd::effective_decode_cycles(c, s.longer_scheme);
    }
  } else {
    // Full decode + merge; a host-decoded long list merges without decode.
    cycles = (ns + nl) * cpu::simd::effective_merge_step_cycles(c);
    if (!host_decoded) {
      cycles += nl * cpu::simd::effective_decode_cycles(c, s.longer_scheme);
    }
  }
  sim::Duration t = sim::Duration::from_cycles(cycles, c.clock_ghz);
  // Migration: intermediate currently on the GPU must come back first.
  if (s.current_location == Placement::kGpu) {
    t += sim::Duration::from_us(hw_.pcie.latency_us) +
         sim::Duration::from_ns(ns * 4.0 / hw_.pcie.bandwidth_gbps);
  }
  return t;
}

sim::Duration Scheduler::estimate_gpu(const StepShape& s) const {
  const auto& g = hw_.gpu;
  const double ns = static_cast<double>(s.shorter);
  const double nl = static_cast<double>(s.longer);
  if (s.shorter == 0) return sim::Duration();
  const double ratio = nl / ns;

  // Roughly five launches per step (decode + partition + merge + compact).
  sim::Duration t = sim::Duration::from_us(5.0 * g.kernel_launch_us);
  if (!opt_.assume_pooled_memory) {
    t += sim::Duration::from_us(4.0 * hw_.pcie.alloc_us);
  }
  // A device-resident long list (gpu/list_cache.h) skips the PCIe transfer
  // terms entirely — §2.3's overhead is exactly what the cache removes. A
  // prefetched one (DESIGN.md §10) already paid them on the copy engine.
  const bool resident = opt_.residency_aware &&
                        (s.longer_device_resident || s.longer_prefetched);
  if (ratio < 128.0) {
    // Transfer the compressed long list, decode everything, merge. With
    // double buffering the H2D streams under the decode, so the two terms
    // cost their max, not their sum.
    sim::Duration xfer;
    if (!resident) {
      xfer = sim::Duration::from_us(hw_.pcie.latency_us) +
             sim::Duration::from_ns(static_cast<double>(s.longer_bytes) /
                                    hw_.pcie.bandwidth_gbps);
    }
    const double touched_bytes = (ns + nl) * 12.0;  // decode + merge traffic
    const sim::Duration mem =
        sim::Duration::from_ns(touched_bytes / g.mem_bandwidth_gbps);
    t += opt_.overlap_aware ? sim::max(xfer, mem) : xfer + mem;
    t += sim::Duration::from_ns(nl * gpu_decode_penalty_ns(s.longer_scheme));
  } else {
    // Only candidate blocks move and decode; the transfer term uses the
    // list's actual compressed density, not a fixed bytes-per-posting
    // guess (falls back to ~1 B/elem when the planner left bytes unset).
    const double blocks = std::min(ns, nl / 128.0);
    const double bpe =
        s.longer_bytes > 0 ? static_cast<double>(s.longer_bytes) / nl : 1.0;
    if (!resident) {
      t += sim::Duration::from_us(hw_.pcie.latency_us) +
           sim::Duration::from_ns(blocks * 128.0 * bpe /
                                  hw_.pcie.bandwidth_gbps);
    }
    t += sim::Duration::from_ns(ns * std::log2(std::max(nl / 128.0, 2.0)) *
                                128.0 / g.mem_bandwidth_gbps);
    t += sim::Duration::from_ns(blocks * 128.0 *
                                gpu_decode_penalty_ns(s.longer_scheme));
  }
  // Migration: intermediate currently on the CPU must be shipped over.
  if (s.current_location == Placement::kCpu) {
    t += sim::Duration::from_us(hw_.pcie.latency_us) +
         sim::Duration::from_ns(ns * 4.0 / hw_.pcie.bandwidth_gbps);
  }
  return t;
}

}  // namespace griffin::core
