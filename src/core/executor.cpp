#include "core/executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace griffin::core {

namespace {
/// The GPU's probe count for a split at share `alpha` — the same rounding
/// the scheduler's estimate_split uses, so the executed partition matches
/// the priced one.
std::uint64_t split_share(double alpha, std::uint64_t n) {
  const auto g = static_cast<std::uint64_t>(
      std::llround(std::clamp(alpha, 0.0, 1.0) * static_cast<double>(n)));
  return std::min(g, n);
}
}  // namespace

void StepExecutor::begin_query(const Query& q) {
  host_current_.clear();
  loc_.reset();
  if (tl_ == &own_tl_) {
    // Private timeline: the query owns the device, wipe and restart.
    tl_->reset();
    scope_ = 0;
  } else {
    // Shared timeline: the device keeps running; this query gets its own
    // accounting scope and streams opened at its admission time.
    scope_ = tl_->scope();
  }
  tl_->set_scope(scope_);
  cpu_stream_ = tl_->stream(release_);
  frontier_ = sim::Timeline::Event{release_};
  query_id_ = q.id;
  step_index_ = 0;
  batch_group_ = 0;
  if (gpu_ != nullptr) gpu_->begin_query(tl_, q.id, release_);
}

void StepExecutor::finish_query(QueryMetrics& m) {
  tl_->set_scope(scope_);
  if (gpu_ != nullptr) gpu_->finish_query(m);  // drops prefetches, buffers
  // The serial charges and the scope's timeline ops are the same set of
  // durations: any divergence means a charge bypassed the timeline.
  const auto& sc = tl_->scope_stats(scope_);
  assert(sc.serial == m.total);
  // The query's latency is its span on the (possibly shared) timeline:
  // from its admission to its last op's completion. On a private timeline
  // release is zero and this is exactly the critical path. Under
  // contention the span can exceed the serial sum — queueing behind other
  // tenants' ops — so overlap.saved may be negative there.
  const sim::Duration span = sim::max(sc.finish, release_) - release_;
  m.overlap.saved = sc.serial - span;
  m.total = span;
  m.overlap.cpu_busy = sc.busy[static_cast<std::size_t>(sim::Resource::kCpu)];
  m.overlap.gpu_busy =
      sc.busy[static_cast<std::size_t>(sim::Resource::kGpuCompute)];
  m.overlap.h2d_busy =
      sc.busy[static_cast<std::size_t>(sim::Resource::kCopyH2D)];
  m.overlap.d2h_busy =
      sc.busy[static_cast<std::size_t>(sim::Resource::kCopyD2H)];
}

void StepExecutor::set_batch(std::uint32_t size, std::uint64_t group) {
  batch_group_ = size > 1 ? group : 0;
  if (gpu_ != nullptr) gpu_->set_batch(size);
}

std::uint64_t StepExecutor::intermediate_count() const {
  if (loc_ == Placement::kGpu) return gpu_->intermediate_count();
  return host_current_.size();
}

void StepExecutor::dispatch(const PlanStep& step, const Query& q,
                            QueryResult& res) {
  QueryMetrics& m = res.metrics;
  if (const auto* d = std::get_if<DecodeStep>(&step)) {
    if (d->where == Placement::kGpu) {
      assert(gpu_ != nullptr);
      gpu_->load_single(d->term, m);
      loc_ = Placement::kGpu;
    } else {
      assert(svs_ != nullptr);
      svs_->decode_single(d->term, host_current_, m);
      loc_ = Placement::kCpu;
    }
    return;
  }
  if (const auto* i = std::get_if<IntersectStep>(&step)) {
    if (i->where == Placement::kSplit) {
      run_split(*i, res);
    } else if (i->where == Placement::kGpu) {
      assert(gpu_ != nullptr);
      if (i->first_pair) {
        gpu_->intersect_first(i->probe_term, i->term, m);
      } else {
        gpu_->intersect_next(i->term, m);
      }
      loc_ = Placement::kGpu;
    } else {
      assert(svs_ != nullptr);
      if (i->first_pair) {
        svs_->first_pair(i->probe_term, i->term, host_current_, m);
      } else {
        svs_->next_step(host_current_, i->term, m);
      }
      loc_ = Placement::kCpu;
    }
    return;
  }
  if (const auto* t = std::get_if<TransferStep>(&step)) {
    assert(gpu_ != nullptr);
    if (t->direction == TransferDirection::kHostToDevice) {
      gpu_->upload_intermediate(host_current_, m);
      loc_ = Placement::kGpu;
    } else {
      host_current_ = gpu_->download_intermediate(m);
      loc_ = Placement::kCpu;
    }
    if (t->migration) ++m.migrations;
    return;
  }
  if (const auto* p = std::get_if<PrefetchStep>(&step)) {
    assert(gpu_ != nullptr);
    gpu_->prefetch(p->term, m);  // intermediate and location unchanged
    return;
  }
  if (const auto* h = std::get_if<HostDecodeStep>(&step)) {
    // Inter-step pipelining (DESIGN.md §15): the host core decodes a later
    // term while the device runs the current step. Recorded on the CPU
    // stream — later CPU ops serialize behind it, which is what makes the
    // work-ahead honest — but waiting on nothing and never advancing the
    // plan frontier: no step *depends* on it, a consumer simply finds the
    // list in the decoded cache.
    assert(svs_ != nullptr);
    const sim::Duration c0 = m.total;
    svs_->decode_ahead(h->term, m);
    tl_->record(cpu_stream_, sim::Resource::kCpu, m.total - c0,
                sim::Timeline::Event{});
    return;
  }
  // RankStep: BM25 + partial_sort on the host. Scoring uses the query's
  // original term order, not the SvS length order: float accumulation order
  // is then a property of the query alone, so a document-partitioned shard
  // (whose local list lengths differ) produces bit-identical scores to the
  // unpartitioned index (cluster/broker.h).
  m.result_count = host_current_.size();
  sim::CpuCostAccumulator rank(rank_spec_);
  scorer_->score(q.terms, host_current_, res.topk, rank);
  cpu::top_k(res.topk, q.k, rank);
  m.add_stage(rank.time(), &m.rank);
  m.simd += rank.simd();
}

sim::Timeline::Event StepExecutor::run_cpu_leg(
    std::span<const codec::DocId> probes, index::TermId t,
    std::vector<codec::DocId>& out, sim::Timeline::Event ready,
    QueryMetrics& m) {
  if (probes.empty()) {
    out.clear();
    return ready;
  }
  const sim::Duration c0 = m.total;
  svs_->partial_step(probes, t, out, m);
  return tl_->record(cpu_stream_, sim::Resource::kCpu, m.total - c0, ready);
}

void StepExecutor::run_split(const IntersectStep& i, QueryResult& res) {
  QueryMetrics& m = res.metrics;
  assert(svs_ != nullptr && gpu_ != nullptr);
  const sim::Timeline::Event entry = frontier_;

  std::vector<codec::DocId> cpu_out;
  std::vector<codec::DocId> gpu_partial;
  sim::Timeline::Event cpu_done = entry;
  sim::Timeline::Event gpu_done = entry;

  if (loc_ == Placement::kGpu) {
    // Device-resident probes: only the CPU leg's low prefix crosses back
    // over PCIe; the kernels search the high suffix in place via the
    // probe_offset. The prefix D2H and the GPU leg run on different
    // resources, so the kernels are chained on the step entry, not on the
    // download — only the CPU leg waits the copy out.
    const std::uint64_t n = gpu_->intermediate_count();
    const std::uint64_t n_gpu = split_share(i.alpha, n);
    const std::uint64_t n_cpu = n - n_gpu;
    gpu_->set_chain(entry);
    sim::Timeline::Event cpu_ready = entry;
    std::vector<codec::DocId> prefix;
    if (n_cpu > 0) {
      prefix = gpu_->download_intermediate_prefix(n_cpu, m);
      cpu_ready = gpu_->chain();
      gpu_->set_chain(entry);
    }
    if (n_gpu > 0) {
      gpu_partial = gpu_->split_intersect_device(i.term, n_cpu, m);
      gpu_done = gpu_->chain();
    } else {
      // Degenerate alpha=0: the prefix download drained everything.
      gpu_->drop_intermediate();
    }
    cpu_done = run_cpu_leg(prefix, i.term, cpu_out, cpu_ready, m);
  } else {
    // Host-resident probes — or the first pair, whose probe list the host
    // decodes first; the device leg then waits on that op like any real
    // data dependency.
    sim::Timeline::Event probe_ready = entry;
    std::vector<codec::DocId> probes_storage;
    if (i.first_pair) {
      const sim::Duration c0 = m.total;
      svs_->materialize_probes(i.probe_term, probes_storage, m);
      probe_ready = tl_->record(cpu_stream_, sim::Resource::kCpu,
                                m.total - c0, entry);
    } else {
      probes_storage.swap(host_current_);
    }
    const std::span<const codec::DocId> probes(probes_storage);
    const std::uint64_t n_gpu = split_share(i.alpha, probes.size());
    const std::uint64_t n_cpu = probes.size() - n_gpu;
    if (n_gpu > 0) {
      gpu_->set_chain(probe_ready);
      gpu_partial =
          gpu_->split_intersect_host(i.term, probes.subspan(n_cpu), m);
      gpu_done = gpu_->chain();
    } else {
      gpu_done = probe_ready;
    }
    cpu_done = run_cpu_leg(probes.first(n_cpu), i.term, cpu_out, probe_ready,
                           m);
  }

  // The ranges are docID-disjoint and each partial is sorted, so the
  // concatenation is exactly the unsplit intersection.
  cpu_out.insert(cpu_out.end(), gpu_partial.begin(), gpu_partial.end());
  host_current_ = std::move(cpu_out);
  loc_ = Placement::kCpu;
  split_done_ = sim::Timeline::join(cpu_done, gpu_done);
  m.placements.push_back(Placement::kSplit);
}

void StepExecutor::abandon_gpu_step(const PlanStep& step, QueryResult& res) {
  QueryMetrics& m = res.metrics;
  StepRecord rec;
  rec.faulted = true;
  rec.query = query_id_;
  rec.placement = Placement::kGpu;
  rec.resource = sim::Resource::kGpuCompute;

  // The affected terms: invalidated in the device cache by the reset (the
  // simulated ECC error retired their pages).
  index::TermId terms[2];
  std::size_t num_terms = 0;
  sim::Duration* stage = &m.intersect;
  if (const auto* d = std::get_if<DecodeStep>(&step)) {
    rec.kind = StepKind::kDecode;
    rec.term = d->term;
    terms[num_terms++] = d->term;
    stage = &m.decode;
  } else {
    const auto& i = std::get<IntersectStep>(step);
    rec.kind = StepKind::kIntersect;
    rec.placement = i.where;  // a faulted kSplit step records as kSplit
    rec.term = i.term;
    rec.shape = i.shape;
    rec.alpha = i.alpha;
    terms[num_terms++] = i.term;
    if (i.first_pair) terms[num_terms++] = i.probe_term;
  }

  const std::size_t ops0 = tl_->num_ops();
  const sim::Duration waste =
      sim::Duration::from_us(injector_->config().gpu_fault_cost_us);
  gpu_->set_chain(frontier_);
  gpu_->charge_fault(waste, stage, m);  // serial charge + compute-stream op
  gpu_->fault_reset(std::span<const index::TermId>(terms, num_terms), m);
  frontier_ = gpu_->chain();
  ++m.faults.gpu_faults;
  m.faults.gpu_wasted += waste;

  rec.duration = waste;
  if (stage == &m.decode) {
    rec.decode = waste;
  } else {
    rec.intersect = waste;
  }
  rec.output_count = intermediate_count();
  if (tl_->num_ops() > ops0) {
    rec.issue = tl_->ops()[ops0].issue;
    rec.start = tl_->ops()[ops0].start;
    rec.end = tl_->ops()[ops0].end;
  } else {
    rec.issue = rec.start = rec.end = frontier_.at;
  }
  assert(tl_->scope_stats(scope_).serial == m.total);
  res.trace.push_back(rec);
}

bool StepExecutor::run(const PlanStep& step, const Query& q,
                       QueryResult& res) {
  // Co-tenant executors share one timeline; re-select this query's scope
  // so the step's ops are charged to it.
  tl_->set_scope(scope_);
  // Pre-dispatch fault check for GPU compute steps (DESIGN.md §11): the
  // fault fires before the step's kernels consume the intermediate, so the
  // device state from the last committed step stays intact and the CPU
  // re-plan can drain it through the normal migration path.
  if (injector_ != nullptr && svs_ != nullptr) {
    bool gpu_compute = false;
    if (const auto* d = std::get_if<DecodeStep>(&step)) {
      gpu_compute = d->where == Placement::kGpu;
    } else if (const auto* i = std::get_if<IntersectStep>(&step)) {
      // A split step's GPU leg is device compute too: the fault fires
      // before either leg consumed anything, so recovery is unchanged.
      gpu_compute = i->where != Placement::kCpu;
    }
    if (gpu_compute &&
        injector_->gpu_step_fault(fault_scope_, query_id_, step_index_)) {
      abandon_gpu_step(step, res);
      ++step_index_;
      return false;
    }
  }
  const QueryMetrics& m = res.metrics;
  StepRecord rec;
  rec.query = query_id_;
  rec.batch_group = batch_group_;
  const sim::Duration total0 = m.total;
  const sim::Duration decode0 = m.decode;
  const sim::Duration intersect0 = m.intersect;
  const sim::Duration transfer0 = m.transfer;
  const sim::Duration rank0 = m.rank;
  const std::uint64_t kernels0 = m.gpu_kernels;
  const sim::SimdCounters simd0 = m.simd;
  const std::size_t ops0 = tl_->num_ops();

  // GPU-dispatched steps record their own timeline ops (ledgers + kernels)
  // chained off the plan frontier; split and host-decode steps manage their
  // own ops inside dispatch; everything else becomes one CPU op.
  bool gpu_step = false;
  bool split_step = false;
  bool host_decode_step = false;
  if (const auto* d = std::get_if<DecodeStep>(&step)) {
    gpu_step = d->where == Placement::kGpu;
  } else if (const auto* i = std::get_if<IntersectStep>(&step)) {
    gpu_step = i->where == Placement::kGpu;
    split_step = i->where == Placement::kSplit;
  } else if (std::holds_alternative<TransferStep>(step) ||
             std::holds_alternative<PrefetchStep>(step)) {
    gpu_step = true;
  } else if (std::holds_alternative<HostDecodeStep>(step)) {
    host_decode_step = true;
  }
  if (gpu_step) gpu_->set_chain(frontier_);

  dispatch(step, q, res);

  if (const auto* d = std::get_if<DecodeStep>(&step)) {
    rec.kind = StepKind::kDecode;
    rec.placement = d->where;
    rec.term = d->term;
    rec.resource = d->where == Placement::kGpu ? sim::Resource::kGpuCompute
                                               : sim::Resource::kCpu;
  } else if (const auto* i = std::get_if<IntersectStep>(&step)) {
    rec.kind = StepKind::kIntersect;
    rec.placement = i->where;
    rec.term = i->term;
    rec.shape = i->shape;
    rec.alpha = i->alpha;
    rec.resource = i->where == Placement::kCpu ? sim::Resource::kCpu
                                               : sim::Resource::kGpuCompute;
  } else if (const auto* t = std::get_if<TransferStep>(&step)) {
    rec.kind = StepKind::kTransfer;
    rec.placement = t->direction == TransferDirection::kHostToDevice
                        ? Placement::kGpu
                        : Placement::kCpu;
    rec.migration = t->migration;
    rec.resource = t->direction == TransferDirection::kHostToDevice
                       ? sim::Resource::kCopyH2D
                       : sim::Resource::kCopyD2H;
  } else if (const auto* p = std::get_if<PrefetchStep>(&step)) {
    rec.kind = StepKind::kPrefetch;
    rec.placement = Placement::kGpu;
    rec.term = p->term;
    rec.resource = sim::Resource::kCopyH2D;
  } else if (const auto* h = std::get_if<HostDecodeStep>(&step)) {
    rec.kind = StepKind::kHostDecode;
    rec.placement = Placement::kCpu;
    rec.term = h->term;
    rec.resource = sim::Resource::kCpu;
  } else {
    rec.kind = StepKind::kRank;
    rec.placement = Placement::kCpu;
    rec.resource = sim::Resource::kCpu;
  }
  rec.output_count = intermediate_count();
  rec.gpu_kernels = m.gpu_kernels - kernels0;
  rec.duration = m.total - total0;
  rec.decode = m.decode - decode0;
  rec.intersect = m.intersect - intersect0;
  rec.transfer = m.transfer - transfer0;
  rec.rank = m.rank - rank0;
  rec.simd = m.simd - simd0;

  if (split_step) {
    // Both legs' completion, joined by run_split.
    frontier_ = split_done_;
  } else if (gpu_step) {
    // Prefetches leave the chain untouched, so the frontier is unchanged
    // for them — later steps don't wait on a prefetch unless they use it.
    frontier_ = gpu_->chain();
  } else if (host_decode_step) {
    // The work-ahead recorded its own unchained CPU op; the plan frontier
    // deliberately does not advance (nothing depends on it).
  } else {
    frontier_ = tl_->record(cpu_stream_, sim::Resource::kCpu, rec.duration,
                            frontier_);
  }

  // Timeline placement of the whole step: first issue to last completion
  // over the ops it recorded (a zero-op step pins all three to the
  // frontier). Co-tenant steps never interleave at op granularity — the
  // DeviceManager steps one lane at a time — so [ops0, end) is this step.
  if (tl_->num_ops() > ops0) {
    const auto& ops = tl_->ops();
    rec.issue = ops[ops0].issue;
    rec.start = ops[ops0].start;
    rec.end = ops[ops0].end;
    for (std::size_t i = ops0 + 1; i < ops.size(); ++i) {
      rec.issue = sim::min(rec.issue, ops[i].issue);
      rec.start = sim::min(rec.start, ops[i].start);
      rec.end = sim::max(rec.end, ops[i].end);
    }
  } else {
    rec.issue = rec.start = rec.end = frontier_.at;
  }
  // Every serial charge must have been mirrored as a timeline op.
  assert(tl_->scope_stats(scope_).serial == m.total);
  res.trace.push_back(rec);
  ++step_index_;
  return true;
}

QueryResult run_plan(Planner& planner, StepExecutor& exec, const Query& q) {
  QueryResult res;
  if (q.terms.empty()) return res;
  exec.begin_query(q);
  planner.begin(q);
  while (const auto step = planner.next(exec.intermediate_count(),
                                        exec.location())) {
    if (!exec.run(*step, q, res)) {
      // An injected device fault abandoned this GPU step: pin the rest of
      // the plan to the CPU and replay from the abandoned step. At most one
      // fault fires per query — every later step is CPU-placed.
      planner.degrade_to_cpu(*step);
    }
  }
  exec.finish_query(res.metrics);
  return res;
}

}  // namespace griffin::core
