#include "core/executor.h"

#include <cassert>

namespace griffin::core {

void StepExecutor::begin_query() {
  host_current_.clear();
  loc_.reset();
  if (gpu_ != nullptr) gpu_->begin_query();
}

void StepExecutor::finish_query() {
  if (gpu_ != nullptr) gpu_->begin_query();  // release device buffers
}

std::uint64_t StepExecutor::intermediate_count() const {
  if (loc_ == Placement::kGpu) return gpu_->intermediate_count();
  return host_current_.size();
}

void StepExecutor::dispatch(const PlanStep& step, const Query& q,
                            QueryResult& res) {
  QueryMetrics& m = res.metrics;
  if (const auto* d = std::get_if<DecodeStep>(&step)) {
    if (d->where == Placement::kGpu) {
      assert(gpu_ != nullptr);
      gpu_->load_single(d->term, m);
      loc_ = Placement::kGpu;
    } else {
      assert(svs_ != nullptr);
      svs_->decode_single(d->term, host_current_, m);
      loc_ = Placement::kCpu;
    }
    return;
  }
  if (const auto* i = std::get_if<IntersectStep>(&step)) {
    if (i->where == Placement::kGpu) {
      assert(gpu_ != nullptr);
      if (i->first_pair) {
        gpu_->intersect_first(i->probe_term, i->term, m);
      } else {
        gpu_->intersect_next(i->term, m);
      }
      loc_ = Placement::kGpu;
    } else {
      assert(svs_ != nullptr);
      if (i->first_pair) {
        svs_->first_pair(i->probe_term, i->term, host_current_, m);
      } else {
        svs_->next_step(host_current_, i->term, m);
      }
      loc_ = Placement::kCpu;
    }
    return;
  }
  if (const auto* t = std::get_if<TransferStep>(&step)) {
    assert(gpu_ != nullptr);
    if (t->direction == TransferDirection::kHostToDevice) {
      gpu_->upload_intermediate(host_current_, m);
      loc_ = Placement::kGpu;
    } else {
      host_current_ = gpu_->download_intermediate(m);
      loc_ = Placement::kCpu;
    }
    if (t->migration) ++m.migrations;
    return;
  }
  // RankStep: BM25 + partial_sort on the host. Scoring uses the query's
  // original term order, not the SvS length order: float accumulation order
  // is then a property of the query alone, so a document-partitioned shard
  // (whose local list lengths differ) produces bit-identical scores to the
  // unpartitioned index (cluster/broker.h).
  m.result_count = host_current_.size();
  sim::CpuCostAccumulator rank(rank_spec_);
  scorer_->score(q.terms, host_current_, res.topk, rank);
  cpu::top_k(res.topk, q.k, rank);
  m.add_stage(rank.time(), &m.rank);
}

void StepExecutor::run(const PlanStep& step, const Query& q,
                       QueryResult& res) {
  const QueryMetrics& m = res.metrics;
  StepRecord rec;
  const sim::Duration total0 = m.total;
  const sim::Duration decode0 = m.decode;
  const sim::Duration intersect0 = m.intersect;
  const sim::Duration transfer0 = m.transfer;
  const sim::Duration rank0 = m.rank;
  const std::uint64_t kernels0 = m.gpu_kernels;

  dispatch(step, q, res);

  if (const auto* d = std::get_if<DecodeStep>(&step)) {
    rec.kind = StepKind::kDecode;
    rec.placement = d->where;
    rec.term = d->term;
  } else if (const auto* i = std::get_if<IntersectStep>(&step)) {
    rec.kind = StepKind::kIntersect;
    rec.placement = i->where;
    rec.term = i->term;
    rec.shape = i->shape;
  } else if (const auto* t = std::get_if<TransferStep>(&step)) {
    rec.kind = StepKind::kTransfer;
    rec.placement = t->direction == TransferDirection::kHostToDevice
                        ? Placement::kGpu
                        : Placement::kCpu;
    rec.migration = t->migration;
  } else {
    rec.kind = StepKind::kRank;
    rec.placement = Placement::kCpu;
  }
  rec.output_count = intermediate_count();
  rec.gpu_kernels = m.gpu_kernels - kernels0;
  rec.duration = m.total - total0;
  rec.decode = m.decode - decode0;
  rec.intersect = m.intersect - intersect0;
  rec.transfer = m.transfer - transfer0;
  rec.rank = m.rank - rank0;
  res.trace.push_back(rec);
}

QueryResult run_plan(Planner& planner, StepExecutor& exec, const Query& q) {
  QueryResult res;
  if (q.terms.empty()) return res;
  exec.begin_query();
  planner.begin(q);
  while (const auto step = planner.next(exec.intermediate_count(),
                                        exec.location())) {
    exec.run(*step, q, res);
  }
  exec.finish_query();
  return res;
}

}  // namespace griffin::core
