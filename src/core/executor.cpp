#include "core/executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace griffin::core {

namespace {
/// The GPU's probe count for a split at share `alpha` — the same rounding
/// the scheduler's estimate_split uses, so the executed partition matches
/// the priced one.
std::uint64_t split_share(double alpha, std::uint64_t n) {
  const auto g = static_cast<std::uint64_t>(
      std::llround(std::clamp(alpha, 0.0, 1.0) * static_cast<double>(n)));
  return std::min(g, n);
}
}  // namespace

void StepExecutor::begin_query(const Query& q) {
  host_current_.clear();
  loc_.reset();
  if (tl_ == &own_tl_) {
    // Private timeline: the query owns the device, wipe and restart.
    tl_->reset();
    scope_ = 0;
  } else {
    // Shared timeline: the device keeps running; this query gets its own
    // accounting scope and streams opened at its admission time.
    scope_ = tl_->scope();
  }
  tl_->set_scope(scope_);
  cpu_stream_ = tl_->stream(release_);
  frontier_ = sim::Timeline::Event{release_};
  query_id_ = q.id;
  step_index_ = 0;
  batch_group_ = 0;
  leg_faulted_ = false;
  if (gpu_ != nullptr) gpu_->begin_query(tl_, q.id, release_);
}

void StepExecutor::finish_query(QueryMetrics& m) {
  tl_->set_scope(scope_);
  if (gpu_ != nullptr) gpu_->finish_query(m);  // drops prefetches, buffers
  // The serial charges and the scope's timeline ops are the same set of
  // durations: any divergence means a charge bypassed the timeline.
  const auto& sc = tl_->scope_stats(scope_);
  assert(sc.serial == m.total);
  // The query's latency is its span on the (possibly shared) timeline:
  // from its admission to its last op's completion. On a private timeline
  // release is zero and this is exactly the critical path. Under
  // contention the span can exceed the serial sum — queueing behind other
  // tenants' ops — so overlap.saved may be negative there.
  const sim::Duration span = sim::max(sc.finish, release_) - release_;
  m.overlap.saved = sc.serial - span;
  m.total = span;
  m.overlap.cpu_busy = sc.busy[static_cast<std::size_t>(sim::Resource::kCpu)];
  m.overlap.gpu_busy =
      sc.busy[static_cast<std::size_t>(sim::Resource::kGpuCompute)];
  m.overlap.h2d_busy =
      sc.busy[static_cast<std::size_t>(sim::Resource::kCopyH2D)];
  m.overlap.d2h_busy =
      sc.busy[static_cast<std::size_t>(sim::Resource::kCopyD2H)];
}

void StepExecutor::set_batch(std::uint32_t size, std::uint64_t group) {
  batch_group_ = size > 1 ? group : 0;
  if (gpu_ != nullptr) gpu_->set_batch(size);
}

std::uint64_t StepExecutor::intermediate_count() const {
  if (loc_ == Placement::kGpu) return gpu_->intermediate_count();
  return host_current_.size();
}

void StepExecutor::dispatch(const PlanStep& step, const Query& q,
                            QueryResult& res) {
  QueryMetrics& m = res.metrics;
  if (const auto* d = std::get_if<DecodeStep>(&step)) {
    if (d->where == Placement::kGpu) {
      assert(gpu_ != nullptr);
      gpu_->load_single(d->term, m);
      loc_ = Placement::kGpu;
    } else {
      assert(svs_ != nullptr);
      svs_->decode_single(d->term, host_current_, m);
      loc_ = Placement::kCpu;
    }
    return;
  }
  if (const auto* i = std::get_if<IntersectStep>(&step)) {
    if (i->where == Placement::kSplit) {
      run_split(*i, res);
    } else if (i->where == Placement::kGpu) {
      assert(gpu_ != nullptr);
      if (i->first_pair) {
        gpu_->intersect_first(i->probe_term, i->term, m);
      } else {
        gpu_->intersect_next(i->term, m);
      }
      loc_ = Placement::kGpu;
    } else {
      assert(svs_ != nullptr);
      if (i->first_pair) {
        svs_->first_pair(i->probe_term, i->term, host_current_, m);
      } else {
        svs_->next_step(host_current_, i->term, m);
      }
      loc_ = Placement::kCpu;
    }
    return;
  }
  if (const auto* t = std::get_if<TransferStep>(&step)) {
    assert(gpu_ != nullptr);
    if (t->direction == TransferDirection::kHostToDevice) {
      gpu_->upload_intermediate(host_current_, m);
      loc_ = Placement::kGpu;
    } else {
      host_current_ = gpu_->download_intermediate(m);
      loc_ = Placement::kCpu;
    }
    if (t->migration) ++m.migrations;
    return;
  }
  if (const auto* p = std::get_if<PrefetchStep>(&step)) {
    assert(gpu_ != nullptr);
    gpu_->prefetch(p->term, m);  // intermediate and location unchanged
    return;
  }
  if (const auto* h = std::get_if<HostDecodeStep>(&step)) {
    // Inter-step pipelining (DESIGN.md §15): the host core decodes a later
    // term while the device runs the current step. Recorded on the CPU
    // stream — later CPU ops serialize behind it, which is what makes the
    // work-ahead honest — but waiting on nothing and never advancing the
    // plan frontier: no step *depends* on it, a consumer simply finds the
    // list in the decoded cache.
    assert(svs_ != nullptr);
    const sim::Duration c0 = m.total;
    svs_->decode_ahead(h->term, m);
    tl_->record(cpu_stream_, sim::Resource::kCpu, m.total - c0,
                sim::Timeline::Event{});
    return;
  }
  // RankStep: BM25 + partial_sort on the host. Scoring uses the query's
  // original term order, not the SvS length order: float accumulation order
  // is then a property of the query alone, so a document-partitioned shard
  // (whose local list lengths differ) produces bit-identical scores to the
  // unpartitioned index (cluster/broker.h).
  m.result_count = host_current_.size();
  sim::CpuCostAccumulator rank(rank_spec_);
  scorer_->score(q.terms, host_current_, res.topk, rank);
  cpu::top_k(res.topk, q.k, rank);
  m.add_stage(rank.time(), &m.rank);
  m.simd += rank.simd();
}

sim::Timeline::Event StepExecutor::run_cpu_leg(
    std::span<const codec::DocId> probes, index::TermId t,
    std::vector<codec::DocId>& out, sim::Timeline::Event ready,
    QueryMetrics& m) {
  if (probes.empty()) {
    out.clear();
    return ready;
  }
  const sim::Duration c0 = m.total;
  svs_->partial_step(probes, t, out, m);
  return tl_->record(cpu_stream_, sim::Resource::kCpu, m.total - c0, ready);
}

void StepExecutor::run_split(const IntersectStep& i, QueryResult& res) {
  QueryMetrics& m = res.metrics;
  assert(svs_ != nullptr && gpu_ != nullptr);
  const sim::Timeline::Event entry = frontier_;

  std::vector<codec::DocId> cpu_out;
  std::vector<codec::DocId> gpu_partial;
  sim::Timeline::Event cpu_done = entry;
  sim::Timeline::Event gpu_done = entry;

  if (loc_ == Placement::kGpu) {
    // Device-resident probes: only the CPU leg's low prefix crosses back
    // over PCIe; the kernels search the high suffix in place via the
    // probe_offset. The prefix D2H and the GPU leg run on different
    // resources, so the kernels are chained on the step entry, not on the
    // download — only the CPU leg waits the copy out.
    const std::uint64_t n = gpu_->intermediate_count();
    const std::uint64_t n_gpu = split_share(i.alpha, n);
    const std::uint64_t n_cpu = n - n_gpu;
    gpu_->set_chain(entry);
    if (injector_ != nullptr && n_gpu > 0 &&
        injector_->gpu_step_fault(fault_scope_, query_id_, step_index_)) {
      // The GPU leg is lost before its kernels consumed anything
      // (DESIGN.md §16): charge the wasted device time, retire the faulted
      // term's cached pages, drain the WHOLE intermediate, and run both
      // docID ranges through the CPU stepper. partial_step over [0, n_cpu)
      // then [n_cpu, n) concatenates to exactly the unsplit intersection,
      // so the step still completes bit-identically — only the remainder
      // of the plan gets pinned host-side (run() returns kOkForceCpu).
      const sim::Duration waste =
          sim::Duration::from_us(injector_->config().gpu_fault_cost_us);
      gpu_->charge_fault(waste, &m.intersect, m);
      const index::TermId ft[1] = {i.term};
      gpu_->fault_reset(std::span<const index::TermId>(ft, 1), m);
      const sim::Timeline::Event fault_evt = gpu_->chain();
      std::vector<codec::DocId> probes_storage =
          gpu_->download_intermediate(m);
      const std::span<const codec::DocId> probes(probes_storage);
      cpu_done = run_cpu_leg(probes.first(n_cpu), i.term, cpu_out,
                             gpu_->chain(), m);
      gpu_done = run_cpu_leg(probes.subspan(n_cpu), i.term, gpu_partial,
                             sim::Timeline::join(cpu_done, fault_evt), m);
      ++m.faults.gpu_faults;
      ++m.faults.split_leg_faults;
      m.faults.gpu_wasted += waste;
      leg_faulted_ = true;
    } else {
      sim::Timeline::Event cpu_ready = entry;
      std::vector<codec::DocId> prefix;
      if (n_cpu > 0) {
        prefix = gpu_->download_intermediate_prefix(n_cpu, m);
        cpu_ready = gpu_->chain();
        gpu_->set_chain(entry);
      }
      if (n_gpu > 0) {
        gpu_partial = gpu_->split_intersect_device(i.term, n_cpu, m);
        gpu_done = gpu_->chain();
      } else {
        // Degenerate alpha=0: the prefix download drained everything.
        gpu_->drop_intermediate();
      }
      cpu_done = run_cpu_leg(prefix, i.term, cpu_out, cpu_ready, m);
    }
  } else {
    // Host-resident probes — or the first pair, whose probe list the host
    // decodes first; the device leg then waits on that op like any real
    // data dependency.
    sim::Timeline::Event probe_ready = entry;
    std::vector<codec::DocId> probes_storage;
    if (i.first_pair) {
      const sim::Duration c0 = m.total;
      svs_->materialize_probes(i.probe_term, probes_storage, m);
      probe_ready = tl_->record(cpu_stream_, sim::Resource::kCpu,
                                m.total - c0, entry);
    } else {
      probes_storage.swap(host_current_);
    }
    const std::span<const codec::DocId> probes(probes_storage);
    const std::uint64_t n_gpu = split_share(i.alpha, probes.size());
    const std::uint64_t n_cpu = probes.size() - n_gpu;
    if (injector_ != nullptr && n_gpu > 0 &&
        injector_->gpu_step_fault(fault_scope_, query_id_, step_index_)) {
      // GPU leg lost over host-resident probes: the probe range never left
      // the host, so recovery is just redoing the high range through the
      // CPU stepper after the fault is detected. The redo waits out both
      // the CPU leg (same core) and the fault event (the host learns of
      // the abort when the device signals it).
      gpu_->set_chain(probe_ready);
      const sim::Duration waste =
          sim::Duration::from_us(injector_->config().gpu_fault_cost_us);
      gpu_->charge_fault(waste, &m.intersect, m);
      const index::TermId ft[1] = {i.term};
      gpu_->fault_reset(std::span<const index::TermId>(ft, 1), m);
      const sim::Timeline::Event fault_evt = gpu_->chain();
      cpu_done = run_cpu_leg(probes.first(n_cpu), i.term, cpu_out,
                             probe_ready, m);
      gpu_done = run_cpu_leg(probes.subspan(n_cpu), i.term, gpu_partial,
                             sim::Timeline::join(cpu_done, fault_evt), m);
      ++m.faults.gpu_faults;
      ++m.faults.split_leg_faults;
      m.faults.gpu_wasted += waste;
      leg_faulted_ = true;
    } else {
      if (n_gpu > 0) {
        gpu_->set_chain(probe_ready);
        gpu_partial =
            gpu_->split_intersect_host(i.term, probes.subspan(n_cpu), m);
        gpu_done = gpu_->chain();
      } else {
        gpu_done = probe_ready;
      }
      cpu_done = run_cpu_leg(probes.first(n_cpu), i.term, cpu_out,
                             probe_ready, m);
    }
  }

  // The ranges are docID-disjoint and each partial is sorted, so the
  // concatenation is exactly the unsplit intersection.
  cpu_out.insert(cpu_out.end(), gpu_partial.begin(), gpu_partial.end());
  host_current_ = std::move(cpu_out);
  loc_ = Placement::kCpu;
  split_done_ = sim::Timeline::join(cpu_done, gpu_done);
  m.placements.push_back(Placement::kSplit);
}

void StepExecutor::abandon_gpu_step(const PlanStep& step, QueryResult& res,
                                    sim::Duration waste, bool oom) {
  QueryMetrics& m = res.metrics;
  StepRecord rec;
  rec.faulted = true;
  rec.query = query_id_;
  rec.placement = Placement::kGpu;
  rec.resource = sim::Resource::kGpuCompute;

  // The affected terms: invalidated in the device cache by the reset (the
  // simulated ECC error retired their pages). A faulted transfer names no
  // terms — the intermediate is not a cached list.
  index::TermId terms[2];
  std::size_t num_terms = 0;
  sim::Duration* stage = &m.intersect;
  if (const auto* d = std::get_if<DecodeStep>(&step)) {
    rec.kind = StepKind::kDecode;
    rec.term = d->term;
    terms[num_terms++] = d->term;
    stage = &m.decode;
  } else if (const auto* i = std::get_if<IntersectStep>(&step)) {
    rec.kind = StepKind::kIntersect;
    rec.placement = i->where;  // a faulted kSplit step records as kSplit
    rec.term = i->term;
    rec.shape = i->shape;
    rec.alpha = i->alpha;
    terms[num_terms++] = i->term;
    if (i->first_pair) terms[num_terms++] = i->probe_term;
  } else {
    // The OOM ladder bottoming out on an H2D migration: the allocation
    // failed before any bytes moved, so the intermediate never left the
    // host. The waste is allocator machinery, charged as transfer time.
    const auto& t = std::get<TransferStep>(step);
    assert(t.direction == TransferDirection::kHostToDevice);
    (void)t;
    rec.kind = StepKind::kTransfer;
    stage = &m.transfer;
  }

  const std::size_t ops0 = tl_->num_ops();
  gpu_->set_chain(frontier_);
  gpu_->charge_fault(waste, stage, m);  // serial charge + compute-stream op
  gpu_->fault_reset(std::span<const index::TermId>(terms, num_terms), m);
  frontier_ = gpu_->chain();
  if (oom) {
    ++m.faults.oom_degraded_steps;
    m.faults.oom_recovery += waste;
  } else {
    ++m.faults.gpu_faults;
    m.faults.gpu_wasted += waste;
  }

  rec.duration = waste;
  if (stage == &m.decode) {
    rec.decode = waste;
  } else if (stage == &m.transfer) {
    rec.transfer = waste;
  } else {
    rec.intersect = waste;
  }
  rec.output_count = intermediate_count();
  if (tl_->num_ops() > ops0) {
    rec.issue = tl_->ops()[ops0].issue;
    rec.start = tl_->ops()[ops0].start;
    rec.end = tl_->ops()[ops0].end;
  } else {
    rec.issue = rec.start = rec.end = frontier_.at;
  }
  assert(tl_->scope_stats(scope_).serial == m.total);
  res.trace.push_back(rec);
}

void StepExecutor::drop_faulted_prefetch(const PrefetchStep& p,
                                         QueryResult& res) {
  QueryMetrics& m = res.metrics;
  ++m.faults.prefetch_faults;
  // Zero-duration faulted record: the fault fired before the DMA was
  // enqueued, so nothing was charged and the device cache never saw the
  // list. The plan continues unchanged — a prefetch is optional work whose
  // consumer simply misses the cache later.
  StepRecord rec;
  rec.faulted = true;
  rec.query = query_id_;
  rec.kind = StepKind::kPrefetch;
  rec.placement = Placement::kGpu;
  rec.resource = sim::Resource::kCopyH2D;
  rec.term = p.term;
  rec.output_count = intermediate_count();
  rec.issue = rec.start = rec.end = frontier_.at;
  res.trace.push_back(rec);
}

StepStatus StepExecutor::run(const PlanStep& step, const Query& q,
                             QueryResult& res) {
  // Co-tenant executors share one timeline; re-select this query's scope
  // so the step's ops are charged to it.
  tl_->set_scope(scope_);

  // One classification pass over the step, shared by the fault checks and
  // the record/frontier plumbing below. GPU-dispatched steps record their
  // own timeline ops (ledgers + kernels) chained off the plan frontier;
  // split and host-decode steps manage their own ops inside dispatch;
  // everything else becomes one CPU op.
  bool gpu_step = false;          ///< dispatch drives the GpuExecutor chain
  bool split_step = false;        ///< kSplit: both legs, joined frontier
  bool host_decode_step = false;  ///< unchained CPU work-ahead
  bool gpu_compute = false;       ///< kGpu-placed kernels (not kSplit)
  bool dev_alloc = false;         ///< step allocates device memory (OOM site)
  const auto* prefetch = std::get_if<PrefetchStep>(&step);
  if (const auto* d = std::get_if<DecodeStep>(&step)) {
    gpu_step = d->where == Placement::kGpu;
    gpu_compute = gpu_step;
    dev_alloc = gpu_step;
  } else if (const auto* i = std::get_if<IntersectStep>(&step)) {
    gpu_step = i->where == Placement::kGpu;
    split_step = i->where == Placement::kSplit;
    gpu_compute = gpu_step;
    // A split's GPU leg allocates too; its *compute* fault is drawn inside
    // run_split, where losing the leg degrades only the device range.
    dev_alloc = i->where != Placement::kCpu;
  } else if (const auto* t = std::get_if<TransferStep>(&step)) {
    gpu_step = true;
    // Only the H2D direction allocates on the device; a D2H drain lands in
    // pinned host memory.
    dev_alloc = t->direction == TransferDirection::kHostToDevice;
  } else if (prefetch != nullptr) {
    gpu_step = true;
    dev_alloc = true;
  } else if (std::holds_alternative<HostDecodeStep>(step)) {
    host_decode_step = true;
  }

  // Pre-dispatch fault checks (DESIGN.md §11/§16): every fault fires before
  // the step's kernels or DMAs consume anything, so the device state from
  // the last committed step stays intact and recovery can drain it through
  // the normal migration path.
  enum class OomRung : std::uint8_t { kNone, kEvict, kUnfuse };
  OomRung rung = OomRung::kNone;
  if (injector_ != nullptr && svs_ != nullptr) {
    // An ECC-style device fault on a kGpu compute step abandons the query's
    // device residency wholesale.
    if (gpu_compute &&
        injector_->gpu_step_fault(fault_scope_, query_id_, step_index_)) {
      abandon_gpu_step(
          step, res,
          sim::Duration::from_us(injector_->config().gpu_fault_cost_us),
          /*oom=*/false);
      ++step_index_;
      return StepStatus::kFaultQuery;
    }
    // The same fault on a prefetch upload just loses optional work.
    if (prefetch != nullptr &&
        injector_->gpu_step_fault(fault_scope_, query_id_, step_index_)) {
      drop_faulted_prefetch(*prefetch, res);
      ++step_index_;
      return StepStatus::kOk;
    }
    // Device memory pressure at an allocation site: walk the degradation
    // ladder (DESIGN.md §16). Rung 1 evicts cold cache bytes, rung 2
    // unfuses the cross-query batch — both recover *on the device* and the
    // step proceeds; a faulted prefetch is simply dropped; rung 3 abandons
    // the step and re-plans it (and only it) host-side.
    if (dev_alloc &&
        injector_->oom_fault(fault_scope_, query_id_, step_index_)) {
      ++res.metrics.faults.oom_faults;
      if (gpu_->list_cache().size() > 0) {
        rung = OomRung::kEvict;
      } else if (batch_group_ != 0) {
        rung = OomRung::kUnfuse;
      } else if (prefetch != nullptr) {
        drop_faulted_prefetch(*prefetch, res);
        ++step_index_;
        return StepStatus::kOk;
      } else {
        abandon_gpu_step(
            step, res,
            sim::Duration::from_us(injector_->config().oom_replan_cost_us),
            /*oom=*/true);
        ++step_index_;
        return StepStatus::kFaultStep;
      }
    }
  }

  QueryMetrics& m = res.metrics;
  StepRecord rec;
  rec.query = query_id_;
  const sim::Duration total0 = m.total;
  const sim::Duration decode0 = m.decode;
  const sim::Duration intersect0 = m.intersect;
  const sim::Duration transfer0 = m.transfer;
  const sim::Duration rank0 = m.rank;
  const std::uint64_t kernels0 = m.gpu_kernels;
  const sim::SimdCounters simd0 = m.simd;
  const std::size_t ops0 = tl_->num_ops();

  if (gpu_step || split_step) gpu_->set_chain(frontier_);
  // Apply the chosen OOM rung inside the record window (after the stage
  // snapshots, chained on the frontier), so its recovery charges show up in
  // this step's StepRecord and the retried allocation waits the recovery
  // out on the timeline.
  if (rung == OomRung::kEvict) {
    gpu_->oom_evict(m);
    frontier_ = gpu_->chain();
  } else if (rung == OomRung::kUnfuse) {
    // Shrinking the fused launch back to a single query frees the K-way
    // working set; the relaunch overhead is the recovery cost. Only the
    // faulted query unfuses — co-batched lanes keep their tag.
    const sim::Duration d =
        sim::Duration::from_us(injector_->config().oom_unfuse_cost_us);
    sim::Duration* stage = &m.intersect;
    if (std::holds_alternative<DecodeStep>(step)) stage = &m.decode;
    if (std::holds_alternative<TransferStep>(step) || prefetch != nullptr) {
      stage = &m.transfer;
    }
    gpu_->charge_fault(d, stage, m);
    m.faults.oom_recovery += d;
    ++m.faults.oom_unfused;
    set_batch(1, 0);
    frontier_ = gpu_->chain();
  }
  rec.batch_group = batch_group_;

  dispatch(step, q, res);

  if (const auto* d = std::get_if<DecodeStep>(&step)) {
    rec.kind = StepKind::kDecode;
    rec.placement = d->where;
    rec.term = d->term;
    rec.resource = d->where == Placement::kGpu ? sim::Resource::kGpuCompute
                                               : sim::Resource::kCpu;
  } else if (const auto* i = std::get_if<IntersectStep>(&step)) {
    rec.kind = StepKind::kIntersect;
    rec.placement = i->where;
    rec.term = i->term;
    rec.shape = i->shape;
    rec.alpha = i->alpha;
    rec.resource = i->where == Placement::kCpu ? sim::Resource::kCpu
                                               : sim::Resource::kGpuCompute;
  } else if (const auto* t = std::get_if<TransferStep>(&step)) {
    rec.kind = StepKind::kTransfer;
    rec.placement = t->direction == TransferDirection::kHostToDevice
                        ? Placement::kGpu
                        : Placement::kCpu;
    rec.migration = t->migration;
    rec.resource = t->direction == TransferDirection::kHostToDevice
                       ? sim::Resource::kCopyH2D
                       : sim::Resource::kCopyD2H;
  } else if (const auto* p = std::get_if<PrefetchStep>(&step)) {
    rec.kind = StepKind::kPrefetch;
    rec.placement = Placement::kGpu;
    rec.term = p->term;
    rec.resource = sim::Resource::kCopyH2D;
  } else if (const auto* h = std::get_if<HostDecodeStep>(&step)) {
    rec.kind = StepKind::kHostDecode;
    rec.placement = Placement::kCpu;
    rec.term = h->term;
    rec.resource = sim::Resource::kCpu;
  } else {
    rec.kind = StepKind::kRank;
    rec.placement = Placement::kCpu;
    rec.resource = sim::Resource::kCpu;
  }
  rec.output_count = intermediate_count();
  rec.gpu_kernels = m.gpu_kernels - kernels0;
  rec.duration = m.total - total0;
  rec.decode = m.decode - decode0;
  rec.intersect = m.intersect - intersect0;
  rec.transfer = m.transfer - transfer0;
  rec.rank = m.rank - rank0;
  rec.simd = m.simd - simd0;

  if (split_step) {
    // Both legs' completion, joined by run_split.
    frontier_ = split_done_;
  } else if (gpu_step) {
    // Prefetches leave the chain untouched, so the frontier is unchanged
    // for them — later steps don't wait on a prefetch unless they use it.
    frontier_ = gpu_->chain();
  } else if (host_decode_step) {
    // The work-ahead recorded its own unchained CPU op; the plan frontier
    // deliberately does not advance (nothing depends on it).
  } else {
    frontier_ = tl_->record(cpu_stream_, sim::Resource::kCpu, rec.duration,
                            frontier_);
  }

  // Timeline placement of the whole step: first issue to last completion
  // over the ops it recorded (a zero-op step pins all three to the
  // frontier). Co-tenant steps never interleave at op granularity — the
  // DeviceManager steps one lane at a time — so [ops0, end) is this step.
  if (tl_->num_ops() > ops0) {
    const auto& ops = tl_->ops();
    rec.issue = ops[ops0].issue;
    rec.start = ops[ops0].start;
    rec.end = ops[ops0].end;
    for (std::size_t i = ops0 + 1; i < ops.size(); ++i) {
      rec.issue = sim::min(rec.issue, ops[i].issue);
      rec.start = sim::min(rec.start, ops[i].start);
      rec.end = sim::max(rec.end, ops[i].end);
    }
  } else {
    rec.issue = rec.start = rec.end = frontier_.at;
  }
  // Every serial charge must have been mirrored as a timeline op.
  assert(tl_->scope_stats(scope_).serial == m.total);
  rec.leg_faulted = leg_faulted_;
  res.trace.push_back(rec);
  ++step_index_;
  if (leg_faulted_) {
    // run_split lost its GPU leg but completed the step host-side: the
    // caller pins the remainder of the plan to the CPU (the device is no
    // longer trusted for this query).
    leg_faulted_ = false;
    return StepStatus::kOkForceCpu;
  }
  return StepStatus::kOk;
}

QueryResult run_plan(Planner& planner, StepExecutor& exec, const Query& q) {
  QueryResult res;
  if (q.terms.empty()) return res;
  exec.begin_query(q);
  planner.begin(q);
  while (const auto step = planner.next(exec.intermediate_count(),
                                        exec.location())) {
    // Injected-fault recovery (DESIGN.md §11/§16). kFaultQuery pins every
    // later decision host-side, so at most one *device* fault fires per
    // query; the step-scoped statuses leave later placements free, so a
    // query can ride the OOM ladder more than once.
    switch (exec.run(*step, q, res)) {
      case StepStatus::kOk:
        break;
      case StepStatus::kOkForceCpu:
        planner.force_cpu();
        break;
      case StepStatus::kFaultQuery:
        planner.degrade_to_cpu(*step);
        break;
      case StepStatus::kFaultStep:
        planner.degrade_step_to_cpu(*step);
        break;
    }
  }
  exec.finish_query(res.metrics);
  return res;
}

}  // namespace griffin::core
