// Seeded, deterministic fault injection (DESIGN.md §11). Every layer that
// can fail — a GPU compute step (simulated kernel/ECC error), a PCIe DMA
// (link-level transfer error with bounded retry), a shard replica (crash /
// recovery window), a whole replica running slow (the straggler model the
// hedging bench uses) — asks one injector whether a fault fires at a given
// *coordinate* (query id, step index, transfer sequence, simulated instant).
//
// Decisions are pure hashes of (run seed, site salt, coordinates), not draws
// from a shared random stream: they are order-independent and replayable, a
// retry re-asks a *different* coordinate (the attempt number) rather than
// perturbing anyone else's randomness, and a site with probability zero
// consumes nothing — which is what makes the zero-fault configuration
// bit-identical to a build without the injector at all (the golden-parity
// invariant the fault tests enforce).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "util/rng.h"

namespace griffin::fault {

/// A scripted fault point: fires for exactly one (query, scope) pair, where
/// scope is the shard id in a cluster (0 for a standalone engine). Scripted
/// triggers make single-fault tests readable: no probability tuning, the
/// fault lands exactly where the test points.
struct Trigger {
  std::uint64_t query = 0;
  std::uint32_t scope = 0;
};

/// One fault site's schedule: a per-coordinate probability, scripted
/// triggers, or both. Probability zero with no triggers disarms the site.
struct SiteConfig {
  double probability = 0.0;
  std::vector<Trigger> triggers;

  bool armed() const { return probability > 0.0 || !triggers.empty(); }
  bool triggered(std::uint64_t query, std::uint32_t scope) const {
    return std::any_of(triggers.begin(), triggers.end(),
                       [&](const Trigger& t) {
                         return t.query == query && t.scope == scope;
                       });
  }
};

/// A scripted replica outage: the replica is unreachable for t in
/// [start, end). Complements the probabilistic crash-window model for tests
/// that need an exact failure interval.
struct Outage {
  std::uint32_t shard = 0;
  std::uint32_t replica = 0;
  sim::Duration start;
  sim::Duration end;
};

struct FaultConfig {
  /// GPU device faults: per (scope, query, step-index) coordinate, checked
  /// for every plan step placed on the GPU. A hit abandons the step and
  /// degrades the rest of the query to the CPU (core/executor.cpp).
  SiteConfig gpu;
  /// PCIe transfer errors: per (scope, query, transfer-sequence, attempt)
  /// coordinate, checked inside pcie::TransferLedger. Each failed attempt
  /// re-pays the full transfer time; after `pcie_max_retries` failures the
  /// link-level retry is assumed to have succeeded (timing-only — data is
  /// never corrupted).
  SiteConfig pcie;
  /// Replica crashes: per (shard, replica, time-window) coordinate — a
  /// window hashing under the probability is an outage of one
  /// `crash_window_ms`, so recovery happens naturally at the next window.
  SiteConfig crash;
  /// Slow replicas (the straggler model): per (query, shard) coordinate,
  /// multiplying the primary replica's service time by `slow_factor`.
  /// cluster::StragglerConfig is an alias onto this site.
  SiteConfig slow;

  /// Wasted device time charged for an abandoned GPU step (the kernel ran
  /// partway before the error surfaced).
  double gpu_fault_cost_us = 50.0;
  /// Failed attempts a single DMA may accumulate before the link-level
  /// retry is assumed successful.
  std::uint32_t pcie_max_retries = 3;
  /// Granularity of the probabilistic replica-outage model.
  double crash_window_ms = 50.0;
  double slow_factor = 10.0;
  std::vector<Outage> outages;  ///< scripted replica outages

  std::uint64_t seed = 1;

  bool engine_faults_armed() const { return gpu.armed() || pcie.armed(); }
  bool any_armed() const {
    return engine_faults_armed() || crash.armed() || slow.armed() ||
           !outages.empty();
  }
};

/// Per-query / per-run fault and degradation counters, threaded
/// QueryMetrics -> ShardNode -> ClusterResult -> ServiceResult exactly like
/// CacheCounters and OverlapCounters. The engine fills the first block; the
/// broker and service sim fill the rest.
struct FaultCounters {
  // Engine-level (per query, summed upward).
  std::uint64_t gpu_faults = 0;   ///< GPU steps abandoned mid-query
  std::uint64_t pcie_errors = 0;  ///< failed DMA attempts (retried)
  sim::Duration gpu_wasted;       ///< time charged to abandoned GPU steps
  sim::Duration pcie_retry_time;  ///< transfer time re-paid by retries

  // Broker-level (per run).
  std::uint64_t replica_failures = 0;  ///< submits that found a replica down
  std::uint64_t failovers = 0;    ///< queries answered by a non-primary
  std::uint64_t slow_replicas = 0;     ///< straggler injections
  sim::Duration backoff_time;          ///< time spent in retry backoff
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_short_circuits = 0;  ///< attempts skipped while open
  std::uint64_t deadline_misses = 0;  ///< shards dropped past the deadline
  std::uint64_t shards_dropped = 0;  ///< (query, shard) pairs left unanswered
  std::uint64_t degraded_queries = 0;  ///< gathered with coverage < 1

  // Service-level (per run).
  std::uint64_t shed_queries = 0;  ///< rejected by admission control

  FaultCounters& operator+=(const FaultCounters& o) {
    gpu_faults += o.gpu_faults;
    pcie_errors += o.pcie_errors;
    gpu_wasted += o.gpu_wasted;
    pcie_retry_time += o.pcie_retry_time;
    replica_failures += o.replica_failures;
    failovers += o.failovers;
    slow_replicas += o.slow_replicas;
    backoff_time += o.backoff_time;
    breaker_opens += o.breaker_opens;
    breaker_short_circuits += o.breaker_short_circuits;
    deadline_misses += o.deadline_misses;
    shards_dropped += o.shards_dropped;
    degraded_queries += o.degraded_queries;
    shed_queries += o.shed_queries;
    return *this;
  }

  bool any() const {
    return gpu_faults + pcie_errors + replica_failures + failovers +
               slow_replicas + breaker_opens + breaker_short_circuits +
               deadline_misses + shards_dropped + degraded_queries +
               shed_queries !=
           0;
  }
};

/// Stateless decision oracle over a FaultConfig. Every question is a pure
/// function of (config, coordinates), so the injector can be shared by any
/// number of shards/executors and asked in any order.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig cfg) : cfg_(std::move(cfg)) {}

  const FaultConfig& config() const { return cfg_; }

  /// Deterministic uniform in [0, 1) for one fault coordinate: a splitmix64
  /// chain absorbing the seed, a per-site salt, and three coordinates.
  static double coord01(std::uint64_t seed, std::uint64_t salt,
                        std::uint64_t a, std::uint64_t b, std::uint64_t c) {
    std::uint64_t s = seed ^ salt;
    std::uint64_t h = util::splitmix64(s);
    s = h ^ a;
    h = util::splitmix64(s);
    s = h ^ b;
    h = util::splitmix64(s);
    s = h ^ c;
    h = util::splitmix64(s);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  /// Does plan step `step` of query `query` (running at shard `scope`) hit
  /// a simulated device fault? Asked only for GPU-placed compute steps.
  bool gpu_step_fault(std::uint32_t scope, std::uint64_t query,
                      std::uint64_t step) const {
    if (!cfg_.gpu.armed()) return false;
    if (cfg_.gpu.triggered(query, scope)) return true;
    return cfg_.gpu.probability > 0.0 &&
           coord01(cfg_.seed, kGpuSalt, scope, query, step) <
               cfg_.gpu.probability;
  }

  /// Does attempt `attempt` of DMA number `transfer` within query `query`
  /// fail? Scripted triggers fail the first attempt of every transfer of
  /// the (query, scope) pair — the retry then succeeds.
  bool pcie_error(std::uint32_t scope, std::uint64_t query,
                  std::uint64_t transfer, std::uint32_t attempt) const {
    if (!cfg_.pcie.armed()) return false;
    if (attempt == 0 && cfg_.pcie.triggered(query, scope)) return true;
    return cfg_.pcie.probability > 0.0 &&
           coord01(cfg_.seed, kPcieSalt, scope, query,
                   (transfer << 8) | attempt) < cfg_.pcie.probability;
  }

  /// Is (shard, replica) unreachable at simulated instant `t`? Scripted
  /// outages are checked first; otherwise each crash window of
  /// `crash_window_ms` is down independently with the site probability, so
  /// a crashed replica recovers at the next window boundary.
  bool replica_down(std::uint32_t shard, std::uint32_t replica,
                    sim::Duration t) const {
    for (const Outage& o : cfg_.outages) {
      if (o.shard == shard && o.replica == replica && t >= o.start &&
          t < o.end) {
        return true;
      }
    }
    if (cfg_.crash.probability <= 0.0 || cfg_.crash_window_ms <= 0.0) {
      return false;
    }
    const auto window = static_cast<std::uint64_t>(
        t.ms() / cfg_.crash_window_ms);
    return coord01(cfg_.seed, kCrashSalt, shard, replica, window) <
           cfg_.crash.probability;
  }

  /// Does query `query` run `slow_factor` slow on shard `shard`'s primary?
  bool slow(std::uint64_t query, std::uint32_t shard) const {
    if (!cfg_.slow.armed()) return false;
    if (cfg_.slow.triggered(query, shard)) return true;
    return cfg_.slow.probability > 0.0 &&
           coord01(cfg_.seed, kSlowSalt, shard, query, 0) <
               cfg_.slow.probability;
  }

 private:
  static constexpr std::uint64_t kGpuSalt = 0x4750555f45434331ULL;
  static constexpr std::uint64_t kPcieSalt = 0x504349455f455252ULL;
  static constexpr std::uint64_t kCrashSalt = 0x435241534857494eULL;
  static constexpr std::uint64_t kSlowSalt = 0x534c4f575f524550ULL;

  FaultConfig cfg_;
};

}  // namespace griffin::fault
