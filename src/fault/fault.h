// Seeded, deterministic fault injection (DESIGN.md §11). Every layer that
// can fail — a GPU compute step (simulated kernel/ECC error), a PCIe DMA
// (link-level transfer error with bounded retry), a shard replica (crash /
// recovery window), a whole replica running slow (the straggler model the
// hedging bench uses) — asks one injector whether a fault fires at a given
// *coordinate* (query id, step index, transfer sequence, simulated instant).
//
// Decisions are pure hashes of (run seed, site salt, coordinates), not draws
// from a shared random stream: they are order-independent and replayable, a
// retry re-asks a *different* coordinate (the attempt number) rather than
// perturbing anyone else's randomness, and a site with probability zero
// consumes nothing — which is what makes the zero-fault configuration
// bit-identical to a build without the injector at all (the golden-parity
// invariant the fault tests enforce).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "util/rng.h"

namespace griffin::fault {

/// Probabilities are per-coordinate chances; anything outside [0, 1] is a
/// configuration bug (>1 silently behaved as always-fire before). The
/// injector asserts on construction and clamps, so a release build with a
/// bad config degrades to the nearest meaningful schedule instead of
/// misreporting the rate it ran at.
inline double clamp01(double p) { return std::clamp(p, 0.0, 1.0); }

/// A scripted fault point: fires for exactly one (query, scope) pair, where
/// scope is the shard id in a cluster (0 for a standalone engine). Scripted
/// triggers make single-fault tests readable: no probability tuning, the
/// fault lands exactly where the test points.
struct Trigger {
  std::uint64_t query = 0;
  std::uint32_t scope = 0;
};

/// One fault site's schedule: a per-coordinate probability, scripted
/// triggers, or both. Probability zero with no triggers disarms the site.
struct SiteConfig {
  double probability = 0.0;
  std::vector<Trigger> triggers;

  bool armed() const { return probability > 0.0 || !triggers.empty(); }
  bool triggered(std::uint64_t query, std::uint32_t scope) const {
    return std::any_of(triggers.begin(), triggers.end(),
                       [&](const Trigger& t) {
                         return t.query == query && t.scope == scope;
                       });
  }
};

/// A scripted replica outage: the replica is unreachable for t in
/// [start, end). Complements the probabilistic crash-window model for tests
/// that need an exact failure interval.
struct Outage {
  std::uint32_t shard = 0;
  std::uint32_t replica = 0;
  sim::Duration start;
  sim::Duration end;
};

struct FaultConfig {
  /// GPU device faults: per (scope, query, step-index) coordinate, checked
  /// for every plan step touching GPU compute. A hit on a kGpu step
  /// abandons it and degrades the rest of the query to the CPU; a hit on a
  /// kSplit step loses only the GPU leg (the CPU leg's partial survives and
  /// the high range is redone host-side); a hit on a kPrefetch drops the
  /// upload without poisoning the device cache (core/executor.cpp).
  SiteConfig gpu;
  /// PCIe transfer errors: per (scope, query, transfer-sequence, attempt)
  /// coordinate, checked inside pcie::TransferLedger. Each failed attempt
  /// re-pays the full transfer time; after `pcie_max_retries` failures the
  /// link-level retry is assumed to have succeeded (timing-only — data is
  /// never corrupted).
  SiteConfig pcie;
  /// Replica crashes: per (shard, replica, time-window) coordinate — a
  /// window hashing under the probability is an outage of one
  /// `crash_window_ms`, so recovery happens naturally at the next window.
  SiteConfig crash;
  /// Slow replicas (the straggler model): per (query, shard) coordinate,
  /// multiplying the primary replica's service time by `slow_factor`.
  /// cluster::StragglerConfig is an alias onto this site.
  SiteConfig slow;
  /// Device memory pressure (DESIGN.md §16): per (scope, query, step-index)
  /// coordinate, checked for every step that allocates device memory — a
  /// GPU decode/intersect, the GPU leg of a split, an H2D migration upload,
  /// a prefetch, a fused batch launch. A hit does NOT abandon the query;
  /// the executor climbs a degradation ladder instead: evict device-cache
  /// bytes -> unfuse the batch -> re-plan just the hit step to the CPU.
  /// Every rung is charged on the timeline and counted in FaultCounters;
  /// results stay bit-identical.
  SiteConfig oom;

  /// Wasted device time charged for an abandoned GPU step (the kernel ran
  /// partway before the error surfaced).
  double gpu_fault_cost_us = 50.0;
  /// Ladder rung 1: host-synchronous free of one evicted cache entry
  /// (cudaFree blocks the stream until in-flight work retires).
  double oom_evict_cost_us = 15.0;
  /// Rung 1 frees at least this many device-cache bytes (LRU tail first)
  /// before the allocation is retried.
  std::uint64_t oom_evict_bytes = std::uint64_t{1} << 20;
  /// Ladder rung 2: re-launching a fused batch member's kernels alone after
  /// the shared launch's allocation failed.
  double oom_unfuse_cost_us = 10.0;
  /// Ladder rung 3: allocator stall before the step is abandoned and
  /// re-planned host-side (nothing to evict, nothing to unfuse).
  double oom_replan_cost_us = 25.0;
  /// Failed attempts a single DMA may accumulate before the link-level
  /// retry is assumed successful.
  std::uint32_t pcie_max_retries = 3;
  /// Granularity of the probabilistic replica-outage model.
  double crash_window_ms = 50.0;
  double slow_factor = 10.0;
  std::vector<Outage> outages;  ///< scripted replica outages

  std::uint64_t seed = 1;

  bool engine_faults_armed() const {
    return gpu.armed() || pcie.armed() || oom.armed();
  }
  bool any_armed() const {
    return engine_faults_armed() || crash.armed() || slow.armed() ||
           !outages.empty();
  }
};

/// Per-query / per-run fault and degradation counters, threaded
/// QueryMetrics -> ShardNode -> ClusterResult -> ServiceResult exactly like
/// CacheCounters and OverlapCounters. The engine fills the first block; the
/// broker and service sim fill the rest.
struct FaultCounters {
  // Engine-level (per query, summed upward).
  std::uint64_t gpu_faults = 0;   ///< GPU steps abandoned mid-query
  std::uint64_t pcie_errors = 0;  ///< failed DMA attempts (retried)
  /// Split steps whose GPU leg was lost: the CPU leg's partial survived and
  /// the high range was redone host-side (counted inside gpu_faults too).
  std::uint64_t split_leg_faults = 0;
  /// kPrefetch uploads killed by a device fault: dropped without entering
  /// the cache; the plan continues unchanged (a prefetch is optional work).
  std::uint64_t prefetch_faults = 0;
  /// Device allocations that hit injected memory pressure (OOM site), and
  /// the ladder rungs that resolved them (DESIGN.md §16).
  std::uint64_t oom_faults = 0;
  std::uint64_t oom_evictions = 0;       ///< cache entries freed by rung 1
  std::uint64_t oom_evicted_bytes = 0;   ///< device-cache bytes freed
  std::uint64_t oom_unfused = 0;         ///< batch memberships dissolved
  std::uint64_t oom_degraded_steps = 0;  ///< steps re-planned to the CPU
  sim::Duration gpu_wasted;       ///< time charged to abandoned GPU steps
  sim::Duration pcie_retry_time;  ///< transfer time re-paid by retries
  sim::Duration oom_recovery;     ///< ladder charges (evict/unfuse/stall)

  // Broker-level (per run).
  std::uint64_t replica_failures = 0;  ///< submits that found a replica down
  std::uint64_t failovers = 0;    ///< queries answered by a non-primary
  std::uint64_t slow_replicas = 0;     ///< straggler injections
  sim::Duration backoff_time;          ///< time spent in retry backoff
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_short_circuits = 0;  ///< attempts skipped while open
  std::uint64_t deadline_misses = 0;  ///< shards dropped past the deadline
  std::uint64_t shards_dropped = 0;  ///< (query, shard) pairs left unanswered
  std::uint64_t degraded_queries = 0;  ///< gathered with coverage < 1

  // Service-level (per run).
  std::uint64_t shed_queries = 0;  ///< rejected by admission control

  FaultCounters& operator+=(const FaultCounters& o) {
    gpu_faults += o.gpu_faults;
    pcie_errors += o.pcie_errors;
    split_leg_faults += o.split_leg_faults;
    prefetch_faults += o.prefetch_faults;
    oom_faults += o.oom_faults;
    oom_evictions += o.oom_evictions;
    oom_evicted_bytes += o.oom_evicted_bytes;
    oom_unfused += o.oom_unfused;
    oom_degraded_steps += o.oom_degraded_steps;
    gpu_wasted += o.gpu_wasted;
    pcie_retry_time += o.pcie_retry_time;
    oom_recovery += o.oom_recovery;
    replica_failures += o.replica_failures;
    failovers += o.failovers;
    slow_replicas += o.slow_replicas;
    backoff_time += o.backoff_time;
    breaker_opens += o.breaker_opens;
    breaker_short_circuits += o.breaker_short_circuits;
    deadline_misses += o.deadline_misses;
    shards_dropped += o.shards_dropped;
    degraded_queries += o.degraded_queries;
    shed_queries += o.shed_queries;
    return *this;
  }

  bool any() const {
    return gpu_faults + pcie_errors + prefetch_faults + oom_faults +
               replica_failures + failovers + slow_replicas + breaker_opens +
               breaker_short_circuits + deadline_misses + shards_dropped +
               degraded_queries + shed_queries !=
           0;
  }
};

/// Stateless decision oracle over a FaultConfig. Every question is a pure
/// function of (config, coordinates), so the injector can be shared by any
/// number of shards/executors and asked in any order.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig cfg) : cfg_(std::move(cfg)) {
    validate(cfg_.gpu);
    validate(cfg_.pcie);
    validate(cfg_.crash);
    validate(cfg_.slow);
    validate(cfg_.oom);
  }

  const FaultConfig& config() const { return cfg_; }

  /// Deterministic uniform in [0, 1) for one fault coordinate: a splitmix64
  /// chain absorbing the seed, a per-site salt, and three coordinates.
  static double coord01(std::uint64_t seed, std::uint64_t salt,
                        std::uint64_t a, std::uint64_t b, std::uint64_t c) {
    std::uint64_t s = seed ^ salt;
    std::uint64_t h = util::splitmix64(s);
    s = h ^ a;
    h = util::splitmix64(s);
    s = h ^ b;
    h = util::splitmix64(s);
    s = h ^ c;
    h = util::splitmix64(s);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  /// Does plan step `step` of query `query` (running at shard `scope`) hit
  /// a simulated device fault? Asked only for GPU-placed compute steps.
  bool gpu_step_fault(std::uint32_t scope, std::uint64_t query,
                      std::uint64_t step) const {
    if (!cfg_.gpu.armed()) return false;
    if (cfg_.gpu.triggered(query, scope)) return true;
    return cfg_.gpu.probability > 0.0 &&
           coord01(cfg_.seed, kGpuSalt, scope, query, step) <
               cfg_.gpu.probability;
  }

  /// Does the device allocation behind plan step `step` of query `query`
  /// hit injected memory pressure? Asked for every device-allocating step
  /// (GPU decode/intersect, split GPU leg, H2D migration, prefetch, fused
  /// batch launch). Independent of the gpu site: a different salt over the
  /// same coordinates.
  bool oom_fault(std::uint32_t scope, std::uint64_t query,
                 std::uint64_t step) const {
    if (!cfg_.oom.armed()) return false;
    if (cfg_.oom.triggered(query, scope)) return true;
    return cfg_.oom.probability > 0.0 &&
           coord01(cfg_.seed, kOomSalt, scope, query, step) <
               cfg_.oom.probability;
  }

  /// Does attempt `attempt` of DMA number `transfer` within query `query`
  /// fail? Scripted triggers fail the first attempt of every transfer of
  /// the (query, scope) pair — the retry then succeeds.
  bool pcie_error(std::uint32_t scope, std::uint64_t query,
                  std::uint64_t transfer, std::uint32_t attempt) const {
    if (!cfg_.pcie.armed()) return false;
    if (attempt == 0 && cfg_.pcie.triggered(query, scope)) return true;
    return cfg_.pcie.probability > 0.0 &&
           coord01(cfg_.seed, kPcieSalt, scope, query,
                   (transfer << 8) | attempt) < cfg_.pcie.probability;
  }

  /// Is (shard, replica) unreachable at simulated instant `t`? Scripted
  /// outages are checked first; otherwise each crash window of
  /// `crash_window_ms` is down independently with the site probability, so
  /// a crashed replica recovers at the next window boundary.
  bool replica_down(std::uint32_t shard, std::uint32_t replica,
                    sim::Duration t) const {
    for (const Outage& o : cfg_.outages) {
      if (o.shard == shard && o.replica == replica && t >= o.start &&
          t < o.end) {
        return true;
      }
    }
    if (cfg_.crash.probability <= 0.0 || cfg_.crash_window_ms <= 0.0) {
      return false;
    }
    const auto window = static_cast<std::uint64_t>(
        t.ms() / cfg_.crash_window_ms);
    return coord01(cfg_.seed, kCrashSalt, shard, replica, window) <
           cfg_.crash.probability;
  }

  /// Does query `query` run `slow_factor` slow on shard `shard`'s primary?
  bool slow(std::uint64_t query, std::uint32_t shard) const {
    if (!cfg_.slow.armed()) return false;
    if (cfg_.slow.triggered(query, shard)) return true;
    return cfg_.slow.probability > 0.0 &&
           coord01(cfg_.seed, kSlowSalt, shard, query, 0) <
               cfg_.slow.probability;
  }

 private:
  static constexpr std::uint64_t kGpuSalt = 0x4750555f45434331ULL;
  static constexpr std::uint64_t kPcieSalt = 0x504349455f455252ULL;
  static constexpr std::uint64_t kCrashSalt = 0x435241534857494eULL;
  static constexpr std::uint64_t kSlowSalt = 0x534c4f575f524550ULL;
  static constexpr std::uint64_t kOomSalt = 0x4f4f4d5f50524553ULL;

  static void validate(SiteConfig& s) {
    assert(s.probability >= 0.0 && s.probability <= 1.0 &&
           "fault site probability outside [0,1]");
    s.probability = clamp01(s.probability);
  }

  FaultConfig cfg_;
};

}  // namespace griffin::fault
