// The codec zoo: per-codec randomized round-trips over list shapes chosen
// to stress each scheme, the Simple16 28-bit d-gap enforcement, the tagged
// block header views, and the adaptive selection policy (exact sizing,
// eligibility filtering, tie-breaking, and the adaptive <= best-fixed
// invariant CI gates on).
#include "codec/codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "codec/block_codec.h"
#include "util/rng.h"
#include "workload/corpus.h"

namespace gc = griffin::codec;

namespace {

std::vector<gc::DocId> uniform_docids(std::uint64_t n, gc::DocId universe,
                                      std::uint64_t seed) {
  griffin::util::Xoshiro256 rng(seed);
  return griffin::workload::make_uniform_list(n, universe, rng);
}

/// A repetitive-gap list: long runs of identical strides — the structure
/// Re-Pair's grammar collapses.
std::vector<gc::DocId> repetitive_docids(std::uint64_t n, std::uint64_t seed) {
  griffin::util::Xoshiro256 rng(seed);
  std::vector<gc::DocId> docs;
  docs.reserve(n);
  gc::DocId cur = 0;
  while (docs.size() < n) {
    const std::uint32_t stride = 1 + static_cast<std::uint32_t>(rng.bounded(4));
    const std::uint64_t run = 16 + rng.bounded(64);
    for (std::uint64_t i = 0; i < run && docs.size() < n; ++i) {
      cur += stride;
      docs.push_back(cur);
    }
  }
  return docs;
}

}  // namespace

TEST(CodecZoo, RandomizedPerCodecBlockRoundTrips) {
  // Every codec, several densities and sizes, straddling block boundaries.
  for (const gc::Scheme s : gc::all_schemes()) {
    for (const std::uint64_t n : {3ull, 128ull, 129ull, 1000ull, 4096ull}) {
      for (const gc::DocId universe :
           {static_cast<gc::DocId>(n * 2), static_cast<gc::DocId>(n * 100),
            static_cast<gc::DocId>(n * 3000)}) {
        const auto docs = uniform_docids(n, universe, n * 31 + universe);
        const auto list = gc::BlockCompressedList::build(docs, s);
        // Whole-list decode and per-block decode must both reproduce input.
        std::vector<gc::DocId> out;
        list.decode_all(out);
        ASSERT_EQ(out, docs) << gc::scheme_name(s) << " n=" << n;
        std::vector<gc::DocId> buf(list.block_size());
        for (std::size_t b = 0; b < list.num_blocks(); ++b) {
          const std::uint32_t cnt = list.decode_block(b, buf.data());
          for (std::uint32_t i = 0; i < cnt; ++i) {
            ASSERT_EQ(buf[i], docs[b * list.block_size() + i])
                << gc::scheme_name(s) << " block " << b;
          }
        }
        // Every block header carries the list's scheme tag.
        for (const gc::BlockMeta& m : list.metas()) {
          EXPECT_EQ(m.hdr.scheme, s);
        }
      }
    }
  }
}

TEST(CodecZoo, RePairCompressesRepetitiveLists) {
  const auto docs = repetitive_docids(20'000, 77);
  const auto rp = gc::BlockCompressedList::build(docs, gc::Scheme::kRePair);
  std::vector<gc::DocId> out;
  rp.decode_all(out);
  EXPECT_EQ(out, docs);
  // The grammar must beat the byte-aligned baseline on this shape.
  const auto vb = gc::BlockCompressedList::build(docs, gc::Scheme::kVarByte);
  EXPECT_LT(rp.compressed_bytes(), vb.compressed_bytes());
}

TEST(CodecZoo, BP128WidthFollowsBlockMaxGap) {
  // All-equal gaps of 2^k - 1 need exactly k bits per slot.
  std::vector<gc::DocId> docs;
  gc::DocId cur = 0;
  for (int i = 0; i < 256; ++i) {
    cur += 8;  // gap-1 = 7 -> 3 bits
    docs.push_back(cur);
  }
  const auto list =
      gc::BlockCompressedList::build(docs, gc::Scheme::kBitPack128);
  for (const gc::BlockMeta& m : list.metas()) {
    EXPECT_EQ(m.hdr.b, 3) << "block max gap 7 packs at 3 bits";
  }
  std::vector<gc::DocId> out;
  list.decode_all(out);
  EXPECT_EQ(out, docs);
}

TEST(CodecZoo, Simple16RejectsOversizedGaps) {
  // A d-gap at the 2^28 limit must be rejected with a clear error at build.
  std::vector<gc::DocId> docs{0, (1u << 28) + 1};  // gap-1 == 2^28
  try {
    gc::BlockCompressedList::build(docs, gc::Scheme::kSimple16);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("Simple16"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("adaptive"), std::string::npos);
  }
  // One below the limit is fine.
  std::vector<gc::DocId> ok{0, 1u << 28};  // gap-1 == 2^28 - 1
  const auto list = gc::BlockCompressedList::build(ok, gc::Scheme::kSimple16);
  std::vector<gc::DocId> out;
  list.decode_all(out);
  EXPECT_EQ(out, ok);
}

TEST(CodecZoo, SelectorRoutesOversizedGapsAwayFromSimple16) {
  // Whatever the selector picks for a >28-bit-gap list must build cleanly.
  std::vector<gc::DocId> docs{0, 1, (1u << 29), (1u << 29) + 5, 0xF0000000u};
  const gc::Scheme pick = gc::select_scheme(docs);
  EXPECT_NE(pick, gc::Scheme::kSimple16);
  const auto list = gc::BlockCompressedList::build(docs, pick);
  std::vector<gc::DocId> out;
  list.decode_all(out);
  EXPECT_EQ(out, docs);
}

TEST(CodecZoo, SelectionIsExactlyMinimal) {
  // The selector's pick must match an exhaustive build-and-measure over all
  // eligible schemes (ties to the earlier scheme in kSelectionOrder).
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    for (const std::uint64_t n : {200ull, 2000ull}) {
      const auto docs = uniform_docids(n, static_cast<gc::DocId>(n * 50), seed);
      const gc::Scheme pick = gc::select_scheme(docs);
      const auto picked = gc::BlockCompressedList::build(docs, pick);
      for (const gc::Scheme s : gc::all_schemes()) {
        const auto other = gc::BlockCompressedList::build(docs, s);
        EXPECT_LE(picked.compressed_bytes(), other.compressed_bytes())
            << "pick " << gc::scheme_name(pick) << " vs "
            << gc::scheme_name(s) << " seed " << seed;
      }
    }
  }
  // The repetitive shape must route to the grammar codec.
  const auto rep = repetitive_docids(5'000, 11);
  EXPECT_EQ(gc::select_scheme(rep), gc::Scheme::kRePair);
}

TEST(CodecZoo, AnalyzeListShape) {
  std::vector<gc::DocId> docs{10, 20, 30, 40, 50};  // gaps all 10
  const gc::ListShape shape = gc::analyze_list(docs);
  EXPECT_EQ(shape.length, 5u);
  EXPECT_DOUBLE_EQ(shape.density, 5.0 / 41.0);
  EXPECT_DOUBLE_EQ(shape.gap_repeat_fraction, 1.0);  // all gaps equal
  EXPECT_EQ(shape.max_gap_bits, 4u);                 // gap-1 = 9 -> 4 bits
}

TEST(CodecZoo, TaggedHeaderViews) {
  const gc::PForHeader ph{7, 3, 42};
  const gc::BlockHeader hp = gc::BlockHeader::from_pfor(ph);
  EXPECT_EQ(hp.scheme, gc::Scheme::kPForDelta);
  EXPECT_EQ(hp.pfor().b, 7);
  EXPECT_EQ(hp.pfor().n_exceptions, 3);
  EXPECT_EQ(hp.pfor().first_exception, 42);

  const gc::EFHeader eh{5, 9};
  const gc::BlockHeader he = gc::BlockHeader::from_ef(eh);
  EXPECT_EQ(he.scheme, gc::Scheme::kEliasFano);
  EXPECT_EQ(he.ef().b, 5);
  EXPECT_EQ(he.ef().hb_words, 9u);
}

TEST(CodecZoo, RegistryCoversEveryScheme) {
  for (const gc::Scheme s : gc::all_schemes()) {
    const gc::PostingCodec& c = gc::codec_for(s);
    EXPECT_EQ(c.scheme(), s);
    EXPECT_FALSE(std::string(c.name()).empty());
  }
}
