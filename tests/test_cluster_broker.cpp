// The load-bearing cluster guarantee: a broker over N document-partitioned
// shards answers every query with exactly the same (doc, score) top-k as a
// single HybridEngine over the unpartitioned index — for both partitioning
// strategies, swept over N ∈ {1, 2, 4, 8}. Scores are compared bit-exactly:
// shards carry global statistics (index/shard.h) and all engines score in
// the query's term order, so nothing is allowed to drift.
#include "cluster/broker.h"

#include <gtest/gtest.h>

#include "engine_test_util.h"

using namespace griffin;

namespace {

std::vector<core::Query> equivalence_log(const index::InvertedIndex& idx,
                                         std::uint32_t n, std::uint64_t seed) {
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = n;
  qcfg.seed = seed;
  return workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));
}

void expect_identical_topk(const std::vector<core::ScoredDoc>& got,
                           const std::vector<core::ScoredDoc>& want,
                           const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << label << " rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << label << " rank " << i;
  }
}

}  // namespace

TEST(ClusterBroker, ScatterGatherEqualsSingleNodeSweep) {
  const auto& idx = testutil::small_index();
  core::HybridEngine single(idx);
  const auto log = equivalence_log(idx, 40, 91);

  for (const auto strategy : {cluster::PartitionStrategy::kRoundRobin,
                              cluster::PartitionStrategy::kRange}) {
    for (const std::uint32_t n : {1u, 2u, 4u, 8u}) {
      cluster::ClusterConfig cfg;
      cfg.num_shards = n;
      cfg.partition = strategy;
      cfg.replicas_per_shard = 1;
      cluster::ClusterBroker broker(idx, cfg);
      const std::string label =
          cluster::strategy_name(strategy) + "/N=" + std::to_string(n);
      for (const auto& q : log) {
        const auto got = broker.execute(q);
        const auto want = single.execute(q);
        expect_identical_topk(got.topk, want.topk, label);
        EXPECT_EQ(got.metrics.result_count, want.metrics.result_count)
            << label;
      }
    }
  }
}

TEST(ClusterBroker, MatchesBruteForceReference) {
  const auto& idx = testutil::small_index();
  cluster::ClusterConfig cfg;
  cfg.num_shards = 4;
  cluster::ClusterBroker broker(idx, cfg);
  for (const auto& q : equivalence_log(idx, 15, 92)) {
    const auto got = broker.execute(q);
    const auto want = testutil::reference_topk(idx, q);
    testutil::expect_same_topk(got.topk, want, "cluster-vs-reference");
  }
}

TEST(ClusterBroker, AbsentTermShardsShortCircuit) {
  // Term 1 lives entirely on the upper range shard; shard 0 must answer
  // empty at dictionary-lookup cost, and the merged result must still be
  // exactly the single-node answer.
  index::InvertedIndex idx(codec::Scheme::kEliasFano);
  idx.docs().resize(100);
  for (index::DocId d = 0; d < 100; ++d) idx.docs().set_length(d, 20);
  std::vector<index::DocId> l0, l1;
  for (index::DocId d = 0; d < 100; d += 2) l0.push_back(d);
  for (index::DocId d = 60; d < 100; d += 3) l1.push_back(d);
  idx.add_list(l0);
  idx.add_list(l1);

  cluster::ClusterConfig cfg;
  cfg.num_shards = 2;
  cfg.partition = cluster::PartitionStrategy::kRange;
  cluster::ClusterBroker broker(idx, cfg);

  core::Query q;
  q.terms = {0, 1};
  q.k = 10;

  const auto part = broker.node(0).execute(q);
  EXPECT_TRUE(part.topk.empty());
  EXPECT_EQ(part.metrics.total, broker.node(0).absent_term_cost());
  EXPECT_EQ(part.metrics.total,
            sim::Duration::from_us(sim::HardwareSpec{}.absent_term_probe_us));

  core::HybridEngine single(idx);
  const auto got = broker.execute(q);
  const auto want = single.execute(q);
  expect_identical_topk(got.topk, want.topk, "absent-term");
}

TEST(ClusterBroker, MergeTopkOrdersAndTruncates) {
  const std::vector<std::vector<core::ScoredDoc>> parts = {
      {{10, 5.0f}, {11, 3.0f}},
      {{20, 4.0f}, {21, 3.0f}},
      {},
  };
  const auto merged = cluster::merge_topk(parts, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].doc, 10u);
  EXPECT_EQ(merged[1].doc, 20u);
  // Score tie at 3.0: ascending doc id breaks it, same as cpu::top_k.
  EXPECT_EQ(merged[2].doc, 11u);

  const auto all = cluster::merge_topk(parts, 10);
  EXPECT_EQ(all.size(), 4u);
}

TEST(ClusterBroker, UntimedMetricsModelParallelFanout) {
  const auto& idx = testutil::small_index();
  cluster::ClusterConfig cfg;
  cfg.num_shards = 4;
  cluster::ClusterBroker broker(idx, cfg);
  core::Query q;
  q.terms = {3, 9};
  q.k = 10;
  const auto res = broker.execute(q);
  // The broker charges the slowest shard plus network + merge, so the
  // fan-out must cost at least the network round trip and at most the sum
  // of all shard times plus overheads.
  EXPECT_GE(res.metrics.total, cfg.net_rtt);
  sim::Duration sum;
  for (std::uint32_t s = 0; s < broker.num_shards(); ++s) {
    sum += broker.node(s).execute(q).metrics.total;
  }
  EXPECT_LE(res.metrics.total,
            sum + cfg.net_rtt + cfg.merge_per_shard * 4.0);
}
