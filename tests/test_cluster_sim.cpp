// Timed cluster behavior: seeded determinism, hedged requests beating
// injected stragglers at the tail, and the broker result cache absorbing a
// Zipf-skewed query stream.
#include "cluster/broker.h"

#include <gtest/gtest.h>

#include "engine_test_util.h"

using namespace griffin;

namespace {

std::vector<core::Query> sim_log(const index::InvertedIndex& idx,
                                 std::uint32_t n, std::uint64_t seed) {
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = n;
  qcfg.seed = seed;
  return workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));
}

cluster::ClusterConfig base_config() {
  cluster::ClusterConfig cfg;
  cfg.num_shards = 4;
  cfg.replicas_per_shard = 2;
  cfg.arrival_qps = 150.0;
  cfg.seed = 7;
  return cfg;
}

}  // namespace

TEST(ClusterSim, DeterministicPerSeed) {
  const auto& idx = testutil::small_index();
  const auto log = sim_log(idx, 120, 61);
  auto cfg = base_config();
  cfg.hedge.enabled = true;
  cfg.cache_capacity = 64;
  cfg.straggler.probability = 0.05;

  cluster::ClusterBroker a(idx, cfg);
  cluster::ClusterBroker b(idx, cfg);
  const auto ra = a.run(log);
  const auto rb = b.run(log);
  EXPECT_DOUBLE_EQ(ra.response_ms.mean(), rb.response_ms.mean());
  EXPECT_DOUBLE_EQ(ra.response_ms.percentile(99),
                   rb.response_ms.percentile(99));
  EXPECT_EQ(ra.hedge.issued, rb.hedge.issued);
  EXPECT_EQ(ra.hedge.won, rb.hedge.won);
  EXPECT_EQ(ra.cache.hits, rb.cache.hits);
  ASSERT_EQ(ra.shard_utilization.size(), rb.shard_utilization.size());
  for (std::size_t s = 0; s < ra.shard_utilization.size(); ++s) {
    EXPECT_DOUBLE_EQ(ra.shard_utilization[s], rb.shard_utilization[s]);
  }
}

TEST(ClusterSim, HedgingCutsTailUnderStragglers) {
  const auto& idx = testutil::small_index();
  const auto log = sim_log(idx, 300, 62);

  auto cfg = base_config();
  cfg.straggler.probability = 0.08;
  cfg.straggler.slowdown = 25.0;

  cluster::ClusterBroker plain(idx, cfg);
  const auto without = plain.run(log);

  cfg.hedge.enabled = true;
  cfg.hedge.percentile = 90.0;
  cfg.hedge.min_samples = 40;
  cluster::ClusterBroker hedged(idx, cfg);
  const auto with = hedged.run(log);

  EXPECT_GT(with.hedge.issued, 0u);
  EXPECT_GT(with.hedge.won, 0u);
  // The tail collapses: stragglers get re-served by an idle replica.
  EXPECT_LT(with.response_ms.percentile(99),
            without.response_ms.percentile(99) * 0.8);
  // The median is not made worse by hedging overhead.
  EXPECT_LT(with.response_ms.percentile(50),
            without.response_ms.percentile(50) * 1.2);
}

TEST(ClusterSim, ResultCacheAbsorbsZipfHead) {
  const auto& idx = testutil::small_index();

  workload::QueryLogConfig base;
  base.seed = 63;
  workload::RepeatedLogConfig rep;
  rep.num_queries = 400;
  rep.unique_queries = 50;
  rep.popularity_zipf_s = 1.1;
  rep.seed = 64;
  const auto stream = workload::generate_repeated_query_log(
      base, rep, static_cast<std::uint32_t>(idx.num_terms()));

  auto cfg = base_config();
  cluster::ClusterBroker uncached(idx, cfg);
  const auto cold = uncached.run(stream);

  cfg.cache_capacity = 128;
  cluster::ClusterBroker cached(idx, cfg);
  const auto warm = cached.run(stream);

  EXPECT_EQ(warm.cache.hits + warm.cache.misses, stream.size());
  EXPECT_GT(warm.cache.hit_rate(), 0.3);
  EXPECT_EQ(warm.cache_hits_served, warm.cache.hits);
  // Hits answer in microseconds instead of a full scatter-gather.
  EXPECT_LT(warm.response_ms.mean(), cold.response_ms.mean() * 0.8);
  EXPECT_LT(warm.response_ms.percentile(50), cold.response_ms.percentile(50));
}

TEST(ClusterSim, UtilizationAndDepthAreSane) {
  const auto& idx = testutil::small_index();
  const auto log = sim_log(idx, 150, 65);
  auto cfg = base_config();
  cluster::ClusterBroker broker(idx, cfg);
  const auto res = broker.run(log);

  ASSERT_EQ(res.shard_utilization.size(), 4u);
  for (const double u : res.shard_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
    EXPECT_GT(u, 0.0);  // every shard served work
  }
  EXPECT_GE(res.max_queue_depth, 1u);
  EXPECT_GT(res.horizon.ps(), 0);
  EXPECT_EQ(res.response_ms.count(), log.size());
  // Response includes the network round trip and the critical shard path.
  EXPECT_GE(res.response_ms.percentile(50),
            res.shard_critical_ms.percentile(50));
  EXPECT_GE(res.response_ms.percentile(50), cfg.net_rtt.ms());
}

TEST(ClusterSim, MoreShardsShrinkCriticalServiceTime) {
  // Scaling sanity: with per-shard sub-lists ~1/N the size, the service
  // time of list-bound queries through an idle cluster shrinks as shards
  // are added. Cheap queries are dominated by fixed per-query costs (kernel
  // launches, ranking) that don't shard — and copy/compute overlap
  // (DESIGN.md §10) hides most of what used to scale with list length — so
  // the claim holds for the mean and the tail, not the median.
  const auto& idx = testutil::large_index();
  const auto log = sim_log(idx, 60, 66);
  auto cfg = base_config();
  cfg.arrival_qps = 20.0;  // light load: no queueing, pure service scaling

  cfg.num_shards = 1;
  cluster::ClusterBroker one(idx, cfg);
  const auto r1 = one.run(log);

  cfg.num_shards = 8;
  cluster::ClusterBroker eight(idx, cfg);
  const auto r8 = eight.run(log);

  EXPECT_LT(r8.shard_critical_ms.mean(), r1.shard_critical_ms.mean());
  EXPECT_LT(r8.shard_critical_ms.percentile(90),
            r1.shard_critical_ms.percentile(90) * 0.5);
}
