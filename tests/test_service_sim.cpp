#include "service/service_sim.h"

#include <gtest/gtest.h>

#include "cpu/engine.h"
#include "engine_test_util.h"

using namespace griffin;

namespace {

/// Engine stub with a fixed service time per query id.
class FixedEngine : public core::Engine {
 public:
  explicit FixedEngine(double ms) : ms_(ms) {}
  core::QueryResult execute(const core::Query& q) override {
    core::QueryResult r;
    double ms = ms_;
    if (!q.terms.empty() && q.terms[0] == 999) ms *= 100;  // a "long" query
    r.metrics.total = sim::Duration::from_ms(ms);
    return r;
  }
  std::string name() const override { return "fixed"; }

 private:
  double ms_;
};

std::vector<core::Query> n_queries(std::size_t n) {
  std::vector<core::Query> qs(n);
  for (std::size_t i = 0; i < n; ++i) {
    qs[i].id = i;
    qs[i].terms = {0};
  }
  return qs;
}

}  // namespace

TEST(ServiceSim, LightLoadResponseEqualsService) {
  FixedEngine engine(1.0);  // 1 ms service
  service::ServiceConfig cfg;
  cfg.arrival_qps = 10.0;  // 100 ms between arrivals: no queueing
  const auto res = service::run_service(engine, n_queries(500), cfg);
  EXPECT_NEAR(res.response_ms.mean(), res.service_ms.mean(), 0.05);
  EXPECT_LT(res.utilization, 0.05);
}

TEST(ServiceSim, HeavyLoadAddsQueueingDelay) {
  FixedEngine engine(1.0);
  service::ServiceConfig cfg;
  cfg.arrival_qps = 900.0;  // rho = 0.9: significant queueing
  const auto res = service::run_service(engine, n_queries(2000), cfg);
  EXPECT_GT(res.response_ms.mean(), res.service_ms.mean() * 2.0);
  EXPECT_GT(res.utilization, 0.7);
  EXPECT_GT(res.max_queue_depth, 2u);
}

TEST(ServiceSim, OverloadUtilizationSaturates) {
  FixedEngine engine(1.0);
  service::ServiceConfig cfg;
  cfg.arrival_qps = 5000.0;  // rho = 5: unstable queue
  const auto res = service::run_service(engine, n_queries(1000), cfg);
  EXPECT_GT(res.utilization, 0.95);
  // Response time is dominated by waiting behind the backlog.
  EXPECT_GT(res.response_ms.percentile(99),
            res.service_ms.percentile(99) * 10.0);
}

TEST(ServiceSim, LongQueriesInflateOthersTails) {
  // Head-of-line blocking: one 100 ms query in a stream of 1 ms queries
  // inflates the tail of the *response* distribution, not the service one.
  FixedEngine engine(1.0);
  auto queries = n_queries(1000);
  queries[300].terms = {999};
  service::ServiceConfig cfg;
  cfg.arrival_qps = 500.0;
  const auto res = service::run_service(engine, queries, cfg);
  EXPECT_GT(res.response_ms.percentile(99.9), 50.0);
  EXPECT_LE(res.service_ms.percentile(90), 1.1);
}

TEST(ServiceSim, DeterministicPerSeed) {
  FixedEngine engine(2.0);
  service::ServiceConfig cfg;
  cfg.arrival_qps = 400.0;
  const auto a = service::run_service(engine, n_queries(300), cfg);
  const auto b = service::run_service(engine, n_queries(300), cfg);
  EXPECT_DOUBLE_EQ(a.response_ms.mean(), b.response_ms.mean());
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
}

TEST(ServiceSim, WorksWithRealEngines) {
  const auto& idx = testutil::small_index();
  cpu::CpuEngine engine(idx);
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 40;
  qcfg.seed = 50;
  const auto log = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));
  service::ServiceConfig cfg;
  cfg.arrival_qps = 2000.0;
  const auto res = service::run_service(engine, log, cfg);
  EXPECT_EQ(res.response_ms.count(), log.size());
  EXPECT_GT(res.utilization, 0.0);
}

TEST(ServiceSimEdge, EmptyQuerySetIsWellDefined) {
  service::ServiceConfig cfg;
  const auto res = service::run_service(std::span<const sim::Duration>{}, cfg);
  EXPECT_EQ(res.response_ms.count(), 0u);
  EXPECT_EQ(res.service_ms.count(), 0u);
  EXPECT_DOUBLE_EQ(res.utilization, 0.0);
  EXPECT_EQ(res.max_queue_depth, 0u);
}

TEST(ServiceSimEdge, ZeroQpsDegradesToNoQueueing) {
  // arrival_qps = 0 would mean "no arrivals ever"; the simulator instead
  // caps each gap at one simulated hour, so every query still completes,
  // response equals service, and the server sits essentially idle.
  FixedEngine engine(1.0);
  service::ServiceConfig cfg;
  cfg.arrival_qps = 0.0;
  const auto res = service::run_service(engine, n_queries(100), cfg);
  EXPECT_EQ(res.response_ms.count(), 100u);
  EXPECT_DOUBLE_EQ(res.response_ms.mean(), res.service_ms.mean());
  EXPECT_DOUBLE_EQ(res.response_ms.percentile(99),
                   res.service_ms.percentile(99));
  EXPECT_LT(res.utilization, 1e-5);
  EXPECT_EQ(res.max_queue_depth, 1u);  // only the query being served
}

TEST(ServiceSimEdge, NearZeroQpsDoesNotOverflowTheClock) {
  FixedEngine engine(1.0);
  service::ServiceConfig cfg;
  cfg.arrival_qps = 1e-9;  // a raw exponential gap would overflow int64 ps
  const auto res = service::run_service(engine, n_queries(200), cfg);
  EXPECT_EQ(res.response_ms.count(), 200u);
  for (const double r : res.response_ms.samples()) {
    EXPECT_GE(r, 0.0);  // an overflow would wrap negative
    EXPECT_LE(r, res.service_ms.max() + 1e-9);
  }
  EXPECT_GE(res.utilization, 0.0);
  EXPECT_LE(res.utilization, 1.0);
}

TEST(ServiceSimEdge, UtilizationAndDepthConsistentWithPercentiles) {
  FixedEngine engine(1.0);
  // Light load: nobody waits, so depth stays at 1, utilization is small,
  // and the response percentiles coincide with the service percentiles.
  {
    service::ServiceConfig cfg;
    cfg.arrival_qps = 1.0;
    const auto res = service::run_service(engine, n_queries(500), cfg);
    EXPECT_LE(res.max_queue_depth, 2u);  // rare back-to-back Poisson gaps
    EXPECT_LT(res.utilization, 0.05);
    EXPECT_NEAR(res.response_ms.percentile(99),
                res.service_ms.percentile(99), 0.5);
  }
  // Heavy load: queueing delay shows up in every indicator at once —
  // depth > 1, utilization near 1, and responses dominating service times.
  {
    service::ServiceConfig cfg;
    cfg.arrival_qps = 950.0;
    const auto res = service::run_service(engine, n_queries(2000), cfg);
    EXPECT_GT(res.max_queue_depth, 1u);
    EXPECT_GT(res.utilization, 0.5);
    EXPECT_LE(res.utilization, 1.0);
    EXPECT_GT(res.response_ms.percentile(50),
              res.service_ms.percentile(50));
    // Waiting time consistent with a backlog: the p99 response exceeds the
    // p99 service by at least one extra service time's worth of queueing.
    EXPECT_GT(res.response_ms.percentile(99),
              res.service_ms.percentile(99) + 1.0);
  }
}

TEST(ServiceSimAdmission, UnboundedQueueShedsNothing) {
  FixedEngine engine(1.0);
  service::ServiceConfig cfg;
  cfg.arrival_qps = 5000.0;  // rho = 5, but max_queue_depth = 0 (unbounded)
  const auto res = service::run_service(engine, n_queries(500), cfg);
  EXPECT_EQ(res.faults.shed_queries, 0u);
  EXPECT_EQ(res.response_ms.count(), 500u);
}

TEST(ServiceSimAdmission, OverloadShedsInsteadOfQueueingForever) {
  FixedEngine engine(1.0);
  service::ServiceConfig cfg;
  cfg.arrival_qps = 5000.0;  // rho = 5: the unbounded queue grows linearly
  const auto open = service::run_service(engine, n_queries(2000), cfg);

  cfg.max_queue_depth = 8;
  const auto bounded = service::run_service(engine, n_queries(2000), cfg);

  // Shedding trades answered queries for a bounded response tail.
  EXPECT_GT(bounded.faults.shed_queries, 0u);
  EXPECT_EQ(bounded.response_ms.count() + bounded.faults.shed_queries, 2000u);
  EXPECT_LE(bounded.max_queue_depth, 8u);
  EXPECT_LT(bounded.response_ms.percentile(99),
            open.response_ms.percentile(99));
  // Admitted queries see at most (depth) services of waiting: ~8 ms here.
  EXPECT_LE(bounded.response_ms.max(), 8.0 + 1.0 + 1e-6);
}

TEST(ServiceSimAdmission, LightLoadNeverSheds) {
  FixedEngine engine(1.0);
  service::ServiceConfig cfg;
  cfg.arrival_qps = 10.0;
  cfg.max_queue_depth = 2;
  const auto res = service::run_service(engine, n_queries(500), cfg);
  EXPECT_EQ(res.faults.shed_queries, 0u);
  EXPECT_EQ(res.response_ms.count(), 500u);
}

TEST(ServiceSimAdmission, DepthOneAdmitsOnlyAnIdleServer) {
  FixedEngine engine(1.0);
  service::ServiceConfig cfg;
  cfg.arrival_qps = 2000.0;
  cfg.max_queue_depth = 1;
  const auto res = service::run_service(engine, n_queries(1000), cfg);
  EXPECT_GT(res.faults.shed_queries, 0u);
  // Every admitted query starts immediately: response == service exactly.
  EXPECT_DOUBLE_EQ(res.response_ms.mean(), res.service_ms.mean());
  EXPECT_DOUBLE_EQ(res.response_ms.max(), res.service_ms.max());
  EXPECT_EQ(res.max_queue_depth, 1u);
}

TEST(ServiceSimAdmission, SheddingIsDeterministic) {
  FixedEngine engine(1.5);
  service::ServiceConfig cfg;
  cfg.arrival_qps = 3000.0;
  cfg.max_queue_depth = 4;
  const auto a = service::run_service(engine, n_queries(800), cfg);
  const auto b = service::run_service(engine, n_queries(800), cfg);
  EXPECT_EQ(a.faults.shed_queries, b.faults.shed_queries);
  EXPECT_DOUBLE_EQ(a.response_ms.mean(), b.response_ms.mean());
}
