#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/prefix_sum.h"

namespace gu = griffin::util;

TEST(SummaryStats, MeanVarMinMax) {
  gu::SummaryStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SummaryStats, SingleSample) {
  gu::SummaryStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(PercentileTracker, NearestRank) {
  gu::PercentileTracker t;
  for (int i = 1; i <= 100; ++i) t.add(i);
  EXPECT_DOUBLE_EQ(t.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(t.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(t.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(t.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(t.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(t.median(), 50.0);
  EXPECT_DOUBLE_EQ(t.max(), 100.0);
  EXPECT_NEAR(t.mean(), 50.5, 1e-9);
}

TEST(PercentileTracker, UnsortedInsertOrder) {
  gu::PercentileTracker t;
  for (double x : {5.0, 1.0, 9.0, 3.0, 7.0}) t.add(x);
  EXPECT_DOUBLE_EQ(t.percentile(20), 1.0);
  EXPECT_DOUBLE_EQ(t.percentile(100), 9.0);
  // Adding after a query re-sorts correctly.
  t.add(0.5);
  EXPECT_DOUBLE_EQ(t.percentile(1), 0.5);
}

TEST(PercentileTracker, P999NeedsManySamples) {
  gu::PercentileTracker t;
  for (int i = 0; i < 10000; ++i) t.add(i < 9990 ? 1.0 : 1000.0);
  EXPECT_DOUBLE_EQ(t.percentile(99.0), 1.0);
  EXPECT_DOUBLE_EQ(t.percentile(99.9), 1000.0);
}

TEST(LogHistogram, BucketsAndCdf) {
  gu::LogHistogram h(1.0, 1000.0, 10.0);
  // Buckets: [0,1), [1,10), [10,100), [100,1000), [1000,inf)
  h.add(0.5);
  h.add(2.0);
  h.add(20.0);
  h.add(200.0);
  h.add(2000.0);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_DOUBLE_EQ(h.cdf(0), 0.2);
  EXPECT_DOUBLE_EQ(h.cdf(1), 0.4);
  EXPECT_DOUBLE_EQ(h.cdf(h.bucket_count() - 1), 1.0);
}

TEST(PrefixSum, InclusiveExclusive) {
  std::vector<int> v{1, 2, 3, 4};
  gu::inclusive_scan_inplace(std::span<int>(v));
  EXPECT_EQ(v, (std::vector<int>{1, 3, 6, 10}));

  std::vector<int> w{1, 2, 3, 4};
  const int total = gu::exclusive_scan_inplace(std::span<int>(w));
  EXPECT_EQ(total, 10);
  EXPECT_EQ(w, (std::vector<int>{0, 1, 3, 6}));

  std::vector<int> empty;
  EXPECT_EQ(gu::exclusive_scan_inplace(std::span<int>(empty)), 0);
}
