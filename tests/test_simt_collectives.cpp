#include "simt/collectives.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.h"

namespace gs = griffin::simt;

namespace {

std::vector<std::uint32_t> run_inclusive_scan(std::vector<std::uint32_t> data,
                                              std::uint32_t block_dim) {
  gs::Device dev;
  std::vector<std::uint32_t> result;
  gs::launch(dev, {1, block_dim}, [&](gs::Block& blk) {
    auto sh = blk.shared<std::uint32_t>(data.size());
    std::copy(data.begin(), data.end(), sh.begin());
    gs::block_inclusive_scan(blk, sh);
    result.assign(sh.begin(), sh.end());
  });
  return result;
}

std::vector<std::uint32_t> reference_inclusive(std::vector<std::uint32_t> v) {
  std::partial_sum(v.begin(), v.end(), v.begin());
  return v;
}

}  // namespace

class ScanTest : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(ScanTest, MatchesReference) {
  const auto [n, dim] = GetParam();
  griffin::util::Xoshiro256 rng(n * 31 + dim);
  std::vector<std::uint32_t> data(n);
  for (auto& x : data) x = static_cast<std::uint32_t>(rng.bounded(100));
  EXPECT_EQ(run_inclusive_scan(data, dim), reference_inclusive(data));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScanTest,
    ::testing::Combine(::testing::Values(1, 2, 13, 32, 100, 128, 129, 1000),
                       ::testing::Values(32u, 128u, 256u)));

TEST(Collectives, ExclusiveScanAndTotal) {
  gs::Device dev;
  std::vector<std::uint32_t> data{3, 1, 4, 1, 5, 9, 2, 6};
  std::uint32_t total = 0;
  std::vector<std::uint32_t> result;
  gs::launch(dev, {1, 64}, [&](gs::Block& blk) {
    auto sh = blk.shared<std::uint32_t>(data.size());
    std::copy(data.begin(), data.end(), sh.begin());
    total = gs::block_exclusive_scan(blk, sh);
    result.assign(sh.begin(), sh.end());
  });
  EXPECT_EQ(total, 31u);
  EXPECT_EQ(result, (std::vector<std::uint32_t>{0, 3, 4, 8, 9, 14, 23, 25}));
}

TEST(Collectives, ReduceSum) {
  gs::Device dev;
  griffin::util::Xoshiro256 rng(17);
  for (const std::size_t n : {1u, 5u, 64u, 100u, 1000u}) {
    for (const std::uint32_t dim : {32u, 96u, 128u}) {  // incl. non-pow2 dim
      std::vector<std::uint32_t> data(n);
      std::uint64_t expect = 0;
      for (auto& x : data) {
        x = static_cast<std::uint32_t>(rng.bounded(1000));
        expect += x;
      }
      std::uint64_t got = 0;
      gs::launch(dev, {1, dim}, [&](gs::Block& blk) {
        auto sh = blk.shared<std::uint32_t>(n);
        std::copy(data.begin(), data.end(), sh.begin());
        got = gs::block_reduce_sum(blk, sh);
      });
      EXPECT_EQ(got, expect) << "n=" << n << " dim=" << dim;
    }
  }
}

TEST(Collectives, ScanChargesLogDepthBarriers) {
  gs::Device dev;
  const auto stats = gs::launch(dev, {1, 128}, [&](gs::Block& blk) {
    auto sh = blk.shared<std::uint32_t>(128);
    gs::block_inclusive_scan(blk, sh);
  });
  // Hillis-Steele over 128 threads: 7 doubling rounds plus the chunk phases.
  EXPECT_GE(stats.barriers, 8u);
  EXPECT_GT(stats.shared_accesses, 0u);
}
