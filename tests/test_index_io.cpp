#include "index/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "codec/codec.h"
#include "util/rng.h"
#include "workload/corpus.h"

using namespace griffin;

namespace {
std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}
}  // namespace

TEST(IndexIO, RoundTripPreservesEverything) {
  workload::CorpusConfig cfg;
  cfg.num_docs = 30'000;
  cfg.num_terms = 40;
  cfg.seed = 9;
  const auto idx = workload::generate_corpus(cfg);

  const std::string path = temp_path("griffin_test_index.bin");
  index::save_index(idx, path);
  const auto loaded = index::load_index(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.scheme(), idx.scheme());
  EXPECT_EQ(loaded.block_size(), idx.block_size());
  EXPECT_EQ(loaded.num_terms(), idx.num_terms());
  EXPECT_EQ(loaded.docs().num_docs(), idx.docs().num_docs());
  EXPECT_EQ(loaded.total_postings(), idx.total_postings());
  EXPECT_EQ(loaded.compressed_docid_bytes(), idx.compressed_docid_bytes());
  for (index::DocId d = 0; d < idx.docs().num_docs(); d += 997) {
    EXPECT_EQ(loaded.docs().length(d), idx.docs().length(d));
  }
  for (index::TermId t = 0; t < idx.num_terms(); ++t) {
    std::vector<index::DocId> a, b;
    idx.list(t).docids.decode_all(a);
    loaded.list(t).docids.decode_all(b);
    ASSERT_EQ(a, b) << "term " << t;
    ASSERT_EQ(loaded.list(t).freqs, idx.list(t).freqs) << "term " << t;
  }
}

TEST(IndexIO, PForSchemeRoundTrips) {
  workload::CorpusConfig cfg;
  cfg.num_docs = 10'000;
  cfg.num_terms = 10;
  cfg.scheme = codec::Scheme::kPForDelta;
  const auto idx = workload::generate_corpus(cfg);
  const std::string path = temp_path("griffin_test_index_pfor.bin");
  index::save_index(idx, path);
  const auto loaded = index::load_index(path);
  std::remove(path.c_str());
  std::vector<index::DocId> a, b;
  idx.list(3).docids.decode_all(a);
  loaded.list(3).docids.decode_all(b);
  EXPECT_EQ(a, b);
}

TEST(IndexIO, MixedSchemeRoundTrip) {
  // One list per codec (explicitly forced) plus one adaptively selected —
  // the v3 format must preserve each list's own scheme and the index's
  // adaptive policy flag.
  index::InvertedIndex idx(index::CodecPolicy{codec::Scheme::kEliasFano, true});
  util::Xoshiro256 rng(21);
  for (const codec::Scheme s : codec::all_schemes()) {
    const auto docs = workload::make_uniform_list(700, 40'000, rng);
    const std::vector<std::uint32_t> freqs(docs.size(), 2);
    idx.add_list_as(s, docs, freqs);
  }
  idx.add_list(workload::make_uniform_list(700, 40'000, rng));
  idx.docs().resize(40'000);
  for (index::DocId d = 0; d < 40'000; ++d) idx.docs().set_length(d, d % 7);

  const std::string path = temp_path("griffin_test_index_mixed.bin");
  index::save_index(idx, path);
  const auto loaded = index::load_index(path);
  std::remove(path.c_str());

  EXPECT_TRUE(loaded.adaptive());
  EXPECT_EQ(loaded.scheme(), codec::Scheme::kEliasFano);
  ASSERT_EQ(loaded.num_terms(), idx.num_terms());
  for (index::TermId t = 0; t < idx.num_terms(); ++t) {
    EXPECT_EQ(loaded.list(t).docids.scheme(), idx.list(t).docids.scheme())
        << "term " << t;
    std::vector<index::DocId> a, b;
    idx.list(t).docids.decode_all(a);
    loaded.list(t).docids.decode_all(b);
    ASSERT_EQ(a, b) << "term " << t;
    ASSERT_EQ(loaded.list(t).freqs, idx.list(t).freqs) << "term " << t;
  }
}

namespace {

/// The exact in-memory block metadata struct v2 files were written with
/// (raw fwrite, padding included).
struct LegacyMetaV2 {
  index::DocId first = 0;
  index::DocId last = 0;
  std::uint64_t bit_offset = 0;
  std::uint16_t count = 0;
  codec::PForHeader pfor;
  codec::EFHeader ef;
};
static_assert(sizeof(LegacyMetaV2) == 32);

template <typename T>
void put(std::FILE* f, const T& v) {
  ASSERT_EQ(std::fwrite(&v, 1, sizeof(T), f), sizeof(T));
}

/// Hand-writes a v2 (single-scheme, raw-meta) index file holding one list.
void write_legacy_v2_file(const std::string& path, codec::Scheme scheme,
                          const codec::BlockCompressedList& list,
                          const std::vector<std::uint8_t>& freqs,
                          std::uint64_t ndocs) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  put<std::uint64_t>(f, 0x4752494646494E31ull);  // magic
  put<std::uint32_t>(f, 2);                      // version: legacy
  put<std::uint8_t>(f, static_cast<std::uint8_t>(scheme));
  put<std::uint32_t>(f, list.block_size());
  put<std::uint64_t>(f, ndocs);
  for (std::uint64_t d = 0; d < ndocs; ++d) {
    put<std::uint32_t>(f, static_cast<std::uint32_t>(d % 5));
  }
  put<std::uint64_t>(f, 1);  // one term
  put<std::uint64_t>(f, list.size());
  put<std::uint64_t>(f, list.blob().size());
  ASSERT_EQ(std::fwrite(list.blob().data(), 8, list.blob().size(), f),
            list.blob().size());
  put<std::uint64_t>(f, list.metas().size());
  for (const codec::BlockMeta& m : list.metas()) {
    LegacyMetaV2 l;
    l.first = m.first;
    l.last = m.last;
    l.bit_offset = m.bit_offset;
    l.count = m.count;
    if (scheme == codec::Scheme::kPForDelta) l.pfor = m.hdr.pfor();
    if (scheme == codec::Scheme::kEliasFano) l.ef = m.hdr.ef();
    put(f, l);
  }
  put<std::uint64_t>(f, freqs.size());
  ASSERT_EQ(std::fwrite(freqs.data(), 1, freqs.size(), f), freqs.size());
  std::fclose(f);
}

}  // namespace

TEST(IndexIO, LoadsLegacyV2SingleSchemeFile) {
  // Old single-scheme indexes (written before the tagged-header format) must
  // still load: the reader upgrades each raw v2 meta into a tagged header.
  util::Xoshiro256 rng(5);
  const auto docs = workload::make_uniform_list(900, 60'000, rng);
  const std::vector<std::uint8_t> freqs(docs.size(), 1);
  for (const codec::Scheme s :
       {codec::Scheme::kEliasFano, codec::Scheme::kPForDelta}) {
    const auto list = codec::BlockCompressedList::build(docs, s);
    const std::string path = temp_path("griffin_test_index_v2.bin");
    write_legacy_v2_file(path, s, list, freqs, 100);
    const auto loaded = index::load_index(path);
    std::remove(path.c_str());
    EXPECT_EQ(loaded.scheme(), s);
    EXPECT_FALSE(loaded.adaptive());
    ASSERT_EQ(loaded.num_terms(), 1u);
    EXPECT_EQ(loaded.list(0).docids.scheme(), s);
    std::vector<index::DocId> got;
    loaded.list(0).docids.decode_all(got);
    EXPECT_EQ(got, docs) << codec::scheme_name(s);
    EXPECT_EQ(loaded.docs().num_docs(), 100u);
    EXPECT_EQ(loaded.docs().length(7), 2u);
  }
}

TEST(IndexIO, MissingFileThrows) {
  EXPECT_THROW(index::load_index("/nonexistent/griffin.bin"),
               std::runtime_error);
}

TEST(IndexIO, CorruptMagicThrows) {
  const std::string path = temp_path("griffin_test_corrupt.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[64] = "not an index";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_THROW(index::load_index(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(IndexIO, TruncatedFileThrows) {
  workload::CorpusConfig cfg;
  cfg.num_docs = 5'000;
  cfg.num_terms = 5;
  const auto idx = workload::generate_corpus(cfg);
  const std::string path = temp_path("griffin_test_trunc.bin");
  index::save_index(idx, path);
  // Truncate to half.
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  EXPECT_THROW(index::load_index(path), std::runtime_error);
  std::remove(path.c_str());
}
