#include "index/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "workload/corpus.h"

using namespace griffin;

namespace {
std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}
}  // namespace

TEST(IndexIO, RoundTripPreservesEverything) {
  workload::CorpusConfig cfg;
  cfg.num_docs = 30'000;
  cfg.num_terms = 40;
  cfg.seed = 9;
  const auto idx = workload::generate_corpus(cfg);

  const std::string path = temp_path("griffin_test_index.bin");
  index::save_index(idx, path);
  const auto loaded = index::load_index(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.scheme(), idx.scheme());
  EXPECT_EQ(loaded.block_size(), idx.block_size());
  EXPECT_EQ(loaded.num_terms(), idx.num_terms());
  EXPECT_EQ(loaded.docs().num_docs(), idx.docs().num_docs());
  EXPECT_EQ(loaded.total_postings(), idx.total_postings());
  EXPECT_EQ(loaded.compressed_docid_bytes(), idx.compressed_docid_bytes());
  for (index::DocId d = 0; d < idx.docs().num_docs(); d += 997) {
    EXPECT_EQ(loaded.docs().length(d), idx.docs().length(d));
  }
  for (index::TermId t = 0; t < idx.num_terms(); ++t) {
    std::vector<index::DocId> a, b;
    idx.list(t).docids.decode_all(a);
    loaded.list(t).docids.decode_all(b);
    ASSERT_EQ(a, b) << "term " << t;
    ASSERT_EQ(loaded.list(t).freqs, idx.list(t).freqs) << "term " << t;
  }
}

TEST(IndexIO, PForSchemeRoundTrips) {
  workload::CorpusConfig cfg;
  cfg.num_docs = 10'000;
  cfg.num_terms = 10;
  cfg.scheme = codec::Scheme::kPForDelta;
  const auto idx = workload::generate_corpus(cfg);
  const std::string path = temp_path("griffin_test_index_pfor.bin");
  index::save_index(idx, path);
  const auto loaded = index::load_index(path);
  std::remove(path.c_str());
  std::vector<index::DocId> a, b;
  idx.list(3).docids.decode_all(a);
  loaded.list(3).docids.decode_all(b);
  EXPECT_EQ(a, b);
}

TEST(IndexIO, MissingFileThrows) {
  EXPECT_THROW(index::load_index("/nonexistent/griffin.bin"),
               std::runtime_error);
}

TEST(IndexIO, CorruptMagicThrows) {
  const std::string path = temp_path("griffin_test_corrupt.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[64] = "not an index";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_THROW(index::load_index(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(IndexIO, TruncatedFileThrows) {
  workload::CorpusConfig cfg;
  cfg.num_docs = 5'000;
  cfg.num_terms = 5;
  const auto idx = workload::generate_corpus(cfg);
  const std::string path = temp_path("griffin_test_trunc.bin");
  index::save_index(idx, path);
  // Truncate to half.
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  EXPECT_THROW(index::load_index(path), std::runtime_error);
  std::remove(path.c_str());
}
