#include "gpu/engine.h"

#include <gtest/gtest.h>

#include <string>

#include "codec/codec.h"
#include "engine_test_util.h"

using namespace griffin;

TEST(GpuEngine, MatchesReferenceOnQueryLog) {
  const auto& idx = testutil::small_index();
  gpu::GpuEngine engine(idx);

  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 40;
  qcfg.seed = 32;
  const auto log = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));
  for (const auto& q : log) {
    const auto got = engine.execute(q);
    const auto want = testutil::reference_topk(idx, q);
    testutil::expect_same_topk(got.topk, want, "gpu");
  }
}

TEST(GpuEngine, SingleTermQuery) {
  const auto& idx = testutil::small_index();
  gpu::GpuEngine engine(idx);
  core::Query q;
  q.terms = {280};
  const auto got = engine.execute(q);
  const auto want = testutil::reference_topk(idx, q);
  testutil::expect_same_topk(got.topk, want, "gpu-single");
}

TEST(GpuEngine, AllStepsRunOnGpu) {
  const auto& idx = testutil::small_index();
  gpu::GpuEngine engine(idx);
  core::Query q;
  q.terms = {1, 10, 100};
  const auto res = engine.execute(q);
  EXPECT_EQ(res.metrics.placements.size(), 2u);
  for (const auto p : res.metrics.placements) {
    EXPECT_EQ(p, core::Placement::kGpu);
  }
  EXPECT_GT(res.metrics.gpu_kernels, 0u);
  EXPECT_GT(res.metrics.transfer.ps(), 0);
  EXPECT_GT(res.metrics.decode.ps(), 0);
  EXPECT_GT(res.metrics.intersect.ps(), 0);
  EXPECT_GT(res.metrics.rank.ps(), 0);  // ranking still happens, on CPU
}

TEST(GpuEngine, DeviceMemoryReleasedBetweenQueries) {
  const auto& idx = testutil::small_index();
  gpu::GpuEngine engine(idx);
  core::Query q;
  q.terms = {0, 1};  // the two biggest lists
  engine.execute(q);
  const auto used_after_first = engine.executor().device().used();
  for (int i = 0; i < 5; ++i) engine.execute(q);
  // No growth across repeated queries: buffers are per-query RAII.
  EXPECT_LE(engine.executor().device().used(), used_after_first + 1024);
}

TEST(GpuEngine, HighRatioQueryUsesBinaryPath) {
  const auto& idx = testutil::small_index();
  // Rarest term vs most frequent: ratio far above 128 => the binary-search
  // path uploads only candidate blocks, so transferred payload stays small.
  gpu::GpuEngine engine(idx);
  core::Query q;
  q.terms = {static_cast<index::TermId>(idx.num_terms() - 1), 0};
  const auto res = engine.execute(q);
  const auto want = testutil::reference_topk(idx, q);
  testutil::expect_same_topk(res.topk, want, "gpu-high-ratio");
}

TEST(GpuEngine, HandlesEveryCodecScheme) {
  // The device decode layer dispatches per list scheme, so the GPU engine
  // no longer demands an EF index: every codec must produce the reference
  // top-k (serial-fallback codecs just pay more simulated time).
  workload::CorpusConfig cfg = testutil::small_corpus_config();
  cfg.num_docs = 5000;
  cfg.num_terms = 20;
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 10;
  qcfg.seed = 33;
  const auto log = workload::generate_query_log(qcfg, cfg.num_terms);
  for (const codec::Scheme s : codec::all_schemes()) {
    cfg.scheme = s;
    const auto idx = workload::generate_corpus(cfg);
    gpu::GpuEngine engine(idx);
    for (const auto& q : log) {
      const auto got = engine.execute(q);
      const auto want = testutil::reference_topk(idx, q);
      const std::string tag = std::string("gpu-") + codec::scheme_name(s);
      testutil::expect_same_topk(got.topk, want, tag.c_str());
    }
  }
}
