// MergePath intersection (paper §3.1.2, Figures 5-6): exactness against
// std::set_intersection across sizes/ratios, the paper's worked example, and
// the load-balance property the partitioning exists to provide.
#include "gpu/mergepath.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"
#include "workload/corpus.h"

namespace gg = griffin::gpu;
using griffin::codec::DocId;

namespace {

struct Gpu {
  griffin::simt::Device dev;
  griffin::pcie::Link link;
  griffin::pcie::TransferLedger ledger;

  griffin::simt::DeviceBuffer<DocId> up(std::span<const DocId> v) {
    auto buf = dev.alloc<DocId>(std::max<std::size_t>(v.size(), 1));
    dev.upload(buf, v);
    return buf;
  }
};

std::vector<DocId> reference(std::span<const DocId> a,
                             std::span<const DocId> b) {
  std::vector<DocId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<DocId> run_mergepath(Gpu& g, std::span<const DocId> a,
                                 std::span<const DocId> b,
                                 griffin::sim::KernelStats* stats = nullptr) {
  auto da = g.up(a);
  auto db = g.up(b);
  auto r = gg::mergepath_intersect(g.dev, da, a.size(), db, b.size(), g.link,
                                   g.ledger);
  if (stats != nullptr) *stats = r.stats;
  std::vector<DocId> host(r.count);
  g.dev.download(std::span<DocId>(host), r.result);
  return host;
}

}  // namespace

TEST(MergePath, PaperFigure6Example) {
  // A = (1,3,4,6,7,9,15,25,31), B = (1,3,7,10,18,25,31) -> (1,3,7,25,31).
  Gpu g;
  const std::vector<DocId> a{1, 3, 4, 6, 7, 9, 15, 25, 31};
  const std::vector<DocId> b{1, 3, 7, 10, 18, 25, 31};
  EXPECT_EQ(run_mergepath(g, a, b), (std::vector<DocId>{1, 3, 7, 25, 31}));
}

TEST(MergePath, EmptyInputs) {
  Gpu g;
  const std::vector<DocId> a{1, 2, 3};
  const std::vector<DocId> empty;
  EXPECT_TRUE(run_mergepath(g, a, empty).empty());
  EXPECT_TRUE(run_mergepath(g, empty, a).empty());
}

TEST(MergePath, IdenticalLists) {
  Gpu g;
  griffin::util::Xoshiro256 rng(2);
  const auto a = griffin::workload::make_uniform_list(5000, 1'000'000, rng);
  EXPECT_EQ(run_mergepath(g, a, a), a);
}

TEST(MergePath, DisjointLists) {
  Gpu g;
  std::vector<DocId> a, b;
  for (DocId i = 0; i < 3000; ++i) {
    a.push_back(2 * i);
    b.push_back(2 * i + 1);
  }
  EXPECT_TRUE(run_mergepath(g, a, b).empty());
}

TEST(MergePath, EqualPairsAtPartitionBoundaries) {
  // Dense identical elements stress the boundary-nudge logic: every element
  // matches, partitions fall wherever the diagonals land.
  Gpu g;
  std::vector<DocId> a;
  for (DocId i = 0; i < 10'000; ++i) a.push_back(i * 3);
  std::vector<DocId> b = a;
  // Perturb b slightly so some match and some don't, densely.
  for (std::size_t i = 0; i < b.size(); i += 7) b[i] += 1;
  EXPECT_EQ(run_mergepath(g, a, b), reference(a, b));
}

class MergePathParam
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(MergePathParam, MatchesReference) {
  const auto [longer, ratio, containment] = GetParam();
  griffin::util::Xoshiro256 rng(longer + static_cast<int>(ratio * 100));
  const auto pair = griffin::workload::make_pair_with_ratio(
      longer, ratio, 50'000'000, containment, rng);
  Gpu g;
  EXPECT_EQ(run_mergepath(g, pair.shorter, pair.longer),
            reference(pair.shorter, pair.longer));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergePathParam,
    ::testing::Combine(::testing::Values(100, 1023, 1024, 1025, 60000),
                       ::testing::Values(1.0, 3.0, 15.0),
                       ::testing::Values(0.0, 0.4, 1.0)));

TEST(MergePath, LoadBalancedWorkAcrossWarps) {
  // The core claim of MergePath: partitions are even, so per-warp work is
  // too. Compare counted warp cycles against the ideal (total/warps): the
  // max imbalance should be small.
  Gpu g;
  griffin::util::Xoshiro256 rng(77);
  // Heavily skewed value distribution (clustered) — naive static
  // partitioning by index would be fine, but partitioning by value (as
  // binary-search-per-thread schemes do) would be terrible.
  std::vector<DocId> a, b;
  DocId d = 0;
  for (int i = 0; i < 100'000; ++i) {
    d += (i < 50'000) ? 1 : 1000;  // half dense, half sparse
    a.push_back(d);
    if (rng.uniform01() < 0.5) b.push_back(d + (i % 2));
  }
  b.erase(std::unique(b.begin(), b.end()), b.end());

  griffin::sim::KernelStats stats;
  const auto got = run_mergepath(g, a, b, &stats);
  EXPECT_EQ(got, reference(a, b));
  // Sanity on the counted work: merge stage dominates and scales with n.
  EXPECT_GT(stats.warp_cycles, 1000.0);
}

TEST(MergePath, CountsTransfersForOffsetsRoundTrip) {
  Gpu g;
  griffin::util::Xoshiro256 rng(3);
  const auto a = griffin::workload::make_uniform_list(4000, 400'000, rng);
  const auto b = griffin::workload::make_uniform_list(4000, 400'000, rng);
  run_mergepath(g, a, b);
  EXPECT_GT(g.ledger.transfers, 0u);
  EXPECT_GT(g.ledger.allocs, 0u);
  EXPECT_GT(g.ledger.total.ps(), 0);
}
