#include "codec/pfordelta.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gc = griffin::codec;

namespace {
std::vector<std::uint32_t> roundtrip(std::span<const std::uint32_t> values) {
  std::vector<std::uint64_t> blob;
  std::uint64_t pos = 0;
  const gc::PForHeader hdr = gc::pfor_encode(values, blob, pos);
  EXPECT_EQ(pos, gc::pfor_encoded_bits(values));
  std::vector<std::uint32_t> out(values.size());
  gc::pfor_decode(blob, 0, static_cast<std::uint32_t>(values.size()), hdr,
                  out.data());
  return out;
}
}  // namespace

TEST(PForDelta, PaperFigure3Example) {
  // Figure 3: docIDs (100,121,163,172,185,214,282,300,347) give d-gaps
  // (21,42,9,13,29,68,18,47); with b=5 the exceptions are 42, 68, 47.
  const std::vector<std::uint32_t> gaps{21, 42, 9, 13, 29, 68, 18, 47};
  std::vector<std::uint64_t> blob;
  std::uint64_t pos = 0;
  const gc::PForHeader hdr = gc::pfor_encode(gaps, blob, pos);
  // ceil(0.9 * 8) = 7 values must fit: widths are (5,6,4,4,5,7,5,6) so b=6
  // covers 7 of 8... widths: 21->5, 42->6, 9->4, 13->4, 29->5, 68->7, 18->5,
  // 47->6; b=5 covers 5 values, b=6 covers 7 (>= 7 needed).
  EXPECT_EQ(hdr.b, 6);
  EXPECT_EQ(hdr.n_exceptions, 1);  // only 68 exceeds 6 bits
  EXPECT_EQ(hdr.first_exception, 5);
  std::vector<std::uint32_t> out(gaps.size());
  gc::pfor_decode(blob, 0, static_cast<std::uint32_t>(gaps.size()), hdr,
                  out.data());
  EXPECT_EQ(out, gaps);
}

TEST(PForDelta, ChooseBCoversNinetyPercent) {
  // 90 small values (1 bit) + 10 large: b stays 1 and larges are exceptions.
  std::vector<std::uint32_t> v(90, 1);
  for (int i = 0; i < 10; ++i) v.push_back(1000);
  EXPECT_EQ(gc::pfor_choose_b(v), 1);

  // 50/50 split: b must cover the large half.
  std::vector<std::uint32_t> w(50, 1);
  for (int i = 0; i < 50; ++i) w.push_back(200);
  EXPECT_EQ(gc::pfor_choose_b(w), 8);
}

TEST(PForDelta, AllValuesEqual) {
  const std::vector<std::uint32_t> v(128, 7);
  EXPECT_EQ(roundtrip(v), v);
}

TEST(PForDelta, NoExceptions) {
  std::vector<std::uint32_t> v;
  for (std::uint32_t i = 0; i < 128; ++i) v.push_back(i % 16);
  std::vector<std::uint64_t> blob;
  std::uint64_t pos = 0;
  const gc::PForHeader hdr = gc::pfor_encode(v, blob, pos);
  EXPECT_EQ(hdr.n_exceptions, 0);
  EXPECT_EQ(hdr.first_exception, gc::PForHeader::kNoException);
  EXPECT_EQ(roundtrip(v), v);
}

TEST(PForDelta, AllExceptionsForcedChain) {
  // b = 1 from many tiny values, then huge values far apart force
  // intermediate chain links.
  std::vector<std::uint32_t> v(128, 0);
  v[3] = 1u << 30;
  v[120] = 1u << 29;  // distance 117 > 2^1-1: forced exceptions in between
  EXPECT_EQ(roundtrip(v), v);
}

TEST(PForDelta, SingleValue) {
  for (std::uint32_t x : {0u, 1u, 255u, 0xFFFFFFFFu}) {
    const std::vector<std::uint32_t> v{x};
    EXPECT_EQ(roundtrip(v), v);
  }
}

TEST(PForDelta, MaxValues) {
  const std::vector<std::uint32_t> v(130, 0xFFFFFFFFu);
  EXPECT_EQ(roundtrip(v), v);
}

TEST(PForDelta, NonZeroBitPosition) {
  // Encoding may start mid-stream; decode must honor the offset.
  const std::vector<std::uint32_t> a{5, 6, 7};
  const std::vector<std::uint32_t> b{100, 2, 300, 4};
  std::vector<std::uint64_t> blob;
  std::uint64_t pos = 0;
  const gc::PForHeader ha = gc::pfor_encode(a, blob, pos);
  const std::uint64_t b_start = pos;
  const gc::PForHeader hb = gc::pfor_encode(b, blob, pos);

  std::vector<std::uint32_t> out_a(a.size()), out_b(b.size());
  gc::pfor_decode(blob, 0, 3, ha, out_a.data());
  gc::pfor_decode(blob, b_start, 4, hb, out_b.data());
  EXPECT_EQ(out_a, a);
  EXPECT_EQ(out_b, b);
}

// Property sweep: random value distributions with varying exception rates.
class PForRandomTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PForRandomTest, RoundTrip) {
  const auto [size, width_bits] = GetParam();
  griffin::util::Xoshiro256 rng(size * 131 + width_bits);
  std::vector<std::uint32_t> v(size);
  for (auto& x : v) {
    // Mostly narrow values with a sprinkle of wide outliers.
    if (rng.uniform01() < 0.12) {
      x = static_cast<std::uint32_t>(rng());
    } else {
      x = static_cast<std::uint32_t>(rng.bounded(1ull << width_bits));
    }
  }
  EXPECT_EQ(roundtrip(v), v);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PForRandomTest,
    ::testing::Combine(::testing::Values(1, 2, 7, 127, 128, 129, 1000),
                       ::testing::Values(1, 4, 8, 16, 27)));

TEST(PForDelta, EncodedBitsMatchesEncode) {
  griffin::util::Xoshiro256 rng(777);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint32_t> v(1 + rng.bounded(300));
    for (auto& x : v) x = static_cast<std::uint32_t>(rng.bounded(1 << 20));
    std::vector<std::uint64_t> blob;
    std::uint64_t pos = 0;
    gc::pfor_encode(v, blob, pos);
    EXPECT_EQ(pos, gc::pfor_encoded_bits(v));
  }
}
