// Cluster-level fault handling (DESIGN.md §11): replica crashes and
// failover, the per-replica circuit breaker, per-shard deadlines, and the
// degraded partial gather. The load-bearing invariants: a query the broker
// answers *non-degraded* returns bits identical to a fault-free run no
// matter how many retries/failovers served it, and every degraded query is
// counted and carries coverage < 1.
#include <gtest/gtest.h>

#include "cluster/broker.h"
#include "engine_test_util.h"

using namespace griffin;

namespace {

std::vector<core::Query> fault_log(const index::InvertedIndex& idx,
                                   std::uint32_t n, std::uint64_t seed) {
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = n;
  qcfg.seed = seed;
  return workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));
}

cluster::ClusterConfig base_config() {
  cluster::ClusterConfig cfg;
  cfg.num_shards = 4;
  cfg.replicas_per_shard = 2;
  cfg.arrival_qps = 50.0;
  cfg.seed = 9;
  cfg.record_outcomes = true;
  return cfg;
}

/// An outage spanning any realistic run horizon.
fault::Outage forever(std::uint32_t shard, std::uint32_t replica) {
  return {shard, replica, sim::Duration::from_ms(0),
          sim::Duration::from_seconds(3600)};
}

void expect_same_outcome_topk(const cluster::QueryOutcome& got,
                              const cluster::QueryOutcome& want) {
  ASSERT_EQ(got.topk.size(), want.topk.size());
  for (std::size_t i = 0; i < want.topk.size(); ++i) {
    EXPECT_EQ(got.topk[i].doc, want.topk[i].doc);
    EXPECT_EQ(got.topk[i].score, want.topk[i].score);  // bit-exact
  }
}

}  // namespace

TEST(FaultCluster, FailoverServesFullResultsWhenPrimaryIsDown) {
  const auto& idx = testutil::small_index();
  const auto log = fault_log(idx, 40, 91);

  auto cfg = base_config();
  cluster::ClusterBroker clean(idx, cfg);
  const auto ref = clean.run(log);

  cfg.faults.outages.push_back(forever(/*shard=*/0, /*replica=*/0));
  cluster::ClusterBroker broker(idx, cfg);
  const auto res = broker.run(log);

  // Every query failed over shard 0's primary onto its replica: full
  // coverage, zero degradation, and bit-identical answers.
  EXPECT_EQ(res.faults.replica_failures, log.size());
  EXPECT_EQ(res.faults.failovers, log.size());
  EXPECT_EQ(res.faults.degraded_queries, 0u);
  EXPECT_EQ(res.faults.shards_dropped, 0u);
  EXPECT_DOUBLE_EQ(res.mean_coverage(), 1.0);
  EXPECT_DOUBLE_EQ(res.min_coverage, 1.0);
  EXPECT_GT(res.faults.backoff_time.ps(), 0);
  ASSERT_EQ(res.outcomes.size(), ref.outcomes.size());
  for (std::size_t i = 0; i < ref.outcomes.size(); ++i) {
    EXPECT_FALSE(res.outcomes[i].degraded);
    expect_same_outcome_topk(res.outcomes[i], ref.outcomes[i]);
  }
  // The detour is not free: crash detection + backoff push latency up.
  EXPECT_GT(res.response_ms.mean(), ref.response_ms.mean());
}

TEST(FaultCluster, LosingEveryReplicaDegradesCoverage) {
  const auto& idx = testutil::small_index();
  const auto log = fault_log(idx, 30, 92);

  auto cfg = base_config();
  cfg.faults.outages.push_back(forever(0, 0));
  cfg.faults.outages.push_back(forever(0, 1));
  cluster::ClusterBroker broker(idx, cfg);
  const auto res = broker.run(log);

  // Shard 0 never answers: every query gathers 3 of 4 shards.
  EXPECT_EQ(res.faults.degraded_queries, log.size());
  EXPECT_EQ(res.faults.shards_dropped, log.size());
  EXPECT_DOUBLE_EQ(res.mean_coverage(), 0.75);
  EXPECT_DOUBLE_EQ(res.min_coverage, 0.75);
  EXPECT_EQ(res.gathered_queries, log.size());
  EXPECT_EQ(res.response_ms.count(), log.size());  // still answered
  for (const auto& o : res.outcomes) {
    EXPECT_TRUE(o.degraded);
    EXPECT_DOUBLE_EQ(o.coverage, 0.75);
  }
}

TEST(FaultCluster, DegradedResultsAreNeverCached) {
  const auto& idx = testutil::small_index();
  // The same query twice: a degraded answer must not seed the result cache
  // and be replayed at the repeat.
  auto log = fault_log(idx, 1, 93);
  log.push_back(log[0]);
  log[1].id = 1;

  auto cfg = base_config();
  cfg.cache_capacity = 16;
  cfg.faults.outages.push_back(forever(0, 0));
  cfg.faults.outages.push_back(forever(0, 1));
  cluster::ClusterBroker broker(idx, cfg);
  const auto res = broker.run(log);

  ASSERT_EQ(res.outcomes.size(), 2u);
  EXPECT_TRUE(res.outcomes[0].degraded);
  EXPECT_TRUE(res.outcomes[1].degraded);  // re-gathered, not replayed
  EXPECT_FALSE(res.outcomes[1].cache_hit);
  EXPECT_EQ(res.cache_hits_served, 0u);
  EXPECT_EQ(res.cache.hits, 0u);

  // Control: fault-free, the repeat is a cache hit.
  auto clean = base_config();
  clean.cache_capacity = 16;
  cluster::ClusterBroker cached(idx, clean);
  const auto ref = cached.run(log);
  EXPECT_EQ(ref.cache_hits_served, 1u);
  ASSERT_EQ(ref.outcomes.size(), 2u);
  EXPECT_TRUE(ref.outcomes[1].cache_hit);
}

TEST(FaultCluster, DeadlineDropsTheSlowedShard) {
  const auto& idx = testutil::small_index();
  const std::uint32_t n = 30;
  const auto log = fault_log(idx, n, 94);

  auto cfg = base_config();
  cfg.arrival_qps = 20.0;  // light load: critical path ~= service time
  cluster::ClusterBroker clean(idx, cfg);
  const auto ref = clean.run(log);
  const double max_crit_ms = ref.shard_critical_ms.percentile(100);

  // Slow the last query's shard-2 primary 200x; a deadline comfortably
  // above every fault-free critical path then catches exactly that shard.
  auto faulty = cfg;
  faulty.shard_deadline = sim::Duration::from_ms(max_crit_ms * 3.0);
  faulty.faults.slow.triggers.push_back({/*query=*/n - 1, /*scope=*/2});
  faulty.faults.slow_factor = 200.0;
  cluster::ClusterBroker broker(idx, faulty);
  const auto res = broker.run(log);

  EXPECT_EQ(res.faults.slow_replicas, 1u);
  EXPECT_EQ(res.faults.deadline_misses, 1u);
  EXPECT_EQ(res.faults.degraded_queries, 1u);
  EXPECT_DOUBLE_EQ(res.min_coverage, 0.75);
  ASSERT_EQ(res.outcomes.size(), n);
  EXPECT_TRUE(res.outcomes[n - 1].degraded);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    EXPECT_FALSE(res.outcomes[i].degraded) << "query " << i;
    expect_same_outcome_topk(res.outcomes[i], ref.outcomes[i]);
  }
  // The dropped shard caps the query's critical path at the deadline.
  EXPECT_LE(res.shard_critical_ms.percentile(100),
            faulty.shard_deadline.ms() * 1.0001);
}

TEST(FaultCluster, BreakerShortCircuitsAPersistentlyDeadPrimary) {
  const auto& idx = testutil::small_index();
  const auto log = fault_log(idx, 60, 95);

  auto cfg = base_config();
  cfg.faults.outages.push_back(forever(0, 0));
  cluster::ClusterBroker plain(idx, cfg);
  const auto without = plain.run(log);

  auto breaker_cfg = cfg;
  breaker_cfg.breaker.enabled = true;
  breaker_cfg.breaker.failure_threshold = 3;
  breaker_cfg.breaker.open_duration = sim::Duration::from_seconds(30);
  cluster::ClusterBroker guarded(idx, breaker_cfg);
  const auto with = guarded.run(log);

  // After three crash detections the breaker opens and later queries skip
  // the dead primary without paying crash_detect + backoff.
  EXPECT_EQ(with.faults.breaker_opens, 1u);
  EXPECT_GT(with.faults.breaker_short_circuits, 0u);
  EXPECT_LT(with.faults.replica_failures, without.faults.replica_failures);
  EXPECT_LT(with.faults.backoff_time.ps(), without.faults.backoff_time.ps());
  EXPECT_LT(with.response_ms.mean(), without.response_ms.mean());
  // Failover still answers everything in full.
  EXPECT_EQ(with.faults.degraded_queries, 0u);
  EXPECT_DOUBLE_EQ(with.mean_coverage(), 1.0);
}

TEST(FaultCluster, CircuitBreakerStateMachine) {
  cluster::BreakerConfig cfg;
  cfg.enabled = true;
  cfg.failure_threshold = 2;
  cfg.open_duration = sim::Duration::from_ms(10);
  cluster::CircuitBreaker br(cfg);

  const auto t = [](double ms) { return sim::Duration::from_ms(ms); };
  using State = cluster::CircuitBreaker::State;

  EXPECT_TRUE(br.allow(t(0)));
  EXPECT_FALSE(br.record_failure(t(0)));  // 1 of 2
  EXPECT_TRUE(br.allow(t(1)));
  EXPECT_TRUE(br.record_failure(t(1)));  // threshold: opens
  EXPECT_EQ(br.state(t(2)), State::kOpen);
  EXPECT_FALSE(br.allow(t(5)));

  // After open_duration: half-open, one probe allowed.
  EXPECT_EQ(br.state(t(11)), State::kHalfOpen);
  EXPECT_TRUE(br.allow(t(11)));
  EXPECT_TRUE(br.record_failure(t(11)));  // failed probe re-opens
  EXPECT_FALSE(br.allow(t(15)));

  EXPECT_EQ(br.state(t(22)), State::kHalfOpen);
  br.record_success();  // successful probe closes
  EXPECT_EQ(br.state(t(22)), State::kClosed);
  EXPECT_TRUE(br.allow(t(22)));

  // Disabled breakers never block.
  cluster::CircuitBreaker off{};
  EXPECT_FALSE(off.record_failure(t(0)));
  EXPECT_FALSE(off.record_failure(t(0)));
  EXPECT_FALSE(off.record_failure(t(0)));
  EXPECT_TRUE(off.allow(t(0)));
}

TEST(FaultCluster, StragglerConfigAliasesTheSlowSite) {
  const auto& idx = testutil::small_index();
  const auto log = fault_log(idx, 120, 96);

  auto cfg = base_config();
  cfg.record_outcomes = false;
  cfg.straggler.probability = 0.2;
  cfg.straggler.slowdown = 30.0;
  cluster::ClusterBroker broker(idx, cfg);

  // The legacy knobs land in the fault config the broker runs with...
  EXPECT_DOUBLE_EQ(broker.config().faults.slow.probability, 0.2);
  EXPECT_DOUBLE_EQ(broker.config().faults.slow_factor, 30.0);
  // ...and the injections are counted by the fault machinery.
  const auto res = broker.run(log);
  EXPECT_GT(res.faults.slow_replicas, 0u);
  EXPECT_EQ(res.faults.degraded_queries, 0u);  // slow, not lost
}

TEST(FaultCluster, NonDegradedQueriesMatchFaultFreeBitsUnderCrashChurn) {
  const auto& idx = testutil::small_index();
  const auto log = fault_log(idx, 80, 97);

  auto cfg = base_config();
  cluster::ClusterBroker clean(idx, cfg);
  const auto ref = clean.run(log);

  auto churn = cfg;
  churn.faults.crash.probability = 0.25;
  churn.faults.crash_window_ms = 20.0;
  churn.max_attempts = 2;
  cluster::ClusterBroker broker(idx, churn);
  const auto res = broker.run(log);

  EXPECT_GT(res.faults.replica_failures, 0u);
  ASSERT_EQ(res.outcomes.size(), ref.outcomes.size());
  std::size_t full = 0;
  for (std::size_t i = 0; i < res.outcomes.size(); ++i) {
    if (res.outcomes[i].degraded) {
      EXPECT_LT(res.outcomes[i].coverage, 1.0);
      continue;
    }
    ++full;
    expect_same_outcome_topk(res.outcomes[i], ref.outcomes[i]);
  }
  EXPECT_GT(full, 0u);
  EXPECT_EQ(res.faults.degraded_queries, res.outcomes.size() - full);
}

TEST(FaultCluster, EngineFaultsFlowIntoClusterCounters) {
  const auto& idx = testutil::small_index();
  const auto log = fault_log(idx, 40, 98);

  auto cfg = base_config();
  cfg.record_outcomes = false;
  cfg.faults.gpu.probability = 0.2;
  core::HybridOptions opt;
  opt.scheduler.policy = core::SchedulerPolicy::kAlwaysGpu;
  cluster::ClusterBroker broker(idx, cfg, {}, opt);

  const auto res = broker.run(log);
  EXPECT_GT(res.faults.gpu_faults, 0u);
  EXPECT_GT(res.faults.gpu_wasted.ps(), 0);
  EXPECT_GT(res.trace.faulted_steps, 0u);
  // A GPU fault degrades execution, never the answer: nothing is dropped.
  EXPECT_EQ(res.faults.degraded_queries, 0u);

  // The per-node lifetime counters sum to the run's engine-level total.
  std::uint64_t node_faults = 0;
  for (std::uint32_t s = 0; s < broker.num_shards(); ++s) {
    node_faults += broker.node(s).fault_counters().gpu_faults;
  }
  EXPECT_EQ(node_faults, res.faults.gpu_faults);
}

TEST(FaultCluster, UntimedExecuteDegradesOnScopedEngineFault) {
  const auto& idx = testutil::small_index();
  auto cfg = base_config();
  cfg.record_outcomes = false;
  cfg.faults.gpu.triggers.push_back({/*query=*/0, /*scope=*/1});
  core::HybridOptions opt;
  opt.scheduler.policy = core::SchedulerPolicy::kAlwaysGpu;
  cluster::ClusterBroker broker(idx, cfg, {}, opt);
  cluster::ClusterBroker clean(idx, base_config(), {}, opt);

  core::Query q;
  q.terms = {5, 15, 30};
  q.id = 0;
  const auto res = broker.execute(q);
  const auto ref = clean.execute(q);
  // Only shard 1's engine faulted; the merged result is still exact.
  EXPECT_EQ(res.metrics.faults.gpu_faults, 1u);
  ASSERT_EQ(res.topk.size(), ref.topk.size());
  for (std::size_t i = 0; i < ref.topk.size(); ++i) {
    EXPECT_EQ(res.topk[i].doc, ref.topk[i].doc);
    EXPECT_EQ(res.topk[i].score, ref.topk[i].score);
  }
  const auto want = testutil::reference_topk(idx, q);
  testutil::expect_same_topk(res.topk, want, "cluster-engine-fault");
}

TEST(FaultCluster, FaultRunsAreDeterministic) {
  const auto& idx = testutil::small_index();
  const auto log = fault_log(idx, 60, 99);

  auto cfg = base_config();
  cfg.faults.crash.probability = 0.15;
  cfg.faults.crash_window_ms = 25.0;
  cfg.faults.slow.probability = 0.1;
  cfg.breaker.enabled = true;
  cfg.shard_deadline = sim::Duration::from_ms(50.0);

  cluster::ClusterBroker a(idx, cfg);
  cluster::ClusterBroker b(idx, cfg);
  const auto ra = a.run(log);
  const auto rb = b.run(log);
  EXPECT_EQ(ra.faults.replica_failures, rb.faults.replica_failures);
  EXPECT_EQ(ra.faults.failovers, rb.faults.failovers);
  EXPECT_EQ(ra.faults.slow_replicas, rb.faults.slow_replicas);
  EXPECT_EQ(ra.faults.breaker_opens, rb.faults.breaker_opens);
  EXPECT_EQ(ra.faults.breaker_short_circuits,
            rb.faults.breaker_short_circuits);
  EXPECT_EQ(ra.faults.deadline_misses, rb.faults.deadline_misses);
  EXPECT_EQ(ra.faults.degraded_queries, rb.faults.degraded_queries);
  EXPECT_DOUBLE_EQ(ra.coverage_sum, rb.coverage_sum);
  EXPECT_DOUBLE_EQ(ra.response_ms.mean(), rb.response_ms.mean());
  EXPECT_DOUBLE_EQ(ra.response_ms.percentile(99),
                   rb.response_ms.percentile(99));
}
