#include "index/dictionary.h"

#include <gtest/gtest.h>

using griffin::index::Dictionary;
using griffin::index::TermId;

TEST(Dictionary, InternAssignsDenseIds) {
  Dictionary d;
  EXPECT_EQ(d.add("alpha"), 0u);
  EXPECT_EQ(d.add("beta"), 1u);
  EXPECT_EQ(d.add("alpha"), 0u);  // idempotent
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.term(0), "alpha");
  EXPECT_EQ(d.term(1), "beta");
}

TEST(Dictionary, FindWithoutInterning) {
  Dictionary d;
  d.add("gpu");
  EXPECT_EQ(d.find("gpu"), std::optional<TermId>(0u));
  EXPECT_EQ(d.find("cpu"), std::nullopt);
  EXPECT_EQ(d.size(), 1u);
}

TEST(Dictionary, SurvivesManyInsertions) {
  // Vector growth relocates small-string buffers; lookups must stay valid.
  Dictionary d;
  for (int i = 0; i < 5000; ++i) {
    d.add("term_" + std::to_string(i));
  }
  EXPECT_EQ(d.size(), 5000u);
  for (int i = 0; i < 5000; i += 97) {
    const auto id = d.find("term_" + std::to_string(i));
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(d.term(*id), "term_" + std::to_string(i));
  }
}

TEST(Dictionary, TokenizeInterningLowercasesAndSplits) {
  Dictionary d;
  const auto ids = d.tokenize_interning("  GPU Query\tprocessing GPU\n");
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids[0], ids[3]);  // "gpu" twice
  EXPECT_EQ(d.term(ids[0]), "gpu");
  EXPECT_EQ(d.term(ids[1]), "query");
  EXPECT_EQ(d.size(), 3u);
}

TEST(Dictionary, TokenizeDropsUnknownTerms) {
  Dictionary d;
  d.tokenize_interning("known words only");
  const auto ids = d.tokenize("known UNKNOWN words");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(d.term(ids[0]), "known");
  EXPECT_EQ(d.term(ids[1]), "words");
}

TEST(Dictionary, EmptyAndWhitespaceOnly) {
  Dictionary d;
  EXPECT_TRUE(d.tokenize_interning("").empty());
  EXPECT_TRUE(d.tokenize_interning("   \t\n ").empty());
}
