#include "codec/simple16.h"

#include <gtest/gtest.h>

#include "codec/block_codec.h"
#include "util/rng.h"
#include "workload/corpus.h"

namespace gc = griffin::codec;

namespace {
std::vector<std::uint32_t> roundtrip(std::span<const std::uint32_t> values) {
  std::vector<std::uint32_t> words;
  const std::size_t nwords = gc::simple16_encode(values, words);
  EXPECT_EQ(nwords, words.size());
  EXPECT_EQ(nwords, gc::simple16_encoded_words(values));
  std::vector<std::uint32_t> out(values.size());
  const std::size_t consumed = gc::simple16_decode(
      words, static_cast<std::uint32_t>(values.size()), out.data());
  EXPECT_EQ(consumed, words.size());
  return out;
}
}  // namespace

TEST(Simple16, AllOnesPacks28PerWord) {
  const std::vector<std::uint32_t> v(56, 1);
  std::vector<std::uint32_t> words;
  EXPECT_EQ(gc::simple16_encode(v, words), 2u);  // 28 + 28
  std::vector<std::uint32_t> out(56);
  gc::simple16_decode(words, 56, out.data());
  EXPECT_EQ(out, v);
}

TEST(Simple16, AllZeros) {
  const std::vector<std::uint32_t> v(100, 0);
  EXPECT_EQ(roundtrip(v), v);
  EXPECT_LE(gc::simple16_encoded_words(v), 4u);
}

TEST(Simple16, SingleLargeValue) {
  const std::vector<std::uint32_t> v{(1u << 28) - 1};
  EXPECT_EQ(roundtrip(v), v);
}

TEST(Simple16, RejectsOver28Bits) {
  const std::vector<std::uint32_t> v{1u << 28};
  std::vector<std::uint32_t> words;
  EXPECT_THROW(gc::simple16_encode(v, words), std::invalid_argument);
}

TEST(Simple16, MixedMagnitudes) {
  const std::vector<std::uint32_t> v{0, 1, 1000, 3, 0, 200000, 1, 1, 1,
                                     5000000, 2, 0, 7, 130, 12};
  EXPECT_EQ(roundtrip(v), v);
}

TEST(Simple16, EmptyInput) {
  std::vector<std::uint32_t> words;
  EXPECT_EQ(gc::simple16_encode({}, words), 0u);
}

class Simple16Random
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Simple16Random, RoundTrip) {
  const auto [size, width] = GetParam();
  griffin::util::Xoshiro256 rng(size * 7 + width);
  std::vector<std::uint32_t> v(size);
  for (auto& x : v) {
    x = static_cast<std::uint32_t>(rng.bounded(1ull << width));
  }
  EXPECT_EQ(roundtrip(v), v);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Simple16Random,
    ::testing::Combine(::testing::Values(1, 2, 27, 28, 29, 127, 1000),
                       ::testing::Values(1, 3, 7, 14, 28)));

TEST(Simple16, BlockCodecIntegration) {
  griffin::util::Xoshiro256 rng(12);
  const auto docs = griffin::workload::make_uniform_list(5000, 160'000, rng);
  const auto list =
      gc::BlockCompressedList::build(docs, gc::Scheme::kSimple16);
  std::vector<gc::DocId> out;
  list.decode_all(out);
  EXPECT_EQ(out, docs);
  // Small gaps pack densely: well under raw 32 bits/posting.
  EXPECT_LT(list.bits_per_posting(), 12.0);
}

TEST(Simple16, BlockCodecDenseAndSparseBlocks) {
  // Alternate dense runs and big jumps across block boundaries.
  std::vector<gc::DocId> docs;
  gc::DocId d = 0;
  griffin::util::Xoshiro256 rng(13);
  for (int i = 0; i < 2000; ++i) {
    d += (i % 300 == 299) ? 100'000 : 1 + rng.bounded(4);
    docs.push_back(d);
  }
  const auto list =
      gc::BlockCompressedList::build(docs, gc::Scheme::kSimple16, 64);
  std::vector<gc::DocId> out;
  list.decode_all(out);
  EXPECT_EQ(out, docs);
}
