#include "cluster/result_cache.h"

#include <gtest/gtest.h>

using namespace griffin;
using cluster::CacheKey;
using cluster::ResultCache;

namespace {

core::Query make_query(std::vector<index::TermId> terms, std::uint32_t k) {
  core::Query q;
  q.terms = std::move(terms);
  q.k = k;
  return q;
}

std::vector<core::ScoredDoc> docs(std::initializer_list<index::DocId> ids) {
  std::vector<core::ScoredDoc> out;
  for (const auto d : ids) out.push_back({d, static_cast<float>(d)});
  return out;
}

}  // namespace

TEST(ResultCache, KeyIsTermOrderInsensitive) {
  const auto a = cluster::make_cache_key(make_query({3, 1, 2}, 10));
  const auto b = cluster::make_cache_key(make_query({1, 2, 3}, 10));
  EXPECT_EQ(a, b);
  EXPECT_EQ(cluster::CacheKeyHash{}(a), cluster::CacheKeyHash{}(b));
}

TEST(ResultCache, KeyDistinguishesKAndTerms) {
  const auto base = cluster::make_cache_key(make_query({1, 2}, 10));
  EXPECT_NE(base, cluster::make_cache_key(make_query({1, 2}, 20)));
  EXPECT_NE(base, cluster::make_cache_key(make_query({1, 3}, 10)));
}

TEST(ResultCache, HitReturnsInsertedResults) {
  ResultCache cache(4);
  const auto key = cluster::make_cache_key(make_query({1, 2}, 10));
  EXPECT_EQ(cache.lookup(key), nullptr);
  cache.insert(key, docs({5, 9}));
  const auto* hit = cache.lookup(key);
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->size(), 2u);
  EXPECT_EQ((*hit)[0].doc, 5u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_NEAR(cache.stats().hit_rate(), 0.5, 1e-12);
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  const auto k1 = cluster::make_cache_key(make_query({1}, 10));
  const auto k2 = cluster::make_cache_key(make_query({2}, 10));
  const auto k3 = cluster::make_cache_key(make_query({3}, 10));
  cache.insert(k1, docs({1}));
  cache.insert(k2, docs({2}));
  // Touch k1 so k2 becomes the LRU victim.
  EXPECT_NE(cache.lookup(k1), nullptr);
  cache.insert(k3, docs({3}));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.lookup(k1), nullptr);
  EXPECT_EQ(cache.lookup(k2), nullptr);  // evicted
  EXPECT_NE(cache.lookup(k3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(2);
  const auto k1 = cluster::make_cache_key(make_query({1}, 10));
  cache.insert(k1, docs({1}));
  cache.insert(k1, docs({1, 2}));
  EXPECT_EQ(cache.size(), 1u);
  const auto* hit = cache.lookup(k1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ResultCache, ZeroCapacityDisables) {
  ResultCache cache(0);
  const auto k1 = cluster::make_cache_key(make_query({1}, 10));
  cache.insert(k1, docs({1}));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(k1), nullptr);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ResultCache, BytesTrackResidentEntries) {
  ResultCache cache(4);
  EXPECT_EQ(cache.bytes(), 0u);
  const auto k1 = cluster::make_cache_key(make_query({1, 2}, 10));
  const auto d1 = docs({5, 9, 11});
  cache.insert(k1, d1);
  EXPECT_EQ(cache.bytes(), ResultCache::entry_bytes(k1, d1));
  // Refreshing with a differently sized top-k re-accounts, not accumulates.
  const auto d2 = docs({5});
  cache.insert(k1, d2);
  EXPECT_EQ(cache.bytes(), ResultCache::entry_bytes(k1, d2));
}

TEST(ResultCache, ByteBudgetEvictsLeastRecentlyUsed) {
  const auto k1 = cluster::make_cache_key(make_query({1}, 10));
  const auto k2 = cluster::make_cache_key(make_query({2}, 10));
  const auto k3 = cluster::make_cache_key(make_query({3}, 10));
  const auto entry = docs({1, 2, 3, 4});
  // Room for two entries of this shape, no count bound.
  ResultCache cache(0, ResultCache::entry_bytes(k1, entry) * 2);
  EXPECT_TRUE(cache.enabled());
  cache.insert(k1, entry);
  cache.insert(k2, entry);
  EXPECT_EQ(cache.stats().evictions, 0u);
  cache.insert(k3, entry);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.lookup(k1), nullptr);  // evicted
  EXPECT_NE(cache.lookup(k2), nullptr);
  EXPECT_NE(cache.lookup(k3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.bytes(), cache.byte_budget());
}

TEST(ResultCache, EntryLargerThanBudgetIsDropped) {
  const auto k1 = cluster::make_cache_key(make_query({1}, 10));
  const auto small = docs({1});
  const auto big = docs({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  ResultCache cache(0, ResultCache::entry_bytes(k1, small) + 8);
  cache.insert(k1, small);
  EXPECT_EQ(cache.size(), 1u);
  const auto k2 = cluster::make_cache_key(make_query({2}, 10));
  cache.insert(k2, big);  // cannot ever fit: dropped, not inserted
  EXPECT_EQ(cache.lookup(k2), nullptr);
  EXPECT_NE(cache.lookup(k1), nullptr);  // existing entry undisturbed
  EXPECT_LE(cache.bytes(), cache.byte_budget());
}
