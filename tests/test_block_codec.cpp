#include "codec/block_codec.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"
#include "workload/corpus.h"

namespace gc = griffin::codec;

namespace {
std::vector<gc::DocId> random_docids(std::uint64_t n, gc::DocId universe,
                                     std::uint64_t seed) {
  griffin::util::Xoshiro256 rng(seed);
  return griffin::workload::make_uniform_list(n, universe, rng);
}
}  // namespace

class BlockCodecTest : public ::testing::TestWithParam<
                           std::tuple<gc::Scheme, int, std::uint32_t>> {};

TEST_P(BlockCodecTest, RoundTripAndMetadata) {
  const auto [scheme, size, block_size] = GetParam();
  const auto docs = random_docids(size, 10'000'000, size * 7 + block_size);
  const auto list = gc::BlockCompressedList::build(docs, scheme, block_size);

  EXPECT_EQ(list.size(), docs.size());
  EXPECT_EQ(list.num_blocks(),
            (docs.size() + block_size - 1) / block_size);
  EXPECT_EQ(list.first_docid(), docs.front());
  EXPECT_EQ(list.last_docid(), docs.back());

  std::vector<gc::DocId> out;
  list.decode_all(out);
  EXPECT_EQ(out, docs);

  // Per-block metadata is consistent.
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < list.num_blocks(); ++b) {
    const auto& m = list.meta(b);
    EXPECT_LE(m.first, m.last);
    total += m.count;
    if (b > 0) {
      EXPECT_GT(m.first, list.meta(b - 1).last);
    }
  }
  EXPECT_EQ(total, docs.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockCodecTest,
    ::testing::Combine(::testing::Values(gc::Scheme::kPForDelta,
                                         gc::Scheme::kEliasFano,
                                         gc::Scheme::kVarByte,
                                         gc::Scheme::kSimple16,
                                         gc::Scheme::kBitPack128,
                                         gc::Scheme::kRePair),
                       ::testing::Values(1, 2, 127, 128, 129, 5000),
                       ::testing::Values(64u, 128u, 256u)));

TEST(BlockCodec, DecodeSingleBlock) {
  const auto docs = random_docids(1000, 1'000'000, 3);
  const auto list = gc::BlockCompressedList::build(docs, gc::Scheme::kEliasFano);
  std::vector<gc::DocId> buf(list.block_size());
  for (std::size_t b = 0; b < list.num_blocks(); ++b) {
    const std::uint32_t n = list.decode_block(b, buf.data());
    for (std::uint32_t i = 0; i < n; ++i) {
      EXPECT_EQ(buf[i], docs[b * list.block_size() + i]);
    }
  }
}

TEST(BlockCodec, FindBlock) {
  const auto docs = random_docids(2000, 4'000'000, 9);
  const auto list = gc::BlockCompressedList::build(docs, gc::Scheme::kPForDelta);

  // Every docid must be findable in its own block.
  for (std::size_t i = 0; i < docs.size(); i += 37) {
    const std::size_t b = list.find_block(docs[i]);
    ASSERT_LT(b, list.num_blocks());
    EXPECT_LE(list.meta(b).first, docs[i]);
    EXPECT_GE(list.meta(b).last, docs[i]);
  }
  // A target above the last docid maps past the end.
  EXPECT_EQ(list.find_block(list.last_docid() + 1), list.num_blocks());
  // A target below the first docid maps to block 0.
  EXPECT_EQ(list.find_block(0), 0u);
}

TEST(BlockCodec, EFBeatsPForOnCompressionForTypicalGaps) {
  // Table 1's direction: EF compresses typical (geometric-gap) posting
  // lists tighter than PForDelta.
  const auto docs = random_docids(100'000, 3'200'000, 17);  // density 1/32
  const auto ef = gc::BlockCompressedList::build(docs, gc::Scheme::kEliasFano);
  const auto pf = gc::BlockCompressedList::build(docs, gc::Scheme::kPForDelta);
  EXPECT_LT(ef.compressed_bytes(), pf.compressed_bytes());
  // And both beat the raw 32-bit representation.
  EXPECT_LT(ef.compressed_bytes(), docs.size() * 4);
  EXPECT_LT(pf.compressed_bytes(), docs.size() * 4);
}

TEST(BlockCodec, RejectsEmptyAndZeroBlock) {
  const std::vector<gc::DocId> empty;
  EXPECT_THROW(gc::BlockCompressedList::build(empty, gc::Scheme::kEliasFano),
               std::invalid_argument);
  const std::vector<gc::DocId> one{5};
  EXPECT_THROW(gc::BlockCompressedList::build(one, gc::Scheme::kEliasFano, 0),
               std::invalid_argument);
}

TEST(BlockCodec, AdjacentDocids) {
  // Consecutive docIDs (gap 1 everywhere) — the d-gap minus one encoding
  // stores all zeros.
  std::vector<gc::DocId> docs(500);
  for (std::uint32_t i = 0; i < 500; ++i) docs[i] = 1000 + i;
  for (const auto scheme :
       {gc::Scheme::kPForDelta, gc::Scheme::kEliasFano, gc::Scheme::kVarByte,
        gc::Scheme::kSimple16, gc::Scheme::kBitPack128, gc::Scheme::kRePair}) {
    const auto list = gc::BlockCompressedList::build(docs, scheme);
    std::vector<gc::DocId> out;
    list.decode_all(out);
    EXPECT_EQ(out, docs) << gc::scheme_name(scheme);
    // Dense runs compress extremely well (VByte bottoms out at one byte
    // per gap plus skip overhead).
    const double bound = scheme == gc::Scheme::kVarByte ? 10.0 : 6.0;
    EXPECT_LT(list.bits_per_posting(), bound) << gc::scheme_name(scheme);
  }
}

TEST(BlockCodec, HugeGaps) {
  // Near-32-bit docid jumps.
  // (Simple16 is excluded: these gaps exceed its 28-bit limit — see
  // CodecZoo.Simple16RejectsOversizedGaps.)
  std::vector<gc::DocId> docs{0, 1, 0x40000000u, 0x40000001u, 0xFFFFFFF0u,
                              0xFFFFFFFFu};
  for (const auto scheme : {gc::Scheme::kPForDelta, gc::Scheme::kEliasFano,
                            gc::Scheme::kVarByte, gc::Scheme::kBitPack128,
                            gc::Scheme::kRePair}) {
    const auto list = gc::BlockCompressedList::build(docs, scheme);
    std::vector<gc::DocId> out;
    list.decode_all(out);
    EXPECT_EQ(out, docs) << gc::scheme_name(scheme);
  }
}
