// Acceptance gate for the adaptive codec policy: an index whose lists are
// selected per-list by codec::select_scheme must produce results identical
// to every forced single-scheme configuration — compression choices may
// change time and bytes, never answers. Exercised across all three engines
// (CPU, GPU, Hybrid), with forced PForDelta called out explicitly since the
// paper's baseline uses it.
#include <gtest/gtest.h>

#include <string>

#include "codec/codec.h"
#include "core/hybrid_engine.h"
#include "cpu/engine.h"
#include "engine_test_util.h"
#include "gpu/engine.h"

using namespace griffin;

namespace {

workload::CorpusConfig parity_corpus_config() {
  workload::CorpusConfig cfg = testutil::small_corpus_config();
  // Small enough that building seven variants (adaptive + six forced) stays
  // cheap; the list-length mix still spans both crossover regimes.
  cfg.num_docs = 20'000;
  cfg.num_terms = 30;
  cfg.seed = 91;
  return cfg;
}

std::vector<core::Query> parity_log(std::uint32_t num_terms) {
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 25;
  qcfg.seed = 92;
  return workload::generate_query_log(qcfg, num_terms);
}

}  // namespace

TEST(AdaptiveParity, MixesSchemesButMatchesReference) {
  workload::CorpusConfig cfg = parity_corpus_config();
  cfg.adaptive = true;
  const auto idx = workload::generate_corpus(cfg);
  ASSERT_TRUE(idx.adaptive());
  core::HybridEngine engine(idx);
  for (const auto& q : parity_log(cfg.num_terms)) {
    const auto got = engine.execute(q);
    const auto want = testutil::reference_topk(idx, q);
    testutil::expect_same_topk(got.topk, want, "adaptive-hybrid");
  }
}

TEST(AdaptiveParity, IdenticalToEveryForcedSchemeOnAllEngines) {
  workload::CorpusConfig cfg = parity_corpus_config();
  cfg.adaptive = true;
  const auto adaptive_idx = workload::generate_corpus(cfg);
  const auto log = parity_log(cfg.num_terms);

  cpu::CpuEngine a_cpu(adaptive_idx);
  gpu::GpuEngine a_gpu(adaptive_idx);
  core::HybridEngine a_hybrid(adaptive_idx);

  for (const codec::Scheme s : codec::all_schemes()) {
    workload::CorpusConfig forced_cfg = parity_corpus_config();
    forced_cfg.adaptive = false;
    forced_cfg.scheme = s;
    const auto forced_idx = workload::generate_corpus(forced_cfg);
    cpu::CpuEngine f_cpu(forced_idx);
    gpu::GpuEngine f_gpu(forced_idx);
    core::HybridEngine f_hybrid(forced_idx);

    for (const auto& q : log) {
      const std::string tag = "adaptive-vs-" + codec::scheme_name(s);
      testutil::expect_same_topk(a_cpu.execute(q).topk, f_cpu.execute(q).topk,
                                 (tag + "-cpu").c_str());
      testutil::expect_same_topk(a_gpu.execute(q).topk, f_gpu.execute(q).topk,
                                 (tag + "-gpu").c_str());
      testutil::expect_same_topk(a_hybrid.execute(q).topk,
                                 f_hybrid.execute(q).topk,
                                 (tag + "-hybrid").c_str());
    }
  }
}

TEST(AdaptiveParity, AddListAsOverridesThePolicy) {
  // Forced-scheme parity harnesses rely on add_list_as bypassing the
  // adaptive selector entirely.
  index::InvertedIndex idx(index::CodecPolicy{codec::Scheme::kEliasFano, true});
  std::vector<index::DocId> docs;
  for (index::DocId d = 0; d < 500; ++d) docs.push_back(d * 3);
  const index::TermId t = idx.add_list_as(codec::Scheme::kVarByte, docs);
  EXPECT_EQ(idx.list(t).docids.scheme(), codec::Scheme::kVarByte);
  const index::TermId u = idx.add_list(docs);
  EXPECT_EQ(idx.list(u).docids.scheme(), codec::select_scheme(docs));
}
