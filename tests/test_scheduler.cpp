#include "core/scheduler.h"

#include <gtest/gtest.h>

using namespace griffin;
using core::Placement;
using core::Scheduler;
using core::SchedulerOptions;
using core::SchedulerPolicy;
using core::StepShape;

namespace {
StepShape shape(std::uint64_t shorter, std::uint64_t longer,
                std::optional<Placement> loc = std::nullopt) {
  StepShape s;
  s.shorter = shorter;
  s.longer = longer;
  s.longer_bytes = longer;  // ~1 byte/posting, fine for the estimates
  s.current_location = loc;
  return s;
}
}  // namespace

TEST(Scheduler, RatioThresholdRule) {
  Scheduler sched;  // default: ratio threshold at 128
  EXPECT_EQ(sched.decide(shape(1000, 1000)), Placement::kGpu);
  EXPECT_EQ(sched.decide(shape(1000, 127'000)), Placement::kGpu);
  EXPECT_EQ(sched.decide(shape(1000, 128'000)), Placement::kCpu);
  EXPECT_EQ(sched.decide(shape(1000, 100'000'000)), Placement::kCpu);
}

TEST(Scheduler, ThresholdIsConfigurable) {
  SchedulerOptions opt;
  opt.ratio_threshold = 4.0;
  Scheduler sched(opt);
  EXPECT_EQ(sched.decide(shape(100, 399)), Placement::kGpu);
  EXPECT_EQ(sched.decide(shape(100, 400)), Placement::kCpu);
}

TEST(Scheduler, EmptyIntermediateGoesCpu) {
  Scheduler sched;
  EXPECT_EQ(sched.decide(shape(0, 1000)), Placement::kCpu);
}

TEST(Scheduler, StaticPolicies) {
  SchedulerOptions cpu_only;
  cpu_only.policy = SchedulerPolicy::kAlwaysCpu;
  SchedulerOptions gpu_only;
  gpu_only.policy = SchedulerPolicy::kAlwaysGpu;
  EXPECT_EQ(Scheduler(cpu_only).decide(shape(10, 10)), Placement::kCpu);
  EXPECT_EQ(Scheduler(gpu_only).decide(shape(10, 1'000'000)), Placement::kGpu);
}

TEST(Scheduler, CostModelPrefersCpuForTinySteps) {
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kCostModel;
  Scheduler sched(opt);
  // A tiny step cannot amortize kernel launches and transfers.
  EXPECT_EQ(sched.decide(shape(50, 200)), Placement::kCpu);
}

TEST(Scheduler, CostModelPrefersGpuForBigBalancedSteps) {
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kCostModel;
  Scheduler sched(opt);
  StepShape s = shape(2'000'000, 4'000'000, Placement::kGpu);
  s.longer_bytes = 4'000'000;  // ~1 B/posting compressed
  EXPECT_EQ(sched.decide(s), Placement::kGpu);
}

TEST(Scheduler, CostEstimatesReflectMigration) {
  Scheduler sched;
  const auto gpu_stay = sched.estimate_gpu(shape(100'000, 200'000,
                                                 Placement::kGpu));
  const auto gpu_move = sched.estimate_gpu(shape(100'000, 200'000,
                                                 Placement::kCpu));
  EXPECT_LT(gpu_stay.ps(), gpu_move.ps());

  const auto cpu_stay = sched.estimate_cpu(shape(100'000, 200'000,
                                                 Placement::kCpu));
  const auto cpu_move = sched.estimate_cpu(shape(100'000, 200'000,
                                                 Placement::kGpu));
  EXPECT_LT(cpu_stay.ps(), cpu_move.ps());
}

TEST(Scheduler, DeviceResidencyRaisesRatioCrossover) {
  Scheduler sched;  // threshold 128, resident boost 4x -> 512
  StepShape s = shape(1000, 200'000);  // ratio 200: CPU when cold
  EXPECT_EQ(sched.decide(s), Placement::kCpu);
  s.longer_device_resident = true;  // no upload to pay: 200 < 512 -> GPU
  EXPECT_EQ(sched.decide(s), Placement::kGpu);

  StepShape far = shape(1000, 600'000);  // ratio 600 clears even 512
  far.longer_device_resident = true;
  EXPECT_EQ(sched.decide(far), Placement::kCpu);
}

TEST(Scheduler, HostDecodedLowersRatioCrossover) {
  Scheduler sched;  // threshold 128, host-decoded scale 0.5x -> 64
  StepShape s = shape(1000, 100'000);  // ratio 100: GPU when cold
  EXPECT_EQ(sched.decide(s), Placement::kGpu);
  s.longer_host_decoded = true;  // CPU decode already paid: 100 >= 64 -> CPU
  EXPECT_EQ(sched.decide(s), Placement::kCpu);
}

TEST(Scheduler, ResidencyAwarenessCanBeDisabled) {
  SchedulerOptions opt;
  opt.residency_aware = false;
  Scheduler sched(opt);
  StepShape s = shape(1000, 200'000);
  s.longer_device_resident = true;
  s.longer_host_decoded = true;
  EXPECT_EQ(sched.decide(s), Placement::kCpu);  // bits ignored: plain 128 rule
}

TEST(Scheduler, CostModelDropsTransferForDeviceResidentList) {
  Scheduler sched;
  const StepShape cold = shape(100'000, 200'000, Placement::kGpu);
  StepShape warm = cold;
  warm.longer_device_resident = true;
  EXPECT_LT(sched.estimate_gpu(warm).ps(), sched.estimate_gpu(cold).ps());
  // Device residency says nothing about the CPU side.
  EXPECT_EQ(sched.estimate_cpu(warm).ps(), sched.estimate_cpu(cold).ps());
}

TEST(Scheduler, CostModelDropsDecodeForHostDecodedList) {
  Scheduler sched;
  const StepShape cold = shape(1'000'000, 2'000'000, Placement::kCpu);
  StepShape warm = cold;
  warm.longer_host_decoded = true;
  EXPECT_LT(sched.estimate_cpu(warm).ps(), sched.estimate_cpu(cold).ps());
  // Host residency says nothing about the GPU side.
  EXPECT_EQ(sched.estimate_gpu(warm).ps(), sched.estimate_gpu(cold).ps());
}

TEST(Scheduler, CpuEstimateDropsSharplyAboveSkipRatio) {
  Scheduler sched;
  // Same long list; shrinking the short side below the skip threshold makes
  // the CPU estimate collapse (skip pointers avoid the decode).
  const auto merge_regime = sched.estimate_cpu(shape(1'000'000, 2'000'000));
  const auto skip_regime = sched.estimate_cpu(shape(2'000, 2'000'000));
  EXPECT_LT(skip_regime.ps() * 10, merge_regime.ps());
}

// ---- Codec-aware cost model (the codec-zoo refactor) -----------------------

namespace {
StepShape shape_with_scheme(std::uint64_t shorter, std::uint64_t longer,
                            codec::Scheme s) {
  StepShape sh = shape(shorter, longer);
  sh.longer_scheme = s;
  return sh;
}
}  // namespace

TEST(Scheduler, DefaultLongerSchemeIsEliasFano) {
  // Pre-zoo behavior is the default: shapes that never set a scheme price
  // exactly as an EF list did before the refactor.
  const StepShape s;
  EXPECT_EQ(s.longer_scheme, codec::Scheme::kEliasFano);
}

TEST(Scheduler, CpuEstimateFollowsCodecLaneModel) {
  Scheduler sched;
  // Merge regime: the long list is decoded element-by-element, so the
  // per-codec lane model dominates. Serial codecs must price higher than
  // the vector-friendly ones.
  const auto ef =
      sched.estimate_cpu(shape_with_scheme(1'000'000, 2'000'000,
                                           codec::Scheme::kEliasFano));
  const auto vbyte =
      sched.estimate_cpu(shape_with_scheme(1'000'000, 2'000'000,
                                           codec::Scheme::kVarByte));
  const auto repair =
      sched.estimate_cpu(shape_with_scheme(1'000'000, 2'000'000,
                                           codec::Scheme::kRePair));
  EXPECT_LT(ef.ps(), vbyte.ps());
  // Re-Pair's expansion is mode-independent (it never vectorizes), so its
  // estimate lands near — but not on — the vector-friendly codecs'.
  EXPECT_NE(ef.ps(), repair.ps());
}

TEST(Scheduler, GpuEstimatePenalizesSerialFallbackCodecs) {
  Scheduler sched;
  // VByte and Simple16 have no lane-parallel device kernel (gpu/decode.h
  // falls back to a lane-0 loop), so their GPU estimates must exceed the
  // GPU-parallel codecs'; EF and BP128 pay no penalty at all.
  const auto ef = sched.estimate_gpu(
      shape_with_scheme(1'000'000, 2'000'000, codec::Scheme::kEliasFano));
  const auto bp128 = sched.estimate_gpu(
      shape_with_scheme(1'000'000, 2'000'000, codec::Scheme::kBitPack128));
  const auto vbyte = sched.estimate_gpu(
      shape_with_scheme(1'000'000, 2'000'000, codec::Scheme::kVarByte));
  const auto simple16 = sched.estimate_gpu(
      shape_with_scheme(1'000'000, 2'000'000, codec::Scheme::kSimple16));
  EXPECT_EQ(ef.ps(), bp128.ps());
  EXPECT_GT(vbyte.ps(), ef.ps());
  EXPECT_GT(simple16.ps(), ef.ps());
}

TEST(Scheduler, HighRatioTransferChargesActualCompressedBytes) {
  Scheduler sched;
  // Selective block transfer (ratio > threshold): the PCIe term scales with
  // the list's real bytes-per-posting, so a better-compressed list is
  // cheaper to place on the GPU.
  StepShape dense = shape(2'000, 2'000'000);
  dense.longer_bytes = 2'000'000 / 4;  // 2 bits/posting
  StepShape loose = dense;
  loose.longer_bytes = 2'000'000 * 4;  // 32 bits/posting
  EXPECT_LT(sched.estimate_gpu(dense).ps(), sched.estimate_gpu(loose).ps());
  // The CPU side decodes from host memory: transfer bytes are irrelevant.
  EXPECT_EQ(sched.estimate_cpu(dense).ps(), sched.estimate_cpu(loose).ps());
}

// ---- Three-way co-execution (DESIGN.md §15) --------------------------------

namespace {
/// A shape big enough to clear split_min_probe, placed like a mid-query
/// intersect (intermediate on the CPU, compressed long list at ~1 B/elem).
StepShape big_shape(double ratio) {
  const std::uint64_t shorter = 1u << 20;
  StepShape s = shape(shorter, static_cast<std::uint64_t>(ratio * shorter),
                      Placement::kCpu);
  s.longer_bytes = s.longer;
  return s;
}
}  // namespace

TEST(SchedulerSplit, RatioPolicyGeneralizesIntoABand) {
  Scheduler sched;  // defaults: threshold 128, split_band 4
  // Below the band one processor dominates and the binary rule stands.
  EXPECT_EQ(sched.decide(big_shape(16.0)), Placement::kGpu);
  // Above it likewise.
  EXPECT_EQ(sched.decide(big_shape(512.0)), Placement::kCpu);
  EXPECT_EQ(sched.decide(big_shape(2000.0)), Placement::kCpu);
  // Inside the band the three-way cost comparison takes over: near the
  // lower edge the GPU still wins outright, past the crossover both
  // processors finish in comparable time and the split wins.
  EXPECT_EQ(sched.decide(big_shape(48.0)), Placement::kGpu);
  EXPECT_EQ(sched.decide(big_shape(128.0)), Placement::kSplit);
  EXPECT_EQ(sched.decide(big_shape(400.0)), Placement::kSplit);
}

TEST(SchedulerSplit, SmallProbesNeverSplit) {
  Scheduler sched;
  // Identical ratio, probe below split_min_probe: the GPU leg's fixed costs
  // have nothing to amortize over, so the binary rule stands.
  StepShape s = shape(1000, 128'000, Placement::kCpu);
  EXPECT_EQ(sched.decide(s), Placement::kCpu);
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kCostModel;
  Scheduler cost(opt);
  EXPECT_NE(cost.decide(s), Placement::kSplit);
}

TEST(SchedulerSplit, SplitCanBeDisabled) {
  SchedulerOptions opt;
  opt.split = false;
  Scheduler sched(opt);
  EXPECT_EQ(sched.decide(big_shape(128.0)), Placement::kCpu);  // plain rule
  opt.policy = SchedulerPolicy::kCostModel;
  Scheduler cost(opt);
  EXPECT_NE(cost.decide(big_shape(128.0)), Placement::kSplit);
}

TEST(SchedulerSplit, SplitEstimateBracketsAndBeatsAtChosenAlpha) {
  Scheduler sched;
  const StepShape s = big_shape(192.0);
  ASSERT_EQ(sched.decide(s), Placement::kSplit);
  const double alpha = sched.split_alpha(s);
  EXPECT_GT(alpha, 0.0);
  EXPECT_LT(alpha, 1.0);
  const auto t_split = sched.estimate_split(s, alpha);
  const auto t_cpu = sched.estimate_cpu(s);
  const auto t_gpu = sched.estimate_gpu(s);
  const auto best = t_cpu.ps() < t_gpu.ps() ? t_cpu : t_gpu;
  // The min-gain gate: the chosen split undercuts the better single
  // processor by at least split_min_gain.
  EXPECT_LT(static_cast<double>(t_split.ps()),
            (1.0 - sched.options().split_min_gain) *
                static_cast<double>(best.ps()));
  // Degenerate alphas price (at least) the full single-processor work, so
  // the grid never prefers a sham split.
  EXPECT_GE(sched.estimate_split(s, 0.0).ps(), t_cpu.ps());
}

TEST(SchedulerSplit, AlphaIsDeterministicAndForceable) {
  Scheduler a;
  Scheduler b;
  const StepShape s = big_shape(256.0);
  EXPECT_EQ(a.split_alpha(s), b.split_alpha(s));  // pure function of shape

  SchedulerOptions opt;
  opt.forced_split_alpha = 0.25;
  Scheduler forced(opt);
  EXPECT_DOUBLE_EQ(forced.split_alpha(s), 0.25);
  opt.forced_split_alpha = 7.0;  // clamped into [0, 1]
  Scheduler clamped(opt);
  EXPECT_DOUBLE_EQ(clamped.split_alpha(s), 1.0);
}

TEST(SchedulerSplit, AlwaysSplitPolicy) {
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kAlwaysSplit;
  Scheduler sched(opt);
  EXPECT_EQ(sched.decide(shape(10, 10)), Placement::kSplit);
  EXPECT_EQ(sched.decide(shape(0, 1000)), Placement::kCpu);  // nothing to do
}

TEST(SchedulerSplit, MinGainGateSuppressesMarginalSplits) {
  // With the gain requirement cranked up no split can qualify; the
  // three-way comparison degrades to the plain two-way one.
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kCostModel;
  opt.split_min_gain = 1.0;
  Scheduler sched(opt);
  EXPECT_NE(sched.decide(big_shape(128.0)), Placement::kSplit);
  EXPECT_NE(sched.decide(big_shape(256.0)), Placement::kSplit);
}
