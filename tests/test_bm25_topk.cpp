#include "cpu/bm25.h"

#include <gtest/gtest.h>

#include <cmath>

#include "index/inverted_index.h"

namespace gc = griffin::cpu;
using griffin::core::ScoredDoc;
using griffin::index::DocId;
using griffin::index::InvertedIndex;

namespace {

/// Index: 4 docs; term 0 in docs {0,1,2,3}, term 1 in {1,3} with tf 2 and 5.
InvertedIndex tiny_index() {
  InvertedIndex idx(griffin::codec::Scheme::kEliasFano);
  idx.docs().resize(4);
  for (DocId d = 0; d < 4; ++d) idx.docs().set_length(d, 100 + d * 20);
  const std::vector<DocId> t0{0, 1, 2, 3};
  const std::vector<std::uint32_t> f0{1, 1, 3, 1};
  idx.add_list(t0, f0);
  const std::vector<DocId> t1{1, 3};
  const std::vector<std::uint32_t> f1{2, 5};
  idx.add_list(t1, f1);
  return idx;
}

griffin::sim::CpuSpec spec;

}  // namespace

TEST(Bm25, IdfDecreasesWithDf) {
  const auto idx = tiny_index();
  gc::Bm25Scorer scorer(idx);
  EXPECT_GT(scorer.idf(1), scorer.idf(2));
  EXPECT_GT(scorer.idf(2), scorer.idf(4));
  EXPECT_GT(scorer.idf(4), 0.0);  // +1 floor keeps it positive
}

TEST(Bm25, TermScoreIncreasesWithTfSaturating) {
  const auto idx = tiny_index();
  gc::Bm25Scorer scorer(idx);
  const double s1 = scorer.term_score(1, 2, 100);
  const double s2 = scorer.term_score(2, 2, 100);
  const double s10 = scorer.term_score(10, 2, 100);
  const double s100 = scorer.term_score(100, 2, 100);
  EXPECT_LT(s1, s2);
  EXPECT_LT(s2, s10);
  EXPECT_LT(s10, s100);
  // Saturation: doubling tf from 50 to 100 adds less than 1->2 did.
  EXPECT_LT(s100 - s10, s2 - s1 + 1e-12);
}

TEST(Bm25, LongerDocsPenalized) {
  const auto idx = tiny_index();
  gc::Bm25Scorer scorer(idx);
  EXPECT_GT(scorer.term_score(3, 2, 50), scorer.term_score(3, 2, 500));
}

TEST(Bm25, ScoreAgainstManualComputation) {
  const auto idx = tiny_index();
  gc::Bm25Params params;
  gc::Bm25Scorer scorer(idx, params);
  griffin::sim::CpuCostAccumulator acc(spec);

  const std::vector<griffin::index::TermId> terms{0, 1};
  const std::vector<DocId> docs{1, 3};
  std::vector<ScoredDoc> out;
  scorer.score(terms, docs, out, acc);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].doc, 1u);
  EXPECT_EQ(out[1].doc, 3u);

  // Manual: doc 1 has tf(t0)=1, tf(t1)=2; doc 3 has tf(t0)=1, tf(t1)=5.
  const double expect1 = scorer.term_score(1, 4, idx.docs().length(1)) +
                         scorer.term_score(2, 2, idx.docs().length(1));
  const double expect3 = scorer.term_score(1, 4, idx.docs().length(3)) +
                         scorer.term_score(5, 2, idx.docs().length(3));
  EXPECT_NEAR(out[0].score, expect1, 1e-5);
  EXPECT_NEAR(out[1].score, expect3, 1e-5);
  // Doc 3's heavy tf on the rare term should rank it above doc 1 despite
  // being longer.
  EXPECT_GT(out[1].score, out[0].score);
}

TEST(Bm25, TfLookupAcrossBlocks) {
  // A list spanning several blocks: tf positions must line up globally.
  InvertedIndex idx(griffin::codec::Scheme::kEliasFano, 128);
  const std::uint32_t n = 1000;
  idx.docs().resize(n * 3);
  std::vector<DocId> docs(n);
  std::vector<std::uint32_t> tfs(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    docs[i] = i * 3;
    tfs[i] = 1 + (i % 7);
    idx.docs().set_length(i * 3, 200);
  }
  idx.add_list(docs, tfs);

  gc::Bm25Scorer scorer(idx);
  griffin::sim::CpuCostAccumulator acc(spec);
  const std::vector<griffin::index::TermId> terms{0};
  // Sample docs across block boundaries.
  const std::vector<DocId> probe{0, 3, 127 * 3, 128 * 3, 129 * 3, 500 * 3,
                                 999 * 3};
  std::vector<ScoredDoc> out;
  scorer.score(terms, probe, out, acc);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    const std::uint32_t pos = probe[i] / 3;
    const double expect = scorer.term_score(1 + (pos % 7), n, 200);
    EXPECT_NEAR(out[i].score, expect, 1e-5) << "probe " << i;
  }
}

TEST(TopK, SelectsHighestScores) {
  griffin::sim::CpuCostAccumulator acc(spec);
  std::vector<ScoredDoc> v;
  for (std::uint32_t i = 0; i < 100; ++i) {
    v.push_back({i, static_cast<float>((i * 37) % 100)});
  }
  gc::top_k(v, 5, acc);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0].score, 99.0f);
  for (std::size_t i = 1; i < v.size(); ++i) {
    EXPECT_LE(v[i].score, v[i - 1].score);
  }
}

TEST(TopK, KLargerThanInput) {
  griffin::sim::CpuCostAccumulator acc(spec);
  std::vector<ScoredDoc> v{{1, 2.0f}, {2, 1.0f}};
  gc::top_k(v, 10, acc);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].doc, 1u);
}

TEST(TopK, TieBreaksByDocId) {
  griffin::sim::CpuCostAccumulator acc(spec);
  std::vector<ScoredDoc> v{{9, 1.0f}, {3, 1.0f}, {7, 1.0f}};
  gc::top_k(v, 2, acc);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].doc, 3u);
  EXPECT_EQ(v[1].doc, 7u);
}
