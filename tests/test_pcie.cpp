#include "pcie/link.h"

#include <gtest/gtest.h>

namespace gp = griffin::pcie;
using griffin::sim::Duration;

TEST(PcieLink, TransferTimeIsLatencyPlusBandwidth) {
  gp::Link link;  // paper testbed: 8 GB/s, 8 us latency
  const Duration t0 = link.transfer_time(0);
  EXPECT_NEAR(t0.us(), 8.0, 0.01);
  // 8 GB at 8 GB/s = 1 s.
  const Duration big = link.transfer_time(8ull * 1000 * 1000 * 1000);
  EXPECT_NEAR(big.seconds(), 1.0, 0.01);
  // Monotone in size.
  EXPECT_LT(link.transfer_time(1000).ps(), link.transfer_time(2000).ps());
}

TEST(PcieLink, SmallTransfersAreLatencyBound) {
  gp::Link link;
  const Duration small = link.transfer_time(4096);
  // 4 KB takes 0.5 us of wire time; latency dominates 16:1.
  EXPECT_LT(small.us(), 9.0);
  EXPECT_GT(small.us(), 8.0);
}

TEST(TransferLedger, AccumulatesDirectionsAndAllocs) {
  gp::Link link;
  gp::TransferLedger ledger;
  ledger.add_transfer(link, 1000, true);
  ledger.add_transfer(link, 2000, true);
  ledger.add_transfer(link, 500, false);
  ledger.add_alloc(link);

  EXPECT_EQ(ledger.h2d_bytes, 3000u);
  EXPECT_EQ(ledger.d2h_bytes, 500u);
  EXPECT_EQ(ledger.transfers, 3u);
  EXPECT_EQ(ledger.allocs, 1u);
  const Duration expect = link.transfer_time(1000) + link.transfer_time(2000) +
                          link.transfer_time(500) + link.alloc_time();
  EXPECT_EQ(ledger.total.ps(), expect.ps());

  ledger.reset();
  EXPECT_EQ(ledger.transfers, 0u);
  EXPECT_EQ(ledger.total.ps(), 0);
}
