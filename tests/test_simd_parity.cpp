// SIMD execution-mode parity (DESIGN.md §13). The vector presets move only
// the *charged* cycles: every decode and intersection must produce
// bit-identical output under scalar, SSE4 and AVX2 specs, the lane counters
// must obey the ceil(n/lanes) accounting invariants, and the scheduler's
// SIMD-aware crossover must order avx2 <= sse4 <= scalar.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/hybrid_engine.h"
#include "cpu/decode.h"
#include "cpu/engine.h"
#include "cpu/intersect.h"
#include "cpu/simd_cost.h"
#include "engine_test_util.h"
#include "util/rng.h"
#include "workload/corpus.h"

namespace gc = griffin::cpu;
namespace sim = griffin::sim;
using griffin::codec::BlockCompressedList;
using griffin::codec::DocId;
using griffin::codec::Scheme;

namespace {

std::vector<sim::CpuSpec> all_specs() {
  return {sim::CpuSpec{}, sim::CpuSpec::sse4_testbed(),
          sim::CpuSpec::modern_avx2()};
}

std::vector<DocId> reference_intersect(std::span<const DocId> a,
                                       std::span<const DocId> b) {
  std::vector<DocId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

// ---- Decode parity: same docIDs out of every preset, cheaper when
// ---- vectorized.

class SimdDecodeParam : public ::testing::TestWithParam<Scheme> {};

TEST_P(SimdDecodeParam, DecodeBitIdenticalAcrossPresets) {
  const Scheme scheme = GetParam();
  griffin::util::Xoshiro256 rng(99 + static_cast<int>(scheme));
  for (const std::uint64_t n : {1ull, 127ull, 128ull, 1000ull, 40'000ull}) {
    const auto docs = griffin::workload::make_uniform_list(
        n, static_cast<DocId>(n * 24 + 64), rng);
    const auto list = BlockCompressedList::build(docs, scheme);

    std::vector<DocId> scalar_out;
    double scalar_cycles = 0.0;
    for (const auto& spec : all_specs()) {
      sim::CpuCostAccumulator acc(spec);
      std::vector<DocId> out;
      gc::decode_all(list, out, acc);
      EXPECT_EQ(out, docs) << spec.vector.name;
      if (!spec.vector.enabled) {
        scalar_out = out;
        scalar_cycles = acc.cycles();
        EXPECT_EQ(acc.simd().loops, 0u) << "scalar mode charged vector loops";
      } else {
        EXPECT_EQ(out, scalar_out) << spec.vector.name;
        if (scheme != Scheme::kSimple16) {
          EXPECT_GT(acc.simd().loops, 0u) << spec.vector.name;
          // Vectorized codecs must get cheaper once lists are long enough
          // to amortize the per-loop setup (tiny lists rightly pay *more*
          // in vector mode); Simple16's selector switch stays scalar, so
          // its charges are identical either way.
          if (n >= 128) {
            EXPECT_LT(acc.cycles(), scalar_cycles)
                << spec.vector.name << " n=" << n;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimdDecodeParam,
                         ::testing::Values(Scheme::kPForDelta,
                                           Scheme::kEliasFano,
                                           Scheme::kVarByte,
                                           Scheme::kSimple16));

// ---- Intersection parity: all variants, shapes, and ratios.

class SimdIntersectParam
    : public ::testing::TestWithParam<std::tuple<Scheme, int, double>> {};

TEST_P(SimdIntersectParam, IntersectBitIdenticalAcrossPresets) {
  const auto [scheme, longer_size, ratio] = GetParam();
  griffin::util::Xoshiro256 rng(longer_size ^ static_cast<int>(ratio * 16));
  const auto pair = griffin::workload::make_pair_with_ratio(
      longer_size, ratio, 40'000'000, 0.35, rng);
  const auto expect = reference_intersect(pair.shorter, pair.longer);
  const auto la = BlockCompressedList::build(pair.shorter, scheme);
  const auto lb = BlockCompressedList::build(pair.longer, scheme);

  for (const auto& spec : all_specs()) {
    sim::CpuCostAccumulator acc(spec);
    std::vector<DocId> out;
    gc::merge_intersect(std::span<const DocId>(pair.shorter),
                        std::span<const DocId>(pair.longer), out, acc);
    EXPECT_EQ(out, expect) << spec.vector.name << " decoded x decoded";
    gc::merge_intersect(std::span<const DocId>(pair.shorter), lb, out, acc);
    EXPECT_EQ(out, expect) << spec.vector.name << " decoded x compressed";
    gc::merge_intersect(la, lb, out, acc);
    EXPECT_EQ(out, expect) << spec.vector.name << " compressed x compressed";
    gc::skip_intersect(pair.shorter, lb, out, acc);
    EXPECT_EQ(out, expect) << spec.vector.name << " skip compressed";
    gc::skip_intersect(pair.shorter, std::span<const DocId>(pair.longer), out,
                       acc);
    EXPECT_EQ(out, expect) << spec.vector.name << " skip decoded";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimdIntersectParam,
    ::testing::Combine(::testing::Values(Scheme::kEliasFano,
                                         Scheme::kPForDelta),
                       ::testing::Values(700, 30'000),
                       ::testing::Values(1.0, 4.0, 60.0, 300.0)));

// ---- Lane-accounting invariants: charged vector ops == ceil(n/lanes).

TEST(SimdLaneAccounting, ChargeLoopCountsCeilNOverLanes) {
  for (const auto& spec :
       {sim::CpuSpec::sse4_testbed(), sim::CpuSpec::modern_avx2()}) {
    const auto lanes = static_cast<std::uint64_t>(spec.vector.lanes);
    for (const std::uint64_t n : {1ull, 3ull, 4ull, 8ull, 127ull, 128ull,
                                  1000ull}) {
      sim::CpuCostAccumulator acc(spec);
      gc::simd::charge_loop(acc, n, 4.0, 2.0);
      const std::uint64_t want_vops = (n + lanes - 1) / lanes;
      EXPECT_EQ(acc.simd().loops, 1u);
      EXPECT_EQ(acc.simd().vector_ops, want_vops) << n << "/" << lanes;
      EXPECT_EQ(acc.simd().useful_lanes, n);
      EXPECT_EQ(acc.simd().charged_lanes, want_vops * lanes);
      EXPECT_EQ(acc.simd().tail_elems, n % lanes);
      EXPECT_GT(acc.simd().utilization(), 0.0);
      EXPECT_LE(acc.simd().utilization(), 1.0);
      // Full vectors waste nothing; ragged tails waste exactly the unused
      // lanes of the final iteration.
      if (n % lanes == 0) {
        EXPECT_DOUBLE_EQ(acc.simd().utilization(), 1.0);
      } else {
        EXPECT_LT(acc.simd().utilization(), 1.0);
      }
      EXPECT_GT(acc.cycles(), 0.0);
    }
  }
}

TEST(SimdLaneAccounting, CountersFlowThroughEngineTrace) {
  const auto& idx = griffin::testutil::small_index();
  griffin::core::Query q;
  q.terms = {1, 2, 3};
  q.k = 10;
  gc::CpuEngine scalar_engine(idx);
  gc::CpuEngine simd_engine(idx, sim::CpuSpec::modern_avx2());
  const auto scalar_res = scalar_engine.execute(q);
  const auto simd_res = simd_engine.execute(q);

  EXPECT_EQ(scalar_res.metrics.simd.loops, 0u);
  EXPECT_GT(simd_res.metrics.simd.loops, 0u);
  EXPECT_GT(simd_res.metrics.simd.utilization(), 0.0);
  EXPECT_LE(simd_res.metrics.simd.utilization(), 1.0);

  // Step deltas must reassemble the query totals, same as the durations.
  griffin::core::TraceSummary sum;
  sum.add(simd_res.trace);
  EXPECT_EQ(sum.simd.vector_ops, simd_res.metrics.simd.vector_ops);
  EXPECT_EQ(sum.simd.useful_lanes, simd_res.metrics.simd.useful_lanes);
  EXPECT_EQ(sum.lane_utilization(), simd_res.metrics.simd.utilization());
}

// ---- Engine-level parity: identical top-k across presets.

TEST(SimdEngineParity, CpuEngineTopkBitIdentical) {
  const auto& idx = griffin::testutil::small_index();
  griffin::util::Xoshiro256 rng(7);
  for (int i = 0; i < 12; ++i) {
    griffin::core::Query q;
    const auto nterms = 2 + (i % 3);
    for (int t = 0; t < nterms; ++t) {
      q.terms.push_back(static_cast<griffin::index::TermId>(rng() % 300));
    }
    q.k = 10;
    gc::CpuEngine scalar_engine(idx);
    const auto want = scalar_engine.execute(q);
    for (const auto& spec :
         {sim::CpuSpec::sse4_testbed(), sim::CpuSpec::modern_avx2()}) {
      gc::CpuEngine engine(idx, spec);
      const auto got = engine.execute(q);
      ASSERT_EQ(got.topk.size(), want.topk.size()) << spec.vector.name;
      for (std::size_t r = 0; r < want.topk.size(); ++r) {
        EXPECT_EQ(got.topk[r].doc, want.topk[r].doc) << spec.vector.name;
        EXPECT_EQ(got.topk[r].score, want.topk[r].score) << spec.vector.name;
      }
      EXPECT_EQ(got.metrics.result_count, want.metrics.result_count);
    }
  }
}

TEST(SimdEngineParity, HybridEngineTopkBitIdentical) {
  const auto& idx = griffin::testutil::small_index();
  griffin::core::Query q;
  q.terms = {2, 5, 9};
  q.k = 10;
  griffin::core::HybridEngine scalar_engine(idx);
  const auto want = scalar_engine.execute(q);
  for (const auto& cpu_spec :
       {sim::CpuSpec::sse4_testbed(), sim::CpuSpec::modern_avx2()}) {
    sim::HardwareSpec hw;
    hw.cpu = cpu_spec;
    griffin::core::HybridEngine engine(idx, hw);
    const auto got = engine.execute(q);
    ASSERT_EQ(got.topk.size(), want.topk.size()) << cpu_spec.vector.name;
    for (std::size_t r = 0; r < want.topk.size(); ++r) {
      EXPECT_EQ(got.topk[r].doc, want.topk[r].doc) << cpu_spec.vector.name;
      EXPECT_EQ(got.topk[r].score, want.topk[r].score) << cpu_spec.vector.name;
    }
  }
}

// ---- The re-derived crossover: SIMD presets shrink the GPU-favored band,
// ---- and never push the threshold to (or below) zero.

TEST(SimdCrossover, ScaleOrdersAvx2BelowSse4BelowScalar) {
  const double scalar = gc::simd::crossover_scale(sim::CpuSpec{});
  const double sse4 = gc::simd::crossover_scale(sim::CpuSpec::sse4_testbed());
  const double avx2 = gc::simd::crossover_scale(sim::CpuSpec::modern_avx2());
  EXPECT_DOUBLE_EQ(scalar, 1.0);
  EXPECT_LT(avx2, sse4);
  EXPECT_LT(sse4, scalar);
  EXPECT_GT(avx2, 0.0);
  // The acceptance bound: the scaled threshold stays a real band, not a
  // degenerate one (the AVX2 crossover must stay above ~half the scalar
  // block-size rule so the GPU keeps the low-ratio regime).
  EXPECT_GT(128.0 * avx2, 32.0);
}

TEST(SimdCrossover, SchedulerShiftsRatioRuleWithVectorUnit) {
  griffin::core::StepShape shape;
  shape.shorter = 1'000;
  shape.longer = 100'000;  // ratio 100: GPU under the scalar lambda=128 rule
  shape.current_location = griffin::core::Placement::kGpu;

  sim::HardwareSpec scalar_hw;
  griffin::core::Scheduler scalar_sched({}, scalar_hw);
  EXPECT_EQ(scalar_sched.decide(shape), griffin::core::Placement::kGpu);

  sim::HardwareSpec avx2_hw;
  avx2_hw.cpu = sim::CpuSpec::modern_avx2();
  griffin::core::Scheduler simd_sched({}, avx2_hw);
  const double scaled =
      128.0 * gc::simd::crossover_scale(avx2_hw.cpu);
  if (scaled < 100.0) {
    EXPECT_EQ(simd_sched.decide(shape), griffin::core::Placement::kCpu);
  }

  // simd_aware off: decide as if the CPU were scalar.
  griffin::core::SchedulerOptions opt;
  opt.simd_aware = false;
  griffin::core::Scheduler off_sched(opt, avx2_hw);
  EXPECT_EQ(off_sched.decide(shape), griffin::core::Placement::kGpu);
}

TEST(SimdCrossover, CostEstimateCheaperWithVectorUnit) {
  griffin::core::StepShape merge_shape;
  merge_shape.shorter = 100'000;
  merge_shape.longer = 200'000;
  griffin::core::StepShape skip_shape;
  skip_shape.shorter = 1'000;
  skip_shape.longer = 500'000;

  sim::HardwareSpec scalar_hw;
  sim::HardwareSpec simd_hw;
  simd_hw.cpu = sim::CpuSpec::sse4_testbed();
  griffin::core::Scheduler scalar_sched({}, scalar_hw);
  griffin::core::Scheduler simd_sched({}, simd_hw);
  EXPECT_LT(simd_sched.estimate_cpu(merge_shape).ps(),
            scalar_sched.estimate_cpu(merge_shape).ps());
  EXPECT_LT(simd_sched.estimate_cpu(skip_shape).ps(),
            scalar_sched.estimate_cpu(skip_shape).ps());
  // The GPU estimate is untouched by the CPU's vector unit.
  EXPECT_EQ(simd_sched.estimate_gpu(merge_shape).ps(),
            scalar_sched.estimate_gpu(merge_shape).ps());
}
