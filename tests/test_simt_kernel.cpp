// Semantics and work-counting of the SIMT simulator: thread indexing,
// shared memory, barriers, warp-max divergence accounting, memory
// coalescing, bank conflicts, atomics.
#include "simt/kernel.h"

#include <gtest/gtest.h>

#include <numeric>

namespace gs = griffin::simt;

namespace {
gs::Device make_device() { return gs::Device(); }
}  // namespace

TEST(SimtKernel, ThreadIndexing) {
  auto dev = make_device();
  auto out = dev.alloc<std::uint32_t>(512);
  gs::launch(dev, {4, 128}, [&](gs::Block& blk) {
    blk.for_each_thread([&](gs::Thread& t) {
      EXPECT_EQ(t.gid(), t.block_id() * 128 + t.tid());
      EXPECT_EQ(t.lane(), t.tid() % 32);
      EXPECT_EQ(t.warp(), t.tid() / 32);
      t.store(out, t.gid(), t.gid());
    });
  });
  std::vector<std::uint32_t> host(512);
  dev.download(std::span<std::uint32_t>(host), out);
  for (std::uint32_t i = 0; i < 512; ++i) EXPECT_EQ(host[i], i);
}

TEST(SimtKernel, LaunchCountsBlocksAndWarps) {
  auto dev = make_device();
  const auto stats = gs::launch(dev, {7, 96}, [&](gs::Block&) {});
  EXPECT_EQ(stats.blocks, 7u);
  EXPECT_EQ(stats.warps, 7u * 3u);  // 96 threads = 3 warps
}

TEST(SimtKernel, SharedMemoryPersistsAcrossRegions) {
  auto dev = make_device();
  auto out = dev.alloc<std::uint32_t>(1);
  gs::launch(dev, {1, 64}, [&](gs::Block& blk) {
    auto sh = blk.shared<std::uint32_t>(64);
    blk.for_each_thread([&](gs::Thread& t) {
      t.sstore(std::span<std::uint32_t>(sh), t.tid(), t.tid() + 1);
    });
    blk.for_each_thread([&](gs::Thread& t) {
      if (t.tid() == 0) {
        std::uint32_t sum = 0;
        for (std::uint32_t i = 0; i < 64; ++i) {
          sum += t.sload(std::span<const std::uint32_t>(sh), i);
        }
        t.store(out, 0, sum);
      }
    });
  });
  std::vector<std::uint32_t> host(1);
  dev.download(std::span<std::uint32_t>(host), out);
  EXPECT_EQ(host[0], 64u * 65u / 2u);
}

TEST(SimtKernel, SharedBudgetEnforced) {
  auto dev = make_device();
  EXPECT_THROW(gs::launch(dev, {1, 32},
                          [&](gs::Block& blk) {
                            blk.shared<std::uint8_t>(49 * 1024);
                          }),
               std::runtime_error);
}

TEST(SimtKernel, WarpTimeIsMaxOverLanes) {
  auto dev = make_device();
  // One warp; one lane charges 1000 cycles, others 1: SIMT lockstep means
  // the warp pays ~1000, not the sum and not the average.
  const auto stats = gs::launch(dev, {1, 32}, [&](gs::Block& blk) {
    blk.for_each_thread([&](gs::Thread& t) {
      t.charge(t.tid() == 5 ? 1000.0 : 1.0);
    });
  });
  EXPECT_GE(stats.warp_cycles, 1000.0);
  EXPECT_LT(stats.warp_cycles, 1010.0);
}

TEST(SimtKernel, DivergenceCostsMoreThanUniform) {
  auto dev = make_device();
  auto work = [&](bool divergent) {
    return gs::launch(dev, {4, 128}, [&](gs::Block& blk) {
             blk.for_each_thread([&](gs::Thread& t) {
               // Same total work either way: 64 cycles avg per lane.
               const double c = divergent ? (t.lane() < 16 ? 128.0 : 0.0)
                                          : 64.0;
               t.charge(c);
             });
           })
        .warp_cycles;
  };
  EXPECT_NEAR(work(false), 4 * 4 * 64.0, 1.0);
  EXPECT_NEAR(work(true), 4 * 4 * 128.0, 1.0);  // 2x from divergence
}

TEST(SimtKernel, CoalescedLoadsMakeOneTransactionPerWarp) {
  auto dev = make_device();
  auto buf = dev.alloc<std::uint32_t>(1024);
  // 32 lanes read 32 consecutive 4-byte words = exactly one 128B segment.
  const auto stats = gs::launch(dev, {1, 32}, [&](gs::Block& blk) {
    blk.for_each_thread([&](gs::Thread& t) { (void)t.load(buf, t.lane()); });
  });
  EXPECT_EQ(stats.global_transactions, 1u);
  EXPECT_EQ(stats.global_bytes_requested, 128u);
  EXPECT_DOUBLE_EQ(stats.coalescing_efficiency(dev.spec()), 1.0);
}

TEST(SimtKernel, ScatteredLoadsMakeOneTransactionPerLane) {
  auto dev = make_device();
  auto buf = dev.alloc<std::uint32_t>(32 * 64);
  // Each lane reads 256 bytes apart: 32 distinct segments.
  const auto stats = gs::launch(dev, {1, 32}, [&](gs::Block& blk) {
    blk.for_each_thread(
        [&](gs::Thread& t) { (void)t.load(buf, t.lane() * 64ull); });
  });
  EXPECT_EQ(stats.global_transactions, 32u);
  EXPECT_LT(stats.coalescing_efficiency(dev.spec()), 0.05);
}

TEST(SimtKernel, AccessOrdinalsCoalesceIndependently) {
  auto dev = make_device();
  auto buf = dev.alloc<std::uint32_t>(4096);
  // Two accesses per lane, both coalesced within their ordinal: 2 txns.
  const auto stats = gs::launch(dev, {1, 32}, [&](gs::Block& blk) {
    blk.for_each_thread([&](gs::Thread& t) {
      (void)t.load(buf, t.lane());
      (void)t.load(buf, 2048 + t.lane());
    });
  });
  EXPECT_EQ(stats.global_transactions, 2u);
}

TEST(SimtKernel, StraddlingAccessCountsTwoSegments) {
  auto dev = make_device();
  auto buf = dev.alloc<std::uint64_t>(64);
  // A single 8-byte load at byte offset 124 relative to the segment grid
  // spans two 128-byte segments... force it by loading element 15 (bytes
  // 120..128) only if base is segment-aligned; instead verify >= 1.
  const auto stats = gs::launch(dev, {1, 1}, [&](gs::Block& blk) {
    blk.for_each_thread([&](gs::Thread& t) { (void)t.load(buf, 15); });
  });
  EXPECT_GE(stats.global_transactions, 1u);
  EXPECT_LE(stats.global_transactions, 2u);
}

TEST(SimtKernel, BankConflictsCharged) {
  auto conflict_cycles = [](std::uint32_t stride) {
    gs::Device d;
    gs::launch(d, {1, 32}, [&](gs::Block& blk) {
      auto sh = blk.shared<std::uint32_t>(32 * stride + 1);
      blk.for_each_thread([&](gs::Thread& t) {
        t.sstore(std::span<std::uint32_t>(sh), t.lane() * stride, 1u);
      });
    });
    return gs::launch(d, {1, 32}, [&](gs::Block& blk) {
             auto sh = blk.shared<std::uint32_t>(32 * stride + 1);
             blk.for_each_thread([&](gs::Thread& t) {
               t.sstore(std::span<std::uint32_t>(sh), t.lane() * stride, 1u);
             });
           })
        .shared_conflict_cycles;
  };
  EXPECT_DOUBLE_EQ(conflict_cycles(1), 0.0);   // stride 1: conflict-free
  EXPECT_GT(conflict_cycles(32), 20.0);        // stride 32: all same bank
}

TEST(SimtKernel, BarriersCounted) {
  auto dev = make_device();
  const auto stats = gs::launch(dev, {3, 64}, [&](gs::Block& blk) {
    blk.for_each_thread([](gs::Thread&) {});  // implicit barrier
    blk.barrier();                            // explicit barrier
  });
  EXPECT_EQ(stats.barriers, 3u * 2u);
}

TEST(SimtKernel, AtomicAddReturnsOldAndAccumulates) {
  auto dev = make_device();
  auto counter = dev.alloc<std::uint32_t>(1);
  const std::vector<std::uint32_t> zero{0};
  dev.upload(counter, std::span<const std::uint32_t>(zero));

  std::vector<std::uint32_t> tickets(256, 0);
  gs::launch(dev, {2, 128}, [&](gs::Block& blk) {
    blk.for_each_thread([&](gs::Thread& t) {
      tickets[t.gid()] = t.atomic_add(counter, 0, 1u);
    });
  });
  std::vector<std::uint32_t> host(1);
  dev.download(std::span<std::uint32_t>(host), counter);
  EXPECT_EQ(host[0], 256u);
  // Tickets are a permutation of 0..255.
  std::sort(tickets.begin(), tickets.end());
  for (std::uint32_t i = 0; i < 256; ++i) EXPECT_EQ(tickets[i], i);
}

TEST(SimtKernel, ContendedAtomicsCostMoreThanSpread) {
  auto dev = make_device();
  auto buf = dev.alloc<std::uint32_t>(32);
  auto cycles = [&](bool contended) {
    return gs::launch(dev, {1, 32}, [&](gs::Block& blk) {
             blk.for_each_thread([&](gs::Thread& t) {
               t.atomic_add(buf, contended ? 0 : t.lane(), 1u);
             });
           })
        .warp_cycles;
  };
  EXPECT_GT(cycles(true), cycles(false) + 100.0);
}
