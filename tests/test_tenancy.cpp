// Multi-tenant device subsystem (DESIGN.md §12): golden parity with
// sequential execution (tenancy and batching reshape timing, never bits),
// per-query stage identities on the shared timeline, scope accounting that
// partitions the global clocks exactly, cross-query batching, and the
// occupancy-driven multi-tenant service loop.
#include "tenancy/device_manager.h"

#include <gtest/gtest.h>

#include <cstring>

#include "core/hybrid_engine.h"
#include "engine_test_util.h"
#include "service/service_sim.h"

using namespace griffin;

namespace {

std::vector<core::Query> tenant_queries(std::size_t n, std::uint64_t seed) {
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = static_cast<std::uint32_t>(n);
  qcfg.seed = seed;
  return workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(testutil::large_index().num_terms()));
}

/// Offered load with a fixed inter-arrival gap small enough that several
/// queries are always in flight on the large corpus (whose queries take
/// milliseconds).
std::vector<tenancy::TenantQuery> dense_load(
    const std::vector<core::Query>& queries, double gap_us) {
  std::vector<tenancy::TenantQuery> load;
  load.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    load.push_back(
        {queries[i], sim::Duration::from_us(gap_us * double(i))});
  }
  return load;
}

/// Bit-exact top-k comparison: doc ids equal and score *bits* equal — the
/// contract is bit-identical results, not merely close ones.
void expect_bit_identical_topk(const std::vector<core::ScoredDoc>& got,
                               const std::vector<core::ScoredDoc>& want,
                               std::size_t qi) {
  ASSERT_EQ(got.size(), want.size()) << "query " << qi;
  for (std::size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(got[r].doc, want[r].doc) << "query " << qi << " rank " << r;
    std::uint32_t gb = 0;
    std::uint32_t wb = 0;
    std::memcpy(&gb, &got[r].score, sizeof(gb));
    std::memcpy(&wb, &want[r].score, sizeof(wb));
    EXPECT_EQ(gb, wb) << "query " << qi << " rank " << r;
  }
}

}  // namespace

TEST(Tenancy, GoldenParityWithSequentialExecution) {
  // The acceptance contract: multi-tenancy + batching on vs. off vs. the
  // sequential hybrid engine — all three produce bit-identical top-k.
  const auto& idx = testutil::large_index();
  const auto queries = tenant_queries(40, 21);
  const auto load = dense_load(queries, 100.0);

  core::HybridEngine seq(idx);
  std::vector<core::QueryResult> want;
  want.reserve(queries.size());
  for (const auto& q : queries) want.push_back(seq.execute(q));

  tenancy::TenancyOptions batched;
  batched.max_concurrency = 4;
  tenancy::DeviceManager dm_batched(idx, {}, batched);
  const auto got_batched = dm_batched.run(load);

  tenancy::TenancyOptions unbatched;
  unbatched.max_concurrency = 4;
  unbatched.batch.enabled = false;
  tenancy::DeviceManager dm_plain(idx, {}, unbatched);
  const auto got_plain = dm_plain.run(load);

  ASSERT_EQ(got_batched.size(), queries.size());
  ASSERT_EQ(got_plain.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_bit_identical_topk(got_batched[i].result.topk, want[i].topk, i);
    expect_bit_identical_topk(got_plain[i].result.topk, want[i].topk, i);
    EXPECT_EQ(got_batched[i].result.metrics.result_count,
              want[i].metrics.result_count);
  }
}

TEST(Tenancy, SingleLaneMatchesSequentialTimingExactly) {
  // max_concurrency = 1 on the shared timeline IS the sequential device:
  // the same warm caches in the same order, streams merely offset by the
  // release time. Every per-query latency must match the persistent
  // sequential engine to the picosecond.
  const auto& idx = testutil::large_index();
  const auto queries = tenant_queries(25, 33);

  core::HybridEngine seq(idx);
  std::vector<sim::Duration> want;
  for (const auto& q : queries) want.push_back(seq.execute(q).metrics.total);

  tenancy::TenancyOptions opt;
  opt.max_concurrency = 1;
  tenancy::DeviceManager dm(idx, {}, opt);
  const auto got = dm.run(dense_load(queries, 50.0));

  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got[i].result.metrics.total.ps(), want[i].ps()) << "query " << i;
  }
}

TEST(Tenancy, StageIdentityHoldsPerQueryOnTheSharedTimeline) {
  // decode + intersect + transfer + rank == total + overlap.saved, exactly,
  // for every co-admitted query — with `saved` free to go negative when a
  // query queued behind its co-tenants' ops.
  const auto& idx = testutil::large_index();
  const auto queries = tenant_queries(30, 5);
  tenancy::TenancyOptions opt;
  opt.max_concurrency = 6;
  tenancy::DeviceManager dm(idx, {}, opt);
  const auto results = dm.run(dense_load(queries, 20.0));

  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& m = results[i].result.metrics;
    const sim::Duration stages = m.decode + m.intersect + m.transfer + m.rank;
    EXPECT_EQ(stages.ps(), (m.total + m.overlap.saved).ps()) << "query " << i;
    EXPECT_EQ(results[i].finish.ps(),
              (results[i].release + m.total).ps()) << "query " << i;
    EXPECT_GE(results[i].release.ps(), results[i].arrival.ps());
  }
}

TEST(Tenancy, ScopeAccountingPartitionsTheSharedClocks) {
  const auto& idx = testutil::large_index();
  const auto queries = tenant_queries(24, 11);
  tenancy::TenancyOptions opt;
  opt.max_concurrency = 4;
  tenancy::DeviceManager dm(idx, {}, opt);
  const auto results = dm.run(dense_load(queries, 40.0));
  const auto& tl = dm.timeline();

  // Per-query busy durations sum to the global per-resource busy, and no
  // resource is busy longer than the horizon.
  core::OverlapCounters sum;
  for (const auto& r : results) sum += r.result.metrics.overlap;
  for (std::size_t r = 0; r < sim::kNumResources; ++r) {
    const auto res = static_cast<sim::Resource>(r);
    EXPECT_EQ(sum.busy(res).ps(), tl.busy(res).ps()) << sim::resource_name(res);
    EXPECT_LE(tl.busy(res).ps(), tl.critical_path().ps());
    EXPECT_GE(tl.busy_fraction(res), 0.0);
    EXPECT_LE(tl.busy_fraction(res), 1.0);
  }
  EXPECT_LE(tl.critical_path().ps(), tl.serial_total().ps());
}

TEST(Tenancy, BatchingFiresAndIsAttributable) {
  const auto& idx = testutil::large_index();
  const auto queries = tenant_queries(30, 9);
  tenancy::TenancyOptions opt;
  opt.max_concurrency = 6;
  opt.batch.window = sim::Duration::from_us(200.0);
  tenancy::DeviceManager dm(idx, {}, opt);
  const auto results = dm.run(dense_load(queries, 10.0));

  EXPECT_GT(dm.batch_groups(), 0u);
  core::TraceSummary summary;
  std::uint64_t batched = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (const auto& rec : results[i].result.trace) {
      // Every record is attributable to its query.
      EXPECT_EQ(rec.query, queries[i].id);
      if (rec.batch_group != 0) {
        ++batched;
        // Only GPU decode/intersect steps batch.
        EXPECT_TRUE(rec.kind == core::StepKind::kDecode ||
                    rec.kind == core::StepKind::kIntersect);
        EXPECT_EQ(rec.placement, core::Placement::kGpu);
      }
    }
    summary.add(results[i].result.trace);
  }
  EXPECT_GT(batched, 0u);
  EXPECT_EQ(summary.batched_steps, batched);
}

TEST(Tenancy, ConcurrencyRaisesCopyEngineUtilizationAndThroughput) {
  // The point of the subsystem: with co-admitted queries, one tenant's H2D
  // rides under another's kernels — the copy engine's busy fraction rises
  // and the same load drains sooner than on the sequential device.
  const auto& idx = testutil::large_index();
  const auto queries = tenant_queries(30, 17);
  const auto load = dense_load(queries, 10.0);

  tenancy::TenancyOptions seq_opt;
  seq_opt.max_concurrency = 1;
  tenancy::DeviceManager seq(idx, {}, seq_opt);
  seq.run(load);
  const double seq_h2d =
      seq.timeline().busy_fraction(sim::Resource::kCopyH2D);
  const auto seq_span = seq.timeline().critical_path();

  tenancy::TenancyOptions par_opt;
  par_opt.max_concurrency = 6;
  tenancy::DeviceManager par(idx, {}, par_opt);
  par.run(load);
  const double par_h2d =
      par.timeline().busy_fraction(sim::Resource::kCopyH2D);
  const auto par_span = par.timeline().critical_path();

  EXPECT_GT(par_h2d, seq_h2d);
  EXPECT_LT(par_span.ps(), seq_span.ps());
}

TEST(Tenancy, DeterministicAcrossRuns) {
  const auto& idx = testutil::large_index();
  const auto queries = tenant_queries(20, 3);
  const auto load = dense_load(queries, 25.0);
  tenancy::TenancyOptions opt;
  opt.max_concurrency = 4;

  tenancy::DeviceManager a(idx, {}, opt);
  tenancy::DeviceManager b(idx, {}, opt);
  const auto ra = a.run(load);
  const auto rb = b.run(load);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].finish.ps(), rb[i].finish.ps());
    EXPECT_EQ(ra[i].release.ps(), rb[i].release.ps());
  }
  EXPECT_EQ(a.timeline().critical_path().ps(),
            b.timeline().critical_path().ps());
  EXPECT_EQ(a.batch_groups(), b.batch_groups());
}

TEST(Tenancy, EmptyQueriesAndEmptyLoadAreWellDefined) {
  const auto& idx = testutil::small_index();
  tenancy::TenancyOptions opt;
  opt.max_concurrency = 2;
  tenancy::DeviceManager dm(idx, {}, opt);

  EXPECT_TRUE(dm.run({}).empty());

  std::vector<tenancy::TenantQuery> load;
  core::Query empty;  // no terms: finishes at admission, empty result
  empty.id = 7;
  load.push_back({empty, sim::Duration::from_us(1.0)});
  core::Query real;
  real.terms = {1, 2};
  real.id = 8;
  load.push_back({real, sim::Duration::from_us(2.0)});
  const auto results = dm.run(load);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].result.topk.empty());
  EXPECT_EQ(results[0].finish.ps(), results[0].release.ps());
  EXPECT_FALSE(results[1].result.trace.empty());
}

TEST(TenancyService, MultiTenantServiceLoopRunsAndSheds) {
  const auto& idx = testutil::small_index();
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 120;
  qcfg.seed = 41;
  const auto queries = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));

  tenancy::TenancyOptions opt;
  opt.max_concurrency = 4;
  tenancy::DeviceManager dm(idx, {}, opt);

  service::ServiceConfig cfg;
  cfg.arrival_qps = 20000.0;
  const auto open = service::run_service(dm, queries, cfg);
  EXPECT_EQ(open.response_ms.count(), queries.size());
  EXPECT_EQ(open.faults.shed_queries, 0u);
  // Per-resource utilization is populated from the shared timeline; the
  // scalar is the bottleneck's.
  double top = 0.0;
  for (const double f : open.resource_utilization) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    top = std::max(top, f);
  }
  EXPECT_DOUBLE_EQ(open.utilization, top);
  EXPECT_GT(open.utilization, 0.0);
  EXPECT_GT(open.horizon.ps(), 0);

  cfg.max_queue_depth = 5;
  const auto bounded = service::run_service(dm, queries, cfg);
  EXPECT_EQ(bounded.response_ms.count() + bounded.faults.shed_queries,
            queries.size());

  // Determinism: same config, same numbers.
  const auto again = service::run_service(dm, queries, cfg);
  EXPECT_EQ(again.faults.shed_queries, bounded.faults.shed_queries);
  EXPECT_DOUBLE_EQ(again.response_ms.mean(), bounded.response_ms.mean());
}
