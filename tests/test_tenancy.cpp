// Multi-tenant device subsystem (DESIGN.md §12): golden parity with
// sequential execution (tenancy and batching reshape timing, never bits),
// per-query stage identities on the shared timeline, scope accounting that
// partitions the global clocks exactly, cross-query batching, and the
// occupancy-driven multi-tenant service loop.
#include "tenancy/device_manager.h"

#include <gtest/gtest.h>

#include <cstring>

#include "core/hybrid_engine.h"
#include "engine_test_util.h"
#include "service/service_sim.h"

using namespace griffin;

namespace {

std::vector<core::Query> tenant_queries(std::size_t n, std::uint64_t seed) {
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = static_cast<std::uint32_t>(n);
  qcfg.seed = seed;
  return workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(testutil::large_index().num_terms()));
}

/// Offered load with a fixed inter-arrival gap small enough that several
/// queries are always in flight on the large corpus (whose queries take
/// milliseconds).
std::vector<tenancy::TenantQuery> dense_load(
    const std::vector<core::Query>& queries, double gap_us) {
  std::vector<tenancy::TenantQuery> load;
  load.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    load.push_back(
        {queries[i], sim::Duration::from_us(gap_us * double(i))});
  }
  return load;
}

/// Bit-exact top-k comparison: doc ids equal and score *bits* equal — the
/// contract is bit-identical results, not merely close ones.
void expect_bit_identical_topk(const std::vector<core::ScoredDoc>& got,
                               const std::vector<core::ScoredDoc>& want,
                               std::size_t qi) {
  ASSERT_EQ(got.size(), want.size()) << "query " << qi;
  for (std::size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(got[r].doc, want[r].doc) << "query " << qi << " rank " << r;
    std::uint32_t gb = 0;
    std::uint32_t wb = 0;
    std::memcpy(&gb, &got[r].score, sizeof(gb));
    std::memcpy(&wb, &want[r].score, sizeof(wb));
    EXPECT_EQ(gb, wb) << "query " << qi << " rank " << r;
  }
}

}  // namespace

TEST(Tenancy, GoldenParityWithSequentialExecution) {
  // The acceptance contract: multi-tenancy + batching on vs. off vs. the
  // sequential hybrid engine — all three produce bit-identical top-k.
  const auto& idx = testutil::large_index();
  const auto queries = tenant_queries(40, 21);
  const auto load = dense_load(queries, 100.0);

  core::HybridEngine seq(idx);
  std::vector<core::QueryResult> want;
  want.reserve(queries.size());
  for (const auto& q : queries) want.push_back(seq.execute(q));

  tenancy::TenancyOptions batched;
  batched.max_concurrency = 4;
  tenancy::DeviceManager dm_batched(idx, {}, batched);
  const auto got_batched = dm_batched.run(load);

  tenancy::TenancyOptions unbatched;
  unbatched.max_concurrency = 4;
  unbatched.batch.enabled = false;
  tenancy::DeviceManager dm_plain(idx, {}, unbatched);
  const auto got_plain = dm_plain.run(load);

  ASSERT_EQ(got_batched.size(), queries.size());
  ASSERT_EQ(got_plain.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_bit_identical_topk(got_batched[i].result.topk, want[i].topk, i);
    expect_bit_identical_topk(got_plain[i].result.topk, want[i].topk, i);
    EXPECT_EQ(got_batched[i].result.metrics.result_count,
              want[i].metrics.result_count);
  }
}

TEST(Tenancy, SingleLaneMatchesSequentialTimingExactly) {
  // max_concurrency = 1 on the shared timeline IS the sequential device:
  // the same warm caches in the same order, streams merely offset by the
  // release time. Every per-query latency must match the persistent
  // sequential engine to the picosecond.
  const auto& idx = testutil::large_index();
  const auto queries = tenant_queries(25, 33);

  core::HybridEngine seq(idx);
  std::vector<sim::Duration> want;
  for (const auto& q : queries) want.push_back(seq.execute(q).metrics.total);

  tenancy::TenancyOptions opt;
  opt.max_concurrency = 1;
  tenancy::DeviceManager dm(idx, {}, opt);
  const auto got = dm.run(dense_load(queries, 50.0));

  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got[i].result.metrics.total.ps(), want[i].ps()) << "query " << i;
  }
}

TEST(Tenancy, StageIdentityHoldsPerQueryOnTheSharedTimeline) {
  // decode + intersect + transfer + rank == total + overlap.saved, exactly,
  // for every co-admitted query — with `saved` free to go negative when a
  // query queued behind its co-tenants' ops.
  const auto& idx = testutil::large_index();
  const auto queries = tenant_queries(30, 5);
  tenancy::TenancyOptions opt;
  opt.max_concurrency = 6;
  tenancy::DeviceManager dm(idx, {}, opt);
  const auto results = dm.run(dense_load(queries, 20.0));

  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& m = results[i].result.metrics;
    const sim::Duration stages = m.decode + m.intersect + m.transfer + m.rank;
    EXPECT_EQ(stages.ps(), (m.total + m.overlap.saved).ps()) << "query " << i;
    EXPECT_EQ(results[i].finish.ps(),
              (results[i].release + m.total).ps()) << "query " << i;
    EXPECT_GE(results[i].release.ps(), results[i].arrival.ps());
  }
}

TEST(Tenancy, ScopeAccountingPartitionsTheSharedClocks) {
  const auto& idx = testutil::large_index();
  const auto queries = tenant_queries(24, 11);
  tenancy::TenancyOptions opt;
  opt.max_concurrency = 4;
  tenancy::DeviceManager dm(idx, {}, opt);
  const auto results = dm.run(dense_load(queries, 40.0));
  const auto& tl = dm.timeline();

  // Per-query busy durations sum to the global per-resource busy, and no
  // resource is busy longer than the horizon.
  core::OverlapCounters sum;
  for (const auto& r : results) sum += r.result.metrics.overlap;
  for (std::size_t r = 0; r < sim::kNumResources; ++r) {
    const auto res = static_cast<sim::Resource>(r);
    EXPECT_EQ(sum.busy(res).ps(), tl.busy(res).ps()) << sim::resource_name(res);
    EXPECT_LE(tl.busy(res).ps(), tl.critical_path().ps());
    EXPECT_GE(tl.busy_fraction(res), 0.0);
    EXPECT_LE(tl.busy_fraction(res), 1.0);
  }
  EXPECT_LE(tl.critical_path().ps(), tl.serial_total().ps());
}

TEST(Tenancy, BatchingFiresAndIsAttributable) {
  const auto& idx = testutil::large_index();
  const auto queries = tenant_queries(30, 9);
  tenancy::TenancyOptions opt;
  opt.max_concurrency = 6;
  opt.batch.window = sim::Duration::from_us(200.0);
  tenancy::DeviceManager dm(idx, {}, opt);
  const auto results = dm.run(dense_load(queries, 10.0));

  EXPECT_GT(dm.batch_groups(), 0u);
  core::TraceSummary summary;
  std::uint64_t batched = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (const auto& rec : results[i].result.trace) {
      // Every record is attributable to its query.
      EXPECT_EQ(rec.query, queries[i].id);
      if (rec.batch_group != 0) {
        ++batched;
        // Only GPU decode/intersect steps batch.
        EXPECT_TRUE(rec.kind == core::StepKind::kDecode ||
                    rec.kind == core::StepKind::kIntersect);
        EXPECT_EQ(rec.placement, core::Placement::kGpu);
      }
    }
    summary.add(results[i].result.trace);
  }
  EXPECT_GT(batched, 0u);
  EXPECT_EQ(summary.batched_steps, batched);
}

TEST(Tenancy, ConcurrencyRaisesCopyEngineUtilizationAndThroughput) {
  // The point of the subsystem: with co-admitted queries, one tenant's H2D
  // rides under another's kernels — the copy engine's busy fraction rises
  // and the same load drains sooner than on the sequential device.
  const auto& idx = testutil::large_index();
  const auto queries = tenant_queries(30, 17);
  const auto load = dense_load(queries, 10.0);

  tenancy::TenancyOptions seq_opt;
  seq_opt.max_concurrency = 1;
  tenancy::DeviceManager seq(idx, {}, seq_opt);
  seq.run(load);
  const double seq_h2d =
      seq.timeline().busy_fraction(sim::Resource::kCopyH2D);
  const auto seq_span = seq.timeline().critical_path();

  tenancy::TenancyOptions par_opt;
  par_opt.max_concurrency = 6;
  tenancy::DeviceManager par(idx, {}, par_opt);
  par.run(load);
  const double par_h2d =
      par.timeline().busy_fraction(sim::Resource::kCopyH2D);
  const auto par_span = par.timeline().critical_path();

  EXPECT_GT(par_h2d, seq_h2d);
  EXPECT_LT(par_span.ps(), seq_span.ps());
}

TEST(Tenancy, DeterministicAcrossRuns) {
  const auto& idx = testutil::large_index();
  const auto queries = tenant_queries(20, 3);
  const auto load = dense_load(queries, 25.0);
  tenancy::TenancyOptions opt;
  opt.max_concurrency = 4;

  tenancy::DeviceManager a(idx, {}, opt);
  tenancy::DeviceManager b(idx, {}, opt);
  const auto ra = a.run(load);
  const auto rb = b.run(load);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].finish.ps(), rb[i].finish.ps());
    EXPECT_EQ(ra[i].release.ps(), rb[i].release.ps());
  }
  EXPECT_EQ(a.timeline().critical_path().ps(),
            b.timeline().critical_path().ps());
  EXPECT_EQ(a.batch_groups(), b.batch_groups());
}

TEST(Tenancy, EmptyQueriesAndEmptyLoadAreWellDefined) {
  const auto& idx = testutil::small_index();
  tenancy::TenancyOptions opt;
  opt.max_concurrency = 2;
  tenancy::DeviceManager dm(idx, {}, opt);

  EXPECT_TRUE(dm.run({}).empty());

  std::vector<tenancy::TenantQuery> load;
  core::Query empty;  // no terms: finishes at admission, empty result
  empty.id = 7;
  load.push_back({empty, sim::Duration::from_us(1.0)});
  core::Query real;
  real.terms = {1, 2};
  real.id = 8;
  load.push_back({real, sim::Duration::from_us(2.0)});
  const auto results = dm.run(load);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].result.topk.empty());
  EXPECT_EQ(results[0].finish.ps(), results[0].release.ps());
  EXPECT_FALSE(results[1].result.trace.empty());
}

// ---- Fault-aware tenancy (DESIGN.md §16): arming the shared device's
// ---- injector perturbs timing and counters, never bits — and a fault
// ---- inside a fused batch degrades only the hit query.

TEST(TenancyFaults, ArmedButSilentTenancyIsBitIdenticalToDisarmed) {
  // Arming wires a real injector into every lane; scripted faults that
  // never fire must leave the whole run — results, per-query timing, batch
  // composition — bit-identical to the disarmed device.
  const auto& idx = testutil::large_index();
  const auto queries = tenant_queries(25, 47);
  const auto load = dense_load(queries, 30.0);

  tenancy::TenancyOptions plain;
  plain.max_concurrency = 4;
  tenancy::TenancyOptions armed = plain;
  armed.engine.faults.gpu.triggers.push_back({/*query=*/999999, 0});
  armed.engine.faults.oom.triggers.push_back({/*query=*/999999, 0});

  tenancy::DeviceManager a(idx, {}, plain);
  tenancy::DeviceManager b(idx, {}, armed);
  const auto ra = a.run(load);
  const auto rb = b.run(load);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].finish.ps(), rb[i].finish.ps()) << "query " << i;
    EXPECT_EQ(ra[i].result.metrics.total.ps(),
              rb[i].result.metrics.total.ps()) << "query " << i;
    expect_bit_identical_topk(rb[i].result.topk, ra[i].result.topk, i);
  }
  EXPECT_FALSE(b.run_faults().any());
  EXPECT_EQ(a.batch_groups(), b.batch_groups());
}

TEST(TenancyFaults, ArmedTenancyKeepsGoldenParityAndIsDeterministic) {
  // Probabilistic gpu + oom faults across a batched multi-tenant run: every
  // recovery path may fire, and every answer must still match the clean
  // sequential engine bit for bit. Same seed, same load: same everything.
  const auto& idx = testutil::large_index();
  const auto queries = tenant_queries(40, 53);
  const auto load = dense_load(queries, 50.0);

  core::HybridEngine seq(idx);
  std::vector<core::QueryResult> want;
  want.reserve(queries.size());
  for (const auto& q : queries) want.push_back(seq.execute(q));

  tenancy::TenancyOptions opt;
  opt.max_concurrency = 4;
  opt.engine.faults.gpu.probability = 0.1;
  opt.engine.faults.oom.probability = 0.1;
  opt.engine.faults.seed = 99;
  tenancy::DeviceManager dm(idx, {}, opt);
  tenancy::DeviceManager twin(idx, {}, opt);
  const auto got = dm.run(load);
  const auto again = twin.run(load);

  ASSERT_EQ(got.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_bit_identical_topk(got[i].result.topk, want[i].topk, i);
    EXPECT_EQ(got[i].finish.ps(), again[i].finish.ps()) << "query " << i;
    // Stage identity per query, faults included.
    const auto& m = got[i].result.metrics;
    EXPECT_EQ((m.decode + m.intersect + m.transfer + m.rank).ps(),
              (m.total + m.overlap.saved).ps()) << "query " << i;
  }
  // The run actually injected something.
  EXPECT_TRUE(dm.run_faults().any());
  EXPECT_GT(dm.run_faults().gpu_faults + dm.run_faults().oom_faults, 0u);
  EXPECT_EQ(dm.run_faults().gpu_faults, twin.run_faults().gpu_faults);
  EXPECT_EQ(dm.run_faults().oom_faults, twin.run_faults().oom_faults);
}

TEST(TenancyFaults, RunFaultsIsTheExactPerQueryRollup) {
  const auto& idx = testutil::large_index();
  const auto queries = tenant_queries(30, 59);
  const auto load = dense_load(queries, 15.0);

  tenancy::TenancyOptions opt;
  opt.max_concurrency = 4;
  opt.engine.faults.gpu.probability = 0.15;
  opt.engine.faults.oom.probability = 0.1;
  opt.engine.faults.seed = 7;
  tenancy::DeviceManager dm(idx, {}, opt);
  // A tight admission bound so the shed path contributes too.
  const auto results = dm.run(load, /*max_in_system=*/6);

  fault::FaultCounters sum;
  std::uint64_t shed = 0;
  for (const auto& r : results) {
    sum += r.result.metrics.faults;
    shed += r.shed ? 1 : 0;
  }
  EXPECT_GT(shed, 0u);
  const auto& roll = dm.run_faults();
  EXPECT_EQ(roll.gpu_faults, sum.gpu_faults);
  EXPECT_EQ(roll.pcie_errors, sum.pcie_errors);
  EXPECT_EQ(roll.split_leg_faults, sum.split_leg_faults);
  EXPECT_EQ(roll.prefetch_faults, sum.prefetch_faults);
  EXPECT_EQ(roll.oom_faults, sum.oom_faults);
  EXPECT_EQ(roll.oom_evictions, sum.oom_evictions);
  EXPECT_EQ(roll.oom_unfused, sum.oom_unfused);
  EXPECT_EQ(roll.oom_degraded_steps, sum.oom_degraded_steps);
  EXPECT_EQ(roll.gpu_wasted.ps(), sum.gpu_wasted.ps());
  EXPECT_EQ(roll.oom_recovery.ps(), sum.oom_recovery.ps());
  EXPECT_EQ(roll.shed_queries, sum.shed_queries);
  EXPECT_EQ(roll.shed_queries, shed);
}

TEST(TenancyFaults, OomInsideAFusedBatchUnfusesOnlyTheHitQuery) {
  // Rung 2 of the ladder: the hit lane dissolves its batch membership and
  // re-launches alone; co-batched queries keep their fused accounting and
  // their bits. The device cache is disabled so rung 1 cannot absorb the
  // pressure first.
  const auto& idx = testutil::large_index();
  const auto queries = tenant_queries(30, 9);  // seed 9: batching fires
  const auto load = dense_load(queries, 10.0);
  const std::uint64_t victim = queries[7].id;

  tenancy::TenancyOptions opt;
  opt.max_concurrency = 6;
  opt.batch.window = sim::Duration::from_us(200.0);
  opt.engine.gpu.list_cache = false;
  opt.engine.faults.oom.triggers.push_back(
      {/*query=*/victim, /*scope=*/0});
  tenancy::DeviceManager dm(idx, {}, opt);
  const auto results = dm.run(load);

  // The clean reference: same per-lane engine config, no faults.
  tenancy::TenancyOptions clean = opt;
  clean.engine.faults = fault::FaultConfig{};
  tenancy::DeviceManager ref_dm(idx, {}, clean);
  const auto ref = ref_dm.run(load);

  ASSERT_EQ(results.size(), queries.size());
  std::uint64_t victim_i = queries.size();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (queries[i].id == victim) victim_i = i;
    expect_bit_identical_topk(results[i].result.topk, ref[i].result.topk, i);
    if (queries[i].id != victim) {
      // Only the hit query pays: everyone else's counters stay clean.
      EXPECT_FALSE(results[i].result.metrics.faults.any()) << "query " << i;
    }
  }
  ASSERT_LT(victim_i, queries.size());
  const auto& vf = results[victim_i].result.metrics.faults;
  EXPECT_GT(vf.oom_faults, 0u);
  EXPECT_EQ(vf.oom_evictions, 0u);  // nothing cached to evict
  // The victim's pressure was absorbed by the ladder: unfused from a batch
  // and/or re-planned host-side, and the whole ladder cost is on the clock.
  EXPECT_GT(vf.oom_unfused + vf.oom_degraded_steps, 0u);
  EXPECT_GT(vf.oom_recovery.ps(), 0);
  EXPECT_EQ(dm.run_faults().oom_unfused, vf.oom_unfused);

  // The batch machinery itself kept running for everyone else.
  EXPECT_GT(dm.batch_groups(), 0u);
}

TEST(TenancyService, MultiTenantServiceLoopRunsAndSheds) {
  const auto& idx = testutil::small_index();
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 120;
  qcfg.seed = 41;
  const auto queries = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));

  tenancy::TenancyOptions opt;
  opt.max_concurrency = 4;
  tenancy::DeviceManager dm(idx, {}, opt);

  service::ServiceConfig cfg;
  cfg.arrival_qps = 20000.0;
  const auto open = service::run_service(dm, queries, cfg);
  EXPECT_EQ(open.response_ms.count(), queries.size());
  EXPECT_EQ(open.faults.shed_queries, 0u);
  // Per-resource utilization is populated from the shared timeline; the
  // scalar is the bottleneck's.
  double top = 0.0;
  for (const double f : open.resource_utilization) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    top = std::max(top, f);
  }
  EXPECT_DOUBLE_EQ(open.utilization, top);
  EXPECT_GT(open.utilization, 0.0);
  EXPECT_GT(open.horizon.ps(), 0);

  cfg.max_queue_depth = 5;
  const auto bounded = service::run_service(dm, queries, cfg);
  EXPECT_EQ(bounded.response_ms.count() + bounded.faults.shed_queries,
            queries.size());

  // Determinism: same config, same numbers.
  const auto again = service::run_service(dm, queries, cfg);
  EXPECT_EQ(again.faults.shed_queries, bounded.faults.shed_queries);
  EXPECT_DOUBLE_EQ(again.response_ms.mean(), bounded.response_ms.mean());
}

TEST(TenancyService, ServiceFaultsAggregateTheArmedDeviceExactly) {
  // End-to-end counter plumbing: engine-level faults injected inside the
  // multi-tenant device surface in ServiceResult::faults — and the service
  // view equals the device's own rollup plus nothing.
  const auto& idx = testutil::small_index();
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 100;
  qcfg.seed = 43;
  const auto queries = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));

  tenancy::TenancyOptions opt;
  opt.max_concurrency = 4;
  opt.engine.scheduler.policy = core::SchedulerPolicy::kAlwaysGpu;
  opt.engine.faults.gpu.probability = 0.1;
  opt.engine.faults.oom.probability = 0.05;
  opt.engine.faults.seed = 17;
  tenancy::DeviceManager dm(idx, {}, opt);

  service::ServiceConfig cfg;
  cfg.arrival_qps = 20000.0;
  cfg.max_queue_depth = 8;  // shed under pressure, counted alongside
  const auto out = service::run_service(dm, queries, cfg);

  EXPECT_TRUE(out.faults.any());
  EXPECT_GT(out.faults.gpu_faults + out.faults.oom_faults, 0u);
  const auto& roll = dm.run_faults();
  EXPECT_EQ(out.faults.gpu_faults, roll.gpu_faults);
  EXPECT_EQ(out.faults.pcie_errors, roll.pcie_errors);
  EXPECT_EQ(out.faults.oom_faults, roll.oom_faults);
  EXPECT_EQ(out.faults.oom_degraded_steps, roll.oom_degraded_steps);
  EXPECT_EQ(out.faults.oom_evictions, roll.oom_evictions);
  EXPECT_EQ(out.faults.shed_queries, roll.shed_queries);
  EXPECT_EQ(out.faults.gpu_wasted.ps(), roll.gpu_wasted.ps());
  EXPECT_EQ(out.faults.oom_recovery.ps(), roll.oom_recovery.ps());

  // Shed + answered conserves the offered load.
  EXPECT_EQ(out.response_ms.count() + out.faults.shed_queries,
            queries.size());

  // And the armed service loop is deterministic end to end: a second device
  // built from the same options replays the identical run. (Re-running the
  // *same* device differs legitimately — its lane caches stay warm.)
  tenancy::DeviceManager dm2(idx, {}, opt);
  const auto out2 = service::run_service(dm2, queries, cfg);
  EXPECT_EQ(out2.faults.gpu_faults, out.faults.gpu_faults);
  EXPECT_EQ(out2.faults.oom_faults, out.faults.oom_faults);
  EXPECT_EQ(out2.faults.shed_queries, out.faults.shed_queries);
  EXPECT_DOUBLE_EQ(out2.response_ms.mean(), out.response_ms.mean());
}
