#include "simt/device.h"

#include <gtest/gtest.h>

#include <numeric>

namespace gs = griffin::simt;

TEST(Device, AllocTracksUsage) {
  gs::Device dev({}, 1 << 20);
  EXPECT_EQ(dev.used(), 0u);
  auto a = dev.alloc<std::uint32_t>(1000);
  EXPECT_EQ(dev.used(), 4000u);
  EXPECT_EQ(dev.alloc_count(), 1u);
  {
    auto b = dev.alloc<std::uint64_t>(100);
    EXPECT_EQ(dev.used(), 4800u);
  }
  // RAII: freed when the buffer dies.
  EXPECT_EQ(dev.used(), 4000u);
}

TEST(Device, OutOfMemoryThrows) {
  gs::Device dev({}, 1024);
  auto a = dev.alloc<std::uint8_t>(1000);
  EXPECT_THROW(dev.alloc<std::uint8_t>(100), gs::DeviceOutOfMemory);
  // And the failed allocation did not leak accounting.
  EXPECT_EQ(dev.used(), 1000u);
}

TEST(Device, UploadDownloadRoundTrip) {
  gs::Device dev;
  std::vector<std::uint32_t> host(257);
  std::iota(host.begin(), host.end(), 100);
  auto buf = dev.alloc<std::uint32_t>(host.size());
  dev.upload(buf, std::span<const std::uint32_t>(host));

  std::vector<std::uint32_t> back(host.size(), 0);
  dev.download(std::span<std::uint32_t>(back), buf);
  EXPECT_EQ(back, host);
  EXPECT_EQ(dev.h2d_bytes(), host.size() * 4);
  EXPECT_EQ(dev.d2h_bytes(), host.size() * 4);
}

TEST(Device, PartialCopiesWithOffsets) {
  gs::Device dev;
  auto buf = dev.alloc<std::uint32_t>(100);
  const std::vector<std::uint32_t> part{7, 8, 9};
  dev.upload(buf, std::span<const std::uint32_t>(part), 50);
  std::vector<std::uint32_t> back(3, 0);
  dev.download(std::span<std::uint32_t>(back), buf, 50);
  EXPECT_EQ(back, part);
}

TEST(Device, DistinctBuffersGetDistinctAddresses) {
  gs::Device dev;
  auto a = dev.alloc<std::uint32_t>(64);
  auto b = dev.alloc<std::uint32_t>(64);
  // Address ranges must not overlap (the coalescing analyzer relies on it).
  const auto a_end = a.device_addr(63) + 4;
  EXPECT_LE(a_end, b.device_addr(0));
}

TEST(Device, MoveSemantics) {
  gs::Device dev({}, 1 << 20);
  auto a = dev.alloc<std::uint32_t>(100);
  const auto addr = a.device_addr(0);
  gs::DeviceBuffer<std::uint32_t> b = std::move(a);
  EXPECT_EQ(b.device_addr(0), addr);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(dev.used(), 400u);
  b = gs::DeviceBuffer<std::uint32_t>();
  EXPECT_EQ(dev.used(), 0u);
}
