// Full-stack integration: all three engines over a fresh corpus and query
// log, checked for exact agreement and for the performance-shape invariants
// the paper's evaluation depends on.
#include <gtest/gtest.h>

#include "core/hybrid_engine.h"
#include "engine_test_util.h"
#include "util/stats.h"

using namespace griffin;

namespace {

struct LogRun {
  util::PercentileTracker cpu_ms, gpu_ms, hybrid_ms;
};

}  // namespace

TEST(EndToEnd, EnginesAgreeAcrossSchemesOfQueries) {
  const auto& idx = testutil::small_index();
  cpu::CpuEngine cpu_engine(idx);
  gpu::GpuEngine gpu_engine(idx);
  core::HybridEngine hybrid(idx);

  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 120;
  qcfg.seed = 99;
  const auto log = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));

  LogRun run;
  std::uint64_t total_migrations = 0;
  std::uint64_t gpu_steps = 0, cpu_steps = 0;
  for (const auto& q : log) {
    const auto c = cpu_engine.execute(q);
    const auto g = gpu_engine.execute(q);
    const auto h = hybrid.execute(q);
    testutil::expect_same_topk(g.topk, c.topk, "gpu-vs-cpu");
    testutil::expect_same_topk(h.topk, c.topk, "hybrid-vs-cpu");

    run.cpu_ms.add(c.metrics.total.ms());
    run.gpu_ms.add(g.metrics.total.ms());
    run.hybrid_ms.add(h.metrics.total.ms());
    total_migrations += h.metrics.migrations;
    for (const auto p : h.metrics.placements) {
      (p == core::Placement::kGpu ? gpu_steps : cpu_steps) += 1;
    }
  }

  // The scheduler actually exercises both processors on a realistic log.
  EXPECT_GT(gpu_steps, 0u);
  EXPECT_GT(cpu_steps, 0u);

  // Intra-query migration means the hybrid engine can only improve on the
  // GPU-only engine (it starts identically and bails out when the CPU is
  // the better fit). The full Figure 14 comparison — including the 10x-vs-
  // CPU headline, which needs multi-million-entry lists — lives in
  // bench/end_to_end on a paper-scale corpus; this fixture is too small for
  // GPU fixed overheads to amortize on every query.
  const double gpu_mean = run.gpu_ms.mean();
  const double hybrid_mean = run.hybrid_ms.mean();
  EXPECT_LE(hybrid_mean, gpu_mean * 1.02);
}

TEST(EndToEnd, MetricsTotalsAreConsistent) {
  const auto& idx = testutil::small_index();
  core::HybridEngine hybrid(idx);
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 30;
  qcfg.seed = 100;
  const auto log = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));
  for (const auto& q : log) {
    const auto res = hybrid.execute(q);
    const auto& m = res.metrics;
    // Serial stage charges vs the timeline: the critical path plus the
    // overlap it hid reconstruct the serial sum exactly (DESIGN.md §10).
    const auto sum = m.decode + m.intersect + m.transfer + m.rank;
    EXPECT_EQ(sum.ps(), (m.total + m.overlap.saved).ps()) << "query " << q.id;
    // One placement per executed pairwise step; execution stops early when
    // the intermediate result empties.
    EXPECT_LE(m.placements.size(), q.terms.size() - 1) << "query " << q.id;
    EXPECT_GE(m.placements.size(), 1u) << "query " << q.id;
    if (m.result_count > 0) {
      EXPECT_EQ(m.placements.size(), q.terms.size() - 1) << "query " << q.id;
    }
  }
}

TEST(EndToEnd, DeterministicAcrossRuns) {
  const auto& idx = testutil::small_index();
  core::Query q;
  q.terms = {2, 40, 111};
  core::HybridEngine e1(idx), e2(idx);
  const auto r1 = e1.execute(q);
  const auto r2 = e2.execute(q);
  EXPECT_EQ(r1.metrics.total.ps(), r2.metrics.total.ps());
  testutil::expect_same_topk(r1.topk, r2.topk, "determinism");
}
