// Split-execution parity (DESIGN.md §15). A kSplit intersect divides the
// probe side between both processors at a docID-disjoint cut, so
// concatenating the partials must reproduce the unsplit intersection
// exactly: same docs, same float score bits, same result counts — across
// every codec, every SIMD preset, any alpha (including the degenerate
// all-CPU / all-GPU splits through the split machinery), and whichever
// placements the real policies pick. Costs may differ; results may not.
#include <gtest/gtest.h>

#include <vector>

#include "codec/block_codec.h"
#include "core/hybrid_engine.h"
#include "engine_test_util.h"
#include "util/rng.h"
#include "workload/corpus.h"

using namespace griffin;
using codec::Scheme;
using core::HybridEngine;
using core::HybridOptions;
using core::Placement;
using core::Query;
using core::QueryResult;
using core::SchedulerPolicy;

namespace {

constexpr Scheme kAllSchemes[] = {Scheme::kPForDelta,   Scheme::kEliasFano,
                                  Scheme::kVarByte,     Scheme::kSimple16,
                                  Scheme::kBitPack128,  Scheme::kRePair};

/// One small corpus per codec, built once per binary (same shape as
/// testutil::small_corpus_config, re-keyed by scheme).
const index::InvertedIndex& index_for(Scheme s) {
  static std::vector<std::unique_ptr<index::InvertedIndex>> cache(
      codec::kNumSchemes);
  auto& slot = cache[static_cast<std::size_t>(s)];
  if (!slot) {
    auto cfg = testutil::small_corpus_config();
    cfg.scheme = s;
    slot = std::make_unique<index::InvertedIndex>(
        workload::generate_corpus(cfg));
  }
  return *slot;
}

std::vector<sim::CpuSpec> all_specs() {
  return {sim::CpuSpec{}, sim::CpuSpec::sse4_testbed(),
          sim::CpuSpec::modern_avx2()};
}

std::vector<Query> random_queries(std::uint64_t seed, int count) {
  util::Xoshiro256 rng(seed);
  std::vector<Query> out;
  for (int i = 0; i < count; ++i) {
    Query q;
    const int nterms = 2 + static_cast<int>(rng() % 4);
    for (int t = 0; t < nterms; ++t) {
      q.terms.push_back(static_cast<index::TermId>(rng() % 300));
    }
    q.k = 10;
    out.push_back(q);
  }
  return out;
}

void expect_bit_identical(const QueryResult& got, const QueryResult& want,
                          const std::string& label) {
  EXPECT_EQ(got.metrics.result_count, want.metrics.result_count) << label;
  ASSERT_EQ(got.topk.size(), want.topk.size()) << label;
  for (std::size_t r = 0; r < want.topk.size(); ++r) {
    EXPECT_EQ(got.topk[r].doc, want.topk[r].doc) << label << " rank " << r;
    // Bitwise, not approximate: the split legs must visit docs in the same
    // order the unsplit step does, or float accumulation drifts.
    EXPECT_EQ(got.topk[r].score, want.topk[r].score) << label << " rank " << r;
  }
}

HybridOptions split_options(double forced_alpha) {
  HybridOptions opt;
  opt.scheduler.policy = SchedulerPolicy::kAlwaysSplit;
  opt.scheduler.forced_split_alpha = forced_alpha;
  return opt;
}

}  // namespace

// ---- The core parity: every-step-split vs all-CPU vs all-GPU, all codecs
// ---- x all SIMD presets, derived and degenerate alphas.

class SplitParityParam : public ::testing::TestWithParam<Scheme> {};

TEST_P(SplitParityParam, SplitMatchesCpuAndGpuAcrossPresets) {
  const Scheme scheme = GetParam();
  const auto& idx = index_for(scheme);
  const auto queries =
      random_queries(1000 + static_cast<std::uint64_t>(scheme), 8);

  for (const auto& cpu_spec : all_specs()) {
    sim::HardwareSpec hw;
    hw.cpu = cpu_spec;

    HybridOptions cpu_opt;
    cpu_opt.scheduler.policy = SchedulerPolicy::kAlwaysCpu;
    HybridEngine cpu_engine(idx, hw, cpu_opt);
    HybridOptions gpu_opt;
    gpu_opt.scheduler.policy = SchedulerPolicy::kAlwaysGpu;
    HybridEngine gpu_engine(idx, hw, gpu_opt);
    // Derived alpha plus the degenerates: alpha=0 routes every probe to the
    // CPU leg and alpha=1 to the GPU leg, still through the split machinery.
    HybridEngine split_engine(idx, hw, split_options(-1.0));
    HybridEngine split0_engine(idx, hw, split_options(0.0));
    HybridEngine split1_engine(idx, hw, split_options(1.0));
    HybridEngine splithalf_engine(idx, hw, split_options(0.5));

    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      const auto& q = queries[qi];
      const std::string tag = std::string(codec::scheme_name(scheme)) + "/" +
                              cpu_spec.vector.name + "/q" +
                              std::to_string(qi);
      const QueryResult want = cpu_engine.execute(q);
      expect_bit_identical(gpu_engine.execute(q), want, tag + "/gpu");
      expect_bit_identical(split_engine.execute(q), want, tag + "/split");
      expect_bit_identical(split0_engine.execute(q), want, tag + "/split-a0");
      expect_bit_identical(split1_engine.execute(q), want, tag + "/split-a1");
      expect_bit_identical(splithalf_engine.execute(q), want,
                           tag + "/split-a.5");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, SplitParityParam,
                         ::testing::ValuesIn(kAllSchemes));

// ---- A device fault on the GPU leg of a split (DESIGN.md §16): the CPU
// ---- leg's partial survives, the lost range is redone host-side, and the
// ---- answer stays bit-identical to the all-CPU reference — across every
// ---- codec and every SIMD preset.

class SplitLegFaultParam : public ::testing::TestWithParam<Scheme> {};

TEST_P(SplitLegFaultParam, LostGpuLegIsRedoneBitIdentically) {
  const Scheme scheme = GetParam();
  const auto& idx = index_for(scheme);
  const auto queries =
      random_queries(7000 + static_cast<std::uint64_t>(scheme), 6);

  for (const auto& cpu_spec : all_specs()) {
    sim::HardwareSpec hw;
    hw.cpu = cpu_spec;

    HybridOptions cpu_opt;
    cpu_opt.scheduler.policy = SchedulerPolicy::kAlwaysCpu;
    HybridEngine cpu_engine(idx, hw, cpu_opt);
    // Every intersect splits half/half, and the scripted trigger faults the
    // GPU leg of the first split (random_queries leaves every id 0, so the
    // trigger covers each query; after the hit the remainder is CPU-pinned,
    // so exactly one leg is ever lost per query).
    HybridOptions faulty = split_options(0.5);
    // No optional uploads: a staged prefetch would draw the same trigger
    // and add dropped-prefetch records, muddying the one-leg-lost contract.
    faulty.scheduler.prefetch = false;
    faulty.faults.gpu.triggers.push_back({/*query=*/0, /*scope=*/0});
    HybridEngine faulty_engine(idx, hw, faulty);

    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      const auto& q = queries[qi];
      const std::string tag = std::string(codec::scheme_name(scheme)) + "/" +
                              cpu_spec.vector.name + "/q" +
                              std::to_string(qi) + "/leg-fault";
      const QueryResult want = cpu_engine.execute(q);
      const QueryResult got = faulty_engine.execute(q);
      expect_bit_identical(got, want, tag);

      // The recovery really ran: one split step lost its GPU leg (flagged on
      // the trace, never as an abandoned step — the step completed), paid
      // the wasted device time, and pinned the rest of the plan host-side.
      EXPECT_EQ(got.metrics.faults.split_leg_faults, 1u) << tag;
      EXPECT_EQ(got.metrics.faults.gpu_faults, 1u) << tag;
      EXPECT_EQ(got.metrics.faults.gpu_wasted,
                sim::Duration::from_us(faulty.faults.gpu_fault_cost_us))
          << tag;
      core::TraceSummary sum;
      sum.add(got.trace);
      EXPECT_EQ(sum.leg_faulted_steps, 1u) << tag;
      EXPECT_EQ(sum.faulted_steps, 0u) << tag;
      // Stage identity survives the fault accounting.
      EXPECT_EQ(got.metrics.decode + got.metrics.intersect +
                    got.metrics.transfer + got.metrics.rank,
                got.metrics.total + got.metrics.overlap.saved)
          << tag;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, SplitLegFaultParam,
                         ::testing::ValuesIn(kAllSchemes));

// ---- Split steps really execute as splits (the parity above would pass
// ---- vacuously if kAlwaysSplit silently fell back to one processor).

TEST(SplitParity, AlwaysSplitPlacesSplitSteps) {
  const auto& idx = index_for(Scheme::kEliasFano);
  HybridEngine engine(idx, {}, split_options(0.5));
  Query q;
  q.terms = {2, 5, 9};
  q.k = 10;
  const auto res = engine.execute(q);
  std::uint64_t splits = 0;
  for (const auto p : res.metrics.placements) {
    if (p == Placement::kSplit) ++splits;
  }
  EXPECT_EQ(splits, res.metrics.placements.size());
  EXPECT_GT(splits, 0u);
  core::TraceSummary sum;
  sum.add(res.trace);
  EXPECT_EQ(sum.split_intersects, splits);
}

// ---- The real policies (ratio band + cost model) agree with the all-CPU
// ---- reference wherever their three-way decisions land.

TEST(SplitParity, PolicyMixesMatchCpuReference) {
  const auto& idx = index_for(Scheme::kEliasFano);
  const auto queries = random_queries(4242, 12);
  HybridOptions cpu_opt;
  cpu_opt.scheduler.policy = SchedulerPolicy::kAlwaysCpu;
  HybridEngine cpu_engine(idx, {}, cpu_opt);
  HybridEngine ratio_engine(idx, {}, {});  // default: ratio rule + band
  HybridOptions cost_opt;
  cost_opt.scheduler.policy = SchedulerPolicy::kCostModel;
  HybridEngine cost_engine(idx, {}, cost_opt);

  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto& q = queries[qi];
    const QueryResult want = cpu_engine.execute(q);
    expect_bit_identical(ratio_engine.execute(q), want,
                         "ratio/q" + std::to_string(qi));
    expect_bit_identical(cost_engine.execute(q), want,
                         "cost/q" + std::to_string(qi));
  }
}
