// The roofline models that convert counted work into simulated time.
#include "sim/cpu_cost_model.h"
#include "sim/gpu_cost_model.h"

#include <gtest/gtest.h>

#include "sim/time.h"

namespace gsim = griffin::sim;

TEST(Duration, ArithmeticAndConversions) {
  const auto a = gsim::Duration::from_us(2.0);
  const auto b = gsim::Duration::from_ns(500.0);
  EXPECT_NEAR((a + b).us(), 2.5, 1e-9);
  EXPECT_NEAR((a - b).us(), 1.5, 1e-9);
  EXPECT_NEAR((a * 3.0).us(), 6.0, 1e-9);
  EXPECT_NEAR(a / b, 4.0, 1e-9);
  EXPECT_LT(b, a);
  EXPECT_EQ(gsim::max(a, b).ps(), a.ps());
  EXPECT_NEAR(gsim::Duration::from_ms(1.5).seconds(), 0.0015, 1e-12);
  // 2.5 GHz: 2500 cycles per us.
  EXPECT_NEAR(gsim::Duration::from_cycles(2500, 2.5).us(), 1.0, 1e-6);
}

TEST(CpuCostModel, ComputeBoundVsBandwidthBound) {
  gsim::CpuSpec spec;
  {
    gsim::CpuCostAccumulator acc(spec);
    acc.add_cycles(2.5e6);  // 1 ms of compute at 2.5 GHz
    acc.add_bytes(100);
    EXPECT_NEAR(acc.time().ms(), 1.0, 1e-6);
  }
  {
    gsim::CpuCostAccumulator acc(spec);
    acc.add_cycles(10);
    acc.add_bytes(12'800'000);  // 1 ms of streaming at 12.8 GB/s
    EXPECT_NEAR(acc.time().ms(), 1.0, 1e-6);
  }
}

TEST(CpuCostModel, ConvenienceChargesMatchSpec) {
  gsim::CpuSpec spec;
  gsim::CpuCostAccumulator acc(spec);
  acc.merge_steps(10);
  EXPECT_DOUBLE_EQ(acc.cycles(), 10 * spec.merge_step_cycles);
  acc.branch_misses(2);
  EXPECT_DOUBLE_EQ(acc.cycles(),
                   10 * spec.merge_step_cycles + 2 * spec.branch_miss_cycles);
}

TEST(GpuCostModel, EmptyKernelIsLaunchOverhead) {
  gsim::GpuSpec spec;
  gsim::GpuCostModel model(spec);
  gsim::KernelStats s;
  EXPECT_NEAR(model.kernel_time(s).us(), spec.kernel_launch_us, 1e-9);
}

TEST(GpuCostModel, MemoryBoundKernel) {
  gsim::GpuSpec spec;
  gsim::GpuCostModel model(spec);
  gsim::KernelStats s;
  s.blocks = 1000;
  s.warps = 8000;  // plenty to hide latency
  s.warp_cycles = 8000.0;
  // 1.625 M transactions * 128 B = 208 MB -> 1 ms at 208 GB/s.
  s.global_transactions = 1'625'000;
  const double ms = model.kernel_time(s).ms();
  EXPECT_NEAR(ms, 1.0 + spec.kernel_launch_us * 1e-3, 0.2);
}

TEST(GpuCostModel, FewWarpsAreLatencyBound) {
  gsim::GpuSpec spec;
  gsim::GpuCostModel model(spec);
  // One warp doing 10 dependent transactions: ~10 * 400 ns exposed latency.
  gsim::KernelStats s;
  s.blocks = 1;
  s.warps = 1;
  s.warp_cycles = 100;
  s.global_transactions = 10;
  const double us = model.kernel_time(s).us();
  EXPECT_GT(us, spec.kernel_launch_us + 3.5);
  EXPECT_LT(us, spec.kernel_launch_us + 6.0);
}

TEST(GpuCostModel, DivergentKernelSlowerThanUniform) {
  gsim::GpuSpec spec;
  gsim::GpuCostModel model(spec);
  gsim::KernelStats uniform;
  uniform.blocks = 100;
  uniform.warps = 100000;
  uniform.warp_cycles = 1e7;
  gsim::KernelStats divergent = uniform;
  divergent.warp_cycles = 2e7;  // same work, half the lanes idle
  EXPECT_GT(model.kernel_time(divergent).ps(),
            model.kernel_time(uniform).ps());
}

TEST(GpuCostModel, CoalescingEfficiencyDiagnostic) {
  gsim::GpuSpec spec;
  gsim::KernelStats s;
  s.global_transactions = 10;
  s.global_bytes_requested = 1280;
  EXPECT_DOUBLE_EQ(s.coalescing_efficiency(spec), 1.0);
  s.global_bytes_requested = 128;
  EXPECT_DOUBLE_EQ(s.coalescing_efficiency(spec), 0.1);
}

TEST(GpuCostModel, StatsMerge) {
  gsim::KernelStats a, b;
  a.blocks = 1;
  a.warps = 2;
  a.warp_cycles = 10;
  a.global_transactions = 5;
  a.barriers = 1;
  b.blocks = 3;
  b.warps = 4;
  b.warp_cycles = 20;
  b.global_transactions = 7;
  b.shared_accesses = 9;
  a.merge(b);
  EXPECT_EQ(a.blocks, 4u);
  EXPECT_EQ(a.warps, 6u);
  EXPECT_DOUBLE_EQ(a.warp_cycles, 30.0);
  EXPECT_EQ(a.global_transactions, 12u);
  EXPECT_EQ(a.shared_accesses, 9u);
  EXPECT_EQ(a.barriers, 1u);
}
