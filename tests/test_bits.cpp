#include "util/bits.h"

#include <gtest/gtest.h>

#include <random>

namespace gu = griffin::util;

TEST(Bits, Popcount) {
  EXPECT_EQ(gu::popcount32(0u), 0);
  EXPECT_EQ(gu::popcount32(1u), 1);
  EXPECT_EQ(gu::popcount32(0xFFFFFFFFu), 32);
  EXPECT_EQ(gu::popcount32(0xAAAAAAAAu), 16);
  EXPECT_EQ(gu::popcount64(0xFFFFFFFFFFFFFFFFull), 64);
}

TEST(Bits, FloorCeilLog2) {
  EXPECT_EQ(gu::floor_log2(1), 0u);
  EXPECT_EQ(gu::floor_log2(2), 1u);
  EXPECT_EQ(gu::floor_log2(3), 1u);
  EXPECT_EQ(gu::floor_log2(4), 2u);
  EXPECT_EQ(gu::floor_log2(1023), 9u);
  EXPECT_EQ(gu::floor_log2(1024), 10u);
  EXPECT_EQ(gu::ceil_log2(1), 0u);
  EXPECT_EQ(gu::ceil_log2(2), 1u);
  EXPECT_EQ(gu::ceil_log2(3), 2u);
  EXPECT_EQ(gu::ceil_log2(1024), 10u);
  EXPECT_EQ(gu::ceil_log2(1025), 11u);
}

TEST(Bits, BitWidthOr1) {
  EXPECT_EQ(gu::bit_width_or1(0), 1u);
  EXPECT_EQ(gu::bit_width_or1(1), 1u);
  EXPECT_EQ(gu::bit_width_or1(2), 2u);
  EXPECT_EQ(gu::bit_width_or1(255), 8u);
  EXPECT_EQ(gu::bit_width_or1(256), 9u);
}

TEST(Bits, SelectInWord) {
  EXPECT_EQ(gu::select_in_word(0b1, 0), 0);
  EXPECT_EQ(gu::select_in_word(0b10110, 0), 1);
  EXPECT_EQ(gu::select_in_word(0b10110, 1), 2);
  EXPECT_EQ(gu::select_in_word(0b10110, 2), 4);
  // k-th set bit of all-ones is k.
  for (int k = 0; k < 64; ++k) {
    EXPECT_EQ(gu::select_in_word(~0ull, k), k);
  }
}

TEST(Bits, ReadWriteBitsRoundTrip) {
  std::mt19937_64 rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint64_t> buf(64, 0);
    std::vector<std::pair<std::uint64_t, std::uint32_t>> writes;  // pos, len
    std::vector<std::uint64_t> values;
    std::uint64_t pos = rng() % 13;
    while (true) {
      const std::uint32_t len = 1 + rng() % 64;
      if (pos + len > buf.size() * 64) break;
      std::uint64_t v = rng();
      if (len < 64) v &= (1ull << len) - 1;
      griffin::util::write_bits(buf.data(), pos, len, v);
      writes.push_back({pos, len});
      values.push_back(v);
      pos += len;
    }
    for (std::size_t i = 0; i < writes.size(); ++i) {
      EXPECT_EQ(griffin::util::read_bits(buf.data(), writes[i].first,
                                         writes[i].second),
                values[i]);
    }
  }
}

TEST(Bits, ReadBitsZeroLen) {
  std::uint64_t w[2] = {~0ull, ~0ull};
  EXPECT_EQ(gu::read_bits(w, 17, 0), 0ull);
}

TEST(Bits, RoundUpDivCeil) {
  EXPECT_EQ(gu::round_up(0, 8), 0ull);
  EXPECT_EQ(gu::round_up(1, 8), 8ull);
  EXPECT_EQ(gu::round_up(8, 8), 8ull);
  EXPECT_EQ(gu::round_up(9, 8), 16ull);
  EXPECT_EQ(gu::div_ceil(0, 3), 0ull);
  EXPECT_EQ(gu::div_ceil(1, 3), 1ull);
  EXPECT_EQ(gu::div_ceil(3, 3), 1ull);
  EXPECT_EQ(gu::div_ceil(4, 3), 2ull);
  EXPECT_EQ(gu::words_for_bits(0), 0ull);
  EXPECT_EQ(gu::words_for_bits(1), 1ull);
  EXPECT_EQ(gu::words_for_bits(64), 1ull);
  EXPECT_EQ(gu::words_for_bits(65), 2ull);
}
