// Shared fixtures for engine-level tests: a small synthetic index plus a
// brute-force reference executor (decode everything, std::set_intersection,
// straightforward BM25) that every engine must agree with exactly.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/query.h"
#include "cpu/bm25.h"
#include "workload/corpus.h"
#include "workload/querylog.h"

namespace griffin::testutil {

inline workload::CorpusConfig small_corpus_config() {
  workload::CorpusConfig cfg;
  cfg.num_docs = 200'000;
  cfg.num_terms = 300;
  cfg.max_list_divisor = 3.0;
  cfg.zipf_s = 0.9;
  cfg.min_list_size = 64;
  cfg.seed = 1234;
  return cfg;
}

/// Built once per test binary (corpus generation is the expensive part).
inline const index::InvertedIndex& small_index() {
  static const index::InvertedIndex idx =
      workload::generate_corpus(small_corpus_config());
  return idx;
}

/// A corpus in the regime the paper evaluates (long lists, where GPU work
/// amortizes its fixed overheads) for performance-shape tests.
inline workload::CorpusConfig large_corpus_config() {
  workload::CorpusConfig cfg;
  cfg.num_docs = 2'000'000;
  cfg.num_terms = 200;
  cfg.max_list_divisor = 3.0;
  cfg.zipf_s = 0.9;
  cfg.min_list_size = 256;
  cfg.seed = 77;
  return cfg;
}

inline const index::InvertedIndex& large_index() {
  static const index::InvertedIndex idx =
      workload::generate_corpus(large_corpus_config());
  return idx;
}

/// Brute-force result: intersection docIDs in ascending order.
inline std::vector<index::DocId> reference_matches(
    const index::InvertedIndex& idx, const core::Query& q) {
  std::vector<index::DocId> current;
  bool first = true;
  for (const auto t : q.terms) {
    std::vector<index::DocId> docs;
    idx.list(t).docids.decode_all(docs);
    if (first) {
      current = std::move(docs);
      first = false;
    } else {
      std::vector<index::DocId> next;
      std::set_intersection(current.begin(), current.end(), docs.begin(),
                            docs.end(), std::back_inserter(next));
      current = std::move(next);
    }
  }
  return current;
}

/// Brute-force top-k (same scorer, same tie-breaks as the engines).
inline std::vector<core::ScoredDoc> reference_topk(
    const index::InvertedIndex& idx, const core::Query& q) {
  const auto matches = reference_matches(idx, q);
  cpu::Bm25Scorer scorer(idx);
  // The accumulator keeps a pointer to the spec, so it must outlive it.
  const sim::CpuSpec spec{};
  sim::CpuCostAccumulator acc{spec};
  std::vector<core::ScoredDoc> scored;
  scorer.score(q.terms, matches, scored, acc);
  cpu::top_k(scored, q.k, acc);
  return scored;
}

inline void expect_same_topk(const std::vector<core::ScoredDoc>& got,
                             const std::vector<core::ScoredDoc>& want,
                             const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << label << " rank " << i;
    EXPECT_NEAR(got[i].score, want[i].score, 1e-4) << label << " rank " << i;
  }
}

}  // namespace griffin::testutil
