#include "core/hybrid_engine.h"

#include <gtest/gtest.h>

#include "engine_test_util.h"

using namespace griffin;

TEST(HybridEngine, MatchesReferenceOnQueryLog) {
  const auto& idx = testutil::small_index();
  core::HybridEngine engine(idx);

  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 60;
  qcfg.seed = 33;
  const auto log = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));
  for (const auto& q : log) {
    const auto got = engine.execute(q);
    const auto want = testutil::reference_topk(idx, q);
    testutil::expect_same_topk(got.topk, want, "griffin");
  }
}

TEST(HybridEngine, AgreesWithCpuAndGpuEngines) {
  const auto& idx = testutil::small_index();
  core::HybridEngine hybrid(idx);
  cpu::CpuEngine cpu_engine(idx);
  gpu::GpuEngine gpu_engine(idx);

  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 25;
  qcfg.seed = 34;
  const auto log = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));
  for (const auto& q : log) {
    const auto h = hybrid.execute(q);
    const auto c = cpu_engine.execute(q);
    const auto g = gpu_engine.execute(q);
    testutil::expect_same_topk(h.topk, c.topk, "hybrid-vs-cpu");
    testutil::expect_same_topk(h.topk, g.topk, "hybrid-vs-gpu");
    EXPECT_EQ(h.metrics.result_count, c.metrics.result_count);
  }
}

TEST(HybridEngine, StartsOnGpuForBalancedPair) {
  const auto& idx = testutil::small_index();
  core::HybridEngine engine(idx);
  core::Query q;
  q.terms = {10, 12};  // adjacent ranks: ratio close to 1
  const auto res = engine.execute(q);
  ASSERT_EQ(res.metrics.placements.size(), 1u);
  EXPECT_EQ(res.metrics.placements[0], core::Placement::kGpu);
}

TEST(HybridEngine, StartsOnCpuForExtremeRatio) {
  const auto& idx = testutil::small_index();
  core::HybridEngine engine(idx);
  core::Query q;
  q.terms = {static_cast<index::TermId>(idx.num_terms() - 1), 0};
  ASSERT_GT(static_cast<double>(idx.list(0).size()) /
                static_cast<double>(idx.list(idx.num_terms() - 1).size()),
            128.0);
  const auto res = engine.execute(q);
  ASSERT_EQ(res.metrics.placements.size(), 1u);
  EXPECT_EQ(res.metrics.placements[0], core::Placement::kCpu);
  EXPECT_EQ(res.metrics.migrations, 0u);
}

TEST(HybridEngine, MigratesGpuToCpuWhenIntermediateShrinks) {
  const auto& idx = testutil::large_index();
  // Prefetch off: this pins the paper's base §3.2 rule. (With prefetch on,
  // the staged upload of the huge list boosts the GPU threshold and the
  // same query legitimately stays on the device — covered below.)
  core::HybridOptions opt;
  opt.scheduler.prefetch = false;
  core::HybridEngine engine(idx, {}, opt);
  // Two balanced mid-size lists (GPU start) whose intersection is small,
  // then a huge list: the ratio explodes past 128 and the query must
  // migrate to the CPU (the paper's canonical scenario, §3.2).
  core::Query q;
  q.terms = {10, 11, 0};
  const auto res = engine.execute(q);
  ASSERT_EQ(res.metrics.placements.size(), 2u);
  EXPECT_EQ(res.metrics.placements[0], core::Placement::kGpu);
  EXPECT_EQ(res.metrics.placements[1], core::Placement::kCpu);
  EXPECT_EQ(res.metrics.migrations, 1u);
  EXPECT_GT(res.metrics.transfer.ps(), 0);
  // Correctness preserved across the migration.
  const auto want = testutil::reference_topk(idx, q);
  testutil::expect_same_topk(res.topk, want, "migrated");
}

TEST(HybridEngine, PrefetchKeepsBorderlineQueryOnGpu) {
  const auto& idx = testutil::large_index();
  core::HybridEngine engine(idx);  // prefetch on by default
  core::Query q;
  q.terms = {10, 11, 0};
  const auto res = engine.execute(q);
  // The prefetch staged alongside the first intersect paid the huge list's
  // upload on the copy engine, so the boosted ratio rule keeps the second
  // intersect on the GPU: no migration, and the prefetch is consumed.
  ASSERT_EQ(res.metrics.placements.size(), 2u);
  EXPECT_EQ(res.metrics.placements[1], core::Placement::kGpu);
  EXPECT_EQ(res.metrics.migrations, 0u);
  EXPECT_EQ(res.metrics.overlap.prefetch_issued, 1u);
  EXPECT_EQ(res.metrics.overlap.prefetch_used, 1u);
  EXPECT_EQ(res.metrics.overlap.prefetch_dropped, 0u);
  // Same documents and scores either way.
  const auto want = testutil::reference_topk(idx, q);
  testutil::expect_same_topk(res.topk, want, "prefetched");
}

TEST(HybridEngine, AlwaysCpuPolicyNeverTouchesGpu) {
  const auto& idx = testutil::small_index();
  core::HybridOptions opt;
  opt.scheduler.policy = core::SchedulerPolicy::kAlwaysCpu;
  core::HybridEngine engine(idx, {}, opt);
  core::Query q;
  q.terms = {5, 15, 30};
  const auto res = engine.execute(q);
  EXPECT_EQ(res.metrics.gpu_kernels, 0u);
  for (const auto p : res.metrics.placements) {
    EXPECT_EQ(p, core::Placement::kCpu);
  }
  const auto want = testutil::reference_topk(idx, q);
  testutil::expect_same_topk(res.topk, want, "always-cpu");
}

TEST(HybridEngine, CostModelPolicyIsCorrectToo) {
  const auto& idx = testutil::small_index();
  core::HybridOptions opt;
  opt.scheduler.policy = core::SchedulerPolicy::kCostModel;
  core::HybridEngine engine(idx, {}, opt);
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 20;
  qcfg.seed = 35;
  const auto log = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));
  for (const auto& q : log) {
    const auto got = engine.execute(q);
    const auto want = testutil::reference_topk(idx, q);
    testutil::expect_same_topk(got.topk, want, "cost-model");
  }
}

TEST(HybridEngine, FasterThanBothStaticEnginesOnMixedQuery) {
  // The headline claim in miniature: a query whose early rounds favor the
  // GPU and late rounds favor the CPU runs fastest when it can switch
  // processors mid-query.
  const auto& idx = testutil::large_index();
  core::HybridEngine hybrid(idx);
  cpu::CpuEngine cpu_engine(idx);
  gpu::GpuEngine gpu_engine(idx);

  // Balanced mid-size first pair (GPU-friendly), then a huge list at a
  // ratio deep in CPU territory (~1400): the hybrid engine should combine
  // the best of both.
  core::Query q;
  q.terms = {30, 32, 0};
  const auto h = hybrid.execute(q);
  const auto c = cpu_engine.execute(q);
  const auto g = gpu_engine.execute(q);
  EXPECT_LE(h.metrics.total.ps(),
            static_cast<std::int64_t>(c.metrics.total.ps() * 1.05));
  EXPECT_LE(h.metrics.total.ps(),
            static_cast<std::int64_t>(g.metrics.total.ps() * 1.05));
}
