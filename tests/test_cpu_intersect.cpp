#include "cpu/intersect.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"
#include "workload/corpus.h"

namespace gc = griffin::cpu;
using griffin::codec::BlockCompressedList;
using griffin::codec::DocId;
using griffin::codec::Scheme;

namespace {

std::vector<DocId> reference_intersect(std::span<const DocId> a,
                                       std::span<const DocId> b) {
  std::vector<DocId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

griffin::sim::CpuSpec spec;

}  // namespace

TEST(CpuIntersect, DecodedMergeSmall) {
  const std::vector<DocId> a{11, 15, 17, 38, 60};
  const std::vector<DocId> b{3, 5, 8, 11, 13, 15, 17, 38, 46, 60, 65};
  griffin::sim::CpuCostAccumulator acc(spec);
  std::vector<DocId> out;
  gc::merge_intersect(std::span<const DocId>(a), std::span<const DocId>(b),
                      out, acc);
  EXPECT_EQ(out, (std::vector<DocId>{11, 15, 17, 38, 60}));
  EXPECT_GT(acc.cycles(), 0.0);
}

TEST(CpuIntersect, PaperSvSExample) {
  // §2.1.2: PPoPP / Austria / 2018.
  const std::vector<DocId> ppopp{11, 15, 17, 38, 60};
  const std::vector<DocId> austria{3, 5, 8, 11, 13, 15, 17, 38, 46, 60, 65};
  const std::vector<DocId> y2018{2, 4, 6, 11, 13, 14, 15, 19, 25, 33, 38, 60, 70};
  griffin::sim::CpuCostAccumulator acc(spec);
  std::vector<DocId> tmp, out;
  gc::merge_intersect(std::span<const DocId>(ppopp),
                      std::span<const DocId>(austria), tmp, acc);
  gc::merge_intersect(std::span<const DocId>(tmp),
                      std::span<const DocId>(y2018), out, acc);
  EXPECT_EQ(out, (std::vector<DocId>{11, 15, 38, 60}));
}

TEST(CpuIntersect, EmptyAndDisjoint) {
  griffin::sim::CpuCostAccumulator acc(spec);
  std::vector<DocId> out;
  const std::vector<DocId> a{1, 2, 3};
  const std::vector<DocId> empty;
  gc::merge_intersect(std::span<const DocId>(a), std::span<const DocId>(empty),
                      out, acc);
  EXPECT_TRUE(out.empty());
  const std::vector<DocId> b{10, 20, 30};
  gc::merge_intersect(std::span<const DocId>(a), std::span<const DocId>(b),
                      out, acc);
  EXPECT_TRUE(out.empty());
}

class CpuIntersectParam
    : public ::testing::TestWithParam<std::tuple<Scheme, int, double>> {};

TEST_P(CpuIntersectParam, AllVariantsMatchReference) {
  const auto [scheme, longer_size, ratio] = GetParam();
  griffin::util::Xoshiro256 rng(longer_size ^ static_cast<int>(ratio * 8));
  const auto pair = griffin::workload::make_pair_with_ratio(
      longer_size, ratio, 40'000'000, 0.35, rng);
  const auto expect = reference_intersect(pair.shorter, pair.longer);

  const auto la = BlockCompressedList::build(pair.shorter, scheme);
  const auto lb = BlockCompressedList::build(pair.longer, scheme);

  {
    griffin::sim::CpuCostAccumulator acc(spec);
    std::vector<DocId> out;
    gc::merge_intersect(std::span<const DocId>(pair.shorter),
                        std::span<const DocId>(pair.longer), out, acc);
    EXPECT_EQ(out, expect) << "decoded x decoded";
  }
  {
    griffin::sim::CpuCostAccumulator acc(spec);
    std::vector<DocId> out;
    gc::merge_intersect(std::span<const DocId>(pair.shorter), lb, out, acc);
    EXPECT_EQ(out, expect) << "decoded x compressed";
  }
  {
    griffin::sim::CpuCostAccumulator acc(spec);
    std::vector<DocId> out;
    gc::merge_intersect(la, lb, out, acc);
    EXPECT_EQ(out, expect) << "compressed x compressed";
  }
  {
    griffin::sim::CpuCostAccumulator acc(spec);
    std::vector<DocId> out;
    gc::skip_intersect(pair.shorter, lb, out, acc);
    EXPECT_EQ(out, expect) << "skip";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CpuIntersectParam,
    ::testing::Combine(::testing::Values(Scheme::kEliasFano,
                                         Scheme::kPForDelta),
                       ::testing::Values(500, 5000, 100000),
                       ::testing::Values(1.0, 4.0, 60.0, 300.0)));

TEST(CpuIntersect, SkipDecodesFewerBlocksAtHighRatio) {
  griffin::util::Xoshiro256 rng(44);
  const auto pair = griffin::workload::make_pair_with_ratio(
      512 * 1024, 512.0, 40'000'000, 0.3, rng);
  const auto lb =
      BlockCompressedList::build(pair.longer, Scheme::kEliasFano);

  griffin::sim::CpuCostAccumulator skip_acc(spec), merge_acc(spec);
  std::vector<DocId> out1, out2;
  gc::skip_intersect(pair.shorter, lb, out1, skip_acc);
  gc::merge_intersect(std::span<const DocId>(pair.shorter), lb, out2,
                      merge_acc);
  EXPECT_EQ(out1, out2);
  // At ratio 512 the skip variant must be far cheaper than the full merge.
  EXPECT_LT(skip_acc.time().ps() * 5, merge_acc.time().ps());
}

TEST(CpuIntersect, MergeCheaperAtEqualLengths) {
  griffin::util::Xoshiro256 rng(45);
  const auto pair = griffin::workload::make_pair_with_ratio(
      100'000, 1.0, 10'000'000, 0.3, rng);
  const auto lb =
      BlockCompressedList::build(pair.longer, Scheme::kEliasFano);
  griffin::sim::CpuCostAccumulator skip_acc(spec), merge_acc(spec);
  std::vector<DocId> out1, out2;
  gc::skip_intersect(pair.shorter, lb, out1, skip_acc);
  gc::merge_intersect(std::span<const DocId>(pair.shorter), lb, out2,
                      merge_acc);
  EXPECT_EQ(out1, out2);
  EXPECT_LT(merge_acc.time().ps(), skip_acc.time().ps());
}
