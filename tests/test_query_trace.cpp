// The trace invariants the plan/execute decomposition (DESIGN.md §8)
// guarantees:
//   1. Per-step stage durations sum exactly to the QueryMetrics stage
//      totals — every charge in the system happens inside some recorded
//      step (the records are stage-delta snapshots around dispatch).
//   2. An intersect record's placement replays from Scheduler::decide on
//      its recorded StepShape: the trace carries the scheduler's full
//      input, so decisions are auditable after the fact.
//   3. Cold caches don't perturb the plan: a fresh engine with both cache
//      tiers enabled produces the identical trace (all fields) to one with
//      them disabled.
//   4. Warm steady state is deterministic: once the caches are warm,
//      repeated executions of the same query produce identical traces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/hybrid_engine.h"
#include "core/scheduler.h"
#include "engine_test_util.h"

using namespace griffin;

namespace {

std::vector<core::Query> trace_log(const index::InvertedIndex& idx) {
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 20;
  qcfg.seed = 314;
  auto log = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));
  core::Query single;
  single.terms = {5};
  log.push_back(single);
  core::Query extreme;
  extreme.terms = {static_cast<index::TermId>(idx.num_terms() - 1), 0};
  log.push_back(extreme);
  return log;
}

void expect_stage_sums(const core::QueryResult& res, const std::string& label) {
  const auto& m = res.metrics;
  ASSERT_FALSE(res.trace.empty()) << label;
  EXPECT_EQ(res.trace.back().kind, core::StepKind::kRank) << label;
  sim::Duration total, decode, intersect, transfer, rank;
  std::uint64_t kernels = 0;
  for (const auto& r : res.trace) {
    // Each record's duration is exactly its stage charges.
    EXPECT_EQ(r.duration, r.decode + r.intersect + r.transfer + r.rank)
        << label;
    total += r.duration;
    decode += r.decode;
    intersect += r.intersect;
    transfer += r.transfer;
    rank += r.rank;
    kernels += r.gpu_kernels;
    // Single-tenant execution: every record is attributed to this query and
    // nothing is batch-grouped (batch groups only exist under tenancy).
    EXPECT_EQ(r.query, res.trace.front().query) << label;
    EXPECT_EQ(r.batch_group, 0u) << label;
  }
  // Step durations are serial stage charges; m.total is the timeline's
  // critical path. The difference is exactly the overlap the async engines
  // hid (DESIGN.md §10) — picosecond-exact, not approximate.
  EXPECT_EQ(total, m.total + m.overlap.saved) << label;
  EXPECT_EQ(decode, m.decode) << label;
  EXPECT_EQ(intersect, m.intersect) << label;
  EXPECT_EQ(transfer, m.transfer) << label;
  EXPECT_EQ(rank, m.rank) << label;
  EXPECT_EQ(kernels, m.gpu_kernels) << label;
  EXPECT_EQ(res.trace.back().output_count, m.result_count) << label;

  core::TraceSummary sum;
  sum.add(res.trace);
  EXPECT_EQ(sum.steps, res.trace.size()) << label;
  EXPECT_EQ(sum.migrations, m.migrations) << label;
  EXPECT_EQ(sum.step_time, m.total + m.overlap.saved) << label;

  // Timeline placement sanity: every step has issue <= start <= end, and
  // no step ends after the query's critical path.
  for (const auto& r : res.trace) {
    EXPECT_LE(r.issue.ps(), r.start.ps()) << label;
    EXPECT_LE(r.start.ps(), r.end.ps()) << label;
    EXPECT_LE(r.end.ps(), m.total.ps()) << label;
  }
  // Prefetch bookkeeping always balances.
  EXPECT_EQ(m.overlap.prefetch_issued,
            m.overlap.prefetch_used + m.overlap.prefetch_dropped)
      << label;
}

void expect_identical_traces(const std::vector<core::StepRecord>& a,
                             const std::vector<core::StepRecord>& b,
                             const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    const std::string at = label + " step " + std::to_string(i);
    EXPECT_EQ(x.kind, y.kind) << at;
    EXPECT_EQ(x.query, y.query) << at;
    EXPECT_EQ(x.batch_group, y.batch_group) << at;
    EXPECT_EQ(x.placement, y.placement) << at;
    EXPECT_EQ(x.term, y.term) << at;
    EXPECT_EQ(x.shape.shorter, y.shape.shorter) << at;
    EXPECT_EQ(x.shape.longer, y.shape.longer) << at;
    EXPECT_EQ(x.shape.longer_device_resident, y.shape.longer_device_resident)
        << at;
    EXPECT_EQ(x.shape.longer_host_decoded, y.shape.longer_host_decoded) << at;
    EXPECT_EQ(x.shape.longer_prefetched, y.shape.longer_prefetched) << at;
    EXPECT_EQ(x.output_count, y.output_count) << at;
    EXPECT_EQ(x.gpu_kernels, y.gpu_kernels) << at;
    EXPECT_EQ(x.migration, y.migration) << at;
    EXPECT_EQ(x.duration, y.duration) << at;
    EXPECT_EQ(x.decode, y.decode) << at;
    EXPECT_EQ(x.intersect, y.intersect) << at;
    EXPECT_EQ(x.transfer, y.transfer) << at;
    EXPECT_EQ(x.rank, y.rank) << at;
    EXPECT_EQ(x.resource, y.resource) << at;
    EXPECT_EQ(x.issue, y.issue) << at;
    EXPECT_EQ(x.start, y.start) << at;
    EXPECT_EQ(x.end, y.end) << at;
  }
}

core::HybridOptions caches_off_options() {
  core::HybridOptions opt;
  opt.gpu.list_cache = false;
  opt.cpu.decoded_cache_bytes = 0;
  return opt;
}

}  // namespace

TEST(QueryTrace, StepDurationsSumToStageTotals) {
  const auto& idx = testutil::small_index();
  const auto log = trace_log(idx);

  cpu::CpuEngine cpu_engine(idx);
  gpu::GpuEngine gpu_engine(idx);
  core::HybridEngine griffin(idx);
  core::HybridOptions cost_opt;
  cost_opt.scheduler.policy = core::SchedulerPolicy::kCostModel;
  core::HybridEngine griffin_cost(idx, {}, cost_opt);

  const std::vector<std::pair<const char*, core::Engine*>> engines = {
      {"cpu", &cpu_engine},
      {"gpu", &gpu_engine},
      {"griffin", &griffin},
      {"griffin-cost", &griffin_cost},
  };
  for (const auto& [name, engine] : engines) {
    for (std::size_t i = 0; i < log.size(); ++i) {
      const auto res = engine->execute(log[i]);
      const std::string label = std::string(name) + " q" + std::to_string(i);
      expect_stage_sums(res, label);
      // Attribution: every record carries the caller-assigned query id.
      for (const auto& r : res.trace) {
        EXPECT_EQ(r.query, log[i].id) << label;
      }
    }
  }
}

TEST(QueryTrace, IntersectPlacementsReplayFromRecordedShapes) {
  const auto& idx = testutil::small_index();
  const auto log = trace_log(idx);

  for (const auto policy : {core::SchedulerPolicy::kRatioThreshold,
                            core::SchedulerPolicy::kCostModel}) {
    core::HybridOptions opt;
    opt.scheduler.policy = policy;
    core::HybridEngine engine(idx, {}, opt);
    // The same scheduler configuration the engine runs: the recorded shape
    // is the decision's entire input, so decide() must replay it.
    const core::Scheduler replay(opt.scheduler);
    for (const auto& q : log) {
      const auto res = engine.execute(q);
      for (const auto& rec : res.trace) {
        if (rec.kind != core::StepKind::kIntersect) continue;
        EXPECT_EQ(replay.decide(rec.shape), rec.placement)
            << "policy " << static_cast<int>(policy);
      }
    }
  }
}

TEST(QueryTrace, ColdCachesDoNotPerturbTheTrace) {
  const auto& idx = testutil::small_index();
  const auto log = trace_log(idx);
  for (std::size_t i = 0; i < log.size(); ++i) {
    // Fresh engines per query: both cache tiers are cold, so the recorded
    // plan must be identical whether the tiers exist or not.
    core::HybridEngine with_caches(idx);
    core::HybridEngine without_caches(idx, {}, caches_off_options());
    const auto a = with_caches.execute(log[i]);
    const auto b = without_caches.execute(log[i]);
    expect_identical_traces(a.trace, b.trace, "q" + std::to_string(i));
    EXPECT_EQ(a.metrics.total, b.metrics.total);
  }
}

TEST(QueryTrace, PrefetchNeverChangesResults) {
  // Prefetch moves bytes earlier and changes plans, never answers: the
  // top-k doc ids and the score *bits* are identical with it on and off.
  const auto& idx = testutil::small_index();
  const auto log = trace_log(idx);
  core::HybridOptions no_prefetch;
  no_prefetch.scheduler.prefetch = false;
  core::HybridEngine with(idx);
  core::HybridEngine without(idx, {}, no_prefetch);
  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto a = with.execute(log[i]);
    const auto b = without.execute(log[i]);
    ASSERT_EQ(a.topk.size(), b.topk.size()) << "q" << i;
    for (std::size_t r = 0; r < a.topk.size(); ++r) {
      EXPECT_EQ(a.topk[r].doc, b.topk[r].doc) << "q" << i << " rank " << r;
      std::uint32_t xa, xb;
      std::memcpy(&xa, &a.topk[r].score, sizeof(xa));
      std::memcpy(&xb, &b.topk[r].score, sizeof(xb));
      EXPECT_EQ(xa, xb) << "q" << i << " rank " << r;  // bit-identical
    }
    expect_stage_sums(a, "prefetch-on q" + std::to_string(i));
    expect_stage_sums(b, "prefetch-off q" + std::to_string(i));
    EXPECT_EQ(b.metrics.overlap.prefetch_issued, 0u) << "q" << i;
  }
}

TEST(QueryTrace, PrefetchDroppedOnCpuMigration) {
  // Crafted three-term query: the first pair runs on the GPU (ratio 2) and
  // stages a prefetch for the third list (stage-time ratio 50 < 256), but
  // the intersection collapses to 4 docs, so the third intersect's true
  // ratio (25000) clears even the prefetch-boosted threshold (512) and the
  // query migrates to the CPU — the in-flight prefetch loses its consumer
  // and must be dropped, never used.
  index::InvertedIndex idx(codec::Scheme::kEliasFano);
  std::vector<index::DocId> a, b, c;
  for (index::DocId i = 0; i < 2000; ++i) a.push_back(i * 100);
  for (index::DocId i = 0; i < 4; ++i) b.push_back(i * 100);  // the matches
  for (index::DocId i = 0; i < 3996; ++i) b.push_back(i * 100 + 1);
  std::sort(b.begin(), b.end());
  for (index::DocId i = 0; i < 100000; ++i) c.push_back(i * 7);
  const index::DocId universe = 700000;
  idx.docs().resize(universe);
  for (index::DocId d = 0; d < universe; ++d) idx.docs().set_length(d, 1);
  idx.add_list(a);
  idx.add_list(b);
  idx.add_list(c);

  core::HybridEngine engine(idx);
  core::Query q;
  q.terms = {0, 1, 2};
  const auto res = engine.execute(q);
  const auto& m = res.metrics;
  EXPECT_EQ(m.migrations, 1u);
  ASSERT_EQ(m.placements.size(), 2u);
  EXPECT_EQ(m.placements[0], core::Placement::kGpu);
  EXPECT_EQ(m.placements[1], core::Placement::kCpu);
  EXPECT_EQ(m.overlap.prefetch_issued, 1u);
  EXPECT_EQ(m.overlap.prefetch_used, 0u);
  EXPECT_EQ(m.overlap.prefetch_dropped, 1u);
  // The trace carries the prefetch step and the shape bit that set the
  // boosted threshold the migration still cleared.
  bool saw_prefetch = false, saw_boosted_shape = false;
  for (const auto& r : res.trace) {
    if (r.kind == core::StepKind::kPrefetch) {
      saw_prefetch = true;
      EXPECT_EQ(r.term, 2u);
      EXPECT_EQ(r.resource, sim::Resource::kCopyH2D);
    }
    if (r.kind == core::StepKind::kIntersect && r.shape.longer_prefetched) {
      saw_boosted_shape = true;
      EXPECT_EQ(r.placement, core::Placement::kCpu);
    }
  }
  EXPECT_TRUE(saw_prefetch);
  EXPECT_TRUE(saw_boosted_shape);
  expect_stage_sums(res, "dropped-prefetch");
  const auto want = testutil::reference_topk(idx, q);
  testutil::expect_same_topk(res.topk, want, "dropped-prefetch");
}

TEST(QueryTrace, NoOverlapOnCpuOnlyPaths) {
  // Queries that never touch the GPU have nothing to overlap: the critical
  // path *is* the serial sum, exactly.
  const auto& idx = testutil::small_index();
  const auto log = trace_log(idx);
  core::HybridOptions opt;
  opt.scheduler.policy = core::SchedulerPolicy::kAlwaysCpu;
  core::HybridEngine always_cpu(idx, {}, opt);
  cpu::CpuEngine cpu_engine(idx);
  for (const auto& q : log) {
    for (core::Engine* e :
         {static_cast<core::Engine*>(&always_cpu),
          static_cast<core::Engine*>(&cpu_engine)}) {
      const auto res = e->execute(q);
      EXPECT_EQ(res.metrics.overlap.saved.ps(), 0);
      EXPECT_EQ(res.metrics.overlap.prefetch_issued, 0u);
      EXPECT_EQ(res.metrics.overlap.h2d_busy.ps(), 0);
      EXPECT_EQ(res.metrics.overlap.d2h_busy.ps(), 0);
    }
  }
}

TEST(QueryTrace, WarmCacheTracesAreDeterministic) {
  const auto& idx = testutil::small_index();
  const auto log = trace_log(idx);
  core::HybridEngine engine(idx);
  for (const auto& q : log) engine.execute(q);  // warm both tiers

  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto first = engine.execute(log[i]);
    const auto second = engine.execute(log[i]);
    expect_identical_traces(first.trace, second.trace,
                            "warm q" + std::to_string(i));
  }
}
