// The trace invariants the plan/execute decomposition (DESIGN.md §8)
// guarantees:
//   1. Per-step stage durations sum exactly to the QueryMetrics stage
//      totals — every charge in the system happens inside some recorded
//      step (the records are stage-delta snapshots around dispatch).
//   2. An intersect record's placement replays from Scheduler::decide on
//      its recorded StepShape: the trace carries the scheduler's full
//      input, so decisions are auditable after the fact.
//   3. Cold caches don't perturb the plan: a fresh engine with both cache
//      tiers enabled produces the identical trace (all fields) to one with
//      them disabled.
//   4. Warm steady state is deterministic: once the caches are warm,
//      repeated executions of the same query produce identical traces.
#include <gtest/gtest.h>

#include <vector>

#include "core/hybrid_engine.h"
#include "core/scheduler.h"
#include "engine_test_util.h"

using namespace griffin;

namespace {

std::vector<core::Query> trace_log(const index::InvertedIndex& idx) {
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 20;
  qcfg.seed = 314;
  auto log = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));
  core::Query single;
  single.terms = {5};
  log.push_back(single);
  core::Query extreme;
  extreme.terms = {static_cast<index::TermId>(idx.num_terms() - 1), 0};
  log.push_back(extreme);
  return log;
}

void expect_stage_sums(const core::QueryResult& res, const std::string& label) {
  const auto& m = res.metrics;
  ASSERT_FALSE(res.trace.empty()) << label;
  EXPECT_EQ(res.trace.back().kind, core::StepKind::kRank) << label;
  sim::Duration total, decode, intersect, transfer, rank;
  std::uint64_t kernels = 0;
  for (const auto& r : res.trace) {
    // Each record's duration is exactly its stage charges.
    EXPECT_EQ(r.duration, r.decode + r.intersect + r.transfer + r.rank)
        << label;
    total += r.duration;
    decode += r.decode;
    intersect += r.intersect;
    transfer += r.transfer;
    rank += r.rank;
    kernels += r.gpu_kernels;
  }
  EXPECT_EQ(total, m.total) << label;
  EXPECT_EQ(decode, m.decode) << label;
  EXPECT_EQ(intersect, m.intersect) << label;
  EXPECT_EQ(transfer, m.transfer) << label;
  EXPECT_EQ(rank, m.rank) << label;
  EXPECT_EQ(kernels, m.gpu_kernels) << label;
  EXPECT_EQ(res.trace.back().output_count, m.result_count) << label;

  core::TraceSummary sum;
  sum.add(res.trace);
  EXPECT_EQ(sum.steps, res.trace.size()) << label;
  EXPECT_EQ(sum.migrations, m.migrations) << label;
  EXPECT_EQ(sum.step_time, m.total) << label;
}

void expect_identical_traces(const std::vector<core::StepRecord>& a,
                             const std::vector<core::StepRecord>& b,
                             const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    const std::string at = label + " step " + std::to_string(i);
    EXPECT_EQ(x.kind, y.kind) << at;
    EXPECT_EQ(x.placement, y.placement) << at;
    EXPECT_EQ(x.term, y.term) << at;
    EXPECT_EQ(x.shape.shorter, y.shape.shorter) << at;
    EXPECT_EQ(x.shape.longer, y.shape.longer) << at;
    EXPECT_EQ(x.shape.longer_device_resident, y.shape.longer_device_resident)
        << at;
    EXPECT_EQ(x.shape.longer_host_decoded, y.shape.longer_host_decoded) << at;
    EXPECT_EQ(x.output_count, y.output_count) << at;
    EXPECT_EQ(x.gpu_kernels, y.gpu_kernels) << at;
    EXPECT_EQ(x.migration, y.migration) << at;
    EXPECT_EQ(x.duration, y.duration) << at;
    EXPECT_EQ(x.decode, y.decode) << at;
    EXPECT_EQ(x.intersect, y.intersect) << at;
    EXPECT_EQ(x.transfer, y.transfer) << at;
    EXPECT_EQ(x.rank, y.rank) << at;
  }
}

core::HybridOptions caches_off_options() {
  core::HybridOptions opt;
  opt.gpu.list_cache = false;
  opt.cpu.decoded_cache_bytes = 0;
  return opt;
}

}  // namespace

TEST(QueryTrace, StepDurationsSumToStageTotals) {
  const auto& idx = testutil::small_index();
  const auto log = trace_log(idx);

  cpu::CpuEngine cpu_engine(idx);
  gpu::GpuEngine gpu_engine(idx);
  core::HybridEngine griffin(idx);
  core::HybridOptions cost_opt;
  cost_opt.scheduler.policy = core::SchedulerPolicy::kCostModel;
  core::HybridEngine griffin_cost(idx, {}, cost_opt);

  const std::vector<std::pair<const char*, core::Engine*>> engines = {
      {"cpu", &cpu_engine},
      {"gpu", &gpu_engine},
      {"griffin", &griffin},
      {"griffin-cost", &griffin_cost},
  };
  for (const auto& [name, engine] : engines) {
    for (std::size_t i = 0; i < log.size(); ++i) {
      const auto res = engine->execute(log[i]);
      expect_stage_sums(res, std::string(name) + " q" + std::to_string(i));
    }
  }
}

TEST(QueryTrace, IntersectPlacementsReplayFromRecordedShapes) {
  const auto& idx = testutil::small_index();
  const auto log = trace_log(idx);

  for (const auto policy : {core::SchedulerPolicy::kRatioThreshold,
                            core::SchedulerPolicy::kCostModel}) {
    core::HybridOptions opt;
    opt.scheduler.policy = policy;
    core::HybridEngine engine(idx, {}, opt);
    // The same scheduler configuration the engine runs: the recorded shape
    // is the decision's entire input, so decide() must replay it.
    const core::Scheduler replay(opt.scheduler);
    for (const auto& q : log) {
      const auto res = engine.execute(q);
      for (const auto& rec : res.trace) {
        if (rec.kind != core::StepKind::kIntersect) continue;
        EXPECT_EQ(replay.decide(rec.shape), rec.placement)
            << "policy " << static_cast<int>(policy);
      }
    }
  }
}

TEST(QueryTrace, ColdCachesDoNotPerturbTheTrace) {
  const auto& idx = testutil::small_index();
  const auto log = trace_log(idx);
  for (std::size_t i = 0; i < log.size(); ++i) {
    // Fresh engines per query: both cache tiers are cold, so the recorded
    // plan must be identical whether the tiers exist or not.
    core::HybridEngine with_caches(idx);
    core::HybridEngine without_caches(idx, {}, caches_off_options());
    const auto a = with_caches.execute(log[i]);
    const auto b = without_caches.execute(log[i]);
    expect_identical_traces(a.trace, b.trace, "q" + std::to_string(i));
    EXPECT_EQ(a.metrics.total, b.metrics.total);
  }
}

TEST(QueryTrace, WarmCacheTracesAreDeterministic) {
  const auto& idx = testutil::small_index();
  const auto log = trace_log(idx);
  core::HybridEngine engine(idx);
  for (const auto& q : log) engine.execute(q);  // warm both tiers

  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto first = engine.execute(log[i]);
    const auto second = engine.execute(log[i]);
    expect_identical_traces(first.trace, second.trace,
                            "warm q" + std::to_string(i));
  }
}
