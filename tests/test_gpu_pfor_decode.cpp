// The PFor-on-GPU ablation kernel: functionally correct, pathologically
// divergent — the negative result of paper §2.3/§3.1.1.
#include "gpu/pfor_decode.h"

#include <gtest/gtest.h>

#include "gpu/ef_decode.h"
#include "util/rng.h"
#include "workload/corpus.h"

namespace gg = griffin::gpu;
using griffin::codec::BlockCompressedList;
using griffin::codec::DocId;
using griffin::codec::Scheme;

namespace {
std::vector<DocId> gpu_pfor_decode_all(griffin::simt::Device& dev,
                                       const BlockCompressedList& list,
                                       griffin::sim::KernelStats* stats = nullptr) {
  griffin::pcie::Link link;
  griffin::pcie::TransferLedger ledger;
  gg::DeviceList dlist = gg::upload_list(dev, list, link, ledger);
  auto out = dev.alloc<DocId>(list.size());
  const auto s =
      gg::pfor_decode_range(dev, dlist, 0, dlist.num_blocks(), out);
  if (stats != nullptr) *stats = s;
  std::vector<DocId> host(list.size());
  dev.download(std::span<DocId>(host), out);
  return host;
}
}  // namespace

class GpuPForParam : public ::testing::TestWithParam<int> {};

TEST_P(GpuPForParam, MatchesOriginal) {
  const int size = GetParam();
  griffin::util::Xoshiro256 rng(size);
  const auto docs = griffin::workload::make_uniform_list(
      size, static_cast<DocId>(size) * 40u, rng);
  const auto list = BlockCompressedList::build(docs, Scheme::kPForDelta);
  griffin::simt::Device dev;
  EXPECT_EQ(gpu_pfor_decode_all(dev, list), docs);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GpuPForParam,
                         ::testing::Values(1, 2, 127, 128, 129, 5000));

TEST(GpuPFor, ExceptionHeavyListsStillDecode) {
  // Mostly tiny gaps with occasional enormous jumps: many exceptions and
  // forced chain links.
  std::vector<DocId> docs;
  DocId d = 0;
  griffin::util::Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    d += (rng.uniform01() < 0.1) ? 1'000'000 : 1 + rng.bounded(3);
    docs.push_back(d);
  }
  const auto list = BlockCompressedList::build(docs, Scheme::kPForDelta);
  griffin::simt::Device dev;
  EXPECT_EQ(gpu_pfor_decode_all(dev, list), docs);
}

TEST(GpuPFor, ExceptionChainIsTheBottleneck) {
  // §2.3's trade-off, as the ablation bench sweeps it: forcing a smaller
  // slot width b turns most values into exceptions, and the serial chain
  // walk (one lane, whole block stalled at the barrier) blows up the
  // counted warp time.
  griffin::util::Xoshiro256 rng(10);
  const auto docs =
      griffin::workload::make_uniform_list(50'000, 1'600'000, rng);
  griffin::simt::Device dev;

  griffin::sim::KernelStats auto_stats, forced_stats;
  const auto auto_b = BlockCompressedList::build(docs, Scheme::kPForDelta);
  const auto small_b =
      BlockCompressedList::build(docs, Scheme::kPForDelta, 128, 3);
  EXPECT_EQ(gpu_pfor_decode_all(dev, auto_b, &auto_stats), docs);
  EXPECT_EQ(gpu_pfor_decode_all(dev, small_b, &forced_stats), docs);
  EXPECT_GT(forced_stats.warp_cycles, auto_stats.warp_cycles * 3.0);
}

TEST(GpuPFor, EFCompressesTighterAtComparableGpuSpeed) {
  // The reason Griffin-GPU adopts EF: on typical geometric-gap lists EF's
  // footprint beats PForDelta's while the GPU decode work stays in the same
  // ballpark (within 2x).
  griffin::util::Xoshiro256 rng(11);
  const auto docs =
      griffin::workload::make_uniform_list(100'000, 3'200'000, rng);
  griffin::simt::Device dev;
  griffin::pcie::Link link;
  griffin::pcie::TransferLedger ledger;

  const auto pf = BlockCompressedList::build(docs, Scheme::kPForDelta);
  const auto ef = BlockCompressedList::build(docs, Scheme::kEliasFano);
  EXPECT_LT(ef.compressed_bytes(), pf.compressed_bytes());

  griffin::sim::KernelStats pf_stats;
  gpu_pfor_decode_all(dev, pf, &pf_stats);
  gg::DeviceList def = gg::upload_list(dev, ef, link, ledger);
  auto out = dev.alloc<DocId>(ef.size());
  const auto ef_stats =
      gg::ef_decode_range(dev, def, 0, def.num_blocks(), out);
  EXPECT_LT(ef_stats.warp_cycles, pf_stats.warp_cycles * 2.0);
  EXPECT_LT(pf_stats.warp_cycles, ef_stats.warp_cycles * 2.0);
}
