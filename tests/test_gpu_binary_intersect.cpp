// Parallel binary-search intersection over skip pointers (the high-ratio
// GPU path): exactness, selective decode, and the §2.3 coalescing story.
#include "gpu/binary_intersect.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gpu/mergepath.h"
#include "util/rng.h"
#include "workload/corpus.h"

namespace gg = griffin::gpu;
using griffin::codec::BlockCompressedList;
using griffin::codec::DocId;
using griffin::codec::Scheme;

namespace {

struct Gpu {
  griffin::simt::Device dev;
  griffin::pcie::Link link;
  griffin::pcie::TransferLedger ledger;
};

std::vector<DocId> reference(std::span<const DocId> a,
                             std::span<const DocId> b) {
  std::vector<DocId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<DocId> run_binary(Gpu& g, std::span<const DocId> probes,
                              std::span<const DocId> target,
                              griffin::sim::KernelStats* stats = nullptr,
                              bool deferred = false) {
  auto dp = g.dev.alloc<DocId>(std::max<std::size_t>(probes.size(), 1));
  g.dev.upload(dp, probes);
  const auto list = BlockCompressedList::build(target, Scheme::kEliasFano);
  gg::DeviceList dlist =
      gg::upload_list(g.dev, list, g.link, g.ledger, deferred);
  auto r = gg::binary_search_intersect(g.dev, dp, probes.size(), dlist,
                                       g.link, g.ledger, deferred);
  if (stats != nullptr) *stats = r.stats;
  std::vector<DocId> host(r.count);
  g.dev.download(std::span<DocId>(host), r.result);
  return host;
}

}  // namespace

TEST(GpuBinaryIntersect, SmallKnownCase) {
  Gpu g;
  const std::vector<DocId> probes{11, 15, 17, 38, 60};
  std::vector<DocId> target;
  for (DocId d = 0; d < 1000; ++d) target.push_back(d * 3);  // multiples of 3
  EXPECT_EQ(run_binary(g, probes, target), (std::vector<DocId>{15, 60}));
}

TEST(GpuBinaryIntersect, NoProbeMatches) {
  Gpu g;
  std::vector<DocId> target;
  for (DocId d = 0; d < 5000; ++d) target.push_back(2 * d);
  const std::vector<DocId> probes{1, 3333, 9999};
  EXPECT_TRUE(run_binary(g, probes, target).empty());
}

TEST(GpuBinaryIntersect, ProbesOutsideRange) {
  Gpu g;
  std::vector<DocId> target;
  for (DocId d = 1000; d < 2000; ++d) target.push_back(d);
  const std::vector<DocId> probes{1, 500, 1500, 5000};
  EXPECT_EQ(run_binary(g, probes, target), (std::vector<DocId>{1500}));
}

class GpuBinaryParam
    : public ::testing::TestWithParam<std::tuple<int, double, bool>> {};

TEST_P(GpuBinaryParam, MatchesReference) {
  const auto [longer, ratio, deferred] = GetParam();
  griffin::util::Xoshiro256 rng(longer + static_cast<int>(ratio));
  const auto pair = griffin::workload::make_pair_with_ratio(
      longer, ratio, 50'000'000, 0.4, rng);
  Gpu g;
  griffin::sim::KernelStats stats;
  EXPECT_EQ(run_binary(g, pair.shorter, pair.longer, &stats, deferred),
            reference(pair.shorter, pair.longer));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GpuBinaryParam,
    ::testing::Combine(::testing::Values(2000, 100'000, 1'000'000),
                       ::testing::Values(16.0, 150.0, 700.0),
                       ::testing::Bool()));

TEST(GpuBinaryIntersect, DeferredPayloadMovesFarLessData) {
  // At ratio >> block size, most long-list blocks are never needed: the
  // §3.1.2 flow ("only transfers, decompresses, and processes those
  // blocks") pays for the candidate blocks instead of the whole payload.
  griffin::util::Xoshiro256 rng(21);
  const auto pair = griffin::workload::make_pair_with_ratio(
      1'000'000, 1000.0, 50'000'000, 0.5, rng);

  Gpu eager, lazy;
  const auto r1 = run_binary(eager, pair.shorter, pair.longer, nullptr,
                             /*deferred=*/false);
  const auto r2 = run_binary(lazy, pair.shorter, pair.longer, nullptr,
                             /*deferred=*/true);
  EXPECT_EQ(r1, r2);
  EXPECT_LT(lazy.ledger.h2d_bytes, eager.ledger.h2d_bytes * 6 / 10);
}

TEST(GpuBinaryIntersect, MemoryTransactionsPerProbeVsMergePerElement) {
  // The §2.3 argument: each binary-search probe walks its own path through
  // the skip table and a decoded block, paying several scattered memory
  // transactions per probe; MergePath streams both lists once, paying a
  // small fraction of a transaction per element.
  griffin::util::Xoshiro256 rng(22);
  const auto pair = griffin::workload::make_pair_with_ratio(
      400'000, 8.0, 50'000'000, 0.4, rng);
  Gpu g1, g2;
  griffin::sim::KernelStats bin_stats;
  run_binary(g1, pair.shorter, pair.longer, &bin_stats);
  const double bin_txn_per_probe =
      static_cast<double>(bin_stats.global_transactions) /
      static_cast<double>(pair.shorter.size());
  EXPECT_GT(bin_txn_per_probe, 3.0);

  auto da = g2.dev.alloc<DocId>(pair.shorter.size());
  g2.dev.upload(da, std::span<const DocId>(pair.shorter));
  auto db = g2.dev.alloc<DocId>(pair.longer.size());
  g2.dev.upload(db, std::span<const DocId>(pair.longer));
  auto mp = gg::mergepath_intersect(g2.dev, da, pair.shorter.size(), db,
                                    pair.longer.size(), g2.link, g2.ledger);
  const double mp_txn_per_elem =
      static_cast<double>(mp.stats.global_transactions) /
      static_cast<double>(pair.shorter.size() + pair.longer.size());
  EXPECT_LT(mp_txn_per_elem, 0.3);
}
