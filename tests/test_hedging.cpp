// Hedged-request edge cases: the sliding-window percentile estimator, the
// warm-up boundary, single-replica topologies (nothing to hedge into), and
// hedging's interaction with crashed replicas.
#include "cluster/hedging.h"

#include <gtest/gtest.h>

#include "cluster/broker.h"
#include "engine_test_util.h"

using namespace griffin;

namespace {

std::vector<core::Query> hedge_log(const index::InvertedIndex& idx,
                                   std::uint32_t n, std::uint64_t seed) {
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = n;
  qcfg.seed = seed;
  return workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));
}

}  // namespace

TEST(HedgeController, DisabledNeverFires) {
  cluster::HedgeController ctl(cluster::HedgeConfig{});
  for (int i = 0; i < 100; ++i) ctl.record(sim::Duration::from_ms(1));
  EXPECT_FALSE(ctl.delay().has_value());
}

TEST(HedgeController, MinSamplesWarmupBoundary) {
  cluster::HedgeConfig cfg;
  cfg.enabled = true;
  cfg.min_samples = 32;
  cluster::HedgeController ctl(cfg);

  for (std::uint32_t i = 0; i < cfg.min_samples - 1; ++i) {
    ctl.record(sim::Duration::from_ms(2));
    EXPECT_FALSE(ctl.delay().has_value()) << "sample " << i;
  }
  ctl.record(sim::Duration::from_ms(2));  // the 32nd observation
  ASSERT_TRUE(ctl.delay().has_value());
  EXPECT_DOUBLE_EQ(ctl.delay()->ms(), 2.0);
}

TEST(HedgeController, WindowBoundsMemoryAndAdapts) {
  cluster::HedgeConfig cfg;
  cfg.enabled = true;
  cfg.min_samples = 1;
  cfg.window = 8;
  cluster::HedgeController ctl(cfg);

  // An old slow regime...
  for (int i = 0; i < 100; ++i) ctl.record(sim::Duration::from_ms(1000));
  EXPECT_EQ(ctl.window_size(), 8u);
  EXPECT_EQ(ctl.observations(), 100u);
  EXPECT_DOUBLE_EQ(ctl.delay()->ms(), 1000.0);
  // ...is fully forgotten after `window` new observations: the estimate
  // tracks the current regime instead of being outvoted by stale history.
  for (int i = 0; i < 8; ++i) ctl.record(sim::Duration::from_ms(1));
  EXPECT_EQ(ctl.window_size(), 8u);
  EXPECT_DOUBLE_EQ(ctl.delay()->ms(), 1.0);
}

TEST(HedgeController, UnboundedLegacyWindowKeepsEverything) {
  cluster::HedgeConfig cfg;
  cfg.enabled = true;
  cfg.min_samples = 1;
  cfg.window = 0;  // legacy: full history
  cluster::HedgeController ctl(cfg);
  for (int i = 0; i < 100; ++i) ctl.record(sim::Duration::from_ms(1000));
  for (int i = 0; i < 8; ++i) ctl.record(sim::Duration::from_ms(1));
  EXPECT_EQ(ctl.window_size(), 108u);
  // 8 fast samples cannot move the p95 of 108 observations.
  EXPECT_DOUBLE_EQ(ctl.delay()->ms(), 1000.0);
}

TEST(HedgeController, PercentileMatchesNearestRank) {
  cluster::HedgeConfig cfg;
  cfg.enabled = true;
  cfg.min_samples = 1;
  cfg.percentile = 50.0;
  cluster::HedgeController ctl(cfg);
  for (int v : {10, 20, 30, 40}) ctl.record(sim::Duration::from_ms(v));
  // Nearest-rank p50 of {10,20,30,40}: rank ceil(0.5*4)=2 -> 20.
  EXPECT_DOUBLE_EQ(ctl.delay()->ms(), 20.0);
}

TEST(Hedging, SingleReplicaTopologyNeverHedges) {
  const auto& idx = testutil::small_index();
  const auto log = hedge_log(idx, 150, 71);

  cluster::ClusterConfig cfg;
  cfg.num_shards = 4;
  cfg.replicas_per_shard = 1;  // nowhere to send a hedge
  cfg.arrival_qps = 100.0;
  cfg.seed = 3;
  cfg.hedge.enabled = true;
  cfg.hedge.min_samples = 10;
  cfg.straggler.probability = 0.2;  // plenty of would-be hedge triggers
  cfg.straggler.slowdown = 20.0;

  cluster::ClusterBroker broker(idx, cfg);
  const auto res = broker.run(log);
  EXPECT_EQ(res.hedge.issued, 0u);
  EXPECT_EQ(res.hedge.won, 0u);
  EXPECT_GT(res.faults.slow_replicas, 0u);  // stragglers did fire
  EXPECT_EQ(res.response_ms.count(), log.size());
}

TEST(Hedging, CrashedSecondarySuppressesHedges) {
  const auto& idx = testutil::small_index();
  const auto log = hedge_log(idx, 200, 72);

  cluster::ClusterConfig cfg;
  cfg.num_shards = 2;
  cfg.replicas_per_shard = 2;
  cfg.arrival_qps = 100.0;
  cfg.seed = 4;
  cfg.hedge.enabled = true;
  cfg.hedge.percentile = 90.0;
  cfg.hedge.min_samples = 20;
  cfg.straggler.probability = 0.15;
  cfg.straggler.slowdown = 25.0;

  cluster::ClusterBroker live(idx, cfg);
  const auto with_replicas = live.run(log);
  EXPECT_GT(with_replicas.hedge.issued, 0u);

  // Every secondary is down for the whole run: the broker must not hedge
  // into a dead replica (the hedge would never return).
  auto dead = cfg;
  for (std::uint32_t s = 0; s < cfg.num_shards; ++s) {
    dead.faults.outages.push_back({s, 1, sim::Duration::from_ms(0),
                                   sim::Duration::from_seconds(3600)});
  }
  cluster::ClusterBroker crashed(idx, dead);
  const auto without = crashed.run(log);
  EXPECT_EQ(without.hedge.issued, 0u);
  EXPECT_EQ(without.hedge.won, 0u);
  // Primaries are all up, so answers still arrive — just unhedged.
  EXPECT_EQ(without.response_ms.count(), log.size());
  EXPECT_EQ(without.faults.degraded_queries, 0u);
}

TEST(ReplicaOccupancy, WarmupThenWindowedBottleneck) {
  cluster::ReplicaOccupancy occ(/*window=*/4, /*min_samples=*/3);
  cluster::ReplicaOccupancy::Sample s;
  s.busy[std::size_t(sim::Resource::kCopyH2D)] = sim::Duration::from_us(30);
  s.busy[std::size_t(sim::Resource::kGpuCompute)] = sim::Duration::from_us(10);
  s.span = sim::Duration::from_us(40);

  occ.record(s);
  occ.record(s);
  EXPECT_FALSE(occ.bottleneck().has_value());  // warming up
  occ.record(s);
  ASSERT_TRUE(occ.bottleneck().has_value());
  // Bottleneck = max busy / span = 30/40, span-weighted over the window.
  EXPECT_DOUBLE_EQ(*occ.bottleneck(), 0.75);
  EXPECT_EQ(occ.bottleneck_resource(), sim::Resource::kCopyH2D);
}

TEST(ReplicaOccupancy, WindowForgetsOldRegime) {
  cluster::ReplicaOccupancy occ(/*window=*/4, /*min_samples=*/1);
  cluster::ReplicaOccupancy::Sample hot;
  hot.busy[std::size_t(sim::Resource::kGpuCompute)] =
      sim::Duration::from_us(90);
  hot.span = sim::Duration::from_us(100);
  cluster::ReplicaOccupancy::Sample cool;
  cool.busy[std::size_t(sim::Resource::kGpuCompute)] =
      sim::Duration::from_us(10);
  cool.span = sim::Duration::from_us(100);

  for (int i = 0; i < 16; ++i) occ.record(hot);
  EXPECT_DOUBLE_EQ(*occ.bottleneck(), 0.9);
  // After `window` cool samples, the hot regime has fully slid out.
  for (int i = 0; i < 4; ++i) occ.record(cool);
  EXPECT_DOUBLE_EQ(*occ.bottleneck(), 0.1);
  EXPECT_EQ(occ.observations(), 20u);
}

TEST(ReplicaOccupancy, CanExceedOneUnderContention) {
  // A shared device can be busier than one query-span's worth of time
  // (several queries' charges land inside one span): the fraction is a
  // load signal, not a probability, and must not be clamped.
  cluster::ReplicaOccupancy occ(/*window=*/0, /*min_samples=*/1);
  cluster::ReplicaOccupancy::Sample s;
  s.busy[std::size_t(sim::Resource::kCpu)] = sim::Duration::from_us(25);
  s.span = sim::Duration::from_us(10);
  occ.record(s);
  EXPECT_DOUBLE_EQ(*occ.bottleneck(), 2.5);
}

TEST(Hedging, OccupancyTriggerFiresAndStaysDeterministic) {
  // The bottleneck-occupancy trigger hedges on the cause (a saturated
  // resource) at submit time instead of waiting out a percentile delay.
  // With a permissive threshold it must fire once warmed; the run stays
  // bit-deterministic across replays.
  const auto& idx = testutil::small_index();
  const auto log = hedge_log(idx, 200, 74);

  cluster::ClusterConfig cfg;
  cfg.num_shards = 2;
  cfg.replicas_per_shard = 2;
  cfg.arrival_qps = 150.0;
  cfg.seed = 11;
  cfg.hedge.enabled = true;
  cfg.hedge.trigger = cluster::HedgeTrigger::kBottleneckOccupancy;
  cfg.hedge.occupancy_threshold = 0.05;  // any busy primary trips it
  cfg.hedge.min_samples = 20;
  cfg.straggler.probability = 0.1;
  cfg.straggler.slowdown = 20.0;

  cluster::ClusterBroker broker(idx, cfg);
  const auto res = broker.run(log);
  EXPECT_GT(res.hedge.issued, 0u);
  EXPECT_EQ(res.response_ms.count(), log.size());

  cluster::ClusterBroker again(idx, cfg);
  const auto replay = again.run(log);
  EXPECT_EQ(res.hedge.issued, replay.hedge.issued);
  EXPECT_EQ(res.hedge.won, replay.hedge.won);
  EXPECT_DOUBLE_EQ(res.response_ms.percentile(99),
                   replay.response_ms.percentile(99));
}

TEST(Hedging, OccupancyTriggerRespectsThresholdAndWarmup) {
  // An unreachable threshold must never hedge, even with the same load
  // that trips the permissive one — and neither trigger fires before
  // min_samples observations.
  const auto& idx = testutil::small_index();
  const auto log = hedge_log(idx, 200, 74);

  cluster::ClusterConfig cfg;
  cfg.num_shards = 2;
  cfg.replicas_per_shard = 2;
  cfg.arrival_qps = 150.0;
  cfg.seed = 11;
  cfg.hedge.enabled = true;
  cfg.hedge.trigger = cluster::HedgeTrigger::kBottleneckOccupancy;
  cfg.hedge.occupancy_threshold = 1e9;  // nothing is ever this saturated
  cfg.hedge.min_samples = 20;
  cfg.straggler.probability = 0.1;
  cfg.straggler.slowdown = 20.0;

  cluster::ClusterBroker never(idx, cfg);
  EXPECT_EQ(never.run(log).hedge.issued, 0u);

  // Warm-up: with min_samples beyond the whole run, the permissive
  // threshold still cannot fire.
  auto cold = cfg;
  cold.hedge.occupancy_threshold = 0.05;
  cold.hedge.min_samples = 100000;
  cluster::ClusterBroker warming(idx, cold);
  EXPECT_EQ(warming.run(log).hedge.issued, 0u);
}

TEST(Hedging, HedgingStillCutsTailWithWindowedEstimator) {
  // The pre-window behavior cut the straggler tail (test_cluster_sim); the
  // windowed estimator must preserve that headline effect.
  const auto& idx = testutil::small_index();
  const auto log = hedge_log(idx, 300, 73);

  cluster::ClusterConfig cfg;
  cfg.num_shards = 4;
  cfg.replicas_per_shard = 2;
  cfg.arrival_qps = 150.0;
  cfg.seed = 7;
  cfg.straggler.probability = 0.08;
  cfg.straggler.slowdown = 25.0;

  cluster::ClusterBroker plain(idx, cfg);
  const auto without = plain.run(log);

  auto hedged_cfg = cfg;
  hedged_cfg.hedge.enabled = true;
  hedged_cfg.hedge.percentile = 90.0;
  hedged_cfg.hedge.min_samples = 40;
  hedged_cfg.hedge.window = 64;  // small window, same effect
  cluster::ClusterBroker hedged(idx, hedged_cfg);
  const auto with = hedged.run(log);

  EXPECT_GT(with.hedge.issued, 0u);
  EXPECT_GT(with.hedge.won, 0u);
  EXPECT_LT(with.response_ms.percentile(99),
            without.response_ms.percentile(99) * 0.8);
}
