// Golden parity: the refactored engines (plan/execute decomposition,
// DESIGN.md §8) must return bit-identical QueryResults — docs, float score
// bits, per-stage durations, placements, cache counters — to the
// pre-refactor per-engine loops. tests/golden_engine_results.inc was
// captured from the pre-refactor engines on the seed workload; any
// divergence here is a behavior change, not a refactor.
//
// Regenerate (after an *intentional* cost-model or engine change) by
// running this binary with GRIFFIN_GOLDEN_CAPTURE set to the .inc path:
//   GRIFFIN_GOLDEN_CAPTURE=tests/golden_engine_results.inc ./test_engine_golden
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/hybrid_engine.h"
#include "engine_test_util.h"

#include "golden_engine_results.inc"

using namespace griffin;

namespace {

std::vector<core::Query> golden_queries(std::uint32_t num_terms) {
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 24;
  qcfg.seed = 91;
  auto log = workload::generate_query_log(qcfg, num_terms);
  core::Query single;
  single.terms = {5};
  log.push_back(single);
  core::Query pair;
  pair.terms = {10, 12};
  log.push_back(pair);
  core::Query extreme;
  extreme.terms = {static_cast<index::TermId>(num_terms - 1), 0};
  log.push_back(extreme);
  return log;
}

/// One engine execution as a canonical text record: every field a refactor
/// could silently change, including the raw bits of each float score.
std::string record_line(const char* engine, std::size_t qi,
                        const core::QueryResult& r) {
  const auto& m = r.metrics;
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "%s|q%zu|rc=%llu|tot=%lld|dec=%lld|int=%lld|tra=%lld|"
                "rank=%lld|k=%llu|mig=%llu|pl=",
                engine, qi, static_cast<unsigned long long>(m.result_count),
                static_cast<long long>(m.total.ps()),
                static_cast<long long>(m.decode.ps()),
                static_cast<long long>(m.intersect.ps()),
                static_cast<long long>(m.transfer.ps()),
                static_cast<long long>(m.rank.ps()),
                static_cast<unsigned long long>(m.gpu_kernels),
                static_cast<unsigned long long>(m.migrations));
  out += buf;
  for (const auto p : m.placements) {
    out += p == core::Placement::kGpu ? 'G'
           : p == core::Placement::kSplit ? 'S'
                                          : 'C';
  }
  std::snprintf(buf, sizeof(buf), "|cache=%llu,%llu,%llu,%llu,%llu,%llu",
                static_cast<unsigned long long>(m.cache.device_hits),
                static_cast<unsigned long long>(m.cache.device_misses),
                static_cast<unsigned long long>(m.cache.device_evictions),
                static_cast<unsigned long long>(m.cache.host_hits),
                static_cast<unsigned long long>(m.cache.host_misses),
                static_cast<unsigned long long>(m.cache.host_evictions));
  out += buf;
  std::snprintf(buf, sizeof(buf), "|ov=%lld,%llu,%llu,%llu|topk=",
                static_cast<long long>(m.overlap.saved.ps()),
                static_cast<unsigned long long>(m.overlap.prefetch_issued),
                static_cast<unsigned long long>(m.overlap.prefetch_used),
                static_cast<unsigned long long>(m.overlap.prefetch_dropped));
  out += buf;
  for (const auto& d : r.topk) {
    std::snprintf(buf, sizeof(buf), "%u:%08x;", d.doc,
                  std::bit_cast<std::uint32_t>(d.score));
    out += buf;
  }
  return out;
}

/// The five engine configurations the golden file covers, executed in the
/// capture order over the golden log.
std::vector<std::string> run_golden_workload() {
  const auto& idx = testutil::small_index();
  const auto log =
      golden_queries(static_cast<std::uint32_t>(idx.num_terms()));
  std::vector<std::string> lines;
  {
    cpu::CpuEngine e(idx);
    for (std::size_t i = 0; i < log.size(); ++i)
      lines.push_back(record_line("cpu", i, e.execute(log[i])));
  }
  {
    gpu::GpuEngine e(idx);
    for (std::size_t i = 0; i < log.size(); ++i)
      lines.push_back(record_line("gpu", i, e.execute(log[i])));
  }
  {
    core::HybridEngine e(idx);
    for (std::size_t i = 0; i < log.size(); ++i)
      lines.push_back(record_line("griffin", i, e.execute(log[i])));
  }
  {
    core::HybridOptions opt;
    opt.scheduler.policy = core::SchedulerPolicy::kCostModel;
    core::HybridEngine e(idx, {}, opt);
    for (std::size_t i = 0; i < log.size(); ++i)
      lines.push_back(record_line("griffin-cost", i, e.execute(log[i])));
  }
  {
    core::HybridOptions opt;
    opt.scheduler.policy = core::SchedulerPolicy::kAlwaysCpu;
    core::HybridEngine e(idx, {}, opt);
    for (std::size_t i = 0; i < log.size(); ++i)
      lines.push_back(record_line("griffin-always-cpu", i, e.execute(log[i])));
  }
  return lines;
}

}  // namespace

TEST(EngineGolden, BitIdenticalToPreRefactorCapture) {
  const auto lines = run_golden_workload();

  if (const char* out = std::getenv("GRIFFIN_GOLDEN_CAPTURE")) {
    std::FILE* f = std::fopen(out, "w");
    ASSERT_NE(f, nullptr) << "cannot open " << out;
    std::fprintf(f,
                 "// Pre-refactor engine results on the golden workload "
                 "(generated by the\n// capture mode of "
                 "tests/test_engine_golden.cpp; do not edit by hand).\n"
                 "// clang-format off\n"
                 "inline const char* const kGoldenEngineResults[] = {\n");
    for (const auto& l : lines) std::fprintf(f, "    \"%s\",\n", l.c_str());
    std::fprintf(f, "};\n// clang-format on\n");
    std::fclose(f);
    GTEST_SKIP() << "captured " << lines.size() << " records to " << out;
  }

  constexpr std::size_t kGoldenCount =
      sizeof(kGoldenEngineResults) / sizeof(kGoldenEngineResults[0]);
  ASSERT_EQ(lines.size(), kGoldenCount);
  for (std::size_t i = 0; i < kGoldenCount; ++i) {
    EXPECT_EQ(lines[i], kGoldenEngineResults[i]) << "golden record " << i;
  }
}
