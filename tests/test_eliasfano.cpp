#include "codec/eliasfano.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace gc = griffin::codec;

namespace {
std::vector<std::uint32_t> roundtrip(std::span<const std::uint32_t> values,
                                     std::uint32_t universe) {
  std::vector<std::uint64_t> blob;
  std::uint64_t pos = 0;
  const gc::EFHeader hdr = gc::ef_encode(values, universe, blob, pos);
  EXPECT_EQ(pos, gc::ef_encoded_bits(universe, values.size()));
  std::vector<std::uint32_t> out(values.size());
  gc::ef_decode(blob, 0, static_cast<std::uint32_t>(values.size()), hdr,
                out.data());
  return out;
}
}  // namespace

TEST(EliasFano, PaperFigure4Example) {
  // Figure 4: sequence (5,6,8,15,18,33) with U=36, n=6 -> b = floor(log2 6)=2.
  const std::vector<std::uint32_t> v{5, 6, 8, 15, 18, 33};
  EXPECT_EQ(gc::ef_low_bits(36, 6), 2);
  EXPECT_EQ(roundtrip(v, 36), v);
}

TEST(EliasFano, LowBitsFormula) {
  EXPECT_EQ(gc::ef_low_bits(36, 6), 2);    // floor(log2(36/6)) = 2
  EXPECT_EQ(gc::ef_low_bits(1000, 10), 6); // floor(log2 100) = 6
  EXPECT_EQ(gc::ef_low_bits(10, 10), 0);
  EXPECT_EQ(gc::ef_low_bits(5, 10), 0);    // universe <= n
  EXPECT_EQ(gc::ef_low_bits(1u << 31, 1), 31);
}

TEST(EliasFano, SingleElement) {
  for (std::uint32_t x : {0u, 1u, 1000u, 0x7FFFFFFFu}) {
    const std::vector<std::uint32_t> v{x};
    EXPECT_EQ(roundtrip(v, x), v);
  }
}

TEST(EliasFano, AllZeros) {
  const std::vector<std::uint32_t> v(64, 0);
  EXPECT_EQ(roundtrip(v, 0), v);
}

TEST(EliasFano, DenseConsecutive) {
  std::vector<std::uint32_t> v(128);
  for (std::uint32_t i = 0; i < 128; ++i) v[i] = i;
  EXPECT_EQ(roundtrip(v, 127), v);
}

TEST(EliasFano, NonDecreasingWithDuplicates) {
  const std::vector<std::uint32_t> v{3, 3, 3, 7, 7, 100, 100, 100};
  EXPECT_EQ(roundtrip(v, 100), v);
}

TEST(EliasFano, SizeIsTwoPlusLogUOverNBitsPerElement) {
  // Classic EF bound: n*(2 + floor(log2(U/n))) + O(1) bits.
  const std::uint64_t n = 1000;
  const std::uint32_t universe = 32000;  // U/n = 32
  const std::uint64_t bits = gc::ef_encoded_bits(universe, n);
  const double per_elem = static_cast<double>(bits) / n;
  EXPECT_GE(per_elem, 5.0);
  EXPECT_LE(per_elem, 7.5);  // 2 + log2(32) = 7 plus padding
}

TEST(EliasFano, NonZeroBitPosition) {
  const std::vector<std::uint32_t> a{1, 4, 9};
  const std::vector<std::uint32_t> b{0, 50, 51, 1000};
  std::vector<std::uint64_t> blob;
  std::uint64_t pos = 0;
  const gc::EFHeader ha = gc::ef_encode(a, 9, blob, pos);
  const std::uint64_t b_start = pos;
  const gc::EFHeader hb = gc::ef_encode(b, 1000, blob, pos);
  std::vector<std::uint32_t> oa(3), ob(4);
  gc::ef_decode(blob, 0, 3, ha, oa.data());
  gc::ef_decode(blob, b_start, 4, hb, ob.data());
  EXPECT_EQ(oa, a);
  EXPECT_EQ(ob, b);
}

class EFRandomTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(EFRandomTest, RoundTrip) {
  const auto [size, universe] = GetParam();
  griffin::util::Xoshiro256 rng(size ^ universe);
  std::vector<std::uint32_t> v(size);
  for (auto& x : v) {
    x = static_cast<std::uint32_t>(rng.bounded(std::uint64_t{universe} + 1));
  }
  std::sort(v.begin(), v.end());
  EXPECT_EQ(roundtrip(v, universe), v);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EFRandomTest,
    ::testing::Combine(::testing::Values(1, 2, 31, 32, 33, 127, 128, 129, 2000),
                       ::testing::Values(1u, 100u, 1u << 15, 1u << 26,
                                         0x7FFFFFFFu)));
