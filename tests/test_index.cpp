#include "index/inverted_index.h"

#include <gtest/gtest.h>

namespace gi = griffin::index;

TEST(DocTable, LengthsAndAverage) {
  gi::DocTable docs;
  docs.resize(4);
  docs.set_length(0, 10);
  docs.set_length(1, 20);
  docs.set_length(2, 30);
  docs.set_length(3, 40);
  EXPECT_EQ(docs.num_docs(), 4u);
  EXPECT_DOUBLE_EQ(docs.avg_length(), 25.0);
  EXPECT_EQ(docs.length(2), 30u);
}

TEST(InvertedIndex, AddListAndStats) {
  gi::InvertedIndex idx(griffin::codec::Scheme::kEliasFano);
  const std::vector<gi::DocId> a{1, 5, 9};
  const std::vector<gi::DocId> b{2, 5};
  const auto ta = idx.add_list(a);
  const auto tb = idx.add_list(b, std::vector<std::uint32_t>{7, 300});
  EXPECT_EQ(ta, 0u);
  EXPECT_EQ(tb, 1u);
  EXPECT_EQ(idx.num_terms(), 2u);
  EXPECT_EQ(idx.total_postings(), 5u);
  EXPECT_EQ(idx.list(ta).size(), 3u);
  // Default tf is 1; explicit tf is clamped to 255.
  EXPECT_EQ(idx.list(ta).tf_at(0), 1u);
  EXPECT_EQ(idx.list(tb).tf_at(0), 7u);
  EXPECT_EQ(idx.list(tb).tf_at(1), 255u);
  EXPECT_THROW(idx.list(2), std::out_of_range);
  EXPECT_THROW(idx.add_list(std::vector<gi::DocId>{}), std::invalid_argument);
}

TEST(InvertedIndex, CompressionRatio) {
  gi::InvertedIndex idx(griffin::codec::Scheme::kEliasFano);
  std::vector<gi::DocId> docs;
  for (std::uint32_t i = 0; i < 10000; ++i) docs.push_back(i * 31);
  idx.add_list(docs);
  EXPECT_GT(idx.compression_ratio(), 2.0);
  EXPECT_EQ(idx.compressed_docid_bytes(),
            idx.list(0).docids.compressed_bytes());
}

TEST(IndexBuilder, BuildsFromDocuments) {
  gi::IndexBuilder builder(griffin::codec::Scheme::kPForDelta);
  using TP = std::pair<gi::TermId, std::uint32_t>;
  const std::vector<TP> d0{{0, 2}, {1, 1}};
  const std::vector<TP> d1{{0, 1}};
  const std::vector<TP> d2{{1, 4}, {2, 1}};
  builder.add_document(0, d0);
  builder.add_document(1, d1);
  builder.add_document(2, d2);

  auto idx = builder.build();
  EXPECT_EQ(idx.num_terms(), 3u);
  EXPECT_EQ(idx.docs().num_docs(), 3u);
  EXPECT_EQ(idx.docs().length(0), 3u);  // tf 2 + 1
  EXPECT_EQ(idx.docs().length(2), 5u);

  std::vector<gi::DocId> out;
  idx.list(0).docids.decode_all(out);
  EXPECT_EQ(out, (std::vector<gi::DocId>{0, 1}));
  idx.list(1).docids.decode_all(out);
  EXPECT_EQ(out, (std::vector<gi::DocId>{0, 2}));
  EXPECT_EQ(idx.list(1).tf_at(1), 4u);
}

TEST(IndexBuilder, RejectsOutOfOrderDocs) {
  gi::IndexBuilder builder(griffin::codec::Scheme::kEliasFano);
  using TP = std::pair<gi::TermId, std::uint32_t>;
  const std::vector<TP> terms{{0, 1}};
  builder.add_document(5, terms);
  EXPECT_THROW(builder.add_document(5, terms), std::invalid_argument);
  EXPECT_THROW(builder.add_document(3, terms), std::invalid_argument);
  builder.add_document(6, terms);  // forward is fine
}

TEST(IndexBuilder, RejectsGapInTermIds) {
  gi::IndexBuilder builder(griffin::codec::Scheme::kEliasFano);
  using TP = std::pair<gi::TermId, std::uint32_t>;
  const std::vector<TP> terms{{3, 1}};  // terms 0..2 never appear
  builder.add_document(0, terms);
  EXPECT_THROW(builder.build(), std::logic_error);
}
