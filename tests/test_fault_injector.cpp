// The fault injector's contract (DESIGN.md §11): decisions are pure hashes
// of (seed, site, coordinate) — deterministic, order-independent, and
// consuming nothing when a site is disarmed — plus scripted triggers and
// outages that land faults exactly where a test points.
#include "fault/fault.h"

#include <gtest/gtest.h>

using namespace griffin;

TEST(FaultInjector, DisarmedSitesNeverFire) {
  const fault::FaultConfig cfg;  // all probabilities zero, no triggers
  EXPECT_FALSE(cfg.engine_faults_armed());
  EXPECT_FALSE(cfg.any_armed());

  const fault::FaultInjector inj(cfg);
  for (std::uint64_t q = 0; q < 50; ++q) {
    EXPECT_FALSE(inj.gpu_step_fault(0, q, q % 7));
    EXPECT_FALSE(inj.pcie_error(0, q, q, 0));
    EXPECT_FALSE(inj.replica_down(0, 0, sim::Duration::from_ms(double(q))));
    EXPECT_FALSE(inj.slow(q, 0));
  }
}

TEST(FaultInjector, DecisionsAreDeterministicAndOrderFree) {
  fault::FaultConfig cfg;
  cfg.gpu.probability = 0.3;
  cfg.pcie.probability = 0.3;
  cfg.crash.probability = 0.3;
  cfg.slow.probability = 0.3;
  cfg.seed = 42;
  const fault::FaultInjector a(cfg);
  const fault::FaultInjector b(cfg);

  // Same coordinate, any order, any injector instance: same answer.
  for (std::uint64_t q = 100; q-- > 0;) {
    EXPECT_EQ(a.gpu_step_fault(1, q, 2), b.gpu_step_fault(1, q, 2));
    EXPECT_EQ(a.pcie_error(1, q, 5, 1), b.pcie_error(1, q, 5, 1));
    EXPECT_EQ(a.slow(q, 3), a.slow(q, 3));
  }
}

TEST(FaultInjector, SeedMovesTheFaultPattern) {
  fault::FaultConfig cfg;
  cfg.gpu.probability = 0.5;
  cfg.seed = 1;
  const fault::FaultInjector a(cfg);
  cfg.seed = 2;
  const fault::FaultInjector b(cfg);

  int differ = 0;
  for (std::uint64_t q = 0; q < 200; ++q) {
    differ += a.gpu_step_fault(0, q, 0) != b.gpu_step_fault(0, q, 0);
  }
  EXPECT_GT(differ, 0);
}

TEST(FaultInjector, ProbabilityControlsTheHitRate) {
  fault::FaultConfig cfg;
  cfg.gpu.probability = 0.2;
  cfg.seed = 7;
  const fault::FaultInjector inj(cfg);

  int hits = 0;
  const int n = 5000;
  for (int q = 0; q < n; ++q) hits += inj.gpu_step_fault(0, q, 0);
  const double rate = double(hits) / n;
  EXPECT_NEAR(rate, 0.2, 0.03);
}

TEST(FaultInjector, TriggersFireExactlyAtTheirCoordinate) {
  fault::FaultConfig cfg;
  cfg.gpu.triggers.push_back({/*query=*/17, /*scope=*/2});
  const fault::FaultInjector inj(cfg);

  EXPECT_TRUE(inj.gpu_step_fault(2, 17, 0));
  EXPECT_TRUE(inj.gpu_step_fault(2, 17, 9));  // every step of the pair
  EXPECT_FALSE(inj.gpu_step_fault(2, 16, 0));
  EXPECT_FALSE(inj.gpu_step_fault(1, 17, 0));  // other scope
}

TEST(FaultInjector, PcieTriggerFailsFirstAttemptOnly) {
  fault::FaultConfig cfg;
  cfg.pcie.triggers.push_back({/*query=*/3, /*scope=*/0});
  const fault::FaultInjector inj(cfg);

  EXPECT_TRUE(inj.pcie_error(0, 3, 0, 0));
  EXPECT_FALSE(inj.pcie_error(0, 3, 0, 1));  // the retry succeeds
  EXPECT_FALSE(inj.pcie_error(0, 4, 0, 0));
}

TEST(FaultInjector, ScriptedOutageIsHalfOpenInterval) {
  fault::FaultConfig cfg;
  cfg.outages.push_back({/*shard=*/1, /*replica=*/0,
                         sim::Duration::from_ms(10),
                         sim::Duration::from_ms(20)});
  const fault::FaultInjector inj(cfg);

  EXPECT_FALSE(inj.replica_down(1, 0, sim::Duration::from_ms(9.9)));
  EXPECT_TRUE(inj.replica_down(1, 0, sim::Duration::from_ms(10)));
  EXPECT_TRUE(inj.replica_down(1, 0, sim::Duration::from_ms(19.9)));
  EXPECT_FALSE(inj.replica_down(1, 0, sim::Duration::from_ms(20)));
  EXPECT_FALSE(inj.replica_down(1, 1, sim::Duration::from_ms(15)));
  EXPECT_FALSE(inj.replica_down(0, 0, sim::Duration::from_ms(15)));
}

TEST(FaultInjector, CrashWindowsRecoverAtBoundaries) {
  fault::FaultConfig cfg;
  cfg.crash.probability = 0.3;
  cfg.crash_window_ms = 10.0;
  cfg.seed = 11;
  const fault::FaultInjector inj(cfg);

  // Within one window the answer is constant; across windows it varies.
  int down_windows = 0;
  int transitions = 0;
  bool prev = false;
  for (int w = 0; w < 300; ++w) {
    const auto t0 = sim::Duration::from_ms(w * 10.0 + 0.5);
    const auto t1 = sim::Duration::from_ms(w * 10.0 + 9.5);
    const bool d0 = inj.replica_down(2, 1, t0);
    EXPECT_EQ(d0, inj.replica_down(2, 1, t1));
    down_windows += d0;
    if (w > 0 && d0 != prev) ++transitions;
    prev = d0;
  }
  EXPECT_GT(down_windows, 40);   // ~90 expected at p=0.3
  EXPECT_LT(down_windows, 160);
  EXPECT_GT(transitions, 0);  // crashes recover (and recur)
}

TEST(FaultInjector, OomSiteIsIndependentAndDeterministic) {
  fault::FaultConfig cfg;
  cfg.oom.probability = 0.3;
  cfg.gpu.probability = 0.3;
  cfg.seed = 9;
  const fault::FaultInjector a(cfg);
  const fault::FaultInjector b(cfg);

  int differ = 0;
  for (std::uint64_t q = 0; q < 300; ++q) {
    // Deterministic across instances...
    EXPECT_EQ(a.oom_fault(0, q, 1), b.oom_fault(0, q, 1));
    // ...and drawn from its own salt: the gpu site at the same coordinate
    // must not mirror it.
    differ += a.oom_fault(0, q, 1) != a.gpu_step_fault(0, q, 1);
  }
  EXPECT_GT(differ, 0);
}

TEST(FaultInjector, OomTriggersAndArming) {
  fault::FaultConfig cfg;
  EXPECT_FALSE(cfg.engine_faults_armed());
  cfg.oom.triggers.push_back({/*query=*/4, /*scope=*/1});
  EXPECT_TRUE(cfg.engine_faults_armed());  // the oom site arms the engine

  const fault::FaultInjector inj(cfg);
  EXPECT_TRUE(inj.oom_fault(1, 4, 0));
  EXPECT_TRUE(inj.oom_fault(1, 4, 7));   // every allocation of the pair
  EXPECT_FALSE(inj.oom_fault(1, 5, 0));
  EXPECT_FALSE(inj.oom_fault(0, 4, 0));  // other scope
}

TEST(FaultInjector, Clamp01IsTheValidationSemantics) {
  EXPECT_EQ(fault::clamp01(-0.5), 0.0);
  EXPECT_EQ(fault::clamp01(0.0), 0.0);
  EXPECT_EQ(fault::clamp01(0.25), 0.25);
  EXPECT_EQ(fault::clamp01(1.0), 1.0);
  EXPECT_EQ(fault::clamp01(7.0), 1.0);
}

TEST(FaultInjectorDeathTest, OutOfRangeProbabilityAsserts) {
  // >1 used to silently behave as always-fire while reporting the
  // configured rate; the injector now refuses the config at construction.
  fault::FaultConfig over;
  over.gpu.probability = 1.5;
  EXPECT_DEATH({ fault::FaultInjector inj(over); }, "probability");
  fault::FaultConfig under;
  under.oom.probability = -0.1;
  EXPECT_DEATH({ fault::FaultInjector inj(under); }, "probability");
}

TEST(FaultCounters, AccumulateAndDetect) {
  fault::FaultCounters a;
  EXPECT_FALSE(a.any());
  a.gpu_faults = 2;
  a.gpu_wasted = sim::Duration::from_us(100);
  fault::FaultCounters b;
  b.pcie_errors = 3;
  b.shed_queries = 1;
  b.pcie_retry_time = sim::Duration::from_us(7);
  a += b;
  EXPECT_TRUE(a.any());
  EXPECT_EQ(a.gpu_faults, 2u);
  EXPECT_EQ(a.pcie_errors, 3u);
  EXPECT_EQ(a.shed_queries, 1u);
  EXPECT_EQ(a.gpu_wasted, sim::Duration::from_us(100));
  EXPECT_EQ(a.pcie_retry_time, sim::Duration::from_us(7));
}
