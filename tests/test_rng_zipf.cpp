#include "util/rng.h"
#include "util/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace gu = griffin::util;

TEST(Rng, Determinism) {
  gu::Xoshiro256 a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  gu::Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedInRange) {
  gu::Xoshiro256 rng(5);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Rng, BoundedRoughlyUniform) {
  gu::Xoshiro256 rng(11);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.bounded(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kSamples / kBuckets,
                kSamples / kBuckets * 0.1);
  }
}

TEST(Rng, Uniform01Range) {
  gu::Xoshiro256 rng(17);
  double sum = 0.0;
  for (int i = 0; i < 50000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 50000, 0.5, 0.01);
}

TEST(Zipf, RanksInRange) {
  gu::Xoshiro256 rng(3);
  gu::ZipfSampler z(1000, 1.0);
  for (int i = 0; i < 10000; ++i) {
    const auto r = z(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 1000u);
  }
}

TEST(Zipf, SingleElement) {
  gu::Xoshiro256 rng(3);
  gu::ZipfSampler z(1, 1.2);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z(rng), 1u);
}

TEST(Zipf, FrequenciesMatchPowerLaw) {
  gu::Xoshiro256 rng(23);
  const double s = 1.0;
  gu::ZipfSampler z(100000, s);
  constexpr int kSamples = 400000;
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < kSamples; ++i) ++counts[z(rng)];
  // P(1)/P(2) should be 2^s, P(1)/P(4) should be 4^s, within sampling noise.
  const double c1 = counts[1];
  ASSERT_GT(c1, 1000);
  EXPECT_NEAR(c1 / counts[2], std::pow(2.0, s), 0.25);
  EXPECT_NEAR(c1 / counts[4], std::pow(4.0, s), 0.6);
}

TEST(Zipf, SkewIncreasesHeadMass) {
  gu::Xoshiro256 rng(29);
  auto head_mass = [&](double s) {
    gu::ZipfSampler z(10000, s);
    int head = 0;
    for (int i = 0; i < 50000; ++i) head += (z(rng) <= 10);
    return head;
  };
  EXPECT_GT(head_mass(1.3), head_mass(0.7));
}
