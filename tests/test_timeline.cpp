// sim::Timeline semantics (DESIGN.md §10): stream serialization, resource
// serialization, cross-stream event waits, dual copy engines overlapping
// each other and compute, and the picosecond-exact identity
// serial_total == critical_path + saved that QueryMetrics::overlap rests on.
#include "sim/timeline.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

using namespace griffin;
using sim::Duration;
using sim::Resource;
using sim::Timeline;

namespace {
Duration us(std::int64_t v) { return Duration::from_us(double(v)); }
}  // namespace

TEST(Timeline, SameStreamOpsSerializeInIssueOrder) {
  Timeline tl;
  const auto s = tl.stream();
  const auto e1 = tl.record(s, Resource::kGpuCompute, us(10));
  const auto e2 = tl.record(s, Resource::kGpuCompute, us(5));
  EXPECT_EQ(e1.at.ps(), us(10).ps());
  EXPECT_EQ(e2.at.ps(), us(15).ps());
  // Second op issued when the stream tail (not the wait) allowed it.
  EXPECT_EQ(tl.ops()[1].issue.ps(), us(10).ps());
  EXPECT_EQ(tl.critical_path().ps(), us(15).ps());
  EXPECT_EQ(tl.serial_total().ps(), us(15).ps());
}

TEST(Timeline, DifferentResourcesOverlap) {
  Timeline tl;
  const auto copy = tl.stream();
  const auto compute = tl.stream();
  tl.record(copy, Resource::kCopyH2D, us(20));
  tl.record(compute, Resource::kGpuCompute, us(12));
  // No dependency between them: full overlap, latency = the longer one.
  EXPECT_EQ(tl.critical_path().ps(), us(20).ps());
  EXPECT_EQ(tl.serial_total().ps(), us(32).ps());
  EXPECT_EQ(tl.busy(Resource::kCopyH2D).ps(), us(20).ps());
  EXPECT_EQ(tl.busy(Resource::kGpuCompute).ps(), us(12).ps());
}

TEST(Timeline, SameResourceSerializesAcrossStreams) {
  Timeline tl;
  const auto s1 = tl.stream();
  const auto s2 = tl.stream();
  tl.record(s1, Resource::kCopyH2D, us(20));
  tl.record(s2, Resource::kCopyH2D, us(20));
  // One DMA engine per direction: the second copy queues behind the first
  // even though the streams are independent.
  EXPECT_EQ(tl.ops()[1].issue.ps(), 0);
  EXPECT_EQ(tl.ops()[1].start.ps(), us(20).ps());
  EXPECT_EQ(tl.critical_path().ps(), us(40).ps());
}

TEST(Timeline, EventWaitExpressesCrossStreamDependency) {
  Timeline tl;
  const auto copy = tl.stream();
  const auto compute = tl.stream();
  const auto delivered = tl.record(copy, Resource::kCopyH2D, us(20));
  const auto done =
      tl.record(compute, Resource::kGpuCompute, us(10), delivered);
  // The kernel reads what the copy delivered: it cannot start earlier.
  EXPECT_EQ(tl.ops()[1].issue.ps(), us(20).ps());
  EXPECT_EQ(done.at.ps(), us(30).ps());
  EXPECT_EQ(tl.critical_path().ps(), us(30).ps());
}

TEST(Timeline, DualCopyEnginesOverlapDirections) {
  Timeline tl;
  const auto up = tl.stream();
  const auto down = tl.stream();
  const auto gpu = tl.stream();
  tl.record(up, Resource::kCopyH2D, us(30));
  tl.record(down, Resource::kCopyD2H, us(30));
  tl.record(gpu, Resource::kGpuCompute, us(30));
  // H2D, D2H, and compute are three distinct units: everything overlaps.
  EXPECT_EQ(tl.critical_path().ps(), us(30).ps());
  EXPECT_EQ(tl.serial_total().ps(), us(90).ps());
}

TEST(Timeline, PipelinedChunksHideCopyUnderCompute) {
  // The double-buffering shape decode_full_list builds: chunk i's kernel
  // waits on chunk i's copy; copies serialize on the H2D engine; kernels
  // serialize on compute. With equal 10us chunks, steady state is one
  // resource busy while the other works on the neighbor chunk.
  Timeline tl;
  const auto copy = tl.stream();
  const auto compute = tl.stream();
  Timeline::Event prev{};
  for (int i = 0; i < 4; ++i) {
    const auto delivered = tl.record(copy, Resource::kCopyH2D, us(10));
    prev = tl.record(compute, Resource::kGpuCompute, us(10),
                     Timeline::join(delivered, prev));
  }
  // 4 copies + 4 decodes serially = 80us; pipelined = copy0 then 4 decodes
  // back to back = 50us.
  EXPECT_EQ(tl.serial_total().ps(), us(80).ps());
  EXPECT_EQ(tl.critical_path().ps(), us(50).ps());
}

TEST(Timeline, CriticalPathPlusSavedEqualsSerialExactly) {
  // Irregular picosecond durations: the identity is exact integer
  // arithmetic, not a float approximation.
  Timeline tl;
  const auto a = tl.stream();
  const auto b = tl.stream();
  const Duration d1 = Duration::from_ps(1234567);
  const Duration d2 = Duration::from_ps(7654321);
  const Duration d3 = Duration::from_ps(999983);
  const auto e1 = tl.record(a, Resource::kCopyH2D, d1);
  tl.record(b, Resource::kGpuCompute, d2, e1);
  tl.record(a, Resource::kCopyH2D, d3);
  const Duration saved = tl.serial_total() - tl.critical_path();
  EXPECT_EQ((tl.critical_path() + saved).ps(), (d1 + d2 + d3).ps());
  EXPECT_EQ(tl.critical_path().ps(), (d1 + d2).ps());
  EXPECT_EQ(saved.ps(), d3.ps());
}

TEST(TimelineScopes, ScopeStatsPartitionGlobalTotals) {
  // Two "queries" (scopes), each with its own streams, interleaved: the
  // per-scope serial/busy stats must partition the global totals exactly.
  Timeline tl;
  const auto q1 = tl.active_scope();  // scope 0: pre-existing
  const auto q2 = tl.scope();
  const auto s1 = tl.stream();
  const auto s2 = tl.stream(us(5));  // admitted later

  tl.set_scope(q1);
  tl.record(s1, Resource::kCopyH2D, us(10));
  tl.set_scope(q2);
  tl.record(s2, Resource::kCopyH2D, us(8));
  tl.set_scope(q1);
  tl.record(s1, Resource::kGpuCompute, us(6));

  const auto& a = tl.scope_stats(q1);
  const auto& b = tl.scope_stats(q2);
  EXPECT_EQ((a.serial + b.serial).ps(), tl.serial_total().ps());
  for (std::size_t r = 0; r < sim::kNumResources; ++r) {
    EXPECT_EQ((a.busy[r] + b.busy[r]).ps(),
              tl.busy(static_cast<Resource>(r)).ps());
  }
  EXPECT_EQ(a.ops + b.ops, tl.num_ops());
  // Scope 2's copy queued behind scope 1's on the single H2D engine:
  // issue at 10 (stream opened at 5, engine busy until 10).
  EXPECT_EQ(tl.ops()[1].start.ps(), us(10).ps());
  EXPECT_EQ(b.finish.ps(), us(18).ps());
  EXPECT_EQ(sim::max(a.finish, b.finish).ps(), tl.critical_path().ps());
}

TEST(TimelineScopes, StreamOpenAtDelaysFirstIssue) {
  Timeline tl;
  const auto s = tl.stream(us(42));
  const auto e = tl.record(s, Resource::kGpuCompute, us(3));
  EXPECT_EQ(tl.ops()[0].issue.ps(), us(42).ps());
  EXPECT_EQ(e.at.ps(), us(45).ps());
}

TEST(TimelineScopes, InterleavedMultiStreamPropertyHolds) {
  // Property test: for seeded random interleaves of ops from several
  // scopes (each with a CPU/copy/compute stream triple, opened at random
  // admission times), the core invariants hold regardless of order:
  //   * ops on one resource never overlap, and respect record order;
  //   * every op issues no earlier than its stream tail and its wait;
  //   * serial_total == critical_path + saved exactly (integer ps);
  //   * scope serial/busy/ops partition the global totals exactly.
  util::Xoshiro256 rng(2026);
  for (int trial = 0; trial < 20; ++trial) {
    Timeline tl;
    constexpr int kScopes = 4;
    struct ScopeStreams {
      Timeline::ScopeId scope;
      Timeline::StreamId streams[3];
      Timeline::Event last{};  // chain within the scope
    };
    std::vector<ScopeStreams> qs;
    for (int i = 0; i < kScopes; ++i) {
      ScopeStreams ss;
      ss.scope = i == 0 ? tl.active_scope() : tl.scope();
      const Duration open = Duration::from_us(double(rng() % 50));
      for (auto& s : ss.streams) s = tl.stream(open);
      qs.push_back(ss);
    }

    const int kOps = 60;
    for (int i = 0; i < kOps; ++i) {
      auto& ss = qs[rng() % kScopes];
      tl.set_scope(ss.scope);
      const auto r = static_cast<Resource>(rng() % sim::kNumResources);
      const auto stream = ss.streams[rng() % 3];
      const Duration d = Duration::from_ps(1 + std::int64_t(rng() % 9'999'983));
      // Half the ops chain on the scope's previous op (cross-stream waits).
      const bool chained = (rng() % 2) == 0;
      const auto e = tl.record(stream, r, d,
                               chained ? ss.last : Timeline::Event{});
      ss.last = e;
    }

    // Per-resource serialization in record order.
    Duration prev_end[sim::kNumResources] = {};
    for (const auto& op : tl.ops()) {
      const auto r = static_cast<std::size_t>(op.resource);
      EXPECT_LE(op.issue.ps(), op.start.ps());
      EXPECT_LE(op.start.ps(), op.end.ps());
      EXPECT_GE(op.start.ps(), prev_end[r].ps()) << "resource overlap";
      prev_end[r] = op.end;
    }

    // The exact identity the overlap accounting rests on. (`saved` can be
    // negative here: streams opened at a late admission time leave the
    // device idle before the first op, pushing the horizon past the serial
    // sum.)
    const Duration saved = tl.serial_total() - tl.critical_path();
    EXPECT_EQ((tl.critical_path() + saved).ps(), tl.serial_total().ps());

    // Scope partition of serial, busy, ops, and the horizon.
    Duration serial_sum;
    std::uint64_t ops_sum = 0;
    Duration busy_sum[sim::kNumResources] = {};
    Duration finish_max;
    for (const auto& ss : qs) {
      const auto& st = tl.scope_stats(ss.scope);
      serial_sum += st.serial;
      ops_sum += st.ops;
      for (std::size_t r = 0; r < sim::kNumResources; ++r) {
        busy_sum[r] += st.busy[r];
      }
      finish_max = sim::max(finish_max, st.finish);
    }
    EXPECT_EQ(serial_sum.ps(), tl.serial_total().ps());
    EXPECT_EQ(ops_sum, tl.num_ops());
    for (std::size_t r = 0; r < sim::kNumResources; ++r) {
      EXPECT_EQ(busy_sum[r].ps(), tl.busy(static_cast<Resource>(r)).ps());
      EXPECT_LE(tl.busy_fraction(static_cast<Resource>(r)), 1.0);
    }
    EXPECT_EQ(finish_max.ps(), tl.critical_path().ps());
  }
}

TEST(Timeline, ResetDropsEverything) {
  Timeline tl;
  const auto s = tl.stream();
  tl.record(s, Resource::kCpu, us(5));
  tl.reset();
  EXPECT_EQ(tl.num_ops(), 0u);
  EXPECT_EQ(tl.critical_path().ps(), 0);
  EXPECT_EQ(tl.serial_total().ps(), 0);
  EXPECT_EQ(tl.busy(Resource::kCpu).ps(), 0);
  const auto s2 = tl.stream();
  EXPECT_EQ(s2, 0u);  // stream ids restart
  const auto e = tl.record(s2, Resource::kCpu, us(3));
  EXPECT_EQ(e.at.ps(), us(3).ps());
}
