// sim::Timeline semantics (DESIGN.md §10): stream serialization, resource
// serialization, cross-stream event waits, dual copy engines overlapping
// each other and compute, and the picosecond-exact identity
// serial_total == critical_path + saved that QueryMetrics::overlap rests on.
#include "sim/timeline.h"

#include <gtest/gtest.h>

using namespace griffin;
using sim::Duration;
using sim::Resource;
using sim::Timeline;

namespace {
Duration us(std::int64_t v) { return Duration::from_us(double(v)); }
}  // namespace

TEST(Timeline, SameStreamOpsSerializeInIssueOrder) {
  Timeline tl;
  const auto s = tl.stream();
  const auto e1 = tl.record(s, Resource::kGpuCompute, us(10));
  const auto e2 = tl.record(s, Resource::kGpuCompute, us(5));
  EXPECT_EQ(e1.at.ps(), us(10).ps());
  EXPECT_EQ(e2.at.ps(), us(15).ps());
  // Second op issued when the stream tail (not the wait) allowed it.
  EXPECT_EQ(tl.ops()[1].issue.ps(), us(10).ps());
  EXPECT_EQ(tl.critical_path().ps(), us(15).ps());
  EXPECT_EQ(tl.serial_total().ps(), us(15).ps());
}

TEST(Timeline, DifferentResourcesOverlap) {
  Timeline tl;
  const auto copy = tl.stream();
  const auto compute = tl.stream();
  tl.record(copy, Resource::kCopyH2D, us(20));
  tl.record(compute, Resource::kGpuCompute, us(12));
  // No dependency between them: full overlap, latency = the longer one.
  EXPECT_EQ(tl.critical_path().ps(), us(20).ps());
  EXPECT_EQ(tl.serial_total().ps(), us(32).ps());
  EXPECT_EQ(tl.busy(Resource::kCopyH2D).ps(), us(20).ps());
  EXPECT_EQ(tl.busy(Resource::kGpuCompute).ps(), us(12).ps());
}

TEST(Timeline, SameResourceSerializesAcrossStreams) {
  Timeline tl;
  const auto s1 = tl.stream();
  const auto s2 = tl.stream();
  tl.record(s1, Resource::kCopyH2D, us(20));
  tl.record(s2, Resource::kCopyH2D, us(20));
  // One DMA engine per direction: the second copy queues behind the first
  // even though the streams are independent.
  EXPECT_EQ(tl.ops()[1].issue.ps(), 0);
  EXPECT_EQ(tl.ops()[1].start.ps(), us(20).ps());
  EXPECT_EQ(tl.critical_path().ps(), us(40).ps());
}

TEST(Timeline, EventWaitExpressesCrossStreamDependency) {
  Timeline tl;
  const auto copy = tl.stream();
  const auto compute = tl.stream();
  const auto delivered = tl.record(copy, Resource::kCopyH2D, us(20));
  const auto done =
      tl.record(compute, Resource::kGpuCompute, us(10), delivered);
  // The kernel reads what the copy delivered: it cannot start earlier.
  EXPECT_EQ(tl.ops()[1].issue.ps(), us(20).ps());
  EXPECT_EQ(done.at.ps(), us(30).ps());
  EXPECT_EQ(tl.critical_path().ps(), us(30).ps());
}

TEST(Timeline, DualCopyEnginesOverlapDirections) {
  Timeline tl;
  const auto up = tl.stream();
  const auto down = tl.stream();
  const auto gpu = tl.stream();
  tl.record(up, Resource::kCopyH2D, us(30));
  tl.record(down, Resource::kCopyD2H, us(30));
  tl.record(gpu, Resource::kGpuCompute, us(30));
  // H2D, D2H, and compute are three distinct units: everything overlaps.
  EXPECT_EQ(tl.critical_path().ps(), us(30).ps());
  EXPECT_EQ(tl.serial_total().ps(), us(90).ps());
}

TEST(Timeline, PipelinedChunksHideCopyUnderCompute) {
  // The double-buffering shape decode_full_list builds: chunk i's kernel
  // waits on chunk i's copy; copies serialize on the H2D engine; kernels
  // serialize on compute. With equal 10us chunks, steady state is one
  // resource busy while the other works on the neighbor chunk.
  Timeline tl;
  const auto copy = tl.stream();
  const auto compute = tl.stream();
  Timeline::Event prev{};
  for (int i = 0; i < 4; ++i) {
    const auto delivered = tl.record(copy, Resource::kCopyH2D, us(10));
    prev = tl.record(compute, Resource::kGpuCompute, us(10),
                     Timeline::join(delivered, prev));
  }
  // 4 copies + 4 decodes serially = 80us; pipelined = copy0 then 4 decodes
  // back to back = 50us.
  EXPECT_EQ(tl.serial_total().ps(), us(80).ps());
  EXPECT_EQ(tl.critical_path().ps(), us(50).ps());
}

TEST(Timeline, CriticalPathPlusSavedEqualsSerialExactly) {
  // Irregular picosecond durations: the identity is exact integer
  // arithmetic, not a float approximation.
  Timeline tl;
  const auto a = tl.stream();
  const auto b = tl.stream();
  const Duration d1 = Duration::from_ps(1234567);
  const Duration d2 = Duration::from_ps(7654321);
  const Duration d3 = Duration::from_ps(999983);
  const auto e1 = tl.record(a, Resource::kCopyH2D, d1);
  tl.record(b, Resource::kGpuCompute, d2, e1);
  tl.record(a, Resource::kCopyH2D, d3);
  const Duration saved = tl.serial_total() - tl.critical_path();
  EXPECT_EQ((tl.critical_path() + saved).ps(), (d1 + d2 + d3).ps());
  EXPECT_EQ(tl.critical_path().ps(), (d1 + d2).ps());
  EXPECT_EQ(saved.ps(), d3.ps());
}

TEST(Timeline, ResetDropsEverything) {
  Timeline tl;
  const auto s = tl.stream();
  tl.record(s, Resource::kCpu, us(5));
  tl.reset();
  EXPECT_EQ(tl.num_ops(), 0u);
  EXPECT_EQ(tl.critical_path().ps(), 0);
  EXPECT_EQ(tl.serial_total().ps(), 0);
  EXPECT_EQ(tl.busy(Resource::kCpu).ps(), 0);
  const auto s2 = tl.stream();
  EXPECT_EQ(s2, 0u);  // stream ids restart
  const auto e = tl.record(s2, Resource::kCpu, us(3));
  EXPECT_EQ(e.at.ps(), us(3).ps());
}
