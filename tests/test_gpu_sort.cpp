// GPU ranking-selection kernels (paper §3.1.3 / Figure 7).
#include "gpu/sort.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace gg = griffin::gpu;

namespace {

struct Gpu {
  griffin::simt::Device dev;
  griffin::pcie::Link link;
  griffin::pcie::TransferLedger ledger;
};

std::vector<gg::DevScored> make_items(std::size_t n, std::uint64_t seed) {
  griffin::util::Xoshiro256 rng(seed);
  std::vector<gg::DevScored> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i].doc = static_cast<std::uint32_t>(i);
    v[i].key = gg::float_to_key(static_cast<float>(rng.uniform01() * 100.0));
  }
  return v;
}

std::vector<std::uint32_t> reference_topk_keys(
    std::vector<gg::DevScored> v, std::uint32_t k) {
  std::sort(v.begin(), v.end(), [](const gg::DevScored& a,
                                   const gg::DevScored& b) {
    return a.key > b.key;
  });
  v.resize(std::min<std::size_t>(k, v.size()));
  std::vector<std::uint32_t> keys;
  for (const auto& s : v) keys.push_back(s.key);
  return keys;
}

}  // namespace

TEST(FloatKey, OrderPreserving) {
  const std::vector<float> vals{-100.5f, -1.0f, -0.0f, 0.0f,
                                0.25f,   1.0f,  3.5f,  1e20f};
  for (std::size_t i = 1; i < vals.size(); ++i) {
    EXPECT_LE(gg::float_to_key(vals[i - 1]), gg::float_to_key(vals[i]))
        << vals[i - 1] << " vs " << vals[i];
  }
  for (float f : vals) {
    if (f == 0.0f) continue;  // -0.0f and 0.0f share an ordering slot
    EXPECT_EQ(gg::key_to_float(gg::float_to_key(f)), f);
  }
}

class GpuSortParam : public ::testing::TestWithParam<int> {};

TEST_P(GpuSortParam, RadixTopKMatchesReference) {
  const int n = GetParam();
  auto items = make_items(n, n);
  Gpu g;
  auto buf = g.dev.alloc<gg::DevScored>(items.size());
  g.dev.upload(buf, std::span<const gg::DevScored>(items));
  const auto res = gg::radix_sort_topk(g.dev, buf, n, 10, g.link, g.ledger);
  const auto expect = reference_topk_keys(items, 10);
  ASSERT_EQ(res.topk.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(res.topk[i].key, expect[i]) << "rank " << i;
  }
  EXPECT_EQ(res.kernels, 8u);  // 4 passes x (histogram + scatter)
}

TEST_P(GpuSortParam, BucketSelectTopKMatchesReference) {
  const int n = GetParam();
  auto items = make_items(n, n * 3 + 1);
  Gpu g;
  auto buf = g.dev.alloc<gg::DevScored>(items.size());
  g.dev.upload(buf, std::span<const gg::DevScored>(items));
  const auto res = gg::bucket_select_topk(g.dev, buf, n, 10, g.link, g.ledger);
  const auto expect = reference_topk_keys(items, 10);
  ASSERT_EQ(res.topk.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(res.topk[i].key, expect[i]) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GpuSortParam,
                         ::testing::Values(1, 9, 10, 11, 255, 256, 1000,
                                           20000));

TEST(GpuSort, RadixSortsFullArray) {
  auto items = make_items(5000, 99);
  Gpu g;
  auto buf = g.dev.alloc<gg::DevScored>(items.size());
  g.dev.upload(buf, std::span<const gg::DevScored>(items));
  gg::radix_sort_topk(g.dev, buf, items.size(), 5000, g.link, g.ledger);
  // Requesting k == n returns the whole array in descending key order.
}

TEST(GpuSort, DuplicateKeys) {
  std::vector<gg::DevScored> items(1000);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i].doc = static_cast<std::uint32_t>(i);
    items[i].key = gg::float_to_key(static_cast<float>(i % 3));
  }
  Gpu g;
  auto buf = g.dev.alloc<gg::DevScored>(items.size());
  g.dev.upload(buf, std::span<const gg::DevScored>(items));
  const auto res =
      gg::bucket_select_topk(g.dev, buf, items.size(), 10, g.link, g.ledger);
  ASSERT_EQ(res.topk.size(), 10u);
  for (const auto& s : res.topk) {
    EXPECT_EQ(s.key, gg::float_to_key(2.0f));  // all top-10 are the max key
  }
}

TEST(GpuSort, BucketSelectCheaperThanRadixOnLargeInputs) {
  // bucketSelect reads the data a few times; radix rewrites it 4 times.
  const int n = 100'000;
  auto items = make_items(n, 5);
  Gpu g1, g2;
  auto b1 = g1.dev.alloc<gg::DevScored>(n);
  g1.dev.upload(b1, std::span<const gg::DevScored>(items));
  auto b2 = g2.dev.alloc<gg::DevScored>(n);
  g2.dev.upload(b2, std::span<const gg::DevScored>(items));

  const auto radix = gg::radix_sort_topk(g1.dev, b1, n, 10, g1.link, g1.ledger);
  const auto bucket =
      gg::bucket_select_topk(g2.dev, b2, n, 10, g2.link, g2.ledger);
  EXPECT_LT(bucket.stats.global_transactions,
            radix.stats.global_transactions);
}
