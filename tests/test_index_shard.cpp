#include "index/shard.h"

#include <gtest/gtest.h>

#include <numeric>

#include "cluster/partitioner.h"
#include "engine_test_util.h"

using namespace griffin;

namespace {

std::vector<index::DocId> decode(const index::PostingList& pl) {
  std::vector<index::DocId> docs;
  pl.docids.decode_all(docs);
  return docs;
}

}  // namespace

TEST(Partitioner, RoundRobinStripes) {
  const auto map = cluster::assign_docs(
      cluster::PartitionStrategy::kRoundRobin, 10, 3);
  ASSERT_EQ(map.size(), 10u);
  for (std::uint64_t d = 0; d < map.size(); ++d) {
    EXPECT_EQ(map[d], d % 3);
  }
}

TEST(Partitioner, RangeIsContiguousAndCoversAll) {
  const auto map =
      cluster::assign_docs(cluster::PartitionStrategy::kRange, 1000, 4);
  ASSERT_EQ(map.size(), 1000u);
  // Nondecreasing shard ids, all shards non-empty, values < num_shards.
  std::vector<std::uint64_t> counts(4, 0);
  for (std::size_t d = 0; d < map.size(); ++d) {
    ASSERT_LT(map[d], 4u);
    if (d > 0) {
      EXPECT_GE(map[d], map[d - 1]);
    }
    ++counts[map[d]];
  }
  for (const auto c : counts) EXPECT_GT(c, 0u);
}

TEST(Partitioner, SingleShardIsIdentity) {
  for (const auto strat : {cluster::PartitionStrategy::kRoundRobin,
                           cluster::PartitionStrategy::kRange}) {
    const auto map = cluster::assign_docs(strat, 57, 1);
    for (const auto s : map) EXPECT_EQ(s, 0u);
  }
}

TEST(Partitioner, ZeroShardsThrows) {
  EXPECT_THROW(
      cluster::assign_docs(cluster::PartitionStrategy::kRoundRobin, 8, 0),
      std::invalid_argument);
}

TEST(IndexShard, ExtractionPartitionsEveryPosting) {
  const auto& idx = testutil::small_index();
  const auto doc_shard = cluster::assign_docs(
      cluster::PartitionStrategy::kRoundRobin,
      idx.docs().num_docs(), 3);
  const auto shards = index::extract_shards(idx, doc_shard, 3);
  ASSERT_EQ(shards.size(), 3u);

  for (index::TermId t = 0; t < idx.num_terms(); ++t) {
    const auto full = decode(idx.list(t));
    // Rebuild the full list from the shards; postings must route to the
    // owner shard and nowhere else.
    std::vector<index::DocId> merged;
    for (const auto& s : shards) {
      if (!s.has_term(t)) continue;
      const auto part = decode(s.index.list(s.local_term[t]));
      for (const auto d : part) {
        EXPECT_EQ(doc_shard[d], s.id);
      }
      merged.insert(merged.end(), part.begin(), part.end());
    }
    std::sort(merged.begin(), merged.end());
    EXPECT_EQ(merged, full) << "term " << t;
  }
}

TEST(IndexShard, ShardsCarryGlobalStatistics) {
  const auto& idx = testutil::small_index();
  const auto doc_shard = cluster::assign_docs(
      cluster::PartitionStrategy::kRange, idx.docs().num_docs(), 4);
  const auto shards = index::extract_shards(idx, doc_shard, 4);

  for (const auto& s : shards) {
    // Full DocTable copy: global N and global average length.
    EXPECT_EQ(s.index.docs().num_docs(), idx.docs().num_docs());
    EXPECT_DOUBLE_EQ(s.index.docs().avg_length(), idx.docs().avg_length());
    EXPECT_TRUE(s.index.has_df_override());
    // Per-term df override = collection-wide posting count, even though the
    // local sub-list is shorter.
    for (index::TermId local = 0; local < s.index.num_terms(); ++local) {
      const index::TermId global = s.global_term[local];
      EXPECT_EQ(s.index.df(local), idx.list(global).size());
      EXPECT_LE(s.index.list(local).size(), idx.list(global).size());
      EXPECT_EQ(s.local_term[global], local);
    }
  }
}

TEST(IndexShard, PreservesTermFrequencies) {
  const auto& idx = testutil::small_index();
  const auto doc_shard = cluster::assign_docs(
      cluster::PartitionStrategy::kRoundRobin, idx.docs().num_docs(), 2);
  const auto shards = index::extract_shards(idx, doc_shard, 2);

  const index::TermId t = 5;
  const auto full = decode(idx.list(t));
  for (const auto& s : shards) {
    ASSERT_TRUE(s.has_term(t));
    const auto& local = s.index.list(s.local_term[t]);
    const auto part = decode(local);
    for (std::uint64_t i = 0; i < part.size(); ++i) {
      const auto pos = static_cast<std::uint64_t>(
          std::lower_bound(full.begin(), full.end(), part[i]) - full.begin());
      ASSERT_LT(pos, full.size());
      EXPECT_EQ(local.tf_at(i), idx.list(t).tf_at(pos));
    }
  }
}

TEST(IndexShard, TranslateTermsShortCircuitsOnAbsent) {
  // Tiny hand-built index: term 1's postings all live in the upper half.
  index::InvertedIndex idx(codec::Scheme::kVarByte);
  idx.docs().resize(10);
  for (index::DocId d = 0; d < 10; ++d) idx.docs().set_length(d, 10);
  const std::vector<index::DocId> l0 = {0, 1, 5, 6};
  const std::vector<index::DocId> l1 = {7, 8, 9};
  idx.add_list(l0);
  idx.add_list(l1);

  const auto doc_shard =
      cluster::assign_docs(cluster::PartitionStrategy::kRange, 10, 2);
  const auto shards = index::extract_shards(idx, doc_shard, 2);

  EXPECT_TRUE(shards[0].has_term(0));
  EXPECT_FALSE(shards[0].has_term(1));  // all of term 1 is on shard 1
  EXPECT_TRUE(shards[1].has_term(1));

  std::vector<index::TermId> local;
  EXPECT_FALSE(shards[0].translate_terms(std::vector<index::TermId>{0, 1},
                                         local));
  ASSERT_TRUE(shards[1].translate_terms(std::vector<index::TermId>{0, 1},
                                        local));
  ASSERT_EQ(local.size(), 2u);
  EXPECT_EQ(shards[1].global_term[local[0]], 0u);
  EXPECT_EQ(shards[1].global_term[local[1]], 1u);
}

TEST(IndexShard, RejectsBadArguments) {
  const auto& idx = testutil::small_index();
  std::vector<std::uint32_t> short_map(idx.docs().num_docs() - 1, 0);
  EXPECT_THROW(index::extract_shards(idx, short_map, 1),
               std::invalid_argument);
  std::vector<std::uint32_t> ok_map(idx.docs().num_docs(), 0);
  EXPECT_THROW(index::extract_shards(idx, ok_map, 0), std::invalid_argument);
  std::vector<std::uint32_t> bad_value(idx.docs().num_docs(), 7);
  EXPECT_THROW(index::extract_shards(idx, bad_value, 2), std::out_of_range);
}
