#include "workload/corpus.h"
#include "workload/querylog.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

using namespace griffin;

TEST(Workload, UniformListIsStrictlyIncreasingAndExactSize) {
  util::Xoshiro256 rng(1);
  for (const std::uint64_t n : {1ull, 100ull, 10'000ull}) {
    const auto docs = workload::make_uniform_list(n, 1'000'000, rng);
    ASSERT_EQ(docs.size(), n);
    for (std::size_t i = 1; i < docs.size(); ++i) {
      ASSERT_GT(docs[i], docs[i - 1]);
    }
    EXPECT_LT(docs.back(), 1'000'000u);
  }
}

TEST(Workload, DenseListPath) {
  util::Xoshiro256 rng(2);
  const auto docs = workload::make_uniform_list(6000, 10'000, rng);
  ASSERT_EQ(docs.size(), 6000u);
  for (std::size_t i = 1; i < docs.size(); ++i) ASSERT_GT(docs[i], docs[i - 1]);
}

TEST(Workload, PairWithRatioHasRequestedShape) {
  util::Xoshiro256 rng(3);
  const auto pair =
      workload::make_pair_with_ratio(100'000, 50.0, 10'000'000, 0.4, rng);
  const double ratio = static_cast<double>(pair.longer.size()) /
                       static_cast<double>(pair.shorter.size());
  EXPECT_NEAR(ratio, 50.0, 5.0);
  // Containment: a healthy fraction of the shorter list intersects.
  std::vector<index::DocId> matches;
  std::set_intersection(pair.shorter.begin(), pair.shorter.end(),
                        pair.longer.begin(), pair.longer.end(),
                        std::back_inserter(matches));
  const double contained = static_cast<double>(matches.size()) /
                           static_cast<double>(pair.shorter.size());
  EXPECT_GT(contained, 0.25);
  EXPECT_LT(contained, 0.55);
}

TEST(Workload, ListSizesFollowConfiguredDecay) {
  const workload::CorpusConfig cfg;
  EXPECT_EQ(workload::list_size_for_rank(cfg, 1),
            static_cast<std::uint64_t>(cfg.num_docs / cfg.max_list_divisor));
  // Monotone non-increasing in rank, floored at min_list_size.
  std::uint64_t prev = workload::list_size_for_rank(cfg, 1);
  for (std::uint32_t r = 2; r < 2000; r *= 3) {
    const auto s = workload::list_size_for_rank(cfg, r);
    EXPECT_LE(s, prev);
    EXPECT_GE(s, cfg.min_list_size);
    prev = s;
  }
}

TEST(Workload, GeneratedCorpusMatchesConfig) {
  workload::CorpusConfig cfg;
  cfg.num_docs = 50'000;
  cfg.num_terms = 100;
  cfg.seed = 5;
  const auto idx = workload::generate_corpus(cfg);
  EXPECT_EQ(idx.num_terms(), 100u);
  EXPECT_EQ(idx.docs().num_docs(), 50'000u);
  EXPECT_GT(idx.docs().avg_length(), 100.0);
  for (index::TermId t = 0; t < 100; t += 13) {
    EXPECT_EQ(idx.list(t).size(), workload::list_size_for_rank(cfg, t + 1));
    // tf values populated and plausible.
    EXPECT_GE(idx.list(t).tf_at(0), 1u);
    EXPECT_LE(idx.list(t).tf_at(0), 50u);
  }
  // Compression ratio lands in the plausible web-corpus zone (Table 1's
  // exact values depend on the real data; direction and magnitude match).
  EXPECT_GT(idx.compression_ratio(), 2.0);
  EXPECT_LT(idx.compression_ratio(), 16.0);
}

TEST(Workload, CorpusIsDeterministicPerSeed) {
  workload::CorpusConfig cfg;
  cfg.num_docs = 20'000;
  cfg.num_terms = 30;
  const auto a = workload::generate_corpus(cfg);
  const auto b = workload::generate_corpus(cfg);
  std::vector<index::DocId> da, db;
  a.list(7).docids.decode_all(da);
  b.list(7).docids.decode_all(db);
  EXPECT_EQ(da, db);
}

TEST(Workload, CorrelatedListsOverlapFarMoreThanUniform) {
  util::Xoshiro256 rng(13);
  // A shared shuffled topic order of 100K docs inside a 1M universe.
  std::vector<index::DocId> order(100'000);
  for (index::DocId d = 0; d < order.size(); ++d) order[d] = 500'000 + d;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.bounded(i)]);
  }
  const auto a =
      workload::make_correlated_list(30'000, 1'000'000, order, 0.6, rng);
  const auto b =
      workload::make_correlated_list(40'000, 1'000'000, order, 0.6, rng);
  const auto u1 = workload::make_uniform_list(30'000, 1'000'000, rng);
  const auto u2 = workload::make_uniform_list(40'000, 1'000'000, rng);

  auto overlap = [](const std::vector<index::DocId>& x,
                    const std::vector<index::DocId>& y) {
    std::vector<index::DocId> m;
    std::set_intersection(x.begin(), x.end(), y.begin(), y.end(),
                          std::back_inserter(m));
    return m.size();
  };
  const auto corr = overlap(a, b);
  const auto unif = overlap(u1, u2);
  // Correlated overlap ~ 0.5 * affinity * min(n) = ~9K; uniform ~ 1.2K.
  EXPECT_GT(corr, unif * 4);
  EXPECT_GT(corr, 5'000u);
  // Shapes are still valid lists.
  ASSERT_EQ(a.size(), 30'000u);
  for (std::size_t i = 1; i < a.size(); ++i) ASSERT_GT(a[i], a[i - 1]);
}

TEST(Workload, TopicalCorpusKeepsIntersectionsLarge) {
  workload::CorpusConfig cfg;
  cfg.num_docs = 200'000;
  cfg.num_terms = 64;
  cfg.num_topics = 8;
  cfg.topic_affinity = 0.6;
  cfg.seed = 3;
  const auto idx = workload::generate_corpus(cfg);
  // Terms 8 and 16 share topic 0 with term 0; term 9 does not.
  std::vector<index::DocId> t8, t16, t9;
  idx.list(8).docids.decode_all(t8);
  idx.list(16).docids.decode_all(t16);
  idx.list(9).docids.decode_all(t9);
  auto overlap = [](const std::vector<index::DocId>& x,
                    const std::vector<index::DocId>& y) {
    std::vector<index::DocId> m;
    std::set_intersection(x.begin(), x.end(), y.begin(), y.end(),
                          std::back_inserter(m));
    return m.size();
  };
  EXPECT_GT(overlap(t8, t16), 3 * overlap(t8, t9));
}

TEST(QueryLog, TopicalQueriesDrawFromOneTopic) {
  workload::QueryLogConfig cfg;
  cfg.num_queries = 300;
  cfg.num_topics = 8;
  cfg.topical_fraction = 1.0;
  const auto log = workload::generate_query_log(cfg, 800);
  for (const auto& q : log) {
    const auto topic = q.terms[0] % 8;
    for (const auto t : q.terms) {
      EXPECT_EQ(t % 8, topic) << "query " << q.id;
    }
  }
}

TEST(QueryLog, TermCountDistributionMatchesFigure11) {
  workload::QueryLogConfig cfg;
  cfg.num_queries = 20'000;
  const auto log = workload::generate_query_log(cfg, 5000);
  ASSERT_EQ(log.size(), cfg.num_queries);

  std::map<std::size_t, int> hist;
  for (const auto& q : log) ++hist[q.terms.size()];
  const auto dist = workload::term_count_distribution();
  EXPECT_NEAR(hist[2] / 20'000.0, dist[0], 0.02);  // ~27%
  EXPECT_NEAR(hist[3] / 20'000.0, dist[1], 0.02);  // ~33%
  EXPECT_NEAR(hist[4] / 20'000.0, dist[2], 0.02);  // ~24%
  EXPECT_GT(hist[5] + hist[6] + hist[7] + hist[8], 0);
}

TEST(QueryLog, TermsAreDistinctAndInRange) {
  workload::QueryLogConfig cfg;
  cfg.num_queries = 500;
  const auto log = workload::generate_query_log(cfg, 300);
  for (const auto& q : log) {
    for (std::size_t i = 0; i < q.terms.size(); ++i) {
      EXPECT_LT(q.terms[i], 300u);
      for (std::size_t j = i + 1; j < q.terms.size(); ++j) {
        EXPECT_NE(q.terms[i], q.terms[j]);
      }
    }
  }
}

TEST(QueryLog, QueriesSkewTowardFrequentTerms) {
  workload::QueryLogConfig cfg;
  cfg.num_queries = 5000;
  const auto log = workload::generate_query_log(cfg, 10'000);
  int head = 0, total = 0;
  for (const auto& q : log) {
    for (const auto t : q.terms) {
      head += (t < 100);
      ++total;
    }
  }
  // With Zipf-biased term picks, the top 1% of terms takes far more than 1%
  // of the occurrences.
  EXPECT_GT(static_cast<double>(head) / total, 0.10);
}

TEST(RepeatedQueryLog, StreamDrawsFromPoolWithZipfHead) {
  workload::QueryLogConfig base;
  base.seed = 21;
  workload::RepeatedLogConfig rep;
  rep.num_queries = 3000;
  rep.unique_queries = 100;
  rep.popularity_zipf_s = 1.1;
  rep.seed = 22;
  const auto stream = workload::generate_repeated_query_log(base, rep, 500);

  ASSERT_EQ(stream.size(), rep.num_queries);
  // Ids are stream positions; term sets come from a pool of <= 100 queries.
  std::map<std::vector<index::TermId>, int> freq;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].id, i);
    auto terms = stream[i].terms;
    std::sort(terms.begin(), terms.end());
    ++freq[terms];
  }
  EXPECT_LE(freq.size(), 100u);
  EXPECT_GT(freq.size(), 10u);  // the tail is represented too

  // Zipf popularity: the hottest query dwarfs the uniform share (30/query).
  int hottest = 0;
  for (const auto& [terms, n] : freq) hottest = std::max(hottest, n);
  EXPECT_GT(hottest, 120);
}

TEST(RepeatedQueryLog, DeterministicPerSeed) {
  workload::QueryLogConfig base;
  workload::RepeatedLogConfig rep;
  rep.num_queries = 200;
  rep.unique_queries = 40;
  const auto a = workload::generate_repeated_query_log(base, rep, 300);
  const auto b = workload::generate_repeated_query_log(base, rep, 300);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].terms, b[i].terms);
  }
}
