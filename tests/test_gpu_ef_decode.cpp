// Para-EF (paper Algorithm 1) — functional correctness against the CPU
// decoder plus the performance-shape properties the paper claims.
#include "gpu/ef_decode.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "workload/corpus.h"

namespace gg = griffin::gpu;
using griffin::codec::BlockCompressedList;
using griffin::codec::DocId;
using griffin::codec::Scheme;

namespace {

std::vector<DocId> gpu_decode_all(griffin::simt::Device& dev,
                                  const BlockCompressedList& list,
                                  griffin::sim::KernelStats* stats_out = nullptr) {
  griffin::pcie::Link link;
  griffin::pcie::TransferLedger ledger;
  gg::DeviceList dlist = gg::upload_list(dev, list, link, ledger);
  auto out = dev.alloc<DocId>(list.size());
  const auto stats =
      gg::ef_decode_range(dev, dlist, 0, dlist.num_blocks(), out);
  if (stats_out != nullptr) *stats_out = stats;
  std::vector<DocId> host(list.size());
  dev.download(std::span<DocId>(host), out);
  return host;
}

}  // namespace

TEST(ParaEF, PaperFigure4Sequence) {
  griffin::simt::Device dev;
  const std::vector<DocId> docs{5, 6, 8, 15, 18, 33};
  const auto list = BlockCompressedList::build(docs, Scheme::kEliasFano);
  EXPECT_EQ(gpu_decode_all(dev, list), docs);
}

class ParaEFParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParaEFParam, MatchesCpuDecode) {
  const auto [size, density_log2] = GetParam();
  griffin::util::Xoshiro256 rng(size * 3 + density_log2);
  const auto universe = static_cast<DocId>(
      std::min<std::uint64_t>(std::uint64_t{static_cast<std::uint64_t>(size)}
                                  << density_log2,
                              0xFFFFFFF0u));
  const auto docs = griffin::workload::make_uniform_list(
      size, std::max<DocId>(universe, size), rng);
  const auto list = BlockCompressedList::build(docs, Scheme::kEliasFano);

  griffin::simt::Device dev;
  EXPECT_EQ(gpu_decode_all(dev, list), docs);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParaEFParam,
    ::testing::Combine(::testing::Values(1, 2, 127, 128, 129, 1000, 20000),
                       ::testing::Values(1, 5, 10)));

TEST(ParaEF, SelectedBlocksDecode) {
  griffin::util::Xoshiro256 rng(5);
  const auto docs = griffin::workload::make_uniform_list(2000, 1'000'000, rng);
  const auto list = BlockCompressedList::build(docs, Scheme::kEliasFano);

  griffin::simt::Device dev;
  griffin::pcie::Link link;
  griffin::pcie::TransferLedger ledger;
  gg::DeviceList dlist = gg::upload_list(dev, list, link, ledger);

  const std::vector<std::uint32_t> ids{1, 3, 7, 15};
  auto ids_dev = dev.alloc<std::uint32_t>(ids.size());
  dev.upload(ids_dev, std::span<const std::uint32_t>(ids));
  auto out = dev.alloc<DocId>(ids.size() * list.block_size());
  gg::ef_decode_selected(dev, dlist, ids_dev, ids, out);

  std::vector<DocId> host(out.size());
  dev.download(std::span<DocId>(host), out);
  std::vector<DocId> buf(list.block_size());
  for (std::size_t s = 0; s < ids.size(); ++s) {
    const std::uint32_t n = list.decode_block(ids[s], buf.data());
    for (std::uint32_t i = 0; i < n; ++i) {
      EXPECT_EQ(host[s * list.block_size() + i], buf[i])
          << "slot " << s << " elem " << i;
    }
  }
}

TEST(ParaEF, OutBaseOffsetRespected) {
  griffin::util::Xoshiro256 rng(6);
  const auto docs = griffin::workload::make_uniform_list(300, 100'000, rng);
  const auto list = BlockCompressedList::build(docs, Scheme::kEliasFano);

  griffin::simt::Device dev;
  griffin::pcie::Link link;
  griffin::pcie::TransferLedger ledger;
  gg::DeviceList dlist = gg::upload_list(dev, list, link, ledger);
  auto out = dev.alloc<DocId>(list.size() + 64);
  gg::ef_decode_range(dev, dlist, 0, dlist.num_blocks(), out, 64);
  std::vector<DocId> host(list.size());
  dev.download(std::span<DocId>(host), out, 64);
  EXPECT_EQ(host, docs);
}

TEST(ParaEF, PartialRangeDecode) {
  griffin::util::Xoshiro256 rng(7);
  const auto docs = griffin::workload::make_uniform_list(1000, 500'000, rng);
  const auto list = BlockCompressedList::build(docs, Scheme::kEliasFano);
  ASSERT_GE(list.num_blocks(), 4u);

  griffin::simt::Device dev;
  griffin::pcie::Link link;
  griffin::pcie::TransferLedger ledger;
  gg::DeviceList dlist = gg::upload_list(dev, list, link, ledger);
  auto out = dev.alloc<DocId>(2 * list.block_size());
  gg::ef_decode_range(dev, dlist, 1, 3, out);
  std::vector<DocId> host(2 * list.block_size());
  dev.download(std::span<DocId>(host), out);
  for (std::size_t i = 0; i < 2 * list.block_size(); ++i) {
    EXPECT_EQ(host[i], docs[list.block_size() + i]);
  }
}

TEST(ParaEF, WorkScalesLinearlyAndCoalescesWell) {
  griffin::util::Xoshiro256 rng(8);
  griffin::simt::Device dev;
  griffin::sim::KernelStats small_stats, big_stats;
  const auto small_docs =
      griffin::workload::make_uniform_list(10'000, 320'000, rng);
  const auto big_docs =
      griffin::workload::make_uniform_list(100'000, 3'200'000, rng);
  gpu_decode_all(dev, BlockCompressedList::build(small_docs, Scheme::kEliasFano),
                 &small_stats);
  gpu_decode_all(dev, BlockCompressedList::build(big_docs, Scheme::kEliasFano),
                 &big_stats);

  // 10x the elements => ~10x the counted work, and the streaming access
  // pattern should stay reasonably coalesced.
  const double ratio = big_stats.warp_cycles / small_stats.warp_cycles;
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 14.0);
  EXPECT_GT(big_stats.coalescing_efficiency(dev.spec()), 0.10);
}
