// The device-resident posting-list cache (DESIGN.md §7): the generic
// byte-budgeted LRU it is built on, and the GpuEngine integration — caching
// is a pure cost optimization, so results must be bit-identical with the
// cache on, off, cold, warm, and under eviction pressure.
#include "util/lru_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine_test_util.h"
#include "gpu/engine.h"

using namespace griffin;

using IntCache = util::ByteLruCache<int, std::string>;

TEST(ByteLruCache, LookupRefreshesRecencyAndByteBudgetEvictsTail) {
  IntCache cache(0, 100);
  cache.insert(1, "a", 40);
  cache.insert(2, "b", 40);
  ASSERT_NE(cache.lookup(1), nullptr);  // 1 is now most recent
  // 40+40+40 > 100: evicts the LRU tail, which is 2 (not 1).
  std::uint64_t evicted = 0;
  cache.insert(3, "c", 40, &evicted);
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);
  EXPECT_EQ(cache.bytes(), 80u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ByteLruCache, OversizedEntryIsDroppedNotInserted) {
  IntCache cache(0, 100);
  cache.insert(1, "small", 60);
  EXPECT_FALSE(cache.fits(101));
  EXPECT_EQ(cache.insert(2, "huge", 101), nullptr);
  // The oversized insert neither stored the entry nor disturbed the rest.
  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_EQ(cache.bytes(), 60u);
}

TEST(ByteLruCache, EntryCountBoundEvicts) {
  IntCache cache(2, 0);
  cache.insert(1, "a", 1);
  cache.insert(2, "b", 1);
  cache.insert(3, "c", 1);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.lookup(1), nullptr);  // oldest gone
  EXPECT_NE(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);
}

TEST(ByteLruCache, DisabledCacheStoresNothing) {
  IntCache cache(0, 0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.fits(1));
  EXPECT_EQ(cache.insert(1, "a", 1), nullptr);
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ByteLruCache, ReplaceUpdatesBytesAndKeepsSingleEntry) {
  IntCache cache(0, 100);
  cache.insert(1, "a", 30);
  cache.insert(1, "bigger", 70);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), 70u);
  EXPECT_EQ(*cache.lookup(1), "bigger");
}

TEST(ByteLruCache, StatsCountHitsMissesInsertionsEvictions) {
  IntCache cache(1, 0);
  cache.lookup(7);          // miss
  cache.insert(7, "a", 1);  // insertion
  cache.lookup(7);          // hit
  cache.insert(8, "b", 1);  // insertion + eviction of 7
  const auto& s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(ByteLruCache, PeekDoesNotTouchStatsOrRecency) {
  IntCache cache(0, 100);
  cache.insert(1, "a", 40);
  cache.insert(2, "b", 40);
  ASSERT_NE(cache.peek(1), nullptr);  // no recency refresh...
  cache.insert(3, "c", 40);
  EXPECT_EQ(cache.peek(1), nullptr);  // ...so 1 was still the LRU tail
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

// ---- GpuEngine integration ----

namespace {

/// Exact comparison: caching must not perturb a single bit of the output.
void expect_bit_identical(const std::vector<core::ScoredDoc>& got,
                          const std::vector<core::ScoredDoc>& want,
                          const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << label << " rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << label << " rank " << i;
  }
}

std::vector<core::Query> repeated_log(std::uint32_t num_terms) {
  workload::QueryLogConfig base;
  workload::RepeatedLogConfig rep;
  rep.num_queries = 60;
  rep.unique_queries = 12;
  rep.popularity_zipf_s = 1.2;
  rep.seed = 99;
  return workload::generate_repeated_query_log(base, rep, num_terms);
}

}  // namespace

TEST(GpuListCache, BitIdenticalColdWarmAndDisabled) {
  const auto& idx = testutil::small_index();
  gpu::GpuOptions off;
  off.list_cache = false;
  gpu::GpuEngine uncached(idx, {}, off);
  gpu::GpuEngine cached(idx);  // cache on by default

  const auto log = repeated_log(static_cast<std::uint32_t>(idx.num_terms()));
  core::CacheCounters totals;
  for (const auto& q : log) {
    const auto want = uncached.execute(q);
    const auto got = cached.execute(q);  // cold first time, warm on repeats
    expect_bit_identical(got.topk, want.topk, "gpu-list-cache");
    EXPECT_EQ(got.metrics.result_count, want.metrics.result_count);
    totals += got.metrics.cache;
    EXPECT_EQ(want.metrics.cache.device_hits, 0u);  // cache off: no counters
    EXPECT_EQ(want.metrics.cache.device_misses, 0u);
  }
  // The Zipf-repeated stream must actually warm the cache.
  EXPECT_GT(totals.device_hits, 0u);
  EXPECT_GT(totals.device_misses, 0u);
}

TEST(GpuListCache, WarmQueryIsCheaperAndHitsEveryList) {
  const auto& idx = testutil::small_index();
  gpu::GpuEngine engine(idx);
  core::Query q;
  q.terms = {0, 1, 5};  // heavy lists: upload cost matters

  const auto cold = engine.execute(q);
  const auto warm = engine.execute(q);
  expect_bit_identical(warm.topk, cold.topk, "warm-vs-cold");
  // Warm run: every list the GPU decode path touches is resident, so the
  // transfer stage (upload + alloc) drops and total time strictly shrinks.
  EXPECT_GT(warm.metrics.cache.device_hits, 0u);
  EXPECT_LT(warm.metrics.transfer.ps(), cold.metrics.transfer.ps());
  EXPECT_LT(warm.metrics.total.ps(), cold.metrics.total.ps());
}

TEST(GpuListCache, EvictionUnderPressureStaysCorrect) {
  const auto& idx = testutil::small_index();
  const std::size_t device_mem = sim::HardwareSpec{}.pcie.device_mem_bytes;
  gpu::GpuOptions tight;
  // Budget of 64 KiB: a few lists at most, so a varied stream churns.
  tight.list_cache_headroom_bytes = device_mem - (std::size_t{64} << 10);
  gpu::GpuEngine cached(idx, {}, tight);
  gpu::GpuOptions off;
  off.list_cache = false;
  gpu::GpuEngine uncached(idx, {}, off);

  const auto log = repeated_log(static_cast<std::uint32_t>(idx.num_terms()));
  core::CacheCounters totals;
  for (const auto& q : log) {
    const auto got = cached.execute(q);
    const auto want = uncached.execute(q);
    expect_bit_identical(got.topk, want.topk, "post-eviction");
    totals += got.metrics.cache;
    // The budget holds at every step, not just at the end.
    EXPECT_LE(cached.executor().list_cache().bytes(),
              cached.executor().list_cache().byte_budget());
  }
  EXPECT_GT(totals.device_evictions, 0u);
  EXPECT_GT(totals.device_hits, 0u);  // the hot head still hits
}

TEST(GpuListCache, DisabledByHeadroomLargerThanDeviceMemory) {
  const auto& idx = testutil::small_index();
  gpu::GpuOptions opt;
  opt.list_cache_headroom_bytes = sim::HardwareSpec{}.pcie.device_mem_bytes;
  gpu::GpuEngine engine(idx, {}, opt);
  EXPECT_FALSE(engine.executor().list_cache().enabled());
  core::Query q;
  q.terms = {1, 2};
  const auto res = engine.execute(q);
  EXPECT_EQ(res.metrics.cache.device_hits, 0u);
  EXPECT_EQ(res.metrics.cache.device_misses, 0u);
}
